package cobra_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// TestFacadeEndToEnd exercises the documented public API surface: build a
// set, a tree, compress, assign, and verify soundness — the doc.go quick
// start, end to end.
func TestFacadeEndToEnd(t *testing.T) {
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	set.Add("10001", cobra.MustParsePolynomial(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3", names))

	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Special", "f1"},
	)
	if err != nil {
		t.Fatal(err)
	}

	res, err := cobra.Compress(set, cobra.Forest{tree}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 2 || res.NumMeta != 1 {
		t.Fatalf("compress: size=%d vars=%d", res.Size, res.NumMeta)
	}
	comp := res.Apply(set)
	if comp.Size() != 2 {
		t.Fatalf("applied size = %d", comp.Size())
	}

	// A tree-consistent scenario evaluates exactly.
	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	full := cobra.EvalSet(set, a)
	approx := cobra.EvalSet(comp, cobra.Induced(a, res.Cuts...))
	acc := cobra.CompareResults(full, approx)
	if !acc.Exact(1e-9) {
		t.Fatalf("not exact: %+v", acc)
	}
}

func TestFacadeCompressBaselines(t *testing.T) {
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	set.Add("g", cobra.MustParsePolynomial("3*a + 4*b + 5*c", names))
	tree, _ := cobra.TreeFromPaths("R", names, []string{"a"}, []string{"b"}, []string{"c"})

	g, err := cobra.CompressGreedy(set, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := cobra.CompressExhaustive(set, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size != 1 || e.Size != 1 {
		t.Fatalf("baselines: greedy=%d exhaustive=%d", g.Size, e.Size)
	}

	_, err = cobra.Compress(set, cobra.Forest{tree}, 0)
	var ie *cobra.InfeasibleError
	if !errors.As(err, &ie) || !errors.Is(err, cobra.ErrInfeasible) {
		t.Fatalf("expected InfeasibleError, got %v", err)
	}
}

func TestFacadeSerializationRoundTrip(t *testing.T) {
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	set.Add("k", cobra.MustParsePolynomial("2*x*y + 7", names))

	var text, js, bin bytes.Buffer
	if err := cobra.WriteSetText(&text, set); err != nil {
		t.Fatal(err)
	}
	if err := cobra.WriteSetJSON(&js, set); err != nil {
		t.Fatal(err)
	}
	if err := cobra.WriteSetBinary(&bin, set); err != nil {
		t.Fatal(err)
	}
	for i, r := range []*bytes.Buffer{&text, &js, &bin} {
		var back *cobra.Set
		var err error
		switch i {
		case 0:
			back, err = cobra.ReadSetText(r, nil)
		case 1:
			back, err = cobra.ReadSetJSON(r, nil)
		default:
			back, err = cobra.ReadSetBinary(r, nil)
		}
		if err != nil {
			t.Fatalf("format %d: %v", i, err)
		}
		if back.Size() != set.Size() {
			t.Fatalf("format %d: size %d != %d", i, back.Size(), set.Size())
		}
	}
}

// TestFacadeStreamedPipeline drives the out-of-core surface end to end:
// shard under a budget that forces spills, compress/apply/evaluate
// streamed, round-trip through the v2 stream format, and check everything
// against the in-memory path.
func TestFacadeStreamedPipeline(t *testing.T) {
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	for z := 0; z < 120; z++ {
		poly := ""
		for p := 0; p < 4; p++ {
			if p > 0 {
				poly += " + "
			}
			poly += fmt.Sprintf("%d*p%d*m%d", 10+z+p, p+1, z%12+1)
		}
		set.Add(fmt.Sprintf("zip%d", z), cobra.MustParsePolynomial(poly, names))
	}
	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Standard", "p1"}, []string{"Standard", "p2"},
		[]string{"Special", "p3"}, []string{"Special", "p4"})
	if err != nil {
		t.Fatal(err)
	}

	opts := cobra.Options{Workers: 4, MaxResidentMonomials: set.Size() / 6}
	ss, err := cobra.ShardSet(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.SpilledShards() == 0 {
		t.Fatal("budget of size/6 should force spills")
	}

	ctx := context.Background()
	ds, err := cobra.OpenDataset("facade", ss, cobra.Forest{tree}, opts)
	if err != nil {
		t.Fatal(err)
	}

	bound := set.Size() / 2
	want, err := cobra.Compress(set, cobra.Forest{tree}, bound)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.Compress(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != want.Size || got.NumMeta != want.NumMeta || !got.Cuts[0].Equal(want.Cuts[0]) {
		t.Fatalf("streamed compress differs: %+v vs %+v", got, want)
	}

	compressed, err := ds.Apply(ctx, got.Cuts...)
	if err != nil {
		t.Fatal(err)
	}
	defer compressed.Close()
	wantApplied := cobra.Apply(set, want.Cuts...)
	if compressed.Size() != wantApplied.Size() || compressed.Len() != wantApplied.Len() {
		t.Fatalf("streamed apply: len/size %d/%d, want %d/%d",
			compressed.Len(), compressed.Size(), wantApplied.Len(), wantApplied.Size())
	}

	// Streamed valuation against the compiled in-memory program.
	assignments := make([]*cobra.Assignment, 10)
	for i := range assignments {
		a := cobra.NewAssignment(names)
		if err := a.Set(fmt.Sprintf("m%d", i%12+1), 0.8); err != nil {
			t.Fatal(err)
		}
		assignments[i] = a
	}
	wantRows := cobra.EvalBatch(cobra.Compile(set), assignments, opts)
	gotRows, err := ds.EvalBatch(ctx, assignments)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantRows {
		for j := range wantRows[i] {
			if gotRows[i][j] != wantRows[i][j] {
				t.Fatalf("row %d cell %d: %v != %v", i, j, gotRows[i][j], wantRows[i][j])
			}
		}
	}

	// The applied dataset evaluates like the in-memory applied set under
	// the induced assignments.
	induced := make([]*cobra.Assignment, len(assignments))
	for i, a := range assignments {
		induced[i] = cobra.Induced(a, got.Cuts...)
	}
	gotDerived, err := compressed.EvalBatch(ctx, induced)
	if err != nil {
		t.Fatal(err)
	}
	wantDerived := cobra.EvalBatch(cobra.Compile(wantApplied), induced, opts)
	for i := range wantDerived {
		for j := range wantDerived[i] {
			if gotDerived[i][j] != wantDerived[i][j] {
				t.Fatalf("derived row %d cell %d: %v != %v", i, j, gotDerived[i][j], wantDerived[i][j])
			}
		}
	}

	// v2 stream round trip under the same budget.
	var buf bytes.Buffer
	if err := cobra.WriteSetStream(&buf, ss); err != nil {
		t.Fatal(err)
	}
	back, err := cobra.ReadSetStream(&buf, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != set.Len() || back.Size() != set.Size() {
		t.Fatalf("stream round trip: len/size %d/%d vs %d/%d", back.Len(), back.Size(), set.Len(), set.Size())
	}
	if back.PeakResidentMonomials() > opts.MaxResidentMonomials {
		t.Fatalf("reader peak %d exceeds budget %d", back.PeakResidentMonomials(), opts.MaxResidentMonomials)
	}
}

func TestFacadeSQLAndProvenance(t *testing.T) {
	// Minimal end-to-end through the SQL engine: one table, parameterized
	// prices, capture, commutation.
	names := cobra.NewNames()
	sales := cobra.NewRelation("sales",
		cobra.Column{Name: "cat"}, cobra.Column{Name: "amount"})
	sales.Append(cobra.Str("a"), cobra.Float(10))
	sales.Append(cobra.Str("a"), cobra.Float(20))
	sales.Append(cobra.Str("b"), cobra.Float(5))
	inst, err := cobra.ParameterizeColumn(sales, "amount", []cobra.VarSpec{{Prefix: "c_", Columns: []string{"cat"}}}, names)
	if err != nil {
		t.Fatal(err)
	}
	cat := cobra.Catalog{"sales": inst}
	set, err := cobra.Capture("SELECT cat, SUM(amount) AS total FROM sales GROUP BY cat ORDER BY cat", cat, names, "total")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 || set.Size() != 2 {
		t.Fatalf("set: %v", set)
	}
	a := cobra.NewAssignment(names)
	if err := a.Set("c_a", 1.5); err != nil {
		t.Fatal(err)
	}
	rep, err := cobra.CheckCommutation("SELECT cat, SUM(amount) AS total FROM sales GROUP BY cat ORDER BY cat", cat, names, "total", a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok(1e-9) {
		t.Fatalf("commutation: %+v", rep)
	}
	// Direct evaluation: group a scaled by 1.5.
	vals := cobra.EvalSet(set, a)
	if math.Abs(vals[0]-45) > 1e-9 || math.Abs(vals[1]-5) > 1e-9 {
		t.Fatalf("vals = %v", vals)
	}
}

// TestFacadeParallelOptions exercises the Options{Workers} surface: the
// parallel entry points must return exactly what their sequential
// counterparts return.
func TestFacadeParallelOptions(t *testing.T) {
	if cobra.AutoWorkers() < 1 {
		t.Fatalf("AutoWorkers() = %d", cobra.AutoWorkers())
	}
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	set.Add("10001", cobra.MustParsePolynomial(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 3*f2*m1", names))
	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Special", "f1"},
		[]string{"Special", "f2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	opts := cobra.Options{Workers: 4}

	seq, err := cobra.Compress(set, cobra.Forest{tree}, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cobra.CompressWith(set, cobra.Forest{tree}, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Size != seq.Size || par.NumMeta != seq.NumMeta || !par.Cuts[0].Equal(seq.Cuts[0]) {
		t.Fatalf("CompressWith diverged: seq=%+v par=%+v", seq, par)
	}

	sf, err := cobra.Frontier(set, tree)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := cobra.FrontierWith(set, tree, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf) != len(pf) {
		t.Fatalf("FrontierWith: %d points vs %d", len(pf), len(sf))
	}

	compSeq := cobra.Apply(set, seq.Cuts...)
	compPar := cobra.ApplyWith(set, opts, par.Cuts...)
	if compSeq.Size() != compPar.Size() || compSeq.String() != compPar.String() {
		t.Fatalf("ApplyWith diverged:\n%s\nvs\n%s", compSeq, compPar)
	}

	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	prog := cobra.Compile(set)
	rows := cobra.EvalBatch(prog, []*cobra.Assignment{a, cobra.NewAssignment(names)}, opts)
	single := prog.EvalAssignment(a, nil)
	if len(rows) != 2 || rows[0][0] != single[0] {
		t.Fatalf("EvalBatch diverged: %v vs %v", rows, single)
	}
}

// TestFacadeParallelCapture exercises the parallel SQL/capture surface:
// RunSQLWith, CaptureWith, CaptureLineageWith, ParameterizeColumnWith and
// AnnotateTuplesWith must return exactly what the sequential entry points
// return, for several worker counts.
func TestFacadeParallelCapture(t *testing.T) {
	build := func() (*cobra.Relation, *cobra.Names) {
		names := cobra.NewNames()
		sales := cobra.NewRelation("sales",
			cobra.Column{Name: "cat"}, cobra.Column{Name: "amount"})
		for i := 0; i < 200; i++ {
			sales.Append(cobra.Str([]string{"a", "b", "c"}[i%3]), cobra.Float(float64(i)))
		}
		return sales, names
	}
	const query = "SELECT cat, SUM(amount) AS total FROM sales GROUP BY cat ORDER BY cat"
	specs := []cobra.VarSpec{{Prefix: "c_", Columns: []string{"cat"}}}

	seqSales, seqNames := build()
	seqInst, err := cobra.ParameterizeColumn(seqSales, "amount", specs, seqNames)
	if err != nil {
		t.Fatal(err)
	}
	seqSet, err := cobra.Capture(query, cobra.Catalog{"sales": seqInst}, seqNames, "total")
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 2, 8} {
		opts := cobra.Options{Workers: w}
		sales, names := build()
		inst, err := cobra.ParameterizeColumnWith(sales, "amount", specs, names, opts)
		if err != nil {
			t.Fatal(err)
		}
		cat := cobra.Catalog{"sales": inst}

		out, err := cobra.RunSQLWith(query, cat, opts)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 3 {
			t.Fatalf("workers=%d: rows = %d", w, out.Len())
		}

		set, err := cobra.CaptureWith(query, cat, names, "total", opts)
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() != seqSet.Len() || set.String() != seqSet.String() {
			t.Fatalf("workers=%d: CaptureWith diverged:\n%s\nvs\n%s", w, set, seqSet)
		}

		ann, err := cobra.AnnotateTuplesWith(sales, cobra.VarSpec{Prefix: "t", Columns: []string{"cat"}}, names, opts)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := cobra.CaptureLineageWith("SELECT cat FROM sales", cobra.Catalog{"sales": ann}, names, opts)
		if err != nil {
			t.Fatal(err)
		}
		if lin.Len() != 200 {
			t.Fatalf("workers=%d: lineage rows = %d", w, lin.Len())
		}
	}
}

// TestFacadeFrontierForestSweep exercises the forest-level sweep surface
// on a partitioned two-dimension fixture: one FrontierSweep call must
// answer every bound with the exact optimum, and the forest curve must be
// navigable through BestForForestBound.
func TestFacadeFrontierForestSweep(t *testing.T) {
	names := cobra.NewNames()
	set := cobra.NewSet(names)
	// Dimension 1 (consumer plans) appears only in group g1's monomials,
	// dimension 2 (agents) only in g2's — partitioned, so the forest
	// frontier is exact.
	set.Add("g1", cobra.MustParsePolynomial("10*p1*c0 + 20*p1*c1 + 30*p2*c0 + 40*p2*c1", names))
	set.Add("g2", cobra.MustParsePolynomial("1*a1*c0 + 2*a1*c1 + 3*a2*c0 + 4*a2*c1", names))
	plans, err := cobra.TreeFromPaths("Plans", names, []string{"p1"}, []string{"p2"})
	if err != nil {
		t.Fatal(err)
	}
	agents, err := cobra.TreeFromPaths("Agents", names, []string{"a1"}, []string{"a2"})
	if err != nil {
		t.Fatal(err)
	}
	forest := cobra.Forest{plans, agents}

	curve, err := cobra.FrontierForest(set, forest, cobra.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// k=2 (both roots): 2+2 monomials; k=4 (all leaves): 8. k=3: 6.
	if len(curve) != 3 {
		t.Fatalf("curve has %d points: %+v", len(curve), curve)
	}
	for i, want := range []struct{ k, size int }{{2, 4}, {3, 6}, {4, 8}} {
		if curve[i].NumMeta != want.k || curve[i].MinSize != want.size {
			t.Fatalf("point %d = (%d, %d), want (%d, %d)",
				i, curve[i].NumMeta, curve[i].MinSize, want.k, want.size)
		}
		if got := cobra.Apply(set, curve[i].Cuts...).Size(); got != want.size {
			t.Fatalf("point %d: applied %d != %d", i, got, want.size)
		}
	}
	if p, ok := cobra.BestForForestBound(curve, 7); !ok || p.NumMeta != 3 {
		t.Fatalf("BestForForestBound(7) = %+v, %v", p, ok)
	}

	answers, err := cobra.FrontierSweep(set, forest, []int{8, 7, 4, 3, 1}, cobra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMeta := []int{4, 3, 2, -1, -1} // -1 = infeasible
	for i, a := range answers {
		if wantMeta[i] < 0 {
			var ie *cobra.InfeasibleError
			if a.Err == nil || !errors.As(a.Err, &ie) {
				t.Fatalf("bound %d: want InfeasibleError, got %+v", a.Bound, a)
			}
			if ie.MinAchievable != 4 {
				t.Fatalf("bound %d: MinAchievable = %d, want 4", a.Bound, ie.MinAchievable)
			}
			continue
		}
		if a.Err != nil || a.Result.NumMeta != wantMeta[i] {
			t.Fatalf("bound %d: got %+v, want %d meta-variables", a.Bound, a, wantMeta[i])
		}
	}

	// Coupling the dimensions must surface a CrossTreeError.
	set.Add("bad", cobra.MustParsePolynomial("5*p1*a1", names))
	var ce *cobra.CrossTreeError
	if _, err := cobra.FrontierSweep(set, forest, []int{4}, cobra.Options{}); !errors.As(err, &ce) {
		t.Fatalf("want CrossTreeError, got %v", err)
	}
}
