package serve

import (
	"fmt"
	"sort"
	"sync"

	cobra "github.com/cobra-prov/cobra"
)

// registry is the server's named-dataset table with LRU residency control:
// when more than maxResident out-of-core datasets are resident at once,
// the least-recently-used ones are Evicted — persisted to their spill dir
// and dropped from memory — and transparently re-open on their next use.
// In-memory datasets are never evicted (they have no spill representation
// to re-open from).
type registry struct {
	mu          sync.Mutex
	maxResident int                  // out-of-core residency budget; <= 0 means unlimited
	clock       int64                // guarded by mu
	entries     map[string]*regEntry // guarded by mu
}

type regEntry struct {
	ds      *cobra.Dataset
	lastUse int64
}

func newRegistry(maxResident int) *registry {
	return &registry{maxResident: maxResident, entries: make(map[string]*regEntry)}
}

// put registers a dataset under name, failing if the name is taken, and
// applies the residency budget (the new dataset counts as just used).
func (r *registry) put(name string, ds *cobra.Dataset) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("dataset %q already exists", name)
	}
	r.clock++
	r.entries[name] = &regEntry{ds: ds, lastUse: r.clock}
	r.enforceLocked(name)
	return nil
}

// get returns the dataset, marks it most recently used, and applies the
// residency budget (never evicting the dataset just requested).
func (r *registry) get(name string) (*cobra.Dataset, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	r.clock++
	e.lastUse = r.clock
	r.enforceLocked(name)
	return e.ds, true
}

// remove closes and deletes the dataset.
func (r *registry) remove(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	delete(r.entries, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("dataset %q not found", name)
	}
	return e.ds.Close()
}

// infos returns every dataset's stats, sorted by name.
func (r *registry) infos() []DatasetInfo {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	dss := make(map[string]*cobra.Dataset, len(r.entries))
	for name, e := range r.entries {
		names = append(names, name)
		dss[name] = e.ds
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]DatasetInfo, len(names))
	for i, name := range names {
		out[i] = datasetInfo(name, dss[name])
	}
	return out
}

// closeAll releases every dataset (shutdown).
func (r *registry) closeAll() {
	r.mu.Lock()
	entries := r.entries
	r.entries = make(map[string]*regEntry)
	r.mu.Unlock()
	for _, e := range entries {
		e.ds.Close()
	}
}

// enforceLocked evicts least-recently-used resident out-of-core datasets
// until the residency budget holds, never evicting keep (the dataset
// serving the current request). Eviction is best-effort: a failed Evict
// leaves the dataset resident rather than failing the request. r.mu must
// be held; Evict waits for the victim's in-flight solves, which never take
// registry locks, so holding r.mu here cannot deadlock.
func (r *registry) enforceLocked(keep string) {
	if r.maxResident <= 0 {
		return
	}
	for {
		resident := 0
		var victim string
		var victimUse int64
		for name, e := range r.entries {
			if !e.ds.OutOfCore() || !e.ds.Resident() {
				continue
			}
			resident++
			if name == keep {
				continue
			}
			if victim == "" || e.lastUse < victimUse {
				victim, victimUse = name, e.lastUse
			}
		}
		if resident <= r.maxResident || victim == "" {
			return
		}
		if ok, err := r.entries[victim].ds.Evict(); err != nil || !ok {
			return
		}
	}
}

// datasetInfo snapshots one dataset's wire stats.
func datasetInfo(name string, ds *cobra.Dataset) DatasetInfo {
	return DatasetInfo{
		Name:      name,
		Polys:     ds.Len(),
		Size:      ds.Size(),
		Vars:      len(ds.UsedVars()),
		Trees:     len(ds.Trees()),
		OutOfCore: ds.OutOfCore(),
		Resident:  ds.Resident(),
	}
}
