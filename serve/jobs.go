package serve

import (
	"fmt"
	"sync"
)

// Job states.
const (
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// jobs tracks background capture/compress work for status polling. Job
// bodies run on the server's base context, so shutdown cancels them; the
// server's WaitGroup waits for them to unwind.
type jobs struct {
	mu  sync.Mutex
	seq int
	m   map[string]*job
}

type job struct {
	id string

	mu      sync.Mutex
	state   string
	err     string
	dataset string
	result  *CompressResult
}

func newJobs() *jobs {
	return &jobs{m: make(map[string]*job)}
}

// start registers a running job and spawns fn; fn's returns become the
// job's final state. wg tracks the goroutine for graceful shutdown.
func (js *jobs) start(wg *sync.WaitGroup, fn func() (dataset string, result *CompressResult, err error)) string {
	js.mu.Lock()
	js.seq++
	j := &job{id: fmt.Sprintf("job-%d", js.seq), state: jobRunning}
	js.m[j.id] = j
	js.mu.Unlock()

	wg.Add(1)
	go func() {
		defer wg.Done()
		dataset, result, err := fn()
		j.mu.Lock()
		defer j.mu.Unlock()
		if err != nil {
			j.state = jobFailed
			j.err = err.Error()
			return
		}
		j.state = jobDone
		j.dataset = dataset
		j.result = result
	}()
	return j.id
}

// info snapshots a job's status.
func (js *jobs) info(id string) (JobInfo, bool) {
	js.mu.Lock()
	j, ok := js.m[id]
	js.mu.Unlock()
	if !ok {
		return JobInfo{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{ID: j.id, State: j.state, Error: j.err, Dataset: j.dataset, Result: j.result}, true
}
