package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/serve"
)

// BenchmarkServeEvalBatch measures sustained EvalBatch throughput against
// the daemon in its steady state: a telephony dataset captured and
// compressed once, scenario requests answered from the compressed
// provenance over HTTP. Reported in req/s (the driver checks the floor).
func BenchmarkServeEvalBatch(b *testing.B) {
	srv := serve.New(serve.Config{MaxWorkers: 4})
	defer srv.Close()

	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 5000}, names)
	full, err := cobra.OpenDataset("tel", set, cobra.Forest{telephony.PlansTree(names)}, cobra.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer full.Close()
	ctx := context.Background()
	res, err := full.Compress(ctx, set.Size()/4)
	if err != nil {
		b.Fatal(err)
	}
	small, err := full.Apply(ctx, res.Cuts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Register("tel-small", small); err != nil {
		b.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/datasets/tel-small/eval"
	body, err := json.Marshal(serve.EvalRequest{
		Assignments: []map[string]float64{{"m3": 0.8}},
		Workers:     1,
	})
	if err != nil {
		b.Fatal(err)
	}

	post := func(client *http.Client) error {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var er serve.EvalResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK || len(er.Rows) != 1 {
			return fmt.Errorf("status %d, %d rows", resp.StatusCode, len(er.Rows))
		}
		return nil
	}
	if err := post(http.DefaultClient); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{Transport: &http.Transport{}}
		for pb.Next() {
			if err := post(client); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeSweep measures sweep traffic answered from the memoized
// frontier curve: after the first request pays the DP, every following
// sweep is pure lookup.
func BenchmarkServeSweep(b *testing.B) {
	srv := serve.New(serve.Config{MaxWorkers: 4})
	defer srv.Close()

	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 5000}, names)
	ds, err := cobra.OpenDataset("tel", set, cobra.Forest{telephony.PlansTree(names)}, cobra.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Register("tel", ds); err != nil {
		b.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/datasets/tel/sweep"
	body, err := json.Marshal(serve.SweepRequest{
		Bounds: []int{set.Size(), set.Size() / 2, set.Size() / 4, 1},
	})
	if err != nil {
		b.Fatal(err)
	}

	do := func() error {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var sr serve.SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK || len(sr.Answers) != 4 {
			return fmt.Errorf("status %d, %d answers", resp.StatusCode, len(sr.Answers))
		}
		return nil
	}
	if err := do(); err != nil { // pay the DP outside the timed region
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := do(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
