package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
)

// Config tunes the server.
type Config struct {
	// MaxWorkers is the solver worker pool shared by all requests: each
	// request's Workers budget is clamped to it and drawn from it, so
	// concurrent traffic cannot oversubscribe the machine. <= 0 selects
	// cobra.AutoWorkers().
	MaxWorkers int
	// MaxResidentDatasets bounds how many out-of-core datasets stay
	// resident at once; least-recently-used ones beyond it are evicted to
	// their spill dirs and re-open transparently on next use. <= 0 means
	// unlimited.
	MaxResidentDatasets int
	// SpillDir is where out-of-core state lives ("" = os.TempDir()).
	SpillDir string
}

// Server is the cobra-serve daemon: an http.Handler over a registry of
// named immutable cobra.Dataset handles, with background capture/compress
// jobs, request-scoped worker budgeting, LRU eviction for out-of-core
// datasets, and graceful shutdown via Close. Solver handlers run on the
// request context, so a disconnected client cancels its in-flight solve.
type Server struct {
	cfg  Config
	reg  *registry
	jobs *jobs
	mux  *http.ServeMux

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// Worker pool: gate holds MaxWorkers tokens; a request acquires its
	// whole budget under acqMu (all-or-nothing in FIFO order, so two
	// half-acquired requests can never deadlock each other).
	acqMu sync.Mutex
	gate  chan struct{}
}

// New builds a Server. Release it with Close.
func New(cfg Config) *Server {
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = cobra.AutoWorkers()
	}
	//cobra:ctx deliberate lifecycle root: the server owns its base context; Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     newRegistry(cfg.MaxResidentDatasets),
		jobs:    newJobs(),
		mux:     http.NewServeMux(),
		baseCtx: ctx,
		cancel:  cancel,
		gate:    make(chan struct{}, cfg.MaxWorkers),
	}
	for i := 0; i < cfg.MaxWorkers; i++ {
		s.gate <- struct{}{}
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/datasets", s.handleList)
	s.mux.HandleFunc("PUT /v1/datasets/{name}", s.handleRegister)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/datasets/{name}/capture", s.handleCapture)
	s.mux.HandleFunc("POST /v1/datasets/{name}/compress", s.handleCompress)
	s.mux.HandleFunc("POST /v1/datasets/{name}/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/datasets/{name}/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/datasets/{name}/frontier", s.handleFrontier)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Register adds an already-built dataset to the server — the embedding
// entry point for tests and custom daemons.
func (s *Server) Register(name string, ds *cobra.Dataset) error {
	return s.reg.put(name, ds)
}

// Close shuts the server down: background jobs are canceled and awaited,
// then every dataset is released. Call after the http.Server has stopped
// accepting requests.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	s.reg.closeAll()
	return nil
}

// clampWorkers resolves a request's worker budget: at least 1, at most
// the server pool.
func (s *Server) clampWorkers(n int) int {
	if n <= 1 {
		return 1
	}
	if n > s.cfg.MaxWorkers {
		return s.cfg.MaxWorkers
	}
	return n
}

// acquireWorkers draws n tokens from the pool, honoring ctx; the returned
// release must be called when the solve is done. Acquisition is
// all-or-nothing under acqMu: requests line up FIFO and partial holds are
// returned on cancellation, so the pool cannot deadlock.
func (s *Server) acquireWorkers(ctx context.Context, n int) (func(), error) {
	s.acqMu.Lock()
	for i := 0; i < n; i++ {
		select {
		case <-s.gate:
		case <-ctx.Done():
			for j := 0; j < i; j++ {
				s.gate <- struct{}{}
			}
			s.acqMu.Unlock()
			return nil, ctx.Err()
		}
	}
	s.acqMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := 0; i < n; i++ {
				s.gate <- struct{}{}
			}
		})
	}, nil
}

// --- helpers -------------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// writeSolveErr maps a solver error to a status: client cancellations get
// 499 (client closed request), infeasibility and bad input get 400,
// anything else 500.
func writeSolveErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeErr(w, 499, "%v", err)
	case errors.Is(err, cobra.ErrInfeasible):
		writeErr(w, http.StatusBadRequest, "%v", err)
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) dataset(w http.ResponseWriter, r *http.Request) (*cobra.Dataset, string, bool) {
	name := r.PathValue("name")
	ds, ok := s.reg.get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "dataset %q not found", name)
		return nil, name, false
	}
	return ds, name, true
}

func compressResult(bound int, res *cobra.Result) *CompressResult {
	cuts := make([][]string, len(res.Cuts))
	for i, c := range res.Cuts {
		cuts[i] = c.Names()
	}
	return &CompressResult{
		Bound:        bound,
		Size:         res.Size,
		NumMeta:      res.NumMeta,
		UsedMeta:     res.UsedMeta,
		OriginalSize: res.OriginalSize,
		OriginalVars: res.OriginalVars,
		Cuts:         cuts,
	}
}

// --- handlers ------------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, DatasetsResponse{Datasets: s.reg.infos()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ds, name, ok := s.dataset(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, datasetInfo(name, ds))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.remove(name); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	names := cobra.NewNames()
	set, err := cobra.ReadSetText(strings.NewReader(req.Provenance), names)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parsing provenance: %v", err)
		return
	}
	trees := make(cobra.Forest, len(req.Trees))
	for i, raw := range req.Trees {
		t, err := cobra.TreeFromJSON(raw, names)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "parsing tree %d: %v", i, err)
			return
		}
		trees[i] = t
	}
	opts := cobra.Options{MaxResidentMonomials: req.MaxResidentMonomials, SpillDir: s.cfg.SpillDir}
	var src cobra.SetSource = set
	if req.MaxResidentMonomials > 0 {
		ss, err := cobra.ShardSet(set, opts)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "sharding: %v", err)
			return
		}
		src = ss
	}
	ds, err := cobra.OpenDataset(name, src, trees, opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.reg.put(name, ds); err != nil {
		ds.Close()
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, datasetInfo(name, ds))
}

func (s *Server) handleCapture(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req CaptureRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	switch req.Generator {
	case "figure1", "telephony":
	default:
		writeErr(w, http.StatusBadRequest, "unknown generator %q (want \"figure1\" or \"telephony\")", req.Generator)
		return
	}
	if _, ok := s.reg.get(name); ok {
		writeErr(w, http.StatusConflict, "dataset %q already exists", name)
		return
	}
	opts := cobra.Options{
		Workers:              s.cfg.MaxWorkers,
		MaxResidentMonomials: req.MaxResidentMonomials,
		SpillDir:             s.cfg.SpillDir,
	}
	id := s.jobs.start(&s.wg, func() (string, *CompressResult, error) {
		ds, err := s.captureDataset(s.baseCtx, name, req, opts)
		if err != nil {
			return "", nil, err
		}
		if err := s.reg.put(name, ds); err != nil {
			ds.Close()
			return "", nil, err
		}
		return name, nil, nil
	})
	writeJSON(w, http.StatusAccepted, JobResponse{Job: id})
}

// captureDataset builds a dataset from a built-in generator. Both
// generators use the Plans tree of the paper's running telephony example,
// so single-tree frontiers and sweeps work out of the box.
func (s *Server) captureDataset(ctx context.Context, name string, req CaptureRequest, opts cobra.Options) (*cobra.Dataset, error) {
	names := cobra.NewNames()
	switch req.Generator {
	case "figure1":
		cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
		if err != nil {
			return nil, err
		}
		trees := cobra.Forest{telephony.PlansTree(names)}
		return cobra.CaptureDataset(ctx, name, telephony.RevenueQuery, cat, names, "revenue", trees, opts)
	case "telephony":
		set := telephony.DirectProvenance(telephony.Config{Customers: req.Customers}, names)
		trees := cobra.Forest{telephony.PlansTree(names)}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var src cobra.SetSource = set
		if opts.MaxResidentMonomials > 0 {
			ss, err := cobra.ShardSet(set, opts)
			if err != nil {
				return nil, err
			}
			src = ss
		}
		return cobra.OpenDataset(name, src, trees, opts)
	default:
		return nil, fmt.Errorf("unknown generator %q", req.Generator)
	}
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	ds, name, ok := s.dataset(w, r)
	if !ok {
		return
	}
	var req CompressRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	as := req.As
	if as == "" {
		as = fmt.Sprintf("%s@%d", name, req.Bound)
	}
	if _, exists := s.reg.get(as); exists {
		writeErr(w, http.StatusConflict, "dataset %q already exists", as)
		return
	}
	workers := s.clampWorkers(req.Workers)
	bound := req.Bound
	id := s.jobs.start(&s.wg, func() (string, *CompressResult, error) {
		release, err := s.acquireWorkers(s.baseCtx, workers)
		if err != nil {
			return "", nil, err
		}
		defer release()
		view := ds.WithWorkers(workers)
		res, err := view.Compress(s.baseCtx, bound)
		if err != nil {
			return "", nil, err
		}
		derived, err := view.Apply(s.baseCtx, res.Cuts...)
		if err != nil {
			return "", nil, err
		}
		if err := s.reg.put(as, derived); err != nil {
			derived.Close()
			return "", nil, err
		}
		return as, compressResult(bound, res), nil
	})
	writeJSON(w, http.StatusAccepted, JobResponse{Job: id})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.jobs.info(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "job %q not found", id)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	ds, _, ok := s.dataset(w, r)
	if !ok {
		return
	}
	var req EvalRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	assignments := make([]*cobra.Assignment, len(req.Assignments))
	for i, vals := range req.Assignments {
		a := cobra.NewAssignment(ds.Names())
		for name, x := range vals {
			if err := a.Set(name, x); err != nil {
				writeErr(w, http.StatusBadRequest, "assignment %d: %v", i, err)
				return
			}
		}
		assignments[i] = a
	}
	workers := s.clampWorkers(req.Workers)
	release, err := s.acquireWorkers(r.Context(), workers)
	if err != nil {
		writeSolveErr(w, err)
		return
	}
	defer release()
	rows, err := ds.WithWorkers(workers).EvalBatch(r.Context(), assignments)
	if err != nil {
		writeSolveErr(w, err)
		return
	}
	if rows == nil {
		rows = [][]float64{}
	}
	writeJSON(w, http.StatusOK, EvalResponse{Rows: rows})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ds, _, ok := s.dataset(w, r)
	if !ok {
		return
	}
	var req SweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	workers := s.clampWorkers(req.Workers)
	release, err := s.acquireWorkers(r.Context(), workers)
	if err != nil {
		writeSolveErr(w, err)
		return
	}
	defer release()
	answers, err := ds.WithWorkers(workers).Sweep(r.Context(), req.Bounds)
	if err != nil {
		writeSolveErr(w, err)
		return
	}
	out := make([]SweepAnswer, len(answers))
	for i, a := range answers {
		out[i] = SweepAnswer{Bound: a.Bound}
		switch {
		case a.Result != nil:
			out[i].Result = compressResult(a.Bound, a.Result)
		default:
			var inf *cobra.InfeasibleError
			if errors.As(a.Err, &inf) {
				out[i].Infeasible = true
				out[i].MinAchievable = inf.MinAchievable
			} else {
				out[i].Error = a.Err.Error()
			}
		}
	}
	writeJSON(w, http.StatusOK, SweepResponse{Answers: out})
}

func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	ds, _, ok := s.dataset(w, r)
	if !ok {
		return
	}
	release, err := s.acquireWorkers(r.Context(), 1)
	if err != nil {
		writeSolveErr(w, err)
		return
	}
	defer release()
	points, err := ds.Frontier(r.Context())
	if err != nil {
		writeSolveErr(w, err)
		return
	}
	out := make([]FrontierPoint, len(points))
	for i, p := range points {
		out[i] = FrontierPoint{NumMeta: p.NumMeta, MinSize: p.MinSize, Cut: p.Cut.Names()}
	}
	writeJSON(w, http.StatusOK, FrontierResponse{Points: out})
}
