package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/serve"
)

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// doJSON performs one request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode != http.StatusNoContent {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitJob polls a job until it leaves the running state.
func waitJob(t *testing.T, base, id string) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info serve.JobInfo
		if code := doJSON(t, "GET", base+"/v1/jobs/"+id, nil, &info); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if info.State != "running" {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return serve.JobInfo{}
}

// figure1Direct replicates the server's "figure1" capture with the direct
// library API, for bit-identical comparison.
func figure1Direct(t *testing.T, workers int) *cobra.Dataset {
	t.Helper()
	names := cobra.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	trees := cobra.Forest{telephony.PlansTree(names)}
	ds, err := cobra.CaptureDataset(context.Background(), "fig", telephony.RevenueQuery, cat, names, "revenue",
		trees, cobra.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// TestServeEndToEndBitIdentical drives the full HTTP lifecycle — capture
// job, compress job, eval/sweep/frontier — and checks every numeric
// answer is bit-identical to the direct cobra.Dataset calls, for each
// request worker budget.
func TestServeEndToEndBitIdentical(t *testing.T) {
	_, ts := startServer(t, serve.Config{MaxWorkers: 8})
	ctx := context.Background()

	var jr serve.JobResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/fig/capture", serve.CaptureRequest{Generator: "figure1"}, &jr); code != http.StatusAccepted {
		t.Fatalf("capture: status %d", code)
	}
	if info := waitJob(t, ts.URL, jr.Job); info.State != "done" || info.Dataset != "fig" {
		t.Fatalf("capture job: %+v", info)
	}

	direct := figure1Direct(t, 8)
	bound := direct.Size() / 2
	resDirect, err := direct.Compress(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	derivedDirect, err := direct.Apply(ctx, resDirect.Cuts...)
	if err != nil {
		t.Fatal(err)
	}

	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/fig/compress", serve.CompressRequest{Bound: bound, As: "fig-small"}, &jr); code != http.StatusAccepted {
		t.Fatalf("compress: status %d", code)
	}
	compInfo := waitJob(t, ts.URL, jr.Job)
	if compInfo.State != "done" || compInfo.Dataset != "fig-small" || compInfo.Result == nil {
		t.Fatalf("compress job: %+v", compInfo)
	}
	if compInfo.Result.Size != resDirect.Size || compInfo.Result.NumMeta != resDirect.NumMeta {
		t.Fatalf("compress result: size=%d meta=%d, want size=%d meta=%d",
			compInfo.Result.Size, compInfo.Result.NumMeta, resDirect.Size, resDirect.NumMeta)
	}
	wantCut := resDirect.Cuts[0].Names()
	if fmt.Sprint(compInfo.Result.Cuts[0]) != fmt.Sprint(wantCut) {
		t.Fatalf("compress cut: %v want %v", compInfo.Result.Cuts[0], wantCut)
	}

	scenarios := []map[string]float64{{"m3": 0.8}, {}, {"m1": 1.1, "m3": 0.8}}
	mkAssignments := func(ds *cobra.Dataset, induced bool) []*cobra.Assignment {
		out := make([]*cobra.Assignment, len(scenarios))
		for i, vals := range scenarios {
			a := cobra.NewAssignment(ds.Names())
			for name, x := range vals {
				if err := a.Set(name, x); err != nil {
					t.Fatal(err)
				}
			}
			if induced {
				a = cobra.Induced(a, resDirect.Cuts...)
			}
			out[i] = a
		}
		return out
	}

	bounds := []int{0, bound, direct.Size() * 2}
	wantAns, err := direct.Sweep(ctx, bounds)
	if err != nil {
		t.Fatal(err)
	}
	wantFrontier, err := direct.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Eval on the raw capture.
			wantRows, err := direct.WithWorkers(workers).EvalBatch(ctx, mkAssignments(direct, false))
			if err != nil {
				t.Fatal(err)
			}
			var er serve.EvalResponse
			if code := doJSON(t, "POST", ts.URL+"/v1/datasets/fig/eval",
				serve.EvalRequest{Assignments: scenarios, Workers: workers}, &er); code != http.StatusOK {
				t.Fatalf("eval: status %d", code)
			}
			checkRows(t, er.Rows, wantRows, "eval fig")

			// Eval on the compressed derived dataset: the cheap steady-state
			// path. Scenario variables survive the cut (months are context
			// vars), so the same scenarios apply.
			wantDerived, err := derivedDirect.WithWorkers(workers).EvalBatch(ctx, mkAssignments(derivedDirect, false))
			if err != nil {
				t.Fatal(err)
			}
			if code := doJSON(t, "POST", ts.URL+"/v1/datasets/fig-small/eval",
				serve.EvalRequest{Assignments: scenarios, Workers: workers}, &er); code != http.StatusOK {
				t.Fatalf("eval derived: status %d", code)
			}
			checkRows(t, er.Rows, wantDerived, "eval fig-small")

			var sr serve.SweepResponse
			if code := doJSON(t, "POST", ts.URL+"/v1/datasets/fig/sweep",
				serve.SweepRequest{Bounds: bounds, Workers: workers}, &sr); code != http.StatusOK {
				t.Fatalf("sweep: status %d", code)
			}
			if len(sr.Answers) != len(wantAns) {
				t.Fatalf("sweep: %d answers, want %d", len(sr.Answers), len(wantAns))
			}
			for i, a := range sr.Answers {
				want := wantAns[i]
				if a.Bound != want.Bound {
					t.Fatalf("sweep answer %d: bound %d want %d", i, a.Bound, want.Bound)
				}
				if want.Result != nil {
					if a.Result == nil || a.Result.Size != want.Result.Size || a.Result.NumMeta != want.Result.NumMeta {
						t.Fatalf("sweep bound %d: %+v, want size=%d meta=%d", a.Bound, a.Result, want.Result.Size, want.Result.NumMeta)
					}
					continue
				}
				var inf *cobra.InfeasibleError
				if errors.As(want.Err, &inf) {
					if !a.Infeasible || a.MinAchievable != inf.MinAchievable {
						t.Fatalf("sweep bound %d: %+v, want infeasible min %d", a.Bound, a, inf.MinAchievable)
					}
				} else if a.Error != want.Err.Error() {
					t.Fatalf("sweep bound %d: error %q want %q", a.Bound, a.Error, want.Err)
				}
			}

			var fr serve.FrontierResponse
			if code := doJSON(t, "GET", ts.URL+"/v1/datasets/fig/frontier", nil, &fr); code != http.StatusOK {
				t.Fatalf("frontier: status %d", code)
			}
			if len(fr.Points) != len(wantFrontier) {
				t.Fatalf("frontier: %d points, want %d", len(fr.Points), len(wantFrontier))
			}
			for i, p := range fr.Points {
				want := wantFrontier[i]
				if p.NumMeta != want.NumMeta || p.MinSize != want.MinSize || fmt.Sprint(p.Cut) != fmt.Sprint(want.Cut.Names()) {
					t.Fatalf("frontier point %d: %+v want %+v", i, p, want)
				}
			}
		})
	}
}

func checkRows(t *testing.T, got, want [][]float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d entries, want %d", what, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d col %d = %v, want %v (must be bit-identical over JSON)", what, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestServeRegisterAndErrors covers the synchronous register path plus the
// API's failure modes.
func TestServeRegisterAndErrors(t *testing.T) {
	_, ts := startServer(t, serve.Config{MaxWorkers: 2})

	names := cobra.NewNames()
	set := cobra.NewSet(names)
	if err := set.Add("z1", cobra.MustParsePolynomial("208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3", names)); err != nil {
		t.Fatal(err)
	}
	tree, err := cobra.TreeFromPaths("Plans", names, []string{"Standard", "p1"}, []string{"Special", "f1"})
	if err != nil {
		t.Fatal(err)
	}
	var prov strings.Builder
	if err := cobra.WriteSetText(&prov, set); err != nil {
		t.Fatal(err)
	}
	treeJSON, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.RegisterRequest{Provenance: prov.String(), Trees: []json.RawMessage{treeJSON}}

	var info serve.DatasetInfo
	if code := doJSON(t, "PUT", ts.URL+"/v1/datasets/mini", reg, &info); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	if info.Name != "mini" || info.Polys != 1 || info.Size != set.Size() {
		t.Fatalf("register info: %+v", info)
	}

	var er serve.ErrorResponse
	if code := doJSON(t, "PUT", ts.URL+"/v1/datasets/mini", reg, &er); code != http.StatusConflict {
		t.Fatalf("duplicate register: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets/nope", nil, &er); code != http.StatusNotFound {
		t.Fatalf("missing dataset: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/job-99", nil, &er); code != http.StatusNotFound {
		t.Fatalf("missing job: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/mini/eval",
		serve.EvalRequest{Assignments: []map[string]float64{{"bogus": 1}}}, &er); code != http.StatusBadRequest {
		t.Fatalf("unknown var: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/x/capture",
		serve.CaptureRequest{Generator: "bogus"}, &er); code != http.StatusBadRequest {
		t.Fatalf("unknown generator: status %d", code)
	}

	// Round-trip eval on the registered dataset against the direct call.
	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	want := cobra.EvalSet(set, a)
	var ev serve.EvalResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/datasets/mini/eval",
		serve.EvalRequest{Assignments: []map[string]float64{{"m3": 0.8}}}, &ev); code != http.StatusOK {
		t.Fatalf("eval: status %d", code)
	}
	checkRows(t, ev.Rows, [][]float64{want}, "registered eval")

	if code := doJSON(t, "DELETE", ts.URL+"/v1/datasets/mini", nil, nil); code != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets/mini", nil, &er); code != http.StatusNotFound {
		t.Fatal("dataset survived delete")
	}
}

// TestServeEvictionRoundTrip registers two out-of-core datasets under a
// residency budget of one: traffic alternating between them forces LRU
// evictions, and answers must stay identical across the evict/reload
// cycles.
func TestServeEvictionRoundTrip(t *testing.T) {
	_, ts := startServer(t, serve.Config{MaxWorkers: 2, MaxResidentDatasets: 1, SpillDir: t.TempDir()})

	mkReq := func(seed string) serve.RegisterRequest {
		names := cobra.NewNames()
		set := telephony.DirectProvenance(telephony.Config{Customers: 40}, names)
		tree := telephony.PlansTree(names)
		var prov strings.Builder
		if err := cobra.WriteSetText(&prov, set); err != nil {
			t.Fatal(err)
		}
		treeJSON, err := json.Marshal(tree)
		if err != nil {
			t.Fatal(err)
		}
		_ = seed
		return serve.RegisterRequest{
			Provenance:           prov.String(),
			Trees:                []json.RawMessage{treeJSON},
			MaxResidentMonomials: 256,
		}
	}
	for _, name := range []string{"d1", "d2"} {
		var info serve.DatasetInfo
		if code := doJSON(t, "PUT", ts.URL+"/v1/datasets/"+name, mkReq(name), &info); code != http.StatusCreated {
			t.Fatalf("register %s: status %d", name, code)
		}
		if !info.OutOfCore {
			t.Fatalf("register %s: expected out-of-core", name)
		}
	}

	eval := func(name string) [][]float64 {
		var er serve.EvalResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/datasets/"+name+"/eval",
			serve.EvalRequest{Assignments: []map[string]float64{{"m3": 0.8}, {}}}, &er); code != http.StatusOK {
			t.Fatalf("eval %s: status %d", name, code)
		}
		return er.Rows
	}

	first1, first2 := eval("d1"), eval("d2")
	for round := 0; round < 3; round++ {
		checkRows(t, eval("d1"), first1, "d1 after eviction cycles")
		checkRows(t, eval("d2"), first2, "d2 after eviction cycles")
	}

	// The budget held: at most one of the two is resident.
	var list serve.DatasetsResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets", nil, &list); code != http.StatusOK {
		t.Fatal("list failed")
	}
	resident := 0
	for _, d := range list.Datasets {
		if !d.OutOfCore {
			t.Fatalf("dataset %s should be out-of-core", d.Name)
		}
		if d.Resident {
			resident++
		}
	}
	if resident > 1 {
		t.Fatalf("%d datasets resident, budget is 1", resident)
	}
}
