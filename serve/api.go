// Package serve implements the cobra-serve HTTP/JSON API: a long-lived
// daemon holding named, immutable cobra.Dataset handles so that provenance
// is captured and compressed ONCE and hypothetical what-if scenarios are
// answered many times, concurrently, from shared memoized state — the
// amortization at the heart of COBRA (ICDE 2019).
//
// The API surface:
//
//	GET    /healthz                       liveness
//	GET    /v1/datasets                   list datasets
//	PUT    /v1/datasets/{name}            register from text provenance + tree JSON
//	GET    /v1/datasets/{name}            one dataset's stats
//	DELETE /v1/datasets/{name}            close and remove
//	POST   /v1/datasets/{name}/capture    background capture job (generator-based)
//	POST   /v1/datasets/{name}/compress   background compress+apply job -> derived dataset
//	GET    /v1/jobs/{id}                  job status polling
//	POST   /v1/datasets/{name}/eval       evaluate scenario assignments
//	POST   /v1/datasets/{name}/sweep      answer a batch of bounds from the memoized curve
//	GET    /v1/datasets/{name}/frontier   the full tradeoff curve
//
// Every response the solver computes is bit-identical to the corresponding
// direct cobra.Dataset call for every worker count: the handlers only
// marshal float64 results through encoding/json, which round-trips floats
// exactly.
package serve

import "encoding/json"

// RegisterRequest registers a dataset synchronously from serialized
// provenance: the text polynomial format and nested-JSON abstraction
// trees. A positive MaxResidentMonomials selects the out-of-core
// representation (and makes the dataset evictable under registry
// pressure).
type RegisterRequest struct {
	Provenance           string            `json:"provenance"`
	Trees                []json.RawMessage `json:"trees"`
	MaxResidentMonomials int               `json:"maxResidentMonomials,omitempty"`
}

// DatasetInfo is one dataset's registry entry and input statistics.
type DatasetInfo struct {
	Name      string `json:"name"`
	Polys     int    `json:"polys"`
	Size      int    `json:"size"`
	Vars      int    `json:"vars"`
	Trees     int    `json:"trees"`
	OutOfCore bool   `json:"outOfCore"`
	Resident  bool   `json:"resident"`
}

// DatasetsResponse lists the registry.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// CaptureRequest starts a background capture job building a dataset from
// one of the built-in generators: "figure1" (the paper's Figure-1 database
// captured through the provenance-aware SQL engine) or "telephony" (the
// scalable synthetic telephony workload; Customers sets its size).
type CaptureRequest struct {
	Generator            string `json:"generator"`
	Customers            int    `json:"customers,omitempty"`
	MaxResidentMonomials int    `json:"maxResidentMonomials,omitempty"`
}

// CompressRequest starts a background job that compresses the dataset at
// Bound and registers the compressed provenance as a derived dataset named
// As ("{name}@{bound}" if empty), ready for cheap EvalBatch traffic.
type CompressRequest struct {
	Bound   int    `json:"bound"`
	Workers int    `json:"workers,omitempty"`
	As      string `json:"as,omitempty"`
}

// JobResponse acknowledges a background job submission.
type JobResponse struct {
	Job string `json:"job"`
}

// JobInfo is a background job's status for polling.
type JobInfo struct {
	ID      string          `json:"id"`
	State   string          `json:"state"` // "running", "done" or "failed"
	Error   string          `json:"error,omitempty"`
	Dataset string          `json:"dataset,omitempty"` // registered result dataset
	Result  *CompressResult `json:"result,omitempty"`
}

// CompressResult mirrors cobra.Result over the wire: the chosen cuts (node
// names per tree, forest order) and the size statistics.
type CompressResult struct {
	Bound        int        `json:"bound"`
	Size         int        `json:"size"`
	NumMeta      int        `json:"numMeta"`
	UsedMeta     int        `json:"usedMeta"`
	OriginalSize int        `json:"originalSize"`
	OriginalVars int        `json:"originalVars"`
	Cuts         [][]string `json:"cuts"`
}

// EvalRequest evaluates scenario assignments ({"variable": value} each;
// unassigned variables default to 1) against the dataset. Workers is the
// request's worker budget, clamped to the server's pool.
type EvalRequest struct {
	Assignments []map[string]float64 `json:"assignments"`
	Workers     int                  `json:"workers,omitempty"`
}

// EvalResponse carries one result row per assignment, in request order;
// row entries are one value per polynomial in set order.
type EvalResponse struct {
	Rows [][]float64 `json:"rows"`
}

// SweepRequest answers a batch of size bounds from the dataset's memoized
// tradeoff curve.
type SweepRequest struct {
	Bounds  []int `json:"bounds"`
	Workers int   `json:"workers,omitempty"`
}

// SweepAnswer is the per-bound outcome: a result, or infeasibility with
// the minimal achievable size, or the error per-bound compression would
// have returned.
type SweepAnswer struct {
	Bound         int             `json:"bound"`
	Result        *CompressResult `json:"result,omitempty"`
	Infeasible    bool            `json:"infeasible,omitempty"`
	MinAchievable int             `json:"minAchievable,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// SweepResponse carries the answers in request bound order.
type SweepResponse struct {
	Answers []SweepAnswer `json:"answers"`
}

// FrontierPoint is one point of the expressiveness/size tradeoff curve.
type FrontierPoint struct {
	NumMeta int      `json:"numMeta"`
	MinSize int      `json:"minSize"`
	Cut     []string `json:"cut"`
}

// FrontierResponse carries the complete curve in increasing NumMeta order.
type FrontierResponse struct {
	Points []FrontierPoint `json:"points"`
}

// ErrorResponse carries a request failure.
type ErrorResponse struct {
	Error string `json:"error"`
}
