package cobra_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// TestDatasetConcurrentAccess hammers one shared Dataset with concurrent
// EvalBatch / Sweep / Compress calls at Workers ∈ {1, 2, 8} and checks
// every answer against values precomputed on an independent copy of the
// same workload — the determinism contract says they must be identical
// regardless of interleaving or worker count. Run under -race.
func TestDatasetConcurrentAccess(t *testing.T) {
	for _, tc := range []struct {
		name        string
		maxResident int
	}{
		{"in-memory", 0},
		{"out-of-core", 512},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds, set, trees := telephonyDataset(t, tc.maxResident)
			ctx := context.Background()

			// Expected values from a fresh, unshared dataset so the
			// shared one's memoization cannot trivialize the check.
			ref, err := cobra.OpenDataset("ref", set, trees, cobra.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			asgs := telScenarios(t, ds.Names())
			wantRows, err := ref.EvalBatch(ctx, asgs)
			if err != nil {
				t.Fatal(err)
			}
			bounds := []int{0, set.Size() / 3, set.Size() / 2, set.Size() * 2}
			wantAns, err := ref.Sweep(ctx, bounds)
			if err != nil {
				t.Fatal(err)
			}
			compressBounds := []int{set.Size() / 3, set.Size() / 2, set.Size()}
			wantRes := make(map[int]*cobra.Result, len(compressBounds))
			for _, b := range compressBounds {
				r, err := ref.Compress(ctx, b)
				if err != nil {
					t.Fatal(err)
				}
				wantRes[b] = r
			}

			var (
				wg   sync.WaitGroup
				mu   sync.Mutex
				errs []string
			)
			fail := func(format string, args ...any) {
				mu.Lock()
				defer mu.Unlock()
				if len(errs) < 10 {
					errs = append(errs, testName(format, args...))
				}
			}
			for _, workers := range []int{1, 2, 8} {
				view := ds.WithWorkers(workers)
				for g := 0; g < 3; g++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rows, err := view.EvalBatch(ctx, asgs)
						if err != nil {
							fail("workers=%d EvalBatch: %v", w, err)
							return
						}
						for i := range rows {
							for j := range rows[i] {
								if rows[i][j] != wantRows[i][j] {
									fail("workers=%d EvalBatch row %d col %d: %v != %v", w, i, j, rows[i][j], wantRows[i][j])
									return
								}
							}
						}
					}(workers)
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						ans, err := view.Sweep(ctx, bounds)
						if err != nil {
							fail("workers=%d Sweep: %v", w, err)
							return
						}
						for i := range ans {
							g, want := ans[i], wantAns[i]
							if (g.Err == nil) != (want.Err == nil) {
								fail("workers=%d Sweep bound %d: err=%v want %v", w, g.Bound, g.Err, want.Err)
								return
							}
							if g.Err == nil && (g.Result.Size != want.Result.Size || g.Result.NumMeta != want.Result.NumMeta) {
								fail("workers=%d Sweep bound %d: size=%d meta=%d, want size=%d meta=%d",
									w, g.Bound, g.Result.Size, g.Result.NumMeta, want.Result.Size, want.Result.NumMeta)
								return
							}
						}
					}(workers)
					wg.Add(1)
					go func(w, bound int) {
						defer wg.Done()
						res, err := view.Compress(ctx, bound)
						if err != nil {
							fail("workers=%d Compress(%d): %v", w, bound, err)
							return
						}
						want := wantRes[bound]
						if res.Size != want.Size || res.NumMeta != want.NumMeta || !res.Cuts[0].Equal(want.Cuts[0]) {
							fail("workers=%d Compress(%d): size=%d meta=%d cut=%v, want size=%d meta=%d cut=%v",
								w, bound, res.Size, res.NumMeta, res.Cuts[0], want.Size, want.NumMeta, want.Cuts[0])
						}
					}(workers, compressBounds[g%len(compressBounds)])
				}
			}
			wg.Wait()
			for _, e := range errs {
				t.Error(e)
			}
		})
	}
}

// TestDatasetConcurrentEvictionTraffic interleaves Evict with live eval
// and sweep traffic on an out-of-core dataset: every answer must be
// identical whether it hit the resident source or triggered a reload.
func TestDatasetConcurrentEvictionTraffic(t *testing.T) {
	ds, set, trees := telephonyDataset(t, 512)
	ctx := context.Background()

	ref, err := cobra.OpenDataset("ref", set, trees, cobra.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	asgs := telScenarios(t, ds.Names())
	wantRows, err := ref.EvalBatch(ctx, asgs)
	if err != nil {
		t.Fatal(err)
	}
	bound := set.Size() / 2
	wantRes, err := ref.Compress(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(errs) < 10 {
			errs = append(errs, testName(format, args...))
		}
	}
	stop := make(chan struct{})
	var evictWG sync.WaitGroup
	evictWG.Add(1)
	go func() {
		defer evictWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ds.Evict(); err != nil {
				fail("Evict: %v", err)
				return
			}
		}
	}()
	for _, workers := range []int{1, 8} {
		view := ds.WithWorkers(workers)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for iter := 0; iter < 5; iter++ {
					rows, err := view.EvalBatch(ctx, asgs)
					if err != nil {
						fail("workers=%d eval under eviction: %v", w, err)
						return
					}
					for i := range rows {
						for j := range rows[i] {
							if rows[i][j] != wantRows[i][j] {
								fail("workers=%d eval under eviction row %d col %d: %v != %v",
									w, i, j, rows[i][j], wantRows[i][j])
								return
							}
						}
					}
				}
			}(workers)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := ds.Compress(ctx, bound)
		if err != nil {
			fail("Compress under eviction: %v", err)
			return
		}
		if res.Size != wantRes.Size || !res.Cuts[0].Equal(wantRes.Cuts[0]) {
			fail("Compress under eviction: size=%d cut=%v, want size=%d cut=%v",
				res.Size, res.Cuts[0], wantRes.Size, wantRes.Cuts[0])
		}
	}()
	// Let the traffic goroutines finish, then stop the evictor.
	wg.Wait()
	close(stop)
	evictWG.Wait()
	for _, e := range errs {
		t.Error(e)
	}
}

func testName(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
