package cobra_test

import (
	"context"
	"strings"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// captureFixture builds a small instrumented telephony-style catalog whose
// join output carries one provenance monomial per row.
func captureFixture(t *testing.T, customers int) (cobra.Catalog, *cobra.Names) {
	t.Helper()
	names := cobra.NewNames()

	cust := cobra.NewRelation("Cust",
		cobra.Column{Name: "ID"}, cobra.Column{Name: "Plan"}, cobra.Column{Name: "Zip"})
	plans := []string{"A", "F1", "Y1", "V"}
	for i := 0; i < customers; i++ {
		cust.Append(cobra.Int(int64(i+1)), cobra.Str(plans[i%len(plans)]),
			cobra.Str([]string{"10001", "10002", "10003"}[i%3]))
	}
	calls := cobra.NewRelation("Calls",
		cobra.Column{Name: "CID"}, cobra.Column{Name: "Mo"}, cobra.Column{Name: "Dur"})
	for i := 0; i < customers; i++ {
		for m := 1; m <= 4; m++ {
			calls.Append(cobra.Int(int64(i+1)), cobra.Int(int64(m)), cobra.Float(float64(60+(i*7+m*13)%900)))
		}
	}
	prices := cobra.NewRelation("Plans",
		cobra.Column{Name: "Plan"}, cobra.Column{Name: "Mo"}, cobra.Column{Name: "Price"})
	for pi, p := range plans {
		for m := 1; m <= 4; m++ {
			prices.Append(cobra.Str(p), cobra.Int(int64(m)), cobra.Float(0.1*float64(pi+1)+0.01*float64(m)))
		}
	}
	cat := cobra.Catalog{"Cust": cust, "Calls": calls, "Plans": prices}
	instrumented, err := cobra.ParameterizeColumn(prices, "Price", []cobra.VarSpec{
		{Prefix: "p_", Columns: []string{"Plan"}},
		{Prefix: "m", Columns: []string{"Mo"}},
	}, names)
	if err != nil {
		t.Fatal(err)
	}
	cat["Plans"] = instrumented
	return cat, names
}

const captureJoinQuery = `
SELECT Cust.Zip, Calls.Mo, Calls.Dur * Plans.Price AS rev
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan
  AND Cust.ID = Calls.CID
  AND Calls.Mo = Plans.Mo`

// TestCaptureToShardsBoundedAndIdentical: the facade's streaming capture
// must stay within the residency budget on a join whose full provenance
// exceeds it, and materialize to exactly Capture's set for Workers ∈
// {1, 2, 8}.
func TestCaptureToShardsBoundedAndIdentical(t *testing.T) {
	cat, names := captureFixture(t, 120)
	want, err := cobra.Capture(captureJoinQuery, cat, names, "rev")
	if err != nil {
		t.Fatal(err)
	}
	budget := want.Size() / 8
	if budget < 2 {
		t.Fatalf("fixture too small: %d monomials", want.Size())
	}
	for _, w := range []int{1, 2, 8} {
		opts := cobra.Options{Workers: w, MaxResidentMonomials: budget}
		ss, err := cobra.CaptureToShards(captureJoinQuery, cat, names, "rev", opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if peak := ss.PeakResidentMonomials(); peak > budget {
			t.Errorf("workers=%d: peak resident %d exceeds budget %d", w, peak, budget)
		}
		if ss.SpilledShards() == 0 {
			t.Errorf("workers=%d: no spills (size %d, budget %d)", w, ss.Size(), budget)
		}
		got, err := ss.Materialize()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d polynomials, want %d", w, got.Len(), want.Len())
		}
		for i := range want.Keys {
			if got.Keys[i] != want.Keys[i] || got.Polys[i].String(names) != want.Polys[i].String(names) {
				t.Fatalf("workers=%d: polynomial %d differs", w, i)
			}
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", w, err)
		}
	}
}

// TestCaptureToShardsThenCompress: the captured sharded set must flow
// straight into the streamed compression/valuation pipeline.
func TestCaptureToShardsThenCompress(t *testing.T) {
	cat, names := captureFixture(t, 60)
	full, err := cobra.Capture(captureJoinQuery, cat, names, "rev")
	if err != nil {
		t.Fatal(err)
	}
	opts := cobra.Options{Workers: 2, MaxResidentMonomials: full.Size() / 4}
	ss, err := cobra.CaptureToShards(captureJoinQuery, cat, names, "rev", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Std", "p_A"}, []string{"Std", "p_F1"},
		[]string{"Premium", "p_Y1"}, []string{"Premium", "p_V"})
	if err != nil {
		t.Fatal(err)
	}
	// One monomial per output row: no cut can merge monomials across
	// polynomials, so the bound admits the full size and the DP maximizes
	// expressiveness.
	bound := full.Size()
	want, err := cobra.Compress(full, cobra.Forest{tree}, bound)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := cobra.OpenDataset("captured", ss, cobra.Forest{tree}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.Compress(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != want.Size || got.NumMeta != want.NumMeta || !got.Cuts[0].Equal(want.Cuts[0]) {
		t.Fatalf("capture→compress differs: %+v vs %+v", got, want)
	}
}

// TestCaptureLineageToShardsMatches: tuple-level streaming capture at the
// facade, swept over worker counts.
func TestCaptureLineageToShardsMatches(t *testing.T) {
	cat, names := captureFixture(t, 80)
	annotated, err := cobra.AnnotateTuples(cat["Cust"], cobra.VarSpec{Prefix: "c", Columns: []string{"ID"}}, names)
	if err != nil {
		t.Fatal(err)
	}
	cat["Cust"] = annotated
	query := "SELECT Cust.Zip, Calls.Mo FROM Cust, Calls WHERE Cust.ID = Calls.CID AND Calls.Dur > 300"
	want, err := cobra.CaptureLineage(query, cat, names)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture produced no lineage rows")
	}
	for _, w := range []int{1, 2, 8} {
		opts := cobra.Options{Workers: w, MaxResidentMonomials: 1 + want.Size()/4}
		ss, err := cobra.CaptureLineageToShards(query, cat, names, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got, err := ss.Materialize()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d rows, want %d", w, got.Len(), want.Len())
		}
		for i := range want.Keys {
			if got.Keys[i] != want.Keys[i] || got.Polys[i].String(names) != want.Polys[i].String(names) {
				t.Fatalf("workers=%d: row %d differs", w, i)
			}
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", w, err)
		}
	}
}

// TestCaptureToShardsErrors: failures must not leave a usable or leaking
// set behind.
func TestCaptureToShardsErrors(t *testing.T) {
	cat, names := captureFixture(t, 10)
	if _, err := cobra.CaptureToShards("SELECT FROM", cat, names, "", cobra.Options{}); err == nil {
		t.Fatal("want parse error")
	}
	_, err := cobra.CaptureToShards(captureJoinQuery, cat, names, "nope", cobra.Options{})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-column error, got %v", err)
	}
}
