package cobra

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/polyio"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// Dataset is the session handle at the center of the API: provenance
// captured (or opened) ONCE, compressed and indexed ONCE, then queried many
// times — the amortization COBRA's hypothetical reasoning is built on. A
// Dataset is named, immutable, and safe for concurrent use: any number of
// goroutines may call Compress, Apply, EvalBatch, Frontier, ForestFrontier
// and Sweep on the same handle, and expensive state (the tradeoff curves,
// per-bound compressions, the compiled valuation program) is computed once
// and shared. Every answer is bit-identical to the corresponding one-shot
// facade call for every worker count and source representation.
//
// The backing store is chosen by Options.MaxResidentMonomials at
// capture/open time: an in-memory Set, or a spill-to-disk ShardedSet whose
// resident footprint stays within the budget. Out-of-core datasets can
// additionally be Evicted — persisted to their spill directory and dropped
// from memory entirely — and transparently re-open on the next call,
// answering identically.
//
// Methods take a context: a canceled context stops an in-flight solve at
// the next shard boundary (and between evaluation chunks), so a
// disconnected client does not keep a worker pool busy. Cancellation is
// never memoized — a later call with a live context recomputes.
//
// Results returned from a Dataset (curves, Results, cuts) are shared with
// other callers; treat them as read-only.
type Dataset struct {
	st      *datasetState
	workers int
}

// datasetState is the shared, reference-counted-by-GC state behind every
// WithWorkers view of a dataset.
type datasetState struct {
	name  string
	trees Forest
	opts  Options
	names *Names

	// Immutable input statistics, cached at open so they survive eviction.
	size     int
	npolys   int
	usedVars []Var

	// mu guards the source pointer and lifecycle: solves hold the read
	// lock for their whole pass (concurrent solves are safe — in-memory
	// reads are pure, sharded passes serialize inside ShardedSet), while
	// Evict, reload and Close take the write lock.
	mu        sync.RWMutex
	src       SetSource // guarded by mu; nil while evicted
	closed    bool      // guarded by mu
	outOfCore bool      // set at open, immutable afterwards
	evictDir  string    // guarded by mu; private dir holding the persisted stream
	evictFile string    // guarded by mu; set.v3 path once first evicted

	// memoMu guards the memoized derived state. Computations run outside
	// the lock (a busy/wait flight per memo), so a slow frontier never
	// blocks an EvalBatch.
	memoMu   sync.Mutex
	frontier memo[[]FrontierPoint]       // guarded by memoMu
	forest   memo[[]ForestFrontierPoint] // guarded by memoMu
	prog     memo[*Program]              // guarded by memoMu
	compress map[int]*memo[*Result]      // guarded by memoMu
}

// memo is a single-flight memo cell: the first caller computes, concurrent
// callers wait (or bail with their context), and everyone afterwards gets
// the stored value. Context cancellations are returned but never stored.
type memo[T any] struct {
	done bool
	val  T
	err  error
	busy bool
	wait chan struct{}
}

// runMemoized resolves m under mu, running compute at most once
// concurrently and storing its result unless it is the caller's own
// context cancellation.
func runMemoized[T any](mu *sync.Mutex, m *memo[T], ctx context.Context, compute func() (T, error)) (T, error) {
	mu.Lock()
	for {
		if m.done {
			v, err := m.val, m.err
			mu.Unlock()
			return v, err
		}
		if !m.busy {
			break
		}
		wait := m.wait
		mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
		mu.Lock()
	}
	m.busy = true
	m.wait = make(chan struct{})
	mu.Unlock()

	v, err := compute()

	mu.Lock()
	m.busy = false
	close(m.wait)
	if err == nil || !isCtxErr(err) {
		m.done, m.val, m.err = true, v, err
	}
	mu.Unlock()
	return v, err
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// OpenDataset wraps an existing source — an in-memory Set or a ShardedSet
// — as a named Dataset over the given abstraction forest. The Dataset
// takes ownership of the source: do not mutate it afterwards, and release
// it through Dataset.Close. trees may be empty if only EvalBatch is
// needed; the compression and frontier methods then fail like their
// one-shot counterparts.
func OpenDataset(name string, src SetSource, trees Forest, opts Options) (*Dataset, error) {
	if src == nil {
		return nil, errors.New("cobra: OpenDataset needs a source")
	}
	base := polynomial.Unwrap(src)
	_, ooc := base.(*ShardedSet)
	if ix, ok := base.(polynomial.IndexedSource); ok && ix.ConcurrentPasses() {
		ooc = true // an indexed on-disk set is out-of-core by construction
	}
	st := &datasetState{
		name:      name,
		trees:     trees,
		opts:      opts,
		names:     src.Namespace(),
		size:      src.Size(),
		npolys:    src.Len(),
		usedVars:  src.UsedVars(),
		src:       src,
		outOfCore: ooc,
	}
	return &Dataset{st: st, workers: opts.Workers}, nil
}

// CaptureDataset runs a query over the instrumented catalog and captures
// its provenance polynomials straight into a named Dataset — in memory, or
// streamed into a budgeted ShardedSet when opts.MaxResidentMonomials is
// set, in which case the full provenance never materializes. names must be
// the namespace the catalog was instrumented under. The captured
// polynomials are bit-identical to Capture's for every worker count.
func CaptureDataset(ctx context.Context, name, query string, cat Catalog, names *Names, valueCol string, trees Forest, opts Options) (*Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.MaxResidentMonomials > 0 {
		b := polynomial.NewShardBuilder(names, opts.shardOptions())
		defer b.Discard() // release partial spill files on any error path
		var sink SetSink = b
		if ctx.Done() != nil {
			sink = ctxSink{ctx: ctx, sink: b}
		}
		if err := provenance.CaptureStream(query, cat, valueCol, sink, opts.Workers); err != nil {
			return nil, err
		}
		ss, err := b.Finish()
		if err != nil {
			return nil, err
		}
		return OpenDataset(name, ss, trees, opts)
	}
	set, err := provenance.CaptureN(query, cat, names, valueCol, opts.Workers)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return OpenDataset(name, set, trees, opts)
}

// ctxSink threads a context through a push-based capture: each appended
// polynomial first checks the context, so a canceled capture job stops
// within one row.
type ctxSink struct {
	ctx  context.Context
	sink SetSink
}

func (c ctxSink) Add(key string, p Polynomial) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.sink.Add(key, p)
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.st.name }

// Names returns the variable namespace the dataset's polynomials, trees
// and assignments share.
func (d *Dataset) Names() *Names { return d.st.names }

// Trees returns the abstraction forest the dataset compresses under.
func (d *Dataset) Trees() Forest { return d.st.trees }

// Size returns the total number of monomials — the provenance size measure
// optimized by COBRA. Cached at open time, so it answers even while the
// dataset is evicted.
func (d *Dataset) Size() int { return d.st.size }

// Len returns the number of polynomials (query-output groups).
func (d *Dataset) Len() int { return d.st.npolys }

// UsedVars returns the distinct variables appearing in the dataset,
// ascending.
func (d *Dataset) UsedVars() []Var { return append([]Var(nil), d.st.usedVars...) }

// Workers returns the worker budget this handle solves with.
func (d *Dataset) Workers() int { return d.workers }

// OutOfCore reports whether the dataset is backed by a spill-to-disk
// ShardedSet (true) or an in-memory Set (false).
func (d *Dataset) OutOfCore() bool { return d.st.outOfCore }

// Resident reports whether the backing source is currently in memory (an
// evicted dataset answers false until its next use reloads it).
func (d *Dataset) Resident() bool {
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	return d.st.src != nil
}

// WithWorkers returns a view of the same dataset whose solves use up to n
// goroutines — request-scoped worker budgeting: the underlying state,
// memos and source are shared, and since every computation is
// bit-identical for every worker count, views with different budgets share
// their memoized results soundly.
func (d *Dataset) WithWorkers(n int) *Dataset {
	return &Dataset{st: d.st, workers: n}
}

// acquire pins the backing source for a read pass, transparently reloading
// an evicted dataset from its persisted stream. The returned release
// function must be called when the pass is done.
func (st *datasetState) acquire() (SetSource, func(), error) {
	for {
		st.mu.RLock()
		if st.closed {
			st.mu.RUnlock()
			return nil, nil, fmt.Errorf("cobra: dataset %q is closed", st.name)
		}
		if st.src != nil {
			return st.src, st.mu.RUnlock, nil
		}
		st.mu.RUnlock()
		if err := st.reload(); err != nil {
			return nil, nil, err
		}
	}
}

// reload re-opens an evicted dataset from its persisted v3 stream as an
// IndexedSet — shards decode straight from the indexed file on demand,
// under the original residency budget, without re-spilling a ShardedSet.
// Interning against the original shared namespace maps every variable to
// its original id, so the reloaded set is bit-identical to the evicted
// one; the footer index additionally lets multi-worker passes decode
// shards in parallel.
func (st *datasetState) reload() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("cobra: dataset %q is closed", st.name)
	}
	if st.src != nil { // lost the race to another reload: done
		return nil
	}
	if st.evictFile == "" {
		return fmt.Errorf("cobra: dataset %q has no source and no persisted stream", st.name)
	}
	ix, err := polyio.OpenIndexedFile(st.evictFile, st.names)
	if err != nil {
		return fmt.Errorf("cobra: re-opening evicted dataset %q: %w", st.name, err)
	}
	ix.SetResidencyBudget(st.opts.MaxResidentMonomials)
	st.src = ix
	return nil
}

// Evict persists an out-of-core dataset to its spill directory (a
// compressed, indexed v3 stream, written once — the dataset is immutable)
// and releases the
// resident source, so an idle dataset costs no memory. The next call on
// the dataset transparently re-opens it and answers identically; already
// memoized curves and compressions survive eviction untouched. It reports
// whether anything was evicted: in-memory and already-evicted datasets
// return false. Evict waits for in-flight solves to finish.
func (d *Dataset) Evict() (bool, error) {
	st := d.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || !st.outOfCore || st.src == nil {
		return false, nil
	}
	if st.evictFile == "" {
		if st.evictDir == "" {
			dir, err := os.MkdirTemp(st.opts.SpillDir, "cobra-dataset-")
			if err != nil {
				return false, fmt.Errorf("cobra: creating eviction dir for %q: %w", st.name, err)
			}
			st.evictDir = dir
		}
		path := filepath.Join(st.evictDir, "set.v3")
		f, err := os.Create(path)
		if err != nil {
			return false, fmt.Errorf("cobra: evicting dataset %q: %w", st.name, err)
		}
		err = polyio.WriteSetStreamV3(f, st.src, polyio.V3Options{Compress: true})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
			return false, fmt.Errorf("cobra: evicting dataset %q: %w", st.name, err)
		}
		st.evictFile = path
	}
	if c, ok := st.src.(io.Closer); ok {
		c.Close()
	}
	st.src = nil
	return true, nil
}

// Close releases the dataset: the backing source (spill files included)
// and any persisted eviction stream. Close waits for in-flight solves to
// finish; the dataset must not be used afterwards.
func (d *Dataset) Close() error {
	st := d.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var err error
	if c, ok := st.src.(io.Closer); ok {
		err = c.Close()
	}
	st.src = nil
	if st.evictDir != "" {
		if rerr := os.RemoveAll(st.evictDir); err == nil {
			err = rerr
		}
	}
	return err
}

// Compress finds the optimal abstraction under the bound — the exact DP
// for one tree, coordinate descent for a forest — memoized per bound: the
// first call per bound pays the solve, repeats are a lookup. The Result is
// bit-identical to CompressWith on the materialized set for every worker
// count and source representation.
func (d *Dataset) Compress(ctx context.Context, bound int) (*Result, error) {
	st := d.st
	st.memoMu.Lock()
	if st.compress == nil {
		st.compress = make(map[int]*memo[*Result])
	}
	m := st.compress[bound]
	if m == nil {
		m = &memo[*Result]{}
		st.compress[bound] = m
	}
	st.memoMu.Unlock()
	return runMemoized(&st.memoMu, m, ctx, func() (*Result, error) {
		src, release, err := st.acquire()
		if err != nil {
			return nil, err
		}
		defer release()
		return core.CompressSource(polynomial.WithContext(ctx, src), st.trees, bound, d.workers)
	})
}

// Apply applies cuts, producing a derived Dataset of the same
// representation: an in-memory dataset yields an in-memory one, an
// out-of-core dataset streams into a new ShardedSet under the same
// residency budget. The derived dataset shares the namespace and forest
// and is independently closable.
func (d *Dataset) Apply(ctx context.Context, cuts ...Cut) (*Dataset, error) {
	st := d.st
	src, release, err := st.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	name := st.name + "/applied"
	if s, ok := polynomial.Unwrap(src).(*Set); ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return OpenDataset(name, abstraction.ApplyN(s, d.workers, cuts...), st.trees, st.opts)
	}
	if st.outOfCore {
		// ShardedSet or a reloaded IndexedSet: stream into a fresh budgeted
		// ShardedSet so the derived dataset stays out-of-core.
		shardOpts := st.opts.shardOptions()
		if ss, ok := polynomial.Unwrap(src).(*ShardedSet); ok {
			shardOpts = ss.Options()
		}
		b := polynomial.NewShardBuilder(st.names, shardOpts)
		defer b.Discard() // release partial spill files on any error path
		if err := abstraction.ApplySource(polynomial.WithContext(ctx, src), b, d.workers, cuts...); err != nil {
			return nil, err
		}
		ss, err := b.Finish()
		if err != nil {
			return nil, err
		}
		return OpenDataset(name, ss, st.trees, st.opts)
	}
	out := polynomial.NewSet(st.names)
	if err := abstraction.ApplySource(polynomial.WithContext(ctx, src), out, d.workers, cuts...); err != nil {
		return nil, err
	}
	return OpenDataset(name, out, st.trees, st.opts)
}

// evalChunkRows is how many scenario rows evaluate between context checks
// on the in-memory EvalBatch path.
const evalChunkRows = 1024

// EvalBatch evaluates every polynomial of the dataset under many scenario
// assignments — one result row per assignment, in assignment order. For an
// in-memory dataset the set is compiled to a Program once and reused by
// every subsequent call (this is the hot path a serving deployment pays
// per request); out-of-core datasets compile and evaluate one shard at a
// time within the residency budget. Rows are bit-identical to Compile +
// EvalBatch on the materialized set for every worker count.
func (d *Dataset) EvalBatch(ctx context.Context, assignments []*Assignment) ([][]float64, error) {
	st := d.st
	src, release, err := st.acquire()
	if err != nil {
		return nil, err
	}
	if s, ok := polynomial.Unwrap(src).(*Set); ok {
		//cobra:lockguard runMemoized locks memoMu itself; only the cell's address is taken here
		prog, err := runMemoized(&st.memoMu, &st.prog, ctx, func() (*Program, error) {
			return valuation.Compile(s), nil
		})
		// The compiled program no longer needs the source (and in-memory
		// datasets never evict), so release before evaluating: concurrent
		// EvalBatch calls proceed fully in parallel.
		release()
		if err != nil {
			return nil, err
		}
		return evalBatchProg(ctx, prog, assignments, d.workers)
	}
	defer release()
	return valuation.EvalBatchSource(polynomial.WithContext(ctx, src), assignments, d.workers)
}

// evalBatchProg evaluates assignments in slices of evalChunkRows, checking
// the context between slices. Each row evaluates independently, so slicing
// never changes the rows.
func evalBatchProg(ctx context.Context, prog *Program, assignments []*Assignment, workers int) ([][]float64, error) {
	if ctx.Done() == nil {
		return prog.EvalBatchN(assignments, nil, workers), nil
	}
	out := make([][]float64, 0, len(assignments))
	for lo := 0; lo < len(assignments); lo += evalChunkRows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+evalChunkRows, len(assignments))
		out = append(out, prog.EvalBatchN(assignments[lo:hi], nil, workers)...)
	}
	return out, nil
}

// Frontier returns the dataset's complete expressiveness/size tradeoff
// curve — for every feasible number of meta-variables, the minimal
// compressed size and a cut attaining it — computed by ONE DP run on first
// use and memoized; Sweep and repeated Frontier calls answer from the
// cache. The dataset must have exactly one abstraction tree (use
// ForestFrontier otherwise).
func (d *Dataset) Frontier(ctx context.Context) ([]FrontierPoint, error) {
	st := d.st
	if len(st.trees) != 1 {
		return nil, fmt.Errorf("cobra: Frontier needs exactly one abstraction tree (dataset %q has %d); use ForestFrontier", st.name, len(st.trees))
	}
	//cobra:lockguard runMemoized locks memoMu itself; only the cell's address is taken here
	return runMemoized(&st.memoMu, &st.frontier, ctx, func() ([]FrontierPoint, error) {
		src, release, err := st.acquire()
		if err != nil {
			return nil, err
		}
		defer release()
		return core.FrontierSourceN(polynomial.WithContext(ctx, src), st.trees[0], d.workers)
	})
}

// ForestFrontier returns the forest-level tradeoff curve (one DP run per
// tree composed by a knapsack DP over the trees), memoized like Frontier.
// It requires each monomial to touch at most one tree of the forest
// (CrossTreeError otherwise).
func (d *Dataset) ForestFrontier(ctx context.Context) ([]ForestFrontierPoint, error) {
	st := d.st
	//cobra:lockguard runMemoized locks memoMu itself; only the cell's address is taken here
	return runMemoized(&st.memoMu, &st.forest, ctx, func() ([]ForestFrontierPoint, error) {
		src, release, err := st.acquire()
		if err != nil {
			return nil, err
		}
		defer release()
		return core.FrontierForestSource(polynomial.WithContext(ctx, src), st.trees, d.workers)
	})
}

// Sweep answers an arbitrary batch of bounds from the memoized tradeoff
// curve: the first sweep (or Frontier call) pays the DP once, every bound
// ever after is a lookup. Answers are returned in bounds order and are
// bit-identical to FrontierSweep over the same source.
func (d *Dataset) Sweep(ctx context.Context, bounds []int) ([]SweepAnswer, error) {
	st := d.st
	if len(st.trees) == 0 {
		return nil, errors.New("core: no abstraction trees given")
	}
	var (
		single []FrontierPoint
		forest []ForestFrontierPoint
		err    error
	)
	if len(st.trees) == 1 {
		single, err = d.Frontier(ctx)
	} else {
		forest, err = d.ForestFrontier(ctx)
	}
	if err != nil {
		return nil, err
	}
	return core.AnswersFromCurves(len(st.trees), single, forest, st.size, st.usedVars, bounds), nil
}
