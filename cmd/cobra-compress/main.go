// Command cobra-compress compresses serialized provenance polynomials under
// an abstraction tree and a bound — the back-end box of the paper's Figure-4
// architecture, consumable from any provenance engine via the documented
// formats.
//
// Usage:
//
//	cobra-compress -in prov.txt -tree tree.json -bound 94600 -out compressed.txt
//	cobra-compress -in prov.bin -in-format binary -tree tree.json -bound 40000 -algo greedy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	cobra "github.com/cobra-prov/cobra"
)

func main() {
	var (
		in        = flag.String("in", "-", "input provenance set (- = stdin)")
		inFormat  = flag.String("in-format", "text", "text | json | binary")
		treeFile  = flag.String("tree", "", "abstraction tree JSON (required)")
		bound     = flag.Int("bound", 0, "bound on the number of monomials (required)")
		algo      = flag.String("algo", "dp", "dp (optimal) | greedy")
		out       = flag.String("out", "-", "output file for the compressed set (- = stdout)")
		outFormat = flag.String("out-format", "", "text | json | binary (default: same as input)")
	)
	flag.Parse()
	if err := run(*in, *inFormat, *treeFile, *bound, *algo, *out, *outFormat); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-compress:", err)
		os.Exit(1)
	}
}

func run(in, inFormat, treeFile string, bound int, algo, out, outFormat string) error {
	if treeFile == "" {
		return fmt.Errorf("-tree is required")
	}
	if bound <= 0 {
		return fmt.Errorf("-bound must be positive")
	}
	if outFormat == "" {
		outFormat = inFormat
	}

	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	names := cobra.NewNames()
	var (
		set *cobra.Set
		err error
	)
	switch inFormat {
	case "text":
		set, err = cobra.ReadSetText(r, names)
	case "json":
		set, err = cobra.ReadSetJSON(r, names)
	case "binary":
		set, err = cobra.ReadSetBinary(r, names)
	default:
		return fmt.Errorf("unknown input format %q", inFormat)
	}
	if err != nil {
		return err
	}

	treeData, err := os.ReadFile(treeFile)
	if err != nil {
		return err
	}
	tree, err := cobra.TreeFromJSON(treeData, names)
	if err != nil {
		return err
	}

	var res *cobra.Result
	switch algo {
	case "dp":
		res, err = cobra.Compress(set, cobra.Forest{tree}, bound)
	case "greedy":
		res, err = cobra.CompressGreedy(set, tree, bound)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	comp := res.Apply(set)

	fmt.Fprintf(os.Stderr, "cobra-compress: %d -> %d monomials (%.1f%%), cut %s (%d meta-variables)\n",
		res.OriginalSize, res.Size, 100*res.CompressionRatio(), res.Cuts[0], res.NumMeta)

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch outFormat {
	case "text":
		return cobra.WriteSetText(w, comp)
	case "json":
		return cobra.WriteSetJSON(w, comp)
	case "binary":
		return cobra.WriteSetBinary(w, comp)
	default:
		return fmt.Errorf("unknown output format %q", outFormat)
	}
}
