package main

import (
	"os"
	"path/filepath"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// writeFixtures creates a provenance file and a matching tree file.
func writeFixtures(t *testing.T) (provPath, treePath string) {
	t.Helper()
	dir := t.TempDir()
	provPath = filepath.Join(dir, "prov.txt")
	treePath = filepath.Join(dir, "tree.json")
	prov := "# cobra provenance set v1\n" +
		"g1\t3*a*m + 4*b*m + 5*c*m\n" +
		"g2\t6*a*m + 7*c*m\n"
	tree := `{"name":"R","children":[
		{"name":"AB","children":[{"name":"a"},{"name":"b"}]},
		{"name":"c"}]}`
	if err := os.WriteFile(provPath, []byte(prov), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(treePath, []byte(tree), 0o644); err != nil {
		t.Fatal(err)
	}
	return provPath, treePath
}

func TestCompressDP(t *testing.T) {
	prov, tree := writeFixtures(t)
	out := filepath.Join(t.TempDir(), "comp.txt")
	if err := run(prov, "text", tree, 4, "dp", out, ""); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	set, err := cobra.ReadSetText(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Merging a,b into AB: g1 has (AB, c), g2 has (a->AB, c) => 4 monomials.
	if set.Size() != 4 {
		t.Fatalf("compressed size = %d, want 4", set.Size())
	}
}

func TestCompressGreedyAndFormats(t *testing.T) {
	prov, tree := writeFixtures(t)
	out := filepath.Join(t.TempDir(), "comp.json")
	if err := run(prov, "text", tree, 4, "greedy", out, "json"); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	set, err := cobra.ReadSetJSON(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() > 4 {
		t.Fatalf("greedy exceeded bound: %d", set.Size())
	}
}

func TestCompressErrors(t *testing.T) {
	prov, tree := writeFixtures(t)
	if err := run(prov, "text", "", 4, "dp", "-", ""); err == nil {
		t.Fatal("missing tree should fail")
	}
	if err := run(prov, "text", tree, 0, "dp", "-", ""); err == nil {
		t.Fatal("missing bound should fail")
	}
	if err := run(prov, "text", tree, 4, "nope", "-", ""); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if err := run(prov, "nope", tree, 4, "dp", "-", ""); err == nil {
		t.Fatal("unknown input format should fail")
	}
	if err := run("/no/such/file", "text", tree, 4, "dp", "-", ""); err == nil {
		t.Fatal("missing input should fail")
	}
	if err := run(prov, "text", "/no/such/tree", 4, "dp", "-", ""); err == nil {
		t.Fatal("missing tree file should fail")
	}
	if err := run(prov, "text", tree, 1, "dp", "-", ""); err == nil {
		t.Fatal("infeasible bound should fail")
	}
}
