// Command cobra-serve is the long-lived what-if daemon: it holds named,
// immutable compressed provenance datasets in memory (or out-of-core,
// under a residency budget) and answers concurrent scenario-evaluation and
// frontier-sweep requests over HTTP/JSON. Capture and compression happen
// once, as background jobs; every evaluation afterwards is a lookup plus a
// cheap valuation — the amortization COBRA is designed around.
//
// Usage:
//
//	cobra-serve [-addr :8080] [-max-workers N] [-max-resident-datasets N] [-spill-dir DIR]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish (with a drain timeout), background jobs are canceled and awaited,
// and every dataset's spill state is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cobra-prov/cobra/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-serve:", err)
		os.Exit(1)
	}
}

// run builds and serves until ctx is canceled. ready, when non-nil, is
// called with the bound address once the listener accepts connections —
// the test seam (use addr "127.0.0.1:0" for an ephemeral port).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("cobra-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxWorkers  = fs.Int("max-workers", 0, "solver worker pool shared by all requests (0 = all cores)")
		maxResident = fs.Int("max-resident-datasets", 0, "out-of-core datasets resident at once (0 = unlimited)")
		spillDir    = fs.String("spill-dir", "", "directory for out-of-core state (default: system temp)")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		MaxWorkers:          *maxWorkers,
		MaxResidentDatasets: *maxResident,
		SpillDir:            *spillDir,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	fmt.Fprintf(stdout, "cobra-serve listening on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	errc := make(chan error, 1)
	//cobra:goroutine daemon accept loop; lifetime bounded by Serve returning on listener close
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "cobra-serve shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
