package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndShutsDownGracefully boots the daemon on an ephemeral
// port, checks it answers, then cancels the context and expects a clean
// drain.
func TestRunServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	var out, errOut strings.Builder
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-max-workers", "2", "-drain", "2s"},
			&out, &errOut, func(addr string) { addrc <- addr })
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("run exited early: %v (stderr: %s)", err, errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health["ok"] {
		t.Fatalf("healthz: %v", health)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("unexpected log output: %q", out.String())
	}
}

// TestRunBadFlags exercises the flag-error path.
func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut, nil); err == nil {
		t.Fatal("expected flag error")
	}
}
