package main

import (
	"strings"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

// newTestSession builds a Figure-1 session.
func newTestSession(t *testing.T) *session {
	t.Helper()
	names := cobra.NewNames()
	set, _, err := loadDataset("figure1", 0, names)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loadTree("", names)
	if err != nil {
		t.Fatal(err)
	}
	return newSession(names, set, tree)
}

// script runs the REPL over the given commands and returns the transcript.
func script(t *testing.T, s *session, commands ...string) string {
	t.Helper()
	var out strings.Builder
	in := strings.NewReader(strings.Join(commands, "\n") + "\n")
	if err := repl(s, in, &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestReplWalkthrough(t *testing.T) {
	s := newTestSession(t)
	out := script(t, s,
		"help",
		"tree",
		"frontier",
		"bound 6",
		"set m3 0.8",
		"scenario",
		"show",
		"quit",
	)
	for _, want := range []string{
		"COBRA interactive — 2 polynomials, 14 monomials",
		"bound N",                // help text
		"Plans",                  // tree
		"k= 1  min size       4", // frontier
		"meta-variables",         // bound result
		"m3 := 0.8",              // set
		"m3 = 0.8",               // scenario
		"max relative deviation", // show
		"speedup",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
}

// TestReplSweepAndSliderFromOneCurve: a whole batch of bounds is answered
// from the session's cached frontier; the bound slider itself answers by
// lookup and still reports infeasibility exactly like per-bound
// compression did.
func TestReplSweep(t *testing.T) {
	s := newTestSession(t)
	out := script(t, s,
		"sweep 14 6 4 3",
		"sweep",
		"sweep abc",
		"bound 6",
		"quit",
	)
	for _, want := range []string{
		"bound      14 -> size      14, 11 meta-variables",
		"bound       6 -> size       6, 4 meta-variables",
		"bound       4 -> size       4, 1 meta-variables, cut {Plans}",
		"bound       3 -> infeasible (min achievable 4)",
		"usage: sweep N [N ...]",
		`bad bound "abc"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
	// The slider answer must match what the sweep reported for bound 6.
	if !strings.Contains(out, "6 monomials, 4 meta-variables") {
		t.Fatalf("bound lookup disagrees with sweep:\n%s", out)
	}
}

// TestReplBoundMatchesCompress pins the slider's lookup answers to
// per-bound compression across the whole feasible range.
func TestReplBoundMatchesCompress(t *testing.T) {
	s := newTestSession(t)
	for bound := 4; bound <= 15; bound++ {
		res, err := cobra.Compress(s.set, cobra.Forest{s.tree}, bound)
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		fr, err := s.curve()
		if err != nil {
			t.Fatal(err)
		}
		p, ok := cobra.BestForBound(fr, bound)
		if !ok {
			t.Fatalf("bound %d: curve has no point, compress found %+v", bound, res)
		}
		if p.MinSize != res.Size || p.NumMeta != res.NumMeta || !p.Cut.Equal(res.Cuts[0]) {
			t.Fatalf("bound %d: curve (%d, %d, %s) != compress (%d, %d, %s)",
				bound, p.NumMeta, p.MinSize, p.Cut, res.NumMeta, res.Size, res.Cuts[0])
		}
	}
}

func TestReplCutNavigation(t *testing.T) {
	s := newTestSession(t)
	out := script(t, s,
		"cut Business,Special,Standard",
		"refine Business",
		"coarsen Business",
		"cut",
		"quit",
	)
	if !strings.Contains(out, "cut {Standard, Special, Business}: 6 monomials") {
		t.Fatalf("explicit cut failed:\n%s", out)
	}
	if !strings.Contains(out, "SB") { // refined cut shows SB
		t.Fatalf("refine not visible:\n%s", out)
	}
	if !strings.Contains(out, "current cut: {Standard, Special, Business}") {
		t.Fatalf("final cut wrong:\n%s", out)
	}
}

func TestReplMetaOverride(t *testing.T) {
	s := newTestSession(t)
	out := script(t, s,
		"bound 6",
		"set Business 1.1",
		"scenario",
		"show",
		"unset Business",
		"scenario",
		"quit",
	)
	if !strings.Contains(out, "meta-variable Business := 1.1") {
		t.Fatalf("meta override not applied:\n%s", out)
	}
	if !strings.Contains(out, "Business = 1.1 (meta override)") {
		t.Fatalf("scenario listing wrong:\n%s", out)
	}
	if !strings.Contains(out, "unset Business") {
		t.Fatalf("unset failed:\n%s", out)
	}
}

func TestReplErrorsKeepLoopAlive(t *testing.T) {
	s := newTestSession(t)
	out := script(t, s,
		"bogus",
		"bound",
		"bound xyz",
		"bound 1",            // infeasible
		"cut Plans,Business", // not an antichain
		"refine",
		"refine nosuch",
		"refine p1", // leaf
		"coarsen Plans",
		"set ghost 1",
		"set m3 abc",
		"set",
		"unset",
		"quit",
	)
	for _, want := range []string{
		"unknown command",
		"usage: bound N",
		"bad bound",
		"not achievable",
		"error:",
		"no node named",
		"cannot refine leaf",
		"unknown variable",
		"bad value",
		"usage: set VAR VALUE",
		"usage: unset VAR",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestReplEOFExitsCleanly(t *testing.T) {
	s := newTestSession(t)
	var out strings.Builder
	if err := repl(s, strings.NewReader("tree\n"), &out); err != nil {
		t.Fatal(err)
	}
}

func TestReplMetaOverrideResetOnCutChange(t *testing.T) {
	s := newTestSession(t)
	script(t, s,
		"bound 6",
		"set Business 1.5",
		"bound 14",
		"quit",
	)
	if s.metaOverride.Len() != 0 {
		t.Fatal("meta overrides must reset when the cut changes")
	}
}
