// Command cobra-demo walks through the COBRA demonstration flow of the
// paper (Figures 3–5): it shows the analysis query result under the default
// assignment, builds/loads an abstraction tree, compresses the provenance
// under a bound, presents the meta-variable assignment screen with default
// values, applies a hypothetical scenario, and reports result changes,
// provenance sizes and the assignment speedup. With -under-the-hood it also
// prints the provenance excerpts and the cut chosen by the algorithm.
//
// Usage:
//
//	cobra-demo -dataset figure1
//	cobra-demo -dataset telephony -customers 100000 -bound 9000 \
//	    -scenario m3=0.8 -under-the-hood
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

func main() {
	var (
		dataset      = flag.String("dataset", "figure1", "figure1 | telephony")
		customers    = flag.Int("customers", 100_000, "telephony scale (customers)")
		bound        = flag.Int("bound", 0, "bound on the number of monomials (0 = 2/3 of the original size)")
		scenario     = flag.String("scenario", "m3=0.8", "comma-separated var=value assignments")
		treeFile     = flag.String("tree", "", "abstraction tree JSON (default: the Figure-2 plans tree)")
		underTheHood = flag.Bool("under-the-hood", false, "show provenance excerpts, the chosen cut, frontier, sensitivities")
		interactive  = flag.Bool("interactive", false, "drop into the interactive session instead of the scripted walk-through")
	)
	flag.Parse()
	if *interactive {
		if err := runInteractive(*dataset, *customers, *treeFile); err != nil {
			fmt.Fprintln(os.Stderr, "cobra-demo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dataset, *customers, *bound, *scenario, *treeFile, *underTheHood); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-demo:", err)
		os.Exit(1)
	}
}

// runInteractive builds the session for the dataset and hands control to
// the REPL on stdin/stdout.
func runInteractive(dataset string, customers int, treeFile string) error {
	names := cobra.NewNames()
	set, _, err := loadDataset(dataset, customers, names)
	if err != nil {
		return err
	}
	tree, err := loadTree(treeFile, names)
	if err != nil {
		return err
	}
	return repl(newSession(names, set, tree), os.Stdin, os.Stdout)
}

// loadDataset builds the provenance set for the chosen dataset.
func loadDataset(dataset string, customers int, names *polynomial.Names) (*cobra.Set, string, error) {
	switch dataset {
	case "figure1":
		cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
		if err != nil {
			return nil, "", err
		}
		set, err := cobra.Capture(telephony.RevenueQuery, cat, names, "revenue")
		if err != nil {
			return nil, "", err
		}
		return set, "Figure-1 telephony database (7 customers, months 1 and 3)", nil
	case "telephony":
		set := telephony.DirectProvenance(telephony.Config{Customers: customers}, names)
		return set, fmt.Sprintf("synthetic telephony database, %d customers", customers), nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q", dataset)
	}
}

// loadTree reads the tree file or falls back to the Figure-2 plans tree.
func loadTree(treeFile string, names *polynomial.Names) (*cobra.Tree, error) {
	if treeFile == "" {
		return telephony.PlansTree(names), nil
	}
	data, err := os.ReadFile(treeFile)
	if err != nil {
		return nil, err
	}
	return cobra.TreeFromJSON(data, names)
}

func run(dataset string, customers, bound int, scenario, treeFile string, hood bool) error {
	names := cobra.NewNames()

	// Step 1: provenance.
	set, description, err := loadDataset(dataset, customers, names)
	if err != nil {
		return err
	}
	fmt.Printf("Dataset: %s\n", description)
	fmt.Printf("Provenance: %d polynomials, %d monomials, %d variables\n\n",
		set.Len(), set.Size(), set.NumVars())

	// Step 2: query result under the default (identity) assignment.
	base := cobra.NewAssignment(names)
	baseline := cobra.EvalSet(set, base)
	fmt.Println("Query result under the default assignment:")
	printResults(set.Keys, baseline, nil)

	// Step 3: abstraction tree.
	tree, err := loadTree(treeFile, names)
	if err != nil {
		return err
	}
	fmt.Println("\nAbstraction tree:")
	fmt.Print(tree.String())

	// Step 4: compression. One frontier run (a single DP pass) powers the
	// bound slider: the chosen bound is answered by lookup, and the same
	// curve backs the under-the-hood display — sliding to any other bound
	// would cost no further DP runs.
	if bound <= 0 {
		bound = set.Size() * 2 / 3
	}
	frontier, err := cobra.Frontier(set, tree)
	if err != nil {
		return err
	}
	point, ok := cobra.BestForBound(frontier, bound)
	if !ok {
		return &cobra.InfeasibleError{Bound: bound, MinAchievable: minAchievable(frontier)}
	}
	comp := cobra.Apply(set, point.Cut)
	ratio := 1.0
	if set.Size() > 0 {
		ratio = float64(point.MinSize) / float64(set.Size())
	}
	fmt.Printf("\nBound %d: compressed to %d monomials (%.1f%% of original), %d meta-variables\n",
		bound, point.MinSize, 100*ratio, point.NumMeta)
	if hood {
		fmt.Printf("Chosen cut: %s\n", point.Cut)
		fmt.Println("Provenance excerpt (first polynomial, up to 8 monomials):")
		printExcerpt(set, names)
		fmt.Println("Compressed excerpt:")
		printExcerpt(comp, names)
		fmt.Println("Tradeoff frontier (meta-variables -> minimal size):")
		for _, p := range frontier {
			marker := ""
			if p.NumMeta == point.NumMeta {
				marker = "   <- chosen for this bound"
			}
			fmt.Printf("  k=%2d  size %7d  cut %s%s\n", p.NumMeta, p.MinSize, p.Cut, marker)
		}
		fmt.Println("Most sensitive variables at the default assignment:")
		for i, s := range cobra.Sensitivity(set, base) {
			if i == 5 {
				break
			}
			fmt.Printf("  %-8s %14.2f\n", s.Name, s.Total)
		}
	}

	// Step 5: scenario over meta-variables (Figure 5).
	a, err := parseScenario(scenario, names)
	if err != nil {
		return err
	}
	induced := cobra.Induced(a, point.Cut)
	fmt.Printf("\nScenario: %s\n", scenario)
	fmt.Println("Meta-variable assignment (group -> default value):")
	printMetaScreen(point.Cut, a, induced, names)

	// Step 6: results and speedup.
	full := cobra.EvalSet(set, a)
	approx := cobra.EvalSet(comp, induced)
	fmt.Println("\nScenario result: full provenance vs compressed provenance:")
	printResults(set.Keys, full, approx)
	acc := cobra.CompareResults(full, approx)
	fmt.Printf("Max relative deviation: %.3g\n", acc.MaxRel)

	tm := cobra.MeasureSpeedup(cobra.Compile(set), cobra.Compile(comp),
		a.Dense(names.Len()), induced.Dense(names.Len()), 0)
	fmt.Printf("Assignment time: full %v, compressed %v — speedup %.0f%%\n",
		tm.Full, tm.Compressed, tm.Speedup*100)
	return nil
}

func parseScenario(s string, names *polynomial.Names) (*valuation.Assignment, error) {
	a := valuation.New(names)
	if strings.TrimSpace(s) == "" {
		return a, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad scenario entry %q (want var=value)", part)
		}
		val, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", part, err)
		}
		if err := a.Set(kv[0], val); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func printResults(keys []string, full, comp []float64) {
	max := len(keys)
	truncated := false
	if max > 10 {
		max = 10
		truncated = true
	}
	for i := 0; i < max; i++ {
		if comp == nil {
			fmt.Printf("  %-12s %14.2f\n", keys[i], full[i])
		} else {
			delta := comp[i] - full[i]
			fmt.Printf("  %-12s full %14.2f   compressed %14.2f   delta %+.4f\n",
				keys[i], full[i], comp[i], delta)
		}
	}
	if truncated {
		fmt.Printf("  ... (%d more groups)\n", len(keys)-max)
	}
}

func printMetaScreen(cut abstraction.Cut, base, induced *valuation.Assignment, names *polynomial.Names) {
	groups := cut.GroupedLeaves()
	for i, node := range cut.Nodes {
		meta := cut.Tree.Node(node)
		var leaves []string
		for _, lv := range groups[i] {
			leaves = append(leaves, fmt.Sprintf("%s=%.3g", names.Name(lv), base.Get(lv)))
		}
		sort.Strings(leaves)
		fmt.Printf("  %-10s default %.4g   abstracts [%s]\n",
			meta.Name, induced.Get(meta.Var), strings.Join(leaves, ", "))
	}
}

func printExcerpt(set *cobra.Set, names *polynomial.Names) {
	if set.Len() == 0 {
		fmt.Println("  (empty)")
		return
	}
	p := set.Polys[0]
	ex := p
	if len(p.Mons) > 8 {
		ex = polynomial.Polynomial{Mons: p.Mons[:8]}
	}
	fmt.Printf("  %s: %s", set.Keys[0], ex.String(names))
	if len(p.Mons) > 8 {
		fmt.Printf(" + ... (%d more monomials)", len(p.Mons)-8)
	}
	fmt.Println()
}
