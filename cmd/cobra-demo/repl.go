package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// session is the interactive state: the provenance dataset, the current
// abstraction, the analyst's assignment, and explicit meta overrides.
// The tradeoff curve behind the bound slider lives on the Dataset handle:
// the DP runs once, lazily, and every `bound`/`sweep`/`frontier` command
// afterwards is a memoized-curve lookup instead of a recompression.
type session struct {
	names *polynomial.Names
	set   *cobra.Set
	tree  *cobra.Tree
	ds    *cobra.Dataset

	cut          abstraction.Cut
	leafAssign   *valuation.Assignment // values on original variables
	metaOverride *valuation.Assignment // explicit values on meta-variables
}

func newSession(names *polynomial.Names, set *cobra.Set, tree *cobra.Tree) *session {
	// OpenDataset only fails on a nil source, which callers never pass.
	ds, err := cobra.OpenDataset("repl", set, cobra.Forest{tree}, cobra.Options{})
	if err != nil {
		panic(err)
	}
	return &session{
		names:        names,
		set:          set,
		tree:         tree,
		ds:           ds,
		cut:          tree.LeafCut(),
		leafAssign:   valuation.New(names),
		metaOverride: valuation.New(names),
	}
}

// curve returns the dataset's frontier; the Dataset memoizes it.
func (s *session) curve() ([]cobra.FrontierPoint, error) {
	return s.ds.Frontier(context.Background())
}

// effective combines induced meta defaults with explicit overrides.
func (s *session) effective() *valuation.Assignment {
	a := cobra.Induced(s.leafAssign, s.cut)
	for _, item := range s.metaOverride.Items() {
		a.SetVar(item.Var, item.Value)
	}
	return a
}

// repl runs the interactive loop, reading commands from in and writing to
// out. It returns the first I/O error, never command errors (those are
// printed and the loop continues) — mirroring the demo, where a bad bound
// just shows a message.
func repl(s *session, in io.Reader, out io.Writer) error {
	fmt.Fprintf(out, "COBRA interactive — %d polynomials, %d monomials. Type 'help'.\n",
		s.set.Len(), s.set.Size())
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "cobra> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := strings.ToLower(fields[0]), fields[1:]
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			printHelp(out)
		case "tree":
			fmt.Fprint(out, s.tree.String())
		case "frontier":
			s.cmdFrontier(out)
		case "bound":
			s.cmdBound(out, args)
		case "sweep":
			s.cmdSweep(out, args)
		case "cut":
			s.cmdCut(out, args)
		case "refine":
			s.cmdRefineCoarsen(out, args, true)
		case "coarsen":
			s.cmdRefineCoarsen(out, args, false)
		case "set":
			s.cmdSet(out, args)
		case "unset":
			s.cmdUnset(out, args)
		case "scenario":
			s.cmdScenario(out)
		case "show":
			s.cmdShow(out)
		default:
			fmt.Fprintf(out, "unknown command %q; type 'help'\n", cmd)
		}
	}
}

func printHelp(out io.Writer) {
	fmt.Fprint(out, `commands:
  tree                 print the abstraction tree
  frontier             print the size/variables tradeoff curve
  bound N              pick the optimal abstraction for monomial bound N
  sweep N [N ...]      answer a whole batch of bounds from the cached curve
  cut NAME[,NAME...]   set the abstraction to an explicit cut
  refine NODE          split a cut node into its children
  coarsen NODE         merge the cut nodes below NODE into NODE
  set VAR VALUE        assign a value to a variable or meta-variable
  unset VAR            remove an assignment
  scenario             show the current assignment
  show                 evaluate: full vs compressed results, sizes, speedup
  quit
`)
}

func (s *session) cmdFrontier(out io.Writer) {
	frontier, err := s.curve()
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	for _, p := range frontier {
		fmt.Fprintf(out, "  k=%2d  min size %7d  cut %s\n", p.NumMeta, p.MinSize, p.Cut)
	}
}

// cmdBound is the demo's bound slider: the answer comes from the cached
// frontier — no recompression — and is exactly what per-bound compression
// would have chosen, including the infeasibility report.
func (s *session) cmdBound(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: bound N")
		return
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintf(out, "bad bound %q\n", args[0])
		return
	}
	frontier, err := s.curve()
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	p, ok := cobra.BestForBound(frontier, n)
	if !ok {
		fmt.Fprintf(out, "error: %v\n", &cobra.InfeasibleError{Bound: n, MinAchievable: minAchievable(frontier)})
		return
	}
	s.cut = p.Cut
	s.metaOverride = valuation.New(s.names)
	fmt.Fprintf(out, "cut %s: %d monomials, %d meta-variables\n", s.cut, p.MinSize, p.NumMeta)
	s.printMetaDefaults(out)
}

// cmdSweep answers a batch of bounds at once — the slider dragged across
// its whole range for the cost of zero extra DP runs.
func (s *session) cmdSweep(out io.Writer, args []string) {
	if len(args) == 0 {
		fmt.Fprintln(out, "usage: sweep N [N ...]")
		return
	}
	bounds := make([]int, 0, len(args))
	for _, a := range args {
		n, err := strconv.Atoi(a)
		if err != nil {
			fmt.Fprintf(out, "bad bound %q\n", a)
			return
		}
		bounds = append(bounds, n)
	}
	frontier, err := s.curve()
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	for _, n := range bounds {
		p, ok := cobra.BestForBound(frontier, n)
		if !ok {
			fmt.Fprintf(out, "  bound %7d -> infeasible (min achievable %d)\n", n, minAchievable(frontier))
			continue
		}
		fmt.Fprintf(out, "  bound %7d -> size %7d, %d meta-variables, cut %s\n", n, p.MinSize, p.NumMeta, p.Cut)
	}
}

// minAchievable is the smallest size on the curve — the coarsest cut's.
func minAchievable(frontier []cobra.FrontierPoint) int {
	if len(frontier) == 0 {
		return 0
	}
	return frontier[0].MinSize
}

func (s *session) cmdCut(out io.Writer, args []string) {
	if len(args) == 0 {
		fmt.Fprintf(out, "current cut: %s\n", s.cut)
		return
	}
	names := strings.Split(strings.Join(args, ""), ",")
	cut, err := s.tree.CutOf(names...)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	s.cut = cut
	s.metaOverride = valuation.New(s.names)
	fmt.Fprintf(out, "cut %s: %d monomials\n", s.cut, cobra.Apply(s.set, s.cut).Size())
}

func (s *session) cmdRefineCoarsen(out io.Writer, args []string, refine bool) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: refine|coarsen NODE")
		return
	}
	id := s.tree.ByName(args[0])
	if id == abstraction.NoNode {
		fmt.Fprintf(out, "no node named %q\n", args[0])
		return
	}
	var (
		next abstraction.Cut
		err  error
	)
	if refine {
		next, err = s.cut.Refine(id)
	} else {
		next, err = s.cut.Coarsen(id)
	}
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	s.cut = next
	s.metaOverride = valuation.New(s.names)
	fmt.Fprintf(out, "cut %s: %d monomials\n", s.cut, cobra.Apply(s.set, s.cut).Size())
}

// isCutNode reports whether name is one of the current cut's inner nodes.
func (s *session) isCutNode(name string) bool {
	for _, id := range s.cut.Nodes {
		n := s.tree.Node(id)
		if n.Name == name && len(n.Children) > 0 {
			return true
		}
	}
	return false
}

func (s *session) cmdSet(out io.Writer, args []string) {
	if len(args) != 2 {
		fmt.Fprintln(out, "usage: set VAR VALUE")
		return
	}
	val, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		fmt.Fprintf(out, "bad value %q\n", args[1])
		return
	}
	name := args[0]
	if _, ok := s.names.Lookup(name); !ok {
		fmt.Fprintf(out, "unknown variable %q\n", name)
		return
	}
	if s.isCutNode(name) {
		s.metaOverride.MustSet(name, val)
		fmt.Fprintf(out, "meta-variable %s := %g\n", name, val)
		return
	}
	s.leafAssign.MustSet(name, val)
	fmt.Fprintf(out, "%s := %g\n", name, val)
}

func (s *session) cmdUnset(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: unset VAR")
		return
	}
	// Rebuild assignments without the variable (Assignment has no delete;
	// the sparse maps are tiny).
	drop := args[0]
	rebuilt := valuation.New(s.names)
	for _, item := range s.leafAssign.Items() {
		if item.Name != drop {
			rebuilt.SetVar(item.Var, item.Value)
		}
	}
	s.leafAssign = rebuilt
	rebuiltMeta := valuation.New(s.names)
	for _, item := range s.metaOverride.Items() {
		if item.Name != drop {
			rebuiltMeta.SetVar(item.Var, item.Value)
		}
	}
	s.metaOverride = rebuiltMeta
	fmt.Fprintf(out, "unset %s\n", drop)
}

func (s *session) cmdScenario(out io.Writer) {
	items := s.leafAssign.Items()
	meta := s.metaOverride.Items()
	if len(items) == 0 && len(meta) == 0 {
		fmt.Fprintln(out, "(identity assignment)")
		return
	}
	for _, item := range items {
		fmt.Fprintf(out, "  %s = %g\n", item.Name, item.Value)
	}
	for _, item := range meta {
		fmt.Fprintf(out, "  %s = %g (meta override)\n", item.Name, item.Value)
	}
}

func (s *session) printMetaDefaults(out io.Writer) {
	groups := s.cut.GroupedLeaves()
	eff := s.effective()
	for i, id := range s.cut.Nodes {
		n := s.tree.Node(id)
		if len(n.Children) == 0 {
			continue // leaves keep their own values
		}
		var leaves []string
		for _, lv := range groups[i] {
			leaves = append(leaves, s.names.Name(lv))
		}
		sort.Strings(leaves)
		fmt.Fprintf(out, "  %-10s default %.4g  abstracts [%s]\n",
			n.Name, eff.Get(n.Var), strings.Join(leaves, ", "))
	}
}

func (s *session) cmdShow(out io.Writer) {
	comp := cobra.Apply(s.set, s.cut)
	eff := s.effective()
	full := cobra.EvalSet(s.set, s.leafAssign)
	approx := cobra.EvalSet(comp, eff)

	fmt.Fprintf(out, "provenance: full %d monomials, compressed %d (cut %s)\n",
		s.set.Size(), comp.Size(), s.cut)
	max := len(s.set.Keys)
	if max > 10 {
		max = 10
	}
	for i := 0; i < max; i++ {
		fmt.Fprintf(out, "  %-12s full %14.2f   compressed %14.2f   delta %+.4f\n",
			s.set.Keys[i], full[i], approx[i], approx[i]-full[i])
	}
	if len(s.set.Keys) > max {
		fmt.Fprintf(out, "  ... (%d more groups)\n", len(s.set.Keys)-max)
	}
	acc := cobra.CompareResults(full, approx)
	fmt.Fprintf(out, "max relative deviation: %.3g\n", acc.MaxRel)
	tm := cobra.MeasureSpeedup(cobra.Compile(s.set), cobra.Compile(comp),
		s.leafAssign.Dense(s.names.Len()), eff.Dense(s.names.Len()), 0)
	fmt.Fprintf(out, "assignment time: full %v, compressed %v — speedup %.0f%%\n",
		tm.Full, tm.Compressed, tm.Speedup*100)
}
