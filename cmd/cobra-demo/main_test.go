package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

func TestRunFigure1(t *testing.T) {
	if err := run("figure1", 0, 6, "m3=0.8", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunTelephonyScale(t *testing.T) {
	if err := run("telephony", 2_000, 0, "m3=0.8,b1=1.1", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTreeFile(t *testing.T) {
	dir := t.TempDir()
	treePath := filepath.Join(dir, "tree.json")
	tree := `{"name":"T","children":[
		{"name":"Std","children":[{"name":"p1"},{"name":"p2"}]},
		{"name":"Rest","children":[{"name":"f1"},{"name":"f2"},{"name":"y1"},{"name":"y2"},{"name":"y3"},{"name":"v"},{"name":"b1"},{"name":"b2"},{"name":"e"}]}]}`
	if err := os.WriteFile(treePath, []byte(tree), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("figure1", 0, 6, "", treePath, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 0, 0, "", "", false); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if err := run("figure1", 0, 6, "m3", "", false); err == nil {
		t.Fatal("malformed scenario should fail")
	}
	if err := run("figure1", 0, 6, "ghost=1", "", false); err == nil {
		t.Fatal("unknown scenario variable should fail")
	}
	if err := run("figure1", 0, 6, "m3=abc", "", false); err == nil {
		t.Fatal("non-numeric scenario value should fail")
	}
	if err := run("figure1", 0, 6, "", "/does/not/exist.json", false); err == nil {
		t.Fatal("missing tree file should fail")
	}
	if err := run("figure1", 0, 1, "", "", false); err == nil {
		t.Fatal("infeasible bound should fail")
	}
}

func TestParseScenario(t *testing.T) {
	names := polynomial.NewNames()
	names.Var("a")
	names.Var("b")
	a, err := parseScenario("a=1.5, b=0.5", names)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("entries = %d", a.Len())
	}
	if empty, err := parseScenario("  ", names); err != nil || empty.Len() != 0 {
		t.Fatal("blank scenario should be empty")
	}
}
