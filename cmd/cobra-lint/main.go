// Command cobra-lint runs the COBRA invariant analyzers (see
// internal/lint/analyzers) over this module. It speaks two protocols:
//
// Standalone, for humans and make lint:
//
//	cobra-lint [-determinism=false ...] [packages]
//
// loads the named packages (default ./...) and prints findings as
// file:line:col: message, exiting 1 if there were any.
//
// Unit-checker, for `go vet -vettool=$(which cobra-lint) ./...`: when
// the last argument is a .cfg file, the go command is driving one
// package per invocation; cobra-lint type-checks it from the export
// data listed in the config, analyzes, writes the (empty — the suite
// needs no cross-package facts) .vetx output, and exits 2 on findings.
// The -V=full and -flags modes serve the go command's tool-caching and
// flag-discovery handshakes.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analysis"
	"github.com/cobra-prov/cobra/internal/lint/analyzers"
	"github.com/cobra-prov/cobra/internal/lint/load"
)

func main() {
	suite := analyzers.All()
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, true, doc)
	}
	vFlag := flag.String("V", "", "print version and exit (the go command passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet's flag-discovery handshake)")
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion()
	case *flagsFlag:
		printFlags()
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		unitCheck(flag.Arg(0), active(suite, enabled))
	default:
		standalone(flag.Args(), active(suite, enabled))
	}
}

func active(suite []*analysis.Analyzer, enabled map[string]*bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// printVersion answers `cobra-lint -V=full`. The go command caches vet
// results keyed by this line, so it embeds a content hash of the
// executable: rebuilt tool, new cache key.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("cobra-lint version devel buildID=%x\n", h.Sum(nil))
}

// printFlags answers `cobra-lint -flags`: the JSON flag inventory the
// go command reads to decide which user flags it may forward.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fatalf("marshaling flags: %v", err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// finding is one diagnostic with its resolved position, for sorting.
type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

func runSuite(pkg *load.Package, suite []*analysis.Analyzer) ([]finding, error) {
	var out []finding
	for _, a := range suite {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, finding{
				pos:      pkg.Fset.Position(d.Pos),
				analyzer: name,
				message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return out, nil
}

func printFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].pos, fs[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range fs {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.pos, f.analyzer, f.message)
	}
}

// standalone lints package patterns in the current module.
func standalone(patterns []string, suite []*analysis.Analyzer) {
	c, err := load.NewChecker(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := c.Targets()
	if err != nil {
		fatalf("%v", err)
	}
	var all []finding
	for _, pkg := range pkgs {
		fs, err := runSuite(pkg, suite)
		if err != nil {
			fatalf("%s: %v", pkg.ImportPath, err)
		}
		all = append(all, fs...)
	}
	printFindings(all)
	if len(all) > 0 {
		os.Exit(1)
	}
}

// vetConfig mirrors the JSON the go command writes for a vet tool —
// the same shape golang.org/x/tools/go/analysis/unitchecker decodes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes the single package described by cfgFile under the
// go vet driver.
func unitCheck(cfgFile string, suite []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgFile, err)
	}
	// The go command expects the facts file regardless of findings; the
	// suite is fact-free, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, no analysis wanted
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, mapped := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[mapped]; ok {
			exports[src] = file
		}
	}
	c := load.NewCheckerFromExports(exports)
	pkg, err := c.Check(cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("%v", err)
	}
	fs, err := runSuite(pkg, suite)
	if err != nil {
		fatalf("%s: %v", cfg.ImportPath, err)
	}
	printFindings(fs)
	if len(fs) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cobra-lint: "+format+"\n", args...)
	os.Exit(1)
}
