package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Site is one heap-escape site reported by the compiler: a position plus
// the escaping expression. -m=2 prints most sites twice (a trace form
// ending in ':' followed by flow lines, then a bare summary form);
// parseEscapes deduplicates them by position and expression.
type Site struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Expr string `json:"expr"`
}

// escapeLine matches both diagnostic shapes that mark a heap allocation:
//
//	file.go:10:13: make([]T, 0, n) escapes to heap[:]
//	file.go:12:6: moved to heap: x
//
// Inlining chatter ("can inline ..."), parameter leaks ("leaking param")
// and negative results ("does not escape") are deliberately not matched.
// String-constant sites are dropped after matching: see parseEscapes.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (?:(.+) escapes to heap:?|moved to heap: (.+))$`)

// stringConst reports whether the escaping expression is a string
// literal. The compiler flags the message of an inlined panic as
// escaping — strings.Builder's copy check stamps one such site on every
// inlined Write call — but a constant string converted to an interface
// points at read-only static data and never allocates, so counting
// those sites would charge Builder-based formatting for allocations it
// does not perform.
// An expression that merely begins and ends with a quote ("a" + v +
// "b") keeps counting: only a literal with no interior quote is
// filtered, which errs toward counting.
func stringConst(expr string) bool {
	return len(expr) >= 2 && expr[0] == '"' && expr[len(expr)-1] == '"' &&
		!strings.Contains(expr[1:len(expr)-1], `"`)
}

// parseEscapes reads `go build -gcflags=-m=2` stderr and returns the
// distinct escape sites, ordered by file, line, column.
func parseEscapes(r io.Reader) ([]Site, error) {
	seen := make(map[Site]bool)
	var out []Site
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("bad line number in %q: %v", sc.Text(), err)
		}
		col, err := strconv.Atoi(m[3])
		if err != nil {
			return nil, fmt.Errorf("bad column in %q: %v", sc.Text(), err)
		}
		expr := m[4]
		if expr == "" {
			expr = m[5] // "moved to heap: x" names the variable
		}
		if stringConst(expr) {
			continue
		}
		s := Site{File: m[1], Line: line, Col: col, Expr: expr}
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Expr < b.Expr
	})
	return out, nil
}

// funcRange is the line span of one function declaration.
type funcRange struct {
	name       string
	start, end int
}

// fileFuncs parses one Go source file (syntax only) and returns the line
// spans of its function declarations, sorted by start line.
func fileFuncs(path string) ([]funcRange, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var out []funcRange
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		out = append(out, funcRange{
			name:  funcDisplayName(fd),
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out, nil
}

// funcDisplayName renders a declaration the way the compiler's own
// diagnostics do: Func, T.Method, or (*T).Method.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	// Strip type parameters: func (s *Set[K]) Add → (*Set).Add.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok {
		t = ix.X
	}
	name := "?"
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if ptr {
		return "(*" + name + ")." + fd.Name.Name
	}
	return name + "." + fd.Name.Name
}

// attribute maps each site to its enclosing function, resolving the
// site's file path relative to root. Sites outside any function (package
// scope initializers) land in "<pkg init>"; files that fail to parse land
// in "<unattributed>" rather than aborting the gate.
func attribute(root string, sites []Site) map[string][]Site {
	cache := make(map[string][]funcRange)
	byFunc := make(map[string][]Site)
	for _, s := range sites {
		fns, ok := cache[s.File]
		if !ok {
			var err error
			fns, err = fileFuncs(root + "/" + s.File)
			if err != nil {
				fns = nil
			}
			cache[s.File] = fns
		}
		name := "<pkg init>"
		if fns == nil {
			name = "<unattributed>"
		}
		for _, fr := range fns {
			if s.Line >= fr.start && s.Line <= fr.end {
				name = fr.name
				break
			}
		}
		byFunc[name] = append(byFunc[name], s)
	}
	return byFunc
}
