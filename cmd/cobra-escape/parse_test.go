package main

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// TestParseEscapesGolden pins the diagnostic grammar: trace/summary
// duplicates collapse to one site, flow and inline chatter and negative
// results are ignored, and "moved to heap" is a site. Regenerate the
// golden by hand if the compiler's -m=2 wording changes.
func TestParseEscapesGolden(t *testing.T) {
	f, err := os.Open("testdata/m2_sample.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sites, err := parseEscapes(f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("testdata/m2_sample.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want []Site
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sites, want) {
		got, _ := json.MarshalIndent(sites, "", "  ")
		t.Fatalf("parsed sites differ from golden:\n%s", got)
	}
}

// TestAttribute maps sites to their enclosing declarations, including
// pointer/value/generic receivers and package-scope initializers.
func TestAttribute(t *testing.T) {
	const file = "attr_sample.go.txt"
	sites := []Site{
		{File: file, Line: 5, Col: 14, Expr: `fmt.Sprintf("%d", 1)`}, // package scope
		{File: file, Line: 8, Col: 13, Expr: "make([]int, 0, n)"},
		{File: file, Line: 10, Col: 3, Expr: "out"},
		{File: file, Line: 18, Col: 9, Expr: "k"},
		{File: file, Line: 23, Col: 27, Expr: "p.X"},
		{File: "missing.go", Line: 1, Col: 1, Expr: "x"},
	}
	byFunc := attribute("testdata", sites)
	counts := make(map[string]int, len(byFunc))
	for name, ss := range byFunc {
		counts[name] = len(ss)
	}
	want := map[string]int{
		"<pkg init>":      1,
		"Standalone":      2,
		"(*Table).Render": 1,
		"Point.Sum":       1,
		"<unattributed>":  1,
	}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("attribution counts = %v, want %v", counts, want)
	}
}

// TestParseEscapesRejectsNearMisses guards the negative space of the
// grammar: lines that mention the heap without being escape sites.
func TestParseEscapesRejectsNearMisses(t *testing.T) {
	in := `a.go:1:1: parameter x leaks to {heap} with derefs=0:
a.go:1:1:   flow: {heap} = x:
a.go:2:2: x does not escape
not-a-diagnostic escapes to heap
a.go:3:3: y escapes to heap
a.go:4:4: "strings: illegal use of non-zero Builder copied by value" escapes to heap
a.go:5:5: "prefix " + v + " suffix" escapes to heap
`
	f, err := os.CreateTemp(t.TempDir(), "m2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(in); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	sites, err := parseEscapes(f)
	if err != nil {
		t.Fatal(err)
	}
	// The constant panic message at 4:4 is static data, not an
	// allocation; the concatenation at 5:5 merely starts and ends with a
	// quote and still counts.
	want := []Site{
		{File: "a.go", Line: 3, Col: 3, Expr: "y"},
		{File: "a.go", Line: 5, Col: 5, Expr: `"prefix " + v + " suffix"`},
	}
	if !reflect.DeepEqual(sites, want) {
		t.Fatalf("sites = %+v, want %+v", sites, want)
	}
}
