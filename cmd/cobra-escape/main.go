// Command cobra-escape gates heap-escape growth on the solve path. It
// compiles each hot package (the same list the hotalloc analyzer binds,
// see internal/lint/analyzers/hotalloc) with -gcflags=-m=2, parses the
// compiler's escape diagnostics into a per-package, per-function
// inventory, writes it to ESCAPES.json, and diffs it against the
// checked-in budget:
//
//	cobra-escape                # gate: fail if any function exceeds its budget
//	cobra-escape -update        # rewrite escape_budget.json from the current tree
//	cobra-escape internal/sql   # gate a subset of the hot packages
//
// The budget is a ratchet, not a quota: -update after a fix lowers the
// recorded counts, and any later change that adds a heap-escape site to
// a budgeted function fails CI with the exact positions. The compiler's
// diagnostics are replayed from the build cache, so a warm run is cheap.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/cobra-prov/cobra/internal/lint/analyzers/hotalloc"
)

// PackageEscapes is the inventory of one package: distinct escape sites
// grouped by enclosing function.
type PackageEscapes struct {
	Total     int            `json:"total"`
	Functions map[string]int `json:"functions"`
}

// Inventory maps module-relative package paths to their escape counts.
// The same shape serves ESCAPES.json and escape_budget.json.
type Inventory struct {
	Packages map[string]PackageEscapes `json:"packages"`
}

func main() {
	update := flag.Bool("update", false, "rewrite the budget file from the current inventory")
	budgetPath := flag.String("budget", "escape_budget.json", "budget file, relative to the module root")
	outPath := flag.String("out", "ESCAPES.json", "inventory output, relative to the module root (empty to skip)")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = hotalloc.HotPackages
	}

	inv := Inventory{Packages: make(map[string]PackageEscapes, len(pkgs))}
	sitesByFunc := make(map[string]map[string][]Site, len(pkgs))
	for _, pkg := range pkgs {
		sites, err := compileEscapes(root, pkg)
		if err != nil {
			fatalf("%s: %v", pkg, err)
		}
		byFunc := attribute(root, sites)
		fns := make(map[string]int, len(byFunc))
		for name, ss := range byFunc {
			fns[name] = len(ss)
		}
		inv.Packages[pkg] = PackageEscapes{Total: len(sites), Functions: fns}
		sitesByFunc[pkg] = byFunc
	}

	if *outPath != "" {
		if err := writeJSON(filepath.Join(root, *outPath), inv); err != nil {
			fatalf("%v", err)
		}
	}
	if *update {
		if err := writeJSON(filepath.Join(root, *budgetPath), inv); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("cobra-escape: budget rewritten: %s\n", *budgetPath)
		return
	}

	budget, err := readBudget(filepath.Join(root, *budgetPath))
	if err != nil {
		fatalf("%v (run cobra-escape -update to record the current tree)", err)
	}
	violations := diff(inv, budget, sitesByFunc)
	if len(violations) > 0 {
		fmt.Fprint(os.Stderr, strings.Join(violations, "\n"))
		fmt.Fprintf(os.Stderr, "\ncobra-escape: hot packages gained heap-escape sites; fix them or re-baseline with -update\n")
		os.Exit(1)
	}
	total := 0
	for _, pe := range inv.Packages {
		total += pe.Total
	}
	fmt.Printf("cobra-escape: %d packages within budget (%d escape sites)\n", len(pkgs), total)
}

// moduleRoot resolves the directory holding go.mod, so the tool works
// from any subdirectory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// compileEscapes builds one package with escape diagnostics enabled and
// parses the distinct heap-escape sites out of the compiler output. The
// -gcflags value applies only to the named package, so dependency builds
// stay quiet; on a warm build cache the diagnostics are replayed without
// recompiling.
func compileEscapes(root, pkg string) ([]Site, error) {
	cmd := exec.Command("go", "build", "-o", os.DevNull, "-gcflags=-m=2", "./"+pkg)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build failed: %v\n%s", err, stderr.String())
	}
	return parseEscapes(&stderr)
}

// readBudget loads the checked-in budget inventory.
func readBudget(path string) (Inventory, error) {
	var b Inventory
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("parsing %s: %v", path, err)
	}
	return b, nil
}

// diff reports every function whose escape count exceeds its budget,
// with the offending positions. Functions absent from the budget default
// to zero: new escape sites in new code must be budgeted deliberately.
func diff(inv, budget Inventory, sitesByFunc map[string]map[string][]Site) []string {
	var out []string
	pkgs := make([]string, 0, len(inv.Packages))
	for pkg := range inv.Packages {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		cur := inv.Packages[pkg]
		allowed := budget.Packages[pkg] // zero value when unbudgeted
		fns := make([]string, 0, len(cur.Functions))
		for name := range cur.Functions {
			fns = append(fns, name)
		}
		sort.Strings(fns)
		for _, name := range fns {
			n, max := cur.Functions[name], allowed.Functions[name]
			if n <= max {
				continue
			}
			out = append(out, fmt.Sprintf("%s: %s: %d heap-escape sites, budget %d (+%d)",
				pkg, name, n, max, n-max))
			for _, s := range sitesByFunc[pkg][name] {
				out = append(out, fmt.Sprintf("\t%s:%d:%d: %s", s.File, s.Line, s.Col, s.Expr))
			}
		}
	}
	return out
}

// writeJSON marshals v deterministically (sorted keys, trailing newline).
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cobra-escape: "+format+"\n", args...)
	os.Exit(1)
}
