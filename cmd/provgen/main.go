// Command provgen generates provenance polynomials and serializes them —
// the "provenance engine" box of the paper's Figure-4 architecture. The
// output feeds cobra-compress (or any consumer of the documented formats).
//
// Usage:
//
//	provgen -dataset figure1 -out prov.txt
//	provgen -dataset telephony -customers 1000000 -format binary -out prov.bin
//	provgen -dataset tpch -sf 0.01 -query Q6 -format json -out q6.json
//	provgen -dataset tpch -query Q1 -tree-out date-tree.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/datagen/tpch"
	"github.com/cobra-prov/cobra/internal/engine"
)

func main() {
	var (
		dataset   = flag.String("dataset", "figure1", "figure1 | telephony | tpch")
		customers = flag.Int("customers", 100_000, "telephony scale")
		sf        = flag.Float64("sf", 0.01, "TPC-H scale factor")
		queryName = flag.String("query", "Q1", "TPC-H query: Q1 | Q3 | Q5 | Q6 | Q10")
		format    = flag.String("format", "text", "text | json | binary")
		out       = flag.String("out", "-", "output file (- = stdout)")
		treeOut   = flag.String("tree-out", "", "also write the matching abstraction tree JSON here")
	)
	flag.Parse()
	if err := run(*dataset, *customers, *sf, *queryName, *format, *out, *treeOut); err != nil {
		fmt.Fprintln(os.Stderr, "provgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, customers int, sf float64, queryName, format, out, treeOut string) error {
	names := cobra.NewNames()
	var (
		set  *cobra.Set
		tree *cobra.Tree
		err  error
	)
	switch dataset {
	case "figure1":
		var cat engine.Catalog
		cat, err = telephony.InstrumentPrices(telephony.Figure1DB(), names)
		if err != nil {
			return err
		}
		set, err = cobra.Capture(telephony.RevenueQuery, cat, names, "revenue")
		tree = telephony.PlansTree(names)
	case "telephony":
		set = telephony.DirectProvenance(telephony.Config{Customers: customers}, names)
		tree = telephony.PlansTree(names)
	case "tpch":
		var q *tpch.Query
		for i := range tpch.Queries {
			if tpch.Queries[i].Name == queryName {
				q = &tpch.Queries[i]
				break
			}
		}
		if q == nil {
			return fmt.Errorf("unknown TPC-H query %q", queryName)
		}
		cat := tpch.Generate(tpch.Config{SF: sf})
		var inst engine.Catalog
		if q.Name == "Q5" {
			inst, err = tpch.InstrumentBySupplierNation(cat, names)
			tree = tpch.NationRegionTree(names)
		} else {
			inst, err = tpch.InstrumentByShipMonth(cat, names)
			tree = tpch.DateTree(names)
		}
		if err != nil {
			return err
		}
		set, err = cobra.Capture(q.Prov, inst, names, q.ValueCol)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "text":
		err = cobra.WriteSetText(w, set)
	case "json":
		err = cobra.WriteSetJSON(w, set)
	case "binary":
		err = cobra.WriteSetBinary(w, set)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "provgen: wrote %d polynomials, %d monomials, %d variables\n",
		set.Len(), set.Size(), set.NumVars())

	if treeOut != "" && tree != nil {
		data, err := tree.MarshalJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(treeOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "provgen: wrote abstraction tree (%d nodes) to %s\n", tree.Len(), treeOut)
	}
	return nil
}
