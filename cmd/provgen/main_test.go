package main

import (
	"os"
	"path/filepath"
	"testing"

	cobra "github.com/cobra-prov/cobra"
)

func TestProvgenFormats(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"text", "json", "binary"} {
		out := filepath.Join(dir, "prov."+format)
		if err := run("figure1", 0, 0, "", format, out, ""); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		var set *cobra.Set
		switch format {
		case "text":
			set, err = cobra.ReadSetText(f, nil)
		case "json":
			set, err = cobra.ReadSetJSON(f, nil)
		default:
			set, err = cobra.ReadSetBinary(f, nil)
		}
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if set.Size() != 14 {
			t.Fatalf("%s: size = %d, want 14", format, set.Size())
		}
	}
}

func TestProvgenTelephonyAndTree(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "prov.txt")
	treeOut := filepath.Join(dir, "tree.json")
	if err := run("telephony", 3_000, 0, "", "text", out, treeOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(treeOut)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cobra.TreeFromJSON(data, cobra.NewNames())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 18 {
		t.Fatalf("tree nodes = %d, want 18 (Figure 2)", tree.Len())
	}
}

func TestProvgenTPCH(t *testing.T) {
	dir := t.TempDir()
	for _, q := range []string{"Q1", "Q5", "Q6"} {
		out := filepath.Join(dir, q+".txt")
		if err := run("tpch", 0, 0.002, q, "text", out, ""); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}

func TestProvgenErrors(t *testing.T) {
	if err := run("nope", 0, 0, "", "text", "-", ""); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if err := run("tpch", 0, 0.002, "Q99", "text", "-", ""); err == nil {
		t.Fatal("unknown query should fail")
	}
	if err := run("figure1", 0, 0, "", "nope", "-", ""); err == nil {
		t.Fatal("unknown format should fail")
	}
	if err := run("figure1", 0, 0, "", "text", "/no/such/dir/out.txt", ""); err == nil {
		t.Fatal("unwritable output should fail")
	}
}
