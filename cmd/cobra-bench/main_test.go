package main

import "testing"

func TestBenchQuickSubset(t *testing.T) {
	// E1/E2 are cheap and deterministic; this exercises the full wiring.
	if err := run("quick", "E1,E2", false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("quick", "E2", true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBenchErrors(t *testing.T) {
	if err := run("nope", "", false, 1); err == nil {
		t.Fatal("unknown scale should fail")
	}
	if err := run("quick", "E99", false, 1); err == nil {
		t.Fatal("unknown experiment id should fail")
	}
}
