// Command cobra-bench runs the reproduction experiment suite (E1–E16, see
// DESIGN.md) and prints each experiment's paper-vs-measured table. With
// -markdown it emits the tables in the format used by EXPERIMENTS.md.
//
// Usage:
//
//	cobra-bench                      # default scale (100k customers, SF 0.01)
//	cobra-bench -scale paper         # the paper's 1M-customer measurement
//	cobra-bench -only E3,E8 -markdown
//	cobra-bench -only E13 -workers 0 # parallel capture speedup at GOMAXPROCS
//	cobra-bench -only E14            # out-of-core compression under a memory budget
//	cobra-bench -only E15            # streaming capture under a memory budget
//	cobra-bench -only E16            # batched frontier sweep vs per-bound recompression
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/cobra-prov/cobra/internal/experiments"
)

func main() {
	var (
		scale    = flag.String("scale", "default", "quick | default | paper")
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		workers  = flag.Int("workers", 1, "goroutines for the compression/valuation/capture hot paths; 1 = sequential, 0 = GOMAXPROCS")
	)
	flag.Parse()
	if err := run(*scale, *only, *markdown, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "cobra-bench:", err)
		os.Exit(1)
	}
}

func run(scale, only string, markdown bool, workers int) error {
	var cfg experiments.Config
	switch scale {
	case "quick":
		cfg = experiments.Config{Quick: true}
	case "default":
		cfg = experiments.Config{}
	case "paper":
		cfg = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	cfg.Workers = workers
	cfg = cfg.WithDefaults()

	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		tab, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		if markdown {
			fmt.Print(tab.Markdown())
		} else {
			fmt.Println(tab.Render())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q", only)
	}
	fmt.Fprintf(os.Stderr, "cobra-bench: %d experiments in %s (scale %s, %d customers, SF %g, %d workers)\n",
		ran, time.Since(start).Round(time.Millisecond), scale, cfg.TelephonyCustomers, cfg.TPCHSF, cfg.Workers)
	return nil
}
