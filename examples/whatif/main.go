// Hypothetical reasoning with multiple abstraction trees and external
// provenance: read polynomials in the interchange text format (as produced
// by any provenance engine, or cmd/provgen), open them as cobra.Datasets,
// explore the size/expressiveness tradeoff with batched multi-bound sweeps
// answered from each dataset's memoized frontier curve, and study how the
// choice of abstraction trees trades provenance size against scenario
// accuracy.
//
// Run with: go run ./examples/whatif
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	cobra "github.com/cobra-prov/cobra"
)

// externalProvenance is Example 2's provenance in the interchange format —
// what an external engine would hand to COBRA.
const externalProvenance = `# cobra provenance set v1
10001	208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3
10002	77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3
`

// plansTreeJSON is the Figure-2 tree in the JSON interchange form.
const plansTreeJSON = `{
  "name": "Plans", "children": [
    {"name": "Standard", "children": [{"name": "p1"}, {"name": "p2"}]},
    {"name": "Special", "children": [
      {"name": "Y", "children": [{"name": "y1"}, {"name": "y2"}, {"name": "y3"}]},
      {"name": "F", "children": [{"name": "f1"}, {"name": "f2"}]},
      {"name": "v"}]},
    {"name": "Business", "children": [
      {"name": "SB", "children": [{"name": "b1"}, {"name": "b2"}]},
      {"name": "e"}]}]}`

func main() {
	ctx := context.Background()
	names := cobra.NewNames()
	set, err := cobra.ReadSetText(strings.NewReader(externalProvenance), names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded external provenance: %d monomials, %d variables\n",
		set.Size(), set.NumVars())

	plans, err := cobra.TreeFromJSON([]byte(plansTreeJSON), names)
	if err != nil {
		log.Fatal(err)
	}
	// A second dimension: the months tree (here just two observed months
	// under one quarter-like parent).
	months, err := cobra.TreeFromPaths("Months", names,
		[]string{"q1", "m1"},
		[]string{"q1", "m3"},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Slider-style exploration means asking MANY bounds, and re-running
	// the optimizer per bound re-pays its dominant cost every time. A
	// Dataset memoizes its frontier curve, so a sweep runs the DP once and
	// every later bound — in this batch or the next — is a lookup. Over a
	// forest the sweep is exact when the dimensions are disjoint — no
	// monomial touches two trees — which holds when we split the plans
	// ontology into a consumer dimension (group 10001's variables) and a
	// business dimension (group 10002's):
	consumer, err := cobra.TreeFromPaths("ConsumerDim", names,
		[]string{"Std", "p1"}, []string{"Std", "p2"},
		[]string{"Spec", "Yd", "y1"}, []string{"Spec", "Yd", "y2"}, []string{"Spec", "Yd", "y3"},
		[]string{"Spec", "Fd", "f1"}, []string{"Spec", "Fd", "f2"},
		[]string{"Spec", "v"},
	)
	if err != nil {
		log.Fatal(err)
	}
	business, err := cobra.TreeFromPaths("BusinessDim", names,
		[]string{"SBd", "b1"}, []string{"SBd", "b2"}, []string{"e"},
	)
	if err != nil {
		log.Fatal(err)
	}

	dims, err := cobra.OpenDataset("example2/dims", set, cobra.Forest{consumer, business}, cobra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer dims.Close()

	bounds := []int{14, 8, 6, 4, 2, 1}
	fmt.Println("\nbatched bound sweep (consumer × business dimensions, ONE DP run):")
	answers, err := dims.Sweep(ctx, bounds)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		if a.Err != nil {
			fmt.Printf("  bound %2d: %v\n", a.Bound, a.Err)
			continue
		}
		fmt.Printf("  bound %2d: size %2d, %2d meta-variables: consumer %s, business %s\n",
			a.Bound, a.Result.Size, a.Result.NumMeta, a.Result.Cuts[0], a.Result.Cuts[1])
	}

	// Plans × months, by contrast, COUPLES its dimensions — every monomial
	// holds a plan and a month variable — so the joint size is not
	// additive across trees, no exact forest frontier exists (the joint
	// problem is NP-hard), and the sweep refuses rather than answer
	// wrongly. Coordinate descent (Dataset.Compress) still handles each
	// bound:
	coupled, err := cobra.OpenDataset("example2/coupled", set, cobra.Forest{plans, months}, cobra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer coupled.Close()
	if _, err := coupled.Sweep(ctx, []int{8}); err != nil {
		fmt.Printf("\nsweeping plans × months is refused (coupled dimensions):\n  %v\n", err)
	}
	res, err := coupled.Compress(ctx, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinate descent at bound 8: size %d, %d meta-variables: plans %s, months %s\n",
		res.Size, res.NumMeta, res.Cuts[0], res.Cuts[1])

	// Degrees of freedom in action. The optimizer maximizes the TOTAL
	// number of variables, so at bound 8 it prefers 11 plan variables + 1
	// merged month variable (12) over, say, 5 plans + 2 months (7) — and
	// the "March -20%" scenario becomes approximate. The paper's remedy:
	// the meta-analyst "is aware of the scenarios intended to be examined"
	// and shapes the trees accordingly — offering only the plans tree
	// protects the month dimension, and the scenario stays exact.
	plansOnly, err := cobra.OpenDataset("example2/plans", set, cobra.Forest{plans}, cobra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer plansOnly.Close()

	march := cobra.NewAssignment(names)
	if err := march.Set("m3", 0.8); err != nil {
		log.Fatal(err)
	}
	full := cobra.EvalSet(set, march)
	fmt.Println("\nMarch -20% at bound 8, by choice of abstraction trees:")
	for _, choice := range []struct {
		name string
		ds   *cobra.Dataset
	}{
		{"plans + months (months may merge)", coupled},
		{"plans only (months protected)", plansOnly},
	} {
		res, err := choice.ds.Compress(ctx, 8)
		if err != nil {
			fmt.Printf("  %-36s %v\n", choice.name, err)
			continue
		}
		comp, err := choice.ds.Apply(ctx, res.Cuts...)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := comp.EvalBatch(ctx, []*cobra.Assignment{cobra.Induced(march, res.Cuts...)})
		comp.Close()
		if err != nil {
			log.Fatal(err)
		}
		acc := cobra.CompareResults(full, rows[0])
		exact := "approximate"
		if acc.Exact(1e-9) {
			exact = "exact"
		}
		fmt.Printf("  %-36s size %d, %d meta-variables, deviation %.3g (%s)\n",
			choice.name, res.Size, res.NumMeta, acc.MaxRel, exact)
	}

	// Under the hood: the DP is optimal — compare against exhaustive
	// search over all cuts of the plans tree.
	dp, err := plansOnly.Compress(ctx, 6)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := cobra.CompressExhaustive(set, plans, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDP vs exhaustive at bound 6: DP %d vars / size %d, exhaustive %d vars / size %d\n",
		dp.NumMeta, dp.Size, ex.NumMeta, ex.Size)

	// The complete tradeoff curve for the single plans tree. The curve was
	// memoized by the Compress calls' dataset, so this is free — it is the
	// same curve Sweep answers bound batches from.
	frontier, err := plansOnly.Frontier(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntradeoff frontier (meta-variables -> minimal size):")
	for _, p := range frontier {
		fmt.Printf("  k=%2d -> %2d monomials\n", p.NumMeta, p.MinSize)
	}

	// Which variables matter most? Sensitivity = Σ|∂result/∂var| at the
	// current point — a guide for what an abstraction may safely group
	// (low-sensitivity variables merge with little loss).
	fmt.Println("\nmost sensitive variables at the identity assignment:")
	for i, s := range cobra.Sensitivity(set, cobra.NewAssignment(names)) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-4s %9.2f\n", s.Name, s.Total)
	}

	// Refinement in the other direction: a meta-variable can be replaced by
	// a weighted combination of its leaves using polynomial substitution.
	compressed := dp.Apply(set)
	sb, ok := names.Lookup("Special")
	if !ok {
		log.Fatal("Special not interned")
	}
	refined := cobra.Substitute(compressed.Polys[0], sb,
		cobra.MustParsePolynomial("0.5*f1 + 0.3*y1 + 0.2*v", names))
	fmt.Printf("\nrefining 'Special' in the first compressed polynomial:\n  %s\n",
		refined.String(names))
}
