// Quickstart: open provenance polynomials as a cobra.Dataset, compress
// them with an abstraction tree under a monomial bound, and run
// hypothetical scenarios on the compressed provenance — all through the
// Dataset handle, whose solves are memoized and safe for concurrent use.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	cobra "github.com/cobra-prov/cobra"
)

func main() {
	ctx := context.Background()

	// A variable namespace shared by polynomials, trees and assignments.
	names := cobra.NewNames()

	// Provenance polynomials — normally captured from a query (see the
	// telephony example); here parsed from the paper's Example 2.
	set := cobra.NewSet(names)
	if err := set.Add("zip 10001", cobra.MustParsePolynomial(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "+
			"75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names)); err != nil {
		log.Fatal(err)
	}
	if err := set.Add("zip 10002", cobra.MustParsePolynomial(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + "+
			"69.7*b2*m1 + 100.65*b2*m3", names)); err != nil {
		log.Fatal(err)
	}

	// The Figure-2 abstraction tree over the plan variables.
	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Standard", "p2"},
		[]string{"Special", "Y", "y1"},
		[]string{"Special", "Y", "y2"},
		[]string{"Special", "Y", "y3"},
		[]string{"Special", "F", "f1"},
		[]string{"Special", "F", "f2"},
		[]string{"Special", "v"},
		[]string{"Business", "SB", "b1"},
		[]string{"Business", "SB", "b2"},
		[]string{"Business", "e"},
	)
	if err != nil {
		log.Fatal(err)
	}

	// The Dataset handle: immutable provenance + its abstraction forest.
	// Compress/Frontier/Sweep results are memoized on the handle, so the
	// optimizer runs once however many times (or goroutines) ask.
	ds, err := cobra.OpenDataset("example2", set, cobra.Forest{tree}, cobra.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	fmt.Printf("dataset %q: %d monomials over %d variables\n",
		ds.Name(), ds.Size(), len(ds.UsedVars()))

	// Compress: at most 6 monomials, keeping as many variables as possible.
	res, err := ds.Compress(ctx, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed to %d monomials with cut %s (%d meta-variables)\n",
		res.Size, res.Cuts[0], res.NumMeta)

	// Apply the cut: a derived Dataset holding the compressed provenance,
	// the handle scenario traffic evaluates against from here on.
	small, err := ds.Apply(ctx, res.Cuts...)
	if err != nil {
		log.Fatal(err)
	}
	defer small.Close()

	// Hypothetical scenario: March prices decrease by 20%.
	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		log.Fatal(err)
	}
	full, err := ds.EvalBatch(ctx, []*cobra.Assignment{a})
	if err != nil {
		log.Fatal(err)
	}
	approx, err := small.EvalBatch(ctx, []*cobra.Assignment{cobra.Induced(a, res.Cuts...)})
	if err != nil {
		log.Fatal(err)
	}
	for i, key := range set.Keys {
		fmt.Printf("%s: full %.2f, compressed %.2f\n", key, full[0][i], approx[0][i])
	}
	acc := cobra.CompareResults(full[0], approx[0])
	exact := "approximate"
	if acc.Exact(1e-9) {
		exact = "exact"
	}
	fmt.Printf("max relative deviation: %.2g (%s — the scenario is tree-consistent)\n", acc.MaxRel, exact)

	// Slider-style exploration: a batch of bounds answered from the
	// dataset's memoized frontier curve — one DP run, many bounds.
	answers, err := ds.Sweep(ctx, []int{14, 6, 2, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bound sweep from the memoized frontier:")
	for _, ans := range answers {
		if ans.Err != nil {
			fmt.Printf("  bound %2d: %v\n", ans.Bound, ans.Err)
			continue
		}
		fmt.Printf("  bound %2d: size %2d, %d meta-variables, cut %s\n",
			ans.Bound, ans.Result.Size, ans.Result.NumMeta, ans.Result.Cuts[0])
	}
}
