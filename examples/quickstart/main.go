// Quickstart: build provenance polynomials, compress them with an
// abstraction tree under a monomial bound, and run a hypothetical scenario
// on the compressed provenance.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cobra "github.com/cobra-prov/cobra"
)

func main() {
	// A variable namespace shared by polynomials, trees and assignments.
	names := cobra.NewNames()

	// Provenance polynomials — normally captured from a query (see the
	// telephony example); here parsed from the paper's Example 2.
	set := cobra.NewSet(names)
	set.Add("zip 10001", cobra.MustParsePolynomial(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + "+
			"75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names))
	set.Add("zip 10002", cobra.MustParsePolynomial(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + "+
			"69.7*b2*m1 + 100.65*b2*m3", names))
	fmt.Printf("provenance: %d monomials over %d variables\n", set.Size(), set.NumVars())

	// The Figure-2 abstraction tree over the plan variables.
	tree, err := cobra.TreeFromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Standard", "p2"},
		[]string{"Special", "Y", "y1"},
		[]string{"Special", "Y", "y2"},
		[]string{"Special", "Y", "y3"},
		[]string{"Special", "F", "f1"},
		[]string{"Special", "F", "f2"},
		[]string{"Special", "v"},
		[]string{"Business", "SB", "b1"},
		[]string{"Business", "SB", "b2"},
		[]string{"Business", "e"},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Compress: at most 6 monomials, keeping as many variables as possible.
	res, err := cobra.Compress(set, cobra.Forest{tree}, 6)
	if err != nil {
		log.Fatal(err)
	}
	compressed := res.Apply(set)
	fmt.Printf("compressed to %d monomials with cut %s (%d meta-variables)\n",
		res.Size, res.Cuts[0], res.NumMeta)

	// Hypothetical scenario: March prices decrease by 20%.
	a := cobra.NewAssignment(names)
	if err := a.Set("m3", 0.8); err != nil {
		log.Fatal(err)
	}

	full := cobra.EvalSet(set, a)
	approx := cobra.EvalSet(compressed, cobra.Induced(a, res.Cuts...))
	for i, key := range set.Keys {
		fmt.Printf("%s: full %.2f, compressed %.2f\n", key, full[i], approx[i])
	}
	acc := cobra.CompareResults(full, approx)
	fmt.Printf("max relative deviation: %.2g (scenario is tree-consistent, so it is exact)\n", acc.MaxRel)
}
