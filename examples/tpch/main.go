// Business data analysis on TPC-H, as in the demo's second phase: generate
// the benchmark tables, instrument lineitem prices by ship month, capture
// provenance for Q1 and Q6, compress with the month→quarter→year tree, and
// evaluate a "1994 prices +5%" hypothetical on the compressed provenance.
//
// Run with: go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/tpch"
)

func main() {
	names := cobra.NewNames()

	cat := tpch.Generate(tpch.Config{SF: 0.005})
	fmt.Printf("generated TPC-H at SF 0.005: %d orders, %d lineitems\n",
		cat["orders"].Len(), cat["lineitem"].Len())

	inst, err := tpch.InstrumentByShipMonth(cat, names)
	if err != nil {
		log.Fatal(err)
	}
	tree := tpch.DateTree(names)

	for _, q := range []tpch.Query{tpch.Queries[0], tpch.Queries[3]} { // Q1, Q6
		set, err := cobra.Capture(q.Prov, inst, names, q.ValueCol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d groups, %d monomials, %d variables\n",
			q.Name, set.Len(), set.Size(), set.NumVars())

		// Compress to half, then to a fifth.
		for _, frac := range []float64{0.5, 0.2} {
			res, err := cobra.Compress(set, cobra.Forest{tree}, int(float64(set.Size())*frac))
			if err != nil {
				fmt.Printf("  bound %.0f%%: %v\n", frac*100, err)
				continue
			}
			fmt.Printf("  bound %.0f%%: %d monomials, %d meta-variables\n",
				frac*100, res.Size, res.NumMeta)
		}

		// Hypothetical: every month of 1994 +5%. This groups exactly under
		// the y1994 node, so a cut at year granularity evaluates it exactly.
		a := cobra.NewAssignment(names)
		for m := 1; m <= 12; m++ {
			name := fmt.Sprintf("mo_1994_%02d", m)
			if _, ok := names.Lookup(name); ok {
				if err := a.Set(name, 1.05); err != nil {
					log.Fatal(err)
				}
			}
		}
		res, err := cobra.Compress(set, cobra.Forest{tree}, set.Size()/4)
		if err != nil {
			log.Fatal(err)
		}
		comp := res.Apply(set)
		full := cobra.EvalSet(set, a)
		approx := cobra.EvalSet(comp, cobra.Induced(a, res.Cuts...))
		acc := cobra.CompareResults(full, approx)
		fmt.Printf("  scenario '1994 +5%%' at bound 25%%: max relative deviation %.3g\n", acc.MaxRel)
		for i, key := range set.Keys {
			if i >= 3 {
				fmt.Printf("  ... (%d more groups)\n", set.Len()-3)
				break
			}
			fmt.Printf("  %-8s full %15.2f  compressed %15.2f\n", key, full[i], approx[i])
		}
	}
}
