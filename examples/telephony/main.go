// The paper's running example end-to-end: generate the telephony database,
// instrument plan prices with symbolic variables, capture the revenue
// query's provenance through the SQL engine, compress it at several bounds,
// and examine the paper's two hypothetical scenarios — including the
// commutation check that guarantees correctness.
//
// Run with: go run ./examples/telephony
package main

import (
	"fmt"
	"log"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
)

func main() {
	names := cobra.NewNames()

	// Generate a 5,000-customer database and instrument Plans.Price so
	// that each price cell carries its plan and month variables
	// (0.4 becomes 0.4·p1·m1, as in Example 2).
	cat := telephony.Generate(telephony.Config{Customers: 5_000, Zips: 8, Months: 12})
	inst, err := telephony.InstrumentPrices(cat, names)
	if err != nil {
		log.Fatal(err)
	}

	// Capture the provenance of the revenue query.
	set, err := cobra.Capture(telephony.RevenueQuery, inst, names, "revenue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d polynomials (one per zip), %d monomials, %d variables\n",
		set.Len(), set.Size(), set.NumVars())

	// Compress with the Figure-2 plans tree at a sweep of bounds.
	tree := telephony.PlansTree(names)
	fmt.Println("\nbound sweep (size / meta-variables):")
	for _, frac := range []float64{0.8, 0.6, 0.4, 0.3} {
		bound := int(float64(set.Size()) * frac)
		res, err := cobra.Compress(set, cobra.Forest{tree}, bound)
		if err != nil {
			fmt.Printf("  bound %5d: %v\n", bound, err)
			continue
		}
		fmt.Printf("  bound %5d: %5d monomials, %2d meta-variables, cut %s\n",
			bound, res.Size, res.NumMeta, res.Cuts[0])
	}

	// The paper's scenarios on a compressed provenance.
	res, err := cobra.Compress(set, cobra.Forest{tree}, set.Size()/3)
	if err != nil {
		log.Fatal(err)
	}
	comp := res.Apply(set)
	fmt.Printf("\nusing cut %s (%d -> %d monomials):\n", res.Cuts[0], set.Size(), res.Size)

	scenarios := map[string]*cobra.Assignment{
		"March -20% (m3=0.8)":         telephony.ScenarioMarchMinus20(names),
		"Business +10% (b1,b2,e=1.1)": telephony.ScenarioBusinessPlus10(names),
	}
	for name, a := range scenarios {
		full := cobra.EvalSet(set, a)
		approx := cobra.EvalSet(comp, cobra.Induced(a, res.Cuts...))
		acc := cobra.CompareResults(full, approx)
		fmt.Printf("  %-30s max relative deviation %.3g\n", name, acc.MaxRel)
	}

	// Correctness guarantee: evaluating the provenance under a scenario
	// equals re-running the query on correspondingly modified data.
	rep, err := cobra.CheckCommutation(telephony.RevenueQuery, inst, names, "revenue",
		telephony.ScenarioMarchMinus20(names))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommutation check (valuation vs re-execution): max rel err %.2g over %d groups\n",
		rep.Accuracy.MaxRel, rep.Groups)

	// And the reason to bother: assignment speedup.
	a := telephony.ScenarioMarchMinus20(names)
	tm := cobra.MeasureSpeedup(cobra.Compile(set), cobra.Compile(comp),
		a.Dense(names.Len()), cobra.Induced(a, res.Cuts...).Dense(names.Len()), 0)
	fmt.Printf("assignment time: full %v vs compressed %v — speedup %.0f%%\n",
		tm.Full, tm.Compressed, tm.Speedup*100)
}
