module github.com/cobra-prov/cobra

go 1.24
