module github.com/cobra-prov/cobra

go 1.24

tool (
	github.com/cobra-prov/cobra/cmd/cobra-escape
	github.com/cobra-prov/cobra/cmd/cobra-lint
)
