// Package cobra is a Go implementation of COBRA — COmpression using
// aBstRAction trees — the provenance-compression system for hypothetical
// reasoning of Deutch, Moskovitch and Rinetzky (ICDE 2019 demo; framework
// in SIGMOD 2019, "Hypothetical Reasoning via Provenance Abstraction").
//
// # What it does
//
// Hypothetical ("what-if") reasoning asks how a query result changes when
// the input changes. Instead of re-running the query for every scenario,
// the input is instrumented with symbolic variables, and query evaluation
// produces provenance polynomials — a symbolic representation of the result
// that can be re-evaluated under any valuation of the variables, orders of
// magnitude faster than re-execution, with equality guaranteed (the
// valuation commutes with query evaluation).
//
// Provenance can be large. COBRA compresses it with abstraction trees:
// ontology-like trees over the variables. A cut in the tree replaces all
// leaf variables below each cut node by one meta-variable; monomials that
// become identical merge. Given a bound on the number of monomials, COBRA
// finds — in polynomial time, by a bottom-up dynamic program — the cut that
// meets the bound while keeping the maximum number of distinct variables
// (the degrees of freedom left for hypotheticals).
//
// # Quick start
//
// The central handle is the Dataset: a named, immutable provenance set
// paired with its abstraction forest. Open one, then ask it questions —
// results are memoized on the handle, so the expensive dynamic program
// runs once no matter how many goroutines ask:
//
//	names := cobra.NewNames()
//	set := cobra.NewSet(names)
//	set.Add("zip 10001", cobra.MustParsePolynomial("208.8*p1*m1 + 240*p1*m3", names))
//
//	tree := cobra.NewTree("Plans", names)
//	std := tree.MustAddChild(tree.Root(), "Standard")
//	tree.MustAddChild(std, "p1")
//	tree.MustAddChild(std, "p2")
//
//	ds, err := cobra.OpenDataset("zips", set, cobra.Forest{tree}, cobra.Options{})
//	if err != nil { ... }
//	defer ds.Close()
//
//	ctx := context.Background()
//	res, err := ds.Compress(ctx, 1)       // optimal cut under the bound
//	if err != nil { ... }
//	small, err := ds.Apply(ctx, res.Cuts...) // derived compressed Dataset
//
//	a := cobra.NewAssignment(names)
//	a.Set("m3", 0.8) // "March prices decreased by 20%"
//	rows, err := small.EvalBatch(ctx, []*cobra.Assignment{cobra.Induced(a, res.Cuts...)})
//
// CaptureDataset builds the handle straight from an instrumented SQL
// query; OpenDataset accepts any SetSource — an in-memory Set or an
// out-of-core ShardedSet (choose with Options.MaxResidentMonomials, spill
// location with Options.SpillDir). One-shot helpers (Compress, Frontier,
// FrontierSweep, EvalBatch, ...) remain as thin wrappers that open a
// transient Dataset per call.
//
// # Datasets: capture once, answer many times
//
// COBRA's economics are amortization: provenance is captured and
// compressed once, then thousands of what-if scenarios are answered
// against the compressed form. Dataset is that amortization reified:
//
//   - Compress(ctx, bound), Frontier(ctx), ForestFrontier(ctx) and
//     Sweep(ctx, bounds) memoize: concurrent callers share one solve
//     (single-flight), repeat callers get the cached answer. Sweep
//     answers every bound from the memoized curve by lookup.
//   - EvalBatch(ctx, assignments) evaluates scenarios against a
//     memoized compiled program (in-memory) or shard-at-a-time
//     (out-of-core).
//   - WithWorkers(n) returns a view with a different parallelism budget
//     sharing the same memoized state — sound because results are
//     bit-identical for every worker count.
//   - Every method takes a context: a canceled context aborts the
//     in-flight solve between shards, and cancellations are never
//     memoized.
//   - Out-of-core datasets support Evict(): state is persisted once to
//     the spill directory and released from memory, and the next call
//     transparently re-opens it — answers are bit-identical across
//     evict/reload cycles. In-memory datasets ignore Evict.
//
// The serve package and cmd/cobra-serve wrap a registry of Datasets in a
// long-lived HTTP/JSON daemon: background capture/compress jobs, request
// worker budgeting against a shared pool, LRU eviction under a residency
// budget, graceful shutdown. Responses are bit-identical to direct
// library calls (encoding/json round-trips float64 exactly).
//
// # Parallelism
//
// Every stage of the instrument → capture → compress → evaluate pipeline
// scales across cores through the Options knob: RunSQLWith, CaptureWith,
// CaptureLineageWith, ParameterizeColumnWith, AnnotateTuplesWith,
// CompressWith, ApplyWith, FrontierWith, FrontierForest, FrontierSweep and
// EvalBatch accept Options{Workers: n} and shard their work over up to n
// goroutines
// (AutoWorkers returns the saturating count). Workers <= 1 — and every
// plain entry point (RunSQL, Capture, Compress, Apply, Frontier) — runs
// fully sequentially.
//
//	res, err := cobra.CompressWith(set, cobra.Forest{tree}, bound,
//		cobra.Options{Workers: cobra.AutoWorkers()})
//
// Determinism guarantee: parallel runs return bit-identical results to the
// sequential path for every worker count. Only deterministic work is
// sharded — signature indexing (per-range signature sets interned locally
// and merged in range order), cut application (each polynomial mapped by
// the exact sequential code, preserving float summation order), chunked
// scenario evaluation (each row written
// to its own slot from a per-worker arena), and partition-parallel SQL
// execution and provenance capture (contiguous row ranges concatenated in
// shard order, per-worker join build tables merged in shard order,
// per-group aggregate state folded by a single worker in input-row order,
// and variable interning kept sequential so Var allocation order never
// changes). Streaming capture preserves the same guarantee: rows render
// in parallel batches but reach the sink sequentially in row order.
// What-if answers therefore never depend on the machine's core count.
//
// # Frontier sweeps: one DP run, many bounds
//
// Hypothetical reasoning in practice is slider-style: the analyst drags a
// size bound back and forth, and every position asks for the optimal
// abstraction under that bound. Re-running Compress per position re-pays
// the optimizer's dominant cost — the signature-indexing scan over the
// provenance — every time. A frontier is the complete bound→optimum curve
// from ONE such run: for every feasible number of meta-variables k, the
// minimal compressed size and a cut attaining it (Dataset.Frontier; the
// one-shot Frontier/FrontierWith helpers wrap it). Any bound is then
// answered by lookup (BestForBound: maximal feasible k, ties toward the
// smaller size — the DP's own choice), and Dataset.Sweep answers an
// arbitrary batch of bounds this way — the curve is memoized on the
// handle, so a second sweep costs only lookups:
//
//	answers, err := ds.Sweep(ctx, []int{9000, 6000, 3000, 1000})
//
// For a single tree every sweep answer — cut, sizes, statistics, and
// error — is bit-identical to CompressWith at that bound, for every worker
// count and source representation; a 32-bound batch costs one compression
// instead of 32 (the E16 experiment measures the speedup).
//
// Forests sweep too: FrontierForest computes each tree's curve (in
// parallel across trees for in-memory sets; strictly one tree at a time
// for sharded sources, so the residency budget holds) and composes them
// into one forest-level curve with a knapsack-style DP over the trees.
// The composition is exact precisely when every monomial contains leaves
// of at most one tree — dimensions instrumented on disjoint parts of the
// data — because the joint compressed size is then additive across trees.
// A monomial coupling two trees makes the joint problem NP-hard, and the
// sweep refuses it with a CrossTreeError rather than return wrong minima;
// Compress's coordinate descent remains the tool for coupled forests. On
// partitioned instances the sweep's answers are exact optima (matching
// exhaustive search), where coordinate descent may settle for less.
//
// # The streaming pipeline: SetSource and SetSink
//
// Every stage of the pipeline is written once against two small
// interfaces: a SetSource iterates keyed polynomials shard-at-a-time
// (implemented by both the in-memory Set — one shard: itself — and the
// spilling ShardedSet), and a SetSink receives them one at a time
// (implemented by Set, which materializes, and ShardBuilder, which seals
// fixed-size shards and spills past Options.MaxResidentMonomials). Each
// stage streams from a source into a sink, so the whole pipeline runs
// end-to-end without ever holding more than one shard per stage:
//
//	SQL rows ──CaptureDataset───▶ ShardBuilder ─▶ ShardedSet     (capture: row-at-a-time)
//	SetSource ──Dataset.Compress─▶ cut            (index built shard-at-a-time)
//	SetSource ──Dataset.Apply────▶ SetSink        (compressed shards re-spill)
//	SetSource ──Dataset.EvalBatch▶ result rows    (one shard compiled at a time)
//	SetSource ──WriteSetStream───▶ v2 frames ──ReadSetStream──▶ SetSink
//
// A Dataset opened over a ShardedSet routes every method down this
// streaming path automatically; the older explicit entry points
// (CompressStreamed, ApplyStreamed, EvalStreamed, FrontierStreamed) are
// deprecated wrappers kept for compatibility.
//
// Capture is streaming too: CaptureToShards (and CaptureLineageToShards
// for tuple-level lineage) executes the query through the engine's
// Volcano pull loop and hands each output row's polynomial straight to a
// ShardBuilder — the result relation and the full provenance set never
// materialize, so a join whose provenance exceeds memory captures within
// the budget. All streamed entry points return results bit-identical to
// their in-memory counterparts for every worker count — the determinism
// guarantee extends to the out-of-core path.
//
// ShardSet partitions an existing in-memory set into a ShardedSet;
// NewShardedSetBuilder exposes the sink for custom producers. Once the
// resident monomial count would exceed Options.MaxResidentMonomials,
// whole shards spill to a private temp directory (removed wholesale by
// Close) and stream back one at a time.
//
// # On-disk formats
//
// Three binary encodings exist, all readable by ReadSetBinary. The v1
// format (WriteSetBinary) is a single record: magic "CPRVB1\n", a
// used-variables-only name table, then every polynomial with varint
// terms referencing table indices. The v2 streaming format (NewSetWriter
// / NewSetReader, WriteSetStream / ReadSetStream) is framed: magic
// "CPRVB2\n", then one self-describing shard frame per shard — marker
// 'S', the shard's own used-variable table, its polynomials — and an end
// frame ('E' plus the shard count) so truncation is always detected.
// Neither side of a v2 transfer ever holds more than one shard.
//
// The v3 indexed format (NewSetWriterV3 / WriteSetStreamV3, read
// randomly via OpenIndexedSet or sequentially via ReadSetBinary) keeps
// v2's shard framing but makes every shard independently decodable:
//
//	magic "CPRVB3\n"
//	shard frames: 'S', flags byte, uvarint rawLen, uvarint storedLen,
//	    payload (delta-varint columnar encoding of the shard; flag bit 0
//	    marks the payload DEFLATE-compressed — set per shard, only when
//	    compression actually shrinks it)
//	footer frame: 'F', uvarint length, then for each shard its payload
//	    byte offset, stored and raw lengths, flags, first-polynomial
//	    index, polynomial and monomial counts, and a CRC32 of the stored
//	    bytes; then the union of the shard name tables in
//	    first-appearance order
//	trailer: 8-byte LE footer offset, tail magic "CPRVF3\n"
//
// A random-access reader seeks the trailer, loads the footer index, and
// then decodes any subset of shards in any order on any number of
// goroutines, verifying each shard's checksum as it goes. The
// determinism contract: the footer name table repeats exactly the
// variable order a sequential read would intern, so an indexed open
// pre-interns the same Vars and random-access decode is bit-identical
// to the sequential stream — same set, same namespace, independent of
// decode order and worker count. Damage is always a typed error
// (polyio.CorruptError or polyio.ChecksumError), never a panic or a
// silent short read. v3 is what Dataset.Evict writes, which is why the
// Deprecated notes on the *Streamed wrappers (CompressStreamed,
// ApplyStreamed, EvalStreamed, FrontierStreamed) all point at Dataset:
// the Dataset path is the one that spills to, and reloads from, the
// indexed format.
//
// # Representation: packed monomials and per-worker arenas
//
// Two in-memory representations implement SetSource. The pointer form —
// Set — is a slice of keyed Polynomials, each a []Monomial whose term
// vectors are separately allocated: flexible to build and mutate, but a
// million monomials are over a million small objects for the collector
// to trace. The packed form (internal/polynomial.PackedSet) holds the
// same data in five append-only slabs, with int32 offset slices
// delimiting polynomials and monomials:
//
//	keys:    ["zip 10001", "zip 10002", ...]   one key per polynomial
//	polyOff: [0, 2, ...]                       poly i's monomials = [polyOff[i], polyOff[i+1])
//	coefs:   [208.8, 240.0, 115.2, ...]        one coefficient per monomial
//	monOff:  [0, 2, 4, 5, ...]                 monomial m's terms = [monOff[m], monOff[m+1])
//	terms:   [p1 m1 | p1 m3 | p2 | ...]        flat (Var, Exp) pairs
//
// However a packed set is produced — Pack from any SetSource, PackSet
// from a Set, Add per polynomial, or the BeginPoly/AppendMonomial
// builder path that never forms an intermediate Polynomial — the slabs
// are bit-identical for the same logical content. View() overlays the
// slabs with zero-copy Polynomial windows, so every Set-based algorithm
// (indexing, cut application, compiled valuation) runs unchanged over
// either representation and returns bit-identical answers; ForEachShard
// presents the view as a single shard, which is how a PackedSet flows
// into the streaming pipeline.
//
// The same discipline governs scratch memory in the parallel stages.
// Arena lifetime rules: each worker allocates its scratch — name-render
// byte slabs, signature key buffers, per-range intern maps — once per
// contiguous shard range, never per row or per monomial; slab windows
// handed onward (interned names, rendered values) are never rewritten
// after they are published, so append-grown backings stay valid; and
// every per-worker partial is merged into shared state sequentially in
// range order, which is what keeps results bit-identical and keeps the
// allocation count flat across worker counts (a paired test asserts
// workers=2 allocates no more per op than workers=1 on the compression,
// descent, apply, capture and SQL paths). Row values obey the same
// borrow contract: a Tuple's Values are valid only until the iterator's
// next Next or Close, so buffering consumers copy, and annotations are
// immutable once attached.
//
// # Iterator lifecycle
//
// The engine's Volcano operators uphold a strict lifecycle contract: an
// Open that returns an error has released everything it acquired (a join
// whose right side fails to open closes its already-opened left child),
// so callers only Close iterators whose Open succeeded — and then exactly
// once, on success and on every error path. Collect reports a Close
// failure even when the scan itself succeeded.
//
// # Invariants and the lint suite
//
// The guarantees above are not conventions but mechanically enforced
// invariants: cmd/cobra-lint is a go/analysis-style suite of nine
// analyzers, run through the standard vet driver (go vet -vettool, or
// `make cobra-lint`; the binary is a `tool` in go.mod), and the tree
// must stay at zero findings. The dataflow-sensitive analyzers share a
// per-function control-flow graph (internal/lint/cfg: basic blocks,
// natural-loop detection, reverse postorder) rather than re-deriving
// path questions from raw syntax.
//
//   - determinism: in the order-sensitive packages (internal/core,
//     polynomial, abstraction, valuation, polyio, provenance), ranging
//     over a map is flagged unless the keys are sorted at the site —
//     map visit order must never reach an observable result, which is
//     what makes parallel runs bit-identical and serialized bytes
//     stable.
//   - nogoroutine: the `go` statement is confined to internal/parallel
//     and serve; all other code routes concurrency through the worker
//     pool, so the Workers knob is the only source of parallelism.
//   - iterclose: every engine.Iterator obtained from Open must be
//     Closed on all paths (or handed off), upholding the lifecycle
//     contract of the previous section.
//   - sinkerr: errors from SetSink methods (Add, AddSet, Seal, Finish,
//     Close) may not be discarded — a dropped sink error is silently
//     truncated provenance.
//   - ctxflow: library packages may not mint context.Background() or
//     context.TODO(); contexts are threaded from the caller so
//     cancellation always propagates.
//   - nowallclock: the deterministic core may not read the wall clock
//     (time.Now) or use math/rand; measurement lives in
//     internal/experiments.
//   - hotalloc: inside CFG-detected loops of the solve-path packages
//     (internal/polynomial, core, abstraction, valuation, sql, engine,
//     provenance), per-iteration allocation patterns are flagged —
//     fmt.Sprintf and string concatenation, []byte↔string conversions
//     (map-read keys, which the compiler elides, are exempt), appends
//     into uncapped loop-local slices, and composite literals or
//     closures that escape the loop body. Loop-exit paths (return,
//     panic) run once and are exempt.
//   - lockguard: a struct field annotated `// guarded by <mu>` may only
//     be read with that mutex (or its read lock) held, and only written
//     with it write-held, on every CFG path from function entry;
//     *Locked-suffix methods document the caller holds it.
//   - nodeprecated: no call site inside the module may reference an
//     entry point carrying a `Deprecated:` doc marker (for example the
//     *Streamed facades in this package) — deprecations drain instead
//     of accumulating.
//
// Alongside the analyzers, cmd/cobra-escape (also a go.mod `tool`, run
// as `make cobra-escape`) ratchets the compiler's own escape analysis:
// it rebuilds the hot packages with -gcflags=-m=2, inventories the
// heap-escape sites per function into ESCAPES.json, and fails when any
// function exceeds the checked-in escape_budget.json. Fixes lower the
// budget via `go tool cobra-escape -update`; regressions fail CI with
// the exact new positions.
//
// Each analyzer has a justification escape hatch — a //cobra:<name>
// <reason> comment on (or immediately above) the flagged line — for the
// rare site where the pattern is provably harmless (for example, a
// map-to-map merge whose visit order cannot reach the result). A
// directive without a reason is itself a finding.
//
// The package also bundles everything needed to reproduce the paper
// end-to-end: a provenance-aware SQL engine (RunSQL, Capture), the
// telephony running example and a TPC-H workload (internal/datagen), fast
// compiled valuation (Compile, MeasureSpeedup), accuracy metrics, and
// serialization for interoperating with external provenance engines
// (ReadSet*/WriteSet*, streaming via SetWriter/SetReader). See DESIGN.md
// and EXPERIMENTS.md in the repository
// root, the runnable programs under examples/, and the command-line tools
// under cmd/.
package cobra
