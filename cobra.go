package cobra

import (
	"context"
	"io"
	"runtime"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/experiments"
	"github.com/cobra-prov/cobra/internal/polyio"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/sql"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// Core algebraic types.
type (
	// Var identifies an interned provenance variable.
	Var = polynomial.Var
	// Names is the variable namespace shared by polynomials, trees and
	// assignments.
	Names = polynomial.Names
	// Term is a variable with an exponent.
	Term = polynomial.Term
	// Monomial is a coefficient times a product of terms.
	Monomial = polynomial.Monomial
	// Polynomial is a canonical provenance polynomial.
	Polynomial = polynomial.Polynomial
	// Set is an ordered collection of named provenance polynomials (one
	// per query-output group).
	Set = polynomial.Set
	// ShardedSet is a Set split into fixed-size shards that spill to disk
	// past a memory budget — the out-of-core representation behind
	// CompressStreamed and EvalStreamed.
	ShardedSet = polynomial.ShardedSet
	// ShardBuilder streams polynomials into a ShardedSet without ever
	// materializing the whole set.
	ShardBuilder = polynomial.ShardBuilder
	// SetSource is the streaming view every pipeline stage consumes: keyed
	// polynomials iterated shard-at-a-time, implemented by both *Set and
	// *ShardedSet, so each stage works in-memory and out-of-core alike.
	SetSource = polynomial.SetSource
	// SetSink receives keyed polynomials one at a time; implemented by
	// *Set (materializes) and *ShardBuilder (seals shards, spills past the
	// budget).
	SetSink = polynomial.SetSink

	// Tree is an abstraction tree over provenance variables.
	Tree = abstraction.Tree
	// NodeID identifies a node within a Tree.
	NodeID = abstraction.NodeID
	// Cut is an abstraction: an antichain separating root from leaves.
	Cut = abstraction.Cut
	// Forest is an ordered list of trees over disjoint variables.
	Forest = abstraction.Forest

	// Result describes a chosen abstraction and its effect.
	Result = core.Result
	// Problem is a compression instance (set, trees, bound).
	Problem = core.Problem
	// InfeasibleError reports an unreachable bound.
	InfeasibleError = core.InfeasibleError

	// Assignment is a sparse valuation of provenance variables.
	Assignment = valuation.Assignment
	// Program is a compiled polynomial set for fast repeated valuation.
	Program = valuation.Program
	// Timing reports full-vs-compressed assignment times.
	Timing = experiments.Timing
	// Accuracy summarizes compressed-vs-full result deviation.
	Accuracy = valuation.Accuracy

	// Catalog names the base relations available to SQL queries.
	Catalog = engine.Catalog
	// Relation is an in-memory annotated table.
	Relation = relation.Relation
	// Schema describes relation columns.
	Schema = relation.Schema
	// Column is one attribute of a schema.
	Column = relation.Column
	// Value is a dynamically typed cell value (possibly symbolic).
	Value = relation.Value
	// VarSpec derives provenance variable names from row values.
	VarSpec = provenance.VarSpec
	// CommutationReport is the outcome of CheckCommutation.
	CommutationReport = provenance.CommutationReport
)

// ErrInfeasible is wrapped by InfeasibleError; test with errors.Is.
var ErrInfeasible = core.ErrInfeasible

// Options tunes how the engine uses the machine.
type Options struct {
	// Workers caps the number of goroutines the compression, valuation and
	// provenance-capture hot paths may use. Workers <= 1 (the zero value)
	// keeps every code path sequential. Parallel runs shard only
	// deterministic work — signature indexing, cut application,
	// speculative per-tree re-optimization, chunked scenario evaluation,
	// and partition-parallel SQL execution and capture (row-range sharded
	// scans/filters/projections, per-worker join build tables merged in
	// shard order, per-group aggregate folds) — so results are
	// bit-identical for every value of Workers. Set Workers to
	// AutoWorkers() to saturate the machine.
	Workers int

	// MaxResidentMonomials bounds the monomials a ShardedSet keeps in
	// memory at once: shards beyond the budget spill to temp files and
	// stream back one at a time through the out-of-core pipeline (and it
	// selects the out-of-core representation for CaptureDataset). <= 0
	// (the zero value) disables spilling. The bound is per sharded set and
	// holds as long as no single polynomial exceeds half the budget (whole
	// polynomials are never split).
	MaxResidentMonomials int

	// SpillDir is where out-of-core state lives ("" = os.TempDir()):
	// ShardedSet spill files and Dataset eviction streams are created in
	// private subdirectories there and removed on Close.
	SpillDir string
}

// shardOptions translates the facade knobs to the storage layer's.
func (o Options) shardOptions() polynomial.ShardOptions {
	return polynomial.ShardOptions{MaxResidentMonomials: o.MaxResidentMonomials, SpillDir: o.SpillDir}
}

// AutoWorkers returns the worker count that saturates the machine
// (runtime.GOMAXPROCS).
func AutoWorkers() int { return runtime.GOMAXPROCS(0) }

// NewRelation creates an empty in-memory relation with the given columns.
func NewRelation(name string, cols ...Column) *Relation {
	return relation.NewRelation(name, relation.NewSchema(cols...))
}

// Int wraps an integer cell value.
func Int(i int64) Value { return relation.Int(i) }

// Float wraps a floating-point cell value.
func Float(f float64) Value { return relation.Float(f) }

// Str wraps a string cell value.
func Str(s string) Value { return relation.Str(s) }

// Bool wraps a boolean cell value.
func Bool(b bool) Value { return relation.Bool(b) }

// Null returns the SQL NULL cell value.
func Null() Value { return relation.Null() }

// PolyValue wraps a symbolic (polynomial) cell value.
func PolyValue(p Polynomial) Value { return relation.Poly(p) }

// NewNames returns an empty variable namespace.
func NewNames() *Names { return polynomial.NewNames() }

// NewSet returns an empty polynomial set over names (fresh if nil).
func NewSet(names *Names) *Set { return polynomial.NewSet(names) }

// ParsePolynomial parses the textual polynomial format, e.g.
// "208.8*p1*m1 + 240*p1*m3".
func ParsePolynomial(input string, names *Names) (Polynomial, error) {
	return polynomial.Parse(input, names)
}

// MustParsePolynomial is ParsePolynomial panicking on error.
func MustParsePolynomial(input string, names *Names) Polynomial {
	return polynomial.MustParse(input, names)
}

// AddPolynomials returns p + q in canonical form.
func AddPolynomials(p, q Polynomial) Polynomial { return polynomial.Add(p, q) }

// MulPolynomials returns p · q in canonical form.
func MulPolynomials(p, q Polynomial) Polynomial { return polynomial.Mul(p, q) }

// ScalePolynomial returns c·p.
func ScalePolynomial(p Polynomial, c float64) Polynomial { return polynomial.Scale(p, c) }

// Derivative returns ∂p/∂v — the exact sensitivity of a provenance
// polynomial to one variable.
func Derivative(p Polynomial, v Var) Polynomial { return polynomial.Derivative(p, v) }

// Substitute replaces v in p by the polynomial q (powers expand), e.g. to
// refine a meta-variable back into a combination of its leaves.
func Substitute(p Polynomial, v Var, q Polynomial) Polynomial {
	return polynomial.Substitute(p, v, q)
}

// NewTree creates an abstraction tree with the given root name.
func NewTree(rootName string, names *Names) *Tree {
	return abstraction.NewTree(rootName, names)
}

// TreeFromPaths builds a tree from root-to-leaf paths.
func TreeFromPaths(rootName string, names *Names, paths ...[]string) (*Tree, error) {
	return abstraction.FromPaths(rootName, names, paths...)
}

// TreeFromJSON decodes a tree from its nested JSON form.
func TreeFromJSON(data []byte, names *Names) (*Tree, error) {
	return abstraction.TreeFromJSON(data, names)
}

// Apply applies cuts to a set, returning the compressed set.
func Apply(set *Set, cuts ...Cut) *Set { return abstraction.Apply(set, cuts...) }

// ApplyWith is Apply using opts.Workers goroutines; the compressed set is
// bit-identical to Apply's.
func ApplyWith(set *Set, opts Options, cuts ...Cut) *Set {
	return abstraction.ApplyN(set, opts.Workers, cuts...)
}

// Compress finds the optimal abstraction under the bound: the exact DP for
// one tree, coordinate descent for a forest. See also CompressGreedy and
// CompressExhaustive for the baseline algorithms. One-shot: for repeated
// bounds over the same set, open a Dataset and use its memoized Compress.
func Compress(set *Set, trees Forest, bound int) (*Result, error) {
	return CompressWith(set, trees, bound, Options{})
}

// CompressWith is Compress using opts.Workers goroutines for the signature
// indexing, cut application and per-tree re-optimization hot paths. The
// result is bit-identical to Compress's for every worker count.
func CompressWith(set *Set, trees Forest, bound int, opts Options) (*Result, error) {
	ds, err := OpenDataset("", set, trees, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.Compress(context.Background(), bound)
}

// CompressGreedy runs the greedy baseline on a single tree.
func CompressGreedy(set *Set, tree *Tree, bound int) (*Result, error) {
	return core.Greedy(set, tree, bound)
}

// CompressExhaustive enumerates all cuts of a small tree (testing oracle).
func CompressExhaustive(set *Set, tree *Tree, bound int) (*Result, error) {
	return core.Exhaustive(set, tree, bound)
}

// Out-of-core pipeline: sharded sets stream through compression,
// application and valuation one shard at a time, so provenance larger
// than MaxResidentMonomials never materializes. Every streamed entry
// point returns results bit-identical to its in-memory counterpart for
// every worker count.

// ShardSet splits an in-memory set into a ShardedSet under
// opts.MaxResidentMonomials (the caller should drop the original set to
// realize the memory bound). Close the result to remove spill files.
func ShardSet(set *Set, opts Options) (*ShardedSet, error) {
	return polynomial.BuildSharded(set, opts.shardOptions())
}

// NewShardedSetBuilder streams polynomials into a ShardedSet as they are
// produced — e.g. while reading a v2 stream or capturing provenance — so
// the full set never materializes.
func NewShardedSetBuilder(names *Names, opts Options) *ShardBuilder {
	return polynomial.NewShardBuilder(names, opts.shardOptions())
}

// CompressStreamed is Compress over a sharded set: the signature index is
// built shard-at-a-time (exact DP for one tree, coordinate descent for a
// forest) with peak memory of one shard plus the index. The result is
// bit-identical to Compress on the materialized set for every worker
// count.
//
// Deprecated: open the set as a Dataset (OpenDataset) and use
// Dataset.Compress, which memoizes per bound and accepts a context. This
// wrapper remains for back-compat.
func CompressStreamed(ss *ShardedSet, trees Forest, bound int, opts Options) (*Result, error) {
	ds, err := OpenDataset("", ss, trees, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.Compress(context.Background(), bound)
}

// ApplyStreamed applies cuts to a sharded set shard-at-a-time, producing
// a new ShardedSet under the same memory budget; materializing it yields
// exactly ApplyWith of the materialized input.
//
// Deprecated: open the set as a Dataset (OpenDataset) and use
// Dataset.Apply, which returns the compressed provenance as a new Dataset
// ready for evaluation. This wrapper remains for back-compat.
func ApplyStreamed(ss *ShardedSet, opts Options, cuts ...Cut) (*ShardedSet, error) {
	return abstraction.ApplySharded(ss, opts.Workers, cuts...)
}

// EvalStreamed evaluates every polynomial of a sharded set under many
// scenario assignments, compiling and evaluating one shard at a time.
// Rows are bit-identical to Compile + EvalBatch on the materialized set
// for every worker count.
//
// Deprecated: open the set as a Dataset (OpenDataset) and use
// Dataset.EvalBatch, which accepts a context and reuses compiled state
// where possible. This wrapper remains for back-compat.
func EvalStreamed(ss *ShardedSet, assignments []*Assignment, opts Options) ([][]float64, error) {
	ds, err := OpenDataset("", ss, nil, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.EvalBatch(context.Background(), assignments)
}

// Frontier sweeps: one DP run, many bounds. Hypothetical reasoning in
// practice means sliding a size bound interactively; a frontier is the
// complete bound→optimum curve, and a sweep answers an arbitrary batch of
// bounds from it without re-running the DP per bound.

// FrontierPoint is one point of the expressiveness/size tradeoff curve.
type FrontierPoint = core.FrontierPoint

// ForestFrontierPoint is one point of the forest-level tradeoff curve:
// the minimal joint compressed size achievable with exactly NumMeta cut
// nodes across the forest, with one cut per tree in forest order.
type ForestFrontierPoint = core.ForestFrontierPoint

// SweepAnswer is FrontierSweep's answer for one requested bound: exactly
// one of Result (what per-bound compression would return) and Err (an
// *InfeasibleError for unreachable bounds) is set.
type SweepAnswer = core.SweepAnswer

// CrossTreeError reports a monomial coupling two trees of a forest — the
// case in which no exact forest-level frontier exists (use Compress's
// coordinate descent there); test with errors.As.
type CrossTreeError = core.CrossTreeError

// Frontier computes the complete tradeoff curve for a tree in one DP run:
// for every feasible number of meta-variables, the minimal compressed size
// and a cut attaining it.
func Frontier(set *Set, tree *Tree) ([]FrontierPoint, error) {
	return FrontierWith(set, tree, Options{})
}

// FrontierWith is Frontier using opts.Workers goroutines for the signature
// indexing pass; the curve is identical for every worker count.
func FrontierWith(set *Set, tree *Tree, opts Options) ([]FrontierPoint, error) {
	ds, err := OpenDataset("", set, Forest{tree}, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.Frontier(context.Background())
}

// FrontierStreamed is Frontier over any SetSource — in particular a
// sharded out-of-core set, whose peak residency stays within its
// MaxResidentMonomials budget while the curve is computed. The points are
// bit-identical to Frontier's on the materialized set for every worker
// count.
//
// Deprecated: open the source as a Dataset (OpenDataset) and use
// Dataset.Frontier, which memoizes the curve and accepts a context. This
// wrapper remains for back-compat.
func FrontierStreamed(src SetSource, tree *Tree, opts Options) ([]FrontierPoint, error) {
	ds, err := OpenDataset("", src, Forest{tree}, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.Frontier(context.Background())
}

// FrontierForest computes the forest-level tradeoff curve from one DP run
// per tree (solved in parallel across trees for in-memory sets, strictly
// one at a time for sharded sources) composed by a knapsack-style DP over
// the trees. It requires each monomial to touch at most one tree of the
// forest — the condition under which the joint size is additive and the
// curve exact (CrossTreeError otherwise) — and is bit-identical for every
// source representation and worker count.
func FrontierForest(src SetSource, trees Forest, opts Options) ([]ForestFrontierPoint, error) {
	ds, err := OpenDataset("", src, trees, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.ForestFrontier(context.Background())
}

// BestForBound picks the frontier point a given bound admits: the maximal
// feasible number of meta-variables, ties broken toward the smallest
// MinSize — the optimizer's own choice, deterministically.
func BestForBound(frontier []FrontierPoint, bound int) (FrontierPoint, bool) {
	return core.BestForBound(frontier, bound)
}

// BestForForestBound is BestForBound over a forest-level curve.
func BestForForestBound(points []ForestFrontierPoint, bound int) (ForestFrontierPoint, bool) {
	return core.BestForForestBound(points, bound)
}

// FrontierSweep answers an arbitrary batch of bounds from ONE DP run over
// any SetSource (an in-memory Set or a sharded out-of-core set): the
// tradeoff curve is computed once and every bound becomes a lookup, so a
// batch of N bounds costs one compression instead of N. For a single tree
// each answer is bit-identical — cut, sizes, statistics, error — to
// CompressWith at that bound, for every worker count; for a forest the
// answers are exact optima over partitioned instances (each monomial
// touching at most one tree; CrossTreeError otherwise), where Compress's
// coordinate descent may settle for less. Per-bound infeasibility lands in
// the answer's Err; hard errors fail the sweep.
func FrontierSweep(src SetSource, trees Forest, bounds []int, opts Options) ([]SweepAnswer, error) {
	ds, err := OpenDataset("", src, trees, opts)
	if err != nil {
		return nil, err
	}
	//cobra:ctx deprecated context-free wrapper; the Dataset API threads the caller's context
	return ds.Sweep(context.Background(), bounds)
}

// NewAssignment returns an empty valuation over names (unassigned
// variables evaluate to 1).
func NewAssignment(names *Names) *Assignment { return valuation.New(names) }

// Induced computes meta-variable defaults: the average of each group's
// leaf values under base (the demo's Figure-5 defaults).
func Induced(base *Assignment, cuts ...Cut) *Assignment {
	return valuation.Induced(base, cuts...)
}

// InducedWeighted is Induced with coefficient-mass weighting.
func InducedWeighted(base *Assignment, set *Set, cuts ...Cut) *Assignment {
	return valuation.InducedWeighted(base, set, cuts...)
}

// EvalSet evaluates every polynomial of the set under the assignment.
func EvalSet(set *Set, a *Assignment) []float64 { return valuation.EvalSet(set, a) }

// Compile flattens a set for fast repeated valuation.
func Compile(set *Set) *Program { return valuation.Compile(set) }

// EvalBatch evaluates the compiled program under many scenario assignments —
// one result row per assignment — chunking the scenarios across opts.Workers
// goroutines with a dense valuation arena per worker. Rows are bit-identical
// to evaluating each assignment alone, for every worker count.
func EvalBatch(p *Program, assignments []*Assignment, opts Options) [][]float64 {
	return p.EvalBatchN(assignments, nil, opts.Workers)
}

// MeasureSpeedup times full vs compressed valuation. The measurement
// lives in internal/experiments (the deterministic valuation core does
// not read the wall clock); this wrapper keeps the public surface.
func MeasureSpeedup(full, comp *Program, fullVals, compVals []float64, iters int) Timing {
	return experiments.MeasureSpeedup(full, comp, fullVals, compVals, iters)
}

// CompareResults computes accuracy metrics between result vectors.
func CompareResults(full, comp []float64) Accuracy {
	return valuation.CompareResults(full, comp)
}

// SensitivityEntry reports Σ_groups |∂result/∂variable| for one variable.
type SensitivityEntry = valuation.SensitivityEntry

// Sensitivity ranks the variables by how strongly the results depend on
// them at the assignment point — a guide for choosing scenarios and for
// judging what an abstraction may safely group.
func Sensitivity(set *Set, a *Assignment) []SensitivityEntry {
	return valuation.Sensitivity(set, a)
}

// RunSQL parses, plans and executes a SELECT over the catalog using the
// provenance-aware engine.
func RunSQL(query string, cat Catalog) (*Relation, error) { return sql.Run(query, cat) }

// RunSQLWith is RunSQL executing the plan with opts.Workers goroutines:
// scans, filters, projections, join build/probe phases and group
// accumulation shard their rows over the pool. The result is bit-identical
// to RunSQL's for every worker count.
func RunSQLWith(query string, cat Catalog, opts Options) (*Relation, error) {
	return sql.RunN(query, cat, opts.Workers)
}

// ExplainSQL renders the planned operator tree (pushed filters, join order,
// hash keys) without executing the query.
func ExplainSQL(query string, cat Catalog) (string, error) { return sql.Explain(query, cat) }

// CaptureLineage extracts tuple-level (how-)provenance: one N[X] polynomial
// per output row of the query, from tuple-annotated relations.
func CaptureLineage(query string, cat Catalog, names *Names) (*Set, error) {
	return provenance.CaptureLineage(query, cat, names)
}

// CaptureLineageWith is CaptureLineage using opts.Workers goroutines for
// query execution and row-key rendering; the set is bit-identical to
// CaptureLineage's for every worker count.
func CaptureLineageWith(query string, cat Catalog, names *Names, opts Options) (*Set, error) {
	return provenance.CaptureLineageN(query, cat, names, opts.Workers)
}

// Derivable evaluates a lineage polynomial in the Boolean semiring: is the
// row derivable from the present source tuples?
func Derivable(lineage Polynomial, present func(Var) bool) bool {
	return provenance.Derivable(lineage, present)
}

// MinimalCost evaluates a lineage polynomial in the tropical semiring: the
// cheapest derivation given per-tuple costs.
func MinimalCost(lineage Polynomial, cost func(Var) float64) float64 {
	return provenance.MinimalCost(lineage, cost)
}

// ParameterizeColumn instruments a numeric column: each cell is multiplied
// by the product of the variables derived from specs (cell-level
// instrumentation).
func ParameterizeColumn(rel *Relation, target string, specs []VarSpec, names *Names) (*Relation, error) {
	return provenance.ParameterizeColumn(rel, target, specs, names)
}

// AnnotateTuples instruments a relation at the tuple level: each tuple's
// annotation becomes a fresh variable derived from spec.
func AnnotateTuples(rel *Relation, spec VarSpec, names *Names) (*Relation, error) {
	return provenance.AnnotateTuples(rel, spec, names)
}

// Capture runs a query and extracts its provenance polynomials.
func Capture(query string, cat Catalog, names *Names, valueCol string) (*Set, error) {
	return provenance.Capture(query, cat, names, valueCol)
}

// CaptureWith is Capture using opts.Workers goroutines end to end: the
// query executes through the engine's partition-parallel path and the
// result polynomials are collected across the pool. The captured set is
// bit-identical to Capture's for every worker count.
func CaptureWith(query string, cat Catalog, names *Names, valueCol string, opts Options) (*Set, error) {
	return provenance.CaptureN(query, cat, names, valueCol, opts.Workers)
}

// CaptureToShards runs a query and streams its provenance polynomials
// straight into a budgeted ShardedSet, row by row, without ever
// materializing the result relation or the full provenance set — capture
// for queries whose provenance exceeds memory. names must be the
// namespace the catalog was instrumented under. The built set's
// PeakResidentMonomials stays within opts.MaxResidentMonomials (when
// set), and materializing it yields exactly Capture's set for every
// worker count. Close the result to remove its spill files.
//
// One caveat versus Capture: with an empty valueCol the symbolic column
// is inferred from the first buffered batch of rows (Capture scans the
// whole materialized result). A result whose symbolic column holds no
// polynomial value that early fails loudly — pass valueCol explicitly
// there; a second symbolic column is still rejected wherever in the
// stream it appears.
func CaptureToShards(query string, cat Catalog, names *Names, valueCol string, opts Options) (*ShardedSet, error) {
	b := polynomial.NewShardBuilder(names, opts.shardOptions())
	defer b.Discard() // release partial spill files on any error path
	if err := provenance.CaptureStream(query, cat, valueCol, b, opts.Workers); err != nil {
		return nil, err
	}
	return b.Finish()
}

// CaptureLineageToShards is CaptureToShards for tuple-level lineage: one
// N[X] polynomial per output row, streamed into a budgeted ShardedSet,
// bit-identical to CaptureLineage's set for every worker count.
func CaptureLineageToShards(query string, cat Catalog, names *Names, opts Options) (*ShardedSet, error) {
	b := polynomial.NewShardBuilder(names, opts.shardOptions())
	defer b.Discard() // release partial spill files on any error path
	if err := provenance.CaptureLineageStream(query, cat, b, opts.Workers); err != nil {
		return nil, err
	}
	return b.Finish()
}

// ParameterizeColumnWith is ParameterizeColumn instrumenting the column
// with opts.Workers goroutines (variable interning stays sequential in row
// order, so the instrumented relation is bit-identical to the sequential
// one).
func ParameterizeColumnWith(rel *Relation, target string, specs []VarSpec, names *Names, opts Options) (*Relation, error) {
	return provenance.ParameterizeColumnN(rel, target, specs, names, opts.Workers)
}

// AnnotateTuplesWith is AnnotateTuples instrumenting the relation with
// opts.Workers goroutines; bit-identical to the sequential path.
func AnnotateTuplesWith(rel *Relation, spec VarSpec, names *Names, opts Options) (*Relation, error) {
	return provenance.AnnotateTuplesN(rel, spec, names, opts.Workers)
}

// Concretize evaluates every symbolic cell under the assignment, producing
// a concrete catalog for query re-execution.
func Concretize(cat Catalog, a *Assignment) Catalog { return provenance.Concretize(cat, a) }

// CheckCommutation verifies that provenance valuation equals query
// re-execution over the concretized database.
func CheckCommutation(query string, cat Catalog, names *Names, valueCol string, a *Assignment) (CommutationReport, error) {
	return provenance.CheckCommutation(query, cat, names, valueCol, a)
}

// Serialization — the interface to external provenance engines.

// WriteSetText writes the human-readable text format.
func WriteSetText(w io.Writer, set *Set) error { return polyio.WriteSetText(w, set) }

// ReadSetText parses the text format.
func ReadSetText(r io.Reader, names *Names) (*Set, error) { return polyio.ReadSetText(r, names) }

// WriteSetJSON writes the JSON format.
func WriteSetJSON(w io.Writer, set *Set) error { return polyio.WriteSetJSON(w, set) }

// ReadSetJSON parses the JSON format.
func ReadSetJSON(r io.Reader, names *Names) (*Set, error) { return polyio.ReadSetJSON(r, names) }

// WriteSetBinary writes the compact binary format.
func WriteSetBinary(w io.Writer, set *Set) error { return polyio.WriteSetBinary(w, set) }

// ReadSetBinary parses the binary format.
func ReadSetBinary(r io.Reader, names *Names) (*Set, error) { return polyio.ReadSetBinary(r, names) }

// SetWriter incrementally writes the v2 streaming binary format, one
// shard frame per WriteShard call (used-variables-only tables, an end
// frame guarding against truncation).
type SetWriter = polyio.SetWriter

// SetReader incrementally reads the v2 streaming binary format, one shard
// per Next call (io.EOF after the end frame).
type SetReader = polyio.SetReader

// NewSetWriter starts a v2 set stream on w.
func NewSetWriter(w io.Writer) (*SetWriter, error) { return polyio.NewSetWriter(w) }

// NewSetReader opens a v2 set stream for shard-at-a-time reading.
func NewSetReader(r io.Reader, names *Names) (*SetReader, error) {
	return polyio.NewSetReader(r, names)
}

// WriteSetStream writes any SetSource (an in-memory Set or a ShardedSet)
// as a v2 stream, one frame per shard, never holding more than one shard
// in memory.
func WriteSetStream(w io.Writer, src SetSource) error { return polyio.WriteSetStream(w, src) }

// ReadSetStream reads a binary set stream (v1 or v2) into a ShardedSet,
// decoding polynomial-at-a-time straight into the budgeted store — the
// opts.MaxResidentMonomials bound holds on the read side regardless of
// how the stream was sharded when written.
func ReadSetStream(r io.Reader, names *Names, opts Options) (*ShardedSet, error) {
	return polyio.ReadSetStream(r, names, opts.shardOptions())
}

// WriteAssignmentJSON writes an assignment as {"variable": value}.
func WriteAssignmentJSON(w io.Writer, a *Assignment) error {
	return polyio.WriteAssignmentJSON(w, a)
}

// ReadAssignmentJSON parses a {"variable": value} object.
func ReadAssignmentJSON(r io.Reader, names *Names) (*Assignment, error) {
	return polyio.ReadAssignmentJSON(r, names)
}
