#!/bin/sh
# bench.sh — run the E1–E9 and E14–E17 experiment benchmarks (plus the
# parallel pairs, the sweep-vs-recompress pair and the on-disk format
# pairs) and record the results as JSON in BENCH_core.json, so the
# repository tracks its performance trajectory PR over PR.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCH_PATTERN   benchmark regexp (default: the E1–E9 and E14–E17
#                   experiment benches, the parallel workers pairs —
#                   including the E13 capture pairs, SQLRunWorkers /
#                   CaptureWorkers — the BoundSweep32 mode pair, and the
#                   DiskFormatWrite / IndexedDecode format and decode
#                   pairs)
#   BENCH_TIME      -benchtime value (default 1x: one run per benchmark —
#                   coarse but cheap; raise for stable numbers)
#   BENCH_ALLOW_SINGLE_CPU
#                   set to 1 to record the Workers speedup pairs even on a
#                   single-CPU machine (normally refused: see below)
#
# If any benchmark (and therefore any experiment it wraps) fails, the
# script exits non-zero WITHOUT touching the output file: a partial
# BENCH_core.json would silently erase the trajectory it exists to track.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_core.json}
PATTERN=${BENCH_PATTERN:-'^Benchmark(E[1-9]_|E14_|E15_|E16_|E17_|BoundSweep32|DiskFormatWrite|IndexedDecode|CompressDPWorkers|ForestDescentWorkers|ApplyCutWorkers|EvalBatchWorkers|SQLRunWorkers|CaptureWorkers)'}
TIME=${BENCH_TIME:-1x}

# The parallel speedup pairs are meaningless on a single CPU: workers>1
# then measures pure goroutine handoff, and recording the resulting
# "speedup" (≤1 by construction) would poison the trajectory file. Refuse
# to run the pairs unless the machine can actually run two workers — or
# the caller explicitly opts in with BENCH_ALLOW_SINGLE_CPU=1 (e.g. to
# refresh allocs/op numbers from a one-CPU container, where alloc counts
# are still exact).
CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
PROCS=${GOMAXPROCS:-$CPUS}
case $PATTERN in
*Workers*)
    if [ "$PROCS" -lt 2 ] && [ "${BENCH_ALLOW_SINGLE_CPU:-0}" != 1 ]; then
        echo "bench.sh: the Workers speedup pairs need >=2 CPUs (GOMAXPROCS=$PROCS); set BENCH_ALLOW_SINGLE_CPU=1 to record anyway" >&2
        exit 1
    fi
    ;;
esac

TMP=$(mktemp)
BASETMP=$(mktemp)
trap 'rm -f "$TMP" "$BASETMP"' EXIT

# Flatten the checked-in baseline snapshot into "name allocs bytes" lines
# for awk. The snapshot pins the pre-packed-layout numbers the ROADMAP
# reduction targets are stated against; it is only ever updated
# deliberately, never by this script.
sed -n 's/.*"name": *"\([^"]*\)", *"allocs_per_op": *\([0-9][0-9]*\), *"bytes_per_op": *\([0-9][0-9]*\).*/\1 \2 \3/p' \
    scripts/bench_baseline.json > "$BASETMP"

# POSIX sh has no pipefail: run go test to completion first and inspect
# its exit status (and the FAIL marker benchmarks print on b.Fatal)
# before any JSON is generated.
if ! go test -run='^$' -bench="$PATTERN" -benchtime="$TIME" -benchmem . >"$TMP" 2>&1; then
    cat "$TMP" >&2
    echo "bench.sh: benchmarks failed; leaving $OUT untouched" >&2
    exit 1
fi
if grep -q '^--- FAIL\|^FAIL' "$TMP"; then
    cat "$TMP" >&2
    echo "bench.sh: benchmark output reports FAIL; leaving $OUT untouched" >&2
    exit 1
fi
cat "$TMP"

# Convert `go test -bench` lines into a JSON document. Paired workers=1 /
# workers=N sub-benchmarks additionally yield derived speedup entries, as
# do mode=sweep / mode=recompress pairs (speedup = recompress / sweep:
# how much one batched frontier sweep saves over per-bound recompression).
# Each derived entry also carries the pair's allocs/op and their delta,
# so allocation regressions on the hot paths (ROADMAP item 1) surface in
# the same trajectory file as the speedups they suppress. Benchmarks
# listed in scripts/bench_baseline.json additionally yield
# allocs_reduction entries (baseline / current), making the ≥5×
# allocation-reduction goal visible in the trajectory file itself.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go env GOVERSION)" \
    -v cpus="$CPUS" \
    -v gomaxprocs="$PROCS" '
FNR == NR { basea[$1] = $2; baseb[$1] = $3; next }
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpus\": %d,\n  \"gomaxprocs\": %d,\n  \"benchmarks\": [", date, goversion, cpus, gomaxprocs
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2; nsop = $3
    bytes = "null"; allocs = "null"; disk = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")       bytes  = $(i-1)
        if ($i == "allocs/op")  allocs = $(i-1)
        if ($i == "disk_bytes") disk   = $(i-1)
    }
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
        name, iters, nsop, bytes, allocs
    if (disk != "null") printf ", \"disk_bytes\": %s", disk
    printf "}"
    # Remember current numbers for benchmarks pinned in the baseline
    # snapshot (names in the snapshot carry no -GOMAXPROCS suffix).
    bname = name
    sub(/-[0-9]+$/, "", bname)
    if (bname in basea) { cura[bname] = allocs; curb[bname] = bytes }
    # Remember paired workers benchmarks for derived speedups.
    if (match(name, /\/workers=[0-9]+/)) {
        base = substr(name, 1, RSTART - 1)
        w = substr(name, RSTART + 9, RLENGTH - 9)
        sub(/-[0-9]+$/, "", w)   # strip the -GOMAXPROCS suffix
        if (w == 1) { seq[base] = nsop; seqa[base] = allocs }
        else       { par[base] = nsop; para[base] = allocs }
    }
    # And paired sweep/recompress benchmarks (the -GOMAXPROCS suffix makes
    # "recompress" and "sweep" distinguishable by prefix alone).
    if (match(name, /\/mode=(sweep|recompress)/)) {
        base = substr(name, 1, RSTART - 1)
        mode = substr(name, RSTART + 6, RLENGTH - 6)
        if (mode ~ /^sweep/) { swp[base] = nsop; swpa[base] = allocs }
        else                 { rec[base] = nsop; reca[base] = allocs }
    }
    # Paired sequential/parallel decode benchmarks (the indexed v3 reader):
    # speedup = sequential / parallel wall-clock.
    if (match(name, /\/mode=(sequential|parallel)/)) {
        base = substr(name, 1, RSTART - 1)
        mode = substr(name, RSTART + 6, RLENGTH - 6)
        if (mode ~ /^seq/) { dsq[base] = nsop; dsqa[base] = allocs }
        else               { dpr[base] = nsop; dpra[base] = allocs }
    }
    # Paired format=v2/format=v3 benchmarks: their disk_bytes metrics give
    # the on-disk byte ratio of the indexed compressed format.
    if (match(name, /\/format=v[0-9]+/)) {
        base = substr(name, 1, RSTART - 1)
        fmt = substr(name, RSTART + 8, RLENGTH - 8)
        if (fmt == "v2") fmtv2[base] = disk
        if (fmt == "v3") fmtv3[base] = disk
    }
}
# allocpair renders the baseline/variant allocs/op and their delta for
# one derived pair, or empty JSON fields when -benchmem was off.
function allocpair(a, b) {
    if (a == "null" || b == "null" || a == "" || b == "")
        return sprintf(", \"allocs_base\": null, \"allocs_other\": null, \"allocs_delta\": null")
    return sprintf(", \"allocs_base\": %s, \"allocs_other\": %s, \"allocs_delta\": %d", a, b, b - a)
}
END {
    printf "\n  ],\n  \"speedups\": ["
    m = 0
    for (b in par) {
        if (!(b in seq) || par[b] == 0) continue
        if (m++) printf ","
        printf "\n    {\"name\": \"%s\", \"speedup\": %.3f%s}", b, seq[b] / par[b], allocpair(seqa[b], para[b])
    }
    for (b in swp) {
        if (!(b in rec) || swp[b] == 0) continue
        if (m++) printf ","
        printf "\n    {\"name\": \"%s\", \"speedup\": %.3f%s}", b, rec[b] / swp[b], allocpair(reca[b], swpa[b])
    }
    for (b in dpr) {
        if (!(b in dsq) || dpr[b] == 0) continue
        if (m++) printf ","
        printf "\n    {\"name\": \"%s\", \"speedup\": %.3f%s}", b, dsq[b] / dpr[b], allocpair(dsqa[b], dpra[b])
    }
    printf "\n  ],\n  \"disk_bytes\": ["
    m = 0
    for (b in fmtv3) {
        if (!(b in fmtv2) || fmtv2[b] == "null" || fmtv3[b] == "null" || fmtv2[b] == 0) continue
        if (m++) printf ","
        printf "\n    {\"name\": \"%s\", \"v2_bytes\": %s, \"v3_bytes\": %s, \"v3_over_v2\": %.3f}", \
            b, fmtv2[b], fmtv3[b], fmtv3[b] / fmtv2[b]
    }
    printf "\n  ],\n  \"allocs_reduction\": ["
    m = 0
    for (b in cura) {
        if (cura[b] == "null" || cura[b] == 0) continue
        if (m++) printf ","
        printf "\n    {\"name\": \"%s\", \"baseline_allocs\": %s, \"allocs_per_op\": %s, \"allocs_reduction\": %.2f", \
            b, basea[b], cura[b], basea[b] / cura[b]
        if (curb[b] != "null" && curb[b] != 0)
            printf ", \"baseline_bytes\": %s, \"bytes_per_op\": %s, \"bytes_reduction\": %.2f", \
                baseb[b], curb[b], baseb[b] / curb[b]
        printf "}"
    }
    printf "\n  ]\n}\n"
}' "$BASETMP" "$TMP" > "$OUT"

echo "wrote $OUT" >&2
