#!/bin/sh
# bench_serve.sh — run the cobra-serve HTTP throughput benchmarks and
# record the results as JSON in BENCH_serve.json, next to BENCH_core.json,
# so the repository tracks the daemon's serving performance PR over PR.
#
# Usage:
#   scripts/bench_serve.sh [output.json]
#
# Environment:
#   BENCH_SERVE_TIME  -benchtime value (default 2s)
#   BENCH_SERVE_MIN   minimum sustained EvalBatch req/s (default 1000);
#                     the script fails if the daemon serves fewer.
#
# On any benchmark failure — or a throughput below the floor — the script
# exits non-zero WITHOUT touching the output file.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_serve.json}
TIME=${BENCH_SERVE_TIME:-2s}
MIN=${BENCH_SERVE_MIN:-1000}

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

if ! go test -run='^$' -bench='^BenchmarkServe' -benchtime="$TIME" ./serve >"$TMP" 2>&1; then
    cat "$TMP" >&2
    echo "bench_serve.sh: benchmarks failed; leaving $OUT untouched" >&2
    exit 1
fi
if grep -q '^--- FAIL\|^FAIL' "$TMP"; then
    cat "$TMP" >&2
    echo "bench_serve.sh: benchmark output reports FAIL; leaving $OUT untouched" >&2
    exit 1
fi
cat "$TMP"

EVAL_RPS=$(awk '/^BenchmarkServeEvalBatch/ { for (i = 1; i <= NF; i++) if ($i == "req/s") print $(i-1) }' "$TMP")
if [ -z "$EVAL_RPS" ]; then
    echo "bench_serve.sh: no req/s metric in BenchmarkServeEvalBatch output" >&2
    exit 1
fi
if [ "$(printf '%.0f' "$EVAL_RPS")" -lt "$MIN" ]; then
    echo "bench_serve.sh: sustained EvalBatch throughput $EVAL_RPS req/s is below the $MIN req/s floor" >&2
    exit 1
fi

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go env GOVERSION)" \
    -v maxprocs="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" \
    -v floor="$MIN" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpus\": %d,\n  \"floor_req_per_s\": %d,\n  \"benchmarks\": [", date, goversion, maxprocs, floor
    n = 0
}
/^BenchmarkServe/ {
    name = $1; iters = $2; nsop = $3
    rps = "null"
    for (i = 4; i <= NF; i++) if ($i == "req/s") rps = $(i-1)
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"req_per_s\": %s}", \
        name, iters, nsop, rps
}
END { printf "\n  ]\n}\n" }' "$TMP" > "$OUT"

echo "wrote $OUT" >&2
