package cobra_test

import (
	"context"
	"errors"
	"testing"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
)

// telephonySet builds the small deterministic telephony workload the
// Dataset tests share.
func telephonySet(t *testing.T) (*cobra.Names, *cobra.Set, cobra.Forest) {
	t.Helper()
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 60}, names)
	return names, set, cobra.Forest{telephony.PlansTree(names)}
}

// telephonyDataset opens the workload as a Dataset; a positive
// maxResident selects the out-of-core representation.
func telephonyDataset(t *testing.T, maxResident int) (*cobra.Dataset, *cobra.Set, cobra.Forest) {
	t.Helper()
	names, set, trees := telephonySet(t)
	opts := cobra.Options{MaxResidentMonomials: maxResident, SpillDir: t.TempDir()}
	var src cobra.SetSource = set
	if maxResident > 0 {
		ss, err := cobra.ShardSet(set, opts)
		if err != nil {
			t.Fatal(err)
		}
		src = ss
	}
	ds, err := cobra.OpenDataset("tel", src, trees, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	_ = names
	return ds, set, trees
}

func telScenarios(t *testing.T, names *cobra.Names) []*cobra.Assignment {
	t.Helper()
	a1 := cobra.NewAssignment(names)
	if err := a1.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	a2 := cobra.NewAssignment(names)
	a3 := cobra.NewAssignment(names)
	if err := a3.Set("m1", 1.1); err != nil {
		t.Fatal(err)
	}
	if err := a3.Set("m3", 0.8); err != nil {
		t.Fatal(err)
	}
	return []*cobra.Assignment{a1, a2, a3}
}

func rowsEqual(t *testing.T, got, want [][]float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d entries, want %d", what, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d col %d = %v, want %v (must be bit-identical)", what, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestDatasetMatchesOneShotCalls(t *testing.T) {
	for _, tc := range []struct {
		name        string
		maxResident int
	}{
		{"in-memory", 0},
		{"out-of-core", 512},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds, set, trees := telephonyDataset(t, tc.maxResident)
			ctx := context.Background()
			bound := set.Size() / 2

			res, err := ds.Compress(ctx, bound)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cobra.CompressWith(set, trees, bound, cobra.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Size != want.Size || res.NumMeta != want.NumMeta || !res.Cuts[0].Equal(want.Cuts[0]) {
				t.Fatalf("Compress: got size=%d meta=%d cut=%v, want size=%d meta=%d cut=%v",
					res.Size, res.NumMeta, res.Cuts[0], want.Size, want.NumMeta, want.Cuts[0])
			}

			fr, err := ds.Frontier(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wantFr, err := cobra.Frontier(set, trees[0])
			if err != nil {
				t.Fatal(err)
			}
			if len(fr) != len(wantFr) {
				t.Fatalf("Frontier: %d points, want %d", len(fr), len(wantFr))
			}
			for i := range fr {
				if fr[i].NumMeta != wantFr[i].NumMeta || fr[i].MinSize != wantFr[i].MinSize || !fr[i].Cut.Equal(wantFr[i].Cut) {
					t.Fatalf("Frontier point %d: %+v want %+v", i, fr[i], wantFr[i])
				}
			}

			bounds := []int{-1, 0, bound, set.Size() * 2}
			answers, err := ds.Sweep(ctx, bounds)
			if err != nil {
				t.Fatal(err)
			}
			wantAns, err := cobra.FrontierSweep(set, trees, bounds, cobra.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range answers {
				g, w := answers[i], wantAns[i]
				if (g.Err == nil) != (w.Err == nil) {
					t.Fatalf("Sweep bound %d: err=%v want %v", g.Bound, g.Err, w.Err)
				}
				if g.Err != nil {
					if g.Err.Error() != w.Err.Error() {
						t.Fatalf("Sweep bound %d: err %q want %q", g.Bound, g.Err, w.Err)
					}
					continue
				}
				if g.Result.Size != w.Result.Size || g.Result.NumMeta != w.Result.NumMeta {
					t.Fatalf("Sweep bound %d: size=%d meta=%d, want size=%d meta=%d",
						g.Bound, g.Result.Size, g.Result.NumMeta, w.Result.Size, w.Result.NumMeta)
				}
			}

			asgs := telScenarios(t, ds.Names())
			rows, err := ds.EvalBatch(ctx, asgs)
			if err != nil {
				t.Fatal(err)
			}
			wantRows := cobra.EvalBatch(cobra.Compile(set), asgs, cobra.Options{})
			rowsEqual(t, rows, wantRows, "EvalBatch")

			derived, err := ds.Apply(ctx, res.Cuts...)
			if err != nil {
				t.Fatal(err)
			}
			defer derived.Close()
			if derived.Size() != res.Size {
				t.Fatalf("Apply: derived size %d, want %d", derived.Size(), res.Size)
			}
			induced := make([]*cobra.Assignment, len(asgs))
			for i, a := range asgs {
				induced[i] = cobra.Induced(a, res.Cuts...)
			}
			gotDerived, err := derived.EvalBatch(ctx, induced)
			if err != nil {
				t.Fatal(err)
			}
			applied := cobra.Apply(set, res.Cuts...)
			wantDerived := cobra.EvalBatch(cobra.Compile(applied), induced, cobra.Options{})
			rowsEqual(t, gotDerived, wantDerived, "derived EvalBatch")
		})
	}
}

func TestDatasetMemoizesAcrossWorkerViews(t *testing.T) {
	ds, set, _ := telephonyDataset(t, 0)
	ctx := context.Background()
	bound := set.Size() / 2

	r1, err := ds.Compress(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ds.WithWorkers(8).Compress(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("Compress result not memoized across WithWorkers views")
	}

	f1, err := ds.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ds.WithWorkers(2).Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) == 0 || &f1[0] != &f2[0] {
		t.Fatal("Frontier curve not memoized across WithWorkers views")
	}
}

func TestDatasetEvictionAnswersIdentically(t *testing.T) {
	ds, set, _ := telephonyDataset(t, 512)
	ctx := context.Background()
	asgs := telScenarios(t, ds.Names())

	before, err := ds.EvalBatch(ctx, asgs)
	if err != nil {
		t.Fatal(err)
	}
	frBefore, err := ds.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}

	evicted, err := ds.Evict()
	if err != nil {
		t.Fatal(err)
	}
	if !evicted {
		t.Fatal("Evict() = false for a resident out-of-core dataset")
	}
	if ds.Resident() {
		t.Fatal("dataset still resident after Evict")
	}
	if ds.Size() != set.Size() || ds.Len() != set.Len() {
		t.Fatal("cached stats lost on eviction")
	}

	// Answers after transparent re-open are bit-identical.
	after, err := ds.EvalBatch(ctx, asgs)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, after, before, "EvalBatch after eviction")
	if !ds.Resident() {
		t.Fatal("dataset did not reload on use")
	}

	// A fresh solve (not memoized) over the reloaded source matches the
	// in-memory answer too.
	if _, err := ds.Evict(); err != nil {
		t.Fatal(err)
	}
	bound := set.Size() / 3
	res, err := ds.Compress(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cobra.Compress(set, ds.Trees(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != want.Size || !res.Cuts[0].Equal(want.Cuts[0]) {
		t.Fatalf("Compress after eviction: size=%d cut=%v, want size=%d cut=%v",
			res.Size, res.Cuts[0], want.Size, want.Cuts[0])
	}

	// The memoized curve survived both evictions.
	frAfter, err := ds.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if &frBefore[0] != &frAfter[0] {
		t.Fatal("memoized frontier lost across eviction")
	}
}

func TestDatasetEvictInMemoryIsNoop(t *testing.T) {
	ds, _, _ := telephonyDataset(t, 0)
	evicted, err := ds.Evict()
	if err != nil {
		t.Fatal(err)
	}
	if evicted {
		t.Fatal("in-memory dataset reported evicted")
	}
	if !ds.Resident() {
		t.Fatal("in-memory dataset must stay resident")
	}
}

func TestDatasetContextCancellation(t *testing.T) {
	ds, set, _ := telephonyDataset(t, 512)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ds.EvalBatch(canceled, telScenarios(t, ds.Names())); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalBatch on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := ds.Compress(canceled, set.Size()/2); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compress on canceled ctx: err = %v, want context.Canceled", err)
	}

	// Cancellation is not memoized: the same calls succeed afterwards.
	ctx := context.Background()
	if _, err := ds.Compress(ctx, set.Size()/2); err != nil {
		t.Fatalf("Compress after cancellation: %v", err)
	}
	if _, err := ds.EvalBatch(ctx, telScenarios(t, ds.Names())); err != nil {
		t.Fatalf("EvalBatch after cancellation: %v", err)
	}
}

func TestDatasetClosedErrors(t *testing.T) {
	ds, _, _ := telephonyDataset(t, 0)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.EvalBatch(context.Background(), nil); err == nil {
		t.Fatal("EvalBatch on closed dataset did not fail")
	}
	if _, err := ds.Compress(context.Background(), 10); err == nil {
		t.Fatal("Compress on closed dataset did not fail")
	}
}

func TestCaptureDatasetMatchesCapture(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name        string
		maxResident int
	}{
		{"in-memory", 0},
		{"out-of-core", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			names := cobra.NewNames()
			cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
			if err != nil {
				t.Fatal(err)
			}
			trees := cobra.Forest{telephony.PlansTree(names)}
			opts := cobra.Options{MaxResidentMonomials: tc.maxResident, SpillDir: t.TempDir()}
			ds, err := cobra.CaptureDataset(ctx, "fig1", telephony.RevenueQuery, cat, names, "revenue", trees, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()
			if ds.OutOfCore() != (tc.maxResident > 0) {
				t.Fatalf("OutOfCore() = %v", ds.OutOfCore())
			}

			want, err := cobra.Capture(telephony.RevenueQuery, cat, names, "revenue")
			if err != nil {
				t.Fatal(err)
			}
			if ds.Size() != want.Size() || ds.Len() != want.Len() {
				t.Fatalf("captured stats: size=%d polys=%d, want size=%d polys=%d",
					ds.Size(), ds.Len(), want.Size(), want.Len())
			}
			asgs := telScenarios(t, names)
			rows, err := ds.EvalBatch(ctx, asgs)
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, rows, cobra.EvalBatch(cobra.Compile(want), asgs, cobra.Options{}), "captured EvalBatch")
		})
	}
}
