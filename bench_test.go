package cobra_test

// One benchmark per experiment in DESIGN.md's index (E1–E10, plus the
// E14 out-of-core, E15 streaming-capture and E16 frontier-sweep runs),
// plus micro-benchmarks for the ablations (compiled vs naive evaluation,
// DP vs greedy) and the paired sweep-vs-recompress comparison. The experiment benches run the same runners as cmd/cobra-bench
// at a benchmark-friendly scale; run cmd/cobra-bench -scale paper for the
// paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	cobra "github.com/cobra-prov/cobra"
	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/experiments"
	"github.com/cobra-prov/cobra/internal/polyio"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// benchConfig keeps experiment benches fast enough for -bench=. sweeps.
func benchConfig() experiments.Config {
	return experiments.Config{TelephonyCustomers: 50_000, TPCHSF: 0.002}.WithDefaults()
}

func runExperiment(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_RunningExampleProvenance(b *testing.B) {
	runExperiment(b, experiments.E1RunningExample)
}

func BenchmarkE2_ExampleCuts(b *testing.B) {
	runExperiment(b, experiments.E2ExampleCuts)
}

func BenchmarkE3_Section4Compression(b *testing.B) {
	runExperiment(b, experiments.E3Section4)
}

func BenchmarkE4_BoundSweep(b *testing.B) {
	runExperiment(b, experiments.E4BoundSweep)
}

func BenchmarkE5_AssignmentSpeedup(b *testing.B) {
	runExperiment(b, experiments.E5SpeedupSweep)
}

func BenchmarkE6_ScenarioAccuracy(b *testing.B) {
	runExperiment(b, experiments.E6ScenarioAccuracy)
}

func BenchmarkE7_AlgorithmScaling(b *testing.B) {
	cfg := benchConfig()
	cfg.Quick = true // the full scaling sweep reaches 1M customers
	cfg = cfg.WithDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7AlgorithmScaling(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_Ablation(b *testing.B) {
	runExperiment(b, experiments.E7Ablation)
}

func BenchmarkE8_TPCH(b *testing.B) {
	runExperiment(b, experiments.E8TPCH)
}

func BenchmarkE9_Commutation(b *testing.B) {
	cfg := benchConfig()
	cfg.Quick = true // re-execution materializes the join; keep it small
	cfg = cfg.WithDefaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9Commutation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_Pipeline(b *testing.B) {
	runExperiment(b, experiments.E10Pipeline)
}

func BenchmarkE14_OutOfCore(b *testing.B) {
	runExperiment(b, experiments.E14OutOfCore)
}

func BenchmarkE15_StreamingCapture(b *testing.B) {
	runExperiment(b, experiments.E15StreamingCapture)
}

func BenchmarkE16_FrontierSweep(b *testing.B) {
	runExperiment(b, experiments.E16FrontierSweep)
}

func BenchmarkE17_DiskFormat(b *testing.B) {
	runExperiment(b, experiments.E17DiskFormat)
}

// --- on-disk format pairs -------------------------------------------------
//
// BenchmarkDiskFormatWrite pairs v2 against compressed v3 on the same
// spill-heavy sharded set, reporting each format's stream size as a
// disk_bytes metric; scripts/bench.sh derives the v3/v2 byte ratio from
// the pair. BenchmarkIndexedDecode pairs a sequential pass over the v3
// footer index against the parallel random-access reader (mode= naming,
// like BoundSweep32's pair).

// benchShardedSource builds the spill-heavy sharded telephony set the
// disk-format pairs serialize.
func benchShardedSource(b *testing.B) *polynomial.ShardedSet {
	b.Helper()
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 50_000}, names)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: set.Size() / 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ss.Close() })
	return ss
}

// benchCountWriter counts bytes written through it.
type benchCountWriter struct{ n int64 }

func (c *benchCountWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func BenchmarkDiskFormatWrite(b *testing.B) {
	ss := benchShardedSource(b)
	cases := []struct {
		name  string
		write func(w io.Writer) error
	}{
		{"format=v2", func(w io.Writer) error { return polyio.WriteSetStream(w, ss) }},
		{"format=v3", func(w io.Writer) error {
			return polyio.WriteSetStreamV3(w, ss, polyio.V3Options{Compress: true})
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var bytes int64
			for i := 0; i < b.N; i++ {
				cw := &benchCountWriter{}
				if err := tc.write(cw); err != nil {
					b.Fatal(err)
				}
				bytes = cw.n
			}
			b.ReportMetric(float64(bytes), "disk_bytes")
		})
	}
}

func BenchmarkIndexedDecode(b *testing.B) {
	ss := benchShardedSource(b)
	path := filepath.Join(b.TempDir(), "set.v3")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := polyio.WriteSetStreamV3(f, ss, polyio.V3Options{Compress: true}); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	ix, err := polyio.OpenIndexedFile(path, ss.Names())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ix.Close() })
	want := ix.Size()
	decode := func(b *testing.B, pass func(func(i, firstPoly int, s *polynomial.Set) error) error) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mons := 0
			err := pass(func(_, _ int, s *polynomial.Set) error {
				mons += s.Size()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if mons != want {
				b.Fatalf("decoded %d monomials, want %d", mons, want)
			}
		}
	}
	b.Run("mode=sequential", func(b *testing.B) {
		decode(b, ix.ForEachShard)
	})
	b.Run("mode=parallel", func(b *testing.B) {
		w := workerSweep()[1]
		decode(b, func(fn func(i, firstPoly int, s *polynomial.Set) error) error {
			return ix.ForEachShardParallel(w, fn)
		})
	})
}

// --- micro-benchmarks for the DESIGN.md ablations ------------------------

// benchSet builds the telephony provenance at a fixed moderate scale.
func benchSet(b *testing.B) (*cobra.Set, *cobra.Tree) {
	b.Helper()
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 100_000}, names)
	return set, telephony.PlansTree(names)
}

func BenchmarkCompressDP(b *testing.B) {
	set, tree := benchSet(b)
	bound := set.Size() * 2 / 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DPSingleTree(set, tree, bound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressGreedy(b *testing.B) {
	set, tree := benchSet(b)
	bound := set.Size() * 2 / 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Greedy(set, tree, bound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyCut(b *testing.B) {
	set, tree := benchSet(b)
	res, err := core.DPSingleTree(set, tree, set.Size()/3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Apply(set)
	}
}

func BenchmarkEvalNaive(b *testing.B) {
	set, _ := benchSet(b)
	a := valuation.New(set.Names)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		valuation.EvalSet(set, a)
	}
}

func BenchmarkEvalCompiled(b *testing.B) {
	set, _ := benchSet(b)
	prog := valuation.Compile(set)
	vals := valuation.New(set.Names).Dense(set.Names.Len())
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = prog.Eval(vals, out)
	}
}

func BenchmarkEvalCompiledCompressed(b *testing.B) {
	set, tree := benchSet(b)
	res, err := core.DPSingleTree(set, tree, set.Size()*36/132) // the S1-like cut
	if err != nil {
		b.Fatal(err)
	}
	prog := valuation.Compile(res.Apply(set))
	vals := valuation.New(set.Names).Dense(set.Names.Len())
	var out []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = prog.Eval(vals, out)
	}
}

func BenchmarkPolynomialAdd(b *testing.B) {
	set, _ := benchSet(b)
	p, q := set.Polys[0], set.Polys[len(set.Polys)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cobra.AddPolynomials(p, q)
	}
}

func BenchmarkPolynomialMul(b *testing.B) {
	names := cobra.NewNames()
	p := cobra.MustParsePolynomial("1 + 2*a + 3*b + 4*a*b + 5*c^2 + 6*a*c + 7*b*c + 8*d", names)
	q := cobra.MustParsePolynomial("2 + 3*d + 5*e + 7*a*e + 11*b*d + 13*c*d*e", names)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cobra.MulPolynomials(p, q)
	}
}

func BenchmarkSensitivity(b *testing.B) {
	set, _ := benchSet(b)
	a := valuation.New(set.Names)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = valuation.Sensitivity(set, a)
	}
}

func BenchmarkEvalBatch100Scenarios(b *testing.B) {
	set, _ := benchSet(b)
	prog := valuation.Compile(set)
	var scenarios []*valuation.Assignment
	for s := 0; s < 100; s++ {
		a := valuation.New(set.Names)
		a.SetVar(cobra.Var(s%set.Names.Len()), 0.8)
		scenarios = append(scenarios, a)
	}
	var out [][]float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = prog.EvalBatch(scenarios, out)
	}
}

// --- parallel-vs-sequential pairs ----------------------------------------
//
// Each pair runs the same workload under workers=1 and workers=GOMAXPROCS;
// scripts/bench.sh derives the speedup numbers from the paired timings (or
// run cmd/cobra-bench -only E12 for a self-contained speedup table). The
// parallel engine guarantees bit-identical results, so the pairs measure
// pure scheduling gain.

// workerSweep is {sequential, saturated}; on a single-core runner the
// "parallel" leg still exercises the pool code with two goroutines.
func workerSweep() []int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	return []int{1, w}
}

func BenchmarkCompressDPWorkers(b *testing.B) {
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 500_000}, names)
	tree := telephony.PlansTree(names)
	bound := set.Size() / 2
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.DPSingleTreeN(set, tree, bound, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkForestDescentWorkers(b *testing.B) {
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 200_000}, names)
	forest := abstraction.Forest{telephony.PlansTree(names), telephony.MonthsTree(names, 12)}
	bound := set.Size() / 4
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ForestDescentN(set, forest, bound, 0, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkApplyCutWorkers(b *testing.B) {
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 500_000}, names)
	tree := telephony.PlansTree(names)
	res, err := core.DPSingleTree(set, tree, set.Size()/3)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				abstraction.ApplyN(set, w, res.Cuts...)
			}
		})
	}
}

func BenchmarkEvalBatchWorkers(b *testing.B) {
	set, _ := benchSet(b)
	prog := valuation.Compile(set)
	vars := set.UsedVars()
	scenarios := make([]*valuation.Assignment, 256)
	for s := range scenarios {
		a := valuation.New(set.Names)
		a.SetVar(vars[s%len(vars)], 0.8)
		scenarios[s] = a
	}
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var out [][]float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out = prog.EvalBatchN(scenarios, out, w)
			}
		})
	}
}

// benchInstrumentedCatalog builds the instrumented telephony catalog at a
// scale where the engine path (materialized join) stays benchmark-friendly.
func benchInstrumentedCatalog(b *testing.B) (cobra.Catalog, *cobra.Names) {
	b.Helper()
	names := cobra.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: 5_000}), names)
	if err != nil {
		b.Fatal(err)
	}
	return cat, names
}

func BenchmarkSQLRunWorkers(b *testing.B) {
	cat, _ := benchInstrumentedCatalog(b)
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cobra.RunSQLWith(telephony.RevenueQuery, cat, cobra.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCaptureWorkers(b *testing.B) {
	cat, names := benchInstrumentedCatalog(b)
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cobra.CaptureWith(telephony.RevenueQuery, cat, names, "revenue", cobra.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestWorkerAllocParity guards the per-worker arena work: running any of
// the paired workloads with workers=2 may not allocate more than a small
// overhead above workers=1 (pool bookkeeping — goroutines and per-worker
// scratch — is O(workers), far below the per-item work). The regressions
// this assertion pins down were 10× on CompressDP and +20% on
// ForestDescent before the sharded signature scan interned keys through
// elided map reads and forest descent dropped its speculative round.
func TestWorkerAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc-parity sweep is not -short friendly")
	}
	names := cobra.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 100_000}, names)
	tree := telephony.PlansTree(names)
	bound := set.Size() / 2
	forest := abstraction.Forest{telephony.PlansTree(names), telephony.MonthsTree(names, 12)}
	fbound := set.Size() / 4
	cat, catNames := benchWorkerCatalog(t)

	cases := []struct {
		name string
		run  func(workers int) error
	}{
		{"CompressDP", func(w int) error {
			_, err := core.DPSingleTreeN(set, tree, bound, w)
			return err
		}},
		{"ForestDescent", func(w int) error {
			_, err := core.ForestDescentN(set, forest, fbound, 0, w)
			return err
		}},
		{"ApplyCut", func(w int) error {
			res, err := core.DPSingleTreeN(set, tree, bound, 1)
			if err == nil {
				abstraction.ApplyN(set, w, res.Cuts...)
			}
			return err
		}},
		{"SQLRun", func(w int) error {
			_, err := cobra.RunSQLWith(telephony.RevenueQuery, cat, cobra.Options{Workers: w})
			return err
		}},
		{"Capture", func(w int) error {
			_, err := cobra.CaptureWith(telephony.RevenueQuery, cat, catNames, "revenue", cobra.Options{Workers: w})
			return err
		}},
	}
	for _, tc := range cases {
		var runErr error
		measure := func(w int) float64 {
			return testing.AllocsPerRun(2, func() {
				if err := tc.run(w); err != nil && runErr == nil {
					runErr = err
				}
			})
		}
		w1 := measure(1)
		w2 := measure(2)
		if runErr != nil {
			t.Fatalf("%s: %v", tc.name, runErr)
		}
		if w2 > w1*1.05+128 {
			t.Errorf("%s: workers=2 allocates %.0f/op vs %.0f/op at workers=1", tc.name, w2, w1)
		}
	}
}

// benchWorkerCatalog is benchInstrumentedCatalog for tests.
func benchWorkerCatalog(t *testing.T) (cobra.Catalog, *cobra.Names) {
	t.Helper()
	names := cobra.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: 5_000}), names)
	if err != nil {
		t.Fatal(err)
	}
	return cat, names
}

func BenchmarkFrontier(b *testing.B) {
	set, tree := benchSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Frontier(set, tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundSweep32 pairs one 32-bound FrontierSweep against 32
// independent per-bound recompressions of the same workload;
// scripts/bench.sh derives the one-sweep-vs-N-recompressions speedup from
// the paired mode= timings, the way it derives worker speedups from the
// workers= pairs.
func BenchmarkBoundSweep32(b *testing.B) {
	set, tree := benchSet(b)
	bounds := experiments.SweepBounds(set.Size(), experiments.SweepBoundCount)
	b.Run("mode=recompress", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bound := range bounds {
				if _, err := core.DPSingleTree(set, tree, bound); err != nil && !errors.Is(err, core.ErrInfeasible) {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("mode=sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.FrontierSweep(set, abstraction.Forest{tree}, bounds, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
