package abstraction

import (
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

func TestRefineAndCoarsenRoundTrip(t *testing.T) {
	tr := figure2Tree(t)
	s1, err := tr.CutOf("Business", "Special", "Standard")
	if err != nil {
		t.Fatal(err)
	}

	refined, err := s1.Refine(tr.ByName("Business"))
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Validate(); err != nil {
		t.Fatal(err)
	}
	if refined.NumVars() != 4 { // Business -> SB, e
		t.Fatalf("refined vars = %d", refined.NumVars())
	}

	back, err := refined.Coarsen(tr.ByName("Business"))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s1) {
		t.Fatalf("coarsen(refine(c)) = %s, want %s", back, s1)
	}
}

func TestRefineErrors(t *testing.T) {
	tr := figure2Tree(t)
	s1, _ := tr.CutOf("Business", "Special", "Standard")
	if _, err := s1.Refine(tr.ByName("SB")); err == nil {
		t.Fatal("refining a node not in the cut should fail")
	}
	leafCut := tr.LeafCut()
	if _, err := leafCut.Refine(tr.ByName("p1")); err == nil {
		t.Fatal("refining a leaf should fail")
	}
	if _, err := (Cut{}).Refine(0); err == nil {
		t.Fatal("cut without tree should fail")
	}
}

func TestCoarsenErrors(t *testing.T) {
	tr := figure2Tree(t)
	s1, _ := tr.CutOf("Business", "Special", "Standard")
	if _, err := s1.Coarsen(tr.ByName("Business")); err == nil {
		t.Fatal("coarsening a node already in the cut should fail")
	}
	if _, err := s1.Coarsen(tr.ByName("SB")); err == nil {
		t.Fatal("coarsening below the cut should fail")
	}
	root, _ := tr.CutOf("Plans")
	if _, err := root.Coarsen(tr.ByName("Business")); err == nil {
		t.Fatal("coarsening below the root cut should fail")
	}
	if _, err := (Cut{}).Coarsen(0); err == nil {
		t.Fatal("cut without tree should fail")
	}
}

func TestCoarsenToRoot(t *testing.T) {
	tr := figure2Tree(t)
	leaf := tr.LeafCut()
	root, err := leaf.Coarsen(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if root.NumVars() != 1 || root.Nodes[0] != tr.Root() {
		t.Fatalf("coarsen to root: %s", root)
	}
}

func TestRandomWalkStaysValid(t *testing.T) {
	// Random refine/coarsen walks must always yield valid cuts.
	tr := figure2Tree(t)
	r := rand.New(rand.NewSource(101))
	cut := tr.RootCut()
	for step := 0; step < 300; step++ {
		if r.Intn(2) == 0 {
			// Try refining a random cut node.
			id := cut.Nodes[r.Intn(len(cut.Nodes))]
			if next, err := cut.Refine(id); err == nil {
				cut = next
			}
		} else {
			// Try coarsening a random inner node.
			id := NodeID(r.Intn(tr.Len()))
			if next, err := cut.Coarsen(id); err == nil {
				cut = next
			}
		}
		if err := cut.Validate(); err != nil {
			t.Fatalf("step %d: invalid cut %s: %v", step, cut, err)
		}
	}
}

func TestNavigateSizeMonotone(t *testing.T) {
	// Refining never shrinks the compressed size; coarsening never grows it.
	tr := figure2Tree(t)
	names := tr.Names
	set := polynomial.NewSet(names)
	set.Add("10001", polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names))

	cut, _ := tr.CutOf("Business", "Special", "Standard")
	sizeBefore := Apply(set, cut).Size()
	refined, err := cut.Refine(tr.ByName("Special"))
	if err != nil {
		t.Fatal(err)
	}
	if got := Apply(set, refined).Size(); got < sizeBefore {
		t.Fatalf("refining shrank the size: %d -> %d", sizeBefore, got)
	}
	coarse, err := cut.Coarsen(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if got := Apply(set, coarse).Size(); got > sizeBefore {
		t.Fatalf("coarsening grew the size: %d -> %d", sizeBefore, got)
	}
}
