// Package abstraction implements abstraction trees: ontology-like trees over
// provenance variables that guide and restrict variable grouping (§2 of the
// paper). Leaves are provenance variables; inner nodes are candidate
// meta-variables. An abstraction is a cut in the tree — an antichain
// separating the root from all leaves: every leaf below a chosen node is
// replaced by that node's meta-variable.
package abstraction

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// NodeID identifies a node within its Tree. The root is always node 0.
type NodeID int32

// NoNode is the sentinel "no node" value.
const NoNode NodeID = -1

// Node is a single abstraction-tree node. A node with no children is a leaf
// and corresponds to a provenance variable; an inner node corresponds to the
// meta-variable that replaces its descendant leaves when it is chosen in a
// cut.
type Node struct {
	ID       NodeID
	Name     string
	Var      polynomial.Var // interned in the tree's namespace
	Parent   NodeID         // NoNode for the root
	Children []NodeID
}

// Tree is an abstraction tree over variables interned in Names. Construct
// with NewTree and AddChild/AddPath; the tree is usable at any point (a node
// is a leaf exactly while it has no children).
type Tree struct {
	// Names is the variable namespace shared with the provenance
	// polynomials the tree abstracts.
	Names *polynomial.Names

	nodes  []Node
	byName map[string]NodeID
}

// NewTree creates a tree with a single root node named rootName, interning
// node names as variables in names.
func NewTree(rootName string, names *polynomial.Names) *Tree {
	t := &Tree{Names: names, byName: make(map[string]NodeID)}
	t.nodes = append(t.nodes, Node{ID: 0, Name: rootName, Var: names.Var(rootName), Parent: NoNode})
	t.byName[rootName] = 0
	return t
}

// Root returns the root node id (always 0).
func (t *Tree) Root() NodeID { return 0 }

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns the node with the given id.
func (t *Tree) Node(id NodeID) *Node { return &t.nodes[id] }

// ByName returns the node named name, or NoNode.
func (t *Tree) ByName(name string) NodeID {
	if id, ok := t.byName[name]; ok {
		return id
	}
	return NoNode
}

// AddChild adds a child named name under parent and returns its id.
// Node names must be unique within the tree.
func (t *Tree) AddChild(parent NodeID, name string) (NodeID, error) {
	if parent < 0 || int(parent) >= len(t.nodes) {
		return NoNode, fmt.Errorf("abstraction: parent node %d does not exist", parent)
	}
	if _, dup := t.byName[name]; dup {
		return NoNode, fmt.Errorf("abstraction: duplicate node name %q", name)
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Name: name, Var: t.Names.Var(name), Parent: parent})
	t.nodes[parent].Children = append(t.nodes[parent].Children, id)
	t.byName[name] = id
	return id, nil
}

// MustAddChild is AddChild that panics on error; for static tree literals.
func (t *Tree) MustAddChild(parent NodeID, name string) NodeID {
	id, err := t.AddChild(parent, name)
	if err != nil {
		panic(err)
	}
	return id
}

// AddPath ensures the chain root→path[0]→…→path[n-1] exists, creating
// missing nodes, and returns the final node. Existing nodes are reused, but
// it is an error if an existing node on the path has a different parent than
// the path implies.
func (t *Tree) AddPath(path ...string) (NodeID, error) {
	cur := t.Root()
	for _, name := range path {
		if id, ok := t.byName[name]; ok {
			if t.nodes[id].Parent != cur {
				return NoNode, fmt.Errorf("abstraction: node %q already exists under %q, not %q",
					name, t.nameOf(t.nodes[id].Parent), t.nodes[cur].Name)
			}
			cur = id
			continue
		}
		id, err := t.AddChild(cur, name)
		if err != nil {
			return NoNode, err
		}
		cur = id
	}
	return cur, nil
}

func (t *Tree) nameOf(id NodeID) string {
	if id == NoNode {
		return "<none>"
	}
	return t.nodes[id].Name
}

// FromPaths builds a tree from root-to-leaf paths (each path excludes the
// root name). Intermediate nodes are shared by name.
func FromPaths(rootName string, names *polynomial.Names, paths ...[]string) (*Tree, error) {
	t := NewTree(rootName, names)
	for _, p := range paths {
		if _, err := t.AddPath(p...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// IsLeaf reports whether id currently has no children.
func (t *Tree) IsLeaf(id NodeID) bool { return len(t.nodes[id].Children) == 0 }

// Leaves returns all leaf ids in depth-first order.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	t.Walk(func(n *Node) bool {
		if len(n.Children) == 0 {
			out = append(out, n.ID)
		}
		return true
	})
	return out
}

// LeafVars returns the variables bound to the leaves, in depth-first order.
func (t *Tree) LeafVars() []polynomial.Var {
	ls := t.Leaves()
	vs := make([]polynomial.Var, len(ls))
	for i, id := range ls {
		vs[i] = t.nodes[id].Var
	}
	return vs
}

// LeavesUnder returns the leaf ids in the subtree rooted at id, depth-first.
func (t *Tree) LeavesUnder(id NodeID) []NodeID {
	var out []NodeID
	var rec func(NodeID)
	rec = func(v NodeID) {
		if len(t.nodes[v].Children) == 0 {
			out = append(out, v)
			return
		}
		for _, c := range t.nodes[v].Children {
			rec(c)
		}
	}
	rec(id)
	return out
}

// Walk visits nodes in preorder; the visitor returns false to prune the
// subtree below the visited node.
func (t *Tree) Walk(visit func(n *Node) bool) {
	var rec func(NodeID)
	rec = func(id NodeID) {
		n := &t.nodes[id]
		if !visit(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root())
}

// Postorder returns all node ids so that children precede parents.
func (t *Tree) Postorder() []NodeID {
	out := make([]NodeID, 0, len(t.nodes))
	var rec func(NodeID)
	rec = func(id NodeID) {
		for _, c := range t.nodes[id].Children {
			rec(c)
		}
		out = append(out, id)
	}
	rec(t.Root())
	return out
}

// Depth returns the number of edges from the root to id.
func (t *Tree) Depth(id NodeID) int {
	d := 0
	for t.nodes[id].Parent != NoNode {
		id = t.nodes[id].Parent
		d++
	}
	return d
}

// IsAncestorOrSelf reports whether a is an ancestor of b or a == b.
func (t *Tree) IsAncestorOrSelf(a, b NodeID) bool {
	for b != NoNode {
		if a == b {
			return true
		}
		b = t.nodes[b].Parent
	}
	return false
}

// LeafByVar returns the leaf bound to v, or NoNode. Inner nodes are not
// considered even though they also own a Var.
func (t *Tree) LeafByVar(v polynomial.Var) NodeID {
	for i := range t.nodes {
		if t.nodes[i].Var == v && len(t.nodes[i].Children) == 0 {
			return t.nodes[i].ID
		}
	}
	return NoNode
}

// LeafVarSet returns a lookup from leaf Var to leaf NodeID.
func (t *Tree) LeafVarSet() map[polynomial.Var]NodeID {
	m := make(map[polynomial.Var]NodeID)
	for _, id := range t.Leaves() {
		m[t.nodes[id].Var] = id
	}
	return m
}

// String renders the tree with indentation, e.g. for "look under the hood"
// output in the demo CLI.
func (t *Tree) String() string {
	var sb strings.Builder
	var rec func(NodeID, int)
	rec = func(id NodeID, depth int) {
		n := &t.nodes[id]
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Name)
		sb.WriteString("\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root(), 0)
	return sb.String()
}

// Validate checks structural invariants (acyclic parent links, children
// consistency, unique names). Trees built through the API always validate;
// this guards trees decoded from external input.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("abstraction: empty tree")
	}
	seen := make(map[string]bool, len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("abstraction: node %d has inconsistent id %d", i, n.ID)
		}
		if seen[n.Name] {
			return fmt.Errorf("abstraction: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if i == 0 {
			if n.Parent != NoNode {
				return fmt.Errorf("abstraction: root has parent %d", n.Parent)
			}
		} else {
			if n.Parent < 0 || int(n.Parent) >= len(t.nodes) || n.Parent == n.ID {
				return fmt.Errorf("abstraction: node %q has invalid parent %d", n.Name, n.Parent)
			}
			found := false
			for _, c := range t.nodes[n.Parent].Children {
				if c == n.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("abstraction: node %q missing from its parent's children", n.Name)
			}
		}
	}
	// Reachability: every node must be reachable from the root.
	reached := 0
	t.Walk(func(*Node) bool { reached++; return true })
	if reached != len(t.nodes) {
		return fmt.Errorf("abstraction: %d of %d nodes unreachable from root", len(t.nodes)-reached, len(t.nodes))
	}
	return nil
}

// Forest is an ordered list of abstraction trees over disjoint leaf
// variables (one tree per "dimension" of the instrumentation, e.g. plans and
// months in the running example).
type Forest []*Tree

// Validate checks each tree and the pairwise disjointness of leaf variables.
func (f Forest) Validate() error {
	seen := make(map[polynomial.Var]int)
	for i, t := range f {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		for _, v := range t.LeafVars() {
			if j, dup := seen[v]; dup {
				return fmt.Errorf("abstraction: leaf variable %q appears in trees %d and %d",
					t.Names.Name(v), j, i)
			}
			seen[v] = i
		}
	}
	return nil
}

// ForestLeaf locates a leaf within a forest: the index of the owning tree
// and the leaf's node id in that tree.
type ForestLeaf struct {
	Tree int
	Node NodeID
}

// LeafOwners returns a lookup from leaf variable to its owning tree and
// leaf node. A validated forest has pairwise-disjoint leaf variables, so
// the lookup is unambiguous; on an invalid forest the last tree wins.
func (f Forest) LeafOwners() map[polynomial.Var]ForestLeaf {
	m := make(map[polynomial.Var]ForestLeaf)
	for i, t := range f {
		for _, id := range t.Leaves() {
			m[t.Node(id).Var] = ForestLeaf{Tree: i, Node: id}
		}
	}
	return m
}

// SortedNodeNames returns all node names in lexicographic order (testing
// helper and deterministic display).
func (t *Tree) SortedNodeNames() []string {
	out := make([]string, len(t.nodes))
	for i := range t.nodes {
		out[i] = t.nodes[i].Name
	}
	sort.Strings(out)
	return out
}
