package abstraction

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Cut is an abstraction: an antichain of tree nodes separating the root from
// all leaves. Every leaf is covered by exactly one cut node (an ancestor or
// the leaf itself); all leaves below a cut node are replaced by that node's
// meta-variable.
type Cut struct {
	Tree  *Tree
	Nodes []NodeID // sorted, unique
}

// NewCut builds a cut from node ids and validates it.
func NewCut(t *Tree, nodes ...NodeID) (Cut, error) {
	c := Cut{Tree: t, Nodes: append([]NodeID(nil), nodes...)}
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i] < c.Nodes[j] })
	if err := c.Validate(); err != nil {
		return Cut{}, err
	}
	return c, nil
}

// CutOf builds a cut from node names, e.g. the paper's
// S1 = {Business, Special, Standard}.
func (t *Tree) CutOf(names ...string) (Cut, error) {
	ids := make([]NodeID, 0, len(names))
	for _, n := range names {
		id := t.ByName(n)
		if id == NoNode {
			return Cut{}, fmt.Errorf("abstraction: no node named %q in tree %q", n, t.Node(t.Root()).Name)
		}
		ids = append(ids, id)
	}
	return NewCut(t, ids...)
}

// LeafCut returns the finest abstraction: every leaf is its own cut node
// (the identity — no compression, maximal degrees of freedom).
func (t *Tree) LeafCut() Cut {
	c := Cut{Tree: t, Nodes: t.Leaves()}
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i] < c.Nodes[j] })
	return c
}

// RootCut returns the coarsest abstraction: a single meta-variable for the
// whole tree (the paper's S5 = {Plans}).
func (t *Tree) RootCut() Cut {
	return Cut{Tree: t, Nodes: []NodeID{t.Root()}}
}

// Validate checks that the nodes form an antichain covering every leaf.
func (c Cut) Validate() error {
	if c.Tree == nil {
		return fmt.Errorf("abstraction: cut has no tree")
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("abstraction: empty cut")
	}
	inCut := make(map[NodeID]bool, len(c.Nodes))
	for i, id := range c.Nodes {
		if id < 0 || int(id) >= c.Tree.Len() {
			return fmt.Errorf("abstraction: cut node %d does not exist", id)
		}
		if i > 0 && c.Nodes[i-1] == id {
			return fmt.Errorf("abstraction: duplicate cut node %q", c.Tree.Node(id).Name)
		}
		inCut[id] = true
	}
	// Antichain: no cut node may be a strict ancestor of another.
	for _, id := range c.Nodes {
		for p := c.Tree.Node(id).Parent; p != NoNode; p = c.Tree.Node(p).Parent {
			if inCut[p] {
				return fmt.Errorf("abstraction: cut nodes %q and %q are related (not an antichain)",
					c.Tree.Node(p).Name, c.Tree.Node(id).Name)
			}
		}
	}
	// Coverage: every leaf must have an ancestor-or-self in the cut.
	for _, leaf := range c.Tree.Leaves() {
		covered := false
		for v := leaf; v != NoNode; v = c.Tree.Node(v).Parent {
			if inCut[v] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("abstraction: leaf %q not covered by the cut", c.Tree.Node(leaf).Name)
		}
	}
	return nil
}

// NumVars returns the number of meta-variables the cut defines — the
// expressiveness measure maximized by the optimization problem.
func (c Cut) NumVars() int { return len(c.Nodes) }

// IsIdentity reports whether the cut is the leaf cut (no grouping at all).
func (c Cut) IsIdentity() bool {
	for _, id := range c.Nodes {
		if !c.Tree.IsLeaf(id) {
			return false
		}
	}
	return true
}

// CoverOf returns the cut node covering the given leaf, or NoNode.
func (c Cut) CoverOf(leaf NodeID) NodeID {
	inCut := make(map[NodeID]bool, len(c.Nodes))
	for _, id := range c.Nodes {
		inCut[id] = true
	}
	for v := leaf; v != NoNode; v = c.Tree.Node(v).Parent {
		if inCut[v] {
			return v
		}
	}
	return NoNode
}

// VarMapping returns the substitution induced by the cut: every leaf
// variable maps to the meta-variable of its covering cut node. Variables not
// in the tree are absent (identity).
func (c Cut) VarMapping() map[polynomial.Var]polynomial.Var {
	m := make(map[polynomial.Var]polynomial.Var)
	inCut := make(map[NodeID]bool, len(c.Nodes))
	for _, id := range c.Nodes {
		inCut[id] = true
	}
	for _, leaf := range c.Tree.Leaves() {
		for v := leaf; v != NoNode; v = c.Tree.Node(v).Parent {
			if inCut[v] {
				m[c.Tree.Node(leaf).Var] = c.Tree.Node(v).Var
				break
			}
		}
	}
	return m
}

// GroupedLeaves returns, per cut node (in Nodes order), the leaf variables
// it abstracts — what the demo UI shows on the meta-variable assignment
// screen (Figure 5).
func (c Cut) GroupedLeaves() [][]polynomial.Var {
	out := make([][]polynomial.Var, len(c.Nodes))
	for i, id := range c.Nodes {
		for _, leaf := range c.Tree.LeavesUnder(id) {
			out[i] = append(out[i], c.Tree.Node(leaf).Var)
		}
	}
	return out
}

// Names returns the cut node names in Nodes order.
func (c Cut) Names() []string {
	out := make([]string, len(c.Nodes))
	for i, id := range c.Nodes {
		out[i] = c.Tree.Node(id).Name
	}
	return out
}

// String renders the cut like the paper: "{Business, Special, Standard}".
func (c Cut) String() string {
	return "{" + strings.Join(c.Names(), ", ") + "}"
}

// Equal reports whether two cuts over the same tree pick the same nodes.
func (c Cut) Equal(o Cut) bool {
	if c.Tree != o.Tree || len(c.Nodes) != len(o.Nodes) {
		return false
	}
	for i := range c.Nodes {
		if c.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	return true
}

// Apply applies one or more cuts (over disjoint trees) to a polynomial set,
// returning the compressed set.
func Apply(s *polynomial.Set, cuts ...Cut) *polynomial.Set {
	return ApplyN(s, 1, cuts...)
}

// ApplyN is Apply distributed over up to workers goroutines, sharding the
// variable remapping across polynomials (and, for sets dominated by a few
// large polynomials, across monomial ranges within them). The compressed set
// is bit-identical to Apply's for every worker count; workers <= 1 runs the
// sequential path.
func ApplyN(s *polynomial.Set, workers int, cuts ...Cut) *polynomial.Set {
	return s.MapVarsN(cutMapping(cuts), workers)
}

// cutMapping combines the cuts' substitutions into one remap function.
func cutMapping(cuts []Cut) func(polynomial.Var) polynomial.Var {
	mapping := make(map[polynomial.Var]polynomial.Var)
	for _, c := range cuts {
		//cobra:deterministic map-to-map merge over disjoint keys; visit order cannot reach the result
		for from, to := range c.VarMapping() {
			mapping[from] = to
		}
	}
	return func(v polynomial.Var) polynomial.Var {
		if to, ok := mapping[v]; ok {
			return to
		}
		return v
	}
}

// ApplySource is the one streaming implementation behind every cut
// application: it remaps src shard-at-a-time (each shard through the exact
// MapVarsN code, parallel within the shard) and feeds the compressed
// polynomials to sink in shard order. Whatever the source and sink —
// in-memory Set to Set, spilling ShardedSet to ShardBuilder, or any mix —
// the emitted polynomials are bit-identical for every worker count.
func ApplySource(src polynomial.SetSource, sink polynomial.SetSink, workers int, cuts ...Cut) error {
	f := cutMapping(cuts)
	return polynomial.ForEachShardN(src, workers, func(_, _ int, shard *polynomial.Set) error {
		mapped := shard.MapVarsN(f, workers)
		for i, key := range mapped.Keys {
			if err := sink.Add(key, mapped.Polys[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// EnumerateCuts yields every cut of the tree in a deterministic order,
// stopping early if yield returns false. The number of cuts can be
// exponential in the tree size; this is intended as a testing oracle and for
// the "look under the hood" demo mode on small trees.
func (t *Tree) EnumerateCuts(yield func(Cut) bool) {
	// cutsBelow(v) returns all antichains covering the leaves of v's subtree.
	var cutsBelow func(v NodeID) [][]NodeID
	cutsBelow = func(v NodeID) [][]NodeID {
		out := [][]NodeID{{v}}
		n := t.Node(v)
		if len(n.Children) == 0 {
			return out
		}
		// Cross product of children's cuts.
		combos := [][]NodeID{nil}
		for _, c := range n.Children {
			var next [][]NodeID
			for _, prefix := range combos {
				for _, cc := range cutsBelow(c) {
					merged := make([]NodeID, 0, len(prefix)+len(cc))
					merged = append(merged, prefix...)
					merged = append(merged, cc...)
					next = append(next, merged)
				}
			}
			combos = next
		}
		return append(out, combos...)
	}
	for _, nodes := range cutsBelow(t.Root()) {
		sorted := append([]NodeID(nil), nodes...)
		//cobra:hotalloc one sort closure per emitted cut; enumeration is oracle setup, not the solve path
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if !yield(Cut{Tree: t, Nodes: sorted}) {
			return
		}
	}
}

// CountCuts returns the number of distinct cuts of the tree, which the demo
// cites may be exponential ("there may still be exponentially many cuts").
func (t *Tree) CountCuts() int {
	var rec func(v NodeID) int
	rec = func(v NodeID) int {
		n := t.Node(v)
		if len(n.Children) == 0 {
			return 1
		}
		prod := 1
		for _, c := range n.Children {
			prod *= rec(c)
		}
		return 1 + prod
	}
	return rec(t.Root())
}
