package abstraction

import (
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// ApplySharded applies one or more cuts (over disjoint trees) to a sharded
// set shard-at-a-time, producing a new ShardedSet under the same options
// (so the compressed set spills past the same memory budget). Each
// polynomial is remapped by the exact sequential MapVars code — sharding
// and workers affect only scheduling — so materializing the result yields
// exactly Apply of the materialized input, for every worker count.
func ApplySharded(s *polynomial.ShardedSet, workers int, cuts ...Cut) (*polynomial.ShardedSet, error) {
	mapping := make(map[polynomial.Var]polynomial.Var)
	for _, c := range cuts {
		for from, to := range c.VarMapping() {
			mapping[from] = to
		}
	}
	f := func(v polynomial.Var) polynomial.Var {
		if to, ok := mapping[v]; ok {
			return to
		}
		return v
	}
	b := polynomial.NewShardBuilder(s.Names(), s.Options())
	defer b.Discard() // release partial spill files on any error path
	err := s.ForEachShard(func(_, _ int, shard *polynomial.Set) error {
		return b.AddSet(shard.MapVarsN(f, workers))
	})
	if err != nil {
		return nil, err
	}
	return b.Finish()
}
