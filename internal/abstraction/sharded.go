package abstraction

import (
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// ApplySharded applies one or more cuts (over disjoint trees) to a sharded
// set shard-at-a-time, producing a new ShardedSet under the same options
// (so the compressed set spills past the same memory budget). It is a thin
// entry point over ApplySource — the single streaming implementation — so
// materializing the result yields exactly Apply of the materialized input,
// for every worker count.
func ApplySharded(s *polynomial.ShardedSet, workers int, cuts ...Cut) (*polynomial.ShardedSet, error) {
	b := polynomial.NewShardBuilder(s.Names(), s.Options())
	defer b.Discard() // release partial spill files on any error path
	if err := ApplySource(s, b, workers, cuts...); err != nil {
		return nil, err
	}
	return b.Finish()
}
