package abstraction

import (
	"encoding/json"
	"fmt"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// treeJSON is the nested wire form of a tree node:
//
//	{"name": "Plans", "children": [{"name": "Standard", "children": [...]}, ...]}
//
// Leaves have no (or an empty) children array.
type treeJSON struct {
	Name     string     `json:"name"`
	Children []treeJSON `json:"children,omitempty"`
}

// MarshalJSON encodes the tree in the nested wire form.
func (t *Tree) MarshalJSON() ([]byte, error) {
	var build func(id NodeID) treeJSON
	build = func(id NodeID) treeJSON {
		n := t.Node(id)
		out := treeJSON{Name: n.Name}
		for _, c := range n.Children {
			out.Children = append(out.Children, build(c))
		}
		return out
	}
	return json.Marshal(build(t.Root()))
}

// TreeFromJSON decodes a tree from the nested wire form, interning node
// names into names, and validates it.
func TreeFromJSON(data []byte, names *polynomial.Names) (*Tree, error) {
	var root treeJSON
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("abstraction: decoding tree: %w", err)
	}
	if root.Name == "" {
		return nil, fmt.Errorf("abstraction: tree root has no name")
	}
	t := NewTree(root.Name, names)
	var build func(parent NodeID, children []treeJSON) error
	build = func(parent NodeID, children []treeJSON) error {
		for _, c := range children {
			if c.Name == "" {
				return fmt.Errorf("abstraction: node under %q has no name", t.Node(parent).Name)
			}
			id, err := t.AddChild(parent, c.Name)
			if err != nil {
				return err
			}
			if err := build(id, c.Children); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(t.Root(), root.Children); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
