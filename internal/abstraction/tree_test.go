package abstraction

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// figure2Tree builds the paper's Figure 2 tree over the plans variables.
func figure2Tree(t *testing.T) *Tree {
	t.Helper()
	names := polynomial.NewNames()
	tr, err := FromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Standard", "p2"},
		[]string{"Special", "Y", "y1"},
		[]string{"Special", "Y", "y2"},
		[]string{"Special", "Y", "y3"},
		[]string{"Special", "F", "f1"},
		[]string{"Special", "F", "f2"},
		[]string{"Special", "v"},
		[]string{"Business", "SB", "b1"},
		[]string{"Business", "SB", "b2"},
		[]string{"Business", "e"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFigure2TreeShape(t *testing.T) {
	tr := figure2Tree(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 11 {
		t.Fatalf("leaves = %d, want 11 (p1,p2,y1..y3,f1,f2,v,b1,b2,e)", got)
	}
	// 18 nodes: root + Standard,Special,Business + Y,F,SB + 11 leaves.
	if tr.Len() != 18 {
		t.Fatalf("nodes = %d, want 18", tr.Len())
	}
	if tr.Depth(tr.ByName("y1")) != 3 {
		t.Fatalf("depth(y1) = %d, want 3", tr.Depth(tr.ByName("y1")))
	}
	if !tr.IsAncestorOrSelf(tr.ByName("Special"), tr.ByName("y2")) {
		t.Fatal("Special should be an ancestor of y2")
	}
	if tr.IsAncestorOrSelf(tr.ByName("Business"), tr.ByName("y2")) {
		t.Fatal("Business should not be an ancestor of y2")
	}
}

func TestPaperCutsValidate(t *testing.T) {
	tr := figure2Tree(t)
	// The five cuts from Example 4.
	for _, names := range [][]string{
		{"Business", "Special", "Standard"},           // S1
		{"SB", "e", "f1", "f2", "Y", "v", "Standard"}, // S2
		{"b1", "b2", "e", "Special", "Standard"},      // S3
		{"SB", "e", "F", "Y", "v", "p1", "p2"},        // S4
		{"Plans"},                                     // S5
	} {
		c, err := tr.CutOf(names...)
		if err != nil {
			t.Errorf("cut %v invalid: %v", names, err)
			continue
		}
		if c.NumVars() != len(names) {
			t.Errorf("cut %v NumVars = %d", names, c.NumVars())
		}
	}
}

func TestInvalidCuts(t *testing.T) {
	tr := figure2Tree(t)
	cases := [][]string{
		{"Business", "Special"},                  // p1, p2 uncovered
		{"Plans", "Standard"},                    // not an antichain
		{"SB", "b1", "e", "Special", "Standard"}, // b1 under SB
		{},                                       // empty
		{"Business", "Business", "Special", "Standard"}, // duplicate
	}
	for _, names := range cases {
		if _, err := tr.CutOf(names...); err == nil {
			t.Errorf("cut %v unexpectedly valid", names)
		}
	}
	if _, err := tr.CutOf("NoSuchNode"); err == nil {
		t.Error("cut with unknown node name unexpectedly valid")
	}
}

func TestLeafAndRootCuts(t *testing.T) {
	tr := figure2Tree(t)
	lc := tr.LeafCut()
	if err := lc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !lc.IsIdentity() {
		t.Fatal("leaf cut should be the identity")
	}
	if lc.NumVars() != 11 {
		t.Fatalf("leaf cut vars = %d", lc.NumVars())
	}
	rc := tr.RootCut()
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	if rc.IsIdentity() {
		t.Fatal("root cut should not be identity")
	}
	if rc.NumVars() != 1 {
		t.Fatalf("root cut vars = %d", rc.NumVars())
	}
}

func TestCutVarMappingAndApply(t *testing.T) {
	tr := figure2Tree(t)
	n := tr.Names
	c, err := tr.CutOf("Business", "Special", "Standard")
	if err != nil {
		t.Fatal(err)
	}
	m := c.VarMapping()
	if len(m) != 11 {
		t.Fatalf("mapping covers %d leaves, want 11", len(m))
	}
	b1, _ := n.Lookup("b1")
	biz, _ := n.Lookup("Business")
	if m[b1] != biz {
		t.Fatalf("b1 should map to Business")
	}
	// Example 4: P1 under S1 has 4 monomials and 4 distinct variables.
	p1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", n)
	s := polynomial.NewSet(n)
	s.Add("10001", p1)
	comp := Apply(s, c)
	if comp.Size() != 4 {
		t.Fatalf("P1 under S1: size = %d, want 4", comp.Size())
	}
	if comp.NumVars() != 4 {
		t.Fatalf("P1 under S1: vars = %d, want 4 (St, Sp, m1, m3)", comp.NumVars())
	}
	// Exact coefficients from Example 4.
	want := polynomial.MustParse("208.8*Standard*m1 + 240*Standard*m3 + 245.3*Special*m1 + 211.15*Special*m3", n)
	if !polynomial.AlmostEqual(comp.Polys[0], want, 1e-9) {
		t.Fatalf("P1 under S1 = %s", comp.Polys[0].String(n))
	}
}

func TestApplyRootCutMatchesExample4S5(t *testing.T) {
	tr := figure2Tree(t)
	n := tr.Names
	p1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", n)
	s := polynomial.NewSet(n)
	s.Add("10001", p1)
	comp := Apply(s, tr.RootCut())
	// Example 4 prints "466.1*Plans*m1 + 451.15*Plans*m3"; the m1 coefficient
	// is a typo in the paper: 208.8+127.4+75.9+42 = 454.1 (the m3 sum 451.15
	// matches). We verify the correct sum and the stated monomial/var counts.
	if comp.Size() != 2 {
		t.Fatalf("P1 under S5: size = %d, want 2", comp.Size())
	}
	if comp.NumVars() != 3 {
		t.Fatalf("P1 under S5: vars = %d, want 3", comp.NumVars())
	}
	want := polynomial.MustParse("454.1*Plans*m1 + 451.15*Plans*m3", n)
	if !polynomial.AlmostEqual(comp.Polys[0], want, 1e-9) {
		t.Fatalf("P1 under S5 = %s", comp.Polys[0].String(n))
	}
}

func TestGroupedLeaves(t *testing.T) {
	tr := figure2Tree(t)
	c, _ := tr.CutOf("SB", "e")
	// Not a full cut; GroupedLeaves still works on the raw struct.
	g := Cut{Tree: tr, Nodes: []NodeID{tr.ByName("SB"), tr.ByName("e")}}
	_ = c
	groups := g.GroupedLeaves()
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("group sizes = %d,%d, want 2,1", len(groups[0]), len(groups[1]))
	}
}

func TestCoverOf(t *testing.T) {
	tr := figure2Tree(t)
	c, _ := tr.CutOf("Business", "Special", "Standard")
	if got := c.CoverOf(tr.ByName("b1")); got != tr.ByName("Business") {
		t.Fatalf("CoverOf(b1) = %v", tr.Node(got).Name)
	}
}

func TestEnumerateAndCountCuts(t *testing.T) {
	tr := figure2Tree(t)
	var cuts []Cut
	tr.EnumerateCuts(func(c Cut) bool {
		if err := c.Validate(); err != nil {
			t.Fatalf("enumerated invalid cut %s: %v", c, err)
		}
		cuts = append(cuts, c)
		return true
	})
	if len(cuts) != tr.CountCuts() {
		t.Fatalf("enumerated %d cuts, CountCuts = %d", len(cuts), tr.CountCuts())
	}
	// Figure 2: root or product over Standard(1+1*1... compute:
	// Standard: 1 + (1*1) = 2; Y: 1+1=2 (3 leaves: 1+1*1*1=2); F: 2; SB: 2;
	// Special: 1 + 2*2*1 = 5; Business: 1 + 2*1 = 3;
	// Plans: 1 + 2*5*3 = 31.
	if tr.CountCuts() != 31 {
		t.Fatalf("CountCuts = %d, want 31", tr.CountCuts())
	}
	// Deduplicate to ensure enumeration yields distinct cuts.
	seen := make(map[string]bool)
	for _, c := range cuts {
		k := c.String()
		if seen[k] {
			t.Fatalf("duplicate cut %s", k)
		}
		seen[k] = true
	}
}

func TestEnumerateCutsEarlyStop(t *testing.T) {
	tr := figure2Tree(t)
	count := 0
	tr.EnumerateCuts(func(Cut) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop yielded %d cuts", count)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tr := figure2Tree(t)
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	names := polynomial.NewNames()
	tr2, err := TreeFromJSON(data, names)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatalf("round trip node count %d != %d", tr2.Len(), tr.Len())
	}
	if strings.Join(tr2.SortedNodeNames(), ",") != strings.Join(tr.SortedNodeNames(), ",") {
		t.Fatal("round trip changed node names")
	}
	if tr2.String() != tr.String() {
		t.Fatalf("round trip changed structure:\n%s\nvs\n%s", tr2.String(), tr.String())
	}
}

func TestTreeJSONErrors(t *testing.T) {
	names := polynomial.NewNames()
	cases := []string{
		`{`,
		`{"children":[{"name":"x"}]}`,
		`{"name":"r","children":[{"children":[]}]}`,
		`{"name":"r","children":[{"name":"a"},{"name":"a"}]}`,
	}
	for _, in := range cases {
		if _, err := TreeFromJSON([]byte(in), names); err == nil {
			t.Errorf("TreeFromJSON(%q) succeeded, want error", in)
		}
	}
}

func TestAddPathConflict(t *testing.T) {
	names := polynomial.NewNames()
	tr := NewTree("root", names)
	if _, err := tr.AddPath("a", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddPath("b", "x"); err == nil {
		t.Fatal("AddPath should reject re-parenting an existing node")
	}
}

func TestAddChildErrors(t *testing.T) {
	names := polynomial.NewNames()
	tr := NewTree("root", names)
	if _, err := tr.AddChild(99, "x"); err == nil {
		t.Fatal("AddChild with bad parent should fail")
	}
	tr.MustAddChild(tr.Root(), "x")
	if _, err := tr.AddChild(tr.Root(), "x"); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestForestValidate(t *testing.T) {
	names := polynomial.NewNames()
	t1, _ := FromPaths("A", names, []string{"x"}, []string{"y"})
	t2, _ := FromPaths("B", names, []string{"z"})
	if err := (Forest{t1, t2}).Validate(); err != nil {
		t.Fatal(err)
	}
	t3, _ := FromPaths("C", names, []string{"x2"})
	// Rebind t3's leaf to collide with t1's "x".
	t3.nodes[1].Var = t1.Node(t1.ByName("x")).Var
	if err := (Forest{t1, t3}).Validate(); err == nil {
		t.Fatal("forest with shared leaf var should fail validation")
	}
}

func TestForestLeafOwners(t *testing.T) {
	names := polynomial.NewNames()
	t1, _ := FromPaths("A", names, []string{"G", "x"}, []string{"G", "y"})
	t2, _ := FromPaths("B", names, []string{"z"})
	owners := (Forest{t1, t2}).LeafOwners()
	if len(owners) != 3 {
		t.Fatalf("owners = %d entries, want 3 (inner nodes must be absent)", len(owners))
	}
	for _, want := range []struct {
		name string
		tree int
	}{{"x", 0}, {"y", 0}, {"z", 1}} {
		v, ok := names.Lookup(want.name)
		if !ok {
			t.Fatalf("%s not interned", want.name)
		}
		o, ok := owners[v]
		if !ok || o.Tree != want.tree {
			t.Fatalf("owner of %s = %+v (present=%v), want tree %d", want.name, o, ok, want.tree)
		}
		tr := []*Tree{t1, t2}[o.Tree]
		if tr.Node(o.Node).Var != v || !tr.IsLeaf(o.Node) {
			t.Fatalf("owner node of %s is not its leaf", want.name)
		}
	}
	// Inner nodes own variables too, but never appear in the lookup.
	g, _ := names.Lookup("G")
	if _, ok := owners[g]; ok {
		t.Fatal("inner node G must not be a leaf owner")
	}
}

func TestPostorderChildrenFirst(t *testing.T) {
	tr := figure2Tree(t)
	pos := make(map[NodeID]int)
	for i, id := range tr.Postorder() {
		pos[id] = i
	}
	for i := 0; i < tr.Len(); i++ {
		n := tr.Node(NodeID(i))
		for _, c := range n.Children {
			if pos[c] >= pos[n.ID] {
				t.Fatalf("child %q after parent %q in postorder", tr.Node(c).Name, n.Name)
			}
		}
	}
}

func TestRandomTreeCutEnumerationMatchesCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		names := polynomial.NewNames()
		tr := NewTree("r", names)
		// Random tree with <= 10 extra nodes.
		ids := []NodeID{tr.Root()}
		n := 1 + r.Intn(9)
		for i := 0; i < n; i++ {
			parent := ids[r.Intn(len(ids))]
			id := tr.MustAddChild(parent, string(rune('a'+i)))
			ids = append(ids, id)
		}
		count := 0
		tr.EnumerateCuts(func(c Cut) bool {
			if err := c.Validate(); err != nil {
				t.Fatalf("invalid cut: %v", err)
			}
			count++
			return true
		})
		if count != tr.CountCuts() {
			t.Fatalf("trial %d: enumerated %d, CountCuts %d", trial, count, tr.CountCuts())
		}
	}
}
