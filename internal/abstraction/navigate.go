package abstraction

import "fmt"

// Refine replaces a cut node by its children — one step toward the leaves
// in the cut lattice, regaining degrees of freedom at the cost of
// provenance size. Refining a leaf is an error.
func (c Cut) Refine(node NodeID) (Cut, error) {
	if c.Tree == nil {
		return Cut{}, fmt.Errorf("abstraction: cut has no tree")
	}
	n := c.Tree.Node(node)
	if len(n.Children) == 0 {
		return Cut{}, fmt.Errorf("abstraction: cannot refine leaf %q", n.Name)
	}
	found := false
	nodes := make([]NodeID, 0, len(c.Nodes)+len(n.Children)-1)
	for _, id := range c.Nodes {
		if id == node {
			found = true
			continue
		}
		nodes = append(nodes, id)
	}
	if !found {
		return Cut{}, fmt.Errorf("abstraction: node %q is not in the cut", n.Name)
	}
	nodes = append(nodes, n.Children...)
	return NewCut(c.Tree, nodes...)
}

// Coarsen replaces every cut node below the given inner node by that node —
// one step toward the root, trading degrees of freedom for size. It is an
// error if node is already in the cut, is a strict descendant of a cut node,
// or is the ancestor of no cut node.
func (c Cut) Coarsen(node NodeID) (Cut, error) {
	if c.Tree == nil {
		return Cut{}, fmt.Errorf("abstraction: cut has no tree")
	}
	n := c.Tree.Node(node)
	inCut := make(map[NodeID]bool, len(c.Nodes))
	for _, id := range c.Nodes {
		inCut[id] = true
	}
	if inCut[node] {
		return Cut{}, fmt.Errorf("abstraction: node %q is already in the cut", n.Name)
	}
	for p := n.Parent; p != NoNode; p = c.Tree.Node(p).Parent {
		if inCut[p] {
			return Cut{}, fmt.Errorf("abstraction: node %q lies below the cut node %q", n.Name, c.Tree.Node(p).Name)
		}
	}
	nodes := make([]NodeID, 0, len(c.Nodes))
	removed := 0
	for _, id := range c.Nodes {
		if c.Tree.IsAncestorOrSelf(node, id) {
			removed++
			continue
		}
		nodes = append(nodes, id)
	}
	if removed == 0 {
		return Cut{}, fmt.Errorf("abstraction: no cut nodes below %q", n.Name)
	}
	nodes = append(nodes, node)
	return NewCut(c.Tree, nodes...)
}
