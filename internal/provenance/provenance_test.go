package provenance

import (
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/valuation"
)

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"A":        "A",
		"BRAND#12": "BRAND_12",
		"1994-01":  "1994_01",
		"":         "_",
		"a b":      "a_b",
		"x.y:z":    "x.y:z",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVarSpecName(t *testing.T) {
	rel := relation.NewRelation("t", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
	))
	rel.Append(relation.Str("SB1"), relation.Int(3))
	spec := VarSpec{Prefix: "pm_", Columns: []string{"Plan", "Mo"}}
	name, err := spec.VarName(rel, rel.Rows[0])
	if err != nil || name != "pm_SB1_3" {
		t.Fatalf("VarName = %q, %v", name, err)
	}
	bad := VarSpec{Prefix: "x_", Columns: []string{"Nope"}}
	if _, err := bad.VarName(rel, rel.Rows[0]); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestParameterizeColumn(t *testing.T) {
	names := polynomial.NewNames()
	rel := relation.NewRelation("Plans", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Price", Kind: relation.KindFloat},
	))
	rel.Append(relation.Str("A"), relation.Float(0.4))
	rel.Append(relation.Str("E"), relation.Float(0.05))

	out, err := ParameterizeColumn(rel, "Price", []VarSpec{{Prefix: "p_", Columns: []string{"Plan"}}}, names)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched, clone symbolic.
	if rel.Rows[0].Values[1].Kind != relation.KindFloat {
		t.Fatal("ParameterizeColumn mutated its input")
	}
	want := polynomial.MustParse("0.4*p_A", names)
	if !polynomial.AlmostEqual(out.Rows[0].Values[1].P, want, 1e-12) {
		t.Fatalf("cell = %s", out.Rows[0].Values[1].Format(names))
	}
	// Parameterizing a string column must fail.
	if _, err := ParameterizeColumn(rel, "Plan", nil, names); err == nil {
		t.Fatal("non-numeric target should error")
	}
}

func TestAnnotateTuples(t *testing.T) {
	names := polynomial.NewNames()
	rel := relation.NewRelation("t", relation.NewSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
	))
	rel.Append(relation.Int(7))
	out, err := AnnotateTuples(rel, VarSpec{Prefix: "t", Columns: []string{"id"}}, names)
	if err != nil {
		t.Fatal(err)
	}
	want := polynomial.MustParse("t7", names)
	if !polynomial.Equal(out.Rows[0].Ann, want) {
		t.Fatalf("ann = %s", out.Rows[0].Ann.String(names))
	}
}

func TestCaptureRunningExample(t *testing.T) {
	// E1: the revenue query over Figure 1 yields exactly Example 2's P1, P2.
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Capture(telephony.RevenueQuery, cat, names, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("polynomials = %d", set.Len())
	}
	p1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names)
	p2 := polynomial.MustParse(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3", names)
	got1, ok := set.Poly("10001")
	if !ok || !polynomial.AlmostEqual(got1, p1, 1e-9) {
		t.Fatalf("P1 = %s", got1.String(names))
	}
	got2, ok := set.Poly("10002")
	if !ok || !polynomial.AlmostEqual(got2, p2, 1e-9) {
		t.Fatalf("P2 = %s", got2.String(names))
	}
	if set.Size() != 14 {
		t.Fatalf("size = %d, want 14", set.Size())
	}
}

func TestCaptureAutoDetectsValueColumn(t *testing.T) {
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Capture(telephony.RevenueQuery, cat, names, "")
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() != 14 {
		t.Fatalf("size = %d", set.Size())
	}
}

func TestCaptureErrors(t *testing.T) {
	names := polynomial.NewNames()
	cat := telephony.Figure1DB() // concrete: no symbolic column
	if _, err := Capture(telephony.RevenueQuery, cat, names, ""); err == nil {
		t.Fatal("no symbolic column should error")
	}
	if _, err := Capture("SELECT Zip FROM Cust", cat, names, "nope"); err == nil {
		t.Fatal("unknown value column should error")
	}
	if _, err := Capture("not sql", cat, names, ""); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestConcretize(t *testing.T) {
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	a := telephony.ScenarioMarchMinus20(names)
	conc := Concretize(cat, a)
	for _, row := range conc["Plans"].Rows {
		if row.Values[2].Kind != relation.KindFloat {
			t.Fatalf("cell still symbolic: %s", row.Values[2])
		}
	}
	// March prices scaled by 0.8, month-1 prices unchanged.
	for _, row := range conc["Plans"].Rows {
		plan, mo, price := row.Values[0].S, row.Values[1].I, row.Values[2].F
		orig := map[string][2]float64{
			"A": {0.4, 0.5}, "F1": {0.35, 0.35}, "Y1": {0.3, 0.25}, "V": {0.25, 0.2},
			"SB1": {0.1, 0.1}, "SB2": {0.1, 0.15}, "E": {0.05, 0.05},
		}[plan]
		want := orig[0]
		if mo == 3 {
			want = orig[1] * 0.8
		}
		if diff := price - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("plan %s month %d: price %v, want %v", plan, mo, price, want)
		}
	}
}

func TestCommutationOnPaperScenarios(t *testing.T) {
	// E9: polynomial valuation == query re-execution, for both demo
	// scenarios and for a handful of random valuations.
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []*valuation.Assignment{
		telephony.ScenarioMarchMinus20(names),
		telephony.ScenarioBusinessPlus10(names),
	}
	r := rand.New(rand.NewSource(41))
	for s := 0; s < 6; s++ {
		a := valuation.New(names)
		for _, v := range []string{"p1", "f1", "y1", "v", "b1", "b2", "e", "m1", "m3"} {
			a.SetVar(names.Var(v), 0.5+r.Float64())
		}
		scenarios = append(scenarios, a)
	}
	for i, a := range scenarios {
		rep, err := CheckCommutation(telephony.RevenueQuery, cat, names, "revenue", a)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if !rep.Ok(1e-9) {
			t.Fatalf("scenario %d: commutation violated: %+v", i, rep)
		}
	}
}

func TestCommutationAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	names := polynomial.NewNames()
	cat := telephony.Generate(telephony.Config{Customers: 500, Zips: 4, Months: 6})
	inst, err := telephony.InstrumentPrices(cat, names)
	if err != nil {
		t.Fatal(err)
	}
	a := telephony.ScenarioMarchMinus20(names)
	rep, err := CheckCommutation(telephony.RevenueQuery, inst, names, "revenue", a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok(1e-9) {
		t.Fatalf("commutation violated at scale: %+v", rep)
	}
	if rep.Groups != 4 {
		t.Fatalf("groups = %d, want 4", rep.Groups)
	}
}
