package provenance

import (
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/valuation"
)

func TestSanitize(t *testing.T) {
	// Value sanitization lives in AppendVarName: render each raw value
	// through a one-column spec and check the sanitized identifier.
	cases := map[string]string{
		"A":        "A",
		"BRAND#12": "BRAND_12",
		"1994-01":  "1994_01",
		"":         "_",
		"a b":      "a_b",
		"x.y:z":    "x.y:z",
	}
	rel := relation.NewRelation("t", relation.NewSchema(
		relation.Column{Name: "C", Kind: relation.KindString},
	))
	spec := VarSpec{Prefix: "v_", Columns: []string{"C"}}
	for in, want := range cases {
		rel.Rows = rel.Rows[:0]
		rel.Append(relation.Str(in))
		got, err := spec.VarName(rel, rel.Rows[0])
		if err != nil {
			t.Fatalf("VarName(%q): %v", in, err)
		}
		if got != "v_"+want {
			t.Errorf("VarName(%q) = %q, want %q", in, got, "v_"+want)
		}
	}
	// With no prefix, a leading digit is guarded so the name parses as an
	// identifier.
	rel.Rows = rel.Rows[:0]
	rel.Append(relation.Str("1994-01"))
	got, err := VarSpec{Columns: []string{"C"}}.VarName(rel, rel.Rows[0])
	if err != nil || got != "_1994_01" {
		t.Errorf("unprefixed VarName = %q, %v; want %q", got, err, "_1994_01")
	}
}

func TestVarSpecName(t *testing.T) {
	rel := relation.NewRelation("t", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
	))
	rel.Append(relation.Str("SB1"), relation.Int(3))
	spec := VarSpec{Prefix: "pm_", Columns: []string{"Plan", "Mo"}}
	name, err := spec.VarName(rel, rel.Rows[0])
	if err != nil || name != "pm_SB1_3" {
		t.Fatalf("VarName = %q, %v", name, err)
	}
	bad := VarSpec{Prefix: "x_", Columns: []string{"Nope"}}
	if _, err := bad.VarName(rel, rel.Rows[0]); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestParameterizeColumn(t *testing.T) {
	names := polynomial.NewNames()
	rel := relation.NewRelation("Plans", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Price", Kind: relation.KindFloat},
	))
	rel.Append(relation.Str("A"), relation.Float(0.4))
	rel.Append(relation.Str("E"), relation.Float(0.05))

	out, err := ParameterizeColumn(rel, "Price", []VarSpec{{Prefix: "p_", Columns: []string{"Plan"}}}, names)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched, clone symbolic.
	if rel.Rows[0].Values[1].Kind != relation.KindFloat {
		t.Fatal("ParameterizeColumn mutated its input")
	}
	want := polynomial.MustParse("0.4*p_A", names)
	if !polynomial.AlmostEqual(out.Rows[0].Values[1].P, want, 1e-12) {
		t.Fatalf("cell = %s", out.Rows[0].Values[1].Format(names))
	}
	// Parameterizing a string column must fail.
	if _, err := ParameterizeColumn(rel, "Plan", nil, names); err == nil {
		t.Fatal("non-numeric target should error")
	}
}

func TestAnnotateTuples(t *testing.T) {
	names := polynomial.NewNames()
	rel := relation.NewRelation("t", relation.NewSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
	))
	rel.Append(relation.Int(7))
	out, err := AnnotateTuples(rel, VarSpec{Prefix: "t", Columns: []string{"id"}}, names)
	if err != nil {
		t.Fatal(err)
	}
	want := polynomial.MustParse("t7", names)
	if !polynomial.Equal(out.Rows[0].Ann, want) {
		t.Fatalf("ann = %s", out.Rows[0].Ann.String(names))
	}
}

func TestCaptureRunningExample(t *testing.T) {
	// E1: the revenue query over Figure 1 yields exactly Example 2's P1, P2.
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Capture(telephony.RevenueQuery, cat, names, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("polynomials = %d", set.Len())
	}
	p1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names)
	p2 := polynomial.MustParse(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3", names)
	got1, ok := set.Poly("10001")
	if !ok || !polynomial.AlmostEqual(got1, p1, 1e-9) {
		t.Fatalf("P1 = %s", got1.String(names))
	}
	got2, ok := set.Poly("10002")
	if !ok || !polynomial.AlmostEqual(got2, p2, 1e-9) {
		t.Fatalf("P2 = %s", got2.String(names))
	}
	if set.Size() != 14 {
		t.Fatalf("size = %d, want 14", set.Size())
	}
}

func TestCaptureAutoDetectsValueColumn(t *testing.T) {
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Capture(telephony.RevenueQuery, cat, names, "")
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() != 14 {
		t.Fatalf("size = %d", set.Size())
	}
}

func TestCaptureErrors(t *testing.T) {
	names := polynomial.NewNames()
	cat := telephony.Figure1DB() // concrete: no symbolic column
	if _, err := Capture(telephony.RevenueQuery, cat, names, ""); err == nil {
		t.Fatal("no symbolic column should error")
	}
	if _, err := Capture("SELECT Zip FROM Cust", cat, names, "nope"); err == nil {
		t.Fatal("unknown value column should error")
	}
	if _, err := Capture("not sql", cat, names, ""); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestConcretize(t *testing.T) {
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	a := telephony.ScenarioMarchMinus20(names)
	conc := Concretize(cat, a)
	for _, row := range conc["Plans"].Rows {
		if row.Values[2].Kind != relation.KindFloat {
			t.Fatalf("cell still symbolic: %s", row.Values[2])
		}
	}
	// March prices scaled by 0.8, month-1 prices unchanged.
	for _, row := range conc["Plans"].Rows {
		plan, mo, price := row.Values[0].S, row.Values[1].I, row.Values[2].F
		orig := map[string][2]float64{
			"A": {0.4, 0.5}, "F1": {0.35, 0.35}, "Y1": {0.3, 0.25}, "V": {0.25, 0.2},
			"SB1": {0.1, 0.1}, "SB2": {0.1, 0.15}, "E": {0.05, 0.05},
		}[plan]
		want := orig[0]
		if mo == 3 {
			want = orig[1] * 0.8
		}
		if diff := price - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("plan %s month %d: price %v, want %v", plan, mo, price, want)
		}
	}
}

func TestCommutationOnPaperScenarios(t *testing.T) {
	// E9: polynomial valuation == query re-execution, for both demo
	// scenarios and for a handful of random valuations.
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []*valuation.Assignment{
		telephony.ScenarioMarchMinus20(names),
		telephony.ScenarioBusinessPlus10(names),
	}
	r := rand.New(rand.NewSource(41))
	for s := 0; s < 6; s++ {
		a := valuation.New(names)
		for _, v := range []string{"p1", "f1", "y1", "v", "b1", "b2", "e", "m1", "m3"} {
			a.SetVar(names.Var(v), 0.5+r.Float64())
		}
		scenarios = append(scenarios, a)
	}
	for i, a := range scenarios {
		rep, err := CheckCommutation(telephony.RevenueQuery, cat, names, "revenue", a)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if !rep.Ok(1e-9) {
			t.Fatalf("scenario %d: commutation violated: %+v", i, rep)
		}
	}
}

func TestCommutationAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	names := polynomial.NewNames()
	cat := telephony.Generate(telephony.Config{Customers: 500, Zips: 4, Months: 6})
	inst, err := telephony.InstrumentPrices(cat, names)
	if err != nil {
		t.Fatal(err)
	}
	a := telephony.ScenarioMarchMinus20(names)
	rep, err := CheckCommutation(telephony.RevenueQuery, inst, names, "revenue", a)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok(1e-9) {
		t.Fatalf("commutation violated at scale: %+v", rep)
	}
	if rep.Groups != 4 {
		t.Fatalf("groups = %d, want 4", rep.Groups)
	}
}

// sameSet compares two polynomial sets captured under independent
// namespaces: identical keys, identical polynomials (Var-for-Var — which
// holds exactly when the two namespaces interned in the same order).
func sameSet(a, b *polynomial.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || !polynomial.Equal(a.Polys[i], b.Polys[i]) {
			return false
		}
	}
	return true
}

// TestCaptureNWorkerSweep: parallel capture is bit-identical to sequential
// capture for Workers ∈ {1, 2, 8}, including the interning order of a
// fresh namespace.
func TestCaptureNWorkerSweep(t *testing.T) {
	capture := func(workers int) (*polynomial.Set, *polynomial.Names) {
		names := polynomial.NewNames()
		cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: 300, Zips: 5, Months: 6}), names)
		if err != nil {
			t.Fatal(err)
		}
		set, err := CaptureN(telephony.RevenueQuery, cat, names, "revenue", workers)
		if err != nil {
			t.Fatal(err)
		}
		return set, names
	}
	wantSet, wantNames := capture(1)
	if wantSet.Len() != 5 {
		t.Fatalf("groups = %d, want 5", wantSet.Len())
	}
	for _, workers := range []int{2, 8} {
		got, gotNames := capture(workers)
		if !sameSet(wantSet, got) {
			t.Fatalf("workers=%d: captured set diverged from sequential", workers)
		}
		want, have := wantNames.All(), gotNames.All()
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("workers=%d: interning order diverged at Var %d (%q vs %q)", workers, i, want[i], have[i])
			}
		}
	}
}

// TestParameterizeColumnNWorkerSweep: parallel cell instrumentation interns
// the identical variables and produces the identical polynomials.
func TestParameterizeColumnNWorkerSweep(t *testing.T) {
	base := relation.NewRelation("m", relation.NewSchema(
		relation.Column{Name: "Cat", Kind: relation.KindString},
		relation.Column{Name: "Row", Kind: relation.KindInt},
		relation.Column{Name: "Val", Kind: relation.KindFloat},
	))
	for i := 0; i < 500; i++ {
		val := relation.Float(float64(i) * 1.25)
		if i%97 == 0 {
			val = relation.Null() // null cells are skipped, not interned
		}
		base.Append(relation.Str([]string{"a", "b", "c"}[i%3]), relation.Int(int64(i)), val)
	}
	specs := []VarSpec{{Prefix: "c_", Columns: []string{"Cat"}}, {Prefix: "r", Columns: []string{"Row"}}}

	wantNames := polynomial.NewNames()
	want, err := ParameterizeColumnN(base, "Val", specs, wantNames, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		gotNames := polynomial.NewNames()
		got, err := ParameterizeColumnN(base, "Val", specs, gotNames, workers)
		if err != nil {
			t.Fatal(err)
		}
		if wantNames.Len() != gotNames.Len() {
			t.Fatalf("workers=%d: %d vars vs %d", workers, gotNames.Len(), wantNames.Len())
		}
		wa, ga := wantNames.All(), gotNames.All()
		for i := range wa {
			if wa[i] != ga[i] {
				t.Fatalf("workers=%d: Var %d is %q, want %q", workers, i, ga[i], wa[i])
			}
		}
		for ri := range want.Rows {
			wv, gv := want.Rows[ri].Values[2], got.Rows[ri].Values[2]
			if wv.Kind != gv.Kind {
				t.Fatalf("workers=%d row %d: kind %s vs %s", workers, ri, gv.Kind, wv.Kind)
			}
			if wv.Kind == relation.KindPoly && !polynomial.Equal(wv.P, gv.P) {
				t.Fatalf("workers=%d row %d: polynomial diverged", workers, ri)
			}
		}
	}

	// Error paths agree with the sequential implementation — including the
	// state the shared namespace is left in.
	bad := base.Clone()
	bad.Rows[123].Values[2] = relation.Str("oops")
	seqBadNames := polynomial.NewNames()
	_, seqErr := ParameterizeColumnN(bad, "Val", specs, seqBadNames, 1)
	if seqErr == nil {
		t.Fatal("expected error")
	}
	for _, workers := range []int{2, 8} {
		parBadNames := polynomial.NewNames()
		_, err := ParameterizeColumnN(bad, "Val", specs, parBadNames, workers)
		if err == nil || err.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, seqErr)
		}
		if seqBadNames.Len() != parBadNames.Len() {
			t.Fatalf("workers=%d: names after error %d vs %d", workers, parBadNames.Len(), seqBadNames.Len())
		}
	}

	// A VarSpec failing mid-row (unknown column in the second spec) must
	// leave the namespace with the failing row's already-derived prefix
	// interned, exactly as the sequential per-spec loop does.
	badSpecs := []VarSpec{{Prefix: "c_", Columns: []string{"Cat"}}, {Prefix: "x", Columns: []string{"Nope"}}}
	seqSpecNames := polynomial.NewNames()
	_, seqSpecErr := ParameterizeColumnN(base, "Val", badSpecs, seqSpecNames, 1)
	if seqSpecErr == nil {
		t.Fatal("expected unknown-column error")
	}
	for _, workers := range []int{2, 8} {
		parSpecNames := polynomial.NewNames()
		_, err := ParameterizeColumnN(base, "Val", badSpecs, parSpecNames, workers)
		if err == nil || err.Error() != seqSpecErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, seqSpecErr)
		}
		if seqSpecNames.Len() != parSpecNames.Len() {
			t.Fatalf("workers=%d: names after mid-row spec error %d vs %d", workers, parSpecNames.Len(), seqSpecNames.Len())
		}
	}
}

// TestAnnotateTuplesNWorkerSweep: tuple-level instrumentation is identical
// for any worker count.
func TestAnnotateTuplesNWorkerSweep(t *testing.T) {
	base := relation.NewRelation("t", relation.NewSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt},
		relation.Column{Name: "Tag", Kind: relation.KindString},
	))
	for i := 0; i < 400; i++ {
		base.Append(relation.Int(int64(i)), relation.Str([]string{"x", "y"}[i%2]))
	}
	spec := VarSpec{Prefix: "t", Columns: []string{"ID"}}
	wantNames := polynomial.NewNames()
	want, err := AnnotateTuplesN(base, spec, wantNames, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		gotNames := polynomial.NewNames()
		got, err := AnnotateTuplesN(base, spec, gotNames, workers)
		if err != nil {
			t.Fatal(err)
		}
		if wantNames.Len() != gotNames.Len() {
			t.Fatalf("workers=%d: vars %d vs %d", workers, gotNames.Len(), wantNames.Len())
		}
		for ri := range want.Rows {
			if !polynomial.Equal(want.Rows[ri].Ann, got.Rows[ri].Ann) {
				t.Fatalf("workers=%d row %d: annotation diverged", workers, ri)
			}
		}
	}
}

// TestCaptureLineageNWorkerSweep: lineage capture is identical for any
// worker count.
func TestCaptureLineageNWorkerSweep(t *testing.T) {
	lineage := func(workers int) *polynomial.Set {
		names := polynomial.NewNames()
		cat := telephony.Generate(telephony.Config{Customers: 200, Zips: 4, Months: 3})
		cust, err := AnnotateTuplesN(cat["Cust"], VarSpec{Prefix: "c", Columns: []string{"ID"}}, names, workers)
		if err != nil {
			t.Fatal(err)
		}
		cat["Cust"] = cust
		set, err := CaptureLineageN(
			"SELECT Cust.Zip, Calls.Mo FROM Cust, Calls WHERE Cust.ID = Calls.CID AND Calls.Dur > 500",
			cat, names, workers)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	want := lineage(1)
	if want.Len() == 0 {
		t.Fatal("empty lineage")
	}
	for _, workers := range []int{2, 8} {
		if got := lineage(workers); !sameSet(want, got) {
			t.Fatalf("workers=%d: lineage diverged from sequential", workers)
		}
	}
}
