// Streaming (non-materializing) provenance capture: the query executes
// through the engine's Volcano pull loop and every captured polynomial is
// handed to a polynomial.SetSink the moment its row is produced, so the
// result relation — and the full provenance set — never materialize.
// Feeding a ShardBuilder bounds peak residency by its MaxResidentMonomials
// budget even when the captured provenance is far larger.

package provenance

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/sql"
)

// captureBatchRows bounds the result tuples the streaming capture buffers
// at a time: batches of up to this many rows are rendered (group keys,
// polynomial extraction) across the worker pool and fed to the sink in row
// order. It is the only result-side buffering the streaming path does —
// peak extra memory is one batch of tuples, independent of the result
// size.
const captureBatchRows = 4096

// CaptureStream runs a SQL query over the catalog and streams its
// provenance polynomials into sink row-at-a-time — the non-materializing
// counterpart of Capture. The sink must share the namespace the catalog
// was instrumented under. Keys, polynomials and their order are exactly
// Capture's for every worker count: the plan executes through the
// sequential Volcano schedule (bit-identical to RunN by the engine's
// determinism guarantee), rendering within a batch shards over up to
// workers goroutines, and sink.Add is called sequentially in row order —
// so variables reach the sink in the same order the materialized path
// interns them, and a spilling sink builds the identical ShardedSet.
//
// If valueCol is empty, the symbolic column is resolved from the first
// buffered batch (up to captureBatchRows rows); a result whose symbolic
// column is NULL-or-numeric for the entire first batch needs an explicit
// valueCol, where Capture would have scanned the whole materialized
// result. Ambiguity is still detected across the whole stream: a second
// symbolic column appearing in any later batch fails with the same
// "multiple symbolic columns" error Capture reports. On error the sink
// may have received a prefix of the rows; callers building a ShardedSet
// should discard the partial builder.
func CaptureStream(query string, cat engine.Catalog, valueCol string, sink polynomial.SetSink, workers int) error {
	it, err := sql.Open(query, cat)
	if err != nil {
		return err
	}
	valIdx := -1
	inferred := valueCol == ""
	if !inferred {
		if valIdx, err = it.Schema().Index(valueCol); err != nil {
			return err
		}
	}
	sawRows := false
	batch := make([]relation.Tuple, 0, captureBatchRows)
	// Streamed tuples are valid only until the callback returns (the
	// engine's row-validity contract), so buffered rows copy their values
	// into a slab reused across batches — after the first batch, buffering
	// a row allocates nothing.
	var batchVals []relation.Value
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if valIdx < 0 {
			idx, rerr := resolveValueColIn(it.Schema(), batch, "")
			if rerr != nil {
				return rerr
			}
			valIdx = idx
		} else if inferred {
			// The column was inferred from an earlier batch: a symbolic
			// value in any other column now would have made the
			// materialized resolver refuse — refuse here too.
			for _, row := range batch {
				for i, v := range row.Values {
					if i != valIdx && v.Kind == relation.KindPoly {
						return fmt.Errorf("provenance: multiple symbolic columns; specify one")
					}
				}
			}
		}
		ferr := sinkRows(batch, workers, valIdx, captureRow, sink)
		batch = batch[:0]
		batchVals = batchVals[:0]
		return ferr
	}
	err = engine.Stream(it, func(t relation.Tuple) error {
		sawRows = true
		if batchVals == nil {
			batchVals = make([]relation.Value, 0, captureBatchRows*len(t.Values))
		}
		off := len(batchVals)
		batchVals = append(batchVals, t.Values...)
		t.Values = batchVals[off:len(batchVals):len(batchVals)]
		batch = append(batch, t)
		if len(batch) >= captureBatchRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if valIdx < 0 && !sawRows {
		// Zero result rows and no explicit column: report the same error
		// the materialized resolver does.
		_, err := resolveValueColIn(it.Schema(), nil, "")
		return err
	}
	return nil
}

// CaptureLineageStream runs a query over tuple-annotated relations and
// streams one lineage polynomial per output row into sink — the
// non-materializing counterpart of CaptureLineage, with the same key
// rendering (all column values joined by "|") and the same row order for
// every worker count.
func CaptureLineageStream(query string, cat engine.Catalog, sink polynomial.SetSink, workers int) error {
	it, err := sql.Open(query, cat)
	if err != nil {
		return err
	}
	batch := make([]relation.Tuple, 0, captureBatchRows)
	var batchVals []relation.Value // reused across batches; see CaptureStream
	flush := func() error {
		err := sinkRows(batch, workers, -1, lineageRow, sink)
		batch = batch[:0]
		batchVals = batchVals[:0]
		return err
	}
	err = engine.Stream(it, func(t relation.Tuple) error {
		if batchVals == nil {
			batchVals = make([]relation.Value, 0, captureBatchRows*len(t.Values))
		}
		off := len(batchVals)
		batchVals = append(batchVals, t.Values...)
		t.Values = batchVals[off:len(batchVals):len(batchVals)]
		batch = append(batch, t)
		if len(batch) >= captureBatchRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// lineageRow renders one output row into its lineage key (all column
// values joined by "|", appended to buf) and annotation; valIdx is
// unused (lineage keys span every column).
func lineageRow(row relation.Tuple, _ int, buf []byte) ([]byte, polynomial.Polynomial, error) {
	for i, v := range row.Values {
		if i > 0 {
			buf = append(buf, '|')
		}
		buf = v.AppendString(buf)
	}
	return buf, row.Ann, nil
}

// sinkRows renders a batch of rows into (key, polynomial) pairs across up
// to workers goroutines and feeds them to sink sequentially in row order,
// stopping at the first failing row in row order — so the sequence of Add
// calls (and therefore any sink state, including a ShardBuilder's shard
// boundaries and spill schedule) is bit-identical for every worker count.
// Renderers append key bytes to a per-worker scratch buffer reused across
// the batch's rows; only the retained key string is allocated per row.
func sinkRows(rows []relation.Tuple, workers int, valIdx int, render func(relation.Tuple, int, []byte) ([]byte, polynomial.Polynomial, error), sink polynomial.SetSink) error {
	if parallel.Normalize(workers) <= 1 {
		var buf []byte
		for _, row := range rows {
			b, p, err := render(row, valIdx, buf[:0])
			if err != nil {
				return err
			}
			buf = b
			//cobra:hotalloc the sink retains the key: one string per captured row is the data itself
			if err := sink.Add(string(b), p); err != nil {
				return err
			}
		}
		return nil
	}
	n := len(rows)
	keys := make([]string, n)
	polys := make([]polynomial.Polynomial, n)
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, n, func(shard, lo, hi int) {
		var buf []byte
		for ri := lo; ri < hi; ri++ {
			b, p, err := render(rows[ri], valIdx, buf[:0])
			if err != nil {
				errs[shard] = parallel.RowErr{Err: err, Row: ri}
				return
			}
			buf = b
			//cobra:hotalloc the keys array retains its strings: one per captured row is the data itself
			keys[ri], polys[ri] = string(b), p
		}
	})
	bad := parallel.FirstRowErr(errs)
	limit := n
	if bad.Err != nil {
		limit = bad.Row
	}
	for ri := 0; ri < limit; ri++ {
		if err := sink.Add(keys[ri], polys[ri]); err != nil {
			return err
		}
	}
	return bad.Err
}
