package provenance

import (
	"strings"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/semiring"
	"github.com/cobra-prov/cobra/internal/sql"
)

// CaptureLineage runs a query over tuple-annotated relations (see
// AnnotateTuples) and returns one polynomial per output row: the row's N[X]
// annotation — its how-provenance in the semiring model (joint tuples
// multiply, alternative derivations add). The key of each polynomial is the
// row's rendered values.
//
// This complements Capture, which extracts value-level (aggregation)
// provenance; CaptureLineage extracts tuple-level provenance and works for
// any query the engine supports, including non-aggregate SPJ queries.
func CaptureLineage(query string, cat engine.Catalog, names *polynomial.Names) (*polynomial.Set, error) {
	return CaptureLineageN(query, cat, names, 1)
}

// CaptureLineageN is CaptureLineage using up to workers goroutines for
// query execution (sql.RunN) and row-key rendering; the set is assembled in
// row order and is bit-identical to the sequential one for any worker count.
func CaptureLineageN(query string, cat engine.Catalog, names *polynomial.Names, workers int) (*polynomial.Set, error) {
	out, err := sql.RunN(query, cat, workers)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(out.Rows))
	parallel.Chunks(workers, len(out.Rows), func(_, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			row := out.Rows[ri]
			parts := make([]string, len(row.Values))
			for i, v := range row.Values {
				parts[i] = v.String()
			}
			keys[ri] = strings.Join(parts, "|")
		}
	})
	set := polynomial.NewSet(names)
	for ri, row := range out.Rows {
		if err := set.Add(keys[ri], row.Ann); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Derivable evaluates a lineage polynomial in the Boolean semiring: given
// which source tuples are present, is the output row derivable? This is the
// classic "possibility under deletion" specialization of N[X].
func Derivable(lineage polynomial.Polynomial, present func(polynomial.Var) bool) bool {
	return semiring.Eval[bool](semiring.Boolean{}, lineage, present, semiring.CoefBool)
}

// MinimalCost evaluates a lineage polynomial in the tropical semiring:
// the cheapest derivation of the output row given per-tuple costs.
func MinimalCost(lineage polynomial.Polynomial, cost func(polynomial.Var) float64) float64 {
	return semiring.Eval[float64](semiring.Tropical{}, lineage, cost, semiring.CoefTropical)
}
