package provenance

import (
	"math"
	"testing"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// lineageCatalog builds two tuple-annotated tables:
//
//	r(k): r1 -> 1, r2 -> 2
//	s(k, v): s1 -> (1, a), s2 -> (1, b), s3 -> (2, a)
func lineageCatalog(t *testing.T, names *polynomial.Names) engine.Catalog {
	t.Helper()
	r := relation.NewRelation("r", relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
	))
	r.Append(relation.Int(1))
	r.Append(relation.Int(2))
	r, err := AnnotateTuples(r, VarSpec{Prefix: "r", Columns: []string{"k"}}, names)
	if err != nil {
		t.Fatal(err)
	}

	s := relation.NewRelation("s", relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindString},
	))
	s.Append(relation.Int(1), relation.Str("a"))
	s.Append(relation.Int(1), relation.Str("b"))
	s.Append(relation.Int(2), relation.Str("a"))
	// Annotate with distinct variables s1, s2, s3 by row position.
	sAnn := s.Clone()
	for i := range sAnn.Rows {
		sAnn.Rows[i].Ann = polynomial.VarPoly(names.Var([]string{"s1", "s2", "s3"}[i]))
	}
	return engine.Catalog{"r": r, "s": sAnn}
}

func TestCaptureLineageJoin(t *testing.T) {
	names := polynomial.NewNames()
	cat := lineageCatalog(t, names)
	set, err := CaptureLineage("SELECT r.k, s.v FROM r, s WHERE r.k = s.k ORDER BY r.k, s.v", cat, names)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("rows = %d", set.Len())
	}
	// Row (1, a) derives from r1·s1.
	want := map[string]string{
		"1|a": "r1*s1",
		"1|b": "r1*s2",
		"2|a": "r2*s3",
	}
	for i, key := range set.Keys {
		w := polynomial.MustParse(want[key], names)
		if !polynomial.Equal(set.Polys[i], w) {
			t.Fatalf("%s: lineage %s, want %s", key, set.Polys[i].String(names), want[key])
		}
	}
}

func TestCaptureLineageGroupingAddsAlternatives(t *testing.T) {
	names := polynomial.NewNames()
	cat := lineageCatalog(t, names)
	// Grouping merges alternative derivations: the annotation of a group is
	// the sum of its rows' annotations.
	out, err := CaptureLineage(
		"SELECT s.v, COUNT(*) AS n FROM r, s WHERE r.k = s.k GROUP BY s.v ORDER BY s.v", cat, names)
	if err != nil {
		t.Fatal(err)
	}
	// Group "a": derivations r1·s1 + r2·s3. The COUNT column also reflects
	// the symbolic multiplicity; the tuple annotation is what we check.
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	aKey := out.Keys[0]
	got, _ := out.Poly(aKey)
	want := polynomial.MustParse("r1*s1 + r2*s3", names)
	if !polynomial.Equal(got, want) {
		t.Fatalf("lineage of group a = %s, want %s", got.String(names), want.String(names))
	}
}

func TestDerivableBoolean(t *testing.T) {
	names := polynomial.NewNames()
	lin := polynomial.MustParse("r1*s1 + r2*s3", names)
	r1, _ := names.Lookup("r1")
	s1, _ := names.Lookup("s1")
	r2, _ := names.Lookup("r2")
	s3, _ := names.Lookup("s3")

	onlyFirst := func(v polynomial.Var) bool { return v == r1 || v == s1 }
	if !Derivable(lin, onlyFirst) {
		t.Fatal("row should be derivable from r1, s1")
	}
	crossed := func(v polynomial.Var) bool { return v == r1 || v == s3 }
	if Derivable(lin, crossed) {
		t.Fatal("r1 with s3 is not a derivation")
	}
	second := func(v polynomial.Var) bool { return v == r2 || v == s3 }
	if !Derivable(lin, second) {
		t.Fatal("row should be derivable from r2, s3")
	}
}

func TestMinimalCostTropical(t *testing.T) {
	names := polynomial.NewNames()
	lin := polynomial.MustParse("r1*s1 + r2*s3", names)
	cost := func(v polynomial.Var) float64 {
		switch names.Name(v) {
		case "r1":
			return 5
		case "s1":
			return 4
		case "r2":
			return 1
		case "s3":
			return 2
		}
		return math.Inf(1)
	}
	if got := MinimalCost(lin, cost); got != 3 {
		t.Fatalf("minimal cost = %v, want 3 (r2+s3)", got)
	}
}
