package provenance

import (
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// spjQuery is a join whose output provenance is one polynomial per row —
// no aggregation, so nothing materializes the provenance but the capture
// side itself.
const spjQuery = `
SELECT Cust.Zip, Calls.Mo, Calls.Dur * Plans.Price AS rev
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan
  AND Cust.ID = Calls.CID
  AND Calls.Mo = Plans.Mo`

// TestCaptureStreamMatchesCapture: streaming capture into an in-memory
// Set sink must reproduce Capture's keys, polynomials and order exactly,
// for every worker count — with both an explicit and an inferred value
// column.
func TestCaptureStreamMatchesCapture(t *testing.T) {
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: 300}), names)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{spjQuery, telephony.RevenueQuery} {
		for _, valueCol := range []string{"rev", ""} {
			if query == telephony.RevenueQuery {
				if valueCol == "" {
					continue
				}
				valueCol = "revenue"
			}
			want, err := Capture(query, cat, names, valueCol)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 8} {
				got := polynomial.NewSet(names)
				if err := CaptureStream(query, cat, valueCol, got, w); err != nil {
					t.Fatalf("workers=%d valueCol=%q: %v", w, valueCol, err)
				}
				assertSameSet(t, want, got, w)
			}
		}
	}
}

// TestCaptureStreamToBuilderBounded: streaming a join whose full
// provenance exceeds the budget into a ShardBuilder must stay within the
// budget and materialize to exactly Capture's set, for every worker
// count.
func TestCaptureStreamToBuilderBounded(t *testing.T) {
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: 500}), names)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Capture(spjQuery, cat, names, "rev")
	if err != nil {
		t.Fatal(err)
	}
	budget := want.Size() / 8
	if budget < 2 {
		t.Fatalf("fixture too small: %d monomials", want.Size())
	}
	for _, w := range []int{1, 2, 8} {
		b := polynomial.NewShardBuilder(names, polynomial.ShardOptions{
			MaxResidentMonomials: budget,
			SpillDir:             t.TempDir(),
		})
		if err := CaptureStream(spjQuery, cat, "rev", b, w); err != nil {
			b.Discard()
			t.Fatalf("workers=%d: %v", w, err)
		}
		ss, err := b.Finish()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if peak := ss.PeakResidentMonomials(); peak > budget {
			t.Errorf("workers=%d: peak resident %d exceeds budget %d", w, peak, budget)
		}
		if ss.SpilledShards() == 0 {
			t.Errorf("workers=%d: expected spills (size %d, budget %d)", w, ss.Size(), budget)
		}
		got, err := ss.Materialize()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertSameSet(t, want, got, w)
		if err := ss.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", w, err)
		}
	}
}

// TestCaptureLineageStreamMatchesCaptureLineage: tuple-level streaming
// lineage capture must match CaptureLineage exactly for every worker
// count.
func TestCaptureLineageStreamMatchesCaptureLineage(t *testing.T) {
	names := polynomial.NewNames()
	cat := telephony.Generate(telephony.Config{Customers: 200})
	cust, err := AnnotateTuples(cat["Cust"], VarSpec{Prefix: "c", Columns: []string{"ID"}}, names)
	if err != nil {
		t.Fatal(err)
	}
	cat["Cust"] = cust
	query := "SELECT Cust.Zip, Calls.Mo FROM Cust, Calls WHERE Cust.ID = Calls.CID AND Calls.Dur > 900"
	want, err := CaptureLineage(query, cat, names)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture produced no lineage rows")
	}
	for _, w := range []int{1, 2, 8} {
		got := polynomial.NewSet(names)
		if err := CaptureLineageStream(query, cat, got, w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertSameSet(t, want, got, w)
	}
}

// TestCaptureStreamErrors: planner errors, an unknown value column, and a
// symbolic-column-free result must surface the same way Capture reports
// them.
func TestCaptureStreamErrors(t *testing.T) {
	names := polynomial.NewNames()
	cat := telephony.Generate(telephony.Config{Customers: 10})
	sink := polynomial.NewSet(names)

	if err := CaptureStream("SELECT FROM", cat, "", sink, 1); err == nil {
		t.Fatal("want parse error")
	}
	if err := CaptureStream("SELECT Cust.Zip FROM Cust", cat, "nope", sink, 1); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-column error, got %v", err)
	}
	err := CaptureStream("SELECT Cust.Zip FROM Cust", cat, "", sink, 1)
	if err == nil || !strings.Contains(err.Error(), "no symbolic column") {
		t.Fatalf("want no-symbolic-column error, got %v", err)
	}
	// Zero-row symbolic query without a value column: same error.
	err = CaptureStream("SELECT Cust.Zip FROM Cust WHERE Cust.ID < 0", cat, "", sink, 1)
	if err == nil || !strings.Contains(err.Error(), "no symbolic column") {
		t.Fatalf("want no-symbolic-column error on empty result, got %v", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("error paths added %d polynomials", sink.Len())
	}
}

func assertSameSet(t *testing.T, want, got *polynomial.Set, workers int) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("workers=%d: %d polynomials, want %d", workers, got.Len(), want.Len())
	}
	for i := range want.Keys {
		if got.Keys[i] != want.Keys[i] {
			t.Fatalf("workers=%d: key %d = %q, want %q", workers, i, got.Keys[i], want.Keys[i])
		}
		if !polynomial.Equal(got.Polys[i], want.Polys[i]) {
			t.Fatalf("workers=%d: polynomial %d differs", workers, i)
		}
	}
}

// TestCaptureStreamLateSecondSymbolicColumn: a second symbolic column
// whose first polynomial value appears after the first buffered batch
// must still fail with Capture's ambiguity error, not silently capture
// the first column.
func TestCaptureStreamLateSecondSymbolicColumn(t *testing.T) {
	names := polynomial.NewNames()
	rel := relation.NewRelation("T", relation.NewSchema(
		relation.Column{Name: "A", Kind: relation.KindPoly},
		relation.Column{Name: "B", Kind: relation.KindFloat},
	))
	rows := captureBatchRows + 50
	x := polynomial.VarPoly(names.Var("x"))
	for i := 0; i < rows; i++ {
		b := relation.Float(1.0)
		if i > captureBatchRows+10 {
			b = relation.Poly(polynomial.VarPoly(names.Var("y")))
		}
		rel.Append(relation.Poly(x), b)
	}
	cat := engine.Catalog{"T": rel}
	query := "SELECT T.A AS a, T.B AS b FROM T"

	// The materialized resolver refuses.
	if _, err := Capture(query, cat, names, ""); err == nil ||
		!strings.Contains(err.Error(), "multiple symbolic columns") {
		t.Fatalf("Capture: want ambiguity error, got %v", err)
	}
	// The streaming resolver must refuse too, for every worker count.
	for _, w := range []int{1, 8} {
		err := CaptureStream(query, cat, "", polynomial.NewSet(names), w)
		if err == nil || !strings.Contains(err.Error(), "multiple symbolic columns") {
			t.Fatalf("workers=%d: want ambiguity error, got %v", w, err)
		}
	}
	// An explicit column keeps working on the same data.
	got := polynomial.NewSet(names)
	if err := CaptureStream(query, cat, "a", got, 2); err != nil {
		t.Fatal(err)
	}
	if got.Len() != rows {
		t.Fatalf("explicit column captured %d rows, want %d", got.Len(), rows)
	}
}
