// Package provenance instruments base data with symbolic variables and
// captures provenance polynomials from query results ("instrument the data
// with symbolic variables, either at the cell or tuple level", §1 of the
// paper). It also implements the commutation check: applying a valuation to
// captured provenance must equal re-executing the query on correspondingly
// modified data — the correctness guarantee that makes provenance-based
// hypothetical reasoning sound.
package provenance

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/sql"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// VarSpec derives one provenance variable per row from a prefix and the
// row's values in the given columns: Prefix + values joined by "_". For the
// running example, {Prefix: "p_", Columns: ["Plan"]} and {Prefix: "m",
// Columns: ["Mo"]} turn the price cell 0.4 of (A, month 1) into the
// symbolic cell 0.4·p_A·m1.
type VarSpec struct {
	Prefix  string
	Columns []string
}

// VarName builds the variable name for a row (sanitized to the polynomial
// identifier alphabet). A leading digit/dot/colon in the assembled name is
// guarded with "_" so the name parses as an identifier.
func (s VarSpec) VarName(rel *relation.Relation, row relation.Tuple) (string, error) {
	b, err := s.AppendVarName(nil, rel, row)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendVarName appends VarName's rendering to dst — the allocation-free
// form used by instrumentation loops over whole columns. The bytes
// appended are exactly VarName's result.
func (s VarSpec) AppendVarName(dst []byte, rel *relation.Relation, row relation.Tuple) ([]byte, error) {
	start := len(dst)
	dst = append(dst, s.Prefix...)
	for i, col := range s.Columns {
		idx, err := rel.Schema.Index(col)
		if err != nil {
			return dst[:start], err
		}
		if i > 0 {
			dst = append(dst, '_')
		}
		off := len(dst)
		dst = row.Values[idx].AppendString(dst)
		if len(dst) == off {
			// sanitize("") is "_".
			dst = append(dst, '_')
			continue
		}
		// Sanitize the rendered value in place: everything outside the
		// identifier alphabet (letters, digits, '_', '.', ':') becomes '_'.
		for j := off; j < len(dst); j++ {
			c := dst[j]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == ':') {
				dst[j] = '_'
			}
		}
	}
	if len(dst) == start {
		return append(dst, '_'), nil
	}
	if c := dst[start]; c >= '0' && c <= '9' || c == '.' || c == ':' {
		dst = append(dst, 0)
		copy(dst[start+1:], dst[start:])
		dst[start] = '_'
	}
	return dst, nil
}

// ParameterizeColumn returns a copy of rel in which every cell of the target
// column is multiplied by the product of the variables derived from specs —
// cell-level instrumentation. The target column must be numeric.
func ParameterizeColumn(rel *relation.Relation, target string, specs []VarSpec, names *polynomial.Names) (*relation.Relation, error) {
	idx, err := rel.Schema.Index(target)
	if err != nil {
		return nil, err
	}
	out := rel.Clone()
	// Cell polynomials are built directly into column-wide slabs: one term
	// vector and one monomial array shared by every cell, so instrumenting
	// a row is allocation-free (the old per-cell Mono/New/Mul chain was
	// the bulk of E8's allocation profile). The result is value-identical
	// to Mul(base, New(Mono(1, terms...))): a single canonical monomial
	// with the cell's constant as coefficient.
	termSlab := make([]polynomial.Term, 0, len(out.Rows)*len(specs))
	monSlab := make([]polynomial.Monomial, 0, len(out.Rows))
	var nameBuf []byte
	for ri := range out.Rows {
		row := &out.Rows[ri]
		v := row.Values[idx]
		if v.IsNull() {
			continue
		}
		c, concrete := v.AsFloat()
		if !concrete && v.Kind != relation.KindPoly {
			return nil, fmt.Errorf("provenance: column %q of %s is not numeric (%s)", target, rel.Name, v.Kind)
		}
		toff := len(termSlab)
		for si := range specs {
			b, err := specs[si].AppendVarName(nameBuf[:0], out, *row)
			if err != nil {
				return nil, err
			}
			nameBuf = b
			termSlab = append(termSlab, polynomial.T(names.VarBytes(b)))
		}
		terms := termSlab[toff:len(termSlab):len(termSlab)]
		if !concrete {
			// Symbolic cell: general polynomial product.
			row.Values[idx] = relation.Poly(polynomial.Mul(v.P, polynomial.New(polynomial.MonoIn(1, terms))))
			continue
		}
		if c == 0 {
			row.Values[idx] = relation.Poly(polynomial.Polynomial{})
			continue
		}
		moff := len(monSlab)
		monSlab = append(monSlab, polynomial.MonoIn(c, terms))
		row.Values[idx] = relation.Poly(polynomial.Polynomial{Mons: monSlab[moff : moff+1 : moff+1]})
	}
	return out, nil
}

// ParameterizeColumnN is ParameterizeColumn using up to workers goroutines.
// Variable-name derivation and the cell multiplications shard across the
// pool; interning stays sequential in row order, so the allocated Vars —
// and therefore every resulting polynomial — are bit-identical to the
// sequential path for any worker count.
func ParameterizeColumnN(rel *relation.Relation, target string, specs []VarSpec, names *polynomial.Names, workers int) (*relation.Relation, error) {
	if parallel.Normalize(workers) <= 1 {
		return ParameterizeColumn(rel, target, specs, names)
	}
	idx, err := rel.Schema.Index(target)
	if err != nil {
		return nil, err
	}
	out := cloneRelationN(rel, workers)
	n := len(out.Rows)
	ns := len(specs)

	// Phase 1: render variable names into per-shard byte slabs (windows in
	// nameBytes) and classify each cell. A shard's appends may move its slab
	// to a fresh backing; earlier windows keep pointing into the old one,
	// whose bytes are never rewritten.
	nameBytes := make([][]byte, n*ns)
	cvals := make([]float64, n)
	bases := make([]polynomial.Polynomial, n) // symbolic cells only
	symbolic := make([]bool, n)
	skip := make([]bool, n)
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, n, func(shard, lo, hi int) {
		var slab []byte
		for ri := lo; ri < hi; ri++ {
			row := &out.Rows[ri]
			v := row.Values[idx]
			if v.IsNull() {
				skip[ri] = true
				continue
			}
			c, concrete := v.AsFloat()
			if !concrete && v.Kind != relation.KindPoly {
				errs[shard] = parallel.RowErr{Err: fmt.Errorf("provenance: column %q of %s is not numeric (%s)", target, rel.Name, v.Kind), Row: ri}
				return
			}
			cvals[ri] = c
			if !concrete {
				symbolic[ri] = true
				bases[ri] = v.P
			}
			for si := 0; si < ns; si++ {
				off := len(slab)
				b, err := specs[si].AppendVarName(slab, out, *row)
				if err != nil {
					// The row's already-derived prefix stays in nameBytes:
					// the sequential path interns it before this error.
					errs[shard] = parallel.RowErr{Err: err, Row: ri}
					return
				}
				slab = b
				nameBytes[ri*ns+si] = slab[off:len(slab):len(slab)]
			}
		}
	})

	// Phase 2: intern sequentially in row order — Var allocation order is
	// identical to the sequential path — and finish concrete cells directly
	// into column-wide slabs, exactly as ParameterizeColumn does. An error
	// aborts at the first failing row, leaving earlier rows interned.
	firstBad := parallel.FirstRowErr(errs)
	limit := n
	if firstBad.Err != nil {
		limit = firstBad.Row
	}
	termSlab := make([]polynomial.Term, 0, limit*ns)
	monSlab := make([]polynomial.Monomial, n)
	rowTerms := make([][]polynomial.Term, n) // retained for symbolic cells
	for ri := 0; ri < limit; ri++ {
		if skip[ri] {
			continue
		}
		toff := len(termSlab)
		for si := 0; si < ns; si++ {
			termSlab = append(termSlab, polynomial.T(names.VarBytes(nameBytes[ri*ns+si])))
		}
		terms := termSlab[toff:len(termSlab):len(termSlab)]
		switch {
		case symbolic[ri]:
			rowTerms[ri] = terms
		case cvals[ri] == 0:
			out.Rows[ri].Values[idx] = relation.Poly(polynomial.Polynomial{})
		default:
			monSlab[ri] = polynomial.MonoIn(cvals[ri], terms)
			out.Rows[ri].Values[idx] = relation.Poly(polynomial.Polynomial{Mons: monSlab[ri : ri+1 : ri+1]})
		}
	}
	if firstBad.Err != nil {
		// The failing row's already-derived prefix (specs before the bad
		// one) is interned too, leaving names in the exact state the
		// sequential path leaves it in.
		for si := 0; si < ns; si++ {
			if b := nameBytes[firstBad.Row*ns+si]; b != nil {
				names.VarBytes(b)
			}
		}
		return nil, firstBad.Err
	}

	// Phase 3: symbolic cells need a general polynomial product; shard it.
	parallel.Chunks(workers, n, func(_, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			if !symbolic[ri] {
				continue
			}
			factor := polynomial.New(polynomial.MonoIn(1, rowTerms[ri]))
			out.Rows[ri].Values[idx] = relation.Poly(polynomial.Mul(bases[ri], factor))
		}
	})
	return out, nil
}

// cloneRelationN deep-copies a relation, sharding the row copies; each
// shard copies its rows' values into one flat slab (see Relation.Clone).
func cloneRelationN(rel *relation.Relation, workers int) *relation.Relation {
	out := &relation.Relation{Name: rel.Name, Schema: rel.Schema, Rows: make([]relation.Tuple, len(rel.Rows))}
	parallel.Chunks(workers, len(rel.Rows), func(_, lo, hi int) {
		total := 0
		for i := lo; i < hi; i++ {
			total += len(rel.Rows[i].Values)
		}
		vals := make([]relation.Value, 0, total)
		for i := lo; i < hi; i++ {
			t := rel.Rows[i]
			off := len(vals)
			vals = append(vals, t.Values...)
			out.Rows[i] = relation.Tuple{Values: vals[off:len(vals):len(vals)], Ann: t.Ann}
		}
	})
	return out
}

// AnnotateTuples returns a copy of rel in which every tuple's annotation is
// a fresh variable derived from spec — tuple-level instrumentation in the
// N[X] semiring.
func AnnotateTuples(rel *relation.Relation, spec VarSpec, names *polynomial.Names) (*relation.Relation, error) {
	out := rel.Clone()
	// Annotation polynomials are carved from relation-wide slabs: each row's
	// annotation is VarPoly(v), i.e. one monomial 1·v, so the whole column of
	// annotations needs just two allocations.
	n := len(out.Rows)
	monSlab := make([]polynomial.Monomial, n)
	termSlab := make([]polynomial.Term, n)
	var nameBuf []byte
	for ri := range out.Rows {
		b, err := spec.AppendVarName(nameBuf[:0], out, out.Rows[ri])
		if err != nil {
			return nil, err
		}
		nameBuf = b
		termSlab[ri] = polynomial.T(names.VarBytes(b))
		monSlab[ri] = polynomial.Monomial{Coef: 1, Terms: termSlab[ri : ri+1 : ri+1]}
		out.Rows[ri].Ann = polynomial.Polynomial{Mons: monSlab[ri : ri+1 : ri+1]}
	}
	return out, nil
}

// AnnotateTuplesN is AnnotateTuples using up to workers goroutines for the
// clone and the variable-name derivation; interning stays sequential in row
// order, so the instrumented relation is bit-identical to the sequential
// path for any worker count.
func AnnotateTuplesN(rel *relation.Relation, spec VarSpec, names *polynomial.Names, workers int) (*relation.Relation, error) {
	if parallel.Normalize(workers) <= 1 {
		return AnnotateTuples(rel, spec, names)
	}
	out := cloneRelationN(rel, workers)
	n := len(out.Rows)
	// Names render into per-shard byte slabs (windows in nameBytes; an
	// append that moves a slab leaves earlier windows pointing into the old
	// backing, which is never rewritten). Interning and annotation stay
	// sequential, carving from the same slabs AnnotateTuples uses.
	nameBytes := make([][]byte, n)
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, n, func(shard, lo, hi int) {
		var slab []byte
		for ri := lo; ri < hi; ri++ {
			off := len(slab)
			b, err := spec.AppendVarName(slab, out, out.Rows[ri])
			if err != nil {
				errs[shard] = parallel.RowErr{Err: err, Row: ri}
				return
			}
			slab = b
			nameBytes[ri] = slab[off:len(slab):len(slab)]
		}
	})
	firstBad := parallel.FirstRowErr(errs)
	limit := n
	if firstBad.Err != nil {
		limit = firstBad.Row
	}
	monSlab := make([]polynomial.Monomial, limit)
	termSlab := make([]polynomial.Term, limit)
	for ri := 0; ri < limit; ri++ {
		termSlab[ri] = polynomial.T(names.VarBytes(nameBytes[ri]))
		monSlab[ri] = polynomial.Monomial{Coef: 1, Terms: termSlab[ri : ri+1 : ri+1]}
		out.Rows[ri].Ann = polynomial.Polynomial{Mons: monSlab[ri : ri+1 : ri+1]}
	}
	if firstBad.Err != nil {
		return nil, firstBad.Err
	}
	return out, nil
}

// Capture runs a SQL query over the catalog and extracts its provenance
// polynomials: one polynomial per output row, read from valueCol (or, if
// valueCol is empty, the unique symbolic column); the group key is the
// concatenation of the remaining column values. The returned Set shares
// names.
func Capture(query string, cat engine.Catalog, names *polynomial.Names, valueCol string) (*polynomial.Set, error) {
	return CaptureN(query, cat, names, valueCol, 1)
}

// CaptureN is Capture using up to workers goroutines: the query executes
// through the engine's partition-parallel path (sql.RunN) and the result
// polynomials are collected across the pool (FromRelationN). The captured
// set is bit-identical to the sequential one for any worker count.
func CaptureN(query string, cat engine.Catalog, names *polynomial.Names, valueCol string, workers int) (*polynomial.Set, error) {
	out, err := sql.RunN(query, cat, workers)
	if err != nil {
		return nil, err
	}
	return FromRelationN(out, names, valueCol, workers)
}

// FromRelation extracts a polynomial Set from a materialized query result.
func FromRelation(out *relation.Relation, names *polynomial.Names, valueCol string) (*polynomial.Set, error) {
	valIdx, err := resolveValueCol(out, valueCol)
	if err != nil {
		return nil, err
	}
	return fromRelationAt(out, names, valIdx)
}

// FromRelationN is FromRelation sharding the per-row group-key rendering
// and polynomial extraction over up to workers goroutines; the set is
// assembled sequentially in row order, so it is identical to FromRelation's.
func FromRelationN(out *relation.Relation, names *polynomial.Names, valueCol string, workers int) (*polynomial.Set, error) {
	valIdx, err := resolveValueCol(out, valueCol)
	if err != nil {
		return nil, err
	}
	// sinkRows renders across the pool and commits in row order; the
	// partially filled set is discarded on error, so the observable
	// behavior matches the sequential path exactly.
	set := polynomial.NewSet(names)
	if err := sinkRows(out.Rows, workers, valIdx, captureRow, set); err != nil {
		return nil, err
	}
	return set, nil
}

// resolveValueCol finds the polynomial column: by name if given, otherwise
// the unique symbolic column.
func resolveValueCol(out *relation.Relation, valueCol string) (int, error) {
	return resolveValueColIn(out.Schema, out.Rows, valueCol)
}

// resolveValueColIn is resolveValueCol over an explicit schema and row
// sample — shared with the streaming capture path, which resolves from
// its first buffered batch instead of a materialized relation.
func resolveValueColIn(schema *relation.Schema, rows []relation.Tuple, valueCol string) (int, error) {
	if valueCol != "" {
		return schema.Index(valueCol)
	}
	valIdx := -1
	for i := range schema.Cols {
		isPoly := false
		for _, row := range rows {
			if row.Values[i].Kind == relation.KindPoly {
				isPoly = true
				break
			}
		}
		if isPoly {
			if valIdx >= 0 {
				return 0, fmt.Errorf("provenance: multiple symbolic columns; specify one")
			}
			valIdx = i
		}
	}
	if valIdx < 0 {
		return 0, fmt.Errorf("provenance: no symbolic column in result")
	}
	return valIdx, nil
}

// captureRow renders one result row into its group key (the non-value
// column values joined by "|", appended to buf) and its provenance
// polynomial. The returned bytes alias buf; the caller materializes the
// key string only when handing it to a sink that retains it.
func captureRow(row relation.Tuple, valIdx int, buf []byte) ([]byte, polynomial.Polynomial, error) {
	first := true
	for i, v := range row.Values {
		if i == valIdx {
			continue
		}
		if !first {
			buf = append(buf, '|')
		}
		first = false
		buf = v.AppendString(buf)
	}
	p, ok := row.Values[valIdx].AsPoly()
	if !ok {
		return buf, polynomial.Polynomial{}, fmt.Errorf("provenance: value column holds non-numeric %s", row.Values[valIdx].Kind)
	}
	return buf, p, nil
}

func fromRelationAt(out *relation.Relation, names *polynomial.Names, valIdx int) (*polynomial.Set, error) {
	set := polynomial.NewSet(names)
	var buf []byte
	for _, row := range out.Rows {
		b, p, err := captureRow(row, valIdx, buf[:0])
		if err != nil {
			return nil, err
		}
		buf = b
		//cobra:hotalloc the set retains the key: one string per captured row is the data itself
		if err := set.Add(string(b), p); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Concretize evaluates every symbolic cell of every relation under the
// assignment, yielding a concrete catalog — "replacing the variables with
// the corresponding values in the input" so the query can be re-executed.
// Tuple-level annotations are left untouched.
func Concretize(cat engine.Catalog, a *valuation.Assignment) engine.Catalog {
	out := make(engine.Catalog, len(cat))
	//cobra:deterministic map-to-map transform keyed by relation name; visit order cannot reach the result
	for name, rel := range cat {
		c := rel.Clone()
		for ri := range c.Rows {
			for vi, v := range c.Rows[ri].Values {
				if v.Kind == relation.KindPoly {
					c.Rows[ri].Values[vi] = relation.Float(v.P.Eval(a.Get))
				}
			}
		}
		out[name] = c
	}
	return out
}

// CommutationReport compares the two sides of the commutation square.
type CommutationReport struct {
	Groups   int
	Accuracy valuation.Accuracy
	// MissingGroups counts result groups present on one side only (should
	// be zero for the multiplicative instrumentation used here).
	MissingGroups int
}

// Ok reports commutation within eps relative error.
func (r CommutationReport) Ok(eps float64) bool {
	return r.MissingGroups == 0 && r.Accuracy.Exact(eps)
}

// CheckCommutation verifies the paper's correctness guarantee on a concrete
// instance: evaluating the captured provenance under the assignment equals
// re-running the query over the concretized database.
func CheckCommutation(query string, cat engine.Catalog, names *polynomial.Names, valueCol string, a *valuation.Assignment) (CommutationReport, error) {
	symOut, err := sql.Run(query, cat)
	if err != nil {
		return CommutationReport{}, err
	}
	valIdx, err := resolveValueCol(symOut, valueCol)
	if err != nil {
		return CommutationReport{}, err
	}
	set, err := fromRelationAt(symOut, names, valIdx)
	if err != nil {
		return CommutationReport{}, err
	}
	polySide := make(map[string]float64, set.Len())
	for i, key := range set.Keys {
		polySide[key] = set.Polys[i].Eval(a.Get)
	}

	rerun, err := sql.Run(query, Concretize(cat, a))
	if err != nil {
		return CommutationReport{}, err
	}
	// After concretization the value column is numeric; extract positionally.
	rerunSet, err := fromRelationAt(rerun, names, valIdx)
	if err != nil {
		return CommutationReport{}, err
	}

	report := CommutationReport{Groups: len(polySide)}
	var full, comp []float64
	seen := make(map[string]bool)
	for i, key := range rerunSet.Keys {
		c, ok := rerunSet.Polys[i].IsConstant()
		if !ok {
			return report, fmt.Errorf("provenance: re-run result still symbolic for group %q", key)
		}
		pv, exists := polySide[key]
		if !exists {
			report.MissingGroups++
			continue
		}
		seen[key] = true
		full = append(full, c)
		comp = append(comp, pv)
	}
	//cobra:deterministic order-insensitive count of unmatched groups
	for key := range polySide {
		if !seen[key] {
			report.MissingGroups++
		}
	}
	report.Accuracy = valuation.CompareResults(full, comp)
	return report, nil
}
