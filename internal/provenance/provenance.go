// Package provenance instruments base data with symbolic variables and
// captures provenance polynomials from query results ("instrument the data
// with symbolic variables, either at the cell or tuple level", §1 of the
// paper). It also implements the commutation check: applying a valuation to
// captured provenance must equal re-executing the query on correspondingly
// modified data — the correctness guarantee that makes provenance-based
// hypothetical reasoning sound.
package provenance

import (
	"fmt"
	"strings"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
	"github.com/cobra-prov/cobra/internal/sql"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// VarSpec derives one provenance variable per row from a prefix and the
// row's values in the given columns: Prefix + values joined by "_". For the
// running example, {Prefix: "p_", Columns: ["Plan"]} and {Prefix: "m",
// Columns: ["Mo"]} turn the price cell 0.4 of (A, month 1) into the
// symbolic cell 0.4·p_A·m1.
type VarSpec struct {
	Prefix  string
	Columns []string
}

// VarName builds the variable name for a row (sanitized to the polynomial
// identifier alphabet). A leading digit/dot/colon in the assembled name is
// guarded with "_" so the name parses as an identifier.
func (s VarSpec) VarName(rel *relation.Relation, row relation.Tuple) (string, error) {
	parts := make([]string, 0, len(s.Columns))
	for _, col := range s.Columns {
		idx, err := rel.Schema.Index(col)
		if err != nil {
			return "", err
		}
		parts = append(parts, sanitize(row.Values[idx].String()))
	}
	name := s.Prefix + strings.Join(parts, "_")
	if name == "" {
		return "_", nil
	}
	if c := name[0]; c >= '0' && c <= '9' || c == '.' || c == ':' {
		name = "_" + name
	}
	return name, nil
}

// sanitize maps arbitrary value strings into the identifier alphabet
// (letters, digits, '_', '.', ':').
func sanitize(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == ':':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// ParameterizeColumn returns a copy of rel in which every cell of the target
// column is multiplied by the product of the variables derived from specs —
// cell-level instrumentation. The target column must be numeric.
func ParameterizeColumn(rel *relation.Relation, target string, specs []VarSpec, names *polynomial.Names) (*relation.Relation, error) {
	idx, err := rel.Schema.Index(target)
	if err != nil {
		return nil, err
	}
	out := rel.Clone()
	for ri := range out.Rows {
		row := &out.Rows[ri]
		v := row.Values[idx]
		if v.IsNull() {
			continue
		}
		base, ok := v.AsPoly()
		if !ok {
			return nil, fmt.Errorf("provenance: column %q of %s is not numeric (%s)", target, rel.Name, v.Kind)
		}
		terms := make([]polynomial.Term, 0, len(specs))
		for _, spec := range specs {
			name, err := spec.VarName(out, *row)
			if err != nil {
				return nil, err
			}
			terms = append(terms, polynomial.T(names.Var(name)))
		}
		factor := polynomial.New(polynomial.Mono(1, terms...))
		row.Values[idx] = relation.Poly(polynomial.Mul(base, factor))
	}
	return out, nil
}

// ParameterizeColumnN is ParameterizeColumn using up to workers goroutines.
// Variable-name derivation and the cell multiplications shard across the
// pool; interning stays sequential in row order, so the allocated Vars —
// and therefore every resulting polynomial — are bit-identical to the
// sequential path for any worker count.
func ParameterizeColumnN(rel *relation.Relation, target string, specs []VarSpec, names *polynomial.Names, workers int) (*relation.Relation, error) {
	if parallel.Normalize(workers) <= 1 {
		return ParameterizeColumn(rel, target, specs, names)
	}
	idx, err := rel.Schema.Index(target)
	if err != nil {
		return nil, err
	}
	out := cloneRelationN(rel, workers)
	n := len(out.Rows)

	// Phase 1: per-row base polynomials and variable-name strings.
	bases := make([]polynomial.Polynomial, n)
	varNames := make([][]string, n)
	skip := make([]bool, n)
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, n, func(shard, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			row := &out.Rows[ri]
			v := row.Values[idx]
			if v.IsNull() {
				skip[ri] = true
				continue
			}
			base, ok := v.AsPoly()
			if !ok {
				errs[shard] = parallel.RowErr{Err: fmt.Errorf("provenance: column %q of %s is not numeric (%s)", target, rel.Name, v.Kind), Row: ri}
				return
			}
			ns := make([]string, 0, len(specs))
			for _, spec := range specs {
				name, err := spec.VarName(out, *row)
				if err != nil {
					// Keep the prefix derived so far: the sequential
					// path interns it before hitting this error.
					varNames[ri] = ns
					errs[shard] = parallel.RowErr{Err: err, Row: ri}
					return
				}
				ns = append(ns, name)
			}
			bases[ri] = base
			varNames[ri] = ns
		}
	})

	// Phase 2: intern sequentially in row order — Var allocation order is
	// identical to the sequential path. An error aborts at the first
	// failing row, leaving earlier rows interned, exactly as sequentially.
	firstBad := parallel.FirstRowErr(errs)
	limit := n
	if firstBad.Err != nil {
		limit = firstBad.Row
	}
	terms := make([][]polynomial.Term, n)
	for ri := 0; ri < limit; ri++ {
		if skip[ri] {
			continue
		}
		ts := make([]polynomial.Term, len(varNames[ri]))
		for si, name := range varNames[ri] {
			ts[si] = polynomial.T(names.Var(name))
		}
		terms[ri] = ts
	}
	if firstBad.Err != nil {
		// The failing row's already-derived prefix (specs before the bad
		// one) is interned too, leaving names in the exact state the
		// sequential path leaves it in.
		for _, name := range varNames[firstBad.Row] {
			names.Var(name)
		}
		return nil, firstBad.Err
	}

	// Phase 3: multiply the cells in parallel (pure polynomial algebra).
	parallel.Chunks(workers, n, func(_, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			if skip[ri] {
				continue
			}
			factor := polynomial.New(polynomial.Mono(1, terms[ri]...))
			out.Rows[ri].Values[idx] = relation.Poly(polynomial.Mul(bases[ri], factor))
		}
	})
	return out, nil
}

// cloneRelationN deep-copies a relation, sharding the row copies.
func cloneRelationN(rel *relation.Relation, workers int) *relation.Relation {
	out := &relation.Relation{Name: rel.Name, Schema: rel.Schema, Rows: make([]relation.Tuple, len(rel.Rows))}
	parallel.Chunks(workers, len(rel.Rows), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Rows[i] = rel.Rows[i].Clone()
		}
	})
	return out
}

// AnnotateTuples returns a copy of rel in which every tuple's annotation is
// a fresh variable derived from spec — tuple-level instrumentation in the
// N[X] semiring.
func AnnotateTuples(rel *relation.Relation, spec VarSpec, names *polynomial.Names) (*relation.Relation, error) {
	out := rel.Clone()
	for ri := range out.Rows {
		name, err := spec.VarName(out, out.Rows[ri])
		if err != nil {
			return nil, err
		}
		out.Rows[ri].Ann = polynomial.VarPoly(names.Var(name))
	}
	return out, nil
}

// AnnotateTuplesN is AnnotateTuples using up to workers goroutines for the
// clone and the variable-name derivation; interning stays sequential in row
// order, so the instrumented relation is bit-identical to the sequential
// path for any worker count.
func AnnotateTuplesN(rel *relation.Relation, spec VarSpec, names *polynomial.Names, workers int) (*relation.Relation, error) {
	if parallel.Normalize(workers) <= 1 {
		return AnnotateTuples(rel, spec, names)
	}
	out := cloneRelationN(rel, workers)
	n := len(out.Rows)
	varNames := make([]string, n)
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, n, func(shard, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			name, err := spec.VarName(out, out.Rows[ri])
			if err != nil {
				errs[shard] = parallel.RowErr{Err: err, Row: ri}
				return
			}
			varNames[ri] = name
		}
	})
	firstBad := parallel.FirstRowErr(errs)
	limit := n
	if firstBad.Err != nil {
		limit = firstBad.Row
	}
	for ri := 0; ri < limit; ri++ {
		out.Rows[ri].Ann = polynomial.VarPoly(names.Var(varNames[ri]))
	}
	if firstBad.Err != nil {
		return nil, firstBad.Err
	}
	return out, nil
}

// Capture runs a SQL query over the catalog and extracts its provenance
// polynomials: one polynomial per output row, read from valueCol (or, if
// valueCol is empty, the unique symbolic column); the group key is the
// concatenation of the remaining column values. The returned Set shares
// names.
func Capture(query string, cat engine.Catalog, names *polynomial.Names, valueCol string) (*polynomial.Set, error) {
	return CaptureN(query, cat, names, valueCol, 1)
}

// CaptureN is Capture using up to workers goroutines: the query executes
// through the engine's partition-parallel path (sql.RunN) and the result
// polynomials are collected across the pool (FromRelationN). The captured
// set is bit-identical to the sequential one for any worker count.
func CaptureN(query string, cat engine.Catalog, names *polynomial.Names, valueCol string, workers int) (*polynomial.Set, error) {
	out, err := sql.RunN(query, cat, workers)
	if err != nil {
		return nil, err
	}
	return FromRelationN(out, names, valueCol, workers)
}

// FromRelation extracts a polynomial Set from a materialized query result.
func FromRelation(out *relation.Relation, names *polynomial.Names, valueCol string) (*polynomial.Set, error) {
	valIdx, err := resolveValueCol(out, valueCol)
	if err != nil {
		return nil, err
	}
	return fromRelationAt(out, names, valIdx)
}

// FromRelationN is FromRelation sharding the per-row group-key rendering
// and polynomial extraction over up to workers goroutines; the set is
// assembled sequentially in row order, so it is identical to FromRelation's.
func FromRelationN(out *relation.Relation, names *polynomial.Names, valueCol string, workers int) (*polynomial.Set, error) {
	valIdx, err := resolveValueCol(out, valueCol)
	if err != nil {
		return nil, err
	}
	// sinkRows renders across the pool and commits in row order; the
	// partially filled set is discarded on error, so the observable
	// behavior matches the sequential path exactly.
	set := polynomial.NewSet(names)
	if err := sinkRows(out.Rows, workers, valIdx, captureRow, set); err != nil {
		return nil, err
	}
	return set, nil
}

// resolveValueCol finds the polynomial column: by name if given, otherwise
// the unique symbolic column.
func resolveValueCol(out *relation.Relation, valueCol string) (int, error) {
	return resolveValueColIn(out.Schema, out.Rows, valueCol)
}

// resolveValueColIn is resolveValueCol over an explicit schema and row
// sample — shared with the streaming capture path, which resolves from
// its first buffered batch instead of a materialized relation.
func resolveValueColIn(schema *relation.Schema, rows []relation.Tuple, valueCol string) (int, error) {
	if valueCol != "" {
		return schema.Index(valueCol)
	}
	valIdx := -1
	for i := range schema.Cols {
		isPoly := false
		for _, row := range rows {
			if row.Values[i].Kind == relation.KindPoly {
				isPoly = true
				break
			}
		}
		if isPoly {
			if valIdx >= 0 {
				return 0, fmt.Errorf("provenance: multiple symbolic columns; specify one")
			}
			valIdx = i
		}
	}
	if valIdx < 0 {
		return 0, fmt.Errorf("provenance: no symbolic column in result")
	}
	return valIdx, nil
}

// captureRow renders one result row into its group key (the non-value
// column values joined by "|") and its provenance polynomial.
func captureRow(row relation.Tuple, valIdx int) (string, polynomial.Polynomial, error) {
	var keyParts []string
	for i, v := range row.Values {
		if i == valIdx {
			continue
		}
		keyParts = append(keyParts, v.String())
	}
	p, ok := row.Values[valIdx].AsPoly()
	if !ok {
		return "", polynomial.Polynomial{}, fmt.Errorf("provenance: value column holds non-numeric %s", row.Values[valIdx].Kind)
	}
	return strings.Join(keyParts, "|"), p, nil
}

func fromRelationAt(out *relation.Relation, names *polynomial.Names, valIdx int) (*polynomial.Set, error) {
	set := polynomial.NewSet(names)
	for _, row := range out.Rows {
		key, p, err := captureRow(row, valIdx)
		if err != nil {
			return nil, err
		}
		if err := set.Add(key, p); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Concretize evaluates every symbolic cell of every relation under the
// assignment, yielding a concrete catalog — "replacing the variables with
// the corresponding values in the input" so the query can be re-executed.
// Tuple-level annotations are left untouched.
func Concretize(cat engine.Catalog, a *valuation.Assignment) engine.Catalog {
	out := make(engine.Catalog, len(cat))
	//cobra:deterministic map-to-map transform keyed by relation name; visit order cannot reach the result
	for name, rel := range cat {
		c := rel.Clone()
		for ri := range c.Rows {
			for vi, v := range c.Rows[ri].Values {
				if v.Kind == relation.KindPoly {
					c.Rows[ri].Values[vi] = relation.Float(v.P.Eval(a.Get))
				}
			}
		}
		out[name] = c
	}
	return out
}

// CommutationReport compares the two sides of the commutation square.
type CommutationReport struct {
	Groups   int
	Accuracy valuation.Accuracy
	// MissingGroups counts result groups present on one side only (should
	// be zero for the multiplicative instrumentation used here).
	MissingGroups int
}

// Ok reports commutation within eps relative error.
func (r CommutationReport) Ok(eps float64) bool {
	return r.MissingGroups == 0 && r.Accuracy.Exact(eps)
}

// CheckCommutation verifies the paper's correctness guarantee on a concrete
// instance: evaluating the captured provenance under the assignment equals
// re-running the query over the concretized database.
func CheckCommutation(query string, cat engine.Catalog, names *polynomial.Names, valueCol string, a *valuation.Assignment) (CommutationReport, error) {
	symOut, err := sql.Run(query, cat)
	if err != nil {
		return CommutationReport{}, err
	}
	valIdx, err := resolveValueCol(symOut, valueCol)
	if err != nil {
		return CommutationReport{}, err
	}
	set, err := fromRelationAt(symOut, names, valIdx)
	if err != nil {
		return CommutationReport{}, err
	}
	polySide := make(map[string]float64, set.Len())
	for i, key := range set.Keys {
		polySide[key] = set.Polys[i].Eval(a.Get)
	}

	rerun, err := sql.Run(query, Concretize(cat, a))
	if err != nil {
		return CommutationReport{}, err
	}
	// After concretization the value column is numeric; extract positionally.
	rerunSet, err := fromRelationAt(rerun, names, valIdx)
	if err != nil {
		return CommutationReport{}, err
	}

	report := CommutationReport{Groups: len(polySide)}
	var full, comp []float64
	seen := make(map[string]bool)
	for i, key := range rerunSet.Keys {
		c, ok := rerunSet.Polys[i].IsConstant()
		if !ok {
			return report, fmt.Errorf("provenance: re-run result still symbolic for group %q", key)
		}
		pv, exists := polySide[key]
		if !exists {
			report.MissingGroups++
			continue
		}
		seen[key] = true
		full = append(full, c)
		comp = append(comp, pv)
	}
	//cobra:deterministic order-insensitive count of unmatched groups
	for key := range polySide {
		if !seen[key] {
			report.MissingGroups++
		}
	}
	report.Accuracy = valuation.CompareResults(full, comp)
	return report, nil
}
