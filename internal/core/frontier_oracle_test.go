package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// randForestTree grows a random tree of 3-7 nodes under the given root
// name, mirroring randInstance's shape.
func randForestTree(r *rand.Rand, names *polynomial.Names, prefix string) *abstraction.Tree {
	tree := abstraction.NewTree(prefix, names)
	ids := []abstraction.NodeID{tree.Root()}
	n := 2 + r.Intn(5)
	for i := 0; i < n; i++ {
		parent := ids[r.Intn(len(ids))]
		ids = append(ids, tree.MustAddChild(parent, fmt.Sprintf("%s_n%d", prefix, i)))
	}
	return tree
}

// randPartitionedInstance builds a random forest of 1-3 small trees over
// disjoint variables and a polynomial set in which every monomial contains
// a leaf of at most ONE tree — the condition under which the forest
// frontier's knapsack composition is exact.
func randPartitionedInstance(r *rand.Rand) (*polynomial.Set, abstraction.Forest) {
	names := polynomial.NewNames()
	forest := make(abstraction.Forest, 1+r.Intn(3))
	for i := range forest {
		forest[i] = randForestTree(r, names, fmt.Sprintf("T%d", i))
	}
	ctx := names.Vars("c0", "c1", "c2")
	set := polynomial.NewSet(names)
	groups := 1 + r.Intn(3)
	for g := 0; g < groups; g++ {
		var b polynomial.Builder
		mons := 1 + r.Intn(12)
		for m := 0; m < mons; m++ {
			coef := float64(1 + r.Intn(9))
			var terms []polynomial.Term
			if r.Intn(4) > 0 { // 75%: include one leaf of one tree
				leaves := forest[r.Intn(len(forest))].LeafVars()
				terms = append(terms, polynomial.TExp(leaves[r.Intn(len(leaves))], int32(1+r.Intn(2))))
			}
			for _, c := range ctx {
				if r.Intn(3) == 0 {
					terms = append(terms, polynomial.T(c))
				}
			}
			b.Add(coef, terms...)
		}
		set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	return set, forest
}

// bruteForestMinima enumerates EVERY combination of cuts across the forest
// and returns, per total cut-node count k, the minimal materialized
// compressed size — the trusted oracle the frontier must match exactly.
func bruteForestMinima(t *testing.T, set *polynomial.Set, forest abstraction.Forest) map[int]int {
	t.Helper()
	perTree := make([][]abstraction.Cut, len(forest))
	total := 1
	for i, tr := range forest {
		tr.EnumerateCuts(func(c abstraction.Cut) bool {
			perTree[i] = append(perTree[i], c)
			return true
		})
		total *= len(perTree[i])
		if total > 500_000 {
			t.Fatalf("instance too large for the brute-force oracle (%d combos)", total)
		}
	}
	minByK := map[int]int{}
	combo := make([]abstraction.Cut, len(forest))
	var rec func(i, k int)
	rec = func(i, k int) {
		if i == len(forest) {
			size := abstraction.Apply(set, combo...).Size()
			if cur, ok := minByK[k]; !ok || size < cur {
				minByK[k] = size
			}
			return
		}
		for _, c := range perTree[i] {
			combo[i] = c
			rec(i+1, k+c.NumVars())
		}
	}
	rec(0, 0)
	return minByK
}

// checkForestCurveAgainstOracle asserts the curve reports exactly the
// oracle's per-k minima and that every reconstructed cut combination is
// valid and attains its stated size when actually applied.
func checkForestCurveAgainstOracle(t *testing.T, ctx string, set *polynomial.Set, forest abstraction.Forest, points []ForestFrontierPoint, minByK map[int]int) {
	t.Helper()
	if len(points) != len(minByK) {
		t.Fatalf("%s: frontier has %d points, oracle %d", ctx, len(points), len(minByK))
	}
	for _, p := range points {
		want, ok := minByK[p.NumMeta]
		if !ok || want != p.MinSize {
			t.Fatalf("%s k=%d: frontier %d, oracle %d (present=%v)", ctx, p.NumMeta, p.MinSize, want, ok)
		}
		if len(p.Cuts) != len(forest) {
			t.Fatalf("%s k=%d: %d cuts for %d trees", ctx, p.NumMeta, len(p.Cuts), len(forest))
		}
		k := 0
		for i, c := range p.Cuts {
			if c.Tree != forest[i] {
				t.Fatalf("%s k=%d: cut %d belongs to the wrong tree", ctx, p.NumMeta, i)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("%s k=%d: invalid cut %d: %v", ctx, p.NumMeta, i, err)
			}
			k += c.NumVars()
		}
		if k != p.NumMeta {
			t.Fatalf("%s: point k=%d but cuts define %d nodes", ctx, p.NumMeta, k)
		}
		if got := abstraction.Apply(set, p.Cuts...).Size(); got != p.MinSize {
			t.Fatalf("%s k=%d: applied %d != MinSize %d", ctx, p.NumMeta, got, p.MinSize)
		}
	}
}

func TestFrontierForestBruteForceOracle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		set, forest := randPartitionedInstance(r)
		points, err := FrontierForestSource(set, forest, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		minByK := bruteForestMinima(t, set, forest)
		checkForestCurveAgainstOracle(t, fmt.Sprintf("trial %d", trial), set, forest, points, minByK)

		// A single-tree forest must agree with the single-tree frontier.
		if len(forest) == 1 {
			fr, err := Frontier(set, forest[0])
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if len(fr) != len(points) {
				t.Fatalf("trial %d: single-tree %d points vs forest %d", trial, len(fr), len(points))
			}
			for i := range fr {
				if fr[i].NumMeta != points[i].NumMeta || fr[i].MinSize != points[i].MinSize || !fr[i].Cut.Equal(points[i].Cuts[0]) {
					t.Fatalf("trial %d point %d: single %+v vs forest %+v", trial, i, fr[i], points[i])
				}
			}
		}
	}
}

// TestFrontierForestShardedOracle replays the oracle against sharded
// (spill-to-disk) sources: the curve must be bit-identical to the
// in-memory one — which the oracle already vouches for.
func TestFrontierForestShardedOracle(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		set, forest := randPartitionedInstance(r)
		want, err := FrontierForestSource(set, forest, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		minByK := bruteForestMinima(t, set, forest)
		budget := set.Size() / 4
		if budget < 2 {
			budget = 2
		}
		ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: budget})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := FrontierForestSource(ss, forest, 1)
		if err != nil {
			ss.Close()
			t.Fatalf("trial %d: sharded frontier: %v", trial, err)
		}
		checkForestCurveAgainstOracle(t, fmt.Sprintf("trial %d (sharded)", trial), set, forest, got, minByK)
		if len(got) != len(want) {
			t.Fatalf("trial %d: sharded %d points vs in-memory %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i].NumMeta != got[i].NumMeta || want[i].MinSize != got[i].MinSize {
				t.Fatalf("trial %d point %d: sharded %+v vs in-memory %+v", trial, i, got[i], want[i])
			}
			for j := range want[i].Cuts {
				if !want[i].Cuts[j].Equal(got[i].Cuts[j]) {
					t.Fatalf("trial %d point %d: cut %d differs", trial, i, j)
				}
			}
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}
	}
}

// TestFrontierSweepAgreesWithDPForEverySweptBound is the per-bound
// property: for a single tree, every sweep answer — result, statistics,
// and error — must be exactly what per-bound compression returns.
func TestFrontierSweepAgreesWithDPForEverySweptBound(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		set, tree := randInstance(r)
		bounds := []int{-2, -1}
		for b := 0; b <= set.Size()+2; b++ {
			bounds = append(bounds, b)
		}
		answers, err := FrontierSweep(set, abstraction.Forest{tree}, bounds, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(answers) != len(bounds) {
			t.Fatalf("trial %d: %d answers for %d bounds", trial, len(answers), len(bounds))
		}
		for i, a := range answers {
			bound := bounds[i]
			if a.Bound != bound {
				t.Fatalf("trial %d: answer %d echoes bound %d", trial, i, a.Bound)
			}
			want, wantErr := DPSingleTree(set, tree, bound)
			if (a.Err == nil) != (wantErr == nil) {
				t.Fatalf("trial %d bound %d: sweep err=%v, dp err=%v", trial, bound, a.Err, wantErr)
			}
			if wantErr != nil {
				if a.Err.Error() != wantErr.Error() {
					t.Fatalf("trial %d bound %d: errors differ:\nsweep %q\n   dp %q", trial, bound, a.Err, wantErr)
				}
				if a.Result != nil {
					t.Fatalf("trial %d bound %d: answer carries both Result and Err", trial, bound)
				}
				continue
			}
			equalResults(t, fmt.Sprintf("trial %d bound %d", trial, bound), want, a.Result)
		}
	}
}

// TestFrontierSweepForestMatchesExhaustive checks forest sweep answers
// against the exhaustive forest oracle: on partitioned instances the sweep
// must return exact optima (maximal total cut nodes, ties toward smaller
// size) for every bound, in-memory and sharded alike.
func TestFrontierSweepForestMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		set, forest := randPartitionedInstance(r)
		if len(forest) == 1 {
			continue // single-tree answers are pinned to the DP above
		}
		var bounds []int
		for b := 0; b <= set.Size()+2; b++ {
			bounds = append(bounds, b)
		}
		budget := set.Size() / 4
		if budget < 2 {
			budget = 2
		}
		ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: budget})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		inMem, err := FrontierSweepSource(set, forest, bounds, 1)
		if err != nil {
			ss.Close()
			t.Fatalf("trial %d: %v", trial, err)
		}
		sharded, err := FrontierSweepSource(ss, forest, bounds, 1)
		if err != nil {
			ss.Close()
			t.Fatalf("trial %d: sharded sweep: %v", trial, err)
		}
		for i, a := range inMem {
			bound := bounds[i]
			ex, exErr := ExhaustiveForest(set, forest, bound)
			if (a.Err == nil) != (exErr == nil) {
				t.Fatalf("trial %d bound %d: sweep err=%v, exhaustive err=%v", trial, bound, a.Err, exErr)
			}
			if exErr != nil {
				var se, ee *InfeasibleError
				if !errors.As(a.Err, &se) || !errors.As(exErr, &ee) {
					t.Fatalf("trial %d bound %d: want InfeasibleError on both, got %v / %v", trial, bound, a.Err, exErr)
				}
				if se.MinAchievable != ee.MinAchievable {
					t.Fatalf("trial %d bound %d: MinAchievable sweep %d != exhaustive %d", trial, bound, se.MinAchievable, ee.MinAchievable)
				}
			} else {
				if a.Result.NumMeta != ex.NumMeta || a.Result.Size != ex.Size {
					t.Fatalf("trial %d bound %d: sweep (vars=%d,size=%d) != exhaustive (vars=%d,size=%d)",
						trial, bound, a.Result.NumMeta, a.Result.Size, ex.NumMeta, ex.Size)
				}
				if applied := abstraction.Apply(set, a.Result.Cuts...).Size(); applied != a.Result.Size {
					t.Fatalf("trial %d bound %d: sweep size %d != applied %d", trial, bound, a.Result.Size, applied)
				}
			}
			// Sharded answers must be bit-identical to in-memory ones.
			sh := sharded[i]
			if (a.Err == nil) != (sh.Err == nil) {
				t.Fatalf("trial %d bound %d: sharded feasibility differs", trial, bound)
			}
			if a.Err != nil {
				if a.Err.Error() != sh.Err.Error() {
					t.Fatalf("trial %d bound %d: sharded error differs", trial, bound)
				}
				continue
			}
			equalResults(t, fmt.Sprintf("trial %d bound %d (sharded)", trial, bound), a.Result, sh.Result)
		}
		if err := ss.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}
	}
}

func TestFrontierForestCrossTreeErrorDeterministic(t *testing.T) {
	// A large partitioned set with one coupling monomial far into the
	// scan: every worker count must report the same first offender.
	names := polynomial.NewNames()
	t1, err := abstraction.FromPaths("A", names, []string{"a1"}, []string{"a2"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := abstraction.FromPaths("B", names, []string{"b1"}, []string{"b2"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := make([]polynomial.Var, 8)
	for i := range ctx {
		ctx[i] = names.Var(fmt.Sprintf("x%d", i))
	}
	a1, _ := names.Lookup("a1")
	b1, _ := names.Lookup("b1")
	set := polynomial.NewSet(names)
	var b polynomial.Builder
	for m := 0; m < 6000; m++ {
		b.Add(float64(m+1), polynomial.T(a1), polynomial.T(ctx[m%len(ctx)]))
	}
	b.Add(2.5, polynomial.T(a1), polynomial.T(b1)) // couples trees A and B
	set.Add("g", b.Polynomial())
	forest := abstraction.Forest{t1, t2}

	var want string
	for _, w := range []int{1, 2, 8} {
		_, err := FrontierForestSource(set, forest, w)
		var ce *CrossTreeError
		if !errors.As(err, &ce) {
			t.Fatalf("workers %d: want CrossTreeError, got %v", w, err)
		}
		if ce.TreeA != 0 || ce.TreeB != 1 {
			t.Fatalf("workers %d: trees %d/%d, want 0/1", w, ce.TreeA, ce.TreeB)
		}
		if w == 1 {
			want = err.Error()
			continue
		}
		if got := err.Error(); got != want {
			t.Fatalf("workers %d: error differs:\n got %q\nwant %q", w, got, want)
		}
	}
	// The sweep surfaces the coupling as a hard error, not per-bound.
	var ce *CrossTreeError
	if _, err := FrontierSweepSource(set, forest, []int{3, 5}, 1); !errors.As(err, &ce) {
		t.Fatalf("sweep: want CrossTreeError, got %v", err)
	}
}

func TestFrontierForestMultiVarError(t *testing.T) {
	// Two leaves of the SAME tree in one monomial: the partition scan must
	// report the single-tree DP's own MultiVarError, not a CrossTreeError.
	names := polynomial.NewNames()
	t1, _ := abstraction.FromPaths("A", names, []string{"a1"}, []string{"a2"})
	t2, _ := abstraction.FromPaths("B", names, []string{"b1"}, []string{"b2"})
	set := polynomial.NewSet(names)
	set.Add("g", polynomial.MustParse("3*a1*a2", names))
	var mv *MultiVarError
	if _, err := FrontierForestSource(set, abstraction.Forest{t1, t2}, 1); !errors.As(err, &mv) {
		t.Fatalf("want MultiVarError, got %v", err)
	}
}

func TestFrontierCutInvalidFailpoint(t *testing.T) {
	defer func() { testFrontierCutNodes = nil }()
	testFrontierCutNodes = func(_ *abstraction.Tree, k int, nodes []abstraction.NodeID) []abstraction.NodeID {
		if k == 1 {
			return nil // corrupt the root cut into an empty (invalid) one
		}
		return nodes
	}

	set, tree := figure2(t)
	if _, err := Frontier(set, tree); err == nil || !strings.Contains(err.Error(), "frontier cut invalid at k=1") {
		t.Fatalf("Frontier: want invalid-cut error, got %v", err)
	}
	if _, err := FrontierSweep(set, abstraction.Forest{tree}, []int{6}, 1); err == nil || !strings.Contains(err.Error(), "frontier cut invalid at k=1") {
		t.Fatalf("FrontierSweep: want invalid-cut error, got %v", err)
	}

	// The forest composition reconstructs through the same guard.
	names := polynomial.NewNames()
	t1, _ := abstraction.FromPaths("A", names, []string{"a1"}, []string{"a2"})
	t2, _ := abstraction.FromPaths("B", names, []string{"b1"}, []string{"b2"})
	fset := polynomial.NewSet(names)
	fset.Add("g", polynomial.MustParse("1*a1 + 2*a2 + 3*b1 + 4*b2", names))
	if _, err := FrontierForestSource(fset, abstraction.Forest{t1, t2}, 1); err == nil || !strings.Contains(err.Error(), "frontier cut invalid at k=1") {
		t.Fatalf("FrontierForest: want invalid-cut error, got %v", err)
	}
}

func TestBestForBoundTieBreak(t *testing.T) {
	// Caller-assembled lists may carry several points with the same k; the
	// pick must be the smallest MinSize among the maximal feasible k.
	pts := []FrontierPoint{
		{NumMeta: 2, MinSize: 3},
		{NumMeta: 3, MinSize: 8},
		{NumMeta: 3, MinSize: 6},
		{NumMeta: 3, MinSize: 7},
		{NumMeta: 4, MinSize: 11},
	}
	p, ok := BestForBound(pts, 9)
	if !ok || p.NumMeta != 3 || p.MinSize != 6 {
		t.Fatalf("got (%d, %d), want (3, 6)", p.NumMeta, p.MinSize)
	}
	if p, ok = BestForBound(pts, 11); !ok || p.NumMeta != 4 {
		t.Fatalf("bound 11: got (%d, %d)", p.NumMeta, p.MinSize)
	}
	if _, ok = BestForBound(pts, 2); ok {
		t.Fatal("bound 2 should fit nothing")
	}

	fpts := []ForestFrontierPoint{
		{NumMeta: 3, MinSize: 9},
		{NumMeta: 3, MinSize: 5},
		{NumMeta: 5, MinSize: 20},
	}
	fp, ok := BestForForestBound(fpts, 10)
	if !ok || fp.NumMeta != 3 || fp.MinSize != 5 {
		t.Fatalf("forest: got (%d, %d), want (3, 5)", fp.NumMeta, fp.MinSize)
	}
	if _, ok = BestForForestBound(nil, 100); ok {
		t.Fatal("empty forest curve should report no point")
	}
}

func TestFrontierSweepEmptyAndNoTrees(t *testing.T) {
	set, tree := figure2(t)
	if _, err := FrontierSweep(set, nil, []int{5}, 1); err == nil {
		t.Fatal("sweep with no trees should error")
	}
	answers, err := FrontierSweep(set, abstraction.Forest{tree}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Fatalf("empty bounds: %d answers", len(answers))
	}
}
