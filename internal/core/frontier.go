package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// FrontierPoint is one point of the expressiveness/size tradeoff: the
// minimal compressed size achievable with exactly NumMeta meta-variables,
// and a cut attaining it.
type FrontierPoint struct {
	NumMeta int
	MinSize int
	Cut     abstraction.Cut
}

// Frontier computes the complete tradeoff curve for a single tree in one DP
// run: for every structurally feasible number of cut nodes k, the minimal
// compressed size and an optimal cut. It is what the demo's bound slider
// explores — given the frontier, the optimum for ANY bound is a lookup
// (the largest k whose MinSize fits).
//
// Points are returned in increasing k; k values with no valid cut (e.g.
// k=2 when the root has three children) are omitted. MinSize is
// non-increasing as k decreases only in the aggregate sense — the curve
// reports exact per-k minima.
func Frontier(set *polynomial.Set, tree *abstraction.Tree) ([]FrontierPoint, error) {
	return FrontierN(set, tree, 1)
}

// FrontierN is Frontier with the signature-indexing pass sharded over up to
// workers goroutines; the curve is identical for every worker count.
func FrontierN(set *polynomial.Set, tree *abstraction.Tree, workers int) ([]FrontierPoint, error) {
	idx, err := buildIndexSource(set, tree, workers)
	if err != nil {
		return nil, err
	}
	st, err := solveDP(tree, idx)
	if err != nil {
		return nil, err
	}
	root := tree.Root()
	rootRow := st.best[root]
	var out []FrontierPoint
	for k := 1; k <= len(rootRow); k++ {
		if rootRow[k-1] >= inf {
			continue
		}
		nodes := make([]abstraction.NodeID, 0, k)
		reconstruct(tree, st, root, k, &nodes)
		cut, err := abstraction.NewCut(tree, nodes...)
		if err != nil {
			return nil, fmt.Errorf("core: internal error, frontier cut invalid at k=%d: %w", k, err)
		}
		out = append(out, FrontierPoint{
			NumMeta: k,
			MinSize: int(rootRow[k-1]) + idx.fixed,
			Cut:     cut,
		})
	}
	return out, nil
}

// BestForBound picks the frontier point the optimizer would return for the
// bound: the maximal k with MinSize <= bound. ok is false if no point fits.
func BestForBound(frontier []FrontierPoint, bound int) (FrontierPoint, bool) {
	for i := len(frontier) - 1; i >= 0; i-- {
		if frontier[i].MinSize <= bound {
			return frontier[i], true
		}
	}
	return FrontierPoint{}, false
}
