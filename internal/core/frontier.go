package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// FrontierPoint is one point of the expressiveness/size tradeoff: the
// minimal compressed size achievable with exactly NumMeta meta-variables,
// and a cut attaining it.
type FrontierPoint struct {
	NumMeta int
	MinSize int
	Cut     abstraction.Cut
}

// Frontier computes the complete tradeoff curve for a single tree in one DP
// run: for every structurally feasible number of cut nodes k, the minimal
// compressed size and an optimal cut. It is what the demo's bound slider
// explores — given the frontier, the optimum for ANY bound is a lookup
// (the largest k whose MinSize fits), which is how FrontierSweep answers a
// whole batch of bounds from one DP run.
//
// Points are returned in increasing k; k values with no valid cut (e.g.
// k=2 when the root has three children) are omitted. MinSize is
// non-increasing as k decreases only in the aggregate sense — the curve
// reports exact per-k minima.
func Frontier(set *polynomial.Set, tree *abstraction.Tree) ([]FrontierPoint, error) {
	return FrontierSourceN(set, tree, 1)
}

// FrontierN is Frontier with the signature-indexing pass sharded over up to
// workers goroutines; the curve is identical for every worker count.
func FrontierN(set *polynomial.Set, tree *abstraction.Tree, workers int) ([]FrontierPoint, error) {
	return FrontierSourceN(set, tree, workers)
}

// FrontierSourceN is the one frontier implementation behind Frontier and
// FrontierN: the signature index is built shard-at-a-time over any
// SetSource — an in-memory Set or a spilling ShardedSet, whose peak
// residency stays within its MaxResidentMonomials budget — and the curve
// is extracted from a single DP run. The points are identical for every
// source representation and worker count.
func FrontierSourceN(src polynomial.SetSource, tree *abstraction.Tree, workers int) ([]FrontierPoint, error) {
	idx, err := buildIndexSource(src, tree, workers)
	if err != nil {
		return nil, err
	}
	st, err := solveDP(tree, idx)
	if err != nil {
		return nil, err
	}
	rootRow := st.best[tree.Root()]
	var out []FrontierPoint
	for k := 1; k <= len(rootRow); k++ {
		if rootRow[k-1] >= inf {
			continue
		}
		cut, err := reconstructCut(tree, st, k)
		if err != nil {
			return nil, err
		}
		out = append(out, FrontierPoint{
			NumMeta: k,
			MinSize: int(rootRow[k-1]) + idx.fixed,
			Cut:     cut,
		})
	}
	return out, nil
}

// testFrontierCutNodes, when non-nil, may rewrite the node set a frontier
// reconstruction produced before it is validated — a failpoint for
// exercising the invalid-cut error path, which is unreachable through the
// public API (the DP only reconstructs feasible k).
var testFrontierCutNodes func(tree *abstraction.Tree, k int, nodes []abstraction.NodeID) []abstraction.NodeID

// reconstructCut walks the DP choices for exactly k cut nodes below the
// root and validates the resulting cut.
func reconstructCut(tree *abstraction.Tree, st *dpState, k int) (abstraction.Cut, error) {
	nodes := make([]abstraction.NodeID, 0, k)
	reconstruct(tree, st, tree.Root(), k, &nodes)
	if testFrontierCutNodes != nil {
		nodes = testFrontierCutNodes(tree, k, nodes)
	}
	cut, err := abstraction.NewCut(tree, nodes...)
	if err != nil {
		return abstraction.Cut{}, fmt.Errorf("core: internal error, frontier cut invalid at k=%d: %w", k, err)
	}
	return cut, nil
}

// BestForBound picks the frontier point the optimizer would return for the
// bound: the maximal feasible number of meta-variables and, among points
// tied on that count, the smallest MinSize — the DP's own tie-breaking, so
// the choice is deterministic even over caller-assembled point lists. ok is
// false if no point fits.
func BestForBound(frontier []FrontierPoint, bound int) (FrontierPoint, bool) {
	best, ok := -1, false
	for i := range frontier {
		if frontier[i].MinSize > bound {
			continue
		}
		if !ok || frontier[i].NumMeta > frontier[best].NumMeta ||
			(frontier[i].NumMeta == frontier[best].NumMeta && frontier[i].MinSize < frontier[best].MinSize) {
			best, ok = i, true
		}
	}
	if !ok {
		return FrontierPoint{}, false
	}
	return frontier[best], true
}
