package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

func TestFrontierOnFigure2(t *testing.T) {
	set, tree := figure2(t)
	fr, err := Frontier(set, tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	// k=1 (root) must be present with size 4; k=2 is structurally
	// impossible (root has 3 children); k=11 (leaf cut) has size 14.
	byK := map[int]FrontierPoint{}
	for _, p := range fr {
		byK[p.NumMeta] = p
	}
	if p, ok := byK[1]; !ok || p.MinSize != 4 {
		t.Fatalf("k=1: %+v", byK[1])
	}
	if _, ok := byK[2]; ok {
		t.Fatal("k=2 should be structurally infeasible")
	}
	if p, ok := byK[11]; !ok || p.MinSize != 14 {
		t.Fatalf("k=11: %+v", byK[11])
	}
	// Every point's cut must validate, have the stated k, and its applied
	// size must equal MinSize.
	for _, p := range fr {
		if err := p.Cut.Validate(); err != nil {
			t.Fatalf("k=%d: invalid cut: %v", p.NumMeta, err)
		}
		if p.Cut.NumVars() != p.NumMeta {
			t.Fatalf("k=%d: cut has %d nodes", p.NumMeta, p.Cut.NumVars())
		}
		if got := abstraction.Apply(set, p.Cut).Size(); got != p.MinSize {
			t.Fatalf("k=%d: applied %d != MinSize %d", p.NumMeta, got, p.MinSize)
		}
	}
}

func TestFrontierMatchesDPForEveryBound(t *testing.T) {
	set, tree := figure2(t)
	fr, err := Frontier(set, tree)
	if err != nil {
		t.Fatal(err)
	}
	for bound := 0; bound <= set.Size()+2; bound++ {
		want, wantOK := BestForBound(fr, bound)
		res, dpErr := DPSingleTree(set, tree, bound)
		if wantOK != (dpErr == nil) {
			t.Fatalf("bound %d: frontier ok=%v, dp err=%v", bound, wantOK, dpErr)
		}
		if !wantOK {
			continue
		}
		if res.NumMeta != want.NumMeta || res.Size != want.MinSize {
			t.Fatalf("bound %d: DP (%d, %d) != frontier (%d, %d)",
				bound, res.NumMeta, res.Size, want.NumMeta, want.MinSize)
		}
	}
}

func TestFrontierRandomAgainstExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		set, tree := randInstance(r)
		fr, err := Frontier(set, tree)
		if err != nil {
			t.Fatal(err)
		}
		// Exhaustively compute the per-k minima.
		minByK := map[int]int{}
		idx, err := buildIndex(set, tree)
		if err != nil {
			t.Fatal(err)
		}
		tree.EnumerateCuts(func(c abstraction.Cut) bool {
			size := int(idx.cutSize(c))
			k := c.NumVars()
			if cur, ok := minByK[k]; !ok || size < cur {
				minByK[k] = size
			}
			return true
		})
		if len(fr) != len(minByK) {
			t.Fatalf("trial %d: frontier has %d points, exhaustive %d", trial, len(fr), len(minByK))
		}
		for _, p := range fr {
			if want, ok := minByK[p.NumMeta]; !ok || want != p.MinSize {
				t.Fatalf("trial %d k=%d: frontier %d, exhaustive %d", trial, p.NumMeta, p.MinSize, want)
			}
		}
	}
}

func TestBestForBoundEdge(t *testing.T) {
	if _, ok := BestForBound(nil, 100); ok {
		t.Fatal("empty frontier should report no point")
	}
}

func TestFrontierMultiVarError(t *testing.T) {
	set, tree := figure2(t)
	b1, _ := set.Names.Lookup("b1")
	b2, _ := set.Names.Lookup("b2")
	set.Add("bad", polynomial.New(polynomial.Mono(1, polynomial.T(b1), polynomial.T(b2))))
	var mv *MultiVarError
	if _, err := Frontier(set, tree); !errors.As(err, &mv) {
		t.Fatalf("want MultiVarError, got %v", err)
	}
}
