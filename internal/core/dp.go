package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// DPSingleTree computes the optimal abstraction for a single tree: among all
// cuts whose compressed size is at most bound, it returns one with the
// maximum number of cut nodes (meta-variables), breaking ties towards the
// smaller compressed size. It runs in O(L²) knapsack time (L = number of
// leaves) plus O(M·log) signature indexing (M = number of monomials).
//
// It returns *InfeasibleError if even the root cut exceeds bound, and
// *MultiVarError if a monomial contains two leaves of the tree.
func DPSingleTree(set *polynomial.Set, tree *abstraction.Tree, bound int) (*Result, error) {
	return DPSingleTreeN(set, tree, bound, 1)
}

// DPSingleTreeN is DPSingleTree with the signature-indexing pass (the
// dominant cost on large provenance) sharded over up to workers goroutines.
// The result is identical to DPSingleTree's for every worker count;
// workers <= 1 runs fully sequentially.
func DPSingleTreeN(set *polynomial.Set, tree *abstraction.Tree, bound int, workers int) (*Result, error) {
	return DPSingleTreeSource(set, tree, bound, workers)
}

// DPSingleTreeSource is the single DP implementation behind DPSingleTreeN
// and DPSingleTreeSharded: the signature index is built shard-at-a-time
// over any SetSource and the DP runs on it as usual. The result —
// including the input statistics, which come from the source's streaming
// metadata — is identical for every source representation and worker
// count.
func DPSingleTreeSource(src polynomial.SetSource, tree *abstraction.Tree, bound int, workers int) (*Result, error) {
	if bound < 0 {
		return nil, errNegativeBound(bound)
	}
	idx, err := buildIndexSource(src, tree, workers)
	if err != nil {
		return nil, err
	}
	r, err := dpChooseCut(tree, idx, bound)
	if err != nil {
		return nil, err
	}
	fillResultFrom(r, src.Size(), src.UsedVars())
	return r, nil
}

// errNegativeBound is the error every entry point returns for a negative
// bound — shared so sweep answers match per-bound compression exactly.
func errNegativeBound(bound int) error {
	return fmt.Errorf("core: negative bound %d", bound)
}

// dpState holds the per-node DP tables needed for reconstruction.
type dpState struct {
	// best[v][k-1] = minimal Σ distinct over subtree(v) using exactly k cut
	// nodes, k = 1..leaves(v).
	best [][]int64
	// splits[v][i][k] = number of cut nodes assigned to child i of v when
	// the prefix children 0..i jointly use k cut nodes (k ≥ i+1). Index 0
	// of the k dimension is unused padding.
	splits [][][]int32
	leaves []int
}

// dpChooseCut runs the DP and reconstruction on a finished index, leaving
// the input-set statistics (OriginalSize etc.) for the caller to fill —
// the sharded path computes them without materializing the set.
func dpChooseCut(tree *abstraction.Tree, idx *index, bound int) (*Result, error) {
	st, err := solveDP(tree, idx)
	if err != nil {
		return nil, err
	}

	root := tree.Root()
	rootRow := st.best[root]
	budget := int64(bound) - int64(idx.fixed)
	bestK := -1
	for k := len(rootRow); k >= 1; k-- {
		if rootRow[k-1] <= budget {
			bestK = k
			break
		}
	}
	if bestK < 0 {
		minSize := int(rootRow[0]) + idx.fixed
		return nil, &InfeasibleError{Bound: bound, MinAchievable: minSize}
	}

	nodes := make([]abstraction.NodeID, 0, bestK)
	reconstruct(tree, st, root, bestK, &nodes)
	cut, err := abstraction.NewCut(tree, nodes...)
	if err != nil {
		return nil, fmt.Errorf("core: internal error, DP produced invalid cut: %w", err)
	}
	return &Result{
		Cuts: []abstraction.Cut{cut},
		Size: int(rootRow[bestK-1]) + idx.fixed,
	}, nil
}

// solveDP fills the bottom-up tables; reconstruction reads them back.
func solveDP(tree *abstraction.Tree, idx *index) (*dpState, error) {
	st := &dpState{
		best:   make([][]int64, tree.Len()),
		splits: make([][][]int32, tree.Len()),
		leaves: leafCounts(tree),
	}

	for _, v := range tree.Postorder() {
		n := tree.Node(v)
		lv := st.leaves[v]
		row := make([]int64, lv)
		for i := range row {
			row[i] = inf
		}
		if len(n.Children) == 0 {
			row[0] = idx.distinct[v]
			st.best[v] = row
			continue
		}
		// Sequential knapsack over children: cur[k-1] = min cost of covering
		// the first i children's leaves with k cut nodes.
		nodeSplits := make([][]int32, len(n.Children))
		var cur []int64
		curLeaves := 0
		for ci, c := range n.Children {
			cl := st.leaves[c]
			child := st.best[c]
			if ci == 0 {
				cur = append([]int64(nil), child...)
				curLeaves = cl
				// splits for the first child: trivially k to child 0.
				sp := make([]int32, cl+1)
				for k := 1; k <= cl; k++ {
					sp[k] = int32(k)
				}
				nodeSplits[0] = sp
				continue
			}
			nextLeaves := curLeaves + cl
			next := make([]int64, nextLeaves)
			for i := range next {
				next[i] = inf
			}
			sp := make([]int32, nextLeaves+1)
			for ka := 1; ka <= curLeaves; ka++ {
				if cur[ka-1] >= inf {
					continue
				}
				for kb := 1; kb <= cl; kb++ {
					if child[kb-1] >= inf {
						continue
					}
					k := ka + kb
					cost := cur[ka-1] + child[kb-1]
					if cost < next[k-1] {
						next[k-1] = cost
						sp[k] = int32(kb)
					}
				}
			}
			nodeSplits[ci] = sp
			cur = next
			curLeaves = nextLeaves
		}
		// k = 1 means cutting at v itself; k ≥ #children comes from the
		// children combination. (For a single child, cutting at v and at the
		// child give the same distinct count, so preferring v is lossless.)
		copy(row, cur)
		row[0] = idx.distinct[v]
		st.best[v] = row
		st.splits[v] = nodeSplits
	}
	return st, nil
}

// reconstruct walks the DP choices, appending the chosen cut nodes.
func reconstruct(tree *abstraction.Tree, st *dpState, v abstraction.NodeID, k int, out *[]abstraction.NodeID) {
	n := tree.Node(v)
	if k == 1 || len(n.Children) == 0 {
		*out = append(*out, v)
		return
	}
	// Undo the sequential knapsack child by child, from last to first.
	for ci := len(n.Children) - 1; ci >= 1; ci-- {
		kb := int(st.splits[v][ci][k])
		reconstruct(tree, st, n.Children[ci], kb, out)
		k -= kb
	}
	reconstruct(tree, st, n.Children[0], k, out)
}
