// Package core implements COBRA's provenance-compression algorithms — the
// primary contribution of the paper. Given a multiset of provenance
// polynomials, an abstraction tree (or forest) over (a subset of) their
// variables, and a bound B on the number of monomials, it finds a cut of the
// tree that brings the provenance size below B while maximizing the number
// of distinct variables (the degrees of freedom left for hypothetical
// reasoning).
//
// For a single abstraction tree the problem is solved exactly in polynomial
// time by a bottom-up dynamic program (DPSingleTree), as described in §2 of
// the paper ("the algorithm traverses the abstraction tree in a bottom-up
// fashion, and using dynamic programming, computes an abstraction for the
// sub-tree rooted by each one of the inner nodes"). Exhaustive enumeration
// (Exhaustive) serves as a testing oracle, Greedy as a baseline for
// ablation, and ForestDescent extends the solution heuristically to
// multiple trees.
package core

import (
	"errors"
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// ErrInfeasible is wrapped by InfeasibleError; use errors.Is to test.
var ErrInfeasible = errors.New("core: bound not achievable by any abstraction")

// InfeasibleError reports that no cut of the tree(s) reaches the requested
// bound; MinAchievable is the smallest provenance size any abstraction can
// reach (the all-roots cut).
type InfeasibleError struct {
	Bound         int
	MinAchievable int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("core: bound %d not achievable; the coarsest abstraction still has %d monomials",
		e.Bound, e.MinAchievable)
}

func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// MultiVarError reports a monomial containing more than one leaf of the same
// abstraction tree, violating the single-tree assumption under which the DP
// is exact (§2: "a monomial may still consist of multiple variables, but the
// abstraction may apply to at most one of them").
type MultiVarError struct {
	Key  string // group key of the offending polynomial
	Mono string // rendering of the offending monomial
}

func (e *MultiVarError) Error() string {
	return fmt.Sprintf("core: monomial %q in group %q contains more than one variable of the same abstraction tree", e.Mono, e.Key)
}

// Problem is a compression instance.
type Problem struct {
	Set   *polynomial.Set
	Trees abstraction.Forest
	Bound int
	// Workers caps the number of goroutines the solver may use; <= 1 keeps
	// every code path sequential. Results are identical for every value —
	// parallelism only shards deterministic work (signature indexing,
	// cut application, speculative per-tree re-optimization).
	Workers int
}

// Result describes a chosen abstraction and its effect.
type Result struct {
	// Cuts holds one cut per tree, in Problem.Trees order.
	Cuts []abstraction.Cut
	// Size is the provenance size (total monomials) after applying Cuts.
	Size int
	// NumMeta is the total number of meta-variables the cuts define
	// (Σ |cut|) — the expressiveness the optimizer maximizes. Cut nodes
	// whose leaves never occur in the provenance still count: the
	// abstraction defines them as assignable names.
	NumMeta int
	// UsedMeta counts the cut nodes that actually occur in the compressed
	// provenance (at least one abstracted leaf appears in some monomial).
	UsedMeta int
	// OriginalSize and OriginalVars describe the input provenance.
	OriginalSize int
	OriginalVars int
}

// VarMapping returns the combined substitution of all cuts.
func (r *Result) VarMapping() map[polynomial.Var]polynomial.Var {
	m := make(map[polynomial.Var]polynomial.Var)
	for _, c := range r.Cuts {
		//cobra:deterministic map-to-map merge over disjoint keys; visit order cannot reach the result
		for from, to := range c.VarMapping() {
			m[from] = to
		}
	}
	return m
}

// Apply materializes the compressed provenance set.
func (r *Result) Apply(s *polynomial.Set) *polynomial.Set {
	return abstraction.Apply(s, r.Cuts...)
}

// CompressionRatio returns Size/OriginalSize.
func (r *Result) CompressionRatio() float64 {
	if r.OriginalSize == 0 {
		return 1
	}
	return float64(r.Size) / float64(r.OriginalSize)
}

// Compress solves the instance: exact DP for a single tree, coordinate
// descent for a forest.
func Compress(p Problem) (*Result, error) {
	return CompressSource(p.Set, p.Trees, p.Bound, p.Workers)
}

// CompressSource solves the instance over any SetSource — the single
// dispatch behind Compress (in-memory) and CompressSharded (out-of-core):
// exact DP for a single tree, coordinate descent for a forest.
func CompressSource(src polynomial.SetSource, trees abstraction.Forest, bound int, workers int) (*Result, error) {
	switch len(trees) {
	case 0:
		return nil, errors.New("core: no abstraction trees given")
	case 1:
		return DPSingleTreeSource(src, trees[0], bound, workers)
	default:
		return ForestDescentSource(src, trees, bound, 0, workers)
	}
}

const inf = int64(1) << 60

func fillResult(r *Result, set *polynomial.Set) {
	fillResultFrom(r, set.Size(), set.UsedVars())
}

// fillResultFrom fills the input-set statistics from a size and used-vars
// summary — all a Result needs from the input, whether it was materialized
// or streamed shard-at-a-time.
func fillResultFrom(r *Result, size int, used []polynomial.Var) {
	r.OriginalSize = size
	r.OriginalVars = len(used)
	r.NumMeta = 0
	for _, c := range r.Cuts {
		r.NumMeta += c.NumVars()
	}
	// UsedMeta: cut nodes whose meta-variable occurs after compression.
	// The leaves occurring in the input determine this without applying
	// the cuts: a cut node is used iff one of its leaves occurs.
	occurring := make(map[polynomial.Var]bool)
	for _, v := range used {
		occurring[v] = true
	}
	r.UsedMeta = 0
	for _, c := range r.Cuts {
		groups := c.GroupedLeaves()
		for i := range c.Nodes {
			for _, leaf := range groups[i] {
				if occurring[leaf] {
					r.UsedMeta++
					break
				}
			}
		}
	}
}
