package core

import (
	"fmt"
	"sort"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// Greedy is a baseline compressor for the ablation study (experiment E7).
// Starting from the identity (leaf) cut, it repeatedly applies the collapse
// that saves the most monomials per meta-variable lost, until the bound is
// met. A collapse replaces all current cut nodes below some inner node u by
// u itself. Greedy is not optimal in general — DPSingleTree is — but it is
// simple, fast, and the natural straw-man.
func Greedy(set *polynomial.Set, tree *abstraction.Tree, bound int) (*Result, error) {
	if bound < 0 {
		return nil, errNegativeBound(bound)
	}
	idx, err := buildIndex(set, tree)
	if err != nil {
		return nil, err
	}

	inCut := make(map[abstraction.NodeID]bool)
	for _, l := range tree.Leaves() {
		inCut[l] = true
	}
	size := idx.cutSize(abstraction.Cut{Tree: tree, Nodes: keys(inCut)})

	for size > int64(bound) {
		type move struct {
			node     abstraction.NodeID
			saved    int64 // monomials saved
			varsLost int   // meta-variables lost (#descendant cut nodes - 1)
		}
		var best *move
		// Candidates: every inner node u with no cut node above it. The
		// descendant cut nodes of u then cover exactly u's leaves, so
		// replacing them by u is a valid cut transformation.
		for id := 0; id < tree.Len(); id++ {
			u := abstraction.NodeID(id)
			if tree.IsLeaf(u) || inCut[u] {
				continue
			}
			if hasCutAncestor(tree, inCut, u) {
				continue
			}
			desc := cutDescendants(tree, inCut, u)
			if len(desc) == 0 {
				continue
			}
			var below int64
			for _, d := range desc {
				below += idx.distinct[d]
			}
			m := move{node: u, saved: below - idx.distinct[u], varsLost: len(desc) - 1}
			if best == nil || betterMove(m.saved, m.varsLost, best.saved, best.varsLost) {
				mm := m
				best = &mm
			}
		}
		if best == nil {
			// Cut is already {root}; nothing left to collapse.
			return nil, &InfeasibleError{Bound: bound, MinAchievable: int(size)}
		}
		for _, d := range cutDescendants(tree, inCut, best.node) {
			delete(inCut, d)
		}
		inCut[best.node] = true
		size -= best.saved
	}

	cut, err := abstraction.NewCut(tree, keys(inCut)...)
	if err != nil {
		return nil, fmt.Errorf("core: internal error, greedy produced invalid cut: %w", err)
	}
	r := &Result{Cuts: []abstraction.Cut{cut}, Size: int(size)}
	fillResult(r, set)
	return r, nil
}

// betterMove prefers the higher monomials-saved per meta-variable-lost
// ratio; free moves (varsLost == 0) dominate, and ties prefer the SMALLER
// move (fewest variables lost) so the walk stays as fine-grained as the
// bound allows, falling back to larger savings.
func betterMove(saved int64, lost int, bSaved int64, bLost int) bool {
	// Compare saved/max(lost,ε) as cross products: saved*bLost' > bSaved*lost'.
	l, bl := int64(lost), int64(bLost)
	if l == 0 {
		l = 1
		saved = saved * 1000 // strongly prefer free moves
	}
	if bl == 0 {
		bl = 1
		bSaved = bSaved * 1000
	}
	lhs, rhs := saved*bl, bSaved*l
	if lhs != rhs {
		return lhs > rhs
	}
	if lost != bLost {
		return lost < bLost
	}
	return saved > bSaved
}

func hasCutAncestor(t *abstraction.Tree, inCut map[abstraction.NodeID]bool, u abstraction.NodeID) bool {
	for p := t.Node(u).Parent; p != abstraction.NoNode; p = t.Node(p).Parent {
		if inCut[p] {
			return true
		}
	}
	// A cut node AT u also rules u out as a collapse target, handled by caller.
	return false
}

func cutDescendants(t *abstraction.Tree, inCut map[abstraction.NodeID]bool, u abstraction.NodeID) []abstraction.NodeID {
	var out []abstraction.NodeID
	var rec func(abstraction.NodeID)
	rec = func(v abstraction.NodeID) {
		if inCut[v] {
			out = append(out, v)
			return
		}
		for _, c := range t.Node(v).Children {
			rec(c)
		}
	}
	for _, c := range t.Node(u).Children {
		rec(c)
	}
	return out
}

func keys(m map[abstraction.NodeID]bool) []abstraction.NodeID {
	out := make([]abstraction.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
