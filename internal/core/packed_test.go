package core

import (
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// TestDPSingleTreePackedMatchesInMemory: the compression DP over a
// PackedSet source must be bit-identical to the pointer-form Set, for
// Workers ∈ {1, 2, 8}. The fixture is large enough to cross the
// minParallelIndexMons threshold, so the within-shard parallel signature
// scan runs over the packed view.
func TestDPSingleTreePackedMatchesInMemory(t *testing.T) {
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 30_000}, names)
	ps, err := polynomial.PackSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Size() < minParallelIndexMons {
		t.Fatalf("fixture too small: %d mons", ps.Size())
	}
	tree := telephony.PlansTree(names)
	bound := set.Size() / 2
	want, err := DPSingleTree(set, tree, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := DPSingleTreeSource(ps, tree, bound, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !resultsIdentical(want, got) {
			t.Fatalf("workers=%d: packed result differs: %+v vs %+v", w, got, want)
		}
	}
}

// TestForestDescentPackedMatchesInMemory: same guarantee for coordinate
// descent over two trees, exercising reduceSource's generic-source branch
// (a PackedSet reduces through the streaming Apply into a pointer Set).
func TestForestDescentPackedMatchesInMemory(t *testing.T) {
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 30_000}, names)
	ps, err := polynomial.PackSet(set)
	if err != nil {
		t.Fatal(err)
	}
	forest := abstraction.Forest{telephony.PlansTree(names), telephony.MonthsTree(names, 12)}
	bound := set.Size() / 4
	want, err := ForestDescent(set, forest, bound, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := ForestDescentSource(ps, forest, bound, 0, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !resultsIdentical(want, got) {
			t.Fatalf("workers=%d: packed result differs: %+v vs %+v", w, got, want)
		}
	}
}
