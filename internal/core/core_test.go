package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// figure2 builds the paper's Figure-2 tree and the Example-2 polynomials.
func figure2(t testing.TB) (*polynomial.Set, *abstraction.Tree) {
	t.Helper()
	names := polynomial.NewNames()
	tree, err := abstraction.FromPaths("Plans", names,
		[]string{"Standard", "p1"},
		[]string{"Standard", "p2"},
		[]string{"Special", "Y", "y1"},
		[]string{"Special", "Y", "y2"},
		[]string{"Special", "Y", "y3"},
		[]string{"Special", "F", "f1"},
		[]string{"Special", "F", "f2"},
		[]string{"Special", "v"},
		[]string{"Business", "SB", "b1"},
		[]string{"Business", "SB", "b2"},
		[]string{"Business", "e"},
	)
	if err != nil {
		t.Fatal(err)
	}
	set := polynomial.NewSet(names)
	set.Add("10001", polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names))
	set.Add("10002", polynomial.MustParse(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3", names))
	return set, tree
}

func TestIndexCounts(t *testing.T) {
	set, tree := figure2(t)
	idx, err := buildIndex(set, tree)
	if err != nil {
		t.Fatal(err)
	}
	if idx.fixed != 0 {
		t.Fatalf("fixed = %d, want 0", idx.fixed)
	}
	// Each used leaf has signatures {(group, m1), (group, m3)} => distinct = 2.
	for _, leafName := range []string{"p1", "f1", "y1", "v", "b1", "b2", "e"} {
		id := tree.ByName(leafName)
		if idx.distinct[id] != 2 {
			t.Errorf("distinct(%s) = %d, want 2", leafName, idx.distinct[id])
		}
	}
	// Unused leaves have no signatures.
	for _, leafName := range []string{"p2", "y2", "y3", "f2"} {
		id := tree.ByName(leafName)
		if idx.distinct[id] != 0 {
			t.Errorf("distinct(%s) = %d, want 0", leafName, idx.distinct[id])
		}
	}
	// Signatures under inner nodes: within one zip group, different leaves
	// share the (group, month) context, so they merge when grouped.
	// Business = b1,b2,e all in group 10002 with months {m1,m3} => 2.
	if got := idx.distinct[tree.ByName("Business")]; got != 2 {
		t.Errorf("distinct(Business) = %d, want 2", got)
	}
	// Special = f1,y1,v in group 10001, months {m1,m3} => 2.
	if got := idx.distinct[tree.ByName("Special")]; got != 2 {
		t.Errorf("distinct(Special) = %d, want 2", got)
	}
	// Root spans both groups => 4 distinct (2 groups × 2 months).
	if got := idx.distinct[tree.Root()]; got != 4 {
		t.Errorf("distinct(Plans) = %d, want 4", got)
	}
}

func TestIndexCutSizeMatchesApply(t *testing.T) {
	set, tree := figure2(t)
	idx, err := buildIndex(set, tree)
	if err != nil {
		t.Fatal(err)
	}
	tree.EnumerateCuts(func(c abstraction.Cut) bool {
		want := abstraction.Apply(set, c).Size()
		if got := idx.cutSize(c); int(got) != want {
			t.Fatalf("cut %s: additive size %d != applied size %d", c, got, want)
		}
		return true
	})
}

func TestIndexMultiVarError(t *testing.T) {
	names := polynomial.NewNames()
	tree, _ := abstraction.FromPaths("T", names, []string{"a"}, []string{"b"})
	set := polynomial.NewSet(names)
	set.Add("g", polynomial.MustParse("3*a*b", names)) // two leaves of T in one monomial
	_, err := buildIndex(set, tree)
	var mv *MultiVarError
	if !errors.As(err, &mv) {
		t.Fatalf("want MultiVarError, got %v", err)
	}
}

func TestDPExample4Cuts(t *testing.T) {
	// The five example cuts give sizes we can hand-compute. P1 and P2 are in
	// different groups and share months, so per group each plan-meta
	// contributes 2 monomials (m1, m3); monomial counts:
	//   leaf cut (11 leaves, 7 used): 14 (the original size)
	//   S1 {Business, Special, Standard}: St:2 (g1), Sp:2 (g1), B:2 (g2) => 6
	//   S4 {SB, e, F, Y, v, p1, p2}: SB:2, e:2, F:2, Y:2, v:2, p1:2 => 12
	//   S5 {Plans}: groups m1/m3 × 2 groups => 4
	set, tree := figure2(t)
	if set.Size() != 14 {
		t.Fatalf("original size = %d, want 14", set.Size())
	}

	cases := []struct {
		bound    int
		wantVars int
		wantSize int
	}{
		{14, 11, 14}, // bound = original: leaf cut, no compression
		{13, 10, 12}, // merge SB (b1,b2 share signatures within group 10002)
		{12, 10, 12},
		// At bound 6 the optimum beats the paper's S1 (k=3): unused leaves
		// contribute no monomials, so {p1, p2, Special, Business} also has
		// size 6 but k=4.
		{6, 4, 6},
		{5, 1, 4}, // no 2-node cut exists; all 3-node cuts have size 6
		{4, 1, 4},
	}
	for _, tc := range cases {
		res, err := DPSingleTree(set, tree, tc.bound)
		if err != nil {
			t.Fatalf("bound %d: %v", tc.bound, err)
		}
		if res.NumMeta != tc.wantVars || res.Size != tc.wantSize {
			t.Errorf("bound %d: got (vars=%d, size=%d) cut=%s, want (%d, %d)",
				tc.bound, res.NumMeta, res.Size, res.Cuts[0], tc.wantVars, tc.wantSize)
		}
		// The reported size must match actually applying the cut.
		if applied := res.Apply(set).Size(); applied != res.Size {
			t.Errorf("bound %d: reported size %d != applied size %d", tc.bound, res.Size, applied)
		}
	}
}

func TestDPInfeasible(t *testing.T) {
	set, tree := figure2(t)
	_, err := DPSingleTree(set, tree, 3) // root cut still needs 4
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatal("InfeasibleError must wrap ErrInfeasible")
	}
	if ie.MinAchievable != 4 {
		t.Fatalf("MinAchievable = %d, want 4", ie.MinAchievable)
	}
}

func TestDPNegativeBound(t *testing.T) {
	set, tree := figure2(t)
	if _, err := DPSingleTree(set, tree, -1); err == nil {
		t.Fatal("negative bound should error")
	}
}

func TestDPMatchesExhaustiveOnFigure2(t *testing.T) {
	set, tree := figure2(t)
	for bound := 4; bound <= 15; bound++ {
		dp, dpErr := DPSingleTree(set, tree, bound)
		ex, exErr := Exhaustive(set, tree, bound)
		if (dpErr == nil) != (exErr == nil) {
			t.Fatalf("bound %d: dpErr=%v exErr=%v", bound, dpErr, exErr)
		}
		if dpErr != nil {
			continue
		}
		if dp.NumMeta != ex.NumMeta || dp.Size != ex.Size {
			t.Errorf("bound %d: DP (vars=%d,size=%d) != exhaustive (vars=%d,size=%d)",
				bound, dp.NumMeta, dp.Size, ex.NumMeta, ex.Size)
		}
	}
}

// randInstance builds a random tree and a random polynomial set that uses
// its leaves plus some context variables, for property testing.
func randInstance(r *rand.Rand) (*polynomial.Set, *abstraction.Tree) {
	names := polynomial.NewNames()
	tree := abstraction.NewTree("R", names)
	ids := []abstraction.NodeID{tree.Root()}
	n := 2 + r.Intn(8)
	for i := 0; i < n; i++ {
		parent := ids[r.Intn(len(ids))]
		id := tree.MustAddChild(parent, fmt.Sprintf("n%d", i))
		ids = append(ids, id)
	}
	leaves := tree.LeafVars()
	ctx := names.Vars("c0", "c1", "c2")
	set := polynomial.NewSet(names)
	groups := 1 + r.Intn(3)
	for g := 0; g < groups; g++ {
		var b polynomial.Builder
		mons := 1 + r.Intn(12)
		for m := 0; m < mons; m++ {
			coef := float64(1 + r.Intn(9))
			var terms []polynomial.Term
			if r.Intn(4) > 0 { // 75%: include one tree leaf
				terms = append(terms, polynomial.TExp(leaves[r.Intn(len(leaves))], int32(1+r.Intn(2))))
			}
			for _, c := range ctx {
				if r.Intn(3) == 0 {
					terms = append(terms, polynomial.T(c))
				}
			}
			b.Add(coef, terms...)
		}
		set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	return set, tree
}

func TestPropertyDPOptimalVsExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		set, tree := randInstance(r)
		orig := set.Size()
		for _, bound := range []int{0, 1, orig / 2, orig, orig + 3} {
			dp, dpErr := DPSingleTree(set, tree, bound)
			ex, exErr := Exhaustive(set, tree, bound)
			if (dpErr == nil) != (exErr == nil) {
				t.Fatalf("trial %d bound %d: dpErr=%v exErr=%v\ntree:\n%s", trial, bound, dpErr, exErr, tree)
			}
			if dpErr != nil {
				var d, e *InfeasibleError
				if errors.As(dpErr, &d) && errors.As(exErr, &e) && d.MinAchievable != e.MinAchievable {
					t.Fatalf("trial %d bound %d: MinAchievable DP %d != exhaustive %d",
						trial, bound, d.MinAchievable, e.MinAchievable)
				}
				continue
			}
			if dp.NumMeta != ex.NumMeta || dp.Size != ex.Size {
				t.Fatalf("trial %d bound %d: DP (vars=%d,size=%d) cut=%s != exhaustive (vars=%d,size=%d) cut=%s\ntree:\n%s",
					trial, bound, dp.NumMeta, dp.Size, dp.Cuts[0], ex.NumMeta, ex.Size, ex.Cuts[0], tree)
			}
			// Reported size must equal materialized size.
			if applied := dp.Apply(set).Size(); applied != dp.Size {
				t.Fatalf("trial %d bound %d: DP size %d != applied %d", trial, bound, dp.Size, applied)
			}
			if err := dp.Cuts[0].Validate(); err != nil {
				t.Fatalf("trial %d: DP cut invalid: %v", trial, err)
			}
		}
	}
}

func TestPropertyGreedyFeasibleAndDominatedByDP(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		set, tree := randInstance(r)
		orig := set.Size()
		for _, bound := range []int{1, orig / 2, orig} {
			g, gErr := Greedy(set, tree, bound)
			dp, dpErr := DPSingleTree(set, tree, bound)
			if (gErr == nil) != (dpErr == nil) {
				// Greedy reaching the root means min achievable; both must
				// agree on feasibility because root cut is reachable by both.
				t.Fatalf("trial %d bound %d: greedy err=%v dp err=%v", trial, bound, gErr, dpErr)
			}
			if gErr != nil {
				continue
			}
			if g.Size > bound {
				t.Fatalf("greedy exceeded bound: %d > %d", g.Size, bound)
			}
			if applied := g.Apply(set).Size(); applied != g.Size {
				t.Fatalf("greedy size %d != applied %d", g.Size, applied)
			}
			if g.NumMeta > dp.NumMeta {
				t.Fatalf("greedy beat the optimal DP: %d > %d vars", g.NumMeta, dp.NumMeta)
			}
		}
	}
}

func TestGreedyOnFigure2(t *testing.T) {
	set, tree := figure2(t)
	res, err := Greedy(set, tree, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size > 6 {
		t.Fatalf("greedy size %d exceeds bound", res.Size)
	}
}

func TestCompressDispatch(t *testing.T) {
	set, tree := figure2(t)
	res, err := Compress(Problem{Set: set, Trees: abstraction.Forest{tree}, Bound: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 6 || res.NumMeta != 4 {
		t.Fatalf("Compress single tree: size=%d vars=%d", res.Size, res.NumMeta)
	}
	if _, err := Compress(Problem{Set: set, Bound: 6}); err == nil {
		t.Fatal("Compress with no trees should error")
	}
	if res.OriginalSize != 14 {
		t.Fatalf("OriginalSize = %d", res.OriginalSize)
	}
	if ratio := res.CompressionRatio(); ratio <= 0 || ratio > 1 {
		t.Fatalf("ratio = %v", ratio)
	}
}

func TestResultVarMapping(t *testing.T) {
	set, tree := figure2(t)
	res, err := DPSingleTree(set, tree, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := res.VarMapping()
	if len(m) != 11 {
		t.Fatalf("mapping size = %d, want 11 leaves", len(m))
	}
	b1, _ := set.Names.Lookup("b1")
	if _, ok := m[b1]; !ok {
		t.Fatal("b1 not in mapping")
	}
}

// twoTreeInstance builds a two-tree instance mirroring the running example:
// a plans-like tree and a months-like tree, with monomials plan×month.
func twoTreeInstance(t testing.TB) (*polynomial.Set, abstraction.Forest) {
	t.Helper()
	names := polynomial.NewNames()
	plans, err := abstraction.FromPaths("P", names,
		[]string{"PA", "a1"}, []string{"PA", "a2"}, []string{"PB", "b1x"}, []string{"PB", "b2x"})
	if err != nil {
		t.Fatal(err)
	}
	months, err := abstraction.FromPaths("M", names,
		[]string{"Q1", "m1"}, []string{"Q1", "m2"}, []string{"Q2", "m3"}, []string{"Q2", "m4"})
	if err != nil {
		t.Fatal(err)
	}
	set := polynomial.NewSet(names)
	var b polynomial.Builder
	coef := 1.0
	for _, p := range []string{"a1", "a2", "b1x", "b2x"} {
		for _, m := range []string{"m1", "m2", "m3", "m4"} {
			pv, _ := names.Lookup(p)
			mv, _ := names.Lookup(m)
			b.Add(coef, polynomial.T(pv), polynomial.T(mv))
			coef++
		}
	}
	set.Add("g", b.Polynomial())
	return set, abstraction.Forest{plans, months}
}

func TestForestDescentMatchesExhaustive(t *testing.T) {
	set, forest := twoTreeInstance(t)
	orig := set.Size() // 16
	if orig != 16 {
		t.Fatalf("orig = %d", orig)
	}
	for _, bound := range []int{1, 2, 4, 8, 12, 16} {
		fd, fdErr := ForestDescent(set, forest, bound, 0)
		ex, exErr := ExhaustiveForest(set, forest, bound)
		if (fdErr == nil) != (exErr == nil) {
			t.Fatalf("bound %d: fdErr=%v exErr=%v", bound, fdErr, exErr)
		}
		if fdErr != nil {
			continue
		}
		if fd.Size > bound {
			t.Fatalf("bound %d: forest descent exceeded bound (%d)", bound, fd.Size)
		}
		if applied := fd.Apply(set).Size(); applied != fd.Size {
			t.Fatalf("bound %d: size %d != applied %d", bound, fd.Size, applied)
		}
		// Coordinate descent is a heuristic: it must be feasible and not
		// beat the oracle; on this symmetric instance it should match it.
		if fd.NumMeta > ex.NumMeta {
			t.Fatalf("bound %d: descent %d vars beats oracle %d", bound, fd.NumMeta, ex.NumMeta)
		}
		if fd.NumMeta < ex.NumMeta {
			t.Logf("bound %d: descent %d vars vs oracle %d (heuristic gap)", bound, fd.NumMeta, ex.NumMeta)
		}
	}
}

func TestForestDescentInfeasible(t *testing.T) {
	set, forest := twoTreeInstance(t)
	_, err := ForestDescent(set, forest, 0, 0)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
	if ie.MinAchievable != 1 {
		t.Fatalf("MinAchievable = %d, want 1 (single meta×meta monomial)", ie.MinAchievable)
	}
}

func TestPropertyForestDescentFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		set, tree := randInstance(r)
		// Second tree over fresh variables, attached to some monomials.
		names := set.Names
		t2 := abstraction.NewTree(fmt.Sprintf("R2x%d", trial), names)
		var l2 []polynomial.Var
		for i := 0; i < 3; i++ {
			id := t2.MustAddChild(t2.Root(), fmt.Sprintf("t2n%dx%d", i, trial))
			l2 = append(l2, t2.Node(id).Var)
		}
		for pi := range set.Polys {
			var b polynomial.Builder
			for _, m := range set.Polys[pi].Mons {
				nm := m.Clone()
				if r.Intn(2) == 0 {
					nm.Terms = append(nm.Terms, polynomial.T(l2[r.Intn(len(l2))]))
				}
				b.AddMonomial(polynomial.Mono(nm.Coef, nm.Terms...))
			}
			set.Polys[pi] = b.Polynomial()
		}
		forest := abstraction.Forest{tree, t2}
		orig := set.Size()
		for _, bound := range []int{1, orig / 2, orig} {
			fd, err := ForestDescent(set, forest, bound, 0)
			if err != nil {
				var ie *InfeasibleError
				if errors.As(err, &ie) {
					continue
				}
				t.Fatalf("trial %d bound %d: %v", trial, bound, err)
			}
			if fd.Size > bound {
				t.Fatalf("trial %d: descent size %d > bound %d", trial, fd.Size, bound)
			}
			if applied := fd.Apply(set).Size(); applied != fd.Size {
				t.Fatalf("trial %d: size %d != applied %d", trial, fd.Size, applied)
			}
			for _, c := range fd.Cuts {
				if err := c.Validate(); err != nil {
					t.Fatalf("trial %d: invalid cut: %v", trial, err)
				}
			}
		}
	}
}

func TestExhaustiveRejectsHugeTrees(t *testing.T) {
	names := polynomial.NewNames()
	tree := abstraction.NewTree("R", names)
	// A 3-level tree with fanout 40 then 2: 40 inner, 80 leaves;
	// cuts = 1 + (1+1)^40 ... comfortably over the cap.
	for i := 0; i < 40; i++ {
		inner := tree.MustAddChild(tree.Root(), fmt.Sprintf("i%d", i))
		tree.MustAddChild(inner, fmt.Sprintf("l%da", i))
		tree.MustAddChild(inner, fmt.Sprintf("l%db", i))
	}
	set := polynomial.NewSet(names)
	if _, err := Exhaustive(set, tree, 10); err == nil {
		t.Fatal("Exhaustive should refuse trees over the cut cap")
	}
}

func TestEmptySetCompresses(t *testing.T) {
	names := polynomial.NewNames()
	tree, _ := abstraction.FromPaths("T", names, []string{"a"}, []string{"b"})
	set := polynomial.NewSet(names)
	res, err := DPSingleTree(set, tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 0 || res.NumMeta != 2 {
		t.Fatalf("empty set: size=%d vars=%d, want 0 monomials and the leaf cut", res.Size, res.NumMeta)
	}
}

func TestResultUsedMeta(t *testing.T) {
	set, tree := figure2(t)
	// Leaf cut: 11 meta-variables defined, but only the 7 occurring leaves
	// are used (p2, y2, y3, f2 never appear in P1/P2).
	res, err := DPSingleTree(set, tree, set.Size())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMeta != 11 || res.UsedMeta != 7 {
		t.Fatalf("leaf cut: defined=%d used=%d, want 11/7", res.NumMeta, res.UsedMeta)
	}
	// Root cut: one meta, used.
	res, err = DPSingleTree(set, tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumMeta != 1 || res.UsedMeta != 1 {
		t.Fatalf("root cut: defined=%d used=%d", res.NumMeta, res.UsedMeta)
	}
}
