package core

import (
	"fmt"
	"io"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// DefaultForestRounds bounds the coordinate-descent iterations of
// ForestDescent when the caller passes rounds <= 0.
const DefaultForestRounds = 8

// ForestDescent compresses under several abstraction trees (one cut each).
// The joint problem is NP-hard in general (the compressed size is no longer
// additive across trees), so we use exact coordinate descent: trees start at
// their coarsest cut (the jointly minimal size — coarsening any tree can
// only merge more monomials), then each round re-optimizes one tree at a
// time with DPSingleTree against the provenance reduced by the other trees'
// current cuts. Every step keeps the bound satisfied and never decreases the
// per-tree variable count, so the total variable count is monotone and the
// procedure converges; rounds caps the number of passes (DefaultForestRounds
// if <= 0).
func ForestDescent(set *polynomial.Set, trees abstraction.Forest, bound int, rounds int) (*Result, error) {
	return ForestDescentN(set, trees, bound, rounds, 1)
}

// reduceSource applies cuts to src, producing a reduced source of the same
// underlying representation: an in-memory Set yields an in-memory Set, a
// ShardedSet yields a ShardedSet under the same options (so intermediate
// reduced sets spill past the same memory budget). The dispatch unwraps
// context wrappers so wrapping never changes which algorithm variant runs —
// but the streaming pass itself pulls through the wrapped src, so a
// canceled context still stops the pass at the next shard boundary.
// Release the result with closeSource.
func reduceSource(src polynomial.SetSource, workers int, cuts ...abstraction.Cut) (polynomial.SetSource, error) {
	switch s := polynomial.Unwrap(src).(type) {
	case *polynomial.ShardedSet:
		b := polynomial.NewShardBuilder(s.Names(), s.Options())
		defer b.Discard() // release partial spill files on any error path
		if err := abstraction.ApplySource(src, b, workers, cuts...); err != nil {
			return nil, err
		}
		return b.Finish()
	case *polynomial.Set:
		// Direct remap — no second copy through a sink. An in-memory set is
		// a single shard, so the wrapper's per-shard cancellation check
		// would fire at most once anyway; skipping it costs nothing.
		return abstraction.ApplyN(s, workers, cuts...), nil
	default:
		out := polynomial.NewSet(src.Namespace())
		if err := abstraction.ApplySource(src, out, workers, cuts...); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// closeSource releases a source whose representation holds resources
// (spill files); in-memory sets are left to the garbage collector.
func closeSource(src polynomial.SetSource) {
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// ForestDescentN is ForestDescent distributed over up to workers
// goroutines; it forwards to ForestDescentSource, the one coordinate-
// descent implementation shared with the out-of-core path.
func ForestDescentN(set *polynomial.Set, trees abstraction.Forest, bound int, rounds int, workers int) (*Result, error) {
	return ForestDescentSource(set, trees, bound, rounds, workers)
}

// ForestDescentSource runs coordinate descent over any SetSource. Each
// round re-optimizes one tree at a time with the single-tree DP against
// the provenance reduced by the other trees' current cuts; reduction,
// indexing and the DP all stream shard-at-a-time through the SetSource
// seam, so the same code serves in-memory sets and spilling sharded sets.
//
// With workers > 1, each tree's reduction, signature indexing and DP
// shard over the pool, but the adoption walk itself is the sequential
// one: one tree at a time against the live cuts, at most one reduced set
// resident. (An earlier revision speculatively reduced every tree against
// the round-start cuts in parallel; the speculative candidates were
// discarded whenever an earlier tree changed its cut, which made worker
// counts > 1 allocate several times the sequential walk for no wall-clock
// gain once the inner passes were already parallel.) Every
// sub-computation is deterministic, so cuts and sizes are bit-identical
// for every source representation and worker count, including the
// sequential workers <= 1 path.
func ForestDescentSource(src polynomial.SetSource, trees abstraction.Forest, bound int, rounds int, workers int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = DefaultForestRounds
	}
	workers = parallel.Normalize(workers)

	// Feasibility check at the coarsest point.
	cuts := make([]abstraction.Cut, len(trees))
	for i, t := range trees {
		cuts[i] = t.RootCut()
	}
	coarsest, err := reduceSource(src, workers, cuts...)
	if err != nil {
		return nil, err
	}
	coarsestSize := coarsest.Size()
	closeSource(coarsest)
	if coarsestSize > bound {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: coarsestSize}
	}

	othersOf := func(cuts []abstraction.Cut, i int) []abstraction.Cut {
		others := make([]abstraction.Cut, 0, len(trees)-1)
		for j, c := range cuts {
			if j != i {
				others = append(others, c)
			}
		}
		return others
	}

	for round := 0; round < rounds; round++ {
		changed := false
		for i, t := range trees {
			// Reduce the set by every other tree's current cut.
			reduced, err := reduceSource(src, workers, othersOf(cuts, i)...)
			var res *Result
			if err == nil {
				res, err = DPSingleTreeSource(reduced, t, bound, workers)
			}
			if err != nil {
				// The current cut for tree i is always feasible on the
				// reduced set, so DP cannot fail here; treat failure as a
				// hard error.
				if reduced != nil {
					closeSource(reduced)
				}
				return nil, fmt.Errorf("core: forest descent on tree %d: %w", i, err)
			}
			if !res.Cuts[0].Equal(cuts[i]) {
				// Only adopt strict improvements (more vars, or same vars
				// and smaller size) to guarantee monotone convergence.
				oldVars := cuts[i].NumVars()
				newVars := res.Cuts[0].NumVars()
				adopt := newVars > oldVars
				if !adopt && newVars == oldVars {
					old, err := reduceSource(reduced, workers, cuts[i])
					if err != nil {
						closeSource(reduced)
						return nil, err
					}
					adopt = res.Size < old.Size()
					closeSource(old)
				}
				if adopt {
					cuts[i] = res.Cuts[0]
					changed = true
				}
			}
			closeSource(reduced)
		}
		if !changed {
			break
		}
	}

	final, err := reduceSource(src, workers, cuts...)
	if err != nil {
		return nil, err
	}
	r := &Result{Cuts: cuts, Size: final.Size()}
	closeSource(final)
	fillResultFrom(r, src.Size(), src.UsedVars())
	return r, nil
}

// ExhaustiveForest enumerates every combination of cuts across the forest —
// a testing oracle for ForestDescent on small inputs. It maximizes the total
// number of cut nodes subject to the bound, breaking ties toward smaller
// size. The combination count is the product of per-tree cut counts and must
// not exceed MaxExhaustiveCuts.
func ExhaustiveForest(set *polynomial.Set, trees abstraction.Forest, bound int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	total := 1
	for _, t := range trees {
		total *= t.CountCuts()
		if total > MaxExhaustiveCuts {
			return nil, fmt.Errorf("core: forest has more than %d cut combinations", MaxExhaustiveCuts)
		}
	}
	perTree := make([][]abstraction.Cut, len(trees))
	for i, t := range trees {
		//cobra:hotalloc one closure per tree while the exhaustive oracle enumerates; setup, not the solve path
		t.EnumerateCuts(func(c abstraction.Cut) bool {
			perTree[i] = append(perTree[i], c)
			return true
		})
	}
	var (
		found    bool
		best     []abstraction.Cut
		bestVars int
		bestSize int
		minSize  = int(inf)
	)
	combo := make([]abstraction.Cut, len(trees))
	var rec func(i int)
	rec = func(i int) {
		if i == len(trees) {
			applied := abstraction.Apply(set, combo...)
			size := applied.Size()
			if size < minSize {
				minSize = size
			}
			if size > bound {
				return
			}
			vars := 0
			for _, c := range combo {
				vars += c.NumVars()
			}
			if !found || vars > bestVars || (vars == bestVars && size < bestSize) {
				found = true
				best = append([]abstraction.Cut(nil), combo...)
				bestVars = vars
				bestSize = size
			}
			return
		}
		for _, c := range perTree[i] {
			combo[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	if !found {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: minSize}
	}
	r := &Result{Cuts: best, Size: bestSize}
	fillResult(r, set)
	return r, nil
}

// SizeOfCuts returns the provenance size after applying the given cuts —
// a convenience used by the demo CLI's "under the hood" view.
func SizeOfCuts(set *polynomial.Set, cuts ...abstraction.Cut) int {
	return abstraction.Apply(set, cuts...).Size()
}
