package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// DefaultForestRounds bounds the coordinate-descent iterations of
// ForestDescent when the caller passes rounds <= 0.
const DefaultForestRounds = 8

// ForestDescent compresses under several abstraction trees (one cut each).
// The joint problem is NP-hard in general (the compressed size is no longer
// additive across trees), so we use exact coordinate descent: trees start at
// their coarsest cut (the jointly minimal size — coarsening any tree can
// only merge more monomials), then each round re-optimizes one tree at a
// time with DPSingleTree against the provenance reduced by the other trees'
// current cuts. Every step keeps the bound satisfied and never decreases the
// per-tree variable count, so the total variable count is monotone and the
// procedure converges; rounds caps the number of passes (DefaultForestRounds
// if <= 0).
func ForestDescent(set *polynomial.Set, trees abstraction.Forest, bound int, rounds int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = DefaultForestRounds
	}

	// Feasibility check at the coarsest point.
	cuts := make([]abstraction.Cut, len(trees))
	for i, t := range trees {
		cuts[i] = t.RootCut()
	}
	coarsest := abstraction.Apply(set, cuts...)
	if coarsest.Size() > bound {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: coarsest.Size()}
	}

	for round := 0; round < rounds; round++ {
		changed := false
		for i, t := range trees {
			// Reduce the set by every other tree's current cut.
			others := make([]abstraction.Cut, 0, len(trees)-1)
			for j, c := range cuts {
				if j != i {
					others = append(others, c)
				}
			}
			reduced := abstraction.Apply(set, others...)
			res, err := DPSingleTree(reduced, t, bound)
			if err != nil {
				// The current cut for tree i is always feasible on the
				// reduced set, so DP cannot fail here; treat failure as a
				// hard error.
				return nil, fmt.Errorf("core: forest descent on tree %d: %w", i, err)
			}
			if !res.Cuts[0].Equal(cuts[i]) {
				// Only adopt strict improvements (more vars, or same vars
				// and smaller size) to guarantee monotone convergence.
				oldVars := cuts[i].NumVars()
				newVars := res.Cuts[0].NumVars()
				if newVars > oldVars || (newVars == oldVars && res.Size < abstraction.Apply(reduced, cuts[i]).Size()) {
					cuts[i] = res.Cuts[0]
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	final := abstraction.Apply(set, cuts...)
	r := &Result{Cuts: cuts, Size: final.Size()}
	fillResult(r, set)
	return r, nil
}

// ExhaustiveForest enumerates every combination of cuts across the forest —
// a testing oracle for ForestDescent on small inputs. It maximizes the total
// number of cut nodes subject to the bound, breaking ties toward smaller
// size. The combination count is the product of per-tree cut counts and must
// not exceed MaxExhaustiveCuts.
func ExhaustiveForest(set *polynomial.Set, trees abstraction.Forest, bound int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	total := 1
	for _, t := range trees {
		total *= t.CountCuts()
		if total > MaxExhaustiveCuts {
			return nil, fmt.Errorf("core: forest has more than %d cut combinations", MaxExhaustiveCuts)
		}
	}
	perTree := make([][]abstraction.Cut, len(trees))
	for i, t := range trees {
		t.EnumerateCuts(func(c abstraction.Cut) bool {
			perTree[i] = append(perTree[i], c)
			return true
		})
	}
	var (
		found    bool
		best     []abstraction.Cut
		bestVars int
		bestSize int
		minSize  = int(inf)
	)
	combo := make([]abstraction.Cut, len(trees))
	var rec func(i int)
	rec = func(i int) {
		if i == len(trees) {
			applied := abstraction.Apply(set, combo...)
			size := applied.Size()
			if size < minSize {
				minSize = size
			}
			if size > bound {
				return
			}
			vars := 0
			for _, c := range combo {
				vars += c.NumVars()
			}
			if !found || vars > bestVars || (vars == bestVars && size < bestSize) {
				found = true
				best = append([]abstraction.Cut(nil), combo...)
				bestVars = vars
				bestSize = size
			}
			return
		}
		for _, c := range perTree[i] {
			combo[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	if !found {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: minSize}
	}
	r := &Result{Cuts: best, Size: bestSize}
	fillResult(r, set)
	return r, nil
}

// SizeOfCuts returns the provenance size after applying the given cuts —
// a convenience used by the demo CLI's "under the hood" view.
func SizeOfCuts(set *polynomial.Set, cuts ...abstraction.Cut) int {
	return abstraction.Apply(set, cuts...).Size()
}
