package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// DefaultForestRounds bounds the coordinate-descent iterations of
// ForestDescent when the caller passes rounds <= 0.
const DefaultForestRounds = 8

// ForestDescent compresses under several abstraction trees (one cut each).
// The joint problem is NP-hard in general (the compressed size is no longer
// additive across trees), so we use exact coordinate descent: trees start at
// their coarsest cut (the jointly minimal size — coarsening any tree can
// only merge more monomials), then each round re-optimizes one tree at a
// time with DPSingleTree against the provenance reduced by the other trees'
// current cuts. Every step keeps the bound satisfied and never decreases the
// per-tree variable count, so the total variable count is monotone and the
// procedure converges; rounds caps the number of passes (DefaultForestRounds
// if <= 0).
func ForestDescent(set *polynomial.Set, trees abstraction.Forest, bound int, rounds int) (*Result, error) {
	return ForestDescentN(set, trees, bound, rounds, 1)
}

// forestCandidate is one tree's speculative re-optimization, computed
// against the cuts as they stood at the start of a round.
type forestCandidate struct {
	reduced *polynomial.Set // set reduced by the other trees' snapshot cuts
	res     *Result
	err     error
}

// ForestDescentN is ForestDescent distributed over up to workers goroutines.
// Each round speculatively evaluates every tree's candidate re-optimization
// (abstraction.Apply of the other trees' cuts + DPSingleTree) in parallel
// against the round-start cuts; adoption then walks the trees sequentially
// in tree order, exactly like the sequential pass. A speculative candidate
// is used only while no earlier tree has changed its cut in the round — in
// that case it is, by construction, exactly what the sequential pass would
// have computed. As soon as an earlier tree changes, the remaining trees
// fall back to recomputation against the live cuts (still sharding their
// Apply and signature indexing over the pool). Every sub-computation is
// deterministic for any worker count, so ForestDescentN returns
// bit-identical cuts and sizes for every value of workers, including the
// sequential workers <= 1 path.
func ForestDescentN(set *polynomial.Set, trees abstraction.Forest, bound int, rounds int, workers int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = DefaultForestRounds
	}
	workers = parallel.Normalize(workers)

	// Feasibility check at the coarsest point.
	cuts := make([]abstraction.Cut, len(trees))
	for i, t := range trees {
		cuts[i] = t.RootCut()
	}
	coarsest := abstraction.ApplyN(set, workers, cuts...)
	if coarsest.Size() > bound {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: coarsest.Size()}
	}

	othersOf := func(cuts []abstraction.Cut, i int) []abstraction.Cut {
		others := make([]abstraction.Cut, 0, len(trees)-1)
		for j, c := range cuts {
			if j != i {
				others = append(others, c)
			}
		}
		return others
	}

	for round := 0; round < rounds; round++ {
		// Speculation: candidates against the round-start snapshot, one
		// tree per pool slot, the inner passes sharing the leftover width.
		var cands []forestCandidate
		if workers > 1 && len(trees) > 1 {
			snapshot := append([]abstraction.Cut(nil), cuts...)
			inner := workers / len(trees)
			cands = make([]forestCandidate, len(trees))
			parallel.ForEach(workers, len(trees), func(i int) {
				reduced := abstraction.ApplyN(set, inner, othersOf(snapshot, i)...)
				res, err := DPSingleTreeN(reduced, trees[i], bound, inner)
				cands[i] = forestCandidate{reduced: reduced, res: res, err: err}
			})
		}

		changed := false
		for i, t := range trees {
			var (
				reduced *polynomial.Set
				res     *Result
				err     error
			)
			if cands != nil && !changed {
				// No earlier tree changed this round: the snapshot equals
				// the live cuts and the speculative candidate is exact.
				reduced, res, err = cands[i].reduced, cands[i].res, cands[i].err
			} else {
				// Reduce the set by every other tree's current cut.
				reduced = abstraction.ApplyN(set, workers, othersOf(cuts, i)...)
				res, err = DPSingleTreeN(reduced, t, bound, workers)
			}
			if err != nil {
				// The current cut for tree i is always feasible on the
				// reduced set, so DP cannot fail here; treat failure as a
				// hard error.
				return nil, fmt.Errorf("core: forest descent on tree %d: %w", i, err)
			}
			if !res.Cuts[0].Equal(cuts[i]) {
				// Only adopt strict improvements (more vars, or same vars
				// and smaller size) to guarantee monotone convergence.
				oldVars := cuts[i].NumVars()
				newVars := res.Cuts[0].NumVars()
				if newVars > oldVars || (newVars == oldVars && res.Size < abstraction.ApplyN(reduced, workers, cuts[i]).Size()) {
					cuts[i] = res.Cuts[0]
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	final := abstraction.ApplyN(set, workers, cuts...)
	r := &Result{Cuts: cuts, Size: final.Size()}
	fillResult(r, set)
	return r, nil
}

// ExhaustiveForest enumerates every combination of cuts across the forest —
// a testing oracle for ForestDescent on small inputs. It maximizes the total
// number of cut nodes subject to the bound, breaking ties toward smaller
// size. The combination count is the product of per-tree cut counts and must
// not exceed MaxExhaustiveCuts.
func ExhaustiveForest(set *polynomial.Set, trees abstraction.Forest, bound int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	total := 1
	for _, t := range trees {
		total *= t.CountCuts()
		if total > MaxExhaustiveCuts {
			return nil, fmt.Errorf("core: forest has more than %d cut combinations", MaxExhaustiveCuts)
		}
	}
	perTree := make([][]abstraction.Cut, len(trees))
	for i, t := range trees {
		t.EnumerateCuts(func(c abstraction.Cut) bool {
			perTree[i] = append(perTree[i], c)
			return true
		})
	}
	var (
		found    bool
		best     []abstraction.Cut
		bestVars int
		bestSize int
		minSize  = int(inf)
	)
	combo := make([]abstraction.Cut, len(trees))
	var rec func(i int)
	rec = func(i int) {
		if i == len(trees) {
			applied := abstraction.Apply(set, combo...)
			size := applied.Size()
			if size < minSize {
				minSize = size
			}
			if size > bound {
				return
			}
			vars := 0
			for _, c := range combo {
				vars += c.NumVars()
			}
			if !found || vars > bestVars || (vars == bestVars && size < bestSize) {
				found = true
				best = append([]abstraction.Cut(nil), combo...)
				bestVars = vars
				bestSize = size
			}
			return
		}
		for _, c := range perTree[i] {
			combo[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	if !found {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: minSize}
	}
	r := &Result{Cuts: best, Size: bestSize}
	fillResult(r, set)
	return r, nil
}

// SizeOfCuts returns the provenance size after applying the given cuts —
// a convenience used by the demo CLI's "under the hood" view.
func SizeOfCuts(set *polynomial.Set, cuts ...abstraction.Cut) int {
	return abstraction.Apply(set, cuts...).Size()
}
