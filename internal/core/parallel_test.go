package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// workerTable is the worker counts the determinism tests sweep; 1 is the
// sequential reference the parallel runs must match bit-for-bit.
var workerTable = []int{1, 2, 8}

// bigRandInstance builds a seeded random instance large enough to cross the
// parallel sharding thresholds: a two-level tree with ~30 leaves and a set
// of a few polynomials totalling >> minParallelIndexMons monomials.
func bigRandInstance(r *rand.Rand) (*polynomial.Set, *abstraction.Tree) {
	names := polynomial.NewNames()
	tree := abstraction.NewTree("R", names)
	var leaves []polynomial.Var
	groups := 5 + r.Intn(3)
	for g := 0; g < groups; g++ {
		gid := tree.MustAddChild(tree.Root(), fmt.Sprintf("G%d", g))
		for l := 0; l < 4+r.Intn(3); l++ {
			id := tree.MustAddChild(gid, fmt.Sprintf("L%d_%d", g, l))
			leaves = append(leaves, tree.Node(id).Var)
		}
	}
	ctx := make([]polynomial.Var, 50)
	for i := range ctx {
		ctx[i] = names.Var(fmt.Sprintf("c%d", i))
	}
	set := polynomial.NewSet(names)
	for g := 0; g < 3; g++ {
		var b polynomial.Builder
		for m := 0; m < 3000; m++ {
			coef := 1 + r.Float64()*9
			var terms []polynomial.Term
			if r.Intn(10) > 0 { // 90%: include one tree leaf
				terms = append(terms, polynomial.TExp(leaves[r.Intn(len(leaves))], int32(1+r.Intn(2))))
			}
			terms = append(terms, polynomial.T(ctx[r.Intn(len(ctx))]))
			if r.Intn(3) == 0 {
				terms = append(terms, polynomial.T(ctx[r.Intn(len(ctx))]))
			}
			b.Add(coef, terms...)
		}
		set.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	return set, tree
}

// equalResults asserts two compression results choose the same abstraction.
func equalResults(t *testing.T, ctx string, seq, par *Result) {
	t.Helper()
	if seq.Size != par.Size || seq.NumMeta != par.NumMeta || seq.UsedMeta != par.UsedMeta ||
		seq.OriginalSize != par.OriginalSize || seq.OriginalVars != par.OriginalVars {
		t.Fatalf("%s: results differ: seq=%+v par=%+v", ctx, seq, par)
	}
	if len(seq.Cuts) != len(par.Cuts) {
		t.Fatalf("%s: cut counts differ", ctx)
	}
	for i := range seq.Cuts {
		if !seq.Cuts[i].Equal(par.Cuts[i]) {
			t.Fatalf("%s: cut %d differs: seq=%s par=%s", ctx, i, seq.Cuts[i], par.Cuts[i])
		}
	}
}

// equalSets asserts exact (bitwise coefficient) equality of two sets.
func equalSets(t *testing.T, ctx string, a, b *polynomial.Set) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: lengths differ: %d vs %d", ctx, a.Len(), b.Len())
	}
	for i := range a.Polys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatalf("%s: key %d differs", ctx, i)
		}
		if !polynomial.Equal(a.Polys[i], b.Polys[i]) {
			t.Fatalf("%s: polynomial %q differs", ctx, a.Keys[i])
		}
	}
}

func TestDPSingleTreeWorkersIdentical(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		r := rand.New(rand.NewSource(int64(100 + trial)))
		set, tree := bigRandInstance(r)
		for _, bound := range []int{set.Size() / 4, set.Size() / 2, set.Size()} {
			seq, seqErr := DPSingleTreeN(set, tree, bound, 1)
			var seqApplied *polynomial.Set
			if seqErr == nil {
				seqApplied = seq.Apply(set)
			}
			for _, w := range workerTable[1:] {
				ctx := fmt.Sprintf("trial %d bound %d workers %d", trial, bound, w)
				par, parErr := DPSingleTreeN(set, tree, bound, w)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("%s: seqErr=%v parErr=%v", ctx, seqErr, parErr)
				}
				if seqErr != nil {
					if seqErr.Error() != parErr.Error() {
						t.Fatalf("%s: errors differ: %q vs %q", ctx, seqErr, parErr)
					}
					continue
				}
				equalResults(t, ctx, seq, par)
				equalSets(t, ctx, seqApplied, abstraction.ApplyN(set, w, par.Cuts...))
			}
		}
	}
}

func TestFrontierWorkersIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	set, tree := bigRandInstance(r)
	seq, err := FrontierN(set, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerTable[1:] {
		par, err := FrontierN(set, tree, w)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if len(seq) != len(par) {
			t.Fatalf("workers %d: %d points vs %d", w, len(par), len(seq))
		}
		for i := range seq {
			if seq[i].NumMeta != par[i].NumMeta || seq[i].MinSize != par[i].MinSize || !seq[i].Cut.Equal(par[i].Cut) {
				t.Fatalf("workers %d: point %d differs: seq=%+v par=%+v", w, i, seq[i], par[i])
			}
		}
	}
}

// bigPartitionedForest extends bigRandInstance with a second tree over
// fresh variables used only in NEW polynomial groups, so every monomial
// touches at most one tree — the partitioned shape the forest frontier
// requires — while both trees' scans cross the parallel thresholds.
func bigPartitionedForest(r *rand.Rand) (*polynomial.Set, abstraction.Forest) {
	set, t1 := bigRandInstance(r)
	names := set.Names
	t2 := abstraction.NewTree("R2", names)
	var l2 []polynomial.Var
	for g := 0; g < 3; g++ {
		gid := t2.MustAddChild(t2.Root(), fmt.Sprintf("K%d", g))
		for l := 0; l < 3; l++ {
			id := t2.MustAddChild(gid, fmt.Sprintf("k%d_%d", g, l))
			l2 = append(l2, t2.Node(id).Var)
		}
	}
	ctx := make([]polynomial.Var, 50)
	for i := range ctx {
		ctx[i] = names.Var(fmt.Sprintf("c%d", i)) // shared with bigRandInstance
	}
	for g := 0; g < 2; g++ {
		var b polynomial.Builder
		for m := 0; m < 3000; m++ {
			b.Add(1+r.Float64()*9,
				polynomial.TExp(l2[r.Intn(len(l2))], int32(1+r.Intn(2))),
				polynomial.T(ctx[r.Intn(len(ctx))]))
		}
		set.Add(fmt.Sprintf("h%d", g), b.Polynomial())
	}
	return set, abstraction.Forest{t1, t2}
}

// equalForestCurves asserts two forest-level curves are bit-identical.
func equalForestCurves(t *testing.T, ctx string, seq, par []ForestFrontierPoint) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: %d points vs %d", ctx, len(par), len(seq))
	}
	for i := range seq {
		if seq[i].NumMeta != par[i].NumMeta || seq[i].MinSize != par[i].MinSize {
			t.Fatalf("%s: point %d differs: seq=%+v par=%+v", ctx, i, seq[i], par[i])
		}
		if len(seq[i].Cuts) != len(par[i].Cuts) {
			t.Fatalf("%s: point %d cut counts differ", ctx, i)
		}
		for j := range seq[i].Cuts {
			if !seq[i].Cuts[j].Equal(par[i].Cuts[j]) {
				t.Fatalf("%s: point %d cut %d differs: seq=%s par=%s",
					ctx, i, j, seq[i].Cuts[j], par[i].Cuts[j])
			}
		}
	}
}

// TestFrontierForestWorkersIdentical extends the determinism table to the
// forest frontier: the composed curve must be bit-identical for Workers ∈
// {1, 2, 8}, over in-memory and sharded sources alike.
func TestFrontierForestWorkersIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	set, forest := bigPartitionedForest(r)
	seq, err := FrontierForest(set, forest, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerTable[1:] {
		par, err := FrontierForest(set, forest, w)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		equalForestCurves(t, fmt.Sprintf("workers %d", w), seq, par)
	}
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: set.Size() / 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for _, w := range workerTable {
		par, err := FrontierForestSource(ss, forest, w)
		if err != nil {
			t.Fatalf("sharded workers %d: %v", w, err)
		}
		equalForestCurves(t, fmt.Sprintf("sharded workers %d", w), seq, par)
	}
}

// TestFrontierSourceNWorkersIdentical pins FrontierSourceN over a sharded
// single-tree source to the sequential in-memory curve for every worker
// count.
func TestFrontierSourceNWorkersIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	set, tree := bigRandInstance(r)
	seq, err := FrontierN(set, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: set.Size() / 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for _, w := range workerTable {
		par, err := FrontierSourceN(ss, tree, w)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if len(seq) != len(par) {
			t.Fatalf("workers %d: %d points vs %d", w, len(par), len(seq))
		}
		for i := range seq {
			if seq[i].NumMeta != par[i].NumMeta || seq[i].MinSize != par[i].MinSize || !seq[i].Cut.Equal(par[i].Cut) {
				t.Fatalf("workers %d: point %d differs: seq=%+v par=%+v", w, i, seq[i], par[i])
			}
		}
	}
}

// TestFrontierSweepWorkersIdentical extends the determinism table to the
// sweep: every answer — result and error alike — must be bit-identical for
// Workers ∈ {1, 2, 8} on both the single-tree and forest paths.
func TestFrontierSweepWorkersIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	set, forest := bigPartitionedForest(r)
	size := set.Size()
	bounds := []int{-1, 0, size / 8, size / 4, size / 2, size * 3 / 4, size, size * 2}
	for _, trees := range []abstraction.Forest{{forest[0]}, forest} {
		seq, err := FrontierSweep(set, trees, bounds, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerTable[1:] {
			par, err := FrontierSweep(set, trees, bounds, w)
			if err != nil {
				t.Fatalf("trees %d workers %d: %v", len(trees), w, err)
			}
			for i := range seq {
				ctx := fmt.Sprintf("trees %d workers %d bound %d", len(trees), w, bounds[i])
				if (seq[i].Err == nil) != (par[i].Err == nil) {
					t.Fatalf("%s: seqErr=%v parErr=%v", ctx, seq[i].Err, par[i].Err)
				}
				if seq[i].Err != nil {
					if seq[i].Err.Error() != par[i].Err.Error() {
						t.Fatalf("%s: errors differ: %q vs %q", ctx, seq[i].Err, par[i].Err)
					}
					continue
				}
				equalResults(t, ctx, seq[i].Result, par[i].Result)
			}
		}
	}
}

func TestForestDescentWorkersIdentical(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		r := rand.New(rand.NewSource(int64(200 + trial)))
		set, tree := bigRandInstance(r)
		// Second tree over fresh variables woven into half the monomials.
		names := set.Names
		t2 := abstraction.NewTree("R2", names)
		var l2 []polynomial.Var
		for g := 0; g < 2; g++ {
			gid := t2.MustAddChild(t2.Root(), fmt.Sprintf("H%d", g))
			for l := 0; l < 3; l++ {
				id := t2.MustAddChild(gid, fmt.Sprintf("h%d_%d", g, l))
				l2 = append(l2, t2.Node(id).Var)
			}
		}
		for pi := range set.Polys {
			var b polynomial.Builder
			for _, m := range set.Polys[pi].Mons {
				nm := m.Clone()
				if r.Intn(2) == 0 {
					nm.Terms = append(nm.Terms, polynomial.T(l2[r.Intn(len(l2))]))
				}
				b.AddMonomial(polynomial.Mono(nm.Coef, nm.Terms...))
			}
			set.Polys[pi] = b.Polynomial()
		}
		forest := abstraction.Forest{tree, t2}
		for _, bound := range []int{set.Size() / 4, set.Size() / 2} {
			seq, seqErr := ForestDescentN(set, forest, bound, 0, 1)
			for _, w := range workerTable[1:] {
				ctx := fmt.Sprintf("trial %d bound %d workers %d", trial, bound, w)
				par, parErr := ForestDescentN(set, forest, bound, 0, w)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("%s: seqErr=%v parErr=%v", ctx, seqErr, parErr)
				}
				if seqErr != nil {
					continue
				}
				equalResults(t, ctx, seq, par)
			}
		}
	}
}

func TestBuildIndexShardedFirstErrorDeterministic(t *testing.T) {
	// An instance whose scan hits a multi-leaf monomial: every worker count
	// must report the same (first-in-scan-order) offending monomial.
	names := polynomial.NewNames()
	tree := abstraction.NewTree("R", names)
	a := tree.MustAddChild(tree.Root(), "la")
	bNode := tree.MustAddChild(tree.Root(), "lb")
	va, vb := tree.Node(a).Var, tree.Node(bNode).Var
	ctx := make([]polynomial.Var, 8)
	for i := range ctx {
		ctx[i] = names.Var(fmt.Sprintf("x%d", i))
	}
	set := polynomial.NewSet(names)
	var b polynomial.Builder
	for m := 0; m < 6000; m++ {
		b.Add(float64(m+1), polynomial.T(va), polynomial.T(ctx[m%len(ctx)]), polynomial.TExp(ctx[(m+3)%len(ctx)], 2))
	}
	// Offending monomial with both leaves, far into the scan.
	b.Add(3.5, polynomial.T(va), polynomial.T(vb))
	set.Add("g", b.Polynomial())

	var want string
	for _, w := range workerTable {
		_, err := buildIndexSource(set, tree, w)
		var mv *MultiVarError
		if !errors.As(err, &mv) {
			t.Fatalf("workers %d: want MultiVarError, got %v", w, err)
		}
		if w == 1 {
			want = mv.Error()
			continue
		}
		if got := mv.Error(); got != want {
			t.Fatalf("workers %d: error differs:\n got %q\nwant %q", w, got, want)
		}
	}
}

func TestCompressProblemWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	set, tree := bigRandInstance(r)
	bound := set.Size() / 2
	seq, err := Compress(Problem{Set: set, Trees: abstraction.Forest{tree}, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compress(Problem{Set: set, Trees: abstraction.Forest{tree}, Bound: bound, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "problem workers", seq, par)
}
