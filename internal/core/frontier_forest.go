// Forest-level frontier curves. A single tree's tradeoff curve comes from
// one DP run (frontier.go); this file composes per-tree curves into one
// forest-level curve with a knapsack-style DP over the trees. The
// composition is exact precisely when every monomial contains leaves of at
// most one tree of the forest — then the compressed size of a joint cut is
// additive across trees:
//
//	size(C_1, …, C_n) = fixed + Σ_i Σ_{u ∈ C_i} distinct_i(u)
//
// where fixed counts monomials containing no leaf of any tree. A monomial
// coupling two trees breaks additivity (its merges depend on both cuts
// jointly — the NP-hard case), so FrontierForest rejects it with a
// CrossTreeError; coordinate descent (ForestDescent) remains the tool for
// coupled instances.

package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// ForestFrontierPoint is one point of the forest-level tradeoff curve: the
// minimal joint compressed size achievable with exactly NumMeta cut nodes
// across the whole forest, and cuts (one per tree, in forest order)
// attaining it.
type ForestFrontierPoint struct {
	NumMeta int
	MinSize int
	Cuts    []abstraction.Cut
}

// CrossTreeError reports a monomial containing leaves of two different
// abstraction trees of the forest. Such a monomial couples the trees' cut
// choices — the compressed size stops being additive across trees and the
// joint optimization becomes NP-hard — so the frontier composition refuses
// the instance rather than return wrong minima. TreeA and TreeB index into
// the forest in the order the leaves were encountered within the monomial.
type CrossTreeError struct {
	Key          string // group key of the offending polynomial
	Mono         string // rendering of the offending monomial
	TreeA, TreeB int
}

func (e *CrossTreeError) Error() string {
	return fmt.Sprintf("core: monomial %q in group %q contains leaves of abstraction trees %d and %d; forest frontier sweeps require each monomial to touch at most one tree (use ForestDescent for coupled instances)",
		e.Mono, e.Key, e.TreeA, e.TreeB)
}

// FrontierForest computes the forest-level tradeoff curve for an in-memory
// set; see FrontierForestSource.
func FrontierForest(set *polynomial.Set, trees abstraction.Forest, workers int) ([]ForestFrontierPoint, error) {
	return FrontierForestSource(set, trees, workers)
}

// FrontierForestSource computes the complete forest-level tradeoff curve
// over any SetSource: each tree's per-k minima come from its own DP run
// (computed in parallel across trees for in-memory sets; strictly one tree
// at a time for sharded sources, so the residency budget holds), then a
// knapsack-style DP over the trees merges the per-tree curves into joint
// per-k minima. Points are returned in increasing total k (starting at
// len(trees) — every tree contributes at least its root); k values no
// combination of per-tree cuts can realize are omitted.
//
// The curve is exact — every MinSize equals the materialized size of its
// Cuts, and no joint cut with NumMeta cut nodes is smaller — under the
// condition it enforces: each monomial may contain leaves of at most one
// tree (CrossTreeError otherwise, MultiVarError for two leaves of the same
// tree). Every sub-computation is deterministic, so the curve is
// bit-identical for every source representation and worker count.
func FrontierForestSource(src polynomial.SetSource, trees abstraction.Forest, workers int) ([]ForestFrontierPoint, error) {
	if len(trees) == 0 {
		return nil, errors.New("core: no abstraction trees given")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	workers = parallel.Normalize(workers)
	if len(trees) == 1 {
		// Single tree: the per-tree curve IS the forest curve (and the
		// single-tree index's fixed count equals the forest's).
		fr, err := FrontierSourceN(src, trees[0], workers)
		if err != nil {
			return nil, err
		}
		out := make([]ForestFrontierPoint, len(fr))
		for i, p := range fr {
			//cobra:hotalloc each frontier point owns its single-cut slice; one per point of the returned curve
			out[i] = ForestFrontierPoint{NumMeta: p.NumMeta, MinSize: p.MinSize, Cuts: []abstraction.Cut{p.Cut}}
		}
		return out, nil
	}

	fixed, err := forestPartitionSource(src, trees, workers)
	if err != nil {
		return nil, err
	}

	// Per-tree DP states, one frontier run each. In-memory sets and
	// indexed (random-access) sources solve the trees in parallel over
	// the pool: their independent passes can run concurrently, each
	// tree's indexing pass sharding the leftover width. Other sources —
	// ShardedSets streaming spill files under one residency budget, whose
	// passes serialize on an internal mutex — solve strictly one tree at
	// a time with the full width, which the disk pipeline then overlaps
	// per-pass (polynomial.ForEachShardN inside buildIndexSource). Either
	// way each tree's state is deterministic, so the composed curve is
	// identical for every worker count and source representation.
	states := make([]*dpState, len(trees))
	errs := make([]error, len(trees))
	solve := func(i, w int) {
		idx, err := buildIndexSource(src, trees[i], w)
		if err != nil {
			errs[i] = err
			return
		}
		states[i], errs[i] = solveDP(trees[i], idx)
	}
	base := polynomial.Unwrap(src)
	_, concurrentOK := base.(*polynomial.Set)
	if ix, ok := base.(polynomial.IndexedSource); ok && ix.ConcurrentPasses() {
		concurrentOK = true
	}
	if concurrentOK && workers > 1 {
		inner := workers / len(trees)
		parallel.ForEach(workers, len(trees), func(i int) { solve(i, inner) })
	} else {
		for i := range trees {
			solve(i, workers)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Knapsack-style DP over the trees' root rows, mirroring solveDP's
	// sequential knapsack over children: cur[k-1] = minimal Σ distinct
	// when the first i trees jointly use k cut nodes; splits[i][k] = cut
	// nodes assigned to tree i at that optimum (reconstruction peels trees
	// from the last down to tree 1, so tree 0 needs no split table — it
	// receives whatever remains).
	var (
		cur      []int64
		curTotal int
		splits   = make([][]int32, len(trees))
	)
	for i := range trees {
		row := states[i].best[trees[i].Root()]
		if i == 0 {
			cur = append([]int64(nil), row...)
			curTotal = len(row)
			continue
		}
		nextTotal := curTotal + len(row)
		next := make([]int64, nextTotal)
		for j := range next {
			next[j] = inf
		}
		sp := make([]int32, nextTotal+1)
		for ka := 1; ka <= curTotal; ka++ {
			if cur[ka-1] >= inf {
				continue
			}
			for kb := 1; kb <= len(row); kb++ {
				if row[kb-1] >= inf {
					continue
				}
				k := ka + kb
				cost := cur[ka-1] + row[kb-1]
				if cost < next[k-1] {
					next[k-1] = cost
					sp[k] = int32(kb)
				}
			}
		}
		splits[i] = sp
		cur = next
		curTotal = nextTotal
	}

	// Extract the curve, reconstructing each tree's cut at its assigned k
	// once (many forest points share per-tree k values).
	cutCache := make([]map[int]abstraction.Cut, len(trees))
	cutAt := func(i, k int) (abstraction.Cut, error) {
		if c, ok := cutCache[i][k]; ok {
			return c, nil
		}
		c, err := reconstructCut(trees[i], states[i], k)
		if err != nil {
			return abstraction.Cut{}, err
		}
		if cutCache[i] == nil {
			cutCache[i] = make(map[int]abstraction.Cut)
		}
		cutCache[i][k] = c
		return c, nil
	}
	var out []ForestFrontierPoint
	for k := 1; k <= curTotal; k++ {
		if cur[k-1] >= inf {
			continue
		}
		cuts := make([]abstraction.Cut, len(trees))
		rem := k
		for i := len(trees) - 1; i >= 1; i-- {
			kb := int(splits[i][rem])
			c, err := cutAt(i, kb)
			if err != nil {
				return nil, err
			}
			cuts[i] = c
			rem -= kb
		}
		c, err := cutAt(0, rem)
		if err != nil {
			return nil, err
		}
		cuts[0] = c
		out = append(out, ForestFrontierPoint{
			NumMeta: k,
			MinSize: int(cur[k-1]) + fixed,
			Cuts:    cuts,
		})
	}
	return out, nil
}

// BestForForestBound picks the forest curve point the optimizer would
// return for the bound: the maximal feasible number of cut nodes and,
// among points tied on that count, the smallest MinSize. ok is false if no
// point fits.
func BestForForestBound(points []ForestFrontierPoint, bound int) (ForestFrontierPoint, bool) {
	best, ok := -1, false
	for i := range points {
		if points[i].MinSize > bound {
			continue
		}
		if !ok || points[i].NumMeta > points[best].NumMeta ||
			(points[i].NumMeta == points[best].NumMeta && points[i].MinSize < points[best].MinSize) {
			best, ok = i, true
		}
	}
	if !ok {
		return ForestFrontierPoint{}, false
	}
	return points[best], true
}

// forestPartitionSource scans the source once, checking that every
// monomial contains leaves of at most one tree and counting the monomials
// containing no leaf of any tree — the fixed part every joint cut shares.
// Large shards scan their monomial ranges in parallel; the range counts
// are order-independent and on error the earliest range's first error wins
// (the same monomial a sequential scan would report), so both the count
// and the error are identical for every worker count.
func forestPartitionSource(src polynomial.SetSource, trees abstraction.Forest, workers int) (int, error) {
	owners := trees.LeafOwners()
	fixed := 0
	err := polynomial.ForEachShardN(src, workers, func(_, _ int, s *polynomial.Set) error {
		n, err := scanForestPartition(s, owners, workers)
		if err != nil {
			return err
		}
		fixed += n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return fixed, nil
}

// scanForestPartition checks one shard; see forestPartitionSource.
func scanForestPartition(s *polynomial.Set, owners map[polynomial.Var]abstraction.ForestLeaf, workers int) (int, error) {
	if workers == 1 || s.Size() < minParallelIndexMons {
		fixed := 0
		for pi, p := range s.Polys {
			for _, m := range p.Mons {
				hasLeaf, err := forestLeafCheck(m, owners, s.Keys[pi], p, s.Names)
				if err != nil {
					return 0, err
				}
				if !hasLeaf {
					fixed++
				}
			}
		}
		return fixed, nil
	}

	// offs[i] = number of monomials before polynomial i.
	offs := make([]int, len(s.Polys)+1)
	for i, p := range s.Polys {
		offs[i+1] = offs[i] + len(p.Mons)
	}
	total := offs[len(s.Polys)]

	type rangeScan struct {
		fixed int
		err   error
	}
	shards := make([]rangeScan, parallel.Normalize(workers))
	n := parallel.Chunks(workers, total, func(shard, lo, hi int) {
		sh := &shards[shard]
		pi := sort.SearchInts(offs, lo+1) - 1
		for ; pi < len(s.Polys) && offs[pi] < hi; pi++ {
			p := s.Polys[pi]
			mlo, mhi := 0, len(p.Mons)
			if v := lo - offs[pi]; v > mlo {
				mlo = v
			}
			if v := hi - offs[pi]; v < mhi {
				mhi = v
			}
			for _, m := range p.Mons[mlo:mhi] {
				hasLeaf, err := forestLeafCheck(m, owners, s.Keys[pi], p, s.Names)
				if err != nil {
					sh.err = err
					return
				}
				if !hasLeaf {
					sh.fixed++
				}
			}
		}
	})

	fixed := 0
	for si := 0; si < n; si++ {
		if shards[si].err != nil {
			return 0, shards[si].err
		}
		fixed += shards[si].fixed
	}
	return fixed, nil
}

// forestLeafCheck reports whether the monomial contains a forest leaf,
// rejecting a second leaf: of the same tree with a MultiVarError (the
// single-tree DP's own precondition), of a different tree with a
// CrossTreeError (additivity across trees would break). The first
// offending term pair in term order wins, deterministically.
func forestLeafCheck(m polynomial.Monomial, owners map[polynomial.Var]abstraction.ForestLeaf, key string, p polynomial.Polynomial, names *polynomial.Names) (bool, error) {
	first := -1
	for _, t := range m.Terms {
		o, ok := owners[t.Var]
		if !ok {
			continue
		}
		if first < 0 {
			first = o.Tree
			continue
		}
		if o.Tree == first {
			// Match the single-tree scan's error rendering exactly.
			return false, &MultiVarError{Key: key, Mono: p.String(names)}
		}
		mono := polynomial.Polynomial{Mons: []polynomial.Monomial{m}}
		return false, &CrossTreeError{Key: key, Mono: mono.String(names), TreeA: first, TreeB: o.Tree}
	}
	return first >= 0, nil
}
