package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// shardedFixture builds the telephony provenance plus a sharded copy that
// spills: the budget is far below the set size, so the compression must
// run genuinely out-of-core.
func shardedFixture(t *testing.T) (*polynomial.Set, *polynomial.ShardedSet, int) {
	t.Helper()
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 30_000}, names)
	budget := set.Size() / 4
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{
		MaxResidentMonomials: budget,
		SpillDir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	if ss.SpilledShards() == 0 {
		t.Fatalf("fixture did not spill (size %d, budget %d)", set.Size(), budget)
	}
	return set, ss, budget
}

func resultsIdentical(a, b *Result) bool {
	if a.Size != b.Size || a.NumMeta != b.NumMeta || a.UsedMeta != b.UsedMeta ||
		a.OriginalSize != b.OriginalSize || a.OriginalVars != b.OriginalVars ||
		len(a.Cuts) != len(b.Cuts) {
		return false
	}
	for i := range a.Cuts {
		if !a.Cuts[i].Equal(b.Cuts[i]) {
			return false
		}
	}
	return true
}

// TestDPSingleTreeShardedMatchesInMemory: the sharded DP must return the
// exact in-memory result for every worker count, while staying within the
// memory budget.
func TestDPSingleTreeShardedMatchesInMemory(t *testing.T) {
	set, ss, budget := shardedFixture(t)
	tree := telephony.PlansTree(set.Names)
	bound := set.Size() / 2
	want, err := DPSingleTree(set, tree, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := DPSingleTreeSharded(ss, tree, bound, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !resultsIdentical(want, got) {
			t.Fatalf("workers=%d: sharded result differs: %+v vs %+v", w, got, want)
		}
	}
	if peak := ss.PeakResidentMonomials(); peak > budget {
		t.Fatalf("peak resident %d exceeds budget %d", peak, budget)
	}
}

// TestForestDescentShardedMatchesInMemory: same guarantee for the
// coordinate-descent path over two trees.
func TestForestDescentShardedMatchesInMemory(t *testing.T) {
	set, ss, _ := shardedFixture(t)
	forest := abstraction.Forest{telephony.PlansTree(set.Names), telephony.MonthsTree(set.Names, 12)}
	bound := set.Size() / 4
	want, err := ForestDescent(set, forest, bound, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := ForestDescentSharded(ss, forest, bound, 0, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !resultsIdentical(want, got) {
			t.Fatalf("workers=%d: sharded result differs: %+v vs %+v", w, got, want)
		}
	}
}

// TestCompressShardedAppliedOutput: applying the sharded result shard-at-
// a-time must materialize to exactly the in-memory compressed set, for
// every worker count.
func TestCompressShardedAppliedOutput(t *testing.T) {
	set, ss, budget := shardedFixture(t)
	tree := telephony.PlansTree(set.Names)
	bound := set.Size() / 2
	for _, w := range []int{1, 2, 8} {
		res, err := CompressSharded(ss, abstraction.Forest{tree}, bound, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		want := abstraction.Apply(set, res.Cuts...)
		compressed, err := abstraction.ApplySharded(ss, w, res.Cuts...)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got, err := compressed.Materialize()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d polys vs %d", w, got.Len(), want.Len())
		}
		for i := range want.Keys {
			if got.Keys[i] != want.Keys[i] || !polynomial.Equal(got.Polys[i], want.Polys[i]) {
				t.Fatalf("workers=%d: polynomial %d differs", w, i)
			}
		}
		if peak := compressed.PeakResidentMonomials(); peak > budget {
			t.Fatalf("workers=%d: compressed peak resident %d exceeds budget %d", w, peak, budget)
		}
		compressed.Close()
	}
}

// TestBuildIndexShardedMultiVarError: the sharded scan must surface the
// same MultiVarError the in-memory scan reports.
func TestBuildIndexShardedMultiVarError(t *testing.T) {
	names := polynomial.NewNames()
	tree := telephony.PlansTree(names)
	set := polynomial.NewSet(names)
	set.Add("bad", polynomial.MustParse("3*p1*p2", names))
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for _, w := range []int{1, 8} {
		_, err := DPSingleTreeSharded(ss, tree, 10, w)
		var mv *MultiVarError
		if !errors.As(err, &mv) {
			t.Fatalf("workers=%d: want MultiVarError, got %v", w, err)
		}
	}
}

// TestCompressShardedLargeSingleShard exercises the within-shard parallel
// scan path (shards above minParallelIndexMons) against the sequential
// one.
func TestCompressShardedLargeSingleShard(t *testing.T) {
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 60_000}, names)
	tree := telephony.PlansTree(names)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: set.Size()})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.NumShards() != 1 || ss.Size() < minParallelIndexMons {
		t.Fatalf("fixture: %d shards, %d mons", ss.NumShards(), ss.Size())
	}
	bound := set.Size() / 2
	want, err := DPSingleTree(set, tree, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		got, err := DPSingleTreeSharded(ss, tree, bound, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !resultsIdentical(want, got) {
			t.Fatalf("workers=%d: differs", w)
		}
	}
}

func ExampleCompressSharded() {
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: 1000}, names)
	ss, _ := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: set.Size() / 2})
	defer ss.Close()
	res, _ := CompressSharded(ss, abstraction.Forest{telephony.PlansTree(names)}, set.Size()/2, 4)
	fmt.Println(len(res.Cuts) == 1 && res.Size <= set.Size()/2)
	// Output: true
}
