package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// MaxExhaustiveCuts caps the number of cuts Exhaustive will enumerate before
// giving up: the number of cuts may be exponential in the tree size, and
// Exhaustive exists as a ground-truth oracle for small trees, not a
// production path.
const MaxExhaustiveCuts = 2_000_000

// Exhaustive solves the single-tree problem by enumerating every cut and
// scoring it with the additive size formula. Results are optimal and used in
// tests as the oracle against DPSingleTree. It fails if the tree has more
// than MaxExhaustiveCuts cuts.
func Exhaustive(set *polynomial.Set, tree *abstraction.Tree, bound int) (*Result, error) {
	if bound < 0 {
		return nil, errNegativeBound(bound)
	}
	if n := tree.CountCuts(); n > MaxExhaustiveCuts {
		return nil, fmt.Errorf("core: tree has %d cuts, exceeding the exhaustive cap %d", n, MaxExhaustiveCuts)
	}
	idx, err := buildIndex(set, tree)
	if err != nil {
		return nil, err
	}
	var (
		found    bool
		bestCut  abstraction.Cut
		bestVars int
		bestSize int64
		minSize  = inf
	)
	tree.EnumerateCuts(func(c abstraction.Cut) bool {
		size := idx.cutSize(c)
		if size < minSize {
			minSize = size
		}
		if size > int64(bound) {
			return true
		}
		vars := c.NumVars()
		if !found || vars > bestVars || (vars == bestVars && size < bestSize) {
			found = true
			bestCut = c
			bestVars = vars
			bestSize = size
		}
		return true
	})
	if !found {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: int(minSize)}
	}
	r := &Result{Cuts: []abstraction.Cut{bestCut}, Size: int(bestSize)}
	fillResult(r, set)
	return r, nil
}
