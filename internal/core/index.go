package core

import (
	"encoding/binary"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// index is the signature index for one abstraction tree over one polynomial
// set. For every monomial containing exactly one tree leaf x, its signature
// is the triple (group index, residual term vector, exponent of x); two
// monomials merge under a cut iff their signatures coincide and their leaves
// map to the same cut node. The index stores, per tree node v, the number of
// distinct signatures among leaves below v — distinct(v) — which makes the
// size of any cut C additive:
//
//	size(C) = fixed + Σ_{u∈C} distinct(u)
//
// where fixed counts monomials with no tree leaf.
type index struct {
	tree  *abstraction.Tree
	fixed int // monomials without any tree leaf

	// distinct[v] = number of distinct signatures under node v.
	distinct []int64

	// leafSigs[leaf] = sorted unique signature ids at that leaf.
	leafSigs map[abstraction.NodeID][]int32

	numSigs int
}

// buildIndex scans the set once and computes per-node distinct counts via
// bottom-up small-to-large set union. It returns a MultiVarError if any
// monomial contains two or more leaves of the tree.
func buildIndex(set *polynomial.Set, tree *abstraction.Tree) (*index, error) {
	leafOf := tree.LeafVarSet()
	idx := &index{
		tree:     tree,
		distinct: make([]int64, tree.Len()),
		leafSigs: make(map[abstraction.NodeID][]int32),
	}

	sigIDs := make(map[string]int32)
	perLeaf := make(map[abstraction.NodeID]map[int32]struct{})
	var keyBuf []byte

	for pi, p := range set.Polys {
		for _, m := range p.Mons {
			leaf := abstraction.NoNode
			leafExp := int32(0)
			for _, t := range m.Terms {
				if id, ok := leafOf[t.Var]; ok {
					if leaf != abstraction.NoNode {
						return nil, &MultiVarError{Key: set.Keys[pi], Mono: p.String(set.Names)}
					}
					leaf = id
					leafExp = t.Exp
				}
			}
			if leaf == abstraction.NoNode {
				idx.fixed++
				continue
			}
			// Signature: group index, leaf exponent, residual terms.
			keyBuf = keyBuf[:0]
			keyBuf = binary.AppendUvarint(keyBuf, uint64(pi))
			keyBuf = binary.AppendUvarint(keyBuf, uint64(uint32(leafExp)))
			keyBuf = appendResidualKey(keyBuf, m.Terms, tree.Node(leaf).Var)
			key := string(keyBuf)
			sid, ok := sigIDs[key]
			if !ok {
				sid = int32(len(sigIDs))
				sigIDs[key] = sid
			}
			s := perLeaf[leaf]
			if s == nil {
				s = make(map[int32]struct{})
				perLeaf[leaf] = s
			}
			s[sid] = struct{}{}
		}
	}
	idx.numSigs = len(sigIDs)

	// Record per-leaf signature lists.
	for leaf, s := range perLeaf {
		ids := make([]int32, 0, len(s))
		for id := range s {
			ids = append(ids, id)
		}
		idx.leafSigs[leaf] = ids
	}

	// Bottom-up small-to-large union to get distinct(v) for every node.
	sets := make([]map[int32]struct{}, tree.Len())
	for _, v := range tree.Postorder() {
		n := tree.Node(v)
		if len(n.Children) == 0 {
			s := perLeaf[v]
			if s == nil {
				s = map[int32]struct{}{}
			}
			sets[v] = s
			idx.distinct[v] = int64(len(s))
			continue
		}
		// Small-to-large: merge all children into the largest child's set.
		var acc map[int32]struct{}
		accChild := abstraction.NoNode
		for _, c := range n.Children {
			if acc == nil || len(sets[c]) > len(acc) {
				acc = sets[c]
				accChild = c
			}
		}
		if acc == nil {
			acc = map[int32]struct{}{}
		}
		for _, c := range n.Children {
			if c != accChild {
				for id := range sets[c] {
					acc[id] = struct{}{}
				}
			}
			sets[c] = nil // release child storage
		}
		sets[v] = acc
		idx.distinct[v] = int64(len(acc))
	}
	return idx, nil
}

func appendResidualKey(buf []byte, terms []polynomial.Term, skip polynomial.Var) []byte {
	for _, t := range terms {
		if t.Var == skip {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(uint32(t.Var)))
		buf = binary.AppendUvarint(buf, uint64(uint32(t.Exp)))
	}
	return buf
}

// cutSize returns the provenance size after applying a cut, using the
// additive formula.
func (idx *index) cutSize(c abstraction.Cut) int64 {
	s := int64(idx.fixed)
	for _, id := range c.Nodes {
		s += idx.distinct[id]
	}
	return s
}

// leafCount returns the number of leaves under each node (indexed by node).
func leafCounts(tree *abstraction.Tree) []int {
	counts := make([]int, tree.Len())
	for _, v := range tree.Postorder() {
		n := tree.Node(v)
		if len(n.Children) == 0 {
			counts[v] = 1
			continue
		}
		for _, c := range n.Children {
			counts[v] += counts[c]
		}
	}
	return counts
}
