package core

import (
	"encoding/binary"
	"sort"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// index is the signature index for one abstraction tree over one polynomial
// set. For every monomial containing exactly one tree leaf x, its signature
// is the triple (group index, residual term vector, exponent of x); two
// monomials merge under a cut iff their signatures coincide and their leaves
// map to the same cut node. The index stores, per tree node v, the number of
// distinct signatures among leaves below v — distinct(v) — which makes the
// size of any cut C additive:
//
//	size(C) = fixed + Σ_{u∈C} distinct(u)
//
// where fixed counts monomials with no tree leaf.
type index struct {
	tree  *abstraction.Tree
	fixed int // monomials without any tree leaf

	// distinct[v] = number of distinct signatures under node v.
	distinct []int64
}

// minParallelIndexMons is the set size below which sharded signature
// scanning costs more in goroutine handoff and map merging than it saves.
const minParallelIndexMons = 4096

// buildIndex scans the set once and computes per-node distinct counts via
// bottom-up small-to-large set union. It returns a MultiVarError if any
// monomial contains two or more leaves of the tree.
func buildIndex(set *polynomial.Set, tree *abstraction.Tree) (*index, error) {
	return buildIndexSource(set, tree, 1)
}

// buildIndexSource is the one signature-index construction every
// compression path shares: it scans any SetSource one shard at a time into
// shared signature maps, offsetting each shard's polynomial indices by its
// global position. An in-memory Set presents itself as a single shard, so
// the in-memory and out-of-core paths run literally the same code. Within
// a shard large enough to amortize the pool, the scan is sharded over
// contiguous monomial ranges across up to workers goroutines, each range
// interning signatures into a private map merged in range order into
// global ids. distinct(v) counts only signature-set cardinalities, which
// are independent of id assignment and of shard/range boundaries, so the
// index — and everything the DP derives from it — is identical for every
// source representation and worker count.
func buildIndexSource(src polynomial.SetSource, tree *abstraction.Tree, workers int) (*index, error) {
	leafOf := tree.LeafVarSet()
	idx := &index{
		tree:     tree,
		distinct: make([]int64, tree.Len()),
	}

	workers = parallel.Normalize(workers)
	sigIDs := make(map[string]int32)
	perLeaf := make(map[abstraction.NodeID]map[int32]struct{})
	// ForEachShardN overlaps shard decode with the scan on sources that
	// support it; the scan itself still runs shard-at-a-time in shard
	// order, so the index is unchanged.
	err := polynomial.ForEachShardN(src, workers, func(_, firstPoly int, s *polynomial.Set) error {
		if workers == 1 || s.Size() < minParallelIndexMons {
			return scanSignaturesInto(s, leafOf, tree, idx, firstPoly, sigIDs, perLeaf)
		}
		return scanSignaturesShardedInto(s, leafOf, tree, idx, firstPoly, sigIDs, perLeaf, workers)
	})
	if err != nil {
		return nil, err
	}
	finishIndex(idx, tree, perLeaf)
	return idx, nil
}

// finishIndex turns the per-leaf signature-id sets into per-node distinct
// counts via bottom-up small-to-large set union.
func finishIndex(idx *index, tree *abstraction.Tree, perLeaf map[abstraction.NodeID]map[int32]struct{}) {
	sets := make([]map[int32]struct{}, tree.Len())
	for _, v := range tree.Postorder() {
		n := tree.Node(v)
		if len(n.Children) == 0 {
			s := perLeaf[v]
			if s == nil {
				s = map[int32]struct{}{}
			}
			sets[v] = s
			idx.distinct[v] = int64(len(s))
			continue
		}
		// Small-to-large: merge all children into the largest child's set.
		var acc map[int32]struct{}
		accChild := abstraction.NoNode
		for _, c := range n.Children {
			if acc == nil || len(sets[c]) > len(acc) {
				acc = sets[c]
				accChild = c
			}
		}
		if acc == nil {
			acc = map[int32]struct{}{}
		}
		for _, c := range n.Children {
			if c != accChild {
				//cobra:deterministic set union into a map; visit order cannot reach the result
				for id := range sets[c] {
					acc[id] = struct{}{}
				}
			}
			sets[c] = nil // release child storage
		}
		sets[v] = acc
		idx.distinct[v] = int64(len(acc))
	}
}

// scanSignaturesInto is the sequential signature scan: it interns every
// leaf-bearing monomial's signature into sigIDs, fills idx.fixed, and
// extends the per-leaf signature-id sets. piOff is the global index of the
// set's first polynomial, so that a set scanned shard-at-a-time (each
// shard one call, sharing sigIDs/perLeaf) indexes identically to one
// scanned whole.
func scanSignaturesInto(set *polynomial.Set, leafOf map[polynomial.Var]abstraction.NodeID, tree *abstraction.Tree, idx *index, piOff int, sigIDs map[string]int32, perLeaf map[abstraction.NodeID]map[int32]struct{}) error {
	var keyBuf []byte

	for pi, p := range set.Polys {
		for _, m := range p.Mons {
			leaf, leafExp, err := leafOfMonomial(m, leafOf, set.Keys[pi], p, set.Names)
			if err != nil {
				return err
			}
			if leaf == abstraction.NoNode {
				idx.fixed++
				continue
			}
			keyBuf = appendSigKey(keyBuf[:0], piOff+pi, leafExp, m.Terms, tree.Node(leaf).Var)
			// Lookup with string(keyBuf) directly: the compiler elides
			// the conversion on map reads, so the key string is only
			// materialized once per distinct signature, on the miss.
			sid, ok := sigIDs[string(keyBuf)]
			if !ok {
				sid = int32(len(sigIDs))
				//cobra:hotalloc the map retains its key: one allocation per distinct signature, not per monomial
				sigIDs[string(keyBuf)] = sid
			}
			s := perLeaf[leaf]
			if s == nil {
				s = make(map[int32]struct{})
				perLeaf[leaf] = s
			}
			s[sid] = struct{}{}
		}
	}

	return nil
}

// sigShard holds one shard's partial scan: locally-interned signatures
// (keys indexed by local id) and one packed (leaf, local-id) pair per
// leaf-bearing monomial, over a contiguous run of whole polynomials.
type sigShard struct {
	fixed int
	keys  []string
	pairs []uint64 // leaf<<32 | local sid, one per leaf-bearing monomial
	err   error
}

// scanSignaturesShardedInto runs the signature scan over contiguous runs
// of polynomials in parallel and merges the partial results in range
// order into the shared sigIDs/perLeaf maps (piOff as in
// scanSignaturesInto). Chunk boundaries snap to polynomial boundaries:
// signatures embed the polynomial index, so whole-polynomial shards
// intern disjoint signature sets and the parallel scan materializes
// exactly one key string per distinct signature, like the sequential
// scan. Each shard's allocations beyond that are O(1) slabs reused
// across its whole range — the per-worker-arena invariant the alloc-
// parity test in bench_test.go pins down. If several ranges hit a
// MultiVarError, the error of the earliest range — the first offending
// monomial in scan order, as in the sequential path — wins.
func scanSignaturesShardedInto(set *polynomial.Set, leafOf map[polynomial.Var]abstraction.NodeID, tree *abstraction.Tree, idx *index, piOff int, sigIDs map[string]int32, perLeaf map[abstraction.NodeID]map[int32]struct{}, workers int) error {
	// offs[i] = number of monomials before polynomial i.
	offs := make([]int, len(set.Polys)+1)
	for i, p := range set.Polys {
		offs[i+1] = offs[i] + len(p.Mons)
	}
	total := offs[len(set.Polys)]

	shards := make([]sigShard, parallel.Normalize(workers))
	n := parallel.Chunks(workers, total, func(shard, lo, hi int) {
		sh := &shards[shard]
		localIDs := make(map[string]int32)
		var keyBuf []byte
		// The shard owns the polynomials whose first monomial lies in
		// [lo, hi) — every polynomial lands in exactly one shard, in
		// scan order across shards.
		for pi := sort.SearchInts(offs, lo); pi < len(set.Polys) && offs[pi] < hi; pi++ {
			p := set.Polys[pi]
			for _, m := range p.Mons {
				leaf, leafExp, err := leafOfMonomial(m, leafOf, set.Keys[pi], p, set.Names)
				if err != nil {
					if sh.err == nil {
						sh.err = err
					}
					return
				}
				if leaf == abstraction.NoNode {
					sh.fixed++
					continue
				}
				keyBuf = appendSigKey(keyBuf[:0], piOff+pi, leafExp, m.Terms, tree.Node(leaf).Var)
				// Lookup with string(keyBuf) directly (elided on map
				// reads); the key string materializes only once per
				// distinct signature, on the miss.
				sid, ok := localIDs[string(keyBuf)]
				if !ok {
					sid = int32(len(localIDs))
					//cobra:hotalloc the map and keys retain the string: one allocation per distinct signature, not per monomial
					key := string(keyBuf)
					localIDs[key] = sid
					sh.keys = append(sh.keys, key)
				}
				sh.pairs = append(sh.pairs, uint64(uint32(leaf))<<32|uint64(uint32(sid)))
			}
		}
	})

	// Merge in range order: remap each range's local ids to global ids,
	// then replay the (leaf, sid) occurrences into the shared per-leaf
	// sets — the same per-monomial inserts the sequential scan performs.
	for si := 0; si < n; si++ {
		sh := &shards[si]
		if sh.err != nil {
			return sh.err
		}
		idx.fixed += sh.fixed
		remap := make([]int32, len(sh.keys))
		for lid, key := range sh.keys {
			gid, ok := sigIDs[key]
			if !ok {
				gid = int32(len(sigIDs))
				sigIDs[key] = gid
			}
			remap[lid] = gid
		}
		for _, pr := range sh.pairs {
			leaf := abstraction.NodeID(int32(pr >> 32))
			s := perLeaf[leaf]
			if s == nil {
				s = make(map[int32]struct{})
				perLeaf[leaf] = s
			}
			s[remap[uint32(pr)]] = struct{}{}
		}
	}

	return nil
}

// leafOfMonomial finds the unique tree leaf occurring in the monomial (or
// NoNode), returning a MultiVarError when the monomial contains two or more
// leaves of the tree.
func leafOfMonomial(m polynomial.Monomial, leafOf map[polynomial.Var]abstraction.NodeID, key string, p polynomial.Polynomial, names *polynomial.Names) (abstraction.NodeID, int32, error) {
	leaf := abstraction.NoNode
	leafExp := int32(0)
	for _, t := range m.Terms {
		if id, ok := leafOf[t.Var]; ok {
			if leaf != abstraction.NoNode {
				return abstraction.NoNode, 0, &MultiVarError{Key: key, Mono: p.String(names)}
			}
			leaf = id
			leafExp = t.Exp
		}
	}
	return leaf, leafExp, nil
}

// appendSigKey encodes a monomial's signature: group index, leaf exponent,
// residual term vector (the monomial minus its tree-leaf variable).
func appendSigKey(buf []byte, pi int, leafExp int32, terms []polynomial.Term, skip polynomial.Var) []byte {
	buf = binary.AppendUvarint(buf, uint64(pi))
	buf = binary.AppendUvarint(buf, uint64(uint32(leafExp)))
	return appendResidualKey(buf, terms, skip)
}

func appendResidualKey(buf []byte, terms []polynomial.Term, skip polynomial.Var) []byte {
	for _, t := range terms {
		if t.Var == skip {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(uint32(t.Var)))
		buf = binary.AppendUvarint(buf, uint64(uint32(t.Exp)))
	}
	return buf
}

// cutSize returns the provenance size after applying a cut, using the
// additive formula.
func (idx *index) cutSize(c abstraction.Cut) int64 {
	s := int64(idx.fixed)
	for _, id := range c.Nodes {
		s += idx.distinct[id]
	}
	return s
}

// leafCount returns the number of leaves under each node (indexed by node).
func leafCounts(tree *abstraction.Tree) []int {
	counts := make([]int, tree.Len())
	for _, v := range tree.Postorder() {
		n := tree.Node(v)
		if len(n.Children) == 0 {
			counts[v] = 1
			continue
		}
		for _, c := range n.Children {
			counts[v] += counts[c]
		}
	}
	return counts
}
