// Batched multi-bound frontier sweeps: hypothetical reasoning in practice
// means sliding a size bound interactively, and re-running the DP per bound
// re-pays its dominant cost — the signature-indexing scan — every time. A
// sweep runs the DP once, extracts the full tradeoff curve, and answers an
// arbitrary batch of bounds by lookup.

package core

import (
	"errors"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// SweepAnswer is a frontier sweep's answer for one requested bound: either
// the Result per-bound compression would have produced, or the error it
// would have returned (an *InfeasibleError for unreachable bounds). Exactly
// one of Result and Err is non-nil.
type SweepAnswer struct {
	Bound  int
	Result *Result
	Err    error
}

// FrontierSweep answers a batch of bounds over an in-memory set; see
// FrontierSweepSource.
func FrontierSweep(set *polynomial.Set, trees abstraction.Forest, bounds []int, workers int) ([]SweepAnswer, error) {
	return FrontierSweepSource(set, trees, bounds, workers)
}

// FrontierSweepSource answers an arbitrary batch of bounds from ONE DP run
// over any SetSource: the tradeoff curve is computed once (FrontierSourceN
// for a single tree, FrontierForestSource for a forest) and every bound
// becomes a curve lookup, so a batch of N bounds costs one compression
// instead of N. Answers are returned in bounds order; duplicate bounds are
// answered consistently.
//
// For a single tree each answer is bit-identical — cut, sizes, statistics,
// and error — to what DPSingleTreeSource(src, tree, bound, workers) returns
// for that bound, for every worker count. For a forest the sweep requires
// each monomial to touch at most one tree (CrossTreeError otherwise) and
// the answers are then exact optima (maximal total cut nodes, ties toward
// smaller size) — matching ExhaustiveForest where coordinate descent may
// settle for less.
//
// A hard error (cross-tree or multi-variable monomials, invalid forest)
// fails the whole sweep; per-bound infeasibility lands in that bound's
// answer.
func FrontierSweepSource(src polynomial.SetSource, trees abstraction.Forest, bounds []int, workers int) ([]SweepAnswer, error) {
	if len(trees) == 0 {
		return nil, errors.New("core: no abstraction trees given")
	}
	var (
		single []FrontierPoint
		forest []ForestFrontierPoint
		err    error
	)
	if len(trees) == 1 {
		single, err = FrontierSourceN(src, trees[0], workers)
	} else {
		forest, err = FrontierForestSource(src, trees, workers)
	}
	if err != nil {
		return nil, err
	}
	return AnswersFromCurves(len(trees), single, forest, src.Size(), src.UsedVars(), bounds), nil
}

// AnswersFromCurves answers a batch of bounds from already-computed
// tradeoff curves — the lookup half of FrontierSweepSource, split out so
// callers that memoize a curve (a session Dataset, the REPL) can answer
// sweeps without re-running the DP. numTrees selects which curve applies
// (single for one tree, forest otherwise); size and used are the input
// set's statistics, shared by every answer. The answers are bit-identical
// to FrontierSweepSource over the same source.
func AnswersFromCurves(numTrees int, single []FrontierPoint, forest []ForestFrontierPoint, size int, used []polynomial.Var, bounds []int) []SweepAnswer {
	// MinAchievable for infeasible bounds: the coarsest point — every
	// tree's root — which both curves emit first (coarsening only merges
	// monomials, so it is the global minimum).
	minAch := 0
	if len(single) > 0 {
		minAch = single[0].MinSize
	}
	if len(forest) > 0 {
		minAch = forest[0].MinSize
	}

	answers := make([]SweepAnswer, len(bounds))
	for bi, bound := range bounds {
		a := SweepAnswer{Bound: bound}
		switch {
		case bound < 0 && numTrees == 1:
			// Per-bound DP rejects negative bounds rather than reporting
			// them infeasible; answer with the identical error.
			a.Err = errNegativeBound(bound)
		case numTrees == 1:
			if p, ok := BestForBound(single, bound); ok {
				r := &Result{Cuts: []abstraction.Cut{p.Cut}, Size: p.MinSize}
				fillResultFrom(r, size, used)
				a.Result = r
			} else {
				//cobra:hotalloc the error is the per-bound answer of the batched sweep, one per infeasible bound
				a.Err = &InfeasibleError{Bound: bound, MinAchievable: minAch}
			}
		default:
			if p, ok := BestForForestBound(forest, bound); ok {
				r := &Result{Cuts: append([]abstraction.Cut(nil), p.Cuts...), Size: p.MinSize}
				fillResultFrom(r, size, used)
				a.Result = r
			} else {
				//cobra:hotalloc the error is the per-bound answer of the batched sweep, one per infeasible bound
				a.Err = &InfeasibleError{Bound: bound, MinAchievable: minAch}
			}
		}
		answers[bi] = a
	}
	return answers
}
