// Shard-at-a-time compression: the same exact algorithms (single-tree DP,
// forest coordinate descent) running against a polynomial.ShardedSet whose
// shards may live on disk. The signature index — the only global state the
// DP needs — is built incrementally shard by shard, so peak memory is one
// shard plus the index, never the provenance. Every path reuses the
// in-memory scan/DP code on each shard (parallel within the shard, merged
// in range order), so results are bit-identical to the materialized path
// for every worker count.

package core

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// CompressSharded solves the instance over a sharded set: exact DP for a
// single tree, coordinate descent for a forest — the streaming counterpart
// of Compress. Results are identical to Compress on the materialized set.
func CompressSharded(ss *polynomial.ShardedSet, trees abstraction.Forest, bound int, workers int) (*Result, error) {
	switch len(trees) {
	case 0:
		return nil, fmt.Errorf("core: no abstraction trees given")
	case 1:
		return DPSingleTreeSharded(ss, trees[0], bound, workers)
	default:
		return ForestDescentSharded(ss, trees, bound, 0, workers)
	}
}

// buildIndexSharded builds the signature index over a sharded set by
// scanning one shard at a time into shared signature maps, offsetting each
// shard's polynomial indices by its global position. Shards large enough
// to amortize the pool shard their scan over workers internally, with the
// partial maps merged in range order; signature strings and distinct
// counts are therefore identical to buildIndexN on the materialized set.
func buildIndexSharded(ss *polynomial.ShardedSet, tree *abstraction.Tree, workers int) (*index, error) {
	leafOf := tree.LeafVarSet()
	idx := &index{
		tree:     tree,
		distinct: make([]int64, tree.Len()),
	}
	workers = parallel.Normalize(workers)
	sigIDs := make(map[string]int32)
	perLeaf := make(map[abstraction.NodeID]map[int32]struct{})
	err := ss.ForEachShard(func(_, firstPoly int, s *polynomial.Set) error {
		if workers == 1 || s.Size() < minParallelIndexMons {
			return scanSignaturesInto(s, leafOf, tree, idx, firstPoly, sigIDs, perLeaf)
		}
		return scanSignaturesShardedInto(s, leafOf, tree, idx, firstPoly, sigIDs, perLeaf, workers)
	})
	if err != nil {
		return nil, err
	}
	finishIndex(idx, tree, perLeaf)
	return idx, nil
}

// DPSingleTreeSharded is DPSingleTreeN over a sharded set: the index is
// built shard-at-a-time and the DP runs on it as usual. The result —
// including the input statistics, which come from the set's streaming
// metadata — is identical to the in-memory DP for every worker count.
func DPSingleTreeSharded(ss *polynomial.ShardedSet, tree *abstraction.Tree, bound int, workers int) (*Result, error) {
	if bound < 0 {
		return nil, fmt.Errorf("core: negative bound %d", bound)
	}
	idx, err := buildIndexSharded(ss, tree, workers)
	if err != nil {
		return nil, err
	}
	r, err := dpChooseCut(tree, idx, bound)
	if err != nil {
		return nil, err
	}
	fillResultFrom(r, ss.Size(), ss.UsedVars())
	return r, nil
}

// ForestDescentSharded is ForestDescent over a sharded set. It mirrors the
// sequential adoption walk exactly (no cross-tree speculation — each
// intermediate reduced set is itself sharded and may spill, so the memory
// bound holds); per-tree Apply and DP shard their work over workers.
// Cuts and sizes are bit-identical to ForestDescentN on the materialized
// set for every worker count.
func ForestDescentSharded(ss *polynomial.ShardedSet, trees abstraction.Forest, bound int, rounds int, workers int) (*Result, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("core: empty forest")
	}
	if err := trees.Validate(); err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = DefaultForestRounds
	}
	workers = parallel.Normalize(workers)

	// Feasibility check at the coarsest point.
	cuts := make([]abstraction.Cut, len(trees))
	for i, t := range trees {
		cuts[i] = t.RootCut()
	}
	coarsest, err := abstraction.ApplySharded(ss, workers, cuts...)
	if err != nil {
		return nil, err
	}
	coarsestSize := coarsest.Size()
	coarsest.Close()
	if coarsestSize > bound {
		return nil, &InfeasibleError{Bound: bound, MinAchievable: coarsestSize}
	}

	othersOf := func(cuts []abstraction.Cut, i int) []abstraction.Cut {
		others := make([]abstraction.Cut, 0, len(trees)-1)
		for j, c := range cuts {
			if j != i {
				others = append(others, c)
			}
		}
		return others
	}

	for round := 0; round < rounds; round++ {
		changed := false
		for i, t := range trees {
			reduced, err := abstraction.ApplySharded(ss, workers, othersOf(cuts, i)...)
			if err != nil {
				return nil, err
			}
			res, err := DPSingleTreeSharded(reduced, t, bound, workers)
			if err != nil {
				reduced.Close()
				// As in ForestDescentN: the current cut is always feasible
				// on the reduced set, so DP failure is a hard error.
				return nil, fmt.Errorf("core: forest descent on tree %d: %w", i, err)
			}
			if !res.Cuts[0].Equal(cuts[i]) {
				// Only adopt strict improvements (more vars, or same vars
				// and smaller size) to guarantee monotone convergence.
				oldVars := cuts[i].NumVars()
				newVars := res.Cuts[0].NumVars()
				adopt := newVars > oldVars
				if !adopt && newVars == oldVars {
					old, err := abstraction.ApplySharded(reduced, workers, cuts[i])
					if err != nil {
						reduced.Close()
						return nil, err
					}
					adopt = res.Size < old.Size()
					old.Close()
				}
				if adopt {
					cuts[i] = res.Cuts[0]
					changed = true
				}
			}
			reduced.Close()
		}
		if !changed {
			break
		}
	}

	final, err := abstraction.ApplySharded(ss, workers, cuts...)
	if err != nil {
		return nil, err
	}
	r := &Result{Cuts: cuts, Size: final.Size()}
	final.Close()
	fillResultFrom(r, ss.Size(), ss.UsedVars())
	return r, nil
}
