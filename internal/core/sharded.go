// Out-of-core entry points: the same exact algorithms (single-tree DP,
// forest coordinate descent) running against a polynomial.ShardedSet whose
// shards may live on disk. Since the SetSource refactor these are thin
// wrappers over the unified *Source implementations — the signature index
// is built incrementally shard by shard, so peak memory is one shard plus
// the index, never the provenance, and results are bit-identical to the
// materialized path for every worker count.

package core

import (
	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// CompressSharded solves the instance over a sharded set: exact DP for a
// single tree, coordinate descent for a forest — the streaming counterpart
// of Compress. Results are identical to Compress on the materialized set.
func CompressSharded(ss *polynomial.ShardedSet, trees abstraction.Forest, bound int, workers int) (*Result, error) {
	return CompressSource(ss, trees, bound, workers)
}

// DPSingleTreeSharded is the single-tree DP over a sharded set; see
// DPSingleTreeSource.
func DPSingleTreeSharded(ss *polynomial.ShardedSet, tree *abstraction.Tree, bound int, workers int) (*Result, error) {
	return DPSingleTreeSource(ss, tree, bound, workers)
}

// ForestDescentSharded is coordinate descent over a sharded set; see
// ForestDescentSource (sharded sources mirror the sequential adoption walk
// exactly — no cross-tree speculation — so the memory bound holds).
func ForestDescentSharded(ss *polynomial.ShardedSet, trees abstraction.Forest, bound int, rounds int, workers int) (*Result, error) {
	return ForestDescentSource(ss, trees, bound, rounds, workers)
}
