package engine

import (
	"math"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

func col(t testing.TB, s *relation.Schema, name string) *ColRef {
	t.Helper()
	i, err := s.Index(name)
	if err != nil {
		t.Fatal(err)
	}
	return &ColRef{Idx: i, Name: name}
}

func testRel(t testing.TB) *relation.Relation {
	t.Helper()
	s := relation.NewSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "grp", Kind: relation.KindString},
		relation.Column{Name: "val", Kind: relation.KindFloat},
	)
	r := relation.NewRelation("t", s)
	r.Append(relation.Int(1), relation.Str("a"), relation.Float(10))
	r.Append(relation.Int(2), relation.Str("a"), relation.Float(20))
	r.Append(relation.Int(3), relation.Str("b"), relation.Float(30))
	r.Append(relation.Int(4), relation.Str("b"), relation.Float(40))
	r.Append(relation.Int(5), relation.Str("c"), relation.Float(50))
	return r
}

func TestScanAndCollect(t *testing.T) {
	r := testRel(t)
	out, err := Collect("out", NewScan(r, ""))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("rows = %d", out.Len())
	}
	if out.Schema.Cols[0].Qualified() != "t.id" {
		t.Fatalf("qualifier = %q", out.Schema.Cols[0].Qualified())
	}
	aliased := NewScan(r, "x")
	if aliased.Schema().Cols[0].Qualified() != "x.id" {
		t.Fatal("alias not applied")
	}
}

func TestFilterAndComparisons(t *testing.T) {
	r := testRel(t)
	sc := NewScan(r, "")
	pred := &Cmp{Op: OpGt, L: col(t, sc.Schema(), "val"), R: &Lit{relation.Float(25)}}
	out, err := Collect("out", NewFilter(sc, pred))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
}

func TestProjectArithmetic(t *testing.T) {
	r := testRel(t)
	sc := NewScan(r, "")
	out, err := Collect("out", NewProject(sc, []Projection{
		{Name: "double", Expr: &Arith{Op: OpMul, L: col(t, sc.Schema(), "val"), R: &Lit{relation.Float(2)}}},
		{Name: "idplus", Expr: &Arith{Op: OpAdd, L: col(t, sc.Schema(), "id"), R: &Lit{relation.Int(100)}}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[0].F != 20 || out.Rows[0].Values[1].I != 101 {
		t.Fatalf("row0 = %v", out.Rows[0].Values)
	}
}

func TestArithSymbolicPromotion(t *testing.T) {
	names := polynomial.NewNames()
	p := polynomial.MustParse("0.4*p1", names)
	tup := relation.NewTuple(relation.Poly(p), relation.Float(522))
	e := &Arith{Op: OpMul, L: &ColRef{Idx: 1, Name: "dur"}, R: &ColRef{Idx: 0, Name: "price"}}
	v, err := e.Eval(&tup)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != relation.KindPoly {
		t.Fatalf("kind = %s, want poly", v.Kind)
	}
	want := polynomial.MustParse("208.8*p1", names)
	if !polynomial.AlmostEqual(v.P, want, 1e-9) {
		t.Fatalf("got %s", v.P.String(names))
	}
	// Division by a symbolic value must fail.
	bad := &Arith{Op: OpDiv, L: &ColRef{Idx: 1}, R: &ColRef{Idx: 0}}
	if _, err := bad.Eval(&tup); err == nil {
		t.Fatal("division by symbolic should error")
	}
	// Constant polynomials demote back to floats.
	tup2 := relation.NewTuple(relation.Poly(polynomial.Const(2)), relation.Float(3))
	got, err := (&Arith{Op: OpMul, L: &ColRef{Idx: 0}, R: &ColRef{Idx: 1}}).Eval(&tup2)
	if err != nil || got.Kind != relation.KindFloat || got.F != 6 {
		t.Fatalf("constant demotion: %v %v", got, err)
	}
}

func TestArithErrorsAndNulls(t *testing.T) {
	tup := relation.NewTuple(relation.Str("s"), relation.Null(), relation.Int(0))
	if _, err := (&Arith{Op: OpAdd, L: &ColRef{Idx: 0}, R: &ColRef{Idx: 2}}).Eval(&tup); err == nil {
		t.Fatal("string arithmetic should error")
	}
	v, err := (&Arith{Op: OpAdd, L: &ColRef{Idx: 1}, R: &ColRef{Idx: 2}}).Eval(&tup)
	if err != nil || !v.IsNull() {
		t.Fatal("NULL should propagate")
	}
	if _, err := (&Arith{Op: OpDiv, L: &ColRef{Idx: 2}, R: &ColRef{Idx: 2}}).Eval(&tup); err == nil {
		t.Fatal("division by zero should error")
	}
	neg, err := (&Neg{E: &ColRef{Idx: 2}}).Eval(&tup)
	if err != nil || neg.I != 0 {
		t.Fatal("neg int")
	}
	if _, err := (&Neg{E: &ColRef{Idx: 0}}).Eval(&tup); err == nil {
		t.Fatal("negating a string should error")
	}
}

func TestLogicShortCircuitAndNot(t *testing.T) {
	boom := &Cmp{Op: OpEq, L: &Lit{relation.Str("x")}, R: &Lit{relation.Int(1)}} // errors if evaluated
	tup := relation.NewTuple()
	v, err := (&Logic{Op: OpAnd, L: &Lit{relation.Bool(false)}, R: boom}).Eval(&tup)
	if err != nil || Truthy(v) {
		t.Fatal("AND should short-circuit false")
	}
	v, err = (&Logic{Op: OpOr, L: &Lit{relation.Bool(true)}, R: boom}).Eval(&tup)
	if err != nil || !Truthy(v) {
		t.Fatal("OR should short-circuit true")
	}
	v, err = (&Logic{Op: OpNot, L: &Lit{relation.Bool(false)}}).Eval(&tup)
	if err != nil || !Truthy(v) {
		t.Fatal("NOT false = true")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_l_o", true},
		{"hello", "x%", false},
		{"hello", "%x%", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%c", true},
		{"special%case", "special%case", true}, // % in data matches via wildcard
		{"BRAND#12", "BRAND#1_", true},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.s, tc.pat); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.s, tc.pat, got, tc.want)
		}
	}
	tup := relation.NewTuple(relation.Str("hello"), relation.Int(1))
	v, err := (&Like{E: &ColRef{Idx: 0}, Pattern: "he%"}).Eval(&tup)
	if err != nil || !Truthy(v) {
		t.Fatal("Like eval")
	}
	if _, err := (&Like{E: &ColRef{Idx: 1}, Pattern: "1"}).Eval(&tup); err == nil {
		t.Fatal("LIKE over int should error")
	}
	nv, err := (&Like{E: &ColRef{Idx: 0}, Pattern: "he%", Not: true}).Eval(&tup)
	if err != nil || Truthy(nv) {
		t.Fatal("NOT LIKE")
	}
}

func TestInListAndBetween(t *testing.T) {
	tup := relation.NewTuple(relation.Int(3), relation.Str("b"))
	in := &InList{E: &ColRef{Idx: 0}, Vals: []relation.Value{relation.Int(1), relation.Int(3)}}
	if v, err := in.Eval(&tup); err != nil || !Truthy(v) {
		t.Fatal("IN should match")
	}
	nin := &InList{E: &ColRef{Idx: 1}, Vals: []relation.Value{relation.Str("a")}, Not: true}
	if v, err := nin.Eval(&tup); err != nil || !Truthy(v) {
		t.Fatal("NOT IN should match")
	}
	btw := &Between{E: &ColRef{Idx: 0}, Lo: &Lit{relation.Int(1)}, Hi: &Lit{relation.Int(5)}}
	if v, err := btw.Eval(&tup); err != nil || !Truthy(v) {
		t.Fatal("BETWEEN should match")
	}
	nbtw := &Between{E: &ColRef{Idx: 0}, Lo: &Lit{relation.Int(4)}, Hi: &Lit{relation.Int(5)}, Not: true}
	if v, err := nbtw.Eval(&tup); err != nil || !Truthy(v) {
		t.Fatal("NOT BETWEEN should match")
	}
}

func TestHashJoin(t *testing.T) {
	left := testRel(t)
	rs := relation.NewSchema(
		relation.Column{Name: "grp", Kind: relation.KindString},
		relation.Column{Name: "label", Kind: relation.KindString},
	)
	right := relation.NewRelation("g", rs)
	right.Append(relation.Str("a"), relation.Str("alpha"))
	right.Append(relation.Str("b"), relation.Str("beta"))

	ls, rsc := NewScan(left, ""), NewScan(right, "")
	li, _ := ls.Schema().Index("grp")
	ri, _ := rsc.Schema().Index("g.grp")
	j, err := NewHashJoin(ls, rsc, []int{li}, []int{ri})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // c has no match
		t.Fatalf("join rows = %d, want 4", out.Len())
	}
	if out.Schema.Len() != 5 {
		t.Fatalf("join schema = %d cols", out.Schema.Len())
	}
}

func TestHashJoinAnnotationsMultiply(t *testing.T) {
	names := polynomial.NewNames()
	x, y := names.Var("x"), names.Var("y")
	ls := relation.NewSchema(relation.Column{Name: "k", Kind: relation.KindInt})
	l := relation.NewRelation("l", ls)
	l.Append(relation.Int(1))
	l.Rows[0].Ann = polynomial.VarPoly(x)
	rs := relation.NewSchema(relation.Column{Name: "k", Kind: relation.KindInt})
	r := relation.NewRelation("r", rs)
	r.Append(relation.Int(1))
	r.Rows[0].Ann = polynomial.VarPoly(y)

	j, _ := NewHashJoin(NewScan(l, ""), NewScan(r, ""), []int{0}, []int{0})
	out, err := Collect("out", j)
	if err != nil {
		t.Fatal(err)
	}
	want := polynomial.MustParse("x*y", names)
	if !polynomial.Equal(out.Rows[0].Ann, want) {
		t.Fatalf("ann = %s", out.Rows[0].Ann.String(names))
	}
}

func TestNestedLoopJoinCrossAndPred(t *testing.T) {
	r := testRel(t)
	cross := NewNestedLoopJoin(NewScan(r, "a"), NewScan(r, "b"), nil)
	out, err := Collect("out", cross)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 25 {
		t.Fatalf("cross rows = %d", out.Len())
	}
	sc1, sc2 := NewScan(r, "a"), NewScan(r, "b")
	theta := NewNestedLoopJoin(sc1, sc2, nil)
	ai, _ := theta.Schema().Index("a.id")
	bi, _ := theta.Schema().Index("b.id")
	theta.pred = &Cmp{Op: OpLt, L: &ColRef{Idx: ai, Name: "a.id"}, R: &ColRef{Idx: bi, Name: "b.id"}}
	out, err = Collect("out", theta)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("theta rows = %d, want 10", out.Len())
	}
}

func TestGroupByConcrete(t *testing.T) {
	r := testRel(t)
	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, []Expr{col(t, sc.Schema(), "grp")}, []string{"grp"}, []AggSpec{
		{Kind: AggSum, Arg: col(t, sc.Schema(), "val"), Name: "s"},
		{Kind: AggCount, Name: "c"},
		{Kind: AggAvg, Arg: col(t, sc.Schema(), "val"), Name: "a"},
		{Kind: AggMin, Arg: col(t, sc.Schema(), "val"), Name: "lo"},
		{Kind: AggMax, Arg: col(t, sc.Schema(), "val"), Name: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	byKey := map[string][]relation.Value{}
	for _, row := range out.Rows {
		byKey[row.Values[0].S] = row.Values
	}
	a := byKey["a"]
	if a[1].F != 30 || a[2].I != 2 || a[3].F != 15 || a[4].F != 10 || a[5].F != 20 {
		t.Fatalf("group a aggregates = %v", a)
	}
}

func TestGroupBySymbolicSum(t *testing.T) {
	// SUM over symbolic cells produces provenance polynomials.
	names := polynomial.NewNames()
	s := relation.NewSchema(
		relation.Column{Name: "zip", Kind: relation.KindString},
		relation.Column{Name: "rev", Kind: relation.KindPoly},
	)
	r := relation.NewRelation("t", s)
	r.Append(relation.Str("z1"), relation.Poly(polynomial.MustParse("208.8*p1*m1", names)))
	r.Append(relation.Str("z1"), relation.Poly(polynomial.MustParse("240*p1*m3", names)))
	r.Append(relation.Str("z2"), relation.Poly(polynomial.MustParse("77.9*b1*m1", names)))

	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, []Expr{col(t, sc.Schema(), "zip")}, []string{"zip"}, []AggSpec{
		{Kind: AggSum, Arg: col(t, sc.Schema(), "rev"), Name: "rev"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	for _, row := range out.Rows {
		if row.Values[0].S == "z1" {
			want := polynomial.MustParse("208.8*p1*m1 + 240*p1*m3", names)
			if !polynomial.AlmostEqual(row.Values[1].P, want, 1e-9) {
				t.Fatalf("z1 = %s", row.Values[1].P.String(names))
			}
		}
	}
}

func TestGroupBySymbolicAnnotationCount(t *testing.T) {
	// COUNT with symbolic tuple annotations = Σ annotations.
	names := polynomial.NewNames()
	x := names.Var("x")
	s := relation.NewSchema(relation.Column{Name: "k", Kind: relation.KindInt})
	r := relation.NewRelation("t", s)
	r.Append(relation.Int(1))
	r.Append(relation.Int(1))
	r.Rows[1].Ann = polynomial.VarPoly(x)

	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, []Expr{col(t, sc.Schema(), "k")}, []string{"k"}, []AggSpec{
		{Kind: AggCount, Name: "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	want := polynomial.MustParse("1 + x", names)
	if out.Rows[0].Values[1].Kind != relation.KindPoly || !polynomial.Equal(out.Rows[0].Values[1].P, want) {
		t.Fatalf("count = %v", out.Rows[0].Values[1].Format(names))
	}
}

func TestGroupByErrors(t *testing.T) {
	names := polynomial.NewNames()
	s := relation.NewSchema(relation.Column{Name: "p", Kind: relation.KindPoly})
	r := relation.NewRelation("t", s)
	r.Append(relation.Poly(polynomial.MustParse("x", names)))
	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, []Expr{&ColRef{Idx: 0, Name: "p"}}, []string{"p"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect("out", gb); err == nil {
		t.Fatal("GROUP BY symbolic should error")
	}
	gb2, _ := NewGroupBy(NewScan(r, ""), nil, nil, []AggSpec{{Kind: AggMin, Arg: &ColRef{Idx: 0}, Name: "m"}})
	if _, err := Collect("out", gb2); err == nil {
		t.Fatal("MIN over symbolic should error")
	}
}

func TestGroupByGlobalAggregate(t *testing.T) {
	r := testRel(t)
	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, nil, nil, []AggSpec{{Kind: AggSum, Arg: col(t, sc.Schema(), "val"), Name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0].Values[0].F != 150 {
		t.Fatalf("global sum = %v", out.Rows)
	}
}

func TestSortOrderAndStability(t *testing.T) {
	r := testRel(t)
	sc := NewScan(r, "")
	srt := NewSort(sc, []SortKey{
		{Expr: col(t, sc.Schema(), "grp"), Desc: true},
		{Expr: col(t, sc.Schema(), "val")},
	})
	out, err := Collect("out", srt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[1].S != "c" || out.Rows[1].Values[2].F != 30 {
		t.Fatalf("sorted: %v", out)
	}
}

func TestLimit(t *testing.T) {
	r := testRel(t)
	out, err := Collect("out", NewLimit(NewScan(r, ""), 2))
	if err != nil || out.Len() != 2 {
		t.Fatalf("limit: %d, %v", out.Len(), err)
	}
	out, err = Collect("out", NewLimit(NewScan(r, ""), 0))
	if err != nil || out.Len() != 0 {
		t.Fatalf("limit 0: %d, %v", out.Len(), err)
	}
}

func TestDistinctAddsAnnotations(t *testing.T) {
	names := polynomial.NewNames()
	x, y := names.Var("x"), names.Var("y")
	s := relation.NewSchema(relation.Column{Name: "k", Kind: relation.KindInt})
	r := relation.NewRelation("t", s)
	r.Append(relation.Int(1))
	r.Append(relation.Int(1))
	r.Append(relation.Int(2))
	r.Rows[0].Ann = polynomial.VarPoly(x)
	r.Rows[1].Ann = polynomial.VarPoly(y)

	out, err := Collect("out", NewDistinct(NewScan(r, "")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("distinct rows = %d", out.Len())
	}
	want := polynomial.MustParse("x + y", names)
	if !polynomial.Equal(out.Rows[0].Ann, want) {
		t.Fatalf("merged ann = %s", out.Rows[0].Ann.String(names))
	}
}

func TestUnion(t *testing.T) {
	r := testRel(t)
	u, err := NewUnion(NewScan(r, "a"), NewScan(r, "b"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", u)
	if err != nil || out.Len() != 10 {
		t.Fatalf("union rows = %d, %v", out.Len(), err)
	}
	s2 := relation.NewSchema(relation.Column{Name: "only", Kind: relation.KindInt})
	r2 := relation.NewRelation("r2", s2)
	if _, err := NewUnion(NewScan(r, ""), NewScan(r2, "")); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestAvgSymbolic(t *testing.T) {
	names := polynomial.NewNames()
	s := relation.NewSchema(relation.Column{Name: "v", Kind: relation.KindPoly})
	r := relation.NewRelation("t", s)
	r.Append(relation.Poly(polynomial.MustParse("2*x", names)))
	r.Append(relation.Poly(polynomial.MustParse("4*x", names)))
	sc := NewScan(r, "")
	gb, _ := NewGroupBy(sc, nil, nil, []AggSpec{{Kind: AggAvg, Arg: &ColRef{Idx: 0}, Name: "a"}})
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	want := polynomial.MustParse("3*x", names)
	if !polynomial.AlmostEqual(out.Rows[0].Values[0].P, want, 1e-9) {
		t.Fatalf("avg = %s", out.Rows[0].Values[0].Format(names))
	}
	if math.IsNaN(out.Rows[0].Values[0].P.Mons[0].Coef) {
		t.Fatal("NaN coefficient")
	}
}

func TestIteratorsReOpenResets(t *testing.T) {
	// Every operator must restart cleanly on re-Open — the contract the
	// nested-loop join relies on for its materialized side and that plan
	// reuse requires.
	r := testRel(t)
	sc := NewScan(r, "")
	srt := NewSort(NewFilter(sc, &Cmp{Op: OpGt, L: col(t, sc.Schema(), "id"), R: &Lit{relation.Int(1)}}),
		[]SortKey{{Expr: col(t, sc.Schema(), "id"), Desc: true}})
	lim := NewLimit(srt, 3)
	for round := 0; round < 3; round++ {
		out, err := Collect("out", lim)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 3 || out.Rows[0].Values[0].I != 5 {
			t.Fatalf("round %d: %v", round, out.Rows)
		}
	}
}

func TestCaseEngineEval(t *testing.T) {
	tup := relation.NewTuple(relation.Int(7))
	c := &Case{
		Whens: []CaseWhen{
			{When: &Cmp{Op: OpLt, L: &ColRef{Idx: 0}, R: &Lit{relation.Int(5)}}, Then: &Lit{relation.Str("low")}},
			{When: &Cmp{Op: OpLt, L: &ColRef{Idx: 0}, R: &Lit{relation.Int(10)}}, Then: &Lit{relation.Str("mid")}},
		},
		Else: &Lit{relation.Str("high")},
	}
	v, err := c.Eval(&tup)
	if err != nil || v.S != "mid" {
		t.Fatalf("case = %v, %v", v, err)
	}
	if got := c.String(); got == "" {
		t.Fatal("empty String")
	}
	// No ELSE and no match -> NULL.
	c2 := &Case{Whens: []CaseWhen{{When: &Lit{relation.Bool(false)}, Then: &Lit{relation.Int(1)}}}}
	v, err = c2.Eval(&tup)
	if err != nil || !v.IsNull() {
		t.Fatalf("expected NULL, got %v", v)
	}
	// Error in condition propagates.
	c3 := &Case{Whens: []CaseWhen{{When: &Cmp{Op: OpEq, L: &Lit{relation.Str("x")}, R: &Lit{relation.Int(1)}}, Then: &Lit{relation.Int(1)}}}}
	if _, err := c3.Eval(&tup); err == nil {
		t.Fatal("condition error should propagate")
	}
}

func TestAggregateNullSemantics(t *testing.T) {
	// SQL semantics: aggregates skip NULL arguments; COUNT(*) does not.
	s := relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	r := relation.NewRelation("t", s)
	r.Append(relation.Int(1), relation.Float(10))
	r.Append(relation.Int(1), relation.Null())
	r.Append(relation.Int(1), relation.Float(20))

	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, []Expr{col(t, sc.Schema(), "k")}, []string{"k"}, []AggSpec{
		{Kind: AggCount, Name: "star"},
		{Kind: AggCount, Arg: col(t, sc.Schema(), "v"), Name: "nonnull"},
		{Kind: AggSum, Arg: col(t, sc.Schema(), "v"), Name: "sum"},
		{Kind: AggAvg, Arg: col(t, sc.Schema(), "v"), Name: "avg"},
		{Kind: AggMin, Arg: col(t, sc.Schema(), "v"), Name: "min"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	row := out.Rows[0]
	if row.Values[1].I != 3 {
		t.Fatalf("COUNT(*) = %v, want 3", row.Values[1])
	}
	if row.Values[2].I != 2 {
		t.Fatalf("COUNT(v) = %v, want 2", row.Values[2])
	}
	if row.Values[3].F != 30 {
		t.Fatalf("SUM = %v", row.Values[3])
	}
	if row.Values[4].F != 15 {
		t.Fatalf("AVG = %v (NULLs must not count)", row.Values[4])
	}
	if row.Values[5].F != 10 {
		t.Fatalf("MIN = %v", row.Values[5])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "v", Kind: relation.KindFloat})
	r := relation.NewRelation("t", s)
	sc := NewScan(r, "")
	// Global aggregate over empty input: zero groups (grouped semantics) —
	// matching the engine's uniform model; SQL's scalar-aggregate edge case
	// (one row of NULLs) is handled at the planner level if ever needed.
	gb, err := NewGroupBy(sc, nil, nil, []AggSpec{{Kind: AggSum, Arg: &ColRef{Idx: 0}, Name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("rows = %d", out.Len())
	}
}

func TestAggregateAllNullGroup(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	r := relation.NewRelation("t", s)
	r.Append(relation.Int(1), relation.Null())
	sc := NewScan(r, "")
	gb, err := NewGroupBy(sc, []Expr{col(t, sc.Schema(), "k")}, []string{"k"}, []AggSpec{
		{Kind: AggSum, Arg: col(t, sc.Schema(), "v"), Name: "s"},
		{Kind: AggMin, Arg: col(t, sc.Schema(), "v"), Name: "m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("out", gb)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0].Values[1].IsNull() || !out.Rows[0].Values[2].IsNull() {
		t.Fatalf("all-NULL group should aggregate to NULL: %v", out.Rows[0].Values)
	}
}
