package engine

import (
	"fmt"
	"strings"

	"github.com/cobra-prov/cobra/internal/relation"
)

// CaseWhen is one WHEN cond THEN result branch.
type CaseWhen struct {
	When Expr
	Then Expr
}

// Case is the searched CASE expression: the first branch whose condition is
// TRUE yields the result; otherwise Else (NULL when absent).
type Case struct {
	Whens []CaseWhen
	Else  Expr
}

func (c *Case) Eval(t *relation.Tuple) (relation.Value, error) {
	for _, w := range c.Whens {
		cond, err := w.When.Eval(t)
		if err != nil {
			return relation.Null(), err
		}
		if Truthy(cond) {
			return w.Then.Eval(t)
		}
	}
	if c.Else == nil {
		return relation.Null(), nil
	}
	return c.Else.Eval(t)
}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.When, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}
