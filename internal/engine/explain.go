package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Describe renders the operator tree of a plan, EXPLAIN-style. It is a
// debugging and teaching aid: the demo's "look under the hood" mode uses it
// to show how a query was planned (pushed filters, join order, hash keys).
func Describe(it Iterator) string {
	var sb strings.Builder
	describe(&sb, it, 0)
	return sb.String()
}

// describe appends one line per operator, writing through the builder
// directly rather than fmt: EXPLAIN is cold, but the engine package is
// heap-escape budgeted and each format verb whose operand escapes would
// count as a site against it.
func describe(sb *strings.Builder, it Iterator, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	switch op := it.(type) {
	case *Scan:
		sb.WriteString("Scan ")
		sb.WriteString(op.rel.Name)
		sb.WriteString(" (")
		sb.WriteString(strconv.Itoa(op.rel.Len()))
		sb.WriteString(" rows)\n")
	case *Filter:
		sb.WriteString("Filter ")
		sb.WriteString(op.pred.String())
		sb.WriteByte('\n')
		describe(sb, op.in, depth+1)
	case *Project:
		sb.WriteString("Project [")
		for i, p := range op.projs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Name)
		}
		sb.WriteString("]\n")
		describe(sb, op.in, depth+1)
	case *HashJoin:
		sb.WriteString("HashJoin on ")
		for i := range op.leftKeys {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(op.left.Schema().Cols[op.leftKeys[i]].Qualified())
			sb.WriteString(" = ")
			sb.WriteString(op.right.Schema().Cols[op.rightKeys[i]].Qualified())
		}
		sb.WriteByte('\n')
		describe(sb, op.left, depth+1)
		describe(sb, op.right, depth+1)
	case *NestedLoopJoin:
		sb.WriteString("NestedLoopJoin on ")
		if op.pred != nil {
			sb.WriteString(op.pred.String())
		} else {
			sb.WriteString("true (cross)")
		}
		sb.WriteByte('\n')
		describe(sb, op.left, depth+1)
		describe(sb, op.right, depth+1)
	case *GroupBy:
		sb.WriteString("GroupBy [")
		for i, k := range op.keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.String())
		}
		sb.WriteString("] aggregates [")
		for i, a := range op.aggs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.Kind.String())
			sb.WriteByte('(')
			if a.Arg != nil {
				sb.WriteString(a.Arg.String())
			} else {
				sb.WriteByte('*')
			}
			sb.WriteByte(')')
		}
		sb.WriteString("]\n")
		describe(sb, op.in, depth+1)
	case *Sort:
		sb.WriteString("Sort [")
		for i, k := range op.keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.Expr.String())
			if k.Desc {
				sb.WriteString(" desc")
			} else {
				sb.WriteString(" asc")
			}
		}
		sb.WriteString("]\n")
		describe(sb, op.in, depth+1)
	case *Limit:
		sb.WriteString("Limit ")
		sb.WriteString(strconv.Itoa(op.n))
		sb.WriteByte('\n')
		describe(sb, op.in, depth+1)
	case *Distinct:
		sb.WriteString("Distinct\n")
		describe(sb, op.in, depth+1)
	case *Union:
		sb.WriteString("Union\n")
		describe(sb, op.l, depth+1)
		describe(sb, op.r, depth+1)
	default:
		fmt.Fprintf(sb, "%T\n", it)
	}
}
