package engine

import (
	"fmt"
	"strings"
)

// Describe renders the operator tree of a plan, EXPLAIN-style. It is a
// debugging and teaching aid: the demo's "look under the hood" mode uses it
// to show how a query was planned (pushed filters, join order, hash keys).
func Describe(it Iterator) string {
	var sb strings.Builder
	describe(&sb, it, 0)
	return sb.String()
}

func describe(sb *strings.Builder, it Iterator, depth int) {
	indent := strings.Repeat("  ", depth)
	switch op := it.(type) {
	case *Scan:
		fmt.Fprintf(sb, "%sScan %s (%d rows)\n", indent, op.rel.Name, op.rel.Len())
	case *Filter:
		fmt.Fprintf(sb, "%sFilter %s\n", indent, op.pred)
		describe(sb, op.in, depth+1)
	case *Project:
		names := make([]string, len(op.projs))
		for i, p := range op.projs {
			names[i] = p.Name
		}
		fmt.Fprintf(sb, "%sProject [%s]\n", indent, strings.Join(names, ", "))
		describe(sb, op.in, depth+1)
	case *HashJoin:
		keys := make([]string, len(op.leftKeys))
		for i := range op.leftKeys {
			//cobra:hotalloc EXPLAIN formats once per plan node, not per row
			keys[i] = fmt.Sprintf("%s = %s",
				op.left.Schema().Cols[op.leftKeys[i]].Qualified(),
				op.right.Schema().Cols[op.rightKeys[i]].Qualified())
		}
		fmt.Fprintf(sb, "%sHashJoin on %s\n", indent, strings.Join(keys, " AND "))
		describe(sb, op.left, depth+1)
		describe(sb, op.right, depth+1)
	case *NestedLoopJoin:
		pred := "true (cross)"
		if op.pred != nil {
			pred = op.pred.String()
		}
		fmt.Fprintf(sb, "%sNestedLoopJoin on %s\n", indent, pred)
		describe(sb, op.left, depth+1)
		describe(sb, op.right, depth+1)
	case *GroupBy:
		keys := make([]string, len(op.keys))
		for i, k := range op.keys {
			keys[i] = k.String()
		}
		aggs := make([]string, len(op.aggs))
		for i, a := range op.aggs {
			arg := "*"
			if a.Arg != nil {
				arg = a.Arg.String()
			}
			//cobra:hotalloc EXPLAIN formats once per plan node, not per row
			aggs[i] = fmt.Sprintf("%s(%s)", a.Kind, arg)
		}
		fmt.Fprintf(sb, "%sGroupBy [%s] aggregates [%s]\n", indent,
			strings.Join(keys, ", "), strings.Join(aggs, ", "))
		describe(sb, op.in, depth+1)
	case *Sort:
		keys := make([]string, len(op.keys))
		for i, k := range op.keys {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			//cobra:hotalloc EXPLAIN formats once per plan node, not per row
			keys[i] = k.Expr.String() + " " + dir
		}
		fmt.Fprintf(sb, "%sSort [%s]\n", indent, strings.Join(keys, ", "))
		describe(sb, op.in, depth+1)
	case *Limit:
		fmt.Fprintf(sb, "%sLimit %d\n", indent, op.n)
		describe(sb, op.in, depth+1)
	case *Distinct:
		fmt.Fprintf(sb, "%sDistinct\n", indent)
		describe(sb, op.in, depth+1)
	case *Union:
		fmt.Fprintf(sb, "%sUnion\n", indent)
		describe(sb, op.l, depth+1)
		describe(sb, op.r, depth+1)
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, it)
	}
}
