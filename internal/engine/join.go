package engine

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// HashJoin is an equi-join: build a hash table on the right (build) side,
// probe with the left side. Join multiplies annotations (⊗ in the semiring
// model). Key columns must hold concrete (hashable) values.
type HashJoin struct {
	left, right         Iterator
	leftKeys, rightKeys []int
	schema              *relation.Schema

	table map[string][]relation.Tuple
	// probe state
	cur     relation.Tuple
	matches []relation.Tuple
	mi      int
	probing bool

	probeBuf  []byte           // reused probe-key scratch across Next calls
	outBuf    []relation.Value // reused output row (row-validity contract)
	buildSlab []relation.Value // build-side value storage, carved in chunks
}

// NewHashJoin joins left and right on left.leftKeys[i] = right.rightKeys[i].
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []int) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("engine: hash join needs matching, non-empty key lists")
	}
	return &HashJoin{
		left: left, right: right,
		leftKeys: leftKeys, rightKeys: rightKeys,
		schema: left.Schema().Concat(right.Schema()),
	}, nil
}

func (j *HashJoin) Schema() *relation.Schema { return j.schema }

func (j *HashJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		j.left.Close() // don't leak the already-opened left child
		return err
	}
	if err := j.buildTable(); err != nil {
		j.left.Close()
		j.right.Close()
		return err
	}
	j.probing = false
	j.mi = 0
	j.matches = nil
	return nil
}

// buildTable drains the (already opened) build side into the hash table.
func (j *HashJoin) buildTable() error {
	j.table = make(map[string][]relation.Tuple)
	var buf []byte
	for {
		t, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		key, skip, err := joinKey(&t, j.rightKeys, buf[:0])
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		buf = key
		// The build side is retained for the whole probe phase, so its
		// values must be copied out of the child's reused row buffer
		// (row-validity contract); copies are carved from a chunked slab.
		n := len(t.Values)
		if len(j.buildSlab) < n {
			chunk := 8192
			if chunk < n {
				chunk = n
			}
			//cobra:hotalloc slab refill amortized over thousands of build-side rows
			j.buildSlab = make([]relation.Value, chunk)
		}
		vals := j.buildSlab[:n:n]
		j.buildSlab = j.buildSlab[n:]
		copy(vals, t.Values)
		t.Values = vals
		//cobra:hotalloc the hash table retains its key string: one allocation per build-side row is the table itself
		j.table[string(key)] = append(j.table[string(key)], t)
	}
}

// joinKey encodes the key columns of t into buf. skip reports a NULL key
// column (NULL never joins); symbolic key columns are an error.
func joinKey(t *relation.Tuple, keys []int, buf []byte) (key []byte, skip bool, err error) {
	for _, k := range keys {
		v := t.Values[k]
		if v.IsNull() {
			return nil, true, nil
		}
		if v.Kind == relation.KindPoly {
			return nil, false, fmt.Errorf("engine: cannot hash-join on symbolic column %d", k)
		}
		buf = v.Key(buf)
	}
	return buf, false, nil
}

func (j *HashJoin) Close() error {
	j.table = nil
	err1 := j.left.Close()
	err2 := j.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *HashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if j.probing && j.mi < len(j.matches) {
			r := j.matches[j.mi]
			j.mi++
			return j.joined(j.cur, r), true, nil
		}
		t, ok, err := j.left.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		key, skip, err := joinKey(&t, j.leftKeys, j.probeBuf[:0])
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if skip {
			continue
		}
		j.probeBuf = key
		j.cur = t
		j.matches = j.table[string(key)]
		j.mi = 0
		j.probing = true
	}
}

// joined concatenates values and multiplies annotations. The output row
// buffer is reused across pulls (row-validity contract), so emitting a
// joined row allocates nothing after the first call.
func (j *HashJoin) joined(l, r relation.Tuple) relation.Tuple {
	n := len(l.Values) + len(r.Values)
	if cap(j.outBuf) < n {
		j.outBuf = make([]relation.Value, n)
	}
	vals := j.outBuf[:n:n]
	copy(vals, l.Values)
	copy(vals[len(l.Values):], r.Values)
	return relation.Tuple{Values: vals, Ann: polynomial.Mul(l.Ann, r.Ann)}
}

// joinTuples concatenates values and multiplies annotations (the
// allocating form used by the nested-loop join, whose outputs are often
// discarded by its predicate).
func joinTuples(l, r relation.Tuple) relation.Tuple {
	vals := make([]relation.Value, 0, len(l.Values)+len(r.Values))
	vals = append(vals, l.Values...)
	vals = append(vals, r.Values...)
	return relation.Tuple{Values: vals, Ann: polynomial.Mul(l.Ann, r.Ann)}
}

// NestedLoopJoin joins with an arbitrary predicate (cross product when pred
// is nil). The right side is materialized on Open.
type NestedLoopJoin struct {
	left, right Iterator
	pred        Expr
	schema      *relation.Schema

	rightRows []relation.Tuple
	cur       relation.Tuple
	haveCur   bool
	ri        int
}

// NewNestedLoopJoin builds a theta-join; pred is evaluated over the
// concatenated tuple (nil means cross join).
func NewNestedLoopJoin(left, right Iterator, pred Expr) *NestedLoopJoin {
	return &NestedLoopJoin{
		left: left, right: right, pred: pred,
		schema: left.Schema().Concat(right.Schema()),
	}
}

func (j *NestedLoopJoin) Schema() *relation.Schema { return j.schema }

func (j *NestedLoopJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		j.left.Close() // don't leak the already-opened left child
		return err
	}
	// The right side is retained for the whole outer iteration, so its
	// values are copied out of the child's reused row buffer into one
	// flat backing, sliced into per-row windows once appends can no
	// longer move it (row-validity contract).
	j.rightRows = nil
	var vals []relation.Value
	var valOff []int
	for {
		t, ok, err := j.right.Next()
		if err != nil {
			j.left.Close()
			j.right.Close()
			return err
		}
		if !ok {
			break
		}
		valOff = append(valOff, len(vals))
		vals = append(vals, t.Values...)
		j.rightRows = append(j.rightRows, relation.Tuple{Ann: t.Ann})
	}
	valOff = append(valOff, len(vals))
	for i := range j.rightRows {
		lo, hi := valOff[i], valOff[i+1]
		j.rightRows[i].Values = vals[lo:hi:hi]
	}
	j.haveCur = false
	j.ri = 0
	return nil
}

func (j *NestedLoopJoin) Close() error {
	j.rightRows = nil
	err1 := j.left.Close()
	err2 := j.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *NestedLoopJoin) Next() (relation.Tuple, bool, error) {
	for {
		if !j.haveCur {
			t, ok, err := j.left.Next()
			if err != nil || !ok {
				return relation.Tuple{}, false, err
			}
			j.cur = t
			j.haveCur = true
			j.ri = 0
		}
		for j.ri < len(j.rightRows) {
			joined := joinTuples(j.cur, j.rightRows[j.ri])
			j.ri++
			if j.pred == nil {
				return joined, true, nil
			}
			v, err := j.pred.Eval(&joined)
			if err != nil {
				return relation.Tuple{}, false, err
			}
			if Truthy(v) {
				return joined, true, nil
			}
		}
		j.haveCur = false
	}
}
