package engine

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// CollectN drains an iterator into a materialized relation using up to
// workers goroutines. With workers <= 1 it is exactly Collect. With more,
// operators that support partition-parallel execution (Scan, Filter,
// Project, HashJoin, NestedLoopJoin, GroupBy, Sort, Distinct, Union)
// materialize their output by sharding rows over the pool; any other
// operator (e.g. Limit) falls back to draining its whole subtree
// sequentially.
//
// Determinism guarantee: the materialized relation is bit-identical to the
// sequential Collect for every worker count. Shards are contiguous row
// ranges concatenated in shard order, and per-group and per-key state is
// always folded by a single worker in input-row order, so no floating-point
// summation is ever reassociated. Errors are deterministic too: within one
// operator, the error of the first failing row in input order is reported,
// as the sequential scan would. When *several operators* of a plan would
// each fail, the surfaced error can differ from the sequential schedule
// (which interleaves row-at-a-time across operators), because
// materialization runs each operator's input to completion first — but it
// is still the same error for every worker count.
func CollectN(name string, it Iterator, workers int) (*relation.Relation, error) {
	if parallel.Normalize(workers) <= 1 {
		return Collect(name, it)
	}
	rows, err := materialize(it, workers)
	if err != nil {
		return nil, err
	}
	out := relation.NewRelation(name, it.Schema())
	// Cap the slice so appends by the caller cannot write into a shared
	// backing array (a bare Scan shares the base relation's row slice).
	out.Rows = rows[:len(rows):len(rows)]
	return out, nil
}

// concatRows flattens per-shard buffers in shard order.
func concatRows(parts [][]relation.Tuple) []relation.Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]relation.Tuple, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// materialize computes an operator's complete output with the worker pool.
// Only called with workers > 1.
func materialize(it Iterator, workers int) ([]relation.Tuple, error) {
	switch op := it.(type) {
	case *Scan:
		return op.rel.Rows, nil
	case *Filter:
		return materializeFilter(op, workers)
	case *Project:
		return materializeProject(op, workers)
	case *HashJoin:
		return materializeHashJoin(op, workers)
	case *NestedLoopJoin:
		return materializeNestedLoop(op, workers)
	case *GroupBy:
		return materializeGroupBy(op, workers)
	case *Sort:
		return materializeSort(op, workers)
	case *Distinct:
		return materializeDistinct(op, workers)
	case *Union:
		return materializeUnion(op, workers)
	default:
		// No partition-parallel path (e.g. Limit, whose row budget must
		// not force evaluation past the cutoff): run the subtree through
		// the ordinary iterator protocol.
		return drain(it)
	}
}

// drain runs an operator subtree sequentially via the Volcano pull loop,
// collecting the rows. Values are copied out of the operators' reused row
// buffers (row-validity contract) into slabs carved in chunks — the
// copies are the materialized result itself.
func drain(it Iterator) ([]relation.Tuple, error) {
	var rows []relation.Tuple
	var slab []relation.Value
	err := Stream(it, func(t relation.Tuple) error {
		n := len(t.Values)
		if len(slab) < n {
			chunk := 8192
			if chunk < n {
				chunk = n
			}
			//cobra:hotalloc slab refill amortized over thousands of materialized rows
			slab = make([]relation.Value, chunk)
		}
		vals := slab[:n:n]
		slab = slab[n:]
		copy(vals, t.Values)
		rows = append(rows, relation.Tuple{Values: vals, Ann: t.Ann})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func materializeFilter(f *Filter, workers int) ([]relation.Tuple, error) {
	in, err := materialize(f.in, workers)
	if err != nil {
		return nil, err
	}
	w := parallel.Normalize(workers)
	kept := make([][]relation.Tuple, w)
	errs := make([]parallel.RowErr, w)
	parallel.Chunks(workers, len(in), func(shard, lo, hi int) {
		var out []relation.Tuple
		for i := lo; i < hi; i++ {
			v, err := f.pred.Eval(&in[i])
			if err != nil {
				errs[shard] = parallel.RowErr{Err: err, Row: i}
				break
			}
			if Truthy(v) {
				out = append(out, in[i])
			}
		}
		kept[shard] = out
	})
	if bad := parallel.FirstRowErr(errs); bad.Err != nil {
		return nil, bad.Err
	}
	return concatRows(kept), nil
}

func materializeProject(p *Project, workers int) ([]relation.Tuple, error) {
	in, err := materialize(p.in, workers)
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, len(in))
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, len(in), func(shard, lo, hi int) {
		// Per-shard output slab, carved in chunks: the projected rows are
		// the materialized result itself, so the slab is pure win over a
		// per-row make.
		var slab []relation.Value
		n := len(p.projs)
		for i := lo; i < hi; i++ {
			t := &in[i]
			if len(slab) < n {
				chunk := 8192
				if chunk < n {
					chunk = n
				}
				//cobra:hotalloc slab refill amortized over thousands of projected rows
				slab = make([]relation.Value, chunk)
			}
			vals := slab[:n:n]
			slab = slab[n:]
			for c := range p.projs {
				v, err := p.projs[c].Expr.Eval(t)
				if err != nil {
					errs[shard] = parallel.RowErr{Err: err, Row: i}
					return
				}
				vals[c] = v
			}
			out[i] = relation.Tuple{Values: vals, Ann: t.Ann}
		}
	})
	if bad := parallel.FirstRowErr(errs); bad.Err != nil {
		return nil, bad.Err
	}
	return out, nil
}

func materializeHashJoin(j *HashJoin, workers int) ([]relation.Tuple, error) {
	// Build side first: sequentially its drain happens inside Open, before
	// any probe row is pulled, so its errors surface first.
	build, err := materialize(j.right, workers)
	if err != nil {
		return nil, err
	}
	probe, err := materialize(j.left, workers)
	if err != nil {
		return nil, err
	}

	// Per-worker hash tables over contiguous build ranges, merged in shard
	// order: every key's match list ends up in build-input order, exactly
	// as the sequential build produces it.
	w := parallel.Normalize(workers)
	tables := make([]map[string][]relation.Tuple, w)
	errs := make([]parallel.RowErr, w)
	parallel.Chunks(workers, len(build), func(shard, lo, hi int) {
		tbl := make(map[string][]relation.Tuple)
		var buf []byte
		for i := lo; i < hi; i++ {
			key, skip, err := joinKey(&build[i], j.rightKeys, buf[:0])
			if err != nil {
				errs[shard] = parallel.RowErr{Err: err, Row: i}
				break
			}
			if skip {
				continue
			}
			buf = key
			tbl[string(key)] = append(tbl[string(key)], build[i])
		}
		tables[shard] = tbl
	})
	if bad := parallel.FirstRowErr(errs); bad.Err != nil {
		return nil, bad.Err
	}
	table := make(map[string][]relation.Tuple)
	for _, tbl := range tables {
		for k, rows := range tbl {
			table[k] = append(table[k], rows...)
		}
	}

	// Probe in parallel; per-probe-row output slots keep the sequential
	// emit order (each left row followed by its matches in table order).
	// Output tuples and their values are carved from per-shard slabs
	// refilled in chunks — the joined rows are the materialized result
	// itself, so the slabs are pure win over per-row makes.
	matches := make([][]relation.Tuple, len(probe))
	perrs := make([]parallel.RowErr, w)
	parallel.Chunks(workers, len(probe), func(shard, lo, hi int) {
		var buf []byte
		var tupSlab []relation.Tuple
		var valSlab []relation.Value
		for i := lo; i < hi; i++ {
			key, skip, err := joinKey(&probe[i], j.leftKeys, buf[:0])
			if err != nil {
				perrs[shard] = parallel.RowErr{Err: err, Row: i}
				return
			}
			if skip {
				continue
			}
			buf = key
			rs := table[string(key)]
			if len(rs) == 0 {
				continue
			}
			if len(tupSlab) < len(rs) {
				chunk := 4096
				if chunk < len(rs) {
					chunk = len(rs)
				}
				//cobra:hotalloc slab refill amortized over thousands of joined rows
				tupSlab = make([]relation.Tuple, chunk)
			}
			out := tupSlab[:len(rs):len(rs)]
			tupSlab = tupSlab[len(rs):]
			for m, r := range rs {
				nv := len(probe[i].Values) + len(r.Values)
				if len(valSlab) < nv {
					chunk := 8192
					if chunk < nv {
						chunk = nv
					}
					//cobra:hotalloc slab refill amortized over thousands of joined rows
					valSlab = make([]relation.Value, chunk)
				}
				vals := valSlab[:nv:nv]
				valSlab = valSlab[nv:]
				copy(vals, probe[i].Values)
				copy(vals[len(probe[i].Values):], r.Values)
				out[m] = relation.Tuple{Values: vals, Ann: polynomial.Mul(probe[i].Ann, r.Ann)}
			}
			matches[i] = out
		}
	})
	if bad := parallel.FirstRowErr(perrs); bad.Err != nil {
		return nil, bad.Err
	}
	return concatRows(matches), nil
}

func materializeNestedLoop(j *NestedLoopJoin, workers int) ([]relation.Tuple, error) {
	// Right side first: sequentially it is materialized inside Open,
	// before any outer row is pulled, so its errors surface first.
	right, err := materialize(j.right, workers)
	if err != nil {
		return nil, err
	}
	left, err := materialize(j.left, workers)
	if err != nil {
		return nil, err
	}
	matches := make([][]relation.Tuple, len(left))
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, len(left), func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			var out []relation.Tuple
			for ri := range right {
				joined := joinTuples(left[i], right[ri])
				if j.pred != nil {
					v, err := j.pred.Eval(&joined)
					if err != nil {
						errs[shard] = parallel.RowErr{Err: err, Row: i}
						return
					}
					if !Truthy(v) {
						continue
					}
				}
				out = append(out, joined)
			}
			matches[i] = out
		}
	})
	if bad := parallel.FirstRowErr(errs); bad.Err != nil {
		return nil, bad.Err
	}
	return concatRows(matches), nil
}

func materializeGroupBy(g *GroupBy, workers int) ([]relation.Tuple, error) {
	in, err := materialize(g.in, workers)
	if err != nil {
		return nil, err
	}
	n := len(in)

	// Phase 1: per-row group keys (values and hash bytes), in parallel.
	// Key bytes stay []byte windows into per-shard append-only slabs so
	// the sequential grouping phase can probe the index with the elided
	// string(bytes) map read — the key string materializes once per
	// distinct group, exactly as the sequential build does, not per row.
	keyVals := make([][]relation.Value, n)
	keyBytes := make([][]byte, n)
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, n, func(shard, lo, hi int) {
		var kb []byte
		var slab []relation.Value
		nk := len(g.keys)
		for i := lo; i < hi; i++ {
			if len(slab) < nk {
				chunk := 8192
				if chunk < nk {
					chunk = nk
				}
				//cobra:hotalloc slab refill amortized over thousands of grouped rows
				slab = make([]relation.Value, chunk)
			}
			vals := slab[:nk:nk]
			slab = slab[nk:]
			off := len(kb)
			for k, key := range g.keys {
				v, err := key.Eval(&in[i])
				if err != nil {
					errs[shard] = parallel.RowErr{Err: err, Row: i}
					return
				}
				if v.Kind == relation.KindPoly {
					errs[shard] = parallel.RowErr{Err: fmt.Errorf("engine: GROUP BY over a symbolic value"), Row: i}
					return
				}
				vals[k] = v
				// Appends may move kb to a fresh backing; windows taken
				// for earlier rows keep pointing into the old one, whose
				// bytes are never rewritten.
				kb = v.Key(kb)
			}
			keyVals[i] = vals
			keyBytes[i] = kb[off:len(kb):len(kb)]
		}
	})
	// A key error does not surface yet: the sequential scan processes each
	// row fully (key evaluation, then accumulation) before the next, so an
	// accumulation error on an earlier row must win. Rows from the first
	// failing key onwards are excluded, exactly as the sequential drain
	// never reaches them.
	keyBad := parallel.FirstRowErr(errs)
	limit := n
	if keyBad.Err != nil {
		limit = keyBad.Row
	}

	// Phase 2: sequential grouping in input order (cheap map lookups over
	// the precomputed keys), preserving the sequential first-seen group
	// order.
	index := make(map[string]int)
	var groupRows [][]int
	var groupKeys [][]relation.Value
	for i := 0; i < limit; i++ {
		// Read with string(bytes) directly (elided on map reads); the key
		// string materializes only per distinct group.
		gi, ok := index[string(keyBytes[i])]
		if !ok {
			gi = len(groupRows)
			//cobra:hotalloc the map retains its key: one allocation per distinct group, not per input row
			index[string(keyBytes[i])] = gi
			groupRows = append(groupRows, nil)
			groupKeys = append(groupKeys, keyVals[i])
		}
		groupRows[gi] = append(groupRows[gi], i)
	}

	// Phase 3: per-group accumulation. Each group's rows are folded in
	// input order by a single worker, so per-group aggregate state (float
	// sums, polynomial builders, annotation sums) is bit-identical to the
	// sequential fold; groups themselves are independent. Finalize errors
	// rank after all accumulation errors, as in the sequential path.
	out := make([]relation.Tuple, len(groupRows))
	gerrs := make([]parallel.RowErr, len(groupRows))
	parallel.ForEach(workers, len(groupRows), func(gi int) {
		states := make([]aggState, len(g.aggs))
		ann := polynomial.Zero()
		for _, ri := range groupRows[gi] {
			t := &in[ri]
			ann = polynomial.Add(ann, t.Ann)
			for ai := range g.aggs {
				if err := g.accumulate(&states[ai], &g.aggs[ai], t); err != nil {
					gerrs[gi] = parallel.RowErr{Err: err, Row: ri}
					return
				}
			}
		}
		vals := make([]relation.Value, 0, len(groupKeys[gi])+len(g.aggs))
		vals = append(vals, groupKeys[gi]...)
		for ai := range g.aggs {
			v, err := finalize(&states[ai], &g.aggs[ai])
			if err != nil {
				gerrs[gi] = parallel.RowErr{Err: err, Row: n + gi}
				return
			}
			vals = append(vals, v)
		}
		out[gi] = relation.Tuple{Values: vals, Ann: ann}
	})
	// Merge phase errors by sequential position: accumulation errors on
	// rows before the first key error precede it; the key error precedes
	// finalize errors (rows beyond n), which the sequential drain would
	// never have reached.
	bad := parallel.FirstRowErr(gerrs)
	if keyBad.Err != nil && (bad.Err == nil || keyBad.Row < bad.Row) {
		bad = keyBad
	}
	if bad.Err != nil {
		return nil, bad.Err
	}
	return out, nil
}

func materializeSort(s *Sort, workers int) ([]relation.Tuple, error) {
	in, err := materialize(s.in, workers)
	if err != nil {
		return nil, err
	}
	keyVals := make([][]relation.Value, len(in))
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, len(in), func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			ks := make([]relation.Value, len(s.keys))
			for k := range s.keys {
				v, err := s.keys[k].Expr.Eval(&in[i])
				if err != nil {
					errs[shard] = parallel.RowErr{Err: err, Row: i}
					return
				}
				ks[k] = v
			}
			keyVals[i] = ks
		}
	})
	if bad := parallel.FirstRowErr(errs); bad.Err != nil {
		return nil, bad.Err
	}
	// The sort itself is the sequential code path, so ties, comparison
	// errors and the stable order are identical by construction.
	return sortByKeys(in, keyVals, s.keys)
}

func materializeDistinct(d *Distinct, workers int) ([]relation.Tuple, error) {
	in, err := materialize(d.in, workers)
	if err != nil {
		return nil, err
	}
	keyStrs := make([]string, len(in))
	errs := make([]parallel.RowErr, parallel.Normalize(workers))
	parallel.Chunks(workers, len(in), func(shard, lo, hi int) {
		var buf []byte
		for i := lo; i < hi; i++ {
			buf = buf[:0]
			for _, v := range in[i].Values {
				if v.Kind == relation.KindPoly {
					errs[shard] = parallel.RowErr{Err: fmt.Errorf("engine: DISTINCT over symbolic values is not supported"), Row: i}
					return
				}
				buf = v.Key(buf)
			}
			keyStrs[i] = string(buf)
		}
	})
	if bad := parallel.FirstRowErr(errs); bad.Err != nil {
		return nil, bad.Err
	}
	// Sequential merge in input order: annotation additions happen in
	// exactly the sequential order.
	index := make(map[string]int)
	var out []relation.Tuple
	for i := range in {
		if di, dup := index[keyStrs[i]]; dup {
			out[di].Ann = polynomial.Add(out[di].Ann, in[i].Ann)
			continue
		}
		index[keyStrs[i]] = len(out)
		out = append(out, in[i].Clone())
	}
	return out, nil
}

func materializeUnion(u *Union, workers int) ([]relation.Tuple, error) {
	l, err := materialize(u.l, workers)
	if err != nil {
		return nil, err
	}
	r, err := materialize(u.r, workers)
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...), nil
}
