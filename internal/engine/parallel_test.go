package engine

import (
	"fmt"
	"math"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// parallelRel generates a relation large enough that every worker count
// actually shards it, with symbolic annotations and a symbolic value column
// so the polynomial paths are exercised.
func parallelRel(t testing.TB, names *polynomial.Names, rows int) *relation.Relation {
	t.Helper()
	s := relation.NewSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "grp", Kind: relation.KindString},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sym", Kind: relation.KindPoly},
	)
	r := relation.NewRelation("t", s)
	for i := 0; i < rows; i++ {
		v := names.Var(fmt.Sprintf("x%d", i%17))
		r.Append(
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("g%d", i%7)),
			relation.Float(float64(i%13)+0.25),
			relation.Poly(polynomial.New(polynomial.Mono(1.5+float64(i%5), polynomial.T(v)))),
		)
		r.Rows[len(r.Rows)-1].Ann = polynomial.VarPoly(names.Var(fmt.Sprintf("a%d", i%11)))
	}
	return r
}

// sameValue compares values at the bit level (floats via Float64bits,
// polynomials exactly).
func sameValue(a, b relation.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case relation.KindPoly:
		return polynomial.Equal(a.P, b.P)
	case relation.KindFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case relation.KindInt:
		return a.I == b.I
	case relation.KindString:
		return a.S == b.S
	case relation.KindBool:
		return a.B == b.B
	default:
		return true // NULL
	}
}

func assertSameRelation(t *testing.T, want, got *relation.Relation) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("rows: %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		w, g := want.Rows[i], got.Rows[i]
		if len(w.Values) != len(g.Values) {
			t.Fatalf("row %d arity: %d vs %d", i, len(w.Values), len(g.Values))
		}
		for c := range w.Values {
			if !sameValue(w.Values[c], g.Values[c]) {
				t.Fatalf("row %d col %d: %s vs %s", i, c, w.Values[c], g.Values[c])
			}
		}
		if !polynomial.Equal(w.Ann, g.Ann) {
			t.Fatalf("row %d annotation diverged", i)
		}
	}
}

// parallelPlans enumerates one plan per operator (plus stacked plans) over
// fresh iterators, since materialized operators keep per-run state.
func parallelPlans(t *testing.T, rel, rel2 *relation.Relation) map[string]func() Iterator {
	t.Helper()
	colID := &ColRef{Idx: 0, Name: "id"}
	colGrp := &ColRef{Idx: 1, Name: "grp"}
	colVal := &ColRef{Idx: 2, Name: "val"}
	colSym := &ColRef{Idx: 3, Name: "sym"}
	return map[string]func() Iterator{
		"scan": func() Iterator { return NewScan(rel, "") },
		"filter": func() Iterator {
			return NewFilter(NewScan(rel, ""), &Cmp{Op: OpGt, L: colVal, R: &Lit{relation.Float(4)}})
		},
		"project": func() Iterator {
			return NewProject(NewScan(rel, ""), []Projection{
				{Name: "w", Expr: &Arith{Op: OpMul, L: colVal, R: colSym}},
				{Name: "g", Expr: colGrp},
			})
		},
		"hashjoin": func() Iterator {
			hj, err := NewHashJoin(NewScan(rel, "l"), NewScan(rel2, "r"), []int{1}, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			return hj
		},
		"nestedloop": func() Iterator {
			pred := &Cmp{Op: OpEq, L: &ColRef{Idx: 1, Name: "l.grp"}, R: &ColRef{Idx: 4, Name: "r.key"}}
			return NewNestedLoopJoin(NewScan(rel, "l"), NewScan(rel2, "r"), pred)
		},
		"groupby": func() Iterator {
			gb, err := NewGroupBy(NewScan(rel, ""), []Expr{colGrp}, []string{"grp"}, []AggSpec{
				{Kind: AggSum, Arg: &Arith{Op: OpMul, L: colVal, R: colSym}, Name: "s"},
				{Kind: AggCount, Arg: nil, Name: "c"},
				{Kind: AggAvg, Arg: colVal, Name: "a"},
				{Kind: AggMin, Arg: colID, Name: "lo"},
				{Kind: AggMax, Arg: colID, Name: "hi"},
			})
			if err != nil {
				t.Fatal(err)
			}
			return gb
		},
		"sort": func() Iterator {
			return NewSort(NewScan(rel, ""), []SortKey{{Expr: colGrp}, {Expr: colVal, Desc: true}})
		},
		"distinct": func() Iterator {
			return NewDistinct(NewProject(NewScan(rel, ""), []Projection{{Name: "g", Expr: colGrp}, {Name: "v", Expr: colVal}}))
		},
		"union": func() Iterator {
			u, err := NewUnion(NewScan(rel, ""), NewScan(rel, "u"))
			if err != nil {
				t.Fatal(err)
			}
			return u
		},
		"limit-fallback": func() Iterator {
			return NewLimit(NewFilter(NewScan(rel, ""), &Cmp{Op: OpGt, L: colVal, R: &Lit{relation.Float(2)}}), 40)
		},
		"stacked": func() Iterator {
			f := NewFilter(NewScan(rel, ""), &Cmp{Op: OpLt, L: colID, R: &Lit{relation.Int(450)}})
			gb, err := NewGroupBy(f, []Expr{colGrp}, []string{"grp"}, []AggSpec{
				{Kind: AggSum, Arg: &Arith{Op: OpMul, L: colVal, R: colSym}, Name: "rev"},
			})
			if err != nil {
				t.Fatal(err)
			}
			return NewSort(gb, []SortKey{{Expr: &ColRef{Idx: 0, Name: "grp"}}})
		},
	}
}

// TestCollectNMatchesSequential sweeps Workers ∈ {1, 2, 8} over every
// operator and asserts bit-identical output against the sequential Collect.
func TestCollectNMatchesSequential(t *testing.T) {
	names := polynomial.NewNames()
	rel := parallelRel(t, names, 500)
	rel2 := relation.NewRelation("d", relation.NewSchema(
		relation.Column{Name: "key", Kind: relation.KindString},
		relation.Column{Name: "rank", Kind: relation.KindInt},
	))
	for i := 0; i < 7; i++ {
		rel2.Append(relation.Str(fmt.Sprintf("g%d", i)), relation.Int(int64(i*10)))
	}

	plans := parallelPlans(t, rel, rel2)
	for name, build := range plans {
		want, err := Collect("out", build())
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := CollectN("out", build(), workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			assertSameRelation(t, want, got)
		}
	}
}

// TestCollectNErrorDeterminism: when several rows would fail, every worker
// count reports the error of the first failing row in input order.
func TestCollectNErrorDeterminism(t *testing.T) {
	names := polynomial.NewNames()
	rel := parallelRel(t, names, 300)
	// LIKE over a non-string column fails on every row; the first failing
	// row is row 0 for all worker counts.
	build := func() Iterator {
		return NewFilter(NewScan(rel, ""), &Like{E: &ColRef{Idx: 0, Name: "id"}, Pattern: "x%"})
	}
	_, seqErr := Collect("out", build())
	if seqErr == nil {
		t.Fatal("expected error")
	}
	for _, workers := range []int{2, 8} {
		_, err := CollectN("out", build(), workers)
		if err == nil || err.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, seqErr)
		}
	}

	// DISTINCT over a symbolic column: same error, any worker count.
	buildD := func() Iterator { return NewDistinct(NewScan(rel, "")) }
	_, seqErr = Collect("out", buildD())
	if seqErr == nil {
		t.Fatal("expected symbolic DISTINCT error")
	}
	for _, workers := range []int{2, 8} {
		_, err := CollectN("out", buildD(), workers)
		if err == nil || err.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, seqErr)
		}
	}
}

// TestCollectNCapsCapacity: appending to a CollectN result over a bare scan
// must not scribble on the base relation's backing array.
func TestCollectNCapsCapacity(t *testing.T) {
	names := polynomial.NewNames()
	rel := parallelRel(t, names, 64)
	out, err := CollectN("out", NewScan(rel, ""), 4)
	if err != nil {
		t.Fatal(err)
	}
	out.Rows = append(out.Rows, relation.NewTuple(relation.Int(-1), relation.Str("zz"), relation.Float(0), relation.Null()))
	if rel.Rows[len(rel.Rows)-1].Values[1].S == "zz" {
		t.Fatal("append leaked into the base relation")
	}
	if len(rel.Rows) != 64 {
		t.Fatalf("base relation mutated: %d rows", len(rel.Rows))
	}
}

// TestCollectNGroupByErrorPrecedence: when a group-key error and an
// aggregate error occur on different rows, every worker count reports the
// error of the earlier row — exactly as the sequential row-at-a-time scan.
func TestCollectNGroupByErrorPrecedence(t *testing.T) {
	names := polynomial.NewNames()
	build := func(keyErrRow, aggErrRow int) func() Iterator {
		s := relation.NewSchema(
			relation.Column{Name: "k"},
			relation.Column{Name: "v"},
		)
		rel := relation.NewRelation("t", s)
		for i := 0; i < 40; i++ {
			k := relation.Str(fmt.Sprintf("g%d", i%3))
			if i == keyErrRow { // symbolic group key errors at this row
				k = relation.Poly(polynomial.VarPoly(names.Var("bad")))
			}
			v := relation.Float(float64(i))
			if i == aggErrRow { // non-numeric SUM argument errors at this row
				v = relation.Str("oops")
			}
			rel.Append(k, v)
		}
		return func() Iterator {
			gb, err := NewGroupBy(NewScan(rel, ""), []Expr{&ColRef{Idx: 0, Name: "k"}}, []string{"k"},
				[]AggSpec{{Kind: AggSum, Arg: &ColRef{Idx: 1, Name: "v"}, Name: "s"}})
			if err != nil {
				t.Fatal(err)
			}
			return gb
		}
	}
	for _, tc := range []struct{ keyErrRow, aggErrRow int }{
		{27, 4},  // aggregate error first: it must win
		{4, 27},  // key error first: it must win
		{-1, 13}, // only an aggregate error
		{13, -1}, // only a key error
	} {
		plan := build(tc.keyErrRow, tc.aggErrRow)
		_, seqErr := Collect("out", plan())
		if seqErr == nil {
			t.Fatalf("%+v: expected sequential error", tc)
		}
		for _, workers := range []int{2, 8} {
			_, err := CollectN("out", plan(), workers)
			if err == nil || err.Error() != seqErr.Error() {
				t.Fatalf("%+v workers=%d: err = %v, want %v", tc, workers, err, seqErr)
			}
		}
	}
}
