package engine

import (
	"errors"
	"testing"

	"github.com/cobra-prov/cobra/internal/relation"
)

// TestStreamMatchesCollect: the pull loop must deliver exactly the rows
// Collect materializes, in the same order, without collecting them itself.
func TestStreamMatchesCollect(t *testing.T) {
	rel := testRel(t)
	for name, build := range lifecyclePlans(t) {
		want, err := Collect("out", build(track(NewScan(rel, "")), track(NewScan(rel, "x"))))
		if err != nil {
			t.Fatalf("%s: collect: %v", name, err)
		}
		l, r := track(NewScan(rel, "")), track(NewScan(rel, "x"))
		var got []relation.Tuple
		err = Stream(build(l, r), func(tu relation.Tuple) error {
			// Streamed tuples are valid only until the callback returns
			// (row-validity contract): clone to retain.
			got = append(got, tu.Clone())
			return nil
		})
		if err != nil {
			t.Fatalf("%s: stream: %v", name, err)
		}
		assertBalanced(t, l, r)
		if len(got) != len(want.Rows) {
			t.Fatalf("%s: streamed %d rows, collect %d", name, len(got), len(want.Rows))
		}
		for i := range got {
			if len(got[i].Values) != len(want.Rows[i].Values) {
				t.Fatalf("%s: row %d arity differs", name, i)
			}
			for j := range got[i].Values {
				if got[i].Values[j].String() != want.Rows[i].Values[j].String() {
					t.Fatalf("%s: row %d col %d: %s vs %s", name, i, j,
						got[i].Values[j].String(), want.Rows[i].Values[j].String())
				}
			}
		}
	}
}

// TestStreamLifecycleOnErrors: Open failures, mid-stream Next failures and
// callback failures must all leave every opened iterator closed exactly
// once — and a callback error must stop the pull immediately.
func TestStreamLifecycleOnErrors(t *testing.T) {
	rel := testRel(t)

	// Open error: nothing to close, error surfaces.
	l := track(NewScan(rel, ""))
	l.openErr = errInjected
	if err := Stream(l, func(relation.Tuple) error { return nil }); !errors.Is(err, errInjected) {
		t.Fatalf("open error: got %v", err)
	}
	if l.closes != 0 {
		t.Fatalf("failed Open was closed %d times", l.closes)
	}

	// Next error mid-stream.
	l = track(NewScan(rel, ""))
	l.failNextAt = 2
	rows := 0
	err := Stream(l, func(relation.Tuple) error { rows++; return nil })
	if !errors.Is(err, errInjected) {
		t.Fatalf("next error: got %v", err)
	}
	assertBalanced(t, l)
	if rows != 1 {
		t.Fatalf("callback ran %d times before the injected failure, want 1", rows)
	}

	// Callback error stops the pull and wins over a Close error.
	l = track(NewScan(rel, ""))
	l.closeErr = errors.New("close failure")
	cbErr := errors.New("callback failure")
	calls := 0
	err = Stream(l, func(relation.Tuple) error {
		calls++
		if calls == 2 {
			return cbErr
		}
		return nil
	})
	if !errors.Is(err, cbErr) {
		t.Fatalf("callback error: got %v", err)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times after its own failure, want 2", calls)
	}
	assertBalanced(t, l)

	// Close error surfaces when the stream itself succeeded.
	l = track(NewScan(rel, ""))
	l.closeErr = errInjected
	if err := Stream(l, func(relation.Tuple) error { return nil }); !errors.Is(err, errInjected) {
		t.Fatalf("close error: got %v", err)
	}
}
