// Package engine implements a Volcano-style, provenance-aware relational
// query engine. Tuples carry N[X] annotations that propagate through
// selection, projection and join (Green et al.); numeric cells may be
// symbolic (polynomial-valued), and aggregation combines annotations and
// values in the aggregation semimodule of Amsterdamer et al., producing the
// provenance polynomials COBRA compresses.
package engine

import (
	"fmt"
	"strings"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// Expr is a bound (column indices resolved) scalar expression.
type Expr interface {
	Eval(t *relation.Tuple) (relation.Value, error)
	String() string
}

// ColRef reads column Idx; Name is kept for display.
type ColRef struct {
	Idx  int
	Name string
}

func (c *ColRef) Eval(t *relation.Tuple) (relation.Value, error) {
	if c.Idx < 0 || c.Idx >= len(t.Values) {
		return relation.Null(), fmt.Errorf("engine: column index %d out of range", c.Idx)
	}
	return t.Values[c.Idx], nil
}

func (c *ColRef) String() string { return c.Name }

// Lit is a literal value.
type Lit struct {
	Val relation.Value
}

func (l *Lit) Eval(*relation.Tuple) (relation.Value, error) { return l.Val, nil }
func (l *Lit) String() string                               { return l.Val.String() }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// Arith is a binary arithmetic expression with numeric/symbolic promotion:
// int op int stays integral (except division), floats promote, and symbolic
// operands promote the computation into the polynomial semiring. Division is
// defined only by a concrete (or constant-symbolic) nonzero divisor.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a *Arith) Eval(t *relation.Tuple) (relation.Value, error) {
	l, err := a.L.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	r, err := a.R.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return relation.Null(), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return relation.Null(), fmt.Errorf("engine: %s requires numeric operands, got %s and %s", a.Op, l.Kind, r.Kind)
	}
	// Symbolic path. A concrete operand is folded in directly (Scale for
	// * and /, a constant polynomial only where unavoidable) so the per-row
	// hot path does not allocate a one-monomial polynomial just to wrap a
	// number; the results are bit-identical to lifting both sides.
	if l.Kind == relation.KindPoly || r.Kind == relation.KindPoly {
		switch a.Op {
		case OpMul:
			if l.Kind != relation.KindPoly {
				lf, _ := l.AsFloat()
				return simplify(polynomial.Scale(r.P, lf)), nil
			}
			if r.Kind != relation.KindPoly {
				rf, _ := r.AsFloat()
				return simplify(polynomial.Scale(l.P, rf)), nil
			}
			return simplify(polynomial.Mul(l.P, r.P)), nil
		case OpDiv:
			if r.Kind != relation.KindPoly {
				rf, _ := r.AsFloat()
				if rf == 0 {
					return relation.Null(), fmt.Errorf("engine: division by zero")
				}
				return simplify(polynomial.Scale(l.P, 1/rf)), nil
			}
			c, ok := r.P.IsConstant()
			if !ok {
				return relation.Null(), fmt.Errorf("engine: division by a symbolic value")
			}
			if c == 0 {
				return relation.Null(), fmt.Errorf("engine: division by zero")
			}
			if l.Kind != relation.KindPoly {
				lf, _ := l.AsFloat()
				return relation.Float(lf * (1 / c)), nil
			}
			return simplify(polynomial.Scale(l.P, 1/c)), nil
		}
		lp, _ := l.AsPoly()
		rp, _ := r.AsPoly()
		switch a.Op {
		case OpAdd:
			return simplify(polynomial.Add(lp, rp)), nil
		case OpSub:
			return simplify(polynomial.Sub(lp, rp)), nil
		}
	}
	// Integer path.
	if l.Kind == relation.KindInt && r.Kind == relation.KindInt && a.Op != OpDiv {
		switch a.Op {
		case OpAdd:
			return relation.Int(l.I + r.I), nil
		case OpSub:
			return relation.Int(l.I - r.I), nil
		case OpMul:
			return relation.Int(l.I * r.I), nil
		}
	}
	lf, _ := l.AsFloat()
	rf, _ := r.AsFloat()
	switch a.Op {
	case OpAdd:
		return relation.Float(lf + rf), nil
	case OpSub:
		return relation.Float(lf - rf), nil
	case OpMul:
		return relation.Float(lf * rf), nil
	default:
		if rf == 0 {
			return relation.Null(), fmt.Errorf("engine: division by zero")
		}
		return relation.Float(lf / rf), nil
	}
}

// simplify demotes constant polynomials back to floats so concrete
// computations stay concrete.
func simplify(p polynomial.Polynomial) relation.Value {
	if c, ok := p.IsConstant(); ok {
		return relation.Float(c)
	}
	return relation.Poly(p)
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Neg is unary minus.
type Neg struct {
	E Expr
}

func (n *Neg) Eval(t *relation.Tuple) (relation.Value, error) {
	v, err := n.E.Eval(t)
	if err != nil || v.IsNull() {
		return relation.Null(), err
	}
	switch v.Kind {
	case relation.KindInt:
		return relation.Int(-v.I), nil
	case relation.KindFloat:
		return relation.Float(-v.F), nil
	case relation.KindPoly:
		return relation.Poly(polynomial.Neg(v.P)), nil
	default:
		return relation.Null(), fmt.Errorf("engine: cannot negate %s", v.Kind)
	}
}

func (n *Neg) String() string { return "-" + n.E.String() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// Cmp compares two values. Comparisons involving NULL yield NULL (which
// filters treat as false).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c *Cmp) Eval(t *relation.Tuple) (relation.Value, error) {
	l, err := c.L.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	r, err := c.R.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return relation.Null(), nil
	}
	cmp, err := l.Compare(r)
	if err != nil {
		return relation.Null(), err
	}
	var out bool
	switch c.Op {
	case OpEq:
		out = cmp == 0
	case OpNe:
		out = cmp != 0
	case OpLt:
		out = cmp < 0
	case OpLe:
		out = cmp <= 0
	case OpGt:
		out = cmp > 0
	case OpGe:
		out = cmp >= 0
	}
	return relation.Bool(out), nil
}

func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// LogicOp enumerates boolean connectives.
type LogicOp uint8

const (
	OpAnd LogicOp = iota
	OpOr
	OpNot
)

// Logic combines boolean expressions; R is nil for OpNot. NULL operands are
// treated as false (simplified two-valued WHERE semantics).
type Logic struct {
	Op   LogicOp
	L, R Expr
}

func (l *Logic) Eval(t *relation.Tuple) (relation.Value, error) {
	lv, err := l.L.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	lb := lv.Kind == relation.KindBool && lv.B
	switch l.Op {
	case OpNot:
		return relation.Bool(!lb), nil
	case OpAnd:
		if !lb {
			return relation.Bool(false), nil
		}
	case OpOr:
		if lb {
			return relation.Bool(true), nil
		}
	}
	rv, err := l.R.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	return relation.Bool(rv.Kind == relation.KindBool && rv.B), nil
}

func (l *Logic) String() string {
	switch l.Op {
	case OpNot:
		return "NOT " + l.L.String()
	case OpAnd:
		return fmt.Sprintf("(%s AND %s)", l.L, l.R)
	default:
		return fmt.Sprintf("(%s OR %s)", l.L, l.R)
	}
}

// Like matches a string against a SQL LIKE pattern (% = any run, _ = any
// single byte).
type Like struct {
	E       Expr
	Pattern string
	Not     bool
}

func (l *Like) Eval(t *relation.Tuple) (relation.Value, error) {
	v, err := l.E.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	if v.IsNull() {
		return relation.Null(), nil
	}
	if v.Kind != relation.KindString {
		return relation.Null(), fmt.Errorf("engine: LIKE requires a string, got %s", v.Kind)
	}
	m := likeMatch(v.S, l.Pattern)
	if l.Not {
		m = !m
	}
	return relation.Bool(m), nil
}

func (l *Like) String() string {
	op := "LIKE"
	if l.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s %q)", l.E, op, l.Pattern)
}

// likeMatch implements %/_ glob matching with linear backtracking.
func likeMatch(s, pat string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]) {
			si++
			pi++
			continue
		}
		if pi < len(pat) && pat[pi] == '%' {
			star, starSi = pi, si
			pi++
			continue
		}
		if star >= 0 {
			pi = star + 1
			starSi++
			si = starSi
			continue
		}
		return false
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// InList tests membership in a literal list.
type InList struct {
	E    Expr
	Vals []relation.Value
	Not  bool
}

func (in *InList) Eval(t *relation.Tuple) (relation.Value, error) {
	v, err := in.E.Eval(t)
	if err != nil {
		return relation.Null(), err
	}
	if v.IsNull() {
		return relation.Null(), nil
	}
	found := false
	for _, x := range in.Vals {
		if v.Equal(x) {
			found = true
			break
		}
	}
	if in.Not {
		found = !found
	}
	return relation.Bool(found), nil
}

func (in *InList) String() string {
	var parts []string
	for _, v := range in.Vals {
		parts = append(parts, v.String())
	}
	op := "IN"
	if in.Not {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", in.E, op, strings.Join(parts, ", "))
}

// Between tests Lo <= E <= Hi.
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

func (b *Between) Eval(t *relation.Tuple) (relation.Value, error) {
	v, err := b.E.Eval(t)
	if err != nil || v.IsNull() {
		return relation.Null(), err
	}
	lo, err := b.Lo.Eval(t)
	if err != nil || lo.IsNull() {
		return relation.Null(), err
	}
	hi, err := b.Hi.Eval(t)
	if err != nil || hi.IsNull() {
		return relation.Null(), err
	}
	c1, err := v.Compare(lo)
	if err != nil {
		return relation.Null(), err
	}
	c2, err := v.Compare(hi)
	if err != nil {
		return relation.Null(), err
	}
	res := c1 >= 0 && c2 <= 0
	if b.Not {
		res = !res
	}
	return relation.Bool(res), nil
}

func (b *Between) String() string {
	op := "BETWEEN"
	if b.Not {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", b.E, op, b.Lo, b.Hi)
}

// Truthy reports whether an evaluated condition admits the tuple.
func Truthy(v relation.Value) bool {
	return v.Kind == relation.KindBool && v.B
}
