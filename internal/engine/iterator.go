package engine

import (
	"fmt"
	"sort"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// Iterator is the Volcano-style operator interface. Next returns the next
// tuple and true, or a zero tuple and false at end of stream.
//
// Row-validity contract: the Values slice of a returned tuple is valid
// only until the next Next or Close call on the same iterator — operators
// are free to reuse their output row buffer. A consumer that buffers
// tuples across pulls (Sort, a join's build side, Collect, a capture
// batch) must copy the Values it keeps. Annotations are immutable
// polynomials and may always be retained without copying.
type Iterator interface {
	Schema() *relation.Schema
	Open() error
	Next() (relation.Tuple, bool, error)
	Close() error
}

// Catalog names the base relations available to queries.
type Catalog map[string]*relation.Relation

// Collect drains an iterator into a materialized relation. The iterator is
// always closed; a Close error is reported even when the drain itself
// succeeded (the Next error wins when both fail).
func Collect(name string, it Iterator) (*relation.Relation, error) {
	rows, err := drain(it)
	if err != nil {
		return nil, err
	}
	out := relation.NewRelation(name, it.Schema())
	out.Rows = rows
	return out, nil
}

// Scan iterates a materialized relation, optionally re-qualifying its
// schema under an alias.
type Scan struct {
	rel    *relation.Relation
	schema *relation.Schema
	pos    int
}

// NewScan creates a scan; alias qualifies column names ("" keeps the
// relation's own name as qualifier).
func NewScan(rel *relation.Relation, alias string) *Scan {
	if alias == "" {
		alias = rel.Name
	}
	return &Scan{rel: rel, schema: rel.Schema.WithQualifier(alias)}
}

func (s *Scan) Schema() *relation.Schema { return s.schema }
func (s *Scan) Open() error              { s.pos = 0; return nil }
func (s *Scan) Close() error             { return nil }

func (s *Scan) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.rel.Rows) {
		return relation.Tuple{}, false, nil
	}
	t := s.rel.Rows[s.pos]
	s.pos++
	return t, true, nil
}

// Filter passes tuples whose predicate evaluates to TRUE; annotations pass
// through unchanged (selection is annotation-preserving in the semiring
// model).
type Filter struct {
	in   Iterator
	pred Expr

	// cur holds the tuple being tested: Eval takes *Tuple through an
	// interface, which would force a loop-local tuple to the heap on
	// every row; a struct field escapes once with the operator.
	cur relation.Tuple
}

// NewFilter wraps in with a predicate.
func NewFilter(in Iterator, pred Expr) *Filter {
	return &Filter{in: in, pred: pred}
}

func (f *Filter) Schema() *relation.Schema { return f.in.Schema() }
func (f *Filter) Open() error              { return f.in.Open() }
func (f *Filter) Close() error             { return f.in.Close() }

func (f *Filter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		f.cur = t
		v, err := f.pred.Eval(&f.cur)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if Truthy(v) {
			return t, true, nil
		}
	}
}

// Projection is one output column of a Project.
type Projection struct {
	Expr Expr
	Name string
}

// Project computes output columns; annotations pass through.
type Project struct {
	in     Iterator
	projs  []Projection
	schema *relation.Schema

	rowBuf []relation.Value // reused output row (row-validity contract)
	cur    relation.Tuple   // Eval input; a field so the tuple escapes once, not per row
}

// NewProject builds a projection node.
func NewProject(in Iterator, projs []Projection) *Project {
	cols := make([]relation.Column, len(projs))
	for i, p := range projs {
		cols[i] = relation.Column{Name: p.Name}
	}
	return &Project{in: in, projs: projs, schema: relation.NewSchema(cols...)}
}

func (p *Project) Schema() *relation.Schema { return p.schema }
func (p *Project) Open() error              { return p.in.Open() }
func (p *Project) Close() error             { return p.in.Close() }

func (p *Project) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return relation.Tuple{}, false, err
	}
	// The output row buffer is reused across pulls (row-validity
	// contract): projecting a row allocates nothing after the first call.
	n := len(p.projs)
	if cap(p.rowBuf) < n {
		p.rowBuf = make([]relation.Value, n)
	}
	out := relation.Tuple{Values: p.rowBuf[:n:n], Ann: t.Ann}
	p.cur = t
	for i, pr := range p.projs {
		v, err := pr.Expr.Eval(&p.cur)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		out.Values[i] = v
	}
	return out, true, nil
}

// Limit stops after n tuples.
type Limit struct {
	in   Iterator
	n    int
	seen int
}

// NewLimit wraps in with a row limit.
func NewLimit(in Iterator, n int) *Limit { return &Limit{in: in, n: n} }

func (l *Limit) Schema() *relation.Schema { return l.in.Schema() }
func (l *Limit) Open() error              { l.seen = 0; return l.in.Open() }
func (l *Limit) Close() error             { return l.in.Close() }

func (l *Limit) Next() (relation.Tuple, bool, error) {
	if l.seen >= l.n {
		return relation.Tuple{}, false, nil
	}
	t, ok, err := l.in.Next()
	if err != nil || !ok {
		return relation.Tuple{}, false, err
	}
	l.seen++
	return t, true, nil
}

// SortKey orders by an expression, ascending or descending.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by the keys.
type Sort struct {
	in   Iterator
	keys []SortKey
	rows []relation.Tuple
	pos  int
}

// NewSort builds a sort node.
func NewSort(in Iterator, keys []SortKey) *Sort { return &Sort{in: in, keys: keys} }

func (s *Sort) Schema() *relation.Schema { return s.in.Schema() }
func (s *Sort) Close() error             { s.rows = nil; return s.in.Close() }

func (s *Sort) Open() error {
	if err := s.in.Open(); err != nil {
		return err
	}
	if err := s.build(); err != nil {
		s.in.Close() // the drain error is the primary failure
		return err
	}
	return nil
}

// build drains the (already opened) input and sorts it.
func (s *Sort) build() error {
	s.rows = s.rows[:0]
	s.pos = 0
	// Key values and retained row values are appended to flat backing
	// arrays (a per-row []Value would be one allocation per input row)
	// and sliced into per-row windows only after draining, when append
	// can no longer move the backings. Row values must be copied: the
	// input's buffer is only valid until the next pull (row-validity
	// contract).
	var rows []relation.Tuple
	var flat []relation.Value
	var vals []relation.Value
	var valOff []int
	// t is hoisted out of the loop: Eval takes its address through an
	// interface, and a loop-local tuple would escape once per row.
	var t relation.Tuple
	var ok bool
	var err error
	for {
		t, ok, err = s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, k := range s.keys {
			v, err := k.Expr.Eval(&t)
			if err != nil {
				return err
			}
			flat = append(flat, v)
		}
		valOff = append(valOff, len(vals))
		vals = append(vals, t.Values...)
		rows = append(rows, relation.Tuple{Ann: t.Ann})
	}
	valOff = append(valOff, len(vals))
	for i := range rows {
		lo, hi := valOff[i], valOff[i+1]
		rows[i].Values = vals[lo:hi:hi]
	}
	nk := len(s.keys)
	keyVals := make([][]relation.Value, len(rows))
	for i := range keyVals {
		keyVals[i] = flat[i*nk : (i+1)*nk]
	}
	sorted, err := sortByKeys(rows, keyVals, s.keys)
	if err != nil {
		return err
	}
	s.rows = append(s.rows, sorted...)
	return nil
}

// sortByKeys stably sorts rows by their pre-evaluated key values,
// permuting an index vector so tuples are moved only once. It is shared by
// the sequential and parallel sort paths, so both produce the identical
// order (and the identical first comparison error).
func sortByKeys(rows []relation.Tuple, keyVals [][]relation.Value, keys []SortKey) ([]relation.Tuple, error) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		for k := range keys {
			c, err := keyVals[i][k].Compare(keyVals[j][k])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c == 0 {
				continue
			}
			if keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([]relation.Tuple, len(rows))
	for p, i := range idx {
		out[p] = rows[i]
	}
	return out, nil
}

func (s *Sort) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return relation.Tuple{}, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Distinct merges duplicate tuples, adding their annotations (the semiring
// semantics of duplicate elimination). Symbolic values cannot be hashed, so
// Distinct requires concrete tuples.
type Distinct struct {
	in   Iterator
	rows []relation.Tuple
	pos  int
}

// NewDistinct builds a duplicate-eliminating node.
func NewDistinct(in Iterator) *Distinct { return &Distinct{in: in} }

func (d *Distinct) Schema() *relation.Schema { return d.in.Schema() }
func (d *Distinct) Close() error             { d.rows = nil; return d.in.Close() }

func (d *Distinct) Open() error {
	if err := d.in.Open(); err != nil {
		return err
	}
	if err := d.build(); err != nil {
		d.in.Close() // the drain error is the primary failure
		return err
	}
	return nil
}

// build drains the (already opened) input, merging duplicates.
func (d *Distinct) build() error {
	d.rows = d.rows[:0]
	d.pos = 0
	index := make(map[string]int)
	var buf []byte
	for {
		t, ok, err := d.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		buf = buf[:0]
		for _, v := range t.Values {
			if v.Kind == relation.KindPoly {
				return fmt.Errorf("engine: DISTINCT over symbolic values is not supported")
			}
			buf = v.Key(buf)
		}
		// Read with string(buf) directly (elided on map reads); the key
		// only materializes for rows seen the first time.
		if i, dup := index[string(buf)]; dup {
			d.rows[i].Ann = polynomial.Add(d.rows[i].Ann, t.Ann)
			continue
		}
		//cobra:hotalloc the map retains its key: one allocation per distinct row, not per input row
		index[string(buf)] = len(d.rows)
		d.rows = append(d.rows, t.Clone())
	}
}

func (d *Distinct) Next() (relation.Tuple, bool, error) {
	if d.pos >= len(d.rows) {
		return relation.Tuple{}, false, nil
	}
	t := d.rows[d.pos]
	d.pos++
	return t, true, nil
}

// Union concatenates two inputs with identical arity (bag union; annotations
// untouched — combine with Distinct for set semantics).
type Union struct {
	l, r   Iterator
	onLeft bool
}

// NewUnion builds a bag-union node.
func NewUnion(l, r Iterator) (*Union, error) {
	if l.Schema().Len() != r.Schema().Len() {
		return nil, fmt.Errorf("engine: UNION arity mismatch: %d vs %d", l.Schema().Len(), r.Schema().Len())
	}
	return &Union{l: l, r: r}, nil
}

func (u *Union) Schema() *relation.Schema { return u.l.Schema() }

func (u *Union) Open() error {
	u.onLeft = true
	if err := u.l.Open(); err != nil {
		return err
	}
	if err := u.r.Open(); err != nil {
		u.l.Close() // don't leak the already-opened left child
		return err
	}
	return nil
}

func (u *Union) Close() error {
	err1 := u.l.Close()
	err2 := u.r.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (u *Union) Next() (relation.Tuple, bool, error) {
	if u.onLeft {
		t, ok, err := u.l.Next()
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if ok {
			return t, true, nil
		}
		u.onLeft = false
	}
	return u.r.Next()
}
