package engine

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	AggSum AggKind = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	return [...]string{"SUM", "COUNT", "AVG", "MIN", "MAX"}[k]
}

// AggSpec is one aggregate output: Kind applied to Arg (nil Arg means
// COUNT(*)).
type AggSpec struct {
	Kind AggKind
	Arg  Expr
	Name string
}

// GroupBy materializes its input and emits one tuple per group: the group
// key values followed by the aggregates.
//
// SUM and COUNT follow the aggregation semimodule of Amsterdamer et al.:
// SUM(e) = Σ ann(t) ⊗ e(t), COUNT = Σ ann(t) ⊗ 1. With un-instrumented
// annotations (ann = 1) and concrete values this degenerates to ordinary
// SUM/COUNT; with symbolic cell values or annotations it produces the
// provenance polynomials COBRA consumes. The output tuple's annotation is
// the sum of the group's annotations.
//
// MIN/MAX require concrete values (the order of symbolic values is not
// defined until a valuation is applied).
type GroupBy struct {
	in     Iterator
	keys   []Expr
	aggs   []AggSpec
	schema *relation.Schema
	rows   []relation.Tuple
	pos    int
}

// NewGroupBy builds an aggregation node; keyNames label the key columns in
// the output schema.
func NewGroupBy(in Iterator, keys []Expr, keyNames []string, aggs []AggSpec) (*GroupBy, error) {
	if len(keys) != len(keyNames) {
		return nil, fmt.Errorf("engine: %d group keys but %d names", len(keys), len(keyNames))
	}
	cols := make([]relation.Column, 0, len(keys)+len(aggs))
	for _, n := range keyNames {
		cols = append(cols, relation.Column{Name: n})
	}
	for _, a := range aggs {
		cols = append(cols, relation.Column{Name: a.Name})
	}
	return &GroupBy{in: in, keys: keys, aggs: aggs, schema: relation.NewSchema(cols...)}, nil
}

func (g *GroupBy) Schema() *relation.Schema { return g.schema }
func (g *GroupBy) Close() error             { g.rows = nil; return g.in.Close() }

// aggState accumulates one aggregate within one group.
type aggState struct {
	// sum accumulation: concrete fast path + symbolic slow path
	f        float64
	poly     polynomial.Builder
	symbolic bool
	count    int64
	// min/max
	best    relation.Value
	haveVal bool
}

type group struct {
	keyVals []relation.Value
	states  []aggState
	ann     polynomial.Polynomial
}

func (g *GroupBy) Open() error {
	if err := g.in.Open(); err != nil {
		return err
	}
	if err := g.build(); err != nil {
		g.in.Close() // the drain error is the primary failure
		return err
	}
	return nil
}

// build drains the (already opened) input and materializes the groups.
func (g *GroupBy) build() error {
	g.rows = g.rows[:0]
	g.pos = 0

	index := make(map[string]int)
	var groups []*group
	var buf []byte
	scratch := make([]relation.Value, len(g.keys))

	// t is hoisted out of the loop: Eval/accumulate take its address
	// through an interface, and a loop-local tuple would escape per row.
	var t relation.Tuple
	var ok bool
	var err error
	for {
		t, ok, err = g.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		buf = buf[:0]
		for i, k := range g.keys {
			v, err := k.Eval(&t)
			if err != nil {
				return err
			}
			if v.Kind == relation.KindPoly {
				return fmt.Errorf("engine: GROUP BY over a symbolic value")
			}
			scratch[i] = v
			buf = v.Key(buf)
		}
		// Read with string(buf) directly (the conversion is elided on
		// map reads); the key string, key values and aggregate states
		// materialize only on the miss — per distinct group, not per row.
		gi, exists := index[string(buf)]
		if !exists {
			gi = len(groups)
			//cobra:hotalloc the map retains its key: one allocation per distinct group, not per input row
			index[string(buf)] = gi
			//cobra:hotalloc group materialization: key values and states allocate once per distinct group
			groups = append(groups, &group{keyVals: append([]relation.Value(nil), scratch...), states: make([]aggState, len(g.aggs)), ann: polynomial.Zero()})
		}
		grp := groups[gi]
		grp.ann = polynomial.Add(grp.ann, t.Ann)
		for ai := range g.aggs {
			if err := g.accumulate(&grp.states[ai], &g.aggs[ai], &t); err != nil {
				return err
			}
		}
	}

	for _, grp := range groups {
		out := relation.Tuple{
			Values: make([]relation.Value, 0, len(grp.keyVals)+len(g.aggs)),
			Ann:    grp.ann,
		}
		out.Values = append(out.Values, grp.keyVals...)
		for ai := range g.aggs {
			v, err := finalize(&grp.states[ai], &g.aggs[ai])
			if err != nil {
				return err
			}
			out.Values = append(out.Values, v)
		}
		g.rows = append(g.rows, out)
	}
	return nil
}

func (g *GroupBy) accumulate(st *aggState, spec *AggSpec, t *relation.Tuple) error {
	annIsOne := false
	if c, ok := t.Ann.IsConstant(); ok && c == 1 {
		annIsOne = true
	}

	var arg relation.Value
	if spec.Arg != nil {
		v, err := spec.Arg.Eval(t)
		if err != nil {
			return err
		}
		arg = v
		if arg.IsNull() {
			return nil // SQL aggregates skip NULLs
		}
	}

	switch spec.Kind {
	case AggCount:
		st.count++
		if !annIsOne {
			st.symbolic = true
			st.poly.AddPolynomial(t.Ann)
		} else {
			st.f++ // concrete count mirror, used when group stays concrete
		}
	case AggSum, AggAvg:
		if spec.Arg == nil {
			return fmt.Errorf("engine: %s requires an argument", spec.Kind)
		}
		if !arg.IsNumeric() {
			return fmt.Errorf("engine: %s over non-numeric %s", spec.Kind, arg.Kind)
		}
		st.count++
		if annIsOne && arg.Kind != relation.KindPoly {
			f, _ := arg.AsFloat()
			st.f += f
			return nil
		}
		// Semimodule path: ann ⊗ value.
		vp, _ := arg.AsPoly()
		st.symbolic = true
		st.poly.AddPolynomial(polynomial.Mul(t.Ann, vp))
	case AggMin, AggMax:
		if spec.Arg == nil {
			return fmt.Errorf("engine: %s requires an argument", spec.Kind)
		}
		if arg.Kind == relation.KindPoly {
			if _, ok := arg.AsFloat(); !ok {
				return fmt.Errorf("engine: %s over a symbolic value", spec.Kind)
			}
		}
		if !st.haveVal {
			st.best = arg
			st.haveVal = true
			return nil
		}
		c, err := arg.Compare(st.best)
		if err != nil {
			return err
		}
		if (spec.Kind == AggMin && c < 0) || (spec.Kind == AggMax && c > 0) {
			st.best = arg
		}
	}
	return nil
}

func finalize(st *aggState, spec *AggSpec) (relation.Value, error) {
	switch spec.Kind {
	case AggCount:
		if st.symbolic {
			// Symbolic multiplicities also include the concrete mirror.
			if st.f != 0 {
				st.poly.AddMonomial(polynomial.Mono(st.f))
			}
			return simplify(st.poly.Polynomial()), nil
		}
		return relation.Int(st.count), nil
	case AggSum:
		if st.count == 0 {
			return relation.Null(), nil
		}
		if st.symbolic {
			if st.f != 0 {
				st.poly.AddMonomial(polynomial.Mono(st.f))
			}
			return simplify(st.poly.Polynomial()), nil
		}
		return relation.Float(st.f), nil
	case AggAvg:
		if st.count == 0 {
			return relation.Null(), nil
		}
		if st.symbolic {
			if st.f != 0 {
				st.poly.AddMonomial(polynomial.Mono(st.f))
			}
			return simplify(polynomial.Scale(st.poly.Polynomial(), 1/float64(st.count))), nil
		}
		return relation.Float(st.f / float64(st.count)), nil
	case AggMin, AggMax:
		if !st.haveVal {
			return relation.Null(), nil
		}
		return st.best, nil
	}
	return relation.Null(), fmt.Errorf("engine: unknown aggregate %d", spec.Kind)
}

func (g *GroupBy) Next() (relation.Tuple, bool, error) {
	if g.pos >= len(g.rows) {
		return relation.Tuple{}, false, nil
	}
	t := g.rows[g.pos]
	g.pos++
	return t, true, nil
}
