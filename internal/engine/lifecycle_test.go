package engine

import (
	"errors"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/relation"
)

// trackIter instruments an iterator with Open/Close counting and error
// injection, to assert the engine's lifecycle invariant: every successful
// Open is paired with exactly one Close, on success and on every error
// path, and an Open that failed is never Closed.
type trackIter struct {
	inner  Iterator
	opens  int
	closes int
	nexts  int

	openErr    error // returned by Open before the inner iterator opens
	failNextAt int   // > 0: the failNextAt-th Next call fails
	nextErr    error
	closeErr   error // returned by Close after the inner iterator closed
}

var errInjected = errors.New("injected failure")

func track(inner Iterator) *trackIter { return &trackIter{inner: inner} }

func (t *trackIter) Schema() *relation.Schema { return t.inner.Schema() }

func (t *trackIter) Open() error {
	if t.openErr != nil {
		return t.openErr
	}
	if err := t.inner.Open(); err != nil {
		return err
	}
	t.opens++
	return nil
}

func (t *trackIter) Close() error {
	t.closes++
	if err := t.inner.Close(); err != nil {
		return err
	}
	return t.closeErr
}

func (t *trackIter) Next() (relation.Tuple, bool, error) {
	t.nexts++
	if t.failNextAt > 0 && t.nexts >= t.failNextAt {
		if t.nextErr != nil {
			return relation.Tuple{}, false, t.nextErr
		}
		return relation.Tuple{}, false, errInjected
	}
	return t.inner.Next()
}

// assertBalanced checks the pairing invariant on each tracker.
func assertBalanced(t *testing.T, trackers ...*trackIter) {
	t.Helper()
	for i, tr := range trackers {
		if tr.opens != tr.closes {
			t.Fatalf("tracker %d: %d opens but %d closes", i, tr.opens, tr.closes)
		}
		if tr.closes > 1 {
			t.Fatalf("tracker %d: closed %d times", i, tr.closes)
		}
	}
}

// lifecyclePlans builds every operator over freshly tracked children; each
// entry returns the plan root plus the trackers to audit.
func lifecyclePlans(t *testing.T) map[string]func(l, r *trackIter) Iterator {
	t.Helper()
	return map[string]func(l, r *trackIter) Iterator{
		"filter": func(l, _ *trackIter) Iterator {
			return NewFilter(l, &Cmp{Op: OpGt, L: &ColRef{Idx: 2, Name: "val"}, R: &Lit{relation.Float(15)}})
		},
		"project": func(l, _ *trackIter) Iterator {
			return NewProject(l, []Projection{{Name: "v", Expr: &ColRef{Idx: 2, Name: "val"}}})
		},
		"limit": func(l, _ *trackIter) Iterator { return NewLimit(l, 2) },
		"sort": func(l, _ *trackIter) Iterator {
			return NewSort(l, []SortKey{{Expr: &ColRef{Idx: 2, Name: "val"}, Desc: true}})
		},
		"distinct": func(l, _ *trackIter) Iterator { return NewDistinct(l) },
		"groupby": func(l, _ *trackIter) Iterator {
			gb, err := NewGroupBy(l, []Expr{&ColRef{Idx: 1, Name: "grp"}}, []string{"grp"},
				[]AggSpec{{Kind: AggSum, Arg: &ColRef{Idx: 2, Name: "val"}, Name: "s"}})
			if err != nil {
				t.Fatal(err)
			}
			return gb
		},
		"hashjoin": func(l, r *trackIter) Iterator {
			hj, err := NewHashJoin(l, r, []int{0}, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			return hj
		},
		"nestedloop": func(l, r *trackIter) Iterator { return NewNestedLoopJoin(l, r, nil) },
		"union": func(l, r *trackIter) Iterator {
			u, err := NewUnion(l, r)
			if err != nil {
				t.Fatal(err)
			}
			return u
		},
	}
}

func isBinary(name string) bool {
	return name == "hashjoin" || name == "nestedloop" || name == "union"
}

func TestLifecycleHappyPath(t *testing.T) {
	rel := testRel(t)
	for name, build := range lifecyclePlans(t) {
		l, r := track(NewScan(rel, "")), track(NewScan(rel, "x"))
		out, err := Collect("out", build(l, r))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out == nil {
			t.Fatalf("%s: nil relation", name)
		}
		assertBalanced(t, l, r)
		if l.opens != 1 {
			t.Fatalf("%s: left opened %d times", name, l.opens)
		}
		if isBinary(name) && r.opens != 1 {
			t.Fatalf("%s: right opened %d times", name, r.opens)
		}
	}
}

// TestLifecycleLeftNextError injects a mid-stream failure in the left
// (probe/outer/first) child: every opened iterator must still close once.
func TestLifecycleLeftNextError(t *testing.T) {
	rel := testRel(t)
	for name, build := range lifecyclePlans(t) {
		l, r := track(NewScan(rel, "")), track(NewScan(rel, "x"))
		l.failNextAt = 2
		_, err := Collect("out", build(l, r))
		if !errors.Is(err, errInjected) {
			t.Fatalf("%s: err = %v, want injected", name, err)
		}
		assertBalanced(t, l, r)
	}
}

// TestLifecycleRightOpenError fails the right child's Open: the
// already-opened left child must be closed, and the unopened right child
// must not be.
func TestLifecycleRightOpenError(t *testing.T) {
	rel := testRel(t)
	for _, name := range []string{"hashjoin", "nestedloop", "union"} {
		build := lifecyclePlans(t)[name]
		l, r := track(NewScan(rel, "")), track(NewScan(rel, "x"))
		r.openErr = errInjected
		_, err := Collect("out", build(l, r))
		if !errors.Is(err, errInjected) {
			t.Fatalf("%s: err = %v, want injected", name, err)
		}
		assertBalanced(t, l, r)
		if l.opens != 1 || l.closes != 1 {
			t.Fatalf("%s: left child leaked (opens %d, closes %d)", name, l.opens, l.closes)
		}
		if r.opens != 0 || r.closes != 0 {
			t.Fatalf("%s: unopened right child touched (opens %d, closes %d)", name, r.opens, r.closes)
		}
	}
}

// TestLifecycleRightNextError fails the right child mid-drain (the build /
// materialization phase of joins): both children must close exactly once.
func TestLifecycleRightNextError(t *testing.T) {
	rel := testRel(t)
	for _, name := range []string{"hashjoin", "nestedloop", "union"} {
		build := lifecyclePlans(t)[name]
		l, r := track(NewScan(rel, "")), track(NewScan(rel, "x"))
		r.failNextAt = 2
		_, err := Collect("out", build(l, r))
		if !errors.Is(err, errInjected) {
			t.Fatalf("%s: err = %v, want injected", name, err)
		}
		assertBalanced(t, l, r)
	}
}

// TestCollectReportsCloseError: a Close failure surfaces even when the
// drain succeeded, and the Next error stays primary when both fail.
func TestCollectReportsCloseError(t *testing.T) {
	rel := testRel(t)

	tr := track(NewScan(rel, ""))
	tr.closeErr = errInjected
	out, err := Collect("out", tr)
	if !errors.Is(err, errInjected) {
		t.Fatalf("close error dropped: err = %v", err)
	}
	if out != nil {
		t.Fatal("relation returned alongside a close error")
	}

	tr = track(NewScan(rel, ""))
	tr.failNextAt = 2
	tr.nextErr = errors.New("next failed")
	tr.closeErr = errors.New("close failed")
	_, err = Collect("out", tr)
	if err == nil || !strings.Contains(err.Error(), "next failed") {
		t.Fatalf("next error not primary: %v", err)
	}
	if tr.closes != 1 {
		t.Fatalf("closes = %d", tr.closes)
	}
}

// TestLifecycleParallelCollect drives the same lifecycle audit through the
// parallel path. Tracked children are opaque to the partition-parallel
// planner, so they are drained through the ordinary iterator protocol —
// the pairing invariant must hold there too.
func TestLifecycleParallelCollect(t *testing.T) {
	rel := testRel(t)
	for name, build := range lifecyclePlans(t) {
		for _, workers := range []int{2, 8} {
			l, r := track(NewScan(rel, "")), track(NewScan(rel, "x"))
			if _, err := CollectN("out", build(l, r), workers); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			assertBalanced(t, l, r)

			l, r = track(NewScan(rel, "")), track(NewScan(rel, "x"))
			l.failNextAt = 2
			if _, err := CollectN("out", build(l, r), workers); !errors.Is(err, errInjected) {
				t.Fatalf("%s workers=%d: err = %v, want injected", name, workers, err)
			}
			assertBalanced(t, l, r)
		}
	}
}
