package engine

import (
	"github.com/cobra-prov/cobra/internal/relation"
)

// Stream executes an operator subtree through the Volcano pull protocol,
// invoking fn once per tuple in result order, without ever materializing
// the result relation — the capture path for results whose provenance
// exceeds memory. Individual operators may still buffer internally (Sort
// and GroupBy materialize their input; a join holds its build side), but
// the stream of output tuples itself is never collected.
//
// The iterator is always closed once Open succeeded; the first error wins
// (a row or fn error over the deferred Close error), exactly as Collect
// reports them. When fn returns an error, streaming stops immediately.
//
// The tuples passed to fn follow the engine's materialization contract:
// operators emit freshly built or stable tuples, never buffers they
// overwrite on the next call, so fn may retain a tuple without cloning.
func Stream(it Iterator, fn func(relation.Tuple) error) error {
	if err := it.Open(); err != nil {
		return err
	}
	var err error
	for {
		t, ok, e := it.Next()
		if e != nil {
			err = e
			break
		}
		if !ok {
			break
		}
		if e := fn(t); e != nil {
			err = e
			break
		}
	}
	if cerr := it.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
