package engine

import (
	"github.com/cobra-prov/cobra/internal/relation"
)

// Stream executes an operator subtree through the Volcano pull protocol,
// invoking fn once per tuple in result order, without ever materializing
// the result relation — the capture path for results whose provenance
// exceeds memory. Individual operators may still buffer internally (Sort
// and GroupBy materialize their input; a join holds its build side), but
// the stream of output tuples itself is never collected.
//
// The iterator is always closed once Open succeeded; the first error wins
// (a row or fn error over the deferred Close error), exactly as Collect
// reports them. When fn returns an error, streaming stops immediately.
//
// The tuples passed to fn follow the engine's row-validity contract: a
// tuple's Values slice is valid only until fn returns (operators reuse
// their output row buffers on the next pull). fn must copy Values it
// wants to keep; annotations are immutable polynomials and may be
// retained as-is.
func Stream(it Iterator, fn func(relation.Tuple) error) error {
	if err := it.Open(); err != nil {
		return err
	}
	var err error
	for {
		t, ok, e := it.Next()
		if e != nil {
			err = e
			break
		}
		if !ok {
			break
		}
		if e := fn(t); e != nil {
			err = e
			break
		}
	}
	if cerr := it.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
