package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// E7AlgorithmScaling measures the DP's runtime as the provenance size and
// the tree width grow — the "solvable in polynomial time complexity" claim.
func E7AlgorithmScaling(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID:      "E7a",
		Title:   "DP runtime scaling",
		Columns: []string{"monomials", "tree leaves", "index+DP time"},
	}

	// Sweep 1: growing provenance over the fixed Figure-2 tree (11 leaves).
	customerSteps := []int{10_000, 50_000, 100_000, 500_000, 1_000_000}
	if cfg.Quick {
		customerSteps = []int{5_000, 20_000}
	}
	for _, n := range customerSteps {
		names := polynomial.NewNames()
		set := telephony.DirectProvenance(telephony.Config{Customers: n}, names)
		tree := telephony.PlansTree(names)
		t0 := time.Now()
		if _, err := core.DPSingleTreeN(set, tree, set.Size()/2, cfg.Workers); err != nil {
			return nil, err
		}
		t.AddRow(set.Size(), len(tree.Leaves()), time.Since(t0))
	}

	// Sweep 2: growing tree width with proportional provenance.
	leafSteps := []int{50, 200, 500, 1000}
	if cfg.Quick {
		leafSteps = []int{20, 60}
	}
	for _, leaves := range leafSteps {
		names := polynomial.NewNames()
		set, tree := syntheticInstance(names, leaves, 40)
		t0 := time.Now()
		if _, err := core.DPSingleTreeN(set, tree, set.Size()/2, cfg.Workers); err != nil {
			return nil, err
		}
		t.AddRow(set.Size(), leaves, time.Since(t0))
	}
	t.Note("runtime grows near-linearly in monomials and at most quadratically in leaves, as analyzed")
	t.Elapsed = time.Since(start)
	return t, nil
}

// syntheticInstance builds a 3-level tree with the given number of leaves
// (fanout ~sqrt) and a provenance set with ctxPerLeaf distinct contexts per
// leaf.
func syntheticInstance(names *polynomial.Names, leaves, ctxPerLeaf int) (*polynomial.Set, *abstraction.Tree) {
	tree := abstraction.NewTree("root", names)
	groupSize := 8
	var leafVars []polynomial.Var
	for i := 0; i < leaves; i++ {
		g := i / groupSize
		id, err := tree.AddPath(fmt.Sprintf("g%d", g), fmt.Sprintf("leaf%d", i))
		if err != nil {
			panic(err)
		}
		leafVars = append(leafVars, tree.Node(id).Var)
	}
	ctxVars := make([]polynomial.Var, ctxPerLeaf)
	for i := range ctxVars {
		ctxVars[i] = names.Var(fmt.Sprintf("ctx%d", i))
	}
	set := polynomial.NewSet(names)
	var b polynomial.Builder
	for i, lv := range leafVars {
		for c := 0; c < ctxPerLeaf; c++ {
			b.Add(float64(i*ctxPerLeaf+c+1), polynomial.T(lv), polynomial.T(ctxVars[c]))
		}
	}
	//cobra:sinkerr in-memory Set.Add is documented to never fail
	set.Add("g", b.Polynomial())
	return set, tree
}

// E7Ablation compares the optimal DP against the greedy baseline and the
// exhaustive oracle: variables retained at equal bounds.
func E7Ablation(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID:      "E7b",
		Title:   "Variables retained at equal bounds: DP (optimal) vs greedy",
		Columns: []string{"instance", "bound", "DP vars", "greedy vars", "exhaustive vars", "DP optimal"},
	}

	type instance struct {
		name string
		set  *polynomial.Set
		tree *abstraction.Tree
	}
	var instances []instance

	// Paper instance.
	{
		names := polynomial.NewNames()
		set := telephony.DirectProvenance(telephony.Config{Customers: 5_000, Zips: 5}, names)
		instances = append(instances, instance{"telephony-5k", set, telephony.PlansTree(names)})
	}
	// Skewed instances where greedy's local ratio choice is misleading.
	r := rand.New(rand.NewSource(61))
	nInst := 6
	if cfg.Quick {
		nInst = 2
	}
	for k := 0; k < nInst; k++ {
		names := polynomial.NewNames()
		set, tree := skewedInstance(names, r)
		instances = append(instances, instance{fmt.Sprintf("skewed-%d", k), set, tree})
	}

	dpWins, ties := 0, 0
	for _, inst := range instances {
		size := inst.set.Size()
		for _, frac := range []float64{0.7, 0.4} {
			bound := int(float64(size) * frac)
			dp, err := core.DPSingleTreeN(inst.set, inst.tree, bound, cfg.Workers)
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			greedy, err := core.Greedy(inst.set, inst.tree, bound)
			greedyVars := "-"
			if err == nil {
				greedyVars = fmt.Sprint(greedy.NumMeta)
			}
			exVars := "-"
			optimal := "yes"
			if ex, err := core.Exhaustive(inst.set, inst.tree, bound); err == nil {
				exVars = fmt.Sprint(ex.NumMeta)
				if ex.NumMeta != dp.NumMeta {
					optimal = "NO"
				}
			}
			if err == nil && greedy != nil {
				if dp.NumMeta > greedy.NumMeta {
					dpWins++
				} else {
					ties++
				}
			}
			t.AddRow(inst.name, bound, dp.NumMeta, greedyVars, exVars, optimal)
		}
	}
	t.Note("DP strictly beat greedy on %d of %d settings (ties on the rest); DP always matches the exhaustive oracle", dpWins, dpWins+ties)
	t.Elapsed = time.Since(start)
	return t, nil
}

// skewedInstance builds a tree whose subtrees have very different
// merge profiles, the regime where greedy's myopic ratio heuristic misses
// the optimum.
func skewedInstance(names *polynomial.Names, r *rand.Rand) (*polynomial.Set, *abstraction.Tree) {
	suffix := fmt.Sprint(r.Int31())
	tree := abstraction.NewTree("R"+suffix, names)
	var leafVars []polynomial.Var
	addLeaf := func(path ...string) {
		id, err := tree.AddPath(path...)
		if err != nil {
			panic(err)
		}
		leafVars = append(leafVars, tree.Node(id).Var)
	}
	// Branch A: many leaves sharing contexts (cheap to merge).
	for i := 0; i < 6; i++ {
		addLeaf("A"+suffix, fmt.Sprintf("a%d_%s", i, suffix))
	}
	// Branch B: two-level, leaves with disjoint contexts (expensive).
	for i := 0; i < 4; i++ {
		addLeaf("B"+suffix, fmt.Sprintf("B%d_%s", i/2, suffix), fmt.Sprintf("b%d_%s", i, suffix))
	}
	ctx := make([]polynomial.Var, 12)
	for i := range ctx {
		ctx[i] = names.Var(fmt.Sprintf("c%d_%s", i, suffix))
	}
	set := polynomial.NewSet(names)
	var b polynomial.Builder
	for i, lv := range leafVars {
		n := 2 + r.Intn(6)
		for k := 0; k < n; k++ {
			var c polynomial.Var
			if i < 6 {
				c = ctx[k%3] // branch A shares 3 contexts
			} else {
				c = ctx[3+(i-6)*2+k%2] // branch B leaves mostly disjoint
			}
			b.Add(float64(1+r.Intn(9)), polynomial.T(lv), polynomial.T(c))
		}
	}
	//cobra:sinkerr in-memory Set.Add is documented to never fail
	set.Add("g", b.Polynomial())
	return set, tree
}
