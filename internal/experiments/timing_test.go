package experiments

import (
	"fmt"
	"math"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

func TestMeasureSpeedupMonotone(t *testing.T) {
	// A compressed program with far fewer monomials must not be slower.
	names := polynomial.NewNames()
	big := polynomial.NewSet(names)
	var b polynomial.Builder
	for i := 0; i < 5000; i++ {
		b.Add(float64(i+1), polynomial.T(names.Var(fmt.Sprintf("x%d", i%100))), polynomial.T(names.Var(fmt.Sprintf("m%d", i%12))))
	}
	big.Add("g", b.Polynomial())
	small := polynomial.NewSet(names)
	var sb polynomial.Builder
	for i := 0; i < 100; i++ {
		sb.Add(float64(i+1), polynomial.T(names.Var("u")), polynomial.T(names.Var(fmt.Sprintf("m%d", i%12))))
	}
	small.Add("g", sb.Polynomial())

	full, comp := valuation.Compile(big), valuation.Compile(small)
	vals := valuation.New(names).Dense(names.Len())
	tm := MeasureSpeedup(full, comp, vals, vals, 50)
	if tm.Full <= 0 || tm.Compressed <= 0 {
		t.Fatalf("timings must be positive: %+v", tm)
	}
	if tm.Speedup < 0.5 {
		t.Fatalf("50x smaller program speedup = %.2f, expected > 0.5", tm.Speedup)
	}
}

func TestTimingSpeedupDefinition(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("g", polynomial.MustParse("x", names))
	p := valuation.Compile(set)
	vals := []float64{1}
	tm := MeasureSpeedup(p, p, vals, vals, 10)
	// Same program on both sides: speedup should be near zero.
	if math.Abs(tm.Speedup) > 0.9 {
		t.Fatalf("self-speedup = %v, expected near 0", tm.Speedup)
	}
}
