package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/tpch"
	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// E8TPCH runs the TPC-H demo phase: capture provenance for each benchmark
// query under the ship-month instrumentation (nation instrumentation for
// Q5), compress with the matching tree at two bounds, and report sizes,
// variables and assignment speedups.
func E8TPCH(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	cat := tpch.Generate(tpch.Config{SF: cfg.TPCHSF})

	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("TPC-H provenance compression (SF %g)", cfg.TPCHSF),
		Columns: []string{"query", "tree", "groups", "size", "vars", "bound", "compressed", "meta vars (used)", "speedup"},
	}

	for _, q := range tpch.Queries {
		var (
			inst engine.Catalog
			err  error
		)
		names := polynomial.NewNames()
		treeName := "date"
		if q.Name == "Q5" {
			inst, err = tpch.InstrumentBySupplierNation(cat, names)
		} else {
			inst, err = tpch.InstrumentByShipMonth(cat, names)
		}
		if err != nil {
			return nil, err
		}
		set, err := provenance.Capture(q.Prov, inst, names, q.ValueCol)
		if err != nil {
			return nil, err
		}
		if set.Size() == 0 {
			t.AddRow(q.Name, treeName, set.Len(), 0, 0, "-", "-", "-", "-")
			continue
		}
		tree := tpch.DateTree(names)
		if q.Name == "Q5" {
			tree = tpch.NationRegionTree(names)
			treeName = "nation"
		}

		fullProg := valuation.Compile(set)
		vals := valuation.New(names).Dense(names.Len())
		// iters 0 lets MeasureSpeedup auto-calibrate; TPC-H provenance at
		// small scale factors is tiny, and fixed low iteration counts would
		// measure scheduler noise.
		iters := 0
		if cfg.Quick {
			iters = 3
		}
		// Bounds interpolate the achievable range [rootSize, size]: the
		// coarsest abstraction cannot merge across output groups, so the
		// root-cut size (≈ #groups) is the floor.
		rootSize := abstractionRootSize(set, tree)
		for _, frac := range []float64{0.5, 0.1} {
			bound := rootSize + int(float64(set.Size()-rootSize)*frac)
			res, err := core.DPSingleTreeN(set, tree, bound, cfg.Workers)
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					t.AddRow(q.Name, treeName, set.Len(), set.Size(), set.NumVars(), bound, "infeasible", "-", "-")
					continue
				}
				return nil, err
			}
			speedup := "0%" // no compression achieved ⇒ no speedup by definition
			if res.Size < set.Size() {
				comp := valuation.Compile(res.Apply(set))
				tm := MeasureSpeedup(fullProg, comp, vals, vals, iters)
				speedup = fmt.Sprintf("%.0f%%", tm.Speedup*100)
			}
			t.AddRow(q.Name, treeName, set.Len(), set.Size(), set.NumVars(), bound,
				res.Size, fmt.Sprintf("%d (%d)", res.NumMeta, res.UsedMeta), speedup)
		}
	}
	t.Note("Q5 is instrumented by supplier nation and compressed with the nation→region tree; the rest by ship month with the month→quarter→year tree")
	t.Note("bounds are rootSize + frac·(size - rootSize); 'used' counts meta-variables whose leaves occur in this query's provenance (the date tree spans 84 months, most queries touch fewer)")
	t.Elapsed = time.Since(start)
	return t, nil
}

// abstractionRootSize returns the size of the coarsest abstraction — the
// floor of the achievable range.
func abstractionRootSize(set *polynomial.Set, tree *abstraction.Tree) int {
	return abstraction.Apply(set, tree.RootCut()).Size()
}
