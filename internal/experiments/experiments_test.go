package experiments

import (
	"strings"
	"testing"
	"time"
)

func quick() Config { return Config{Quick: true}.WithDefaults() }

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.TelephonyCustomers != 100_000 || c.TPCHSF != 0.01 {
		t.Fatalf("defaults: %+v", c)
	}
	q := Config{Quick: true, TelephonyCustomers: 1_000_000, TPCHSF: 0.05}.WithDefaults()
	if q.TelephonyCustomers > 20_000 || q.TPCHSF > 0.002 {
		t.Fatalf("quick trim: %+v", q)
	}
	p := PaperScale()
	if p.TelephonyCustomers != 1_000_000 {
		t.Fatal("paper scale")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow(2.5, time.Millisecond)
	tab.Note("hello %d", 7)
	tab.Elapsed = time.Second
	text := tab.Render()
	for _, want := range []string{"T — demo", "a", "bb", "1", "2.5", "1ms", "note: hello 7"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Render missing %q:\n%s", want, text)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "### T — demo") {
		t.Fatalf("Markdown:\n%s", md)
	}
}

func TestE1(t *testing.T) {
	tab, err := E1RunningExample(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "yes" {
			t.Fatalf("E1 mismatch: %v", row)
		}
	}
}

func TestE2(t *testing.T) {
	tab, err := E2ExampleCuts(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// S1 row: 4 monomials, 4 vars — matching the paper.
	if tab.Rows[0][2] != "4" || tab.Rows[0][3] != "4" {
		t.Fatalf("S1 row = %v", tab.Rows[0])
	}
	// S5 row: 2 monomials, 3 vars.
	if tab.Rows[4][2] != "2" || tab.Rows[4][3] != "3" {
		t.Fatalf("S5 row = %v", tab.Rows[4])
	}
}

func TestE3QuickShape(t *testing.T) {
	tab, err := E3Section4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE3PaperNumbersAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	tab, err := E3Section4(PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: original size 139260. Row 1: bound 94600 -> 88620, 7 vars.
	// Row 2: bound 38600 -> 37980, 3 vars.
	if tab.Rows[0][1] != "139260" {
		t.Fatalf("original size = %s, want 139260", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "88620" || tab.Rows[1][2] != "7" {
		t.Fatalf("bound 94600 row = %v", tab.Rows[1])
	}
	if tab.Rows[2][1] != "37980" || tab.Rows[2][2] != "3" {
		t.Fatalf("bound 38600 row = %v", tab.Rows[2])
	}
}

func TestE4AndE5(t *testing.T) {
	tab, err := E4BoundSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("E4 rows = %d", len(tab.Rows))
	}
	tab5, err := E5SpeedupSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab5.Rows) == 0 {
		t.Fatal("E5 empty")
	}
}

func TestE6ExactnessPattern(t *testing.T) {
	tab, err := E6ScenarioAccuracy(quick())
	if err != nil {
		t.Fatal(err)
	}
	// March scenario touches only month variables: exact under every
	// plans-tree cut. Business scenario: exact under S1 and S4 (business
	// leaves grouped consistently), inexact under S5.
	exact := map[string]string{}
	for _, row := range tab.Rows {
		exact[row[0]+"/"+row[1]] = row[4]
	}
	for k, want := range map[string]string{
		"March -20% (m3=0.8)/S1":         "yes",
		"March -20% (m3=0.8)/S5":         "yes",
		"Business +10% (b1,b2,e=1.1)/S1": "yes",
		"Business +10% (b1,b2,e=1.1)/S4": "yes",
		"Business +10% (b1,b2,e=1.1)/S5": "no",
	} {
		if exact[k] != want {
			t.Fatalf("%s: exact=%s, want %s\n%s", k, exact[k], want, tab.Render())
		}
	}
}

func TestE7(t *testing.T) {
	tab, err := E7AlgorithmScaling(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("E7a rows = %d", len(tab.Rows))
	}
	abl, err := E7Ablation(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range abl.Rows {
		if row[5] == "NO" {
			t.Fatalf("DP not optimal on %v", row)
		}
	}
}

func TestE8(t *testing.T) {
	tab, err := E8TPCH(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("E8 rows = %d", len(tab.Rows))
	}
}

func TestE9(t *testing.T) {
	tab, err := E9Commutation(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[5] != "yes" {
			t.Fatalf("commutation violated: %v", row)
		}
	}
}

func TestE10(t *testing.T) {
	tab, err := E10Pipeline(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("stages = %d", len(tab.Rows))
	}
}

func TestE11ForestBeatsSingleTrees(t *testing.T) {
	tab, err := E11Forest(quick())
	if err != nil {
		t.Fatal(err)
	}
	// At the tightest fraction, the single-tree strategies must be
	// infeasible or worse while the forest still succeeds (at 10% of the
	// original size: plans alone bottoms out at 1×12 months per zip = 9%,
	// feasible at exactly k=1; months alone at 11×1 per zip).
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	var forestOK bool
	for _, row := range tab.Rows {
		if row[1] == "plans+months" && row[2] != "infeasible" {
			forestOK = true
		}
	}
	if !forestOK {
		t.Fatalf("forest strategy never feasible:\n%s", tab.Render())
	}
}

func TestE12ParallelIdentical(t *testing.T) {
	tab, err := E12Parallel(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("parallel output diverged from sequential:\n%s", tab.Render())
		}
	}
}

func TestE13CaptureIdentical(t *testing.T) {
	cfg := quick()
	cfg.Workers = 4 // force the parallel path even on single-core runners
	tab, err := E13CaptureParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("parallel capture diverged from sequential:\n%s", tab.Render())
		}
	}
}

func TestE14OutOfCoreIdentical(t *testing.T) {
	tab, err := E14OutOfCore(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" || row[len(row)-2] != "yes" {
			t.Fatalf("out-of-core run diverged or breached its budget:\n%s", tab.Render())
		}
		if row[4] == "0" {
			t.Fatalf("expected spilled shards under a budget of size/8:\n%s", tab.Render())
		}
	}
}

func TestE15StreamingCaptureIdentical(t *testing.T) {
	tab, err := E15StreamingCapture(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" || row[len(row)-2] != "yes" {
			t.Fatalf("streaming capture diverged or breached its budget:\n%s", tab.Render())
		}
		if row[5] == "0" {
			t.Fatalf("expected spilled shards under a budget of size/8:\n%s", tab.Render())
		}
	}
}

func TestE17DiskFormatIdentical(t *testing.T) {
	tab, err := E17DiskFormat(quick())
	if err != nil {
		t.Fatal(err)
	}
	// 3 write rows, 3 decode rows, 3 compress+eval rows.
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9:\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows[3:] {
		if row[len(row)-1] != "yes" {
			t.Fatalf("indexed decode or solve diverged from in-memory:\n%s", tab.Render())
		}
	}
}

func TestE16SweepIdenticalToPerBound(t *testing.T) {
	tab, err := E16FrontierSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tab.Rows), tab.Render())
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("sweep answers diverged from per-bound compression:\n%s", tab.Render())
		}
		if row[2] != "32" {
			t.Fatalf("bound batch = %s, want 32:\n%s", row[2], tab.Render())
		}
	}
}

func TestSweepBounds(t *testing.T) {
	bs := SweepBounds(64, 32)
	if len(bs) != 32 || bs[0] != 2 || bs[31] != 64 {
		t.Fatalf("bounds = %v", bs)
	}
}

func TestAllRegistry(t *testing.T) {
	rs := All()
	if len(rs) != 18 {
		t.Fatalf("runners = %d", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("incomplete runner %+v", r)
		}
	}
}
