// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md's index (E1–E17), each producing a Table that
// pairs the paper's reported values with our measurements. The harness
// backs cmd/cobra-bench (which regenerates EXPERIMENTS.md) and the
// bench_test.go benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Config scales the experiments.
type Config struct {
	// TelephonyCustomers for E3–E6 (paper scale: 1,000,000). Default 100,000.
	TelephonyCustomers int
	// TPCHSF is the TPC-H scale factor for E8 (default 0.01).
	TPCHSF float64
	// Quick trims sweeps and scales for use inside unit tests.
	Quick bool
	// Workers caps the goroutines the compression, valuation and
	// provenance-capture hot paths may use; <= 1 (the default) keeps every
	// experiment sequential. Results are bit-identical for every value.
	Workers int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.TelephonyCustomers <= 0 {
		c.TelephonyCustomers = 100_000
	}
	if c.TPCHSF <= 0 {
		c.TPCHSF = 0.01
	}
	if c.Quick {
		if c.TelephonyCustomers > 20_000 {
			c.TelephonyCustomers = 20_000
		}
		if c.TPCHSF > 0.002 {
			c.TPCHSF = 0.002
		}
	}
	return c
}

// PaperScale is the configuration reproducing the numbers quoted in
// Section 4 of the paper (one million customers).
func PaperScale() Config {
	return Config{TelephonyCustomers: 1_000_000, TPCHSF: 0.01}
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Elapsed time.Duration
}

// AddRow appends a row of cells (stringified).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s", t.ID, t.Title)
	if t.Elapsed > 0 {
		fmt.Fprintf(&sb, "  (ran in %s)", t.Elapsed.Round(time.Millisecond))
	}
	sb.WriteString("\n")

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	if t.Elapsed > 0 {
		fmt.Fprintf(&sb, "\n*(ran in %s)*\n", t.Elapsed.Round(time.Millisecond))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All lists every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"E1", "Running example provenance (Example 2)", E1RunningExample},
		{"E2", "Example cuts S1–S5 (Example 4)", E2ExampleCuts},
		{"E3", "Section-4 compression at scale", E3Section4},
		{"E4", "Provenance size & variables vs bound", E4BoundSweep},
		{"E5", "Assignment speedup vs bound", E5SpeedupSweep},
		{"E6", "Scenario accuracy under compression", E6ScenarioAccuracy},
		{"E7a", "Algorithm scaling", E7AlgorithmScaling},
		{"E7b", "DP vs greedy vs exhaustive (ablation)", E7Ablation},
		{"E8", "TPC-H provenance compression", E8TPCH},
		{"E9", "Commutation (correctness guarantee)", E9Commutation},
		{"E10", "End-to-end pipeline", E10Pipeline},
		{"E11", "Two-dimensional abstraction (plans × quarters)", E11Forest},
		{"E12", "Parallel speedup (workers vs sequential)", E12Parallel},
		{"E13", "Parallel provenance capture (workers vs sequential)", E13CaptureParallel},
		{"E14", "Out-of-core compression (sharded storage, spill-to-disk)", E14OutOfCore},
		{"E15", "Streaming provenance capture (non-materializing)", E15StreamingCapture},
		{"E16", "Batched multi-bound frontier sweep (one DP, many bounds)", E16FrontierSweep},
		{"E17", "Indexed on-disk format (v3 vs v2, parallel decode)", E17DiskFormat},
	}
}
