package experiments

import (
	"fmt"
	"time"

	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/datagen/tpch"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// E9Commutation verifies the correctness guarantee end to end: polynomial
// valuation equals query re-execution over modified data, on both datasets.
func E9Commutation(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID:      "E9",
		Title:   "Commutation: provenance valuation vs query re-execution",
		Columns: []string{"dataset", "query", "scenario", "groups", "max rel err", "holds"},
	}

	// Telephony at a moderated scale (the re-execution side materializes
	// the full join, so this is deliberately smaller than E3).
	custs := 2_000
	if cfg.Quick {
		custs = 400
	}
	names := polynomial.NewNames()
	inst, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: custs, Zips: 4, Months: 12}), names)
	if err != nil {
		return nil, err
	}
	for _, sc := range []struct {
		name string
		a    *valuation.Assignment
	}{
		{"March -20%", telephony.ScenarioMarchMinus20(names)},
		{"Business +10%", telephony.ScenarioBusinessPlus10(names)},
	} {
		rep, err := provenance.CheckCommutation(telephony.RevenueQuery, inst, names, "revenue", sc.a)
		if err != nil {
			return nil, err
		}
		t.AddRow("telephony", "revenue", sc.name, rep.Groups, relStr(rep.Accuracy.MaxRel), yesNo(rep.Ok(1e-9)))
	}

	// TPC-H Q1 and Q6 under a month price change.
	tn := polynomial.NewNames()
	tcat, err := tpch.InstrumentByShipMonth(tpch.Generate(tpch.Config{SF: cfg.TPCHSF}), tn)
	if err != nil {
		return nil, err
	}
	a := valuation.New(tn)
	a.SetVar(tn.Var("mo_1994_06"), 1.25)
	a.SetVar(tn.Var("mo_1995_01"), 0.9)
	for _, q := range []tpch.Query{tpch.Queries[0], tpch.Queries[3]} { // Q1, Q6
		rep, err := provenance.CheckCommutation(q.Prov, tcat, tn, q.ValueCol, a)
		if err != nil {
			return nil, err
		}
		t.AddRow("tpch", q.Name, "mo_1994_06=1.25, mo_1995_01=0.9", rep.Groups, relStr(rep.Accuracy.MaxRel), yesNo(rep.Ok(1e-9)))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// E10Pipeline times the full Figure-4 pipeline stage by stage: generate →
// instrument → capture (provenance engine) → compress → assign.
func E10Pipeline(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	custs := 20_000
	if cfg.Quick {
		custs = 2_000
	}

	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("End-to-end pipeline at %d customers (engine path)", custs),
		Columns: []string{"stage", "time", "output"},
	}

	t0 := time.Now()
	cat := telephony.Generate(telephony.Config{Customers: custs})
	t.AddRow("generate", time.Since(t0), fmt.Sprintf("%d calls", cat["Calls"].Len()))

	names := polynomial.NewNames()
	t0 = time.Now()
	inst, err := telephony.InstrumentPrices(cat, names)
	if err != nil {
		return nil, err
	}
	t.AddRow("instrument", time.Since(t0), fmt.Sprintf("%d symbolic cells", inst["Plans"].Len()))

	t0 = time.Now()
	set, err := provenance.Capture(telephony.RevenueQuery, inst, names, "revenue")
	if err != nil {
		return nil, err
	}
	t.AddRow("capture", time.Since(t0), fmt.Sprintf("%d monomials / %d groups", set.Size(), set.Len()))

	tree := telephony.PlansTree(names)
	t0 = time.Now()
	res, err := core.DPSingleTreeN(set, tree, set.Size()/3, cfg.Workers)
	if err != nil {
		return nil, err
	}
	comp := res.Apply(set)
	t.AddRow("compress", time.Since(t0), fmt.Sprintf("%d monomials / %d meta vars", res.Size, res.NumMeta))

	t0 = time.Now()
	prog := valuation.Compile(comp)
	a := valuation.Induced(telephony.ScenarioMarchMinus20(names), res.Cuts[0])
	out := prog.EvalAssignment(a, nil)
	t.AddRow("assign", time.Since(t0), fmt.Sprintf("%d results", len(out)))

	t.Elapsed = time.Since(start)
	return t, nil
}
