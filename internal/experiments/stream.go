package experiments

import (
	"fmt"
	"time"

	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
)

// spjRevenueQuery joins calls, customers and instrumented plan prices
// without aggregating: one output row — and one provenance polynomial —
// per call, so the full provenance set grows with the join output while
// the streaming capture path holds only one batch of rows plus the
// builder's resident shards.
const spjRevenueQuery = `
SELECT Cust.Zip, Calls.Mo, Calls.Dur * Plans.Price AS rev
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan
  AND Cust.ID = Calls.CID
  AND Calls.Mo = Plans.Mo`

// E15StreamingCapture exercises streaming (non-materializing) provenance
// capture: a join whose full provenance set exceeds the memory budget is
// captured straight into a ShardBuilder through the engine's Volcano pull
// loop — the result relation and the full polynomial set never
// materialize. For every worker count the built set must stay within the
// MaxResidentMonomials budget (budget = full size / 8) and materialize to
// a set bit-identical to the materializing Capture baseline. (The
// baseline is held in memory only to verify the streamed output; the
// streamed pipeline itself never holds it.)
func E15StreamingCapture(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID:      "E15",
		Title:   "Streaming provenance capture (non-materializing, spill-to-disk)",
		Columns: []string{"workers", "rows", "monomials", "budget", "shards", "spilled", "peak resident", "within budget", "identical"},
	}

	// The engine path materializes the baseline join, so run at the
	// moderated capture scale (cf. E13).
	custs := cfg.TelephonyCustomers / 10
	if custs > 10_000 {
		custs = 10_000
	}
	if cfg.Quick && custs > 1_000 {
		custs = 1_000
	}
	if custs < 100 {
		custs = 100
	}

	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: custs}), names)
	if err != nil {
		return nil, err
	}

	// Materializing baseline.
	want, err := provenance.Capture(spjRevenueQuery, cat, names, "rev")
	if err != nil {
		return nil, err
	}
	budget := want.Size() / 8
	if budget < 2 {
		budget = 2
	}

	for _, w := range []int{1, 2, 8} {
		b := polynomial.NewShardBuilder(names, polynomial.ShardOptions{MaxResidentMonomials: budget})
		if err := provenance.CaptureStream(spjRevenueQuery, cat, "rev", b, w); err != nil {
			b.Discard()
			return nil, err
		}
		ss, err := b.Finish()
		if err != nil {
			return nil, err
		}
		peak := ss.PeakResidentMonomials()
		shards, spilled := ss.NumShards(), ss.SpilledShards()
		got, err := ss.Materialize()
		if err != nil {
			ss.Close()
			return nil, err
		}
		identical := sameSet(want, got)
		t.AddRow(w, want.Len(), want.Size(), budget, shards, spilled, peak,
			yesNo(peak <= budget), yesNo(identical))
		if err := ss.Close(); err != nil {
			return nil, err
		}
		if !identical {
			return nil, fmt.Errorf("E15: streamed capture differs from Capture at %d workers", w)
		}
		if peak > budget {
			return nil, fmt.Errorf("E15: peak resident %d exceeds budget %d at %d workers", peak, budget, w)
		}
	}

	t.Note("budget = MaxResidentMonomials = full provenance size / 8; peak resident is the capture-side high-water mark")
	t.Note("identical = materializing the streamed ShardedSet reproduces Capture's set (keys, order, coefficients) bit-for-bit")
	t.Elapsed = time.Since(start)
	return t, nil
}
