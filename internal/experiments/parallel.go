package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// E12Parallel measures the parallel engine against the sequential baseline
// on the three hot paths the Workers knob shards — single-tree compression
// (signature indexing), forest coordinate descent, and batch scenario
// valuation — and verifies that the parallel results are identical. The
// parallel side uses cfg.Workers when set (> 1), else GOMAXPROCS.
func E12Parallel(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	workers := cfg.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Parallel speedup at %d workers (sequential baseline)", workers),
		Columns: []string{"task", "work", "sequential", "parallel", "speedup", "identical"},
	}

	reps := 3
	if cfg.Quick {
		reps = 1
	}
	// bestOf times fn's fastest of reps runs to suppress scheduling noise.
	bestOf := func(fn func() error) (time.Duration, error) {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if el := time.Since(t0); el < best {
				best = el
			}
		}
		return best, nil
	}
	speedup := func(seq, par time.Duration) string {
		if par <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(seq)/float64(par))
	}

	// 1. Single-tree DP on a wide synthetic instance (one large polynomial,
	// so the parallelism comes from monomial-range sharding).
	{
		leaves, ctx := 500, 200
		if cfg.Quick {
			leaves, ctx = 60, 40
		}
		names := polynomial.NewNames()
		set, tree := syntheticInstance(names, leaves, ctx)
		bound := set.Size() / 2
		var seqRes, parRes *core.Result
		seqT, err := bestOf(func() (e error) { seqRes, e = core.DPSingleTreeN(set, tree, bound, 1); return })
		if err != nil {
			return nil, err
		}
		parT, err := bestOf(func() (e error) { parRes, e = core.DPSingleTreeN(set, tree, bound, workers); return })
		if err != nil {
			return nil, err
		}
		t.AddRow("compress (DP)", fmt.Sprintf("%d monomials", set.Size()),
			seqT, parT, speedup(seqT, parT), yesNo(sameResult(seqRes, parRes)))
	}

	// 2. Forest coordinate descent over plans × months.
	{
		names := polynomial.NewNames()
		set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
		forest := abstraction.Forest{telephony.PlansTree(names), telephony.MonthsTree(names, 12)}
		bound := set.Size() / 4
		var seqRes, parRes *core.Result
		seqT, err := bestOf(func() (e error) { seqRes, e = core.ForestDescentN(set, forest, bound, 0, 1); return })
		if err != nil {
			return nil, err
		}
		parT, err := bestOf(func() (e error) { parRes, e = core.ForestDescentN(set, forest, bound, 0, workers); return })
		if err != nil {
			return nil, err
		}
		t.AddRow("forest descent", fmt.Sprintf("%d monomials / 2 trees", set.Size()),
			seqT, parT, speedup(seqT, parT), yesNo(sameResult(seqRes, parRes)))
	}

	// 3. Batch scenario valuation (the E5/E6-style sweep workload).
	{
		scenarios := 400
		if cfg.Quick {
			scenarios = 50
		}
		names := polynomial.NewNames()
		set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
		prog := valuation.Compile(set)
		assignments := make([]*valuation.Assignment, scenarios)
		vars := set.UsedVars()
		for s := range assignments {
			a := valuation.New(names)
			a.SetVar(vars[s%len(vars)], 0.8+0.001*float64(s))
			assignments[s] = a
		}
		var seqOut, parOut [][]float64
		seqT, err := bestOf(func() error { seqOut = prog.EvalBatchN(assignments, seqOut, 1); return nil })
		if err != nil {
			return nil, err
		}
		parT, err := bestOf(func() error { parOut = prog.EvalBatchN(assignments, parOut, workers); return nil })
		if err != nil {
			return nil, err
		}
		t.AddRow("batch valuation", fmt.Sprintf("%d scenarios × %d monomials", scenarios, prog.Size()),
			seqT, parT, speedup(seqT, parT), yesNo(sameRows(seqOut, parOut)))
	}

	t.Note("identical = parallel output is bit-identical to the sequential baseline (the engine's determinism guarantee)")
	t.Elapsed = time.Since(start)
	return t, nil
}

// sameResult compares the fields of two compression results that determine
// the chosen abstraction.
func sameResult(a, b *core.Result) bool {
	if a == nil || b == nil || a.Size != b.Size || a.NumMeta != b.NumMeta || len(a.Cuts) != len(b.Cuts) {
		return false
	}
	for i := range a.Cuts {
		if !a.Cuts[i].Equal(b.Cuts[i]) {
			return false
		}
	}
	return true
}

// sameRows compares two result matrices for exact (bitwise) equality.
func sameRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
