package experiments

import (
	"fmt"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// E14OutOfCore exercises the sharded, spill-to-disk storage path: the
// telephony provenance is sharded under a memory budget of 1/8 of its
// size, compressed shard-at-a-time, and the result compared against the
// in-memory DP — cut, sizes, and the applied compressed provenance must
// be bit-identical for every worker count, while the sharded set's peak
// resident monomials stay within the budget. (The in-memory baseline is
// held only to verify the streamed output; the streamed pipeline itself
// touches one shard at a time.)
func E14OutOfCore(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID:      "E14",
		Title:   "Out-of-core compression (sharded polynomial storage, spill-to-disk)",
		Columns: []string{"workers", "monomials", "budget", "shards", "spilled", "peak resident", "within budget", "identical"},
	}

	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)
	bound := set.Size() / 2
	budget := set.Size() / 8
	if budget < 2 {
		budget = 2
	}

	// In-memory baseline: the exact DP and its applied provenance.
	want, err := core.DPSingleTree(set, tree, bound)
	if err != nil {
		return nil, err
	}
	wantApplied := abstraction.Apply(set, want.Cuts...)

	for _, w := range []int{1, 2, 8} {
		ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: budget})
		if err != nil {
			return nil, err
		}
		res, err := core.CompressSharded(ss, abstraction.Forest{tree}, bound, w)
		if err != nil {
			ss.Close()
			return nil, err
		}
		compressed, err := abstraction.ApplySharded(ss, w, res.Cuts...)
		if err != nil {
			ss.Close()
			return nil, err
		}
		got, err := compressed.Materialize()
		if err != nil {
			ss.Close()
			compressed.Close()
			return nil, err
		}
		identical := sameResult(want, res) && sameSet(wantApplied, got)
		peak := ss.PeakResidentMonomials()
		if p := compressed.PeakResidentMonomials(); p > peak {
			peak = p
		}
		t.AddRow(w, set.Size(), budget, ss.NumShards(), ss.SpilledShards(), peak,
			yesNo(peak <= budget), yesNo(identical))
		if err := compressed.Close(); err != nil {
			ss.Close()
			return nil, err
		}
		if err := ss.Close(); err != nil {
			return nil, err
		}
		if !identical {
			return nil, fmt.Errorf("E14: streamed result differs from in-memory at %d workers", w)
		}
		if peak > budget {
			return nil, fmt.Errorf("E14: peak resident %d exceeds budget %d at %d workers", peak, budget, w)
		}
	}

	t.Note("budget = MaxResidentMonomials; peak resident is the high-water mark across the input and compressed sharded sets")
	t.Note("identical = streamed cut, stats and applied provenance are bit-identical to the in-memory DP")
	t.Elapsed = time.Since(start)
	return t, nil
}

// sameSet reports exact equality of two in-memory sets sharing a
// namespace: same keys, same polynomials, bit-identical coefficients.
func sameSet(a, b *polynomial.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || !polynomial.Equal(a.Polys[i], b.Polys[i]) {
			return false
		}
	}
	return true
}
