package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// E11Forest compresses the telephony provenance over TWO abstraction trees
// — the Figure-2 plans tree and the Section-4 quarter tree over months
// ("a natural abstraction tree would consist of quarter meta-variables
// q1...q4") — using coordinate descent, and compares it against compressing
// each dimension alone at the same bound.
func E11Forest(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	plans := telephony.PlansTree(names)
	months := telephony.MonthsTree(names, 12)
	size := set.Size()

	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Two-dimensional abstraction: plans × quarters (original size %d)", size),
		Columns: []string{"bound (frac)", "strategy", "size", "total vars", "plans cut", "months cut"},
	}

	fractions := []float64{0.5, 0.25, 0.1, 0.02}
	if cfg.Quick {
		fractions = []float64{0.5, 0.1}
	}
	for _, f := range fractions {
		bound := int(float64(size) * f)

		// Forest descent over both trees.
		fd, err := core.ForestDescentN(set, abstraction.Forest{plans, months}, bound, 0, cfg.Workers)
		if err == nil {
			t.AddRow(fmt.Sprintf("%.2f", f), "plans+months", fd.Size, fd.NumMeta,
				cutBrief(fd.Cuts[0]), cutBrief(fd.Cuts[1]))
		} else if errors.Is(err, core.ErrInfeasible) {
			t.AddRow(fmt.Sprintf("%.2f", f), "plans+months", "infeasible", "-", "-", "-")
		} else {
			return nil, err
		}

		// Single-tree alternatives at the same bound.
		for _, alt := range []struct {
			name string
			tree *abstraction.Tree
		}{{"plans only", plans}, {"months only", months}} {
			res, err := core.DPSingleTreeN(set, alt.tree, bound, cfg.Workers)
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					t.AddRow(fmt.Sprintf("%.2f", f), alt.name, "infeasible", "-", "-", "-")
					continue
				}
				return nil, err
			}
			pc, mc := cutBrief(res.Cuts[0]), "(leaves)"
			if alt.name == "months only" {
				pc, mc = "(leaves)", cutBrief(res.Cuts[0])
			}
			t.AddRow(fmt.Sprintf("%.2f", f), alt.name, res.Size, res.NumMeta, pc, mc)
		}
	}
	t.Note("grouping along both dimensions multiplies the merge effect: size = |plans cut| × |months cut| per zip, so the forest reaches bounds no single tree can")
	t.Elapsed = time.Since(start)
	return t, nil
}

// cutBrief renders a cut compactly: the node list up to 6 names.
func cutBrief(c abstraction.Cut) string {
	names := c.Names()
	if len(names) > 6 {
		return fmt.Sprintf("{%s, ... %d nodes}", names[0], len(names))
	}
	return c.String()
}
