package experiments

import (
	"errors"
	"fmt"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// SweepBoundCount is the size of E16's bound batch — the "slider
// positions" a single sweep answers from one DP run.
const SweepBoundCount = 32

// SweepBounds returns n bounds evenly spanning (0, size] — the batch a
// bound slider explores over a provenance of the given size.
func SweepBounds(size, n int) []int {
	bounds := make([]int, n)
	for i := range bounds {
		bounds[i] = size * (i + 1) / n
	}
	return bounds
}

// E16FrontierSweep measures the batched multi-bound frontier sweep against
// per-bound recompression on the telephony workload: one FrontierSweep
// call answering a 32-bound batch versus 32 independent single-tree DP
// runs, for Workers ∈ {1, 2, 8}. Every sweep answer must be bit-identical
// to the per-bound DP's result (or error) — the determinism guarantee
// extended to sweeps — and the sweep must be at least 5× faster than the
// recompression loop (the speedup is algorithmic — one signature-indexing
// pass instead of 32 — so it does not depend on core count); both are hard
// failures, the speedup one outside Quick mode only.
func E16FrontierSweep(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID: "E16",
		Title: fmt.Sprintf("Batched frontier sweep: one DP run vs %d per-bound recompressions",
			SweepBoundCount),
		Columns: []string{"workers", "monomials", "bounds", "sweep", "recompress", "speedup", "identical"},
	}

	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)
	forest := abstraction.Forest{tree}
	bounds := SweepBounds(set.Size(), SweepBoundCount)

	var reference []core.SweepAnswer
	for _, w := range []int{1, 2, 8} {
		// The recompression loop: one full DP per bound.
		t0 := time.Now()
		perBound := make([]*core.Result, len(bounds))
		perBoundErr := make([]error, len(bounds))
		for i, bound := range bounds {
			perBound[i], perBoundErr[i] = core.DPSingleTreeN(set, tree, bound, w)
			if perBoundErr[i] != nil && !errors.Is(perBoundErr[i], core.ErrInfeasible) {
				return nil, perBoundErr[i]
			}
		}
		recompress := time.Since(t0)

		// The sweep: one DP run, every bound a lookup.
		t0 = time.Now()
		answers, err := core.FrontierSweepSource(set, forest, bounds, w)
		if err != nil {
			return nil, err
		}
		sweep := time.Since(t0)

		identical := len(answers) == len(bounds)
		for i := 0; identical && i < len(answers); i++ {
			identical = sweepAnswerEqual(answers[i], perBound[i], perBoundErr[i])
		}
		if w == 1 {
			reference = answers
		} else {
			// Cross-worker: every count must answer exactly like workers=1.
			for i := 0; identical && i < len(answers); i++ {
				identical = sweepAnswersEqual(answers[i], reference[i])
			}
		}

		speedup := float64(recompress) / float64(sweep)
		t.AddRow(w, set.Size(), len(bounds), sweep, recompress,
			fmt.Sprintf("%.1fx", speedup), yesNo(identical))
		if !identical {
			return nil, fmt.Errorf("E16: sweep answers differ from per-bound compression at %d workers", w)
		}
		if !cfg.Quick && speedup < 5 {
			return nil, fmt.Errorf("E16: sweep speedup %.1fx below the required 5x at %d workers", speedup, w)
		}
	}

	t.Note("identical = every sweep answer (cut, sizes, statistics, error) is bit-identical to the per-bound DP's, and to the workers=1 sweep")
	t.Note("speedup = recompress/sweep; one signature-indexing pass amortized over the whole bound batch")
	t.Elapsed = time.Since(start)
	return t, nil
}

// sweepAnswerEqual compares one sweep answer against the per-bound DP's
// result or error.
func sweepAnswerEqual(a core.SweepAnswer, res *core.Result, err error) bool {
	if (a.Err == nil) != (err == nil) {
		return false
	}
	if err != nil {
		return a.Err.Error() == err.Error()
	}
	return sameResult(a.Result, res) &&
		a.Result.UsedMeta == res.UsedMeta &&
		a.Result.OriginalSize == res.OriginalSize &&
		a.Result.OriginalVars == res.OriginalVars
}

// sweepAnswersEqual compares two sweep answers for the same bound.
func sweepAnswersEqual(a, b core.SweepAnswer) bool {
	if a.Bound != b.Bound || (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil {
		return a.Err.Error() == b.Err.Error()
	}
	return sameResult(a.Result, b.Result)
}
