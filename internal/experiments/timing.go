package experiments

import (
	"time"

	"github.com/cobra-prov/cobra/internal/valuation"
)

// Timing reports the assignment-time comparison between full and compressed
// provenance, as shown by the demo ("the assignment speedup is 47%").
//
// Measurement lives here, not in internal/valuation: the valuation hot
// path is part of the deterministic core, which may not read the wall
// clock (the nowallclock lint invariant). Experiments and demos call
// MeasureSpeedup; the library only evaluates.
type Timing struct {
	Full       time.Duration // time to evaluate the full provenance once
	Compressed time.Duration // time to evaluate the compressed provenance once
	// Speedup is the fraction of assignment time saved:
	// (Full - Compressed) / Full, in [0, 1) when compression helps.
	Speedup float64
	Iters   int
}

// MeasureSpeedup times repeated valuation of both programs under their
// respective dense valuations and reports per-iteration times. iters <= 0
// picks an iteration count that targets a few milliseconds of work. The
// minimum of three repetitions is used to suppress scheduling noise.
func MeasureSpeedup(full, comp *valuation.Program, fullVals, compVals []float64, iters int) Timing {
	if iters <= 0 {
		iters = autoIters(full)
	}
	tf := timeEval(full, fullVals, iters)
	tc := timeEval(comp, compVals, iters)
	t := Timing{Full: tf, Compressed: tc, Iters: iters}
	if tf > 0 {
		t.Speedup = float64(tf-tc) / float64(tf)
	}
	return t
}

func autoIters(p *valuation.Program) int {
	// Roughly 2e7 monomial evaluations total.
	n := p.Size()
	if n == 0 {
		return 1000
	}
	it := 20_000_000 / n
	if it < 3 {
		it = 3
	}
	if it > 100000 {
		it = 100000
	}
	return it
}

func timeEval(p *valuation.Program, vals []float64, iters int) time.Duration {
	var out []float64
	best := time.Duration(1<<62 - 1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			out = p.Eval(vals, out)
		}
		el := time.Since(start)
		if el < best {
			best = el
		}
	}
	if len(out) > 0 && out[0] == 42.424242e99 {
		panic("unreachable: defeat dead-code elimination")
	}
	return best / time.Duration(iters)
}
