package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// E1RunningExample reproduces Example 2: the provenance polynomials P1, P2
// of the revenue query over the Figure-1 database.
func E1RunningExample(Config) (*Table, error) {
	start := time.Now()
	names := polynomial.NewNames()
	cat, err := telephony.InstrumentPrices(telephony.Figure1DB(), names)
	if err != nil {
		return nil, err
	}
	set, err := provenance.Capture(telephony.RevenueQuery, cat, names, "revenue")
	if err != nil {
		return nil, err
	}

	wantP1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names)
	wantP2 := polynomial.MustParse(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3", names)

	t := &Table{
		ID:      "E1",
		Title:   "Provenance of the revenue query over Figure 1 (Example 2)",
		Columns: []string{"group", "monomials", "matches paper"},
	}
	for i, key := range set.Keys {
		want := wantP1
		if key == "10002" {
			want = wantP2
		}
		match := "yes"
		if !polynomial.AlmostEqual(set.Polys[i], want, 1e-9) {
			match = "NO"
		}
		t.AddRow(key, set.Polys[i].NumMonomials(), match)
	}
	t.Note("polynomials captured through the SQL engine match Example 2 exactly")
	t.Elapsed = time.Since(start)
	return t, nil
}

// E2ExampleCuts reproduces Example 4: applying S1–S5 to P1 and comparing
// monomial/variable counts with the paper's.
func E2ExampleCuts(Config) (*Table, error) {
	start := time.Now()
	names := polynomial.NewNames()
	tree := telephony.PlansTree(names)
	p1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names)
	set := polynomial.NewSet(names)
	if err := set.Add("10001", p1); err != nil {
		return nil, err
	}

	cuts := []struct {
		name      string
		nodes     []string
		paperSize string // what Example 4 reports for P1 (S1 and S5 only)
		paperVars string
	}{
		{"S1", []string{"Business", "Special", "Standard"}, "4", "4"},
		{"S2", []string{"SB", "e", "f1", "f2", "Y", "v", "Standard"}, "-", "-"},
		{"S3", []string{"b1", "b2", "e", "Special", "Standard"}, "-", "-"},
		{"S4", []string{"SB", "e", "F", "Y", "v", "p1", "p2"}, "-", "-"},
		{"S5", []string{"Plans"}, "2", "3"},
	}
	t := &Table{
		ID:      "E2",
		Title:   "P1 under the Example-4 cuts",
		Columns: []string{"cut", "nodes", "monomials", "distinct vars", "paper monomials", "paper vars"},
	}
	for _, c := range cuts {
		cut, err := tree.CutOf(c.nodes...)
		if err != nil {
			return nil, err
		}
		comp := abstraction.Apply(set, cut)
		t.AddRow(c.name, cut.String(), comp.Size(), comp.NumVars(), c.paperSize, c.paperVars)
	}
	t.Note("the paper reports S1 and S5 only; S5's printed m1 coefficient 466.1 is a typo for 454.1 (= 208.8+127.4+75.9+42)")
	t.Elapsed = time.Since(start)
	return t, nil
}

// section4Bounds returns the paper's two bounds, scaled proportionally when
// running below paper scale.
func section4Bounds(size int) (int, int) {
	if size == 139_260 {
		return 94_600, 38_600
	}
	return int(float64(size) * 94_600 / 139_260), int(float64(size) * 38_600 / 139_260)
}

// E3Section4 reproduces the Section-4 measurement: the 1M-customer
// provenance size and the two bound/size/speedup pairs.
func E3Section4(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)

	size := set.Size()
	b1, b2 := section4Bounds(size)

	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("Section-4 compression at %d customers", cfg.TelephonyCustomers),
		Columns: []string{"bound", "compressed size", "meta vars", "speedup",
			"paper size", "paper speedup"},
	}
	t.AddRow("(none)", size, set.NumVars(), "-", paperOrDash(size == 139_260, "139260"), "-")

	fullProg := valuation.Compile(set)
	fullVals := valuation.New(names).Dense(names.Len())

	paperSizes := map[int]string{94_600: "88620", 38_600: "37980"}
	paperSpeedups := map[int]string{94_600: "47%", 38_600: "79%"}
	for _, bound := range []int{b1, b2} {
		res, err := core.DPSingleTreeN(set, tree, bound, cfg.Workers)
		if err != nil {
			return nil, err
		}
		comp := res.Apply(set)
		compProg := valuation.Compile(comp)
		iters := 20
		if cfg.Quick {
			iters = 3
		}
		tm := MeasureSpeedup(fullProg, compProg, fullVals, fullVals, iters)
		t.AddRow(bound, res.Size, res.NumMeta,
			fmt.Sprintf("%.0f%%", tm.Speedup*100),
			paperOrDash(size == 139_260, paperSizes[bound]),
			paperOrDash(size == 139_260, paperSpeedups[bound]))
	}
	t.Note("speedup = (t_full - t_compressed) / t_full per assignment, compiled evaluator on both sides")
	t.Note("paper columns apply at paper scale (1,000,000 customers / 1,055 zips); bounds scale proportionally otherwise")
	t.Elapsed = time.Since(start)
	return t, nil
}

func paperOrDash(atPaperScale bool, v string) string {
	if atPaperScale && v != "" {
		return v
	}
	return "-"
}

// E4BoundSweep measures compressed size and remaining variables across a
// sweep of bounds — the interaction the demo lets the audience perform.
func E4BoundSweep(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)
	size := set.Size()

	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Size and variables vs bound (original size %d)", size),
		Columns: []string{"bound (frac)", "bound", "compressed size", "ratio", "meta vars"},
	}
	fractions := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	if cfg.Quick {
		fractions = []float64{1.0, 0.6, 0.3}
	}
	for _, f := range fractions {
		bound := int(float64(size) * f)
		res, err := core.DPSingleTreeN(set, tree, bound, cfg.Workers)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				t.AddRow(fmt.Sprintf("%.1f", f), bound, "-", "-", "infeasible")
				continue
			}
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", f), bound, res.Size,
			fmt.Sprintf("%.3f", res.CompressionRatio()), res.NumMeta)
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// E5SpeedupSweep measures assignment time against the bound sweep.
func E5SpeedupSweep(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)
	size := set.Size()

	fullProg := valuation.Compile(set)
	vals := valuation.New(names).Dense(names.Len())

	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("Assignment time vs bound (original size %d)", size),
		Columns: []string{"bound (frac)", "compressed size", "t_full", "t_compressed", "speedup"},
	}
	fractions := []float64{1.0, 0.8, 0.6, 0.4, 0.2}
	if cfg.Quick {
		fractions = []float64{1.0, 0.4}
	}
	iters := 20
	if cfg.Quick {
		iters = 3
	}
	for _, f := range fractions {
		res, err := core.DPSingleTreeN(set, tree, int(float64(size)*f), cfg.Workers)
		if err != nil {
			continue
		}
		comp := valuation.Compile(res.Apply(set))
		tm := MeasureSpeedup(fullProg, comp, vals, vals, iters)
		t.AddRow(fmt.Sprintf("%.1f", f), res.Size, tm.Full, tm.Compressed,
			fmt.Sprintf("%.0f%%", tm.Speedup*100))
	}
	t.Note("times are per full assignment (all groups), minimum of 3 repetitions")
	t.Elapsed = time.Since(start)
	return t, nil
}

// E6ScenarioAccuracy measures the result error introduced by compression
// for the paper's two hypothetical scenarios across cuts, under both
// unweighted (paper default) and coefficient-weighted meta-valuations.
func E6ScenarioAccuracy(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)

	scenarios := []struct {
		name string
		a    *valuation.Assignment
	}{
		{"March -20% (m3=0.8)", telephony.ScenarioMarchMinus20(names)},
		{"Business +10% (b1,b2,e=1.1)", telephony.ScenarioBusinessPlus10(names)},
	}
	cuts := []struct {
		name  string
		nodes []string
	}{
		{"S1", []string{"Business", "Special", "Standard"}},
		{"S4", []string{"SB", "e", "F", "Y", "v", "p1", "p2"}},
		{"S5", []string{"Plans"}},
	}

	t := &Table{
		ID:      "E6",
		Title:   "Query-result error of compressed provenance per scenario and cut",
		Columns: []string{"scenario", "cut", "max rel err (avg)", "max rel err (weighted)", "exact"},
	}
	for _, sc := range scenarios {
		full := valuation.EvalSet(set, sc.a)
		for _, c := range cuts {
			cut, err := tree.CutOf(c.nodes...)
			if err != nil {
				return nil, err
			}
			comp := abstraction.Apply(set, cut)
			accA := valuation.CompareResults(full, valuation.EvalSet(comp, valuation.Induced(sc.a, cut)))
			accW := valuation.CompareResults(full, valuation.EvalSet(comp, valuation.InducedWeighted(sc.a, set, cut)))
			exact := "no"
			if accA.Exact(1e-9) {
				exact = "yes"
			}
			t.AddRow(sc.name, c.name, relStr(accA.MaxRel), relStr(accW.MaxRel), exact)
		}
	}
	t.Note("a scenario consistent with the cut (constant within every group) is evaluated exactly — the soundness guarantee")
	t.Elapsed = time.Since(start)
	return t, nil
}

func relStr(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2e", r)
}
