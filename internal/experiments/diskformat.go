package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polyio"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// countWriter counts the bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// E17DiskFormat measures the v3 indexed on-disk format against v2 on a
// spill-heavy telephony workload: the provenance is sharded under a 1/8
// memory budget, written in v2, v3-uncompressed and v3-compressed form
// (disk bytes recorded for each), then the compressed v3 file is decoded
// back both sequentially and through the parallel random-access reader.
// Every decode — any order, any worker count — must reproduce the
// original set bit-identically, and Compress/EvalBatch answers computed
// straight off the indexed file must match the in-memory ones at every
// worker count. The experiment fails if compressed v3 does not reach
// 0.6x of the v2 byte size.
func E17DiskFormat(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := &Table{
		ID:      "E17",
		Title:   "Indexed on-disk format (v3 vs v2, parallel decode)",
		Columns: []string{"stage", "workers", "disk bytes", "ratio vs v2", "elapsed", "identical"},
	}

	names := polynomial.NewNames()
	set := telephony.DirectProvenance(telephony.Config{Customers: cfg.TelephonyCustomers}, names)
	tree := telephony.PlansTree(names)
	bound := set.Size() / 2
	budget := set.Size() / 8
	if budget < 2 {
		budget = 2
	}
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{MaxResidentMonomials: budget})
	if err != nil {
		return nil, err
	}
	defer ss.Close()

	// Disk bytes per format, from the same sharded source.
	v2w := &countWriter{w: io.Discard}
	if err := polyio.WriteSetStream(v2w, ss); err != nil {
		return nil, err
	}
	v3uw := &countWriter{w: io.Discard}
	if err := polyio.WriteSetStreamV3(v3uw, ss, polyio.V3Options{}); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "cobra-e17-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "set.v3")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	v3cw := &countWriter{w: f}
	if err := polyio.WriteSetStreamV3(v3cw, ss, polyio.V3Options{Compress: true}); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	ratio := func(n int64) string { return fmt.Sprintf("%.3f", float64(n)/float64(v2w.n)) }
	t.AddRow("write v2", "-", v2w.n, "1.000", "-", "-")
	t.AddRow("write v3", "-", v3uw.n, ratio(v3uw.n), "-", "-")
	t.AddRow("write v3+deflate", "-", v3cw.n, ratio(v3cw.n), "-", "-")
	if float64(v3cw.n) > 0.6*float64(v2w.n) {
		return nil, fmt.Errorf("E17: compressed v3 is %d bytes, above 0.6x of v2's %d", v3cw.n, v2w.n)
	}

	ix, err := polyio.OpenIndexedFile(path, names)
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	// Sequential vs parallel decode of the same indexed file; every decode
	// must rebuild the set bit-identically and deliver shards in order.
	decode := func(workers int) (*polynomial.Set, time.Duration, error) {
		out := polynomial.NewSet(names)
		t0 := time.Now()
		next := 0
		pass := ix.ForEachShard
		if workers > 1 {
			pass = func(fn func(i, firstPoly int, s *polynomial.Set) error) error {
				return ix.ForEachShardParallel(workers, fn)
			}
		}
		err := pass(func(i, _ int, s *polynomial.Set) error {
			if i != next {
				return fmt.Errorf("shard %d delivered out of order (want %d)", i, next)
			}
			next++
			for p := range s.Keys {
				if err := out.Add(s.Keys[p], s.Polys[p]); err != nil {
					return err
				}
			}
			return nil
		})
		return out, time.Since(t0), err
	}
	for _, w := range []int{1, 2, 8} {
		got, elapsed, err := decode(w)
		if err != nil {
			return nil, err
		}
		identical := sameSet(set, got)
		stage := "decode sequential"
		if w > 1 {
			stage = "decode parallel"
		}
		t.AddRow(stage, w, "-", "-", elapsed, yesNo(identical))
		if !identical {
			return nil, fmt.Errorf("E17: decode at %d workers differs from the original set", w)
		}
	}

	// Solver oracle straight off the indexed file: Compress and EvalBatch
	// over the v3 source must equal the in-memory answers at every worker
	// count.
	want, err := core.DPSingleTree(set, tree, bound)
	if err != nil {
		return nil, err
	}
	assignments := make([]*valuation.Assignment, 5)
	used := set.UsedVars()
	for i := range assignments {
		a := valuation.New(names)
		a.SetVar(used[i%len(used)], 0.25*float64(i+1))
		assignments[i] = a
	}
	wantRows, err := valuation.EvalBatchSource(set, assignments, 1)
	if err != nil {
		return nil, err
	}
	for _, w := range []int{1, 2, 8} {
		res, err := core.CompressSource(ix, abstraction.Forest{tree}, bound, w)
		if err != nil {
			return nil, err
		}
		rows, err := valuation.EvalBatchSource(ix, assignments, w)
		if err != nil {
			return nil, err
		}
		identical := sameResult(want, res) && sameRows(wantRows, rows)
		t.AddRow("compress+eval", w, "-", "-", "-", yesNo(identical))
		if !identical {
			return nil, fmt.Errorf("E17: indexed compress/eval differs from in-memory at %d workers", w)
		}
	}

	t.Note("disk bytes = full stream size for the sharded telephony provenance (budget = size/8, spill-heavy)")
	t.Note("identical = decoded set, compression result and evaluation rows are bit-identical to the in-memory baseline")
	t.Elapsed = time.Since(start)
	return t, nil
}
