package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/cobra-prov/cobra/internal/datagen/telephony"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/provenance"
	"github.com/cobra-prov/cobra/internal/relation"
)

// E13CaptureParallel measures partition-parallel provenance capture in the
// SQL engine against the sequential baseline — cell-level instrumentation,
// query execution plus value-provenance capture, and tuple-level lineage
// capture — and verifies the engine's determinism guarantee: every parallel
// result (including the interning order of a fresh namespace) is
// bit-identical to the sequential one. The parallel side uses cfg.Workers
// when set (> 1), else GOMAXPROCS.
func E13CaptureParallel(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	workers := cfg.Workers
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Parallel provenance capture at %d workers (sequential baseline)", workers),
		Columns: []string{"task", "work", "sequential", "parallel", "speedup", "identical"},
	}

	reps := 3
	if cfg.Quick {
		reps = 1
	}
	bestOf := func(fn func() error) (time.Duration, error) {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if el := time.Since(t0); el < best {
				best = el
			}
		}
		return best, nil
	}
	speedup := func(seq, par time.Duration) string {
		if par <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(seq)/float64(par))
	}

	// The engine path materializes the instrumented join, so capture runs
	// at a moderated scale (cf. E9), while instrumentation — a per-row
	// pass — runs at the full configured scale.
	custs := cfg.TelephonyCustomers / 10
	if custs > 10_000 {
		custs = 10_000
	}
	if cfg.Quick && custs > 1_000 {
		custs = 1_000
	}
	if custs < 100 {
		custs = 100
	}

	// 1. Cell-level instrumentation (ParameterizeColumn) of a wide base
	// relation: variable-name derivation and cell multiplication shard
	// across the pool; interning stays sequential in row order.
	{
		rows := cfg.TelephonyCustomers
		base := syntheticMeasurements(rows)
		specs := []provenance.VarSpec{
			{Prefix: "c_", Columns: []string{"Cat"}},
			{Prefix: "r", Columns: []string{"Row"}},
		}
		var seqRel, parRel *relation.Relation
		var seqNames, parNames *polynomial.Names
		seqT, err := bestOf(func() (e error) {
			seqNames = polynomial.NewNames()
			seqRel, e = provenance.ParameterizeColumnN(base, "Val", specs, seqNames, 1)
			return
		})
		if err != nil {
			return nil, err
		}
		parT, err := bestOf(func() (e error) {
			parNames = polynomial.NewNames()
			parRel, e = provenance.ParameterizeColumnN(base, "Val", specs, parNames, workers)
			return
		})
		if err != nil {
			return nil, err
		}
		identical := sameNames(seqNames, parNames) && sameInstrumented(seqRel, parRel)
		t.AddRow("instrument (cell level)", fmt.Sprintf("%d rows", rows),
			seqT, parT, speedup(seqT, parT), yesNo(identical))
	}

	// 2. Query execution + value-provenance capture: the running example's
	// revenue query over instrumented prices, through the engine's
	// partition-parallel scans, joins and aggregation.
	{
		names := polynomial.NewNames()
		cat, err := telephony.InstrumentPrices(telephony.Generate(telephony.Config{Customers: custs}), names)
		if err != nil {
			return nil, err
		}
		var seqSet, parSet *polynomial.Set
		seqT, err := bestOf(func() (e error) {
			seqSet, e = provenance.CaptureN(telephony.RevenueQuery, cat, names, "revenue", 1)
			return
		})
		if err != nil {
			return nil, err
		}
		parT, err := bestOf(func() (e error) {
			parSet, e = provenance.CaptureN(telephony.RevenueQuery, cat, names, "revenue", workers)
			return
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("execute + capture", fmt.Sprintf("%d customers, %d groups", custs, seqSet.Len()),
			seqT, parT, speedup(seqT, parT), yesNo(samePolySet(seqSet, parSet)))
	}

	// 3. Tuple-level lineage capture over an SPJ query on tuple-annotated
	// relations.
	{
		names := polynomial.NewNames()
		cat := telephony.Generate(telephony.Config{Customers: custs})
		cust, err := provenance.AnnotateTuplesN(cat["Cust"], provenance.VarSpec{Prefix: "c", Columns: []string{"ID"}}, names, 1)
		if err != nil {
			return nil, err
		}
		cat["Cust"] = cust
		query := "SELECT Cust.Zip, Calls.Mo FROM Cust, Calls WHERE Cust.ID = Calls.CID AND Calls.Dur > 900"
		var seqSet, parSet *polynomial.Set
		seqT, err := bestOf(func() (e error) {
			seqSet, e = provenance.CaptureLineageN(query, cat, names, 1)
			return
		})
		if err != nil {
			return nil, err
		}
		parT, err := bestOf(func() (e error) {
			parSet, e = provenance.CaptureLineageN(query, cat, names, workers)
			return
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("lineage capture (SPJ)", fmt.Sprintf("%d customers, %d rows", custs, seqSet.Len()),
			seqT, parT, speedup(seqT, parT), yesNo(samePolySet(seqSet, parSet)))
	}

	t.Note("identical = parallel capture output (sets, polynomials and variable interning order) is bit-identical to the sequential baseline")
	t.Elapsed = time.Since(start)
	return t, nil
}

// syntheticMeasurements builds a base relation for the instrumentation
// benchmark: rows cycling through a few categories with numeric values and
// sporadic NULLs.
func syntheticMeasurements(rows int) *relation.Relation {
	rel := relation.NewRelation("m", relation.NewSchema(
		relation.Column{Name: "Cat", Kind: relation.KindString},
		relation.Column{Name: "Row", Kind: relation.KindInt},
		relation.Column{Name: "Val", Kind: relation.KindFloat},
	))
	cats := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i := 0; i < rows; i++ {
		val := relation.Float(float64(i%1000) * 1.25)
		if i%101 == 0 {
			val = relation.Null()
		}
		rel.Append(relation.Str(cats[i%len(cats)]), relation.Int(int64(i)), val)
	}
	return rel
}

// samePolySet compares two polynomial sets for exact equality (keys, order
// and polynomials).
func samePolySet(a, b *polynomial.Set) bool {
	if a == nil || b == nil || a.Len() != b.Len() {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || !polynomial.Equal(a.Polys[i], b.Polys[i]) {
			return false
		}
	}
	return true
}

// sameNames compares two namespaces' interning order.
func sameNames(a, b *polynomial.Names) bool {
	if a.Len() != b.Len() {
		return false
	}
	av, bv := a.All(), b.All()
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// sameInstrumented compares two instrumented relations cell by cell.
func sameInstrumented(a, b *relation.Relation) bool {
	if a == nil || b == nil || len(a.Rows) != len(b.Rows) {
		return false
	}
	for ri := range a.Rows {
		av, bv := a.Rows[ri].Values, b.Rows[ri].Values
		if len(av) != len(bv) {
			return false
		}
		for ci := range av {
			if av[ci].Kind != bv[ci].Kind {
				return false
			}
			if av[ci].Kind == relation.KindPoly && !polynomial.Equal(av[ci].P, bv[ci].P) {
				return false
			}
		}
	}
	return true
}
