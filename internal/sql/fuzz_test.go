package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics drives the SQL parser with random token soup: it
// must return a statement or an error, never panic.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(137))
	words := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AND",
		"OR", "NOT", "IN", "BETWEEN", "LIKE", "JOIN", "ON", "AS", "SUM",
		"COUNT", "t", "a", "b", "*", ",", "(", ")", "=", "<", ">", "<>",
		"<=", ">=", "+", "-", "/", "'s'", "1", "2.5", ".", ";", "--c",
	}
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(16)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[r.Intn(len(words))]
		}
		_, _ = Parse(strings.Join(parts, " "))
	}
}

// TestPlanNeverPanicsOnParsedQueries: anything the parser accepts must plan
// or fail cleanly against a real catalog.
func TestPlanNeverPanicsOnParsedQueries(t *testing.T) {
	r := rand.New(rand.NewSource(139))
	cat := testCatalog()
	words := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
		"AND", "OR", "SUM", "COUNT", "MIN",
		"Cust", "Calls", "Plans", "ID", "Zip", "Plan", "Mo", "Dur", "Price",
		"*", ",", "(", ")", "=", "<", ">", "+", "-", "'10001'", "1", "3",
	}
	planned := 0
	for i := 0; i < 8000; i++ {
		n := 2 + r.Intn(14)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[r.Intn(len(words))]
		}
		stmt, err := Parse(strings.Join(parts, " "))
		if err != nil {
			continue
		}
		if _, err := Plan(stmt, cat); err == nil {
			planned++
		}
	}
	if planned == 0 {
		t.Log("note: no random statement planned successfully (acceptable, parser is strict)")
	}
}

// TestRunRandomValidQueries executes a grammar-directed random workload to
// shake out execution-time panics.
func TestRunRandomValidQueries(t *testing.T) {
	r := rand.New(rand.NewSource(149))
	cat := testCatalog()
	cols := []string{"ID", "Zip", "Plan"}
	for i := 0; i < 300; i++ {
		col := cols[r.Intn(len(cols))]
		var sb strings.Builder
		sb.WriteString("SELECT ")
		agg := r.Intn(3)
		switch agg {
		case 0:
			sb.WriteString(col + " FROM Cust")
		case 1:
			sb.WriteString(col + ", COUNT(*) AS n FROM Cust")
		default:
			sb.WriteString("COUNT(*) AS n FROM Cust")
		}
		if r.Intn(2) == 0 {
			sb.WriteString(" WHERE ID > " + []string{"0", "3", "9"}[r.Intn(3)])
		}
		if agg == 1 {
			sb.WriteString(" GROUP BY " + col)
		}
		if agg == 0 && r.Intn(2) == 0 {
			sb.WriteString(" ORDER BY " + col)
			if r.Intn(2) == 0 {
				sb.WriteString(" DESC")
			}
		}
		if r.Intn(3) == 0 {
			sb.WriteString(" LIMIT " + []string{"0", "2", "100"}[r.Intn(3)])
		}
		if _, err := Run(sb.String(), cat); err != nil {
			t.Fatalf("query %q failed: %v", sb.String(), err)
		}
	}
}

// FuzzParsePlan is the native-fuzzing entry point behind CI's fuzz-smoke
// step: any input must lex and parse without panicking, and anything that
// parses must plan (or fail cleanly) against a real catalog.
func FuzzParsePlan(f *testing.F) {
	f.Add("SELECT a FROM t")
	f.Add(revenueQuery)
	f.Add("SELECT * FROM Cust WHERE ID BETWEEN 1 AND 5 OR Plan LIKE 'S%'")
	f.Add("SELECT Zip, COUNT(*) AS n FROM Cust GROUP BY Zip HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 2")
	f.Add("SELECT CASE WHEN ID > 3 THEN 'hi' ELSE 'lo' END FROM Cust")
	cat := testCatalog()
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			return
		}
		_, _ = Plan(stmt, cat)
	})
}
