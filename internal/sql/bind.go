package sql

import (
	"fmt"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/relation"
)

// bind resolves an AST expression against a schema, producing an executable
// engine expression. Aggregate calls are rejected (they are handled by the
// aggregation planner).
func bind(e Expr, schema *relation.Schema) (engine.Expr, error) {
	switch x := e.(type) {
	case *Ident:
		idx, err := schema.Index(x.String())
		if err != nil {
			return nil, err
		}
		return &engine.ColRef{Idx: idx, Name: x.String()}, nil
	case *NumberLit, *StringLit, *BoolLit, *NullLit:
		return bindLit(e), nil
	case *Binary:
		l, err := bind(x.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, schema)
		if err != nil {
			return nil, err
		}
		return combineBinary(x.Op, l, r)
	case *Unary:
		inner, err := bind(x.E, schema)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			return &engine.Neg{E: inner}, nil
		}
		return &engine.Logic{Op: engine.OpNot, L: inner}, nil
	case *Call:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", x)
	case *InExpr:
		inner, err := bind(x.E, schema)
		if err != nil {
			return nil, err
		}
		vals := make([]relation.Value, 0, len(x.List))
		for _, item := range x.List {
			lit, ok := literalValue(item)
			if !ok {
				return nil, fmt.Errorf("sql: IN list must contain literals, got %s", item)
			}
			vals = append(vals, lit)
		}
		return &engine.InList{E: inner, Vals: vals, Not: x.Not}, nil
	case *BetweenExpr:
		inner, err := bind(x.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := bind(x.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := bind(x.Hi, schema)
		if err != nil {
			return nil, err
		}
		return &engine.Between{E: inner, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *LikeExpr:
		inner, err := bind(x.E, schema)
		if err != nil {
			return nil, err
		}
		return &engine.Like{E: inner, Pattern: x.Pattern, Not: x.Not}, nil
	case *CaseExpr:
		out := &engine.Case{}
		for _, w := range x.Whens {
			cond, err := bind(w.Cond, schema)
			if err != nil {
				return nil, err
			}
			result, err := bind(w.Result, schema)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, engine.CaseWhen{When: cond, Then: result})
		}
		if x.Else != nil {
			alt, err := bind(x.Else, schema)
			if err != nil {
				return nil, err
			}
			out.Else = alt
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sql: unsupported expression %s", e)
	}
}

// bindLit converts a literal AST node to an engine literal.
func bindLit(e Expr) engine.Expr {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			return &engine.Lit{Val: relation.Int(x.I)}
		}
		return &engine.Lit{Val: relation.Float(x.F)}
	case *StringLit:
		return &engine.Lit{Val: relation.Str(x.Val)}
	case *BoolLit:
		return &engine.Lit{Val: relation.Bool(x.Val)}
	default:
		return &engine.Lit{Val: relation.Null()}
	}
}

// literalValue extracts a constant from a (possibly negated) literal node.
func literalValue(e Expr) (relation.Value, bool) {
	switch x := e.(type) {
	case *NumberLit:
		if x.IsInt {
			return relation.Int(x.I), true
		}
		return relation.Float(x.F), true
	case *StringLit:
		return relation.Str(x.Val), true
	case *BoolLit:
		return relation.Bool(x.Val), true
	case *NullLit:
		return relation.Null(), true
	case *Unary:
		if x.Op == "-" {
			if n, ok := x.E.(*NumberLit); ok {
				if n.IsInt {
					return relation.Int(-n.I), true
				}
				return relation.Float(-n.F), true
			}
		}
	}
	return relation.Value{}, false
}

// combineBinary maps an AST binary operator to the engine node.
func combineBinary(op string, l, r engine.Expr) (engine.Expr, error) {
	switch op {
	case "+":
		return &engine.Arith{Op: engine.OpAdd, L: l, R: r}, nil
	case "-":
		return &engine.Arith{Op: engine.OpSub, L: l, R: r}, nil
	case "*":
		return &engine.Arith{Op: engine.OpMul, L: l, R: r}, nil
	case "/":
		return &engine.Arith{Op: engine.OpDiv, L: l, R: r}, nil
	case "=":
		return &engine.Cmp{Op: engine.OpEq, L: l, R: r}, nil
	case "<>":
		return &engine.Cmp{Op: engine.OpNe, L: l, R: r}, nil
	case "<":
		return &engine.Cmp{Op: engine.OpLt, L: l, R: r}, nil
	case "<=":
		return &engine.Cmp{Op: engine.OpLe, L: l, R: r}, nil
	case ">":
		return &engine.Cmp{Op: engine.OpGt, L: l, R: r}, nil
	case ">=":
		return &engine.Cmp{Op: engine.OpGe, L: l, R: r}, nil
	case "AND":
		return &engine.Logic{Op: engine.OpAnd, L: l, R: r}, nil
	case "OR":
		return &engine.Logic{Op: engine.OpOr, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", op)
	}
}
