// Package sql implements a SQL front-end for the provenance-aware engine:
// a lexer, a recursive-descent parser for the SELECT fragment used by the
// paper's queries and the TPC-H subset (SELECT-FROM-WHERE with inner joins,
// GROUP BY, HAVING, ORDER BY, LIMIT, aggregates, BETWEEN/IN/LIKE), and a
// planner that binds the AST against a catalog and emits an engine plan
// with predicate pushdown and hash equi-joins.
package sql

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; symbols canonical
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"JOIN": true, "INNER": true, "ON": true, "ASC": true, "DESC": true,
	"DISTINCT": true, "UNION": true, "ALL": true, "NULL": true,
	"TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// lex splits input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-': // comment
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < len(input) && isDigit(input[i+1])):
			start := i
			seenDot := false
			for i < len(input) && (isDigit(input[i]) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			var sb strings.Builder
			for {
				if i >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
		case isIdentStart(c):
			start := i
			for i < len(input) && isIdentChar(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			start := i
			var sym string
			switch c {
			case '<':
				if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
					sym = input[i : i+2]
					i += 2
				} else {
					sym = "<"
					i++
				}
			case '>':
				if i+1 < len(input) && input[i+1] == '=' {
					sym = ">="
					i += 2
				} else {
					sym = ">"
					i++
				}
			case '!':
				if i+1 < len(input) && input[i+1] == '=' {
					sym = "<>"
					i += 2
				} else {
					return nil, fmt.Errorf("sql: unexpected '!' at %d", i)
				}
			case '=', '+', '-', '*', '/', '(', ')', ',', '.', ';':
				sym = string(c)
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
			toks = append(toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) }
