package sql

import (
	"github.com/cobra-prov/cobra/internal/engine"
)

// Explain plans the query and renders the chosen operator tree — pushed
// filters, join order and hash keys — without executing it.
func Explain(query string, cat engine.Catalog) (string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return "", err
	}
	plan, err := Plan(stmt, cat)
	if err != nil {
		return "", err
	}
	return engine.Describe(plan), nil
}
