package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is an unbound SQL expression.
type Expr interface {
	String() string
}

// Ident is a (possibly qualified) column reference.
type Ident struct {
	Table string
	Name  string
}

func (e *Ident) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// NumberLit is a numeric literal; integral literals keep their int64 form.
type NumberLit struct {
	IsInt bool
	I     int64
	F     float64
}

func (e *NumberLit) String() string {
	if e.IsInt {
		return strconv.FormatInt(e.I, 10)
	}
	return strconv.FormatFloat(e.F, 'g', -1, 64)
}

// StringLit is a string (or date) literal.
type StringLit struct {
	Val string
}

func (e *StringLit) String() string { return "'" + e.Val + "'" }

// BoolLit is TRUE/FALSE.
type BoolLit struct {
	Val bool
}

func (e *BoolLit) String() string { return strings.ToUpper(strconv.FormatBool(e.Val)) }

// NullLit is NULL.
type NullLit struct{}

func (e *NullLit) String() string { return "NULL" }

// Binary is a binary operation; Op one of + - * / = <> < <= > >= AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

func (e *Binary) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Unary is - or NOT.
type Unary struct {
	Op string
	E  Expr
}

func (e *Unary) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.E) }

// Call is an aggregate call. Star marks COUNT(*).
type Call struct {
	Func string // upper-case: SUM, COUNT, AVG, MIN, MAX
	Arg  Expr   // nil when Star
	Star bool
}

func (e *Call) String() string {
	if e.Star {
		return e.Func + "(*)"
	}
	return fmt.Sprintf("%s(%s)", e.Func, e.Arg)
}

// InExpr is "e [NOT] IN (literals...)".
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

func (e *InExpr) String() string {
	var parts []string
	for _, x := range e.List {
		parts = append(parts, x.String())
	}
	not := ""
	if e.Not {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", e.E, not, strings.Join(parts, ", "))
}

// BetweenExpr is "e [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", e.E, not, e.Lo, e.Hi)
}

// LikeExpr is "e [NOT] LIKE 'pattern'".
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

func (e *LikeExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s LIKE '%s')", e.E, not, e.Pattern)
}

// CaseBranch is one WHEN/THEN pair of a CaseExpr.
type CaseBranch struct {
	Cond   Expr
	Result Expr
}

// CaseExpr is the searched CASE expression.
type CaseExpr struct {
	Whens []CaseBranch
	Else  Expr // nil means ELSE NULL
}

func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// SelectItem is one output column.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one FROM entry.
type TableRef struct {
	Name  string
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Star    bool
	Items   []SelectItem
	From    []TableRef
	Where   Expr // JOIN ... ON conditions are folded in as conjuncts
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// String reassembles an approximation of the statement (diagnostics only).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Star {
		sb.WriteString("*")
	}
	for i, it := range s.Items {
		if i > 0 || s.Star {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, tr := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(tr.Name)
		if tr.Alias != "" && tr.Alias != tr.Name {
			sb.WriteString(" ")
			sb.WriteString(tr.Alias)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}
