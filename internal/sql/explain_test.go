package sql

import (
	"strings"
	"testing"
)

func TestExplainRunningExample(t *testing.T) {
	out, err := Explain(revenueQuery, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Project [Cust.Zip, revenue]",
		"Sort",
		"GroupBy [Cust.Zip] aggregates [SUM",
		"HashJoin",
		"Scan Calls",
		"Scan Cust",
		"Scan Plans",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	// Three tables joined left-deep: two hash joins.
	if strings.Count(out, "HashJoin") != 2 {
		t.Fatalf("expected 2 hash joins:\n%s", out)
	}
}

func TestExplainPushdownVisible(t *testing.T) {
	out, err := Explain("SELECT ID FROM Cust, Plans WHERE Cust.Plan = Plans.Plan AND Zip = '10001'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// The single-table predicate must sit below the join, directly above
	// the Cust scan.
	joinPos := strings.Index(out, "HashJoin")
	filterPos := strings.Index(out, "Filter")
	if joinPos < 0 || filterPos < 0 || filterPos < joinPos {
		t.Fatalf("pushdown not visible:\n%s", out)
	}
}

func TestExplainCrossJoinAndLimit(t *testing.T) {
	out, err := Explain("SELECT Cust.ID FROM Cust, Plans WHERE Cust.ID > 6 LIMIT 3", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NestedLoopJoin on true (cross)") {
		t.Fatalf("cross join missing:\n%s", out)
	}
	if !strings.Contains(out, "Limit 3") {
		t.Fatalf("limit missing:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	if _, err := Explain("not sql", testCatalog()); err == nil {
		t.Fatal("parse error should propagate")
	}
	if _, err := Explain("SELECT x FROM missing", testCatalog()); err == nil {
		t.Fatal("plan error should propagate")
	}
}
