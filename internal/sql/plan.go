package sql

import (
	"fmt"
	"strings"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/relation"
)

// Run parses, plans, and executes a SELECT against the catalog.
func Run(query string, cat engine.Catalog) (*relation.Relation, error) {
	return RunN(query, cat, 1)
}

// RunN is Run executing the plan with up to workers goroutines
// (engine.CollectN): scans, filters, projections, join build/probe phases
// and group accumulation shard their rows over the pool. workers <= 1 stays
// fully sequential, and the result is bit-identical to the sequential one
// for every worker count.
func RunN(query string, cat engine.Catalog, workers int) (*relation.Relation, error) {
	plan, err := Open(query, cat)
	if err != nil {
		return nil, err
	}
	return engine.CollectN("result", plan, workers)
}

// Open parses and plans a SELECT without executing it, returning the
// ready-to-run iterator — the entry point for streaming consumers
// (engine.Stream, provenance.CaptureStream) that must see the result
// schema up front and must not materialize the result relation.
func Open(query string, cat engine.Catalog) (engine.Iterator, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Plan(stmt, cat)
}

// Stream parses, plans and executes a SELECT, invoking fn once per result
// row in result order without materializing the result — row values are
// bit-identical to Run's, since the sequential Volcano schedule is exactly
// what Run collects. Tuples follow the engine's row-validity contract: a
// tuple's Values slice is valid only until fn returns; copy to retain.
func Stream(query string, cat engine.Catalog, fn func(relation.Tuple) error) error {
	plan, err := Open(query, cat)
	if err != nil {
		return err
	}
	return engine.Stream(plan, fn)
}

// Plan binds a parsed statement against the catalog and builds an engine
// plan: filters pushed below joins, hash joins on extracted equality
// predicates (left-deep in FROM order), aggregation, HAVING, projection,
// ORDER BY, LIMIT.
func Plan(stmt *SelectStmt, cat engine.Catalog) (engine.Iterator, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sql: FROM is required")
	}
	p := &planner{cat: cat, stmt: stmt}
	if err := p.resolveTables(); err != nil {
		return nil, err
	}
	if err := p.classifyConjuncts(); err != nil {
		return nil, err
	}
	cur, err := p.buildJoinTree()
	if err != nil {
		return nil, err
	}
	return p.buildUpper(cur)
}

type plannedTable struct {
	alias   string
	scan    *engine.Scan
	schema  *relation.Schema
	filters []Expr
}

type equiPred struct {
	lTable, rTable string
	l, r           *Ident
	used           bool
}

type planner struct {
	cat  engine.Catalog
	stmt *SelectStmt

	tables  []*plannedTable
	byAlias map[string]*plannedTable

	equi []equiPred
	rest []restPred // conjuncts applied once their tables are joined

	aggCtx *aggContext
}

type restPred struct {
	expr    Expr
	tables  map[string]bool
	applied bool
}

func (p *planner) resolveTables() error {
	p.byAlias = make(map[string]*plannedTable)
	for _, tr := range p.stmt.From {
		rel, ok := p.cat[tr.Name]
		if !ok {
			return fmt.Errorf("sql: unknown table %q", tr.Name)
		}
		if _, dup := p.byAlias[tr.Alias]; dup {
			return fmt.Errorf("sql: duplicate table alias %q", tr.Alias)
		}
		sc := engine.NewScan(rel, tr.Alias)
		pt := &plannedTable{alias: tr.Alias, scan: sc, schema: sc.Schema()}
		p.tables = append(p.tables, pt)
		p.byAlias[tr.Alias] = pt
	}
	return nil
}

// splitConjuncts flattens the AND tree.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	return append(out, e)
}

// tablesOf returns the aliases referenced by e, resolving unqualified
// identifiers against the planned tables.
func (p *planner) tablesOf(e Expr) (map[string]bool, error) {
	out := make(map[string]bool)
	var walk func(Expr) error
	walk = func(e Expr) error {
		switch x := e.(type) {
		case *Ident:
			alias, err := p.resolveIdent(x)
			if err != nil {
				return err
			}
			out[alias] = true
		case *Binary:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *Unary:
			return walk(x.E)
		case *Call:
			if x.Arg != nil {
				return walk(x.Arg)
			}
		case *InExpr:
			if err := walk(x.E); err != nil {
				return err
			}
			for _, v := range x.List {
				if err := walk(v); err != nil {
					return err
				}
			}
		case *BetweenExpr:
			if err := walk(x.E); err != nil {
				return err
			}
			if err := walk(x.Lo); err != nil {
				return err
			}
			return walk(x.Hi)
		case *LikeExpr:
			return walk(x.E)
		case *CaseExpr:
			for _, w := range x.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Result); err != nil {
					return err
				}
			}
			if x.Else != nil {
				return walk(x.Else)
			}
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return out, nil
}

// resolveIdent finds the table an identifier belongs to.
func (p *planner) resolveIdent(id *Ident) (string, error) {
	if id.Table != "" {
		pt, ok := p.byAlias[id.Table]
		if !ok {
			return "", fmt.Errorf("sql: unknown table %q in %s", id.Table, id)
		}
		if _, err := pt.schema.Index(id.String()); err != nil {
			return "", err
		}
		return id.Table, nil
	}
	found := ""
	for _, pt := range p.tables {
		//cobra:hotalloc name resolution probes a handful of tables once per query
		if _, err := pt.schema.Index(pt.alias + "." + id.Name); err == nil {
			if found != "" {
				return "", fmt.Errorf("sql: ambiguous column %q (in %s and %s)", id.Name, found, pt.alias)
			}
			found = pt.alias
		}
	}
	if found == "" {
		return "", fmt.Errorf("sql: unknown column %q", id.Name)
	}
	return found, nil
}

func (p *planner) classifyConjuncts() error {
	if p.stmt.Where == nil {
		return nil
	}
	for _, c := range splitConjuncts(p.stmt.Where, nil) {
		tabs, err := p.tablesOf(c)
		if err != nil {
			return err
		}
		switch len(tabs) {
		case 0:
			p.rest = append(p.rest, restPred{expr: c, tables: tabs})
		case 1:
			for a := range tabs {
				p.byAlias[a].filters = append(p.byAlias[a].filters, c)
			}
		default:
			// Equi-join predicate?
			if b, ok := c.(*Binary); ok && b.Op == "=" && len(tabs) == 2 {
				li, lok := b.L.(*Ident)
				ri, rok := b.R.(*Ident)
				if lok && rok {
					la, err := p.resolveIdent(li)
					if err != nil {
						return err
					}
					ra, err := p.resolveIdent(ri)
					if err != nil {
						return err
					}
					if la != ra {
						p.equi = append(p.equi, equiPred{lTable: la, rTable: ra, l: li, r: ri})
						continue
					}
				}
			}
			p.rest = append(p.rest, restPred{expr: c, tables: tabs})
		}
	}
	return nil
}

// tableIterator builds scan + pushed filters for one table.
func (p *planner) tableIterator(pt *plannedTable) (engine.Iterator, error) {
	var it engine.Iterator = pt.scan
	for _, f := range pt.filters {
		bound, err := bind(f, pt.schema)
		if err != nil {
			return nil, err
		}
		it = engine.NewFilter(it, bound)
	}
	return it, nil
}

func (p *planner) buildJoinTree() (engine.Iterator, error) {
	cur, err := p.tableIterator(p.tables[0])
	if err != nil {
		return nil, err
	}
	joined := map[string]bool{p.tables[0].alias: true}

	for i := 1; i < len(p.tables); i++ {
		pt := p.tables[i]
		right, err := p.tableIterator(pt)
		if err != nil {
			return nil, err
		}
		// Hash keys: equi predicates connecting the joined set to pt.
		leftIdxs := make([]int, 0, len(p.equi))
		rightIdxs := make([]int, 0, len(p.equi))
		for ei := range p.equi {
			ep := &p.equi[ei]
			if ep.used {
				continue
			}
			var joinedSide, newSide *Ident
			switch {
			case joined[ep.lTable] && ep.rTable == pt.alias:
				joinedSide, newSide = ep.l, ep.r
			case joined[ep.rTable] && ep.lTable == pt.alias:
				joinedSide, newSide = ep.r, ep.l
			default:
				continue
			}
			li, err := cur.Schema().Index(joinedSide.String())
			if err != nil {
				return nil, err
			}
			ri, err := right.Schema().Index(newSide.String())
			if err != nil {
				return nil, err
			}
			leftIdxs = append(leftIdxs, li)
			rightIdxs = append(rightIdxs, ri)
			ep.used = true
		}
		if len(leftIdxs) > 0 {
			hj, err := engine.NewHashJoin(cur, right, leftIdxs, rightIdxs)
			if err != nil {
				return nil, err
			}
			cur = hj
		} else {
			cur = engine.NewNestedLoopJoin(cur, right, nil)
		}
		joined[pt.alias] = true

		// Apply any predicates that became fully covered.
		cur, err = p.applyCovered(cur, joined)
		if err != nil {
			return nil, err
		}
	}

	// Single-table queries never enter the loop; table-free predicates may
	// also still be pending. Apply everything that remains, then assert.
	cur, err = p.applyCovered(cur, joined)
	if err != nil {
		return nil, err
	}
	for ei := range p.equi {
		if !p.equi[ei].used {
			return nil, fmt.Errorf("sql: internal error, unapplied join predicate %s = %s", p.equi[ei].l, p.equi[ei].r)
		}
	}
	for ri := range p.rest {
		if !p.rest[ri].applied {
			return nil, fmt.Errorf("sql: internal error, unapplied predicate %s", p.rest[ri].expr)
		}
	}
	return cur, nil
}

// applyCovered filters cur with remaining predicates whose tables are all
// joined, and with unused equi predicates inside the joined set.
func (p *planner) applyCovered(cur engine.Iterator, joined map[string]bool) (engine.Iterator, error) {
	for ei := range p.equi {
		ep := &p.equi[ei]
		if ep.used || !joined[ep.lTable] || !joined[ep.rTable] {
			continue
		}
		//cobra:hotalloc one synthetic predicate node per equi predicate, at plan time
		bound, err := bind(&Binary{Op: "=", L: ep.l, R: ep.r}, cur.Schema())
		if err != nil {
			return nil, err
		}
		cur = engine.NewFilter(cur, bound)
		ep.used = true
	}
	for ri := range p.rest {
		rp := &p.rest[ri]
		if rp.applied {
			continue
		}
		covered := true
		for t := range rp.tables {
			if !joined[t] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		bound, err := bind(rp.expr, cur.Schema())
		if err != nil {
			return nil, err
		}
		cur = engine.NewFilter(cur, bound)
		rp.applied = true
	}
	return cur, nil
}

// buildUpper adds aggregation, HAVING, projection, ORDER BY and LIMIT.
func (p *planner) buildUpper(cur engine.Iterator) (engine.Iterator, error) {
	var err error
	stmt := p.stmt
	hasAgg := len(stmt.GroupBy) > 0
	if !hasAgg {
		for _, it := range stmt.Items {
			if containsCall(it.Expr) {
				hasAgg = true
				break
			}
		}
	}
	if stmt.Having != nil && !hasAgg {
		return nil, fmt.Errorf("sql: HAVING requires aggregation")
	}

	var projections []engine.Projection
	var outNames []string

	if hasAgg {
		if stmt.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
		cur, projections, outNames, err = p.buildAggregate(cur)
		if err != nil {
			return nil, err
		}
	} else {
		if stmt.Star {
			for i, c := range cur.Schema().Cols {
				projections = append(projections, engine.Projection{
					//cobra:hotalloc one projection per output column, at plan time
					Expr: &engine.ColRef{Idx: i, Name: c.Qualified()},
					Name: c.Name,
				})
				outNames = append(outNames, c.Name)
			}
		} else {
			for _, it := range stmt.Items {
				bound, err := bind(it.Expr, cur.Schema())
				if err != nil {
					return nil, err
				}
				name := it.Alias
				if name == "" {
					name = it.Expr.String()
				}
				projections = append(projections, engine.Projection{Expr: bound, Name: name})
				outNames = append(outNames, name)
			}
		}
	}

	// ORDER BY binds against the pre-projection schema via select-item
	// rewriting: an order key may be a select alias, a select expression, or
	// (in non-aggregate queries) any input expression.
	var sortKeys []engine.SortKey
	if len(stmt.OrderBy) > 0 {
		for _, o := range stmt.OrderBy {
			// Alias or textual match against a select item?
			if idx := matchSelectItem(o.Expr, stmt.Items, outNames); idx >= 0 {
				sortKeys = append(sortKeys, engine.SortKey{
					Expr: projections[idx].Expr,
					Desc: o.Desc,
				})
				continue
			}
			if hasAgg {
				bound, err := p.rewriteAggExpr(o.Expr)
				if err != nil {
					return nil, fmt.Errorf("sql: ORDER BY %s: %w", o.Expr, err)
				}
				sortKeys = append(sortKeys, engine.SortKey{Expr: bound, Desc: o.Desc})
				continue
			}
			bound, err := bind(o.Expr, cur.Schema())
			if err != nil {
				return nil, fmt.Errorf("sql: ORDER BY %s: %w", o.Expr, err)
			}
			sortKeys = append(sortKeys, engine.SortKey{Expr: bound, Desc: o.Desc})
		}
		cur = engine.NewSort(cur, sortKeys)
	}

	cur = engine.NewProject(cur, projections)
	if stmt.Limit >= 0 {
		cur = engine.NewLimit(cur, stmt.Limit)
	}
	return cur, nil
}

// matchSelectItem matches an ORDER BY expression against select items by
// alias or by textual equality, returning the item index or -1.
func matchSelectItem(e Expr, items []SelectItem, outNames []string) int {
	if id, ok := e.(*Ident); ok && id.Table == "" {
		for i, n := range outNames {
			if strings.EqualFold(n, id.Name) {
				return i
			}
		}
	}
	s := e.String()
	for i, it := range items {
		if it.Expr.String() == s {
			return i
		}
	}
	return -1
}

func containsCall(e Expr) bool {
	switch x := e.(type) {
	case *Call:
		return true
	case *Binary:
		return containsCall(x.L) || containsCall(x.R)
	case *Unary:
		return containsCall(x.E)
	case *InExpr:
		if containsCall(x.E) {
			return true
		}
		for _, v := range x.List {
			if containsCall(v) {
				return true
			}
		}
	case *BetweenExpr:
		return containsCall(x.E) || containsCall(x.Lo) || containsCall(x.Hi)
	case *LikeExpr:
		return containsCall(x.E)
	case *CaseExpr:
		for _, w := range x.Whens {
			if containsCall(w.Cond) || containsCall(w.Result) {
				return true
			}
		}
		return x.Else != nil && containsCall(x.Else)
	}
	return false
}

// aggContext is established by buildAggregate for post-aggregation
// rewriting.
type aggContext struct {
	groupIdx map[string]int // group expr string -> output column
	aggIdx   map[string]int // agg call string -> output column
	schema   *relation.Schema
}

var aggCtxKinds = map[string]engine.AggKind{
	"SUM": engine.AggSum, "COUNT": engine.AggCount, "AVG": engine.AggAvg,
	"MIN": engine.AggMin, "MAX": engine.AggMax,
}

func (p *planner) buildAggregate(cur engine.Iterator) (engine.Iterator, []engine.Projection, []string, error) {
	stmt := p.stmt

	// Bind group keys.
	var keys []engine.Expr
	var keyNames []string
	groupIdx := make(map[string]int)
	for _, g := range stmt.GroupBy {
		bound, err := bind(g, cur.Schema())
		if err != nil {
			return nil, nil, nil, err
		}
		keys = append(keys, bound)
		name := g.String()
		groupIdx[name] = len(keyNames)
		keyNames = append(keyNames, name)
	}

	// Collect aggregate calls from select items, HAVING, ORDER BY.
	aggIdx := make(map[string]int)
	var specs []engine.AggSpec
	collect := func(e Expr) error {
		var walk func(Expr) error
		walk = func(e Expr) error {
			switch x := e.(type) {
			case *Call:
				key := x.String()
				if _, seen := aggIdx[key]; seen {
					return nil
				}
				kind, ok := aggCtxKinds[x.Func]
				if !ok {
					return fmt.Errorf("sql: unknown aggregate %q", x.Func)
				}
				var arg engine.Expr
				if !x.Star {
					if containsCall(x.Arg) {
						return fmt.Errorf("sql: nested aggregates in %s", x)
					}
					bound, err := bind(x.Arg, cur.Schema())
					if err != nil {
						return err
					}
					arg = bound
				}
				aggIdx[key] = len(keyNames) + len(specs)
				specs = append(specs, engine.AggSpec{Kind: kind, Arg: arg, Name: key})
				return nil
			case *Binary:
				if err := walk(x.L); err != nil {
					return err
				}
				return walk(x.R)
			case *Unary:
				return walk(x.E)
			case *InExpr:
				if err := walk(x.E); err != nil {
					return err
				}
				for _, v := range x.List {
					if err := walk(v); err != nil {
						return err
					}
				}
				return nil
			case *BetweenExpr:
				if err := walk(x.E); err != nil {
					return err
				}
				if err := walk(x.Lo); err != nil {
					return err
				}
				return walk(x.Hi)
			case *LikeExpr:
				return walk(x.E)
			case *CaseExpr:
				for _, w := range x.Whens {
					if err := walk(w.Cond); err != nil {
						return err
					}
					if err := walk(w.Result); err != nil {
						return err
					}
				}
				if x.Else != nil {
					return walk(x.Else)
				}
			}
			return nil
		}
		return walk(e)
	}
	for _, it := range stmt.Items {
		if err := collect(it.Expr); err != nil {
			return nil, nil, nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, nil, nil, err
		}
	}

	gb, err := engine.NewGroupBy(cur, keys, keyNames, specs)
	if err != nil {
		return nil, nil, nil, err
	}
	var out engine.Iterator = gb

	p.aggCtx = &aggContext{groupIdx: groupIdx, aggIdx: aggIdx, schema: gb.Schema()}

	// HAVING.
	if stmt.Having != nil {
		bound, err := p.rewriteAggExpr(stmt.Having)
		if err != nil {
			return nil, nil, nil, err
		}
		out = engine.NewFilter(out, bound)
	}

	// Select items over the aggregate output.
	var projections []engine.Projection
	var outNames []string
	for _, it := range stmt.Items {
		bound, err := p.rewriteAggExpr(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		projections = append(projections, engine.Projection{Expr: bound, Name: name})
		outNames = append(outNames, name)
	}
	return out, projections, outNames, nil
}

// rewriteAggExpr rewrites an expression over the aggregate output schema:
// aggregate calls and group expressions become column references; the rest
// must be literals or arithmetic over them.
func (p *planner) rewriteAggExpr(e Expr) (engine.Expr, error) {
	ctx := p.aggCtx
	if idx, ok := ctx.groupIdx[e.String()]; ok {
		return &engine.ColRef{Idx: idx, Name: e.String()}, nil
	}
	switch x := e.(type) {
	case *Call:
		idx, ok := ctx.aggIdx[x.String()]
		if !ok {
			return nil, fmt.Errorf("sql: aggregate %s was not collected", x)
		}
		return &engine.ColRef{Idx: idx, Name: x.String()}, nil
	case *Ident:
		return nil, fmt.Errorf("sql: column %s must appear in GROUP BY or inside an aggregate", x)
	case *NumberLit, *StringLit, *BoolLit, *NullLit:
		return bindLit(e), nil
	case *Binary:
		l, err := p.rewriteAggExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := p.rewriteAggExpr(x.R)
		if err != nil {
			return nil, err
		}
		return combineBinary(x.Op, l, r)
	case *Unary:
		inner, err := p.rewriteAggExpr(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "-" {
			return &engine.Neg{E: inner}, nil
		}
		return &engine.Logic{Op: engine.OpNot, L: inner}, nil
	case *BetweenExpr:
		ei, err := p.rewriteAggExpr(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := p.rewriteAggExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := p.rewriteAggExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		return &engine.Between{E: ei, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *CaseExpr:
		out := &engine.Case{}
		for _, w := range x.Whens {
			cond, err := p.rewriteAggExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			result, err := p.rewriteAggExpr(w.Result)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, engine.CaseWhen{When: cond, Then: result})
		}
		if x.Else != nil {
			alt, err := p.rewriteAggExpr(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = alt
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sql: unsupported post-aggregation expression %s", e)
	}
}
