package sql

import (
	"math"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/engine"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/relation"
)

// testCatalog builds the Figure-1 telephony database (concrete values).
func testCatalog() engine.Catalog {
	cust := relation.NewRelation("Cust", relation.NewSchema(
		relation.Column{Name: "ID", Kind: relation.KindInt},
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Zip", Kind: relation.KindString},
	))
	for _, r := range []struct {
		id   int64
		plan string
		zip  string
	}{
		{1, "A", "10001"}, {2, "F1", "10001"}, {3, "SB1", "10002"},
		{4, "Y1", "10001"}, {5, "V", "10001"}, {6, "E", "10002"}, {7, "SB2", "10002"},
	} {
		cust.Append(relation.Int(r.id), relation.Str(r.plan), relation.Str(r.zip))
	}

	calls := relation.NewRelation("Calls", relation.NewSchema(
		relation.Column{Name: "CID", Kind: relation.KindInt},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
		relation.Column{Name: "Dur", Kind: relation.KindFloat},
	))
	durs := map[int64][2]float64{
		1: {522, 480}, 2: {364, 327}, 3: {779, 805}, 4: {253, 290},
		5: {168, 121}, 6: {1044, 1130}, 7: {697, 671},
	}
	for cid, d := range durs {
		calls.Append(relation.Int(cid), relation.Int(1), relation.Float(d[0]))
		calls.Append(relation.Int(cid), relation.Int(3), relation.Float(d[1]))
	}

	plans := relation.NewRelation("Plans", relation.NewSchema(
		relation.Column{Name: "Plan", Kind: relation.KindString},
		relation.Column{Name: "Mo", Kind: relation.KindInt},
		relation.Column{Name: "Price", Kind: relation.KindFloat},
	))
	prices := map[string][2]float64{
		"A": {0.4, 0.5}, "F1": {0.35, 0.35}, "Y1": {0.3, 0.25}, "V": {0.25, 0.2},
		"SB1": {0.1, 0.1}, "SB2": {0.1, 0.15}, "E": {0.05, 0.05},
	}
	for plan, p := range prices {
		plans.Append(relation.Str(plan), relation.Int(1), relation.Float(p[0]))
		plans.Append(relation.Str(plan), relation.Int(3), relation.Float(p[1]))
	}

	return engine.Catalog{"Cust": cust, "Calls": calls, "Plans": plans}
}

const revenueQuery = `
SELECT Cust.Zip, SUM(Calls.Dur * Plans.Price) AS revenue
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan
  AND Cust.ID = Calls.CID
  AND Calls.Mo = Plans.Mo
GROUP BY Cust.Zip
ORDER BY Cust.Zip`

func TestRunningExampleQueryConcrete(t *testing.T) {
	out, err := Run(revenueQuery, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d, want 2", out.Len())
	}
	// Expected revenues are the coefficient sums of P1 and P2 in Example 2.
	want := map[string]float64{
		"10001": 208.8 + 240 + 127.4 + 114.45 + 75.9 + 72.5 + 42 + 24.2,
		"10002": 77.9 + 80.5 + 52.2 + 56.5 + 69.7 + 100.65,
	}
	for _, row := range out.Rows {
		zip := row.Values[0].S
		got, _ := row.Values[1].AsFloat()
		if math.Abs(got-want[zip]) > 1e-9 {
			t.Errorf("zip %s: revenue = %v, want %v", zip, got, want[zip])
		}
	}
}

func TestParseRoundsTrip(t *testing.T) {
	stmt, err := Parse(revenueQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 3 || len(stmt.GroupBy) != 1 || stmt.Limit != -1 {
		t.Fatalf("parsed: %+v", stmt)
	}
	if got := stmt.String(); !strings.Contains(got, "GROUP BY Cust.Zip") {
		t.Fatalf("String() = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t ORDER",
		"SELECT a b c FROM t",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM t WHERE a LIKE 5",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT 'unterminated FROM t",
		"SELECT a! FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"SELECT x FROM NoSuchTable",
		"SELECT NoSuchCol FROM Cust",
		"SELECT Plan FROM Cust, Plans",            // ambiguous
		"SELECT Cust.Zip FROM Cust, Cust",         // duplicate alias
		"SELECT Zip, SUM(ID) FROM Cust",           // Zip not grouped
		"SELECT Zip FROM Cust HAVING Zip <> ''",   // HAVING without aggregation
		"SELECT * , Zip FROM Cust",                // star + items unsupported syntax
		"SELECT SUM(SUM(ID)) FROM Cust",           // nested aggregate
		"SELECT Zip FROM Cust ORDER BY NoSuchCol", // unknown order key
		"SELECT ID FROM Cust WHERE ID IN (Zip)",   // non-literal IN list
		"SELECT * FROM Cust GROUP BY Zip",         // star with aggregation
	}
	for _, q := range bad {
		if _, err := Run(q, cat); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestSelectStarAndWhere(t *testing.T) {
	out, err := Run("SELECT * FROM Cust WHERE Zip = '10002'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.Schema.Len() != 3 {
		t.Fatalf("rows=%d cols=%d", out.Len(), out.Schema.Len())
	}
}

func TestWhereInBetweenLike(t *testing.T) {
	cat := testCatalog()
	out, err := Run("SELECT ID FROM Cust WHERE Plan IN ('SB1', 'SB2')", cat)
	if err != nil || out.Len() != 2 {
		t.Fatalf("IN: %d rows, %v", out.Len(), err)
	}
	out, err = Run("SELECT ID FROM Cust WHERE ID BETWEEN 2 AND 4", cat)
	if err != nil || out.Len() != 3 {
		t.Fatalf("BETWEEN: %d rows, %v", out.Len(), err)
	}
	out, err = Run("SELECT ID FROM Cust WHERE Plan LIKE 'SB%'", cat)
	if err != nil || out.Len() != 2 {
		t.Fatalf("LIKE: %d rows, %v", out.Len(), err)
	}
	out, err = Run("SELECT ID FROM Cust WHERE Plan NOT LIKE 'SB%' AND NOT Zip = '10001'", cat)
	if err != nil || out.Len() != 1 {
		t.Fatalf("NOT: %d rows, %v", out.Len(), err)
	}
	out, err = Run("SELECT ID FROM Cust WHERE ID = 1 OR ID = 7", cat)
	if err != nil || out.Len() != 2 {
		t.Fatalf("OR: %d rows, %v", out.Len(), err)
	}
}

func TestExplicitJoinSyntax(t *testing.T) {
	q := `SELECT Cust.ID FROM Cust JOIN Calls ON Cust.ID = Calls.CID WHERE Calls.Mo = 1`
	out, err := Run(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 7 {
		t.Fatalf("rows = %d, want 7", out.Len())
	}
	q2 := `SELECT c.ID FROM Cust AS c INNER JOIN Calls AS l ON c.ID = l.CID WHERE l.Mo = 3 AND c.Zip = '10001'`
	out, err = Run(q2, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("aliased join rows = %d, want 4", out.Len())
	}
}

func TestAggregatesAndHaving(t *testing.T) {
	q := `SELECT Zip, COUNT(*) AS n, MIN(ID) lo, MAX(ID) hi
	      FROM Cust GROUP BY Zip HAVING COUNT(*) > 3 ORDER BY Zip`
	out, err := Run(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (only 10001 has 4 customers)", out.Len())
	}
	r := out.Rows[0]
	if r.Values[0].S != "10001" || r.Values[1].I != 4 || r.Values[2].I != 1 || r.Values[3].I != 5 {
		t.Fatalf("row = %v", r.Values)
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	out, err := Run("SELECT COUNT(*) AS n, AVG(ID) FROM Cust", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0].Values[0].I != 7 || out.Rows[0].Values[1].F != 4 {
		t.Fatalf("row = %v", out.Rows[0].Values)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	out, err := Run("SELECT ID FROM Cust ORDER BY ID DESC LIMIT 3", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.Rows[0].Values[0].I != 7 || out.Rows[2].Values[0].I != 5 {
		t.Fatalf("rows = %v", out.Rows)
	}
}

func TestOrderByAliasAndAggregate(t *testing.T) {
	q := `SELECT Zip, COUNT(*) AS n FROM Cust GROUP BY Zip ORDER BY n DESC`
	out, err := Run(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[1].I != 4 {
		t.Fatalf("first row should be the larger group: %v", out.Rows)
	}
	// Ordering by an aggregate not in the select list.
	q2 := `SELECT Zip FROM Cust GROUP BY Zip ORDER BY COUNT(*) ASC`
	out, err = Run(q2, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[0].S != "10002" {
		t.Fatalf("rows = %v", out.Rows)
	}
}

func TestArithmeticInSelect(t *testing.T) {
	out, err := Run("SELECT ID * 2 + 1 AS x FROM Cust WHERE ID = 3", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[0].I != 7 {
		t.Fatalf("x = %v", out.Rows[0].Values[0])
	}
	out, err = Run("SELECT -ID AS neg FROM Cust WHERE ID = 3", testCatalog())
	if err != nil || out.Rows[0].Values[0].I != -3 {
		t.Fatalf("neg = %v, %v", out.Rows, err)
	}
}

func TestSymbolicQueryThroughSQL(t *testing.T) {
	// Parameterize prices: Price -> Price · p_<plan> · m_<mo>, then run the
	// revenue query and check we get Example 2's P1 exactly.
	cat := testCatalog()
	names := polynomial.NewNames()
	plans := cat["Plans"].Clone()
	varFor := map[string]string{
		"A": "p1", "F1": "f1", "Y1": "y1", "V": "v", "SB1": "b1", "SB2": "b2", "E": "e",
	}
	for i := range plans.Rows {
		plan := plans.Rows[i].Values[0].S
		mo := plans.Rows[i].Values[1].I
		price := plans.Rows[i].Values[2].F
		moVar := "m1"
		if mo == 3 {
			moVar = "m3"
		}
		p := polynomial.New(polynomial.Mono(price,
			polynomial.T(names.Var(varFor[plan])), polynomial.T(names.Var(moVar))))
		plans.Rows[i].Values[2] = relation.Poly(p)
	}
	cat["Plans"] = plans

	out, err := Run(revenueQuery, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	p1 := polynomial.MustParse(
		"208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", names)
	p2 := polynomial.MustParse(
		"77.9*b1*m1 + 80.5*b1*m3 + 52.2*e*m1 + 56.5*e*m3 + 69.7*b2*m1 + 100.65*b2*m3", names)
	for _, row := range out.Rows {
		got := row.Values[1]
		if got.Kind != relation.KindPoly {
			t.Fatalf("revenue kind = %s", got.Kind)
		}
		want := p1
		if row.Values[0].S == "10002" {
			want = p2
		}
		if !polynomial.AlmostEqual(got.P, want, 1e-9) {
			t.Fatalf("zip %s: %s", row.Values[0].S, got.P.String(names))
		}
	}
}

func TestCommentsAndCaseInsensitivity(t *testing.T) {
	q := `select id -- trailing comment
	      from Cust where zip = '10001' order by id limit 2`
	out, err := Run(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Rows[0].Values[0].I != 1 {
		t.Fatalf("rows = %v", out.Rows)
	}
}

func TestEscapedQuoteInString(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE s = 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	b := stmt.Where.(*Binary)
	if b.R.(*StringLit).Val != "O'Brien" {
		t.Fatalf("string = %q", b.R.(*StringLit).Val)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	// No equi predicate between Cust and Plans: planner must fall back to a
	// nested-loop cross join and still apply the non-equi predicate.
	q := `SELECT Cust.ID FROM Cust, Plans WHERE Cust.ID > 6 AND Plans.Mo = 1`
	out, err := Run(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 7 { // 1 customer × 7 plans
		t.Fatalf("rows = %d, want 7", out.Len())
	}
}

func TestCaseExpression(t *testing.T) {
	cat := testCatalog()
	// Non-aggregate CASE in SELECT.
	out, err := Run(`SELECT ID, CASE WHEN Zip = '10001' THEN 'city' ELSE 'suburb' END AS area
	                 FROM Cust ORDER BY ID`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[1].S != "city" || out.Rows[2].Values[1].S != "suburb" {
		t.Fatalf("case rows: %v", out.Rows)
	}
	// CASE without ELSE yields NULL.
	out, err = Run(`SELECT CASE WHEN ID > 100 THEN 1 END AS x FROM Cust WHERE ID = 1`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0].Values[0].IsNull() {
		t.Fatalf("expected NULL, got %s", out.Rows[0].Values[0])
	}
	// Multiple WHEN branches, first match wins.
	out, err = Run(`SELECT CASE WHEN ID < 3 THEN 'low' WHEN ID < 6 THEN 'mid' ELSE 'high' END AS band
	                FROM Cust ORDER BY ID`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0].Values[0].S != "low" || out.Rows[3].Values[0].S != "mid" || out.Rows[6].Values[0].S != "high" {
		t.Fatalf("bands: %v", out.Rows)
	}
}

func TestCaseInsideAggregate(t *testing.T) {
	cat := testCatalog()
	out, err := Run(`SELECT Zip,
	                 SUM(CASE WHEN Plan LIKE 'SB%' THEN 1 ELSE 0 END) AS sb
	                 FROM Cust GROUP BY Zip ORDER BY Zip`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	if f, _ := out.Rows[0].Values[1].AsFloat(); f != 0 {
		t.Fatalf("10001 SB count = %v", out.Rows[0].Values[1])
	}
	if f, _ := out.Rows[1].Values[1].AsFloat(); f != 2 {
		t.Fatalf("10002 SB count = %v", out.Rows[1].Values[1])
	}
}

func TestCaseParseErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT CASE FROM t",
		"SELECT CASE WHEN 1 = 1 THEN 2 FROM t",
		"SELECT CASE WHEN 1 = 1 ELSE 2 END FROM t",
		"SELECT CASE WHEN THEN 2 END FROM t",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

// symbolicCatalog instruments the Figure-1 Plans prices so worker sweeps
// exercise the polynomial paths end to end.
func symbolicCatalog(t *testing.T, names *polynomial.Names) engine.Catalog {
	t.Helper()
	cat := testCatalog()
	plans := cat["Plans"].Clone()
	planIdx, _ := plans.Schema.Index("Plan")
	moIdx, _ := plans.Schema.Index("Mo")
	priceIdx, _ := plans.Schema.Index("Price")
	for ri := range plans.Rows {
		row := &plans.Rows[ri]
		base, _ := row.Values[priceIdx].AsFloat()
		p := polynomial.New(polynomial.Mono(base,
			polynomial.T(names.Var("p_"+row.Values[planIdx].S)),
			polynomial.T(names.Var("m"+row.Values[moIdx].String()))))
		row.Values[priceIdx] = relation.Poly(p)
	}
	cat["Plans"] = plans
	return cat
}

// sameResultRelation compares query outputs bit-exactly (floats via
// Float64bits, polynomials and annotations exactly).
func sameResultRelation(a, b *relation.Relation) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i].Values) != len(b.Rows[i].Values) {
			return false
		}
		for c := range a.Rows[i].Values {
			v, w := a.Rows[i].Values[c], b.Rows[i].Values[c]
			if v.Kind != w.Kind {
				return false
			}
			switch v.Kind {
			case relation.KindPoly:
				if !polynomial.Equal(v.P, w.P) {
					return false
				}
			case relation.KindFloat:
				if math.Float64bits(v.F) != math.Float64bits(w.F) {
					return false
				}
			default:
				if !v.Equal(w) {
					return false
				}
			}
		}
		if !polynomial.Equal(a.Rows[i].Ann, b.Rows[i].Ann) {
			return false
		}
	}
	return true
}

// TestRunNWorkerSweep: every query produces bit-identical results for
// Workers ∈ {1, 2, 8}, over both concrete and symbolic catalogs.
func TestRunNWorkerSweep(t *testing.T) {
	names := polynomial.NewNames()
	queries := []struct {
		name  string
		query string
		cat   engine.Catalog
	}{
		{"revenue-concrete", revenueQuery, testCatalog()},
		{"revenue-symbolic", revenueQuery, symbolicCatalog(t, names)},
		{"spj", "SELECT Cust.ID, Calls.Dur FROM Cust, Calls WHERE Cust.ID = Calls.CID AND Calls.Mo = 1 ORDER BY Cust.ID", testCatalog()},
		{"cross-pred", "SELECT c.ID, p.Plan FROM Cust c, Plans p WHERE c.ID < 3 AND p.Mo = 1 ORDER BY c.ID, p.Plan", testCatalog()},
		{"agg-having", "SELECT Zip, COUNT(*) AS n, AVG(ID) AS a FROM Cust GROUP BY Zip HAVING COUNT(*) > 1 ORDER BY Zip", testCatalog()},
		{"limit", "SELECT ID FROM Cust ORDER BY ID DESC LIMIT 3", testCatalog()},
		{"star-filter", "SELECT * FROM Cust WHERE Zip = '10002'", testCatalog()},
	}
	for _, q := range queries {
		want, err := RunN(q.query, q.cat, 1)
		if err != nil {
			t.Fatalf("%s sequential: %v", q.name, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := RunN(q.query, q.cat, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", q.name, workers, err)
			}
			if !sameResultRelation(want, got) {
				t.Fatalf("%s workers=%d diverged from sequential", q.name, workers)
			}
		}
	}
}
