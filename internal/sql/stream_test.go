package sql

import (
	"errors"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/relation"
)

// TestStreamMatchesRun: the streaming executor must deliver exactly Run's
// rows in Run's order, and Open must expose the result schema before
// execution.
func TestStreamMatchesRun(t *testing.T) {
	cat := testCatalog()
	query := `SELECT Cust.Zip, SUM(Calls.Dur * Plans.Price) AS revenue
	          FROM Calls, Cust, Plans
	          WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo
	          GROUP BY Cust.Zip ORDER BY Cust.Zip`

	want, err := Run(query, cat)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Open(query, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := it.Schema().Len(); got != want.Schema.Len() {
		t.Fatalf("Open schema has %d columns, Run result %d", got, want.Schema.Len())
	}

	var rows []relation.Tuple
	if err := Stream(query, cat, func(tu relation.Tuple) error {
		// Streamed tuples are valid only until the callback returns
		// (row-validity contract): clone to retain.
		rows = append(rows, tu.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want.Rows) {
		t.Fatalf("streamed %d rows, Run produced %d", len(rows), len(want.Rows))
	}
	for i := range rows {
		for j := range rows[i].Values {
			if rows[i].Values[j].String() != want.Rows[i].Values[j].String() {
				t.Fatalf("row %d col %d: %s vs %s", i, j,
					rows[i].Values[j].String(), want.Rows[i].Values[j].String())
			}
		}
	}
}

// TestStreamErrors: parse and plan failures surface before any row is
// delivered; a callback error aborts the stream.
func TestStreamErrors(t *testing.T) {
	cat := testCatalog()
	if err := Stream("SELECT FROM", cat, func(relation.Tuple) error { return nil }); err == nil {
		t.Fatal("want parse error")
	}
	if err := Stream("SELECT x.y FROM Nope", cat, func(relation.Tuple) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "Nope") {
		t.Fatalf("want unknown-table error, got %v", err)
	}
	boom := errors.New("stop")
	calls := 0
	err := Stream("SELECT Cust.ID FROM Cust", cat, func(relation.Tuple) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want callback error, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after failing, want 1", calls)
	}
}
