package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes the current token; it never advances past EOF, so callers
// can keep peeking safely after a premature end of input.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s, got %s", kw, t)
	}
	p.next()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	// Select list.
	if p.acceptSymbol("*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				t := p.next()
				if t.kind != tokIdent {
					return nil, p.errf("expected alias after AS, got %s", t)
				}
				item.Alias = t.Name()
			} else if p.peek().kind == tokIdent {
				item.Alias = p.next().Name()
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	// FROM.
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var joinConds []Expr
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		// INNER JOIN chains.
		for {
			save := p.pos
			if p.acceptKeyword("INNER") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else if !p.acceptKeyword("JOIN") {
				p.pos = save
				break
			}
			jr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, jr)
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			joinConds = append(joinConds, cond)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}

	// WHERE.
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	for _, c := range joinConds {
		if stmt.Where == nil {
			stmt.Where = c
		} else {
			//cobra:hotalloc the parser's output AST allocates one node per operator, once per query text
			stmt.Where = &Binary{Op: "AND", L: stmt.Where, R: c}
		}
	}

	// GROUP BY.
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	// HAVING.
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}

	// ORDER BY.
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	// LIMIT.
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, got %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}

	return stmt, nil
}

// Name returns an identifier token's text.
func (t token) Name() string { return t.text }

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, p.errf("expected table name, got %s", t)
	}
	tr := TableRef{Name: t.Name(), Alias: t.Name()}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.kind != tokIdent {
			return TableRef{}, p.errf("expected alias after AS, got %s", a)
		}
		tr.Alias = a.Name()
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.next().Name()
	}
	return tr, nil
}

// Expression grammar, loosest to tightest: OR, AND, NOT, predicate
// (comparison / BETWEEN / IN / LIKE), additive, multiplicative, unary,
// primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		//cobra:hotalloc the parser's output AST allocates one node per operator, once per query text
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		//cobra:hotalloc the parser's output AST allocates one node per operator, once per query text
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Optional NOT before BETWEEN/IN/LIKE.
	not := false
	save := p.pos
	if p.acceptKeyword("NOT") {
		if t := p.peek(); t.kind == tokKeyword && (t.text == "BETWEEN" || t.text == "IN" || t.text == "LIKE") {
			not = true
		} else {
			p.pos = save
			return l, nil
		}
	}
	t := p.peek()
	switch {
	case t.kind == tokSymbol && isCmpSym(t.text):
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: t.text, L: l, R: r}, nil
	case t.kind == tokKeyword && t.text == "BETWEEN":
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not}, nil
	case t.kind == tokKeyword && t.text == "IN":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: not}, nil
	case t.kind == tokKeyword && t.text == "LIKE":
		p.next()
		s := p.next()
		if s.kind != tokString {
			return nil, p.errf("expected pattern string after LIKE, got %s", s)
		}
		return &LikeExpr{E: l, Pattern: s.text, Not: not}, nil
	}
	if not {
		return nil, p.errf("expected BETWEEN, IN or LIKE after NOT")
	}
	return l, nil
}

func isCmpSym(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			//cobra:hotalloc the parser's output AST allocates one node per operator, once per query text
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			//cobra:hotalloc the parser's output AST allocates one node per operator, once per query text
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

// parseCase parses a searched CASE (the CASE keyword is already consumed):
// WHEN cond THEN expr [WHEN ...] [ELSE expr] END.
func (p *parser) parseCase() (Expr, error) {
	e := &CaseExpr{}
	for {
		if err := p.expectKeyword("WHEN"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Whens = append(e.Whens, CaseBranch{Cond: cond, Result: result})
		if t := p.peek(); t.kind == tokKeyword && t.text == "WHEN" {
			continue
		}
		break
	}
	if p.acceptKeyword("ELSE") {
		alt, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.Else = alt
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return e, nil
}

var aggFuncs = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &NumberLit{F: f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &NumberLit{IsInt: true, I: i, F: float64(i)}, nil
	case t.kind == tokString:
		p.next()
		return &StringLit{Val: t.text}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return &NullLit{}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		return &BoolLit{Val: t.text == "TRUE"}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		p.next()
		return p.parseCase()
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.next()
		name := t.Name()
		up := strings.ToUpper(name)
		// Aggregate call?
		if aggFuncs[up] && p.peek().kind == tokSymbol && p.peek().text == "(" {
			p.next() // consume '('
			if p.acceptSymbol("*") {
				if up != "COUNT" {
					return nil, p.errf("only COUNT accepts *")
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &Call{Func: up, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &Call{Func: up, Arg: arg}, nil
		}
		// Qualified identifier?
		if p.peek().kind == tokSymbol && p.peek().text == "." {
			p.next()
			c := p.next()
			if c.kind != tokIdent {
				return nil, p.errf("expected column after %q., got %s", name, c)
			}
			return &Ident{Table: name, Name: c.Name()}, nil
		}
		return &Ident{Name: name}, nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}
