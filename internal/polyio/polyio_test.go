package polyio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

func sampleSet(t testing.TB) *polynomial.Set {
	t.Helper()
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("10001", polynomial.MustParse("208.8*p1*m1 + 240*p1*m3 - 2*x^3", names))
	set.Add("10002", polynomial.MustParse("77.9*b1*m1 + 0.5", names))
	set.Add("empty", polynomial.Zero())
	return set
}

func setsEqual(a, b *polynomial.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
		// Compare via string rendering in each namespace.
		if a.Polys[i].String(a.Names) != b.Polys[i].String(b.Names) {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetText(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetText(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEqual(set, back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", set, back)
	}
}

func TestTextRejectsBadKeys(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("bad\tkey", polynomial.Const(1))
	if err := WriteSetText(&bytes.Buffer{}, set); err == nil {
		t.Fatal("tab in key should be rejected")
	}
}

func TestTextReadErrors(t *testing.T) {
	if _, err := ReadSetText(strings.NewReader("no tab here"), nil); err == nil {
		t.Fatal("missing tab should error")
	}
	if _, err := ReadSetText(strings.NewReader("k\t2**x"), nil); err == nil {
		t.Fatal("bad polynomial should error")
	}
	// Comments and blank lines are fine.
	set, err := ReadSetText(strings.NewReader("# comment\n\nk\t2*x\n"), nil)
	if err != nil || set.Len() != 1 {
		t.Fatalf("comment handling: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetJSON(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetJSON(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEqual(set, back) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestJSONReadErrors(t *testing.T) {
	if _, err := ReadSetJSON(strings.NewReader("{"), nil); err == nil {
		t.Fatal("truncated JSON should error")
	}
	bad := `{"variables":["x"],"polynomials":[{"key":"k","monomials":[{"coef":1,"terms":[[5,1]]}]}]}`
	if _, err := ReadSetJSON(strings.NewReader(bad), nil); err == nil {
		t.Fatal("out-of-range variable index should error")
	}
	bad2 := `{"variables":["x"],"polynomials":[{"key":"k","monomials":[{"coef":1,"terms":[[0,0]]}]}]}`
	if _, err := ReadSetJSON(strings.NewReader(bad2), nil); err == nil {
		t.Fatal("zero exponent should error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEqual(set, back) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadSetBinary(strings.NewReader("not the magic"), nil); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadSetBinary(strings.NewReader(""), nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestBinaryLargeRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	for v := 0; v < 50; v++ {
		names.Var(strings.Repeat("v", 1+v%3) + string(rune('a'+v%26)) + string(rune('0'+v%10)))
	}
	for g := 0; g < 40; g++ {
		var b polynomial.Builder
		for m := 0; m < r.Intn(60); m++ {
			var terms []polynomial.Term
			for k := 0; k < r.Intn(4); k++ {
				terms = append(terms, polynomial.TExp(polynomial.Var(r.Intn(50)), int32(1+r.Intn(4))))
			}
			b.Add(r.NormFloat64()*100, terms...)
		}
		set.Add(strings.Repeat("g", 1+g%4)+string(rune('0'+g%10)), b.Polynomial())
	}
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != set.Size() || back.Len() != set.Len() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", back.Size(), back.Len(), set.Size(), set.Len())
	}
	// Evaluation agreement under a random valuation is a strong equality
	// check independent of printing.
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = r.Float64()*2 - 1
	}
	for i := range set.Polys {
		a := set.Polys[i].EvalDense(vals)
		b := back.Polys[i].EvalDense(vals)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("poly %d: %v vs %v", i, a, b)
		}
	}
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	names := polynomial.NewNames()
	a := valuation.New(names)
	a.SetVar(names.Var("m3"), 0.8)
	a.SetVar(names.Var("b1"), 1.1)
	var buf bytes.Buffer
	if err := WriteAssignmentJSON(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAssignmentJSON(&buf, names)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("entries = %d", back.Len())
	}
	m3, _ := names.Lookup("m3")
	if back.Get(m3) != 0.8 {
		t.Fatal("value mismatch")
	}
	if _, err := ReadAssignmentJSON(strings.NewReader("nope"), names); err == nil {
		t.Fatal("bad JSON should error")
	}
}
