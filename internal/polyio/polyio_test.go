package polyio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

func sampleSet(t testing.TB) *polynomial.Set {
	t.Helper()
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("10001", polynomial.MustParse("208.8*p1*m1 + 240*p1*m3 - 2*x^3", names))
	set.Add("10002", polynomial.MustParse("77.9*b1*m1 + 0.5", names))
	set.Add("empty", polynomial.Zero())
	return set
}

func setsEqual(a, b *polynomial.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
		// Compare via string rendering in each namespace.
		if a.Polys[i].String(a.Names) != b.Polys[i].String(b.Names) {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetText(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetText(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEqual(set, back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", set, back)
	}
}

// TestTextAwkwardKeysRoundTrip: keys the old writer emitted raw — and the
// old reader then skipped as comments, trimmed, or rejected — must now
// round-trip exactly via quoting.
func TestTextAwkwardKeysRoundTrip(t *testing.T) {
	keys := []string{
		"#looks like a comment",
		"",
		"  leading and trailing  ",
		"\tstarts with tab",
		"embedded\ttab",
		"embedded\nnewline",
		"trailing carriage\r",
		`"already quoted"`,
		"# cobra provenance set v1", // the header line itself
		"plain key stays plain",
		"internal  spaces  survive",
	}
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	for _, k := range keys {
		set.Add(k, polynomial.MustParse("2*x", names))
	}
	var buf bytes.Buffer
	if err := WriteSetText(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetText(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(keys) {
		t.Fatalf("read %d keys, want %d (comment-skipping dropped lines?)", back.Len(), len(keys))
	}
	for i, k := range keys {
		if back.Keys[i] != k {
			t.Fatalf("key %d: %q round-tripped as %q", i, k, back.Keys[i])
		}
	}
}

// TestTextKeyNotTrimmed: the key portion of a hand-written line is taken
// verbatim, not whitespace-trimmed.
func TestTextKeyNotTrimmed(t *testing.T) {
	set, err := ReadSetText(strings.NewReader(" spaced key \t2*x\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 || set.Keys[0] != " spaced key " {
		t.Fatalf("key = %q", set.Keys[0])
	}
	bad := textHeaderV2 + "\n\"bad quote\t1\n"
	if _, err := ReadSetText(strings.NewReader(bad), nil); err == nil {
		t.Fatal("malformed quoted key in a v2 file should error")
	}
}

// TestTextLegacyFilesReadVerbatim: files written before the v2 escape
// syntax (v1 header or none) must read back unchanged — including keys
// that happen to start with '"', which v2 would treat as quoted.
func TestTextLegacyFilesReadVerbatim(t *testing.T) {
	legacy := "# cobra provenance set v1\n" +
		"\"q\"\t2*x\n" + // a legal v1 key that looks quoted
		"\"5\t3*y\n" + // unbalanced quote, also legal in v1
		"plain\t7\n"
	set, err := ReadSetText(strings.NewReader(legacy), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`"q"`, `"5`, "plain"}
	if set.Len() != len(want) {
		t.Fatalf("len = %d", set.Len())
	}
	for i, k := range want {
		if set.Keys[i] != k {
			t.Fatalf("key %d: %q read as %q", i, k, set.Keys[i])
		}
	}
	// Headerless files get the same verbatim treatment.
	set2, err := ReadSetText(strings.NewReader("\"q\"\t2*x\n"), nil)
	if err != nil || set2.Keys[0] != `"q"` {
		t.Fatalf("headerless: %v %q", err, set2.Keys[0])
	}
}

func TestTextReadErrors(t *testing.T) {
	if _, err := ReadSetText(strings.NewReader("no tab here"), nil); err == nil {
		t.Fatal("missing tab should error")
	}
	if _, err := ReadSetText(strings.NewReader("k\t2**x"), nil); err == nil {
		t.Fatal("bad polynomial should error")
	}
	// Comments and blank lines are fine.
	set, err := ReadSetText(strings.NewReader("# comment\n\nk\t2*x\n"), nil)
	if err != nil || set.Len() != 1 {
		t.Fatalf("comment handling: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetJSON(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetJSON(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEqual(set, back) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestJSONReadErrors(t *testing.T) {
	if _, err := ReadSetJSON(strings.NewReader("{"), nil); err == nil {
		t.Fatal("truncated JSON should error")
	}
	bad := `{"variables":["x"],"polynomials":[{"key":"k","monomials":[{"coef":1,"terms":[[5,1]]}]}]}`
	if _, err := ReadSetJSON(strings.NewReader(bad), nil); err == nil {
		t.Fatal("out-of-range variable index should error")
	}
	bad2 := `{"variables":["x"],"polynomials":[{"key":"k","monomials":[{"coef":1,"terms":[[0,0]]}]}]}`
	if _, err := ReadSetJSON(strings.NewReader(bad2), nil); err == nil {
		t.Fatal("zero exponent should error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEqual(set, back) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadSetBinary(strings.NewReader("not the magic"), nil); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadSetBinary(strings.NewReader(""), nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestBinaryLargeRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	for v := 0; v < 50; v++ {
		names.Var(strings.Repeat("v", 1+v%3) + string(rune('a'+v%26)) + string(rune('0'+v%10)))
	}
	for g := 0; g < 40; g++ {
		var b polynomial.Builder
		for m := 0; m < r.Intn(60); m++ {
			var terms []polynomial.Term
			for k := 0; k < r.Intn(4); k++ {
				terms = append(terms, polynomial.TExp(polynomial.Var(r.Intn(50)), int32(1+r.Intn(4))))
			}
			b.Add(r.NormFloat64()*100, terms...)
		}
		set.Add(strings.Repeat("g", 1+g%4)+string(rune('0'+g%10)), b.Polynomial())
	}
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != set.Size() || back.Len() != set.Len() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", back.Size(), back.Len(), set.Size(), set.Len())
	}
	// Evaluation agreement under a random valuation is a strong equality
	// check independent of printing.
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = r.Float64()*2 - 1
	}
	for i := range set.Polys {
		a := set.Polys[i].EvalDense(vals)
		b := back.Polys[i].EvalDense(vals)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("poly %d: %v vs %v", i, a, b)
		}
	}
}

// TestBinaryReadsLegacyFullTableStreams: v1 files written before the
// used-vars-only table (the old writer emitted the entire namespace and
// raw Var ids as indices) must still decode unchanged.
func TestBinaryReadsLegacyFullTableStreams(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CPRVB1\n")
	var scratch [binary.MaxVarintLen64]byte
	uv := func(x uint64) {
		n := binary.PutUvarint(scratch[:], x)
		buf.Write(scratch[:n])
	}
	str := func(s string) { uv(uint64(len(s))); buf.WriteString(s) }
	f64 := func(f float64) {
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(f))
		buf.Write(bits[:])
	}
	// Namespace: unused0 (Var 0), x (Var 1), y (Var 2) — the old writer
	// wrote all three and referenced x, y by their raw Var ids.
	uv(3)
	str("unused0")
	str("x")
	str("y")
	uv(1)    // one polynomial
	str("k") // key
	uv(2)    // two monomials
	f64(7)   // constant 7
	uv(0)    // no terms
	f64(2)   // 2*x*y
	uv(2)    // two terms
	uv(1)    // x (raw Var id, as the old writer encoded it)
	uv(1)    // ^1
	uv(2)    // y
	uv(1)    // ^1
	set, err := ReadSetBinary(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 || set.Keys[0] != "k" {
		t.Fatalf("legacy decode: %v", set.Keys)
	}
	if got := set.Polys[0].String(set.Names); got != "7 + 2*x*y" {
		t.Fatalf("legacy decode: %q", got)
	}
	// The legacy stream interned its full table, unused names included —
	// that is precisely the leak the new writer fixes.
	if set.Names.Len() != 3 {
		t.Fatalf("legacy namespace: %d vars", set.Names.Len())
	}
}

// TestBinaryRejectsOutOfRangeVars: a Term whose Var is outside the
// namespace must be an explicit write error, not a silently corrupt
// stream (the old writer truncated it through a uint32 cast).
func TestBinaryRejectsOutOfRangeVars(t *testing.T) {
	names := polynomial.NewNames()
	names.Var("x")
	set := polynomial.NewSet(names)
	set.Add("k", polynomial.Polynomial{Mons: []polynomial.Monomial{
		{Coef: 1, Terms: []polynomial.Term{{Var: 99, Exp: 1}}},
	}})
	if err := WriteSetBinary(&bytes.Buffer{}, set); err == nil {
		t.Fatal("out-of-namespace variable should be a write error")
	}
	if err := WriteSetJSON(&bytes.Buffer{}, set); err == nil {
		t.Fatal("out-of-namespace variable should be a JSON write error")
	}
	neg := polynomial.NewSet(names)
	neg.Add("k", polynomial.Polynomial{Mons: []polynomial.Monomial{
		{Coef: 1, Terms: []polynomial.Term{{Var: -5, Exp: 1}}},
	}})
	if err := WriteSetBinary(&bytes.Buffer{}, neg); err == nil {
		t.Fatal("negative variable should be a write error")
	}
}

// TestBinaryRejectsNonPositiveExponents: exponents that would truncate
// through the uint32 cast are rejected on write.
func TestBinaryRejectsNonPositiveExponents(t *testing.T) {
	names := polynomial.NewNames()
	x := names.Var("x")
	set := polynomial.NewSet(names)
	set.Add("k", polynomial.Polynomial{Mons: []polynomial.Monomial{
		{Coef: 1, Terms: []polynomial.Term{{Var: x, Exp: -2}}},
	}})
	if err := WriteSetBinary(&bytes.Buffer{}, set); err == nil {
		t.Fatal("negative exponent should be a write error")
	}
	if err := WriteSetJSON(&bytes.Buffer{}, set); err == nil {
		t.Fatal("negative exponent should be a JSON write error")
	}
}

// TestWritersEmitOnlyUsedVars: interned-but-unused variables (e.g. leaves
// abstracted away by MapVars, or unrelated sets sharing a namespace) must
// not leak into binary or JSON files.
func TestWritersEmitOnlyUsedVars(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("k", polynomial.MustParse("2*keep1*keep2 + 3*keep3", names))
	for i := 0; i < 100; i++ {
		names.Var(fmt.Sprintf("unused%d", i))
	}
	check := func(encode func(*bytes.Buffer) error, decode func(*bytes.Buffer, *polynomial.Names) (*polynomial.Set, error), what string) {
		t.Helper()
		var buf bytes.Buffer
		if err := encode(&buf); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		fresh := polynomial.NewNames()
		back, err := decode(&buf, fresh)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if fresh.Len() != 3 {
			t.Fatalf("%s: decoded namespace has %d vars, want only the 3 used", what, fresh.Len())
		}
		if !setsEqual(set, back) {
			t.Fatalf("%s: round trip mismatch", what)
		}
	}
	check(func(b *bytes.Buffer) error { return WriteSetBinary(b, set) },
		func(b *bytes.Buffer, n *polynomial.Names) (*polynomial.Set, error) { return ReadSetBinary(b, n) },
		"binary")
	check(func(b *bytes.Buffer) error { return WriteSetJSON(b, set) },
		func(b *bytes.Buffer, n *polynomial.Names) (*polynomial.Set, error) { return ReadSetJSON(b, n) },
		"JSON")
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	names := polynomial.NewNames()
	a := valuation.New(names)
	a.SetVar(names.Var("m3"), 0.8)
	a.SetVar(names.Var("b1"), 1.1)
	var buf bytes.Buffer
	if err := WriteAssignmentJSON(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAssignmentJSON(&buf, names)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("entries = %d", back.Len())
	}
	m3, _ := names.Lookup("m3")
	if back.Get(m3) != 0.8 {
		t.Fatal("value mismatch")
	}
	if _, err := ReadAssignmentJSON(strings.NewReader("nope"), names); err == nil {
		t.Fatal("bad JSON should error")
	}
}
