package polyio

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// randomSet builds a pseudo-random set with weird-but-writable content.
func randomSet(seed int64, polys int) *polynomial.Set {
	r := rand.New(rand.NewSource(seed))
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	nVars := 1 + r.Intn(40)
	vars := make([]polynomial.Var, nVars)
	for i := range vars {
		vars[i] = names.Var(fmt.Sprintf("v%d", i))
	}
	for g := 0; g < polys; g++ {
		var b polynomial.Builder
		for m := 0; m < r.Intn(12); m++ {
			var terms []polynomial.Term
			for k := 0; k < r.Intn(4); k++ {
				terms = append(terms, polynomial.TExp(vars[r.Intn(nVars)], int32(1+r.Intn(5))))
			}
			b.Add(r.NormFloat64()*10, terms...)
		}
		set.Add(fmt.Sprintf("key#%d\twith junk", g), b.Polynomial())
	}
	return set
}

// polyToCommon remaps a polynomial into a shared namespace by variable
// name, re-canonicalizing. Two decodes of the same provenance can assign
// different Var ids (v2 interns shard-by-shard), which permutes canonical
// monomial order; comparison must therefore be namespace-independent.
func polyToCommon(p polynomial.Polynomial, from, common *polynomial.Names) polynomial.Polynomial {
	return polynomial.MapVars(p, func(v polynomial.Var) polynomial.Var {
		return common.Var(from.Name(v))
	})
}

// setsEquivalent reports semantic equality: same key sequence, and equal
// polynomials once both sides are mapped into one namespace by name.
func setsEquivalent(a, b *polynomial.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	common := polynomial.NewNames()
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
		if !polynomial.Equal(
			polyToCommon(a.Polys[i], a.Names, common),
			polyToCommon(b.Polys[i], b.Names, common)) {
			return false
		}
	}
	return true
}

func materializeStream(t *testing.T, data []byte) *polynomial.Set {
	t.Helper()
	sr, err := NewSetReader(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := polynomial.NewSet(sr.names)
	for {
		shard, err := sr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range shard.Keys {
			out.Add(k, shard.Polys[i])
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	set := randomSet(7, 50)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	var buf bytes.Buffer
	if err := WriteSetStream(&buf, ss); err != nil {
		t.Fatal(err)
	}
	back := materializeStream(t, buf.Bytes())
	if !setsEquivalent(set, back) {
		t.Fatal("v2 stream round trip mismatch")
	}
	// ReadSetBinary must accept v2 streams too (compatibility path).
	back2, err := ReadSetBinary(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !setsEquivalent(set, back2) {
		t.Fatal("ReadSetBinary(v2) mismatch")
	}
}

func TestStreamSpilledRoundTrip(t *testing.T) {
	set := randomSet(11, 80)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{
		TargetMonomials:      20,
		MaxResidentMonomials: 60,
		SpillDir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.SpilledShards() == 0 {
		t.Fatal("expected spilled shards")
	}
	var buf bytes.Buffer
	if err := WriteSetStream(&buf, ss); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetStream(bytes.NewReader(buf.Bytes()), nil, polynomial.ShardOptions{
		TargetMonomials:      20,
		MaxResidentMonomials: 60,
		SpillDir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.PeakResidentMonomials() > 60 {
		t.Fatalf("reader peak resident %d exceeds budget", back.PeakResidentMonomials())
	}
	mat, err := back.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !setsEquivalent(set, mat) {
		t.Fatal("spilled stream round trip mismatch")
	}
}

// TestReadSetStreamHonorsSmallBudget: a reader budget far below the
// stream's own shard size must still hold — the reader re-shards
// polynomial-at-a-time instead of materializing incoming shards. The v1
// body (one unframed record) gets the same treatment.
func TestReadSetStreamHonorsSmallBudget(t *testing.T) {
	set := randomSet(31, 120) // one DefaultShardMonomials-sized shard
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.NumShards() != 1 {
		t.Fatalf("fixture: want one big shard, got %d", ss.NumShards())
	}
	var v2 bytes.Buffer
	if err := WriteSetStream(&v2, ss); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := WriteSetBinary(&v1, set); err != nil {
		t.Fatal(err)
	}
	budget := set.Size() / 6
	for _, enc := range []struct {
		name string
		data []byte
	}{{"v2", v2.Bytes()}, {"v1", v1.Bytes()}} {
		back, err := ReadSetStream(bytes.NewReader(enc.data), nil, polynomial.ShardOptions{
			MaxResidentMonomials: budget,
			SpillDir:             t.TempDir(),
		})
		if err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if peak := back.PeakResidentMonomials(); peak > budget {
			t.Fatalf("%s: reader peak %d exceeds budget %d", enc.name, peak, budget)
		}
		if back.SpilledShards() == 0 {
			t.Fatalf("%s: expected reader-side spills", enc.name)
		}
		mat, err := back.Materialize()
		if err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if !setsEquivalent(set, mat) {
			t.Fatalf("%s: round trip mismatch", enc.name)
		}
		back.Close()
	}
}

// TestV1V2RoundTripProperty: across random sets, v1 and v2 encodings must
// describe the same polynomials, and read→write→read must be a fixed
// point: once a set has been through one decode (so its Var ids are in
// first-appearance order), re-encoding and re-decoding reproduces the
// bytes bit-identically — the used-vars table and canonical monomial
// order leave the encoders no freedom.
func TestV1V2RoundTripProperty(t *testing.T) {
	encodeV2 := func(s *polynomial.Set) []byte {
		ss, err := polynomial.BuildSharded(s, polynomial.ShardOptions{TargetMonomials: 17})
		if err != nil {
			t.Fatal(err)
		}
		defer ss.Close()
		var buf bytes.Buffer
		if err := WriteSetStream(&buf, ss); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for seed := int64(0); seed < 20; seed++ {
		set := randomSet(seed, 1+int(seed)*3)

		var v1 bytes.Buffer
		if err := WriteSetBinary(&v1, set); err != nil {
			t.Fatal(err)
		}
		v2 := encodeV2(set)

		fromV1, err := ReadSetBinary(bytes.NewReader(v1.Bytes()), nil)
		if err != nil {
			t.Fatalf("seed %d: v1 read: %v", seed, err)
		}
		fromV2, err := ReadSetBinary(bytes.NewReader(v2), nil)
		if err != nil {
			t.Fatalf("seed %d: v2 read: %v", seed, err)
		}
		if !setsEquivalent(fromV1, fromV2) || !setsEquivalent(set, fromV1) {
			t.Fatalf("seed %d: v1 and v2 decode differently", seed)
		}

		// v1 fixed point: randomSet interns variables in ascending order,
		// so the decode's re-interning is monotone and one round suffices.
		var v1Again bytes.Buffer
		if err := WriteSetBinary(&v1Again, fromV1); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v1.Bytes(), v1Again.Bytes()) {
			t.Fatalf("seed %d: v1 read→write is not bit-identical", seed)
		}

		// v2 fixed point: ids settle into first-appearance order after one
		// decode; from then on write→read→write is bit-identical.
		wA := encodeV2(fromV2)
		fromV2b, err := ReadSetBinary(bytes.NewReader(wA), nil)
		if err != nil {
			t.Fatal(err)
		}
		wB := encodeV2(fromV2b)
		if !bytes.Equal(wA, wB) {
			t.Fatalf("seed %d: v2 read→write→read is not bit-identical", seed)
		}
	}
}

// TestStreamTruncationDetected: a v2 stream cut anywhere must error —
// never silently yield fewer shards (that is what the end frame is for).
func TestStreamTruncationDetected(t *testing.T) {
	set := randomSet(23, 30)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	var buf bytes.Buffer
	if err := WriteSetStream(&buf, ss); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		sr, err := NewSetReader(bytes.NewReader(data[:cut]), nil)
		if err != nil {
			continue // truncated magic
		}
		for {
			_, err := sr.Next()
			if err == io.EOF {
				t.Fatalf("truncation at %d of %d read to clean EOF", cut, len(data))
			}
			if err != nil {
				break
			}
		}
	}
}

func TestSetWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSetWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteShard(polynomial.NewSet(nil)); err == nil {
		t.Fatal("WriteShard after Close should error")
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	// An empty stream (zero shards) is valid and reads as an empty set.
	set, err := ReadSetBinary(bytes.NewReader(buf.Bytes()), nil)
	if err != nil || set.Len() != 0 {
		t.Fatalf("empty stream: %v len=%d", err, set.Len())
	}
}

// TestWriteSetStreamFromSet: an in-memory Set is a valid stream source —
// it writes as a single v2 frame and round-trips through both DrainTo
// sinks (Set and ShardBuilder).
func TestWriteSetStreamFromSet(t *testing.T) {
	set := randomSet(21, 40)
	var buf bytes.Buffer
	if err := WriteSetStream(&buf, set); err != nil {
		t.Fatal(err)
	}

	sr, err := NewSetReader(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := polynomial.NewSet(sr.names)
	if err := sr.DrainTo(got); err != nil {
		t.Fatal(err)
	}
	if sr.Shards() != 1 {
		t.Fatalf("a Set should write one frame, read %d", sr.Shards())
	}
	if !setsEquivalent(set, got) {
		t.Fatal("set→stream→DrainTo(Set) round trip differs")
	}

	names := polynomial.NewNames()
	sr2, err := NewSetReader(bytes.NewReader(buf.Bytes()), names)
	if err != nil {
		t.Fatal(err)
	}
	b := polynomial.NewShardBuilder(names, polynomial.ShardOptions{
		MaxResidentMonomials: 1 + set.Size()/4,
		SpillDir:             t.TempDir(),
	})
	defer b.Discard()
	if err := sr2.DrainTo(b); err != nil {
		t.Fatal(err)
	}
	ss, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if budget := 1 + set.Size()/4; ss.PeakResidentMonomials() > budget {
		t.Fatalf("DrainTo(builder) peak %d exceeds budget %d", ss.PeakResidentMonomials(), budget)
	}
	back, err := ss.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !setsEquivalent(set, back) {
		t.Fatal("set→stream→DrainTo(builder) round trip differs")
	}
}

// TestDrainToTruncated: DrainTo must report truncation, never a silently
// short sink.
func TestDrainToTruncated(t *testing.T) {
	set := randomSet(22, 20)
	var buf bytes.Buffer
	if err := WriteSetStream(&buf, set); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3] // cut into the end frame
	sr, err := NewSetReader(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.DrainTo(polynomial.NewSet(sr.names)); err == nil {
		t.Fatal("truncated stream drained without error")
	}
}
