package polyio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// The v2 binary format is a stream of framed shard records, designed so
// that neither writer nor reader ever holds more than one shard in memory:
//
//	magic "CPRVB2\n"
//	repeated shard frames:
//	    'S' marker
//	    shard payload — the same body as v1: a used-variables-only name
//	    table (only variables appearing in this shard), then the shard's
//	    polynomials with varint terms referencing table indices
//	end frame:
//	    'E' marker, uvarint shard count (integrity check: a truncated
//	    stream is detected instead of silently reading fewer shards)
//
// Because every frame carries its own table, shards are self-describing:
// a reader interns each table into the target namespace as it goes, and
// variable identity is preserved across shards by name.

// streamMagic identifies the v2 streaming binary set format.
var streamMagic = []byte("CPRVB2\n")

const (
	frameShard = 'S'
	frameEnd   = 'E'
)

// SetWriter incrementally writes a v2 stream, one shard per WriteShard
// call. It never retains shard data: callers can stream sets far larger
// than memory. Close writes the end frame; a stream without one is
// detected as truncated by SetReader.
type SetWriter struct {
	bw     *bufio.Writer
	shards int
	closed bool
}

// NewSetWriter writes the v2 magic and returns the writer.
func NewSetWriter(w io.Writer) (*SetWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic); err != nil {
		return nil, err
	}
	return &SetWriter{bw: bw}, nil
}

// WriteShard appends one shard frame holding the given polynomials.
func (sw *SetWriter) WriteShard(set *polynomial.Set) error {
	if sw.closed {
		return fmt.Errorf("polyio: SetWriter already closed")
	}
	if err := sw.bw.WriteByte(frameShard); err != nil {
		return err
	}
	if err := writeSetPayload(sw.bw, set); err != nil {
		return err
	}
	sw.shards++
	return nil
}

// Close writes the end frame and flushes. The writer must not be used
// afterwards. Close does not close the underlying io.Writer.
func (sw *SetWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.bw.WriteByte(frameEnd); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(sw.shards))
	if _, err := sw.bw.Write(scratch[:n]); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// SetReader incrementally reads a v2 or v3 stream, returning one shard per
// Next call; only the shard being returned is in memory. Variables are
// interned into the target namespace by name, so polynomials from
// different shards share variables exactly as they did when written. On a
// v3 stream the reader additionally verifies every shard's checksum and
// the footer index against what it read (for random-access reading of a
// v3 stream see IndexedSet).
type SetReader struct {
	br      *bufio.Reader
	names   *polynomial.Names
	shards  int
	done    bool
	version int // 2 or 3

	// v3 sequential-read state: the reader reconstructs the footer index
	// from the frames it reads and verifies the stored footer against it.
	off     uint64 // bytes consumed so far
	v3index []v3Shard
	v3polys uint64
	v3buf   []byte // reusable stored-payload buffer
	scratch []polynomial.Term
}

// NewSetReader checks the stream magic (v2 or v3) and returns the reader
// (interning variables into names; a fresh namespace if nil).
func NewSetReader(r io.Reader, names *polynomial.Names) (*SetReader, error) {
	if names == nil {
		names = polynomial.NewNames()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("polyio: reading magic: %w", err)
	}
	switch string(magic) {
	case string(streamMagic):
		return &SetReader{br: br, names: names, version: 2}, nil
	case string(v3Magic):
		return &SetReader{br: br, names: names, version: 3, off: uint64(len(v3Magic))}, nil
	default:
		return nil, fmt.Errorf("polyio: not a cobra set stream (magic %q)", magic)
	}
}

// Next returns the next shard, or io.EOF after the end frame. Any other
// error (including a missing end frame) means the stream is corrupt or
// truncated.
func (sr *SetReader) Next() (*polynomial.Set, error) {
	set := polynomial.NewSet(sr.names)
	done, err := sr.nextFrame(func(key string, p polynomial.Polynomial) error {
		return set.Add(key, p)
	})
	if err != nil {
		return nil, err
	}
	if done {
		return nil, io.EOF
	}
	return set, nil
}

// nextFrame reads one frame, invoking add per polynomial of a shard frame
// (so ReadSetStream can route polynomials straight into a budgeted store
// without materializing the shard). It reports done=true at the validated
// end frame.
func (sr *SetReader) nextFrame(add func(string, polynomial.Polynomial) error) (bool, error) {
	if sr.done {
		return true, nil
	}
	if sr.version == 3 {
		return sr.nextFrameV3(add)
	}
	marker, err := sr.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return false, fmt.Errorf("polyio: stream truncated before end frame (%d shards read)", sr.shards)
		}
		return false, err
	}
	switch marker {
	case frameShard:
		if err := readSetPayloadFunc(sr.br, sr.names, nil, add); err != nil {
			if err == io.EOF {
				// A payload cut off at a field boundary reads as io.EOF;
				// never let that masquerade as a clean end of stream.
				err = io.ErrUnexpectedEOF
			}
			return false, fmt.Errorf("polyio: shard frame %d: %w", sr.shards, err)
		}
		sr.shards++
		return false, nil
	case frameEnd:
		want, err := binary.ReadUvarint(sr.br)
		if err != nil {
			return false, fmt.Errorf("polyio: reading end frame: %w", err)
		}
		if want != uint64(sr.shards) {
			return false, fmt.Errorf("polyio: end frame claims %d shards, read %d", want, sr.shards)
		}
		sr.done = true
		return true, nil
	default:
		return false, fmt.Errorf("polyio: unknown frame marker %q", marker)
	}
}

// nextFrameV3 reads one v3 frame. Shard frames are checksummed as they
// stream past and their geometry is remembered; the footer frame is then
// verified field-by-field against what was actually read, and the trailer
// closes the stream — so a sequential read enforces exactly the
// invariants a random-access reader depends on. Every v3 failure is a
// typed error (CorruptError or ChecksumError), never a panic or a silent
// short read.
func (sr *SetReader) nextFrameV3(add func(string, polynomial.Polynomial) error) (bool, error) {
	marker, err := sr.br.ReadByte()
	if err != nil {
		return false, corruptf("stream", sr.shards, "truncated before the footer (%d shards read): %w", sr.shards, io.ErrUnexpectedEOF)
	}
	sr.off++
	switch marker {
	case frameShard:
		return false, sr.readShardFrameV3(add)
	case frameFooter:
		return true, sr.readFooterV3()
	default:
		return false, corruptf("stream", sr.shards, "unknown frame marker %q", marker)
	}
}

// v3uvarint reads one uvarint, tracking the byte offset.
func (sr *SetReader) v3uvarint(section string) (uint64, error) {
	v, err := binary.ReadUvarint(sr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, corruptf(section, sr.shards, "reading varint: %w", err)
	}
	sr.off += uint64(uvarintLen(v))
	return v, nil
}

func (sr *SetReader) readShardFrameV3(add func(string, polynomial.Polynomial) error) error {
	flags, err := sr.br.ReadByte()
	if err != nil {
		return corruptf("shard frame", sr.shards, "reading flags: %w", io.ErrUnexpectedEOF)
	}
	sr.off++
	if flags&^byte(v3FlagDeflate) != 0 {
		return corruptf("shard frame", sr.shards, "unknown shard flags %#x", flags)
	}
	rawLen, err := sr.v3uvarint("shard frame")
	if err != nil {
		return err
	}
	storedLen, err := sr.v3uvarint("shard frame")
	if err != nil {
		return err
	}
	if rawLen > v3MaxShardBytes || storedLen > v3MaxShardBytes {
		return corruptf("shard frame", sr.shards, "shard claims %d stored / %d raw bytes (max %d)", storedLen, rawLen, v3MaxShardBytes)
	}
	if flags&v3FlagDeflate == 0 && storedLen != rawLen {
		return corruptf("shard frame", sr.shards, "uncompressed shard stores %d bytes but declares %d raw", storedLen, rawLen)
	}
	payloadOff := sr.off
	if uint64(cap(sr.v3buf)) < storedLen {
		sr.v3buf = make([]byte, storedLen)
	}
	stored := sr.v3buf[:storedLen]
	if _, err := io.ReadFull(sr.br, stored); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return corruptf("shard frame", sr.shards, "reading %d payload bytes: %w", storedLen, err)
	}
	sr.off += storedLen
	crc := crc32.ChecksumIEEE(stored)
	raw := stored
	if flags&v3FlagDeflate != 0 {
		raw, err = inflateV3(stored, int(rawLen), sr.shards)
		if err != nil {
			return err
		}
	}
	ps, scratch, err := decodeV3Payload(raw, sr.names, sr.shards, false, sr.scratch)
	sr.scratch = scratch
	if err != nil {
		return err
	}
	view := ps.View()
	sr.v3index = append(sr.v3index, v3Shard{
		payloadOff: payloadOff,
		storedLen:  storedLen,
		rawLen:     rawLen,
		flags:      flags,
		firstPoly:  sr.v3polys,
		polys:      uint64(ps.Len()),
		mons:       uint64(ps.Size()),
		crc:        crc,
	})
	sr.v3polys += uint64(ps.Len())
	sr.shards++
	for i, key := range view.Keys {
		if err := add(key, view.Polys[i]); err != nil {
			return err
		}
	}
	return nil
}

// readFooterV3 reads and verifies the footer frame and trailer against the
// shard frames already consumed, then marks the stream done.
func (sr *SetReader) readFooterV3() error {
	footerOff := sr.off - 1 // offset of the 'F' marker itself
	flen, err := sr.v3uvarint("footer")
	if err != nil {
		return err
	}
	if flen > v3MaxShardBytes {
		return corruptf("footer", -1, "footer claims %d bytes", flen)
	}
	fbuf := make([]byte, flen)
	if _, err := io.ReadFull(sr.br, fbuf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return corruptf("footer", -1, "reading %d footer bytes: %w", flen, err)
	}
	sr.off += flen
	shards, _, err := parseV3Footer(fbuf)
	if err != nil {
		return err
	}
	if len(shards) != len(sr.v3index) {
		return corruptf("footer", -1, "footer indexes %d shards, stream held %d", len(shards), len(sr.v3index))
	}
	for i := range shards {
		got, want := shards[i], sr.v3index[i]
		if got != want {
			if got.crc != want.crc {
				return &ChecksumError{Shard: i, Want: got.crc, Got: want.crc}
			}
			return corruptf("footer", i, "index entry %+v does not match the shard frame %+v", got, want)
		}
	}
	var trailer [v3TrailerLen]byte
	if _, err := io.ReadFull(sr.br, trailer[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return corruptf("trailer", -1, "reading trailer: %w", err)
	}
	if string(trailer[8:]) != string(v3TailMagic) {
		return corruptf("trailer", -1, "bad tail magic %q", trailer[8:])
	}
	if off := binary.LittleEndian.Uint64(trailer[:8]); off != footerOff {
		return corruptf("trailer", -1, "trailer points at footer offset %d, frame was at %d", off, footerOff)
	}
	sr.done = true
	return nil
}

// uvarintLen returns the encoded byte length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Shards returns the number of shard frames read so far.
func (sr *SetReader) Shards() int { return sr.shards }

// DrainTo streams every remaining polynomial into sink, decoding
// polynomial-at-a-time straight out of the shard frames — the reader side
// of the disk-backed source/sink pair (WriteSetStream is the writer side).
// Feeding a ShardBuilder keeps the resident footprint within the sink's
// budget no matter how the stream was sharded when written; feeding a Set
// materializes it. It validates the end frame, so a truncated stream is an
// error, never a silently short set.
func (sr *SetReader) DrainTo(sink polynomial.SetSink) error {
	for {
		done, err := sr.nextFrame(sink.Add)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// readStreamAll drains v2 or v3 frames (magic already consumed) into one
// in-memory set — the compatibility path behind ReadSetBinary.
func readStreamAll(br *bufio.Reader, names *polynomial.Names, version int) (*polynomial.Set, error) {
	sr := &SetReader{br: br, names: names, version: version}
	if version == 3 {
		sr.off = uint64(len(v3Magic))
	}
	out := polynomial.NewSet(names)
	for {
		shard, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		for i, key := range shard.Keys {
			if err := out.Add(key, shard.Polys[i]); err != nil {
				return nil, err
			}
		}
	}
}

// WriteSetStream writes any SetSource as a v2 stream, one frame per
// shard, loading spilled shards one at a time so the resident footprint
// stays within the source's budget. An in-memory Set writes as a single
// frame; a ShardedSet writes one frame per shard.
func WriteSetStream(w io.Writer, src polynomial.SetSource) error {
	sw, err := NewSetWriter(w)
	if err != nil {
		return err
	}
	err = src.ForEachShard(func(_, _ int, s *polynomial.Set) error {
		return sw.WriteShard(s)
	})
	if err != nil {
		return err
	}
	return sw.Close()
}

// ReadSetStream reads a binary set stream (v1, v2 or v3) into a
// ShardedSet under opts, decoding polynomial-at-a-time straight into the
// budgeted store — incoming shards (or a v1 body, which is one long
// record) are never materialized, so the set's MaxResidentMonomials bound
// holds on the read side no matter how the stream was sharded when
// written. To reload a v3 stream without re-spilling — and decode its
// shards in parallel — use OpenIndexedSet instead.
func ReadSetStream(r io.Reader, names *polynomial.Names, opts polynomial.ShardOptions) (*polynomial.ShardedSet, error) {
	if names == nil {
		names = polynomial.NewNames()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("polyio: reading magic: %w", err)
	}
	b := polynomial.NewShardBuilder(names, opts)
	defer b.Discard() // release partial spill files on any error path
	switch string(magic) {
	case string(streamMagic), string(v3Magic):
		sr := &SetReader{br: br, names: names, version: 2}
		if string(magic) == string(v3Magic) {
			sr.version = 3
			sr.off = uint64(len(v3Magic))
		}
		if err := sr.DrainTo(b); err != nil {
			return nil, err
		}
		return b.Finish()
	case string(binaryMagic):
		if err := readSetPayloadFunc(br, names, nil, b.Add); err != nil {
			return nil, err
		}
		return b.Finish()
	default:
		return nil, fmt.Errorf("polyio: not a cobra binary set (magic %q)", magic)
	}
}
