package polyio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// The v2 binary format is a stream of framed shard records, designed so
// that neither writer nor reader ever holds more than one shard in memory:
//
//	magic "CPRVB2\n"
//	repeated shard frames:
//	    'S' marker
//	    shard payload — the same body as v1: a used-variables-only name
//	    table (only variables appearing in this shard), then the shard's
//	    polynomials with varint terms referencing table indices
//	end frame:
//	    'E' marker, uvarint shard count (integrity check: a truncated
//	    stream is detected instead of silently reading fewer shards)
//
// Because every frame carries its own table, shards are self-describing:
// a reader interns each table into the target namespace as it goes, and
// variable identity is preserved across shards by name.

// streamMagic identifies the v2 streaming binary set format.
var streamMagic = []byte("CPRVB2\n")

const (
	frameShard = 'S'
	frameEnd   = 'E'
)

// SetWriter incrementally writes a v2 stream, one shard per WriteShard
// call. It never retains shard data: callers can stream sets far larger
// than memory. Close writes the end frame; a stream without one is
// detected as truncated by SetReader.
type SetWriter struct {
	bw     *bufio.Writer
	shards int
	closed bool
}

// NewSetWriter writes the v2 magic and returns the writer.
func NewSetWriter(w io.Writer) (*SetWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic); err != nil {
		return nil, err
	}
	return &SetWriter{bw: bw}, nil
}

// WriteShard appends one shard frame holding the given polynomials.
func (sw *SetWriter) WriteShard(set *polynomial.Set) error {
	if sw.closed {
		return fmt.Errorf("polyio: SetWriter already closed")
	}
	if err := sw.bw.WriteByte(frameShard); err != nil {
		return err
	}
	if err := writeSetPayload(sw.bw, set); err != nil {
		return err
	}
	sw.shards++
	return nil
}

// Close writes the end frame and flushes. The writer must not be used
// afterwards. Close does not close the underlying io.Writer.
func (sw *SetWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.bw.WriteByte(frameEnd); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(sw.shards))
	if _, err := sw.bw.Write(scratch[:n]); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// SetReader incrementally reads a v2 stream, returning one shard per Next
// call; only the shard being returned is in memory. Variables are interned
// into the target namespace by name, so polynomials from different shards
// share variables exactly as they did when written.
type SetReader struct {
	br     *bufio.Reader
	names  *polynomial.Names
	shards int
	done   bool
}

// NewSetReader checks the v2 magic and returns the reader (interning
// variables into names; a fresh namespace if nil).
func NewSetReader(r io.Reader, names *polynomial.Names) (*SetReader, error) {
	if names == nil {
		names = polynomial.NewNames()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("polyio: reading magic: %w", err)
	}
	if string(magic) != string(streamMagic) {
		return nil, fmt.Errorf("polyio: not a cobra v2 set stream (magic %q)", magic)
	}
	return &SetReader{br: br, names: names}, nil
}

// Next returns the next shard, or io.EOF after the end frame. Any other
// error (including a missing end frame) means the stream is corrupt or
// truncated.
func (sr *SetReader) Next() (*polynomial.Set, error) {
	set := polynomial.NewSet(sr.names)
	done, err := sr.nextFrame(func(key string, p polynomial.Polynomial) error {
		return set.Add(key, p)
	})
	if err != nil {
		return nil, err
	}
	if done {
		return nil, io.EOF
	}
	return set, nil
}

// nextFrame reads one frame, invoking add per polynomial of a shard frame
// (so ReadSetStream can route polynomials straight into a budgeted store
// without materializing the shard). It reports done=true at the validated
// end frame.
func (sr *SetReader) nextFrame(add func(string, polynomial.Polynomial) error) (bool, error) {
	if sr.done {
		return true, nil
	}
	marker, err := sr.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return false, fmt.Errorf("polyio: stream truncated before end frame (%d shards read)", sr.shards)
		}
		return false, err
	}
	switch marker {
	case frameShard:
		if err := readSetPayloadFunc(sr.br, sr.names, nil, add); err != nil {
			if err == io.EOF {
				// A payload cut off at a field boundary reads as io.EOF;
				// never let that masquerade as a clean end of stream.
				err = io.ErrUnexpectedEOF
			}
			return false, fmt.Errorf("polyio: shard frame %d: %w", sr.shards, err)
		}
		sr.shards++
		return false, nil
	case frameEnd:
		want, err := binary.ReadUvarint(sr.br)
		if err != nil {
			return false, fmt.Errorf("polyio: reading end frame: %w", err)
		}
		if want != uint64(sr.shards) {
			return false, fmt.Errorf("polyio: end frame claims %d shards, read %d", want, sr.shards)
		}
		sr.done = true
		return true, nil
	default:
		return false, fmt.Errorf("polyio: unknown frame marker %q", marker)
	}
}

// Shards returns the number of shard frames read so far.
func (sr *SetReader) Shards() int { return sr.shards }

// DrainTo streams every remaining polynomial into sink, decoding
// polynomial-at-a-time straight out of the shard frames — the reader side
// of the disk-backed source/sink pair (WriteSetStream is the writer side).
// Feeding a ShardBuilder keeps the resident footprint within the sink's
// budget no matter how the stream was sharded when written; feeding a Set
// materializes it. It validates the end frame, so a truncated stream is an
// error, never a silently short set.
func (sr *SetReader) DrainTo(sink polynomial.SetSink) error {
	for {
		done, err := sr.nextFrame(sink.Add)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// readStreamAll drains v2 frames (magic already consumed) into one
// in-memory set — the compatibility path behind ReadSetBinary.
func readStreamAll(br *bufio.Reader, names *polynomial.Names) (*polynomial.Set, error) {
	sr := &SetReader{br: br, names: names}
	out := polynomial.NewSet(names)
	for {
		shard, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		for i, key := range shard.Keys {
			if err := out.Add(key, shard.Polys[i]); err != nil {
				return nil, err
			}
		}
	}
}

// WriteSetStream writes any SetSource as a v2 stream, one frame per
// shard, loading spilled shards one at a time so the resident footprint
// stays within the source's budget. An in-memory Set writes as a single
// frame; a ShardedSet writes one frame per shard.
func WriteSetStream(w io.Writer, src polynomial.SetSource) error {
	sw, err := NewSetWriter(w)
	if err != nil {
		return err
	}
	err = src.ForEachShard(func(_, _ int, s *polynomial.Set) error {
		return sw.WriteShard(s)
	})
	if err != nil {
		return err
	}
	return sw.Close()
}

// ReadSetStream reads a binary set stream (v1 or v2) into a ShardedSet
// under opts, decoding polynomial-at-a-time straight into the budgeted
// store — incoming shards (or a v1 body, which is one long record) are
// never materialized, so the set's MaxResidentMonomials bound holds on
// the read side no matter how the stream was sharded when written.
func ReadSetStream(r io.Reader, names *polynomial.Names, opts polynomial.ShardOptions) (*polynomial.ShardedSet, error) {
	if names == nil {
		names = polynomial.NewNames()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("polyio: reading magic: %w", err)
	}
	b := polynomial.NewShardBuilder(names, opts)
	defer b.Discard() // release partial spill files on any error path
	switch string(magic) {
	case string(streamMagic):
		sr := &SetReader{br: br, names: names}
		if err := sr.DrainTo(b); err != nil {
			return nil, err
		}
		return b.Finish()
	case string(binaryMagic):
		if err := readSetPayloadFunc(br, names, nil, b.Add); err != nil {
			return nil, err
		}
		return b.Finish()
	default:
		return nil, fmt.Errorf("polyio: not a cobra binary set (magic %q)", magic)
	}
}
