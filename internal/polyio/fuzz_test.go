package polyio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// TestBinaryTruncationNeverPanics: every prefix of a valid binary stream
// must fail cleanly (or, for the complete stream, succeed).
func TestBinaryTruncationNeverPanics(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadSetBinary(bytes.NewReader(data[:cut]), nil); err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(data))
		}
	}
	if _, err := ReadSetBinary(bytes.NewReader(data), nil); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

// TestBinaryBitflipsNeverPanic: corrupted streams must not panic (errors
// and — for payload-only flips — silent value changes are acceptable).
func TestBinaryBitflipsNeverPanic(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	r := rand.New(rand.NewSource(151))
	for trial := 0; trial < 3000; trial++ {
		data := append([]byte(nil), orig...)
		flips := 1 + r.Intn(4)
		for f := 0; f < flips; f++ {
			pos := r.Intn(len(data))
			data[pos] ^= 1 << uint(r.Intn(8))
		}
		_, _ = ReadSetBinary(bytes.NewReader(data), nil)
	}
}

// TestTextGarbageNeverPanics feeds random lines to the text reader.
func TestTextGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(157))
	alphabet := []byte("abc123*^+-.\t\n #:")
	for trial := 0; trial < 3000; trial++ {
		n := r.Intn(64)
		data := make([]byte, n)
		for i := range data {
			data[i] = alphabet[r.Intn(len(alphabet))]
		}
		_, _ = ReadSetText(bytes.NewReader(data), nil)
	}
}

// TestJSONGarbageNeverPanics feeds mutated JSON to the JSON reader.
func TestJSONGarbageNeverPanics(t *testing.T) {
	set := sampleSet(t)
	var buf bytes.Buffer
	if err := WriteSetJSON(&buf, set); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	r := rand.New(rand.NewSource(163))
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), orig...)
		pos := r.Intn(len(data))
		data[pos] = byte(r.Intn(256))
		_, _ = ReadSetJSON(bytes.NewReader(data), nil)
	}
	var roundTrip polynomial.Polynomial
	_ = roundTrip
}

// FuzzReadSetText: arbitrary text must decode or fail cleanly, and any
// set that decodes must survive a write→read round trip with its keys
// intact — including keys the writer has to quote (leading '#',
// whitespace, embedded tabs).
func FuzzReadSetText(f *testing.F) {
	f.Add("# cobra provenance set v1\nk\t2*x\n")
	f.Add("\"# quoted\"\t1 + p1*m1\n")
	f.Add("  \t3*y^2\nk2\t-1\n")
	f.Add("no tab")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		set, err := ReadSetText(strings.NewReader(data), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSetText(&buf, set); err != nil {
			t.Fatalf("decoded set failed to re-encode: %v", err)
		}
		back, err := ReadSetText(&buf, nil)
		if err != nil {
			t.Fatalf("re-encoded set failed to decode: %v", err)
		}
		if back.Len() != set.Len() {
			t.Fatalf("round trip changed length: %d -> %d", set.Len(), back.Len())
		}
		for i := range set.Keys {
			if back.Keys[i] != set.Keys[i] {
				t.Fatalf("key %d: %q round-tripped as %q", i, set.Keys[i], back.Keys[i])
			}
		}
	})
}

// FuzzReadSetBinary is the native-fuzzing entry point behind CI's
// fuzz-smoke step: arbitrary bytes must decode or fail cleanly, and
// anything that decodes must re-encode.
func FuzzReadSetBinary(f *testing.F) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	set.Add("k1", polynomial.MustParse("208.8*p1*m1 + 240*p1*m3", names))
	set.Add("k2", polynomial.MustParse("1 + 2*x^3*y", names))
	var seed bytes.Buffer
	if err := WriteSetBinary(&seed, set); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := ReadSetBinary(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSetBinary(&buf, decoded); err != nil {
			t.Fatalf("decoded set failed to re-encode: %v", err)
		}
	})
}
