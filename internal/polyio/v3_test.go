package polyio

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/cobra-prov/cobra/internal/abstraction"
	"github.com/cobra-prov/cobra/internal/core"
	"github.com/cobra-prov/cobra/internal/polynomial"
	"github.com/cobra-prov/cobra/internal/valuation"
)

// encodeV3 shards the set and writes it as a v3 stream.
func encodeV3(tb testing.TB, set *polynomial.Set, compress bool) []byte {
	tb.Helper()
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: 17})
	if err != nil {
		tb.Fatal(err)
	}
	defer ss.Close()
	var buf bytes.Buffer
	if err := WriteSetStreamV3(&buf, ss, V3Options{Compress: compress}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// oracleSet builds a random set whose monomials each touch one variable,
// so an abstraction tree over all the variables is valid for Compress.
func oracleSet(seed int64, polys int) *polynomial.Set {
	r := rand.New(rand.NewSource(seed))
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	vars := make([]polynomial.Var, 24)
	for i := range vars {
		vars[i] = names.Var(fmt.Sprintf("v%d", i))
	}
	for g := 0; g < polys; g++ {
		var b polynomial.Builder
		for m := 0; m < 1+r.Intn(6); m++ {
			b.Add(r.NormFloat64()*10, polynomial.TExp(vars[r.Intn(len(vars))], int32(1+r.Intn(3))))
		}
		set.Add(fmt.Sprintf("key#%d", g), b.Polynomial())
	}
	return set
}

// materializeIndexed decodes every shard sequentially into one set.
func materializeIndexed(ix *IndexedSet) (*polynomial.Set, error) {
	out := polynomial.NewSet(ix.Namespace())
	err := ix.ForEachShard(func(_, _ int, s *polynomial.Set) error {
		for i, k := range s.Keys {
			if err := out.Add(k, s.Polys[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func TestV3RoundTrip(t *testing.T) {
	set := randomSet(41, 60)
	for _, compress := range []bool{false, true} {
		name := "uncompressed"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			data := encodeV3(t, set, compress)

			// Sequential reader path (NewSetReader / materialize).
			back := materializeStream(t, data)
			if !setsEquivalent(set, back) {
				t.Fatal("v3 sequential round trip mismatch")
			}
			// ReadSetBinary must accept v3 streams (compatibility path).
			back2, err := ReadSetBinary(bytes.NewReader(data), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !setsEquivalent(set, back2) {
				t.Fatal("ReadSetBinary(v3) mismatch")
			}
			// Random-access path.
			ix, err := OpenIndexedSet(bytes.NewReader(data), int64(len(data)), nil)
			if err != nil {
				t.Fatal(err)
			}
			if ix.Len() != set.Len() || ix.Size() != set.Size() {
				t.Fatalf("footer totals %d/%d, set has %d/%d", ix.Len(), ix.Size(), set.Len(), set.Size())
			}
			back3, err := materializeIndexed(ix)
			if err != nil {
				t.Fatal(err)
			}
			if !setsEquivalent(set, back3) {
				t.Fatal("v3 indexed round trip mismatch")
			}
		})
	}
	// Compression must actually shrink this (very repetitive) stream.
	un := encodeV3(t, set, false)
	co := encodeV3(t, set, true)
	if len(co) >= len(un) {
		t.Fatalf("compressed stream (%d bytes) not smaller than uncompressed (%d)", len(co), len(un))
	}
}

// TestV3CoefExactness: every float64 bit pattern must round-trip — the
// integer fast path may never swallow -0, NaN payloads, fractions, or
// integers too big for the zigzag window.
func TestV3CoefExactness(t *testing.T) {
	names := polynomial.NewNames()
	set := polynomial.NewSet(names)
	x := names.Var("x")
	coefs := []float64{
		1, -1, 2.5, -2.5, math.Inf(1), math.Inf(-1),
		math.NaN(), 1 << 51, -(1 << 51), 1 << 52, math.MaxFloat64, math.SmallestNonzeroFloat64,
		208.8, 1e-300,
	}
	for i, c := range coefs {
		var b polynomial.Builder
		b.Add(c, polynomial.TExp(x, int32(i+1)))
		set.Add(fmt.Sprintf("k%d", i), b.Polynomial())
	}
	data := encodeV3(t, set, true)
	back, err := ReadSetBinary(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coefs {
		if len(set.Polys[i].Mons) == 0 {
			continue // the Builder itself dropped the monomial
		}
		got := back.Polys[i].Mons[0].Coef
		if math.Float64bits(got) != math.Float64bits(coefs[i]) {
			t.Errorf("coef %v round-tripped as %v (bits %016x != %016x)",
				coefs[i], got, math.Float64bits(coefs[i]), math.Float64bits(got))
		}
	}
}

// TestV3CrossVersionOracle is the cross-version property test: random
// sets round-tripped v1↔v2↔v3 (compressed and uncompressed) must be
// bit-identical under polynomial.Equal once decoded into one namespace,
// the v3 encoding must be a fixed point of read→write, and the decoded
// sources must produce identical Compress and EvalBatch answers at
// Workers ∈ {1,2,8}.
func TestV3CrossVersionOracle(t *testing.T) {
	encodeV2 := func(s *polynomial.Set) []byte {
		ss, err := polynomial.BuildSharded(s, polynomial.ShardOptions{TargetMonomials: 17})
		if err != nil {
			t.Fatal(err)
		}
		defer ss.Close()
		var buf bytes.Buffer
		if err := WriteSetStream(&buf, ss); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for seed := int64(0); seed < 12; seed++ {
		set := randomSet(seed, 2+int(seed)*4)

		var v1 bytes.Buffer
		if err := WriteSetBinary(&v1, set); err != nil {
			t.Fatal(err)
		}
		v2 := encodeV2(set)
		v3u := encodeV3(t, set, false)
		v3c := encodeV3(t, set, true)

		// Decode every version into ONE namespace: interning is
		// first-appearance order for all of them, so the Var ids — and with
		// them every polynomial — must be bit-identical.
		common := polynomial.NewNames()
		decode := func(data []byte) *polynomial.Set {
			s, err := ReadSetBinary(bytes.NewReader(data), common)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return s
		}
		fromV1 := decode(v1.Bytes())
		sets := map[string]*polynomial.Set{
			"v2":  decode(v2),
			"v3u": decode(v3u),
			"v3c": decode(v3c),
		}
		ixc, err := OpenIndexedSet(bytes.NewReader(v3c), int64(len(v3c)), common)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sets["v3c/indexed"], err = materializeIndexed(ixc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, got := range sets {
			if got.Len() != fromV1.Len() {
				t.Fatalf("seed %d: %s decoded %d polynomials, v1 %d", seed, name, got.Len(), fromV1.Len())
			}
			for i := range fromV1.Keys {
				if fromV1.Keys[i] != got.Keys[i] || !polynomial.Equal(fromV1.Polys[i], got.Polys[i]) {
					t.Fatalf("seed %d: %s decodes polynomial %d differently from v1", seed, name, i)
				}
			}
		}

		// v3 fixed point: after one decode into a FRESH namespace the ids
		// are in cross-shard first-appearance order — the order the encoder
		// itself emits — so read→write→read is bit-identical from then on.
		settled, err := ReadSetBinary(bytes.NewReader(v3c), nil)
		if err != nil {
			t.Fatal(err)
		}
		wA := encodeV3(t, settled, true)
		again, err := ReadSetBinary(bytes.NewReader(wA), nil)
		if err != nil {
			t.Fatal(err)
		}
		wB := encodeV3(t, again, true)
		if !bytes.Equal(wA, wB) {
			t.Fatalf("seed %d: v3 read→write→read is not bit-identical", seed)
		}
	}

	// Solver oracle on a compression-friendly set (one variable per
	// monomial, so a single abstraction tree covers every monomial): the
	// in-memory set, the indexed compressed stream and the indexed
	// uncompressed stream must give identical Compress and EvalBatch
	// answers at every worker count.
	set := oracleSet(97, 80)
	common := polynomial.NewNames()
	base, err := ReadSetBinary(bytes.NewReader(encodeV3(t, set, false)), common)
	if err != nil {
		t.Fatal(err)
	}
	v3u := encodeV3(t, base, false)
	v3c := encodeV3(t, base, true)
	ixu, err := OpenIndexedSet(bytes.NewReader(v3u), int64(len(v3u)), common)
	if err != nil {
		t.Fatal(err)
	}
	ixc, err := OpenIndexedSet(bytes.NewReader(v3c), int64(len(v3c)), common)
	if err != nil {
		t.Fatal(err)
	}

	// A two-group tree over the set's variables (tree node names intern
	// extra Vars, so build it once, after all decodes).
	tree := abstraction.NewTree("T", common)
	g0 := tree.MustAddChild(tree.Root(), "g0")
	g1 := tree.MustAddChild(tree.Root(), "g1")
	for i, v := range base.UsedVars() {
		parent := g0
		if i%2 == 1 {
			parent = g1
		}
		if _, err := tree.AddChild(parent, common.Name(v)); err != nil {
			t.Fatal(err)
		}
	}
	bound := base.Size()
	assignments := make([]*valuation.Assignment, 7)
	for i := range assignments {
		a := valuation.New(common)
		used := base.UsedVars()
		a.SetVar(used[i%len(used)], 0.25*float64(i+1))
		assignments[i] = a
	}

	wantRes, err := core.CompressSource(base, abstraction.Forest{tree}, bound, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := valuation.EvalBatchSource(base, assignments, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		for name, src := range map[string]polynomial.SetSource{"set": base, "v3u": ixu, "v3c": ixc} {
			res, err := core.CompressSource(src, abstraction.Forest{tree}, bound, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if res.Size != wantRes.Size || res.NumMeta != wantRes.NumMeta ||
				res.UsedMeta != wantRes.UsedMeta || len(res.Cuts) != len(wantRes.Cuts) ||
				!res.Cuts[0].Equal(wantRes.Cuts[0]) {
				t.Fatalf("%s workers=%d: Compress differs from the in-memory baseline", name, w)
			}
			rows, err := valuation.EvalBatchSource(src, assignments, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if len(rows) != len(wantRows) {
				t.Fatalf("%s workers=%d: %d result rows, want %d", name, w, len(rows), len(wantRows))
			}
			for r := range rows {
				for c := range rows[r] {
					if math.Float64bits(rows[r][c]) != math.Float64bits(wantRows[r][c]) {
						t.Fatalf("%s workers=%d: EvalBatch row %d col %d differs", name, w, r, c)
					}
				}
			}
		}
	}
}

// TestV3OutOfOrderDecode decodes shards via the footer index in reverse
// and random permutation order — every schedule must reproduce the same
// shards — and checks ForEachShardParallel still delivers to the sink
// strictly in shard order at every worker count. Run under -race this is
// also the concurrent-decode sweep.
func TestV3OutOfOrderDecode(t *testing.T) {
	set := randomSet(53, 70)
	data := encodeV3(t, set, true)
	ix, err := OpenIndexedSet(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := ix.NumShards()
	if n < 3 {
		t.Fatalf("fixture: want several shards, got %d", n)
	}
	want := make([]*polynomial.Set, n)
	for i := 0; i < n; i++ {
		if want[i], err = ix.DecodeShard(i); err != nil {
			t.Fatal(err)
		}
	}
	perms := [][]int{make([]int, n), rand.New(rand.NewSource(3)).Perm(n)}
	for i := range perms[0] {
		perms[0][i] = n - 1 - i // reverse
	}
	for _, perm := range perms {
		for _, i := range perm {
			got, err := ix.DecodeShard(i)
			if err != nil {
				t.Fatal(err)
			}
			if !setsEquivalent(want[i], got) {
				t.Fatalf("shard %d decodes differently out of order", i)
			}
		}
	}

	for _, w := range []int{1, 2, 8} {
		next := 0
		out := polynomial.NewSet(ix.Namespace())
		err := ix.ForEachShardParallel(w, func(i, firstPoly int, s *polynomial.Set) error {
			if i != next {
				return fmt.Errorf("shard %d delivered, expected %d", i, next)
			}
			if wantFirst, _ := ix.ShardRange(i); firstPoly != wantFirst {
				return fmt.Errorf("shard %d delivered firstPoly %d, footer says %d", i, firstPoly, wantFirst)
			}
			next++
			for k, key := range s.Keys {
				if err := out.Add(key, s.Polys[k]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if next != n {
			t.Fatalf("workers=%d: delivered %d of %d shards", w, next, n)
		}
		if !setsEquivalent(set, out) {
			t.Fatalf("workers=%d: parallel decode differs from the input", w)
		}
	}
}

// TestV3ConcurrentPasses: an IndexedSet advertises ConcurrentPasses, so
// independent ForEachShardParallel passes must be able to run at the same
// time (under -race this proves the decode path shares no mutable state).
func TestV3ConcurrentPasses(t *testing.T) {
	set := randomSet(59, 60)
	data := encodeV3(t, set, true)
	ix, err := OpenIndexedSet(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.ConcurrentPasses() {
		t.Fatal("IndexedSet must advertise concurrent passes")
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	sizes := make([]int, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = ix.ForEachShardParallel(4, func(_, _ int, s *polynomial.Set) error {
				sizes[g] += s.Size()
				return nil
			})
		}(g)
	}
	wg.Wait()
	for g := range errs {
		if errs[g] != nil {
			t.Fatalf("pass %d: %v", g, errs[g])
		}
		if sizes[g] != set.Size() {
			t.Fatalf("pass %d saw %d monomials, want %d", g, sizes[g], set.Size())
		}
	}
}

// TestV3DecodeFailpoint: one failing shard must cancel the in-flight
// parallel decode — strictly fewer shards decode than exist — surface as
// that exact error, and leave the stream on disk untouched; clearing the
// failpoint must make the same IndexedSet fully readable again.
func TestV3DecodeFailpoint(t *testing.T) {
	set := randomSet(61, 160)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	path := filepath.Join(t.TempDir(), "fail.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSetStreamV3(f, ss, V3Options{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexedFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	n := ix.NumShards()
	if n < 16 {
		t.Fatalf("fixture: want many shards, got %d", n)
	}

	boom := errors.New("injected decode failure")
	var mu sync.Mutex
	decodes := 0
	testDecodeErr = func(shard int) error {
		mu.Lock()
		decodes++
		mu.Unlock()
		if shard == 2 {
			return boom
		}
		return nil
	}
	t.Cleanup(func() { testDecodeErr = nil })

	err = ix.ForEachShardParallel(4, func(_, _ int, _ *polynomial.Set) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("parallel decode returned %v, want the injected failure", err)
	}
	mu.Lock()
	got := decodes
	mu.Unlock()
	if got >= n {
		t.Fatalf("failure at shard 2 did not cancel in-flight decodes: %d of %d shards decoded", got, n)
	}
	if ix.ResidentMonomials() != 0 {
		t.Fatalf("failed pass leaked %d resident monomials", ix.ResidentMonomials())
	}
	// Nothing unlinked or rewritten.
	after, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stream file gone after failed decode: %v", err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("stream file changed size: %d -> %d", before.Size(), after.Size())
	}

	testDecodeErr = nil
	back, err := materializeIndexed(ix)
	if err != nil {
		t.Fatalf("retry after clearing the failpoint: %v", err)
	}
	if !setsEquivalent(set, back) {
		t.Fatal("retry decoded a different set")
	}
}

// TestV3SectionTracking: every shard section opened by a decode must be
// closed — on success, on decode errors, and on early stop — or pooled
// buffers leak. The hook observes opens (+1) and closes (-1).
func TestV3SectionTracking(t *testing.T) {
	set := randomSet(67, 90)
	data := encodeV3(t, set, true)

	var mu sync.Mutex
	net, opens := 0, 0
	testSectionHook = func(_ int, delta int) {
		mu.Lock()
		net += delta
		if delta > 0 {
			opens++
		}
		mu.Unlock()
	}
	t.Cleanup(func() { testSectionHook = nil })
	check := func(phase string, wantOpens bool) {
		mu.Lock()
		defer mu.Unlock()
		if net != 0 {
			t.Fatalf("%s: %d shard sections left open", phase, net)
		}
		if wantOpens && opens == 0 {
			t.Fatalf("%s: hook observed no opens (test is vacuous)", phase)
		}
		opens = 0
	}

	ix, err := OpenIndexedSet(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := materializeIndexed(ix); err != nil {
		t.Fatal(err)
	}
	check("sequential success", true)

	if err := ix.ForEachShardParallel(8, func(_, _ int, _ *polynomial.Set) error { return nil }); err != nil {
		t.Fatal(err)
	}
	check("parallel success", true)

	// Early stop: the consumer aborts after the first shard while decodes
	// for later shards are in flight.
	stop := errors.New("early stop")
	if err := ix.ForEachShardParallel(8, func(i, _ int, _ *polynomial.Set) error {
		return stop
	}); !errors.Is(err, stop) {
		t.Fatalf("early stop returned %v", err)
	}
	check("early stop", true)

	// Decode error: corrupt one shard's stored bytes so its checksum
	// fails; the failing section and all in-flight ones must still close.
	bad := append([]byte(nil), data...)
	ix2, err := OpenIndexedSet(bytes.NewReader(bad), int64(len(bad)), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad[ix2.shards[1].payloadOff] ^= 0xff
	var cerr *ChecksumError
	if _, err := materializeIndexed(ix2); !errors.As(err, &cerr) {
		t.Fatalf("corrupted shard decoded with %v, want a ChecksumError", err)
	}
	check("checksum error", true)
	if err := ix2.ForEachShardParallel(8, func(_, _ int, _ *polynomial.Set) error { return nil }); !errors.As(err, &cerr) {
		t.Fatalf("parallel decode of corrupted shard: %v", err)
	}
	check("parallel checksum error", true)
}

// TestV3ResidencyBudget: with a residency budget set, a parallel pass
// keeps decoded-but-undelivered monomials within it (clamping all the way
// down to sequential when only one shard fits).
func TestV3ResidencyBudget(t *testing.T) {
	set := randomSet(71, 120)
	ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	var buf bytes.Buffer
	if err := WriteSetStreamV3(&buf, ss, V3Options{Compress: true}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ix, err := OpenIndexedSet(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	maxShard := 0
	for i := 0; i < ix.NumShards(); i++ {
		if _, c := ix.ShardRange(i); c > 0 {
			// per-shard monomials via the footer
		}
		if m := int(ix.shards[i].mons); m > maxShard {
			maxShard = m
		}
	}
	budget := 3 * maxShard
	ix.SetResidencyBudget(budget)
	seen := 0
	if err := ix.ForEachShardParallel(8, func(_, _ int, s *polynomial.Set) error {
		seen += s.Size()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != set.Size() {
		t.Fatalf("budgeted pass saw %d monomials, want %d", seen, set.Size())
	}
	if peak := ix.PeakResidentMonomials(); peak > budget {
		t.Fatalf("peak resident %d exceeds budget %d", peak, budget)
	}
}

// FuzzReadSetV3 is the v3 native-fuzzing entry point behind CI's
// fuzz-smoke step: arbitrary bytes must decode or fail cleanly through
// BOTH the sequential reader and the random-access IndexedSet; every
// failure on a v3-magic stream must be a typed error (CorruptError or
// ChecksumError), and whenever the sequential read succeeds the indexed
// read must succeed and agree — no panic, no silent short read.
func FuzzReadSetV3(f *testing.F) {
	set := randomSet(83, 12)
	for _, compress := range []bool{false, true} {
		ss, err := polynomial.BuildSharded(set, polynomial.ShardOptions{TargetMonomials: 9})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSetStreamV3(&buf, ss, V3Options{Compress: compress}); err != nil {
			f.Fatal(err)
		}
		ss.Close()
		valid := buf.Bytes()
		f.Add(append([]byte(nil), valid...))
		f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // truncation mid-shard
		f.Add(append([]byte(nil), valid[:len(valid)-4]...)) // truncated trailer

		flagFlip := append([]byte(nil), valid...)
		flagFlip[len(v3Magic)+1] ^= v3FlagDeflate // flate flag flip on shard 0
		f.Add(flagFlip)

		payloadFlip := append([]byte(nil), valid...)
		payloadFlip[len(v3Magic)+6] ^= 0x40 // checksum mismatch
		f.Add(payloadFlip)

		footerFlip := append([]byte(nil), valid...)
		footerFlip[len(valid)-v3TrailerLen-3] ^= 0x08 // corrupted footer index
		f.Add(footerFlip)
	}
	f.Add([]byte{})
	f.Add(append([]byte(nil), v3Magic...))
	f.Fuzz(func(t *testing.T, data []byte) {
		isV3 := bytes.HasPrefix(data, v3Magic)
		requireTyped := func(path string, err error) {
			if !isV3 {
				return
			}
			var ce *CorruptError
			var se *ChecksumError
			if !errors.As(err, &ce) && !errors.As(err, &se) {
				t.Fatalf("%s failed with untyped error %T: %v", path, err, err)
			}
		}
		seq, seqErr := ReadSetBinary(bytes.NewReader(data), nil)
		if seqErr != nil {
			requireTyped("sequential read", seqErr)
		}
		var indexed *polynomial.Set
		ix, ixErr := OpenIndexedSet(bytes.NewReader(data), int64(len(data)), nil)
		if ixErr == nil {
			indexed, ixErr = materializeIndexed(ix)
		}
		if ixErr != nil {
			requireTyped("indexed read", ixErr)
		}
		// The sequential reader verifies the footer against the observed
		// frames, so anything it accepts the indexed reader must accept —
		// and decode identically.
		if seqErr == nil {
			if ixErr != nil {
				t.Fatalf("sequential read succeeded but indexed read failed: %v", ixErr)
			}
			if !setsEquivalent(seq, indexed) {
				t.Fatal("sequential and indexed decodes disagree")
			}
			var buf bytes.Buffer
			if err := WriteSetBinary(&buf, seq); err != nil {
				t.Fatalf("decoded set failed to re-encode: %v", err)
			}
		}
	})
}
