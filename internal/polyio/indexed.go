package polyio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/cobra-prov/cobra/internal/parallel"
	"github.com/cobra-prov/cobra/internal/polynomial"
)

// testDecodeErr, when non-nil, injects a decode failure for the given
// shard — the failpoint behind the cancellation tests: one failed shard
// must stop in-flight decodes and must not unlink or damage anything.
var testDecodeErr func(shard int) error

// testSectionHook, when non-nil, observes every shard-section open
// (delta +1) and close (delta -1) — the tracking hook behind the
// section-leak tests: every section opened by a decode must be closed on
// success, error, and early-stop paths alike.
var testSectionHook func(shard int, delta int)

// sectionBufPool recycles shard read buffers across decodes; a section
// returns its buffer here when closed, which is what makes a leaked
// section a real cost and not just a bookkeeping slip.
var sectionBufPool sync.Pool

// shardSection is one in-flight shard read: the byte range claimed from
// the underlying ReaderAt plus the pooled buffer it was read into. Close
// is idempotent and must be called on every path.
type shardSection struct {
	shard int
	buf   []byte
	open  bool
}

func openSection(shard, size int) *shardSection {
	var buf []byte
	if b, ok := sectionBufPool.Get().(*[]byte); ok && cap(*b) >= size {
		buf = (*b)[:size]
	} else {
		buf = make([]byte, size)
	}
	if testSectionHook != nil {
		testSectionHook(shard, +1)
	}
	return &shardSection{shard: shard, buf: buf, open: true}
}

func (s *shardSection) Close() {
	if !s.open {
		return
	}
	s.open = false
	buf := s.buf
	s.buf = nil
	sectionBufPool.Put(&buf)
	if testSectionHook != nil {
		testSectionHook(s.shard, -1)
	}
}

// IndexedSet is the random-access v3 reader: it parses the footer index
// at open, after which every shard decodes independently — in any order,
// on any number of goroutines — straight from the underlying io.ReaderAt.
// It implements polynomial.IndexedSource, so every pipeline stage can
// overlap shard decode with its own work (ForEachShardParallel), and
// independent passes (e.g. parallel tree solves over an evicted Dataset)
// run concurrently without serializing: the reader holds no decoded state,
// only the index.
//
// Variable identity is deterministic: the footer name table is interned
// into the target namespace at open, in exactly the order a sequential
// read of the same stream would intern it, so decoded shards are
// bit-identical to a v2/v3 stream read no matter which order — or how
// many goroutines — the shards decode on. (Pre-interning is also what
// makes concurrent decodes race-free: after open, decoding only reads
// the namespace.)
type IndexedSet struct {
	r      io.ReaderAt
	closer io.Closer
	names  *polynomial.Names
	shards []v3Shard
	polys  int
	mons   int
	used   []polynomial.Var

	// maxResident, when set, clamps the parallel-decode window so at most
	// maxResident monomials of decoded-but-undelivered shards exist at
	// once (matching the budget of the ShardedSet the stream was written
	// from).
	maxResident int

	statMu       sync.Mutex
	resident     int
	peakResident int
}

// OpenIndexedSet opens a v3 stream for random access: it validates the
// header magic and trailer, parses the footer index, and interns the
// footer name table into names (a fresh namespace if nil). size is the
// total byte length of the stream. The returned set does not own r.
func OpenIndexedSet(r io.ReaderAt, size int64, names *polynomial.Names) (*IndexedSet, error) {
	if names == nil {
		names = polynomial.NewNames()
	}
	if size < int64(len(v3Magic)+1+v3TrailerLen) {
		return nil, corruptf("trailer", -1, "stream of %d bytes is too short for a v3 set", size)
	}
	var head [7]byte
	if err := readFullAt(r, head[:], 0); err != nil {
		return nil, corruptf("header", -1, "reading magic: %w", err)
	}
	if string(head[:]) != string(v3Magic) {
		return nil, fmt.Errorf("polyio: not a cobra v3 set (magic %q)", head[:])
	}
	var trailer [v3TrailerLen]byte
	if err := readFullAt(r, trailer[:], size-v3TrailerLen); err != nil {
		return nil, corruptf("trailer", -1, "reading trailer: %w", err)
	}
	if string(trailer[8:]) != string(v3TailMagic) {
		return nil, corruptf("trailer", -1, "bad tail magic %q", trailer[8:])
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	footerEnd := size - v3TrailerLen
	if footerOff < int64(len(v3Magic)) || footerOff >= footerEnd {
		return nil, corruptf("trailer", -1, "footer offset %d outside the stream", footerOff)
	}
	// The footer frame: 'F' marker, uvarint length, payload.
	head2 := make([]byte, minInt64(int64(1+binary.MaxVarintLen64), footerEnd-footerOff))
	if err := readFullAt(r, head2, footerOff); err != nil {
		return nil, corruptf("footer", -1, "reading footer frame: %w", err)
	}
	if head2[0] != frameFooter {
		return nil, corruptf("footer", -1, "expected footer marker 'F', found %q", head2[0])
	}
	flen, n := binary.Uvarint(head2[1:])
	if n <= 0 {
		return nil, corruptf("footer", -1, "bad footer length varint: %w", io.ErrUnexpectedEOF)
	}
	payloadOff := footerOff + 1 + int64(n)
	if flen > uint64(footerEnd-payloadOff) {
		return nil, corruptf("footer", -1, "footer claims %d bytes, only %d remain before the trailer", flen, footerEnd-payloadOff)
	}
	if payloadOff+int64(flen) != footerEnd {
		return nil, corruptf("footer", -1, "footer ends %d bytes before the trailer", footerEnd-(payloadOff+int64(flen)))
	}
	fbuf := make([]byte, flen)
	if err := readFullAt(r, fbuf, payloadOff); err != nil {
		return nil, corruptf("footer", -1, "reading footer payload: %w", err)
	}
	shards, fnames, err := parseV3Footer(fbuf)
	if err != nil {
		return nil, err
	}
	ix := &IndexedSet{r: r, names: names, shards: shards}
	wantPoly := uint64(0)
	prevEnd := uint64(len(v3Magic))
	for i := range shards {
		sh := &shards[i]
		if sh.firstPoly != wantPoly {
			return nil, corruptf("footer", i, "shard starts at polynomial %d, expected %d", sh.firstPoly, wantPoly)
		}
		wantPoly += sh.polys
		if sh.payloadOff < prevEnd || sh.payloadOff+sh.storedLen > uint64(footerOff) {
			return nil, corruptf("footer", i, "shard byte range [%d,%d) outside the data area", sh.payloadOff, sh.payloadOff+sh.storedLen)
		}
		prevEnd = sh.payloadOff + sh.storedLen
		ix.polys += int(sh.polys)
		ix.mons += int(sh.mons)
	}
	// Intern the footer table in order — the same Vars, in the same
	// order, a sequential read would produce — then freeze: decodes only
	// look names up from here on.
	ix.used = make([]polynomial.Var, len(fnames))
	for i, name := range fnames {
		ix.used[i] = names.Var(name)
	}
	sort.Slice(ix.used, func(a, b int) bool { return ix.used[a] < ix.used[b] })
	return ix, nil
}

// OpenIndexedFile opens path for random access; Close closes the file.
func OpenIndexedFile(path string, names *polynomial.Names) (*IndexedSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	ix, err := OpenIndexedSet(f, st.Size(), names)
	if err != nil {
		f.Close()
		return nil, err
	}
	ix.closer = f
	return ix, nil
}

// Close closes the underlying file when the set owns one (OpenIndexedFile).
// It never removes anything from disk.
func (ix *IndexedSet) Close() error {
	if ix.closer == nil {
		return nil
	}
	c := ix.closer
	ix.closer = nil
	return c.Close()
}

// SetResidencyBudget clamps the parallel-decode window so at most mons
// monomials of decoded-but-undelivered shards are held at once (0 means
// unbudgeted: the window is bounded by the worker count alone).
func (ix *IndexedSet) SetResidencyBudget(mons int) { ix.maxResident = mons }

// Namespace returns the target namespace.
func (ix *IndexedSet) Namespace() *polynomial.Names { return ix.names }

// Len returns the total number of polynomials (from the footer index; no
// shard is decoded).
func (ix *IndexedSet) Len() int { return ix.polys }

// Size returns the total number of monomials (from the footer index).
func (ix *IndexedSet) Size() int { return ix.mons }

// NumShards returns the number of shards in the index.
func (ix *IndexedSet) NumShards() int { return len(ix.shards) }

// ShardRange returns the [first, first+count) polynomial range of shard i.
func (ix *IndexedSet) ShardRange(i int) (first, count int) {
	return int(ix.shards[i].firstPoly), int(ix.shards[i].polys)
}

// UsedVars returns the distinct variables of the stream (the interned
// footer table), ascending.
func (ix *IndexedSet) UsedVars() []polynomial.Var {
	out := make([]polynomial.Var, len(ix.used))
	copy(out, ix.used)
	return out
}

// ResidentMonomials returns the monomials of shards currently decoded by
// an in-flight pass.
func (ix *IndexedSet) ResidentMonomials() int {
	ix.statMu.Lock()
	defer ix.statMu.Unlock()
	return ix.resident
}

// PeakResidentMonomials returns the high-water mark of concurrently
// decoded monomials.
func (ix *IndexedSet) PeakResidentMonomials() int {
	ix.statMu.Lock()
	defer ix.statMu.Unlock()
	return ix.peakResident
}

// ConcurrentPasses reports that independent passes over an IndexedSet may
// run concurrently: decoding holds no shared mutable state beyond the
// residency counters.
func (ix *IndexedSet) ConcurrentPasses() bool { return true }

func (ix *IndexedSet) trackResident(delta int) {
	ix.statMu.Lock()
	ix.resident += delta
	if ix.resident > ix.peakResident {
		ix.peakResident = ix.resident
	}
	ix.statMu.Unlock()
}

// DecodeShard decodes shard i — any order, any goroutine: the read is a
// positioned ReadAt, the checksum is verified against the footer, and the
// namespace is only read (the footer table was interned at open). The
// returned Set is freshly decoded; the caller owns it.
func (ix *IndexedSet) DecodeShard(i int) (*polynomial.Set, error) {
	if i < 0 || i >= len(ix.shards) {
		return nil, fmt.Errorf("polyio: shard %d out of range [0,%d)", i, len(ix.shards))
	}
	sh := &ix.shards[i]
	sec := openSection(i, int(sh.storedLen))
	defer sec.Close()
	if err := readFullAt(ix.r, sec.buf, int64(sh.payloadOff)); err != nil {
		return nil, corruptf("shard frame", i, "reading %d stored bytes at offset %d: %w", sh.storedLen, sh.payloadOff, err)
	}
	if testDecodeErr != nil {
		if err := testDecodeErr(i); err != nil {
			return nil, err
		}
	}
	if got := crc32.ChecksumIEEE(sec.buf); got != sh.crc {
		return nil, &ChecksumError{Shard: i, Want: sh.crc, Got: got}
	}
	raw := sec.buf
	if sh.flags&v3FlagDeflate != 0 {
		var err error
		raw, err = inflateV3(sec.buf, int(sh.rawLen), i)
		if err != nil {
			return nil, err
		}
	} else if uint64(len(raw)) != sh.rawLen {
		return nil, corruptf("shard frame", i, "stored %d bytes but footer declares %d raw", len(raw), sh.rawLen)
	}
	ps, _, err := decodeV3Payload(raw, ix.names, i, true, nil)
	if err != nil {
		return nil, err
	}
	if ps.Len() != int(sh.polys) || ps.Size() != int(sh.mons) {
		return nil, corruptf("shard payload", i, "decoded %d polynomials / %d monomials, footer declares %d / %d",
			ps.Len(), ps.Size(), sh.polys, sh.mons)
	}
	return ps.View(), nil
}

// ForEachShard decodes the shards sequentially in shard order — the
// SetSource contract. Decoded shards are transient: each is released
// (residency-wise) when fn returns.
func (ix *IndexedSet) ForEachShard(fn func(i, firstPoly int, s *polynomial.Set) error) error {
	for i := range ix.shards {
		set, err := ix.DecodeShard(i)
		if err != nil {
			return err
		}
		ix.trackResident(int(ix.shards[i].mons))
		err = fn(i, int(ix.shards[i].firstPoly), set)
		ix.trackResident(-int(ix.shards[i].mons))
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachShardParallel decodes up to workers shards concurrently while
// delivering them to fn sequentially, in shard order, on the calling
// goroutine — same results as ForEachShard for any worker count, with the
// disk reads and checksum/inflate/decode work hidden behind fn. The
// decode window (and with it the worker count) is clamped so undelivered
// shards stay within the residency budget, when one was set.
func (ix *IndexedSet) ForEachShardParallel(workers int, fn func(i, firstPoly int, s *polynomial.Set) error) error {
	workers = parallel.Normalize(workers)
	if workers > len(ix.shards) {
		workers = len(ix.shards)
	}
	if workers > 1 && ix.maxResident > 0 {
		maxMons := uint64(0)
		for i := range ix.shards {
			if ix.shards[i].mons > maxMons {
				maxMons = ix.shards[i].mons
			}
		}
		if maxMons > 0 {
			if w := ix.maxResident / int(maxMons); w < workers {
				workers = w
			}
		}
	}
	if workers <= 1 {
		return ix.ForEachShard(fn)
	}
	// decoded/delivered reconcile the residency counter if the pass stops
	// early: producers past the failure point have tracked shards the
	// (never-run) consume step would have released.
	var decoded, delivered int64
	var decodedMu sync.Mutex
	err := parallel.Ordered(workers, len(ix.shards),
		func(i int) (*polynomial.Set, error) {
			set, err := ix.DecodeShard(i)
			if err != nil {
				return nil, err
			}
			mons := int(ix.shards[i].mons)
			ix.trackResident(mons)
			decodedMu.Lock()
			decoded += int64(mons)
			decodedMu.Unlock()
			return set, nil
		},
		func(i int, set *polynomial.Set) error {
			err := fn(i, int(ix.shards[i].firstPoly), set)
			mons := int(ix.shards[i].mons)
			ix.trackResident(-mons)
			decodedMu.Lock()
			delivered += int64(mons)
			decodedMu.Unlock()
			return err
		})
	if err != nil {
		if leak := decoded - delivered; leak > 0 {
			ix.trackResident(int(-leak))
		}
	}
	return err
}

// readFullAt reads exactly len(p) bytes at off. io.ReaderAt is permitted
// to return io.EOF alongside a complete read; only a short read is an
// error here.
func readFullAt(r io.ReaderAt, p []byte, off int64) error {
	n, err := r.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Compile-time interface conformance: the IndexedSet is the seam that
// lets every stage — and FrontierForestSource's parallel tree solves —
// consume a spilled stream concurrently.
var _ polynomial.IndexedSource = (*IndexedSet)(nil)
