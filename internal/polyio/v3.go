package polyio

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// The v3 binary format extends the v2 frame stream with a delta-varint
// shard payload, optional per-shard DEFLATE framing, and a footer index
// that makes every shard independently decodable:
//
//	magic "CPRVB3\n"
//	repeated shard frames:
//	    'S' marker
//	    flags byte (bit 0: payload is DEFLATE-compressed)
//	    uvarint rawLen     (payload size before compression)
//	    uvarint storedLen  (payload bytes that follow)
//	    payload
//	footer frame:
//	    'F' marker
//	    uvarint footerLen, then the footer payload:
//	        uvarint shard count
//	        per shard: uvarint payload offset, storedLen, rawLen;
//	            flags byte; uvarint first polynomial index, polynomial
//	            count, monomial count; 4-byte LE CRC32 (IEEE) of the
//	            stored payload bytes
//	        uvarint name count, then the used-variable names
//	            (length-prefixed) in first-appearance order across the
//	            shard payloads
//	trailer:
//	    8-byte LE offset of the 'F' marker, tail magic "CPRVF3\n"
//
// The trailer lets a random-access reader (IndexedSet) locate the footer
// by seeking from the end; the footer gives it every shard's byte range,
// size and checksum, so shards decode independently, in any order, on any
// number of goroutines. The footer name table repeats the union of the
// per-shard tables in exactly the order a sequential read would intern
// them, so an indexed open pre-interns the same Vars a sequential read
// produces — random-access decode is bit-identical to the stream.
//
// Each shard payload is self-describing and columnar (grouping like
// fields makes DEFLATE's job easy):
//
//	uvarint nVars, then nVars length-prefixed names (ascending shard-
//	    local index; when the reader's namespace assigns the names in the
//	    same relative order the remap is monotone and terms stay strictly
//	    ascending, otherwise the decoder re-canonicalizes the shard)
//	uvarint nPolys, nMons, nTerms, keyBytes
//	key block (keyBytes bytes, keys concatenated), nPolys uvarint key
//	    lengths
//	nPolys uvarint monomial counts
//	nMons coefficient markers: uvarint c — c even: the exact integer
//	    unzigzag(c/2); c == 1: the coefficient lives in the raw-float
//	    block (the escape hatch for fractional, huge, NaN and -0)
//	raw-float block: the marker-1 coefficients as contiguous 8-byte LE
//	    float64s — keeping them out of the marker column leaves LZ77
//	    match distances between similar floats byte-aligned, which is
//	    what lets DEFLATE exploit their shared structure
//	nMons uvarint term counts
//	per monomial: first variable as uvarint local index, subsequent
//	    ones as uvarint (delta-1) — canonical monomials have strictly
//	    ascending variables; every variable is followed by uvarint
//	    (exponent-1)

// v3Magic identifies the v3 indexed binary set format; v3TailMagic ends
// the trailer.
var (
	v3Magic     = []byte("CPRVB3\n")
	v3TailMagic = []byte("CPRVF3\n")
)

const (
	frameFooter = 'F'

	// v3FlagDeflate marks a shard payload as DEFLATE-compressed.
	v3FlagDeflate = 1 << 0

	// v3MaxShardBytes clamps per-shard payload sizes claimed by a file, so
	// corrupt or adversarial inputs cannot demand absurd allocations.
	v3MaxShardBytes = 1 << 30

	// v3TrailerLen is the fixed byte length of the trailer: 8-byte footer
	// offset plus the tail magic.
	v3TrailerLen = 8 + 7
)

// CorruptError reports v3 data that is structurally invalid — truncated,
// inconsistent with its footer index, or malformed at any field. Shard is
// the shard the failure was detected in, or -1 for header/footer damage.
type CorruptError struct {
	Section string // what was being decoded, e.g. "shard payload", "footer"
	Shard   int    // shard index, or -1
	Err     error  // underlying cause, e.g. io.ErrUnexpectedEOF, a flate error
}

func (e *CorruptError) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("polyio: corrupt v3 %s (shard %d): %v", e.Section, e.Shard, e.Err)
	}
	return fmt.Sprintf("polyio: corrupt v3 %s: %v", e.Section, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// corruptf builds a CorruptError with a formatted cause.
func corruptf(section string, shard int, format string, args ...any) error {
	return &CorruptError{Section: section, Shard: shard, Err: fmt.Errorf(format, args...)}
}

// ChecksumError reports a shard whose stored payload bytes do not match
// the checksum recorded in the footer index.
type ChecksumError struct {
	Shard     int
	Want, Got uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("polyio: v3 shard %d checksum mismatch: footer records %08x, payload hashes to %08x", e.Shard, e.Want, e.Got)
}

// v3Shard is one footer index entry.
type v3Shard struct {
	payloadOff uint64 // file offset of the payload bytes
	storedLen  uint64 // payload bytes as stored (post-compression)
	rawLen     uint64 // payload bytes before compression
	flags      byte
	firstPoly  uint64 // global index of the shard's first polynomial
	polys      uint64
	mons       uint64
	crc        uint32 // CRC32 (IEEE) of the stored payload bytes
}

// V3Options configures the v3 writer.
type V3Options struct {
	// Compress DEFLATE-compresses each shard payload (the flag is
	// per-shard: a payload that compression would grow is stored raw).
	Compress bool
}

// SetWriterV3 incrementally writes a v3 stream, one shard per WriteShard
// call, accumulating the footer index as it goes; Close appends the index
// and trailer. Like SetWriter it never retains shard data, so sets far
// larger than memory stream through it — only the index (a few dozen
// bytes per shard) grows with the stream.
type SetWriterV3 struct {
	bw     *bufio.Writer
	opts   V3Options
	off    uint64 // bytes emitted so far (the writer tracks file offsets itself)
	index  []v3Shard
	names  []string // footer name table, first-appearance order
	seen   map[string]struct{}
	polys  uint64
	raw    []byte // reusable raw-payload buffer
	comp   bytes.Buffer
	fw     *flate.Writer
	closed bool
}

// NewSetWriterV3 writes the v3 magic and returns the writer.
func NewSetWriterV3(w io.Writer, opts V3Options) (*SetWriterV3, error) {
	sw := &SetWriterV3{
		bw:   bufio.NewWriter(w),
		opts: opts,
		seen: make(map[string]struct{}),
	}
	if _, err := sw.bw.Write(v3Magic); err != nil {
		return nil, err
	}
	sw.off = uint64(len(v3Magic))
	return sw, nil
}

// WriteShard appends one shard frame holding the given polynomials and
// records its footer index entry.
func (sw *SetWriterV3) WriteShard(set *polynomial.Set) error {
	if sw.closed {
		return fmt.Errorf("polyio: SetWriterV3 already closed")
	}
	raw, shardNames, mons, err := appendV3Payload(sw.raw[:0], set)
	if err != nil {
		return err
	}
	sw.raw = raw
	for _, n := range shardNames {
		if _, ok := sw.seen[n]; !ok {
			sw.seen[n] = struct{}{}
			sw.names = append(sw.names, n)
		}
	}
	stored := raw
	var flags byte
	if sw.opts.Compress {
		sw.comp.Reset()
		if sw.fw == nil {
			fw, err := flate.NewWriter(&sw.comp, flate.DefaultCompression)
			if err != nil {
				return err
			}
			sw.fw = fw
		} else {
			sw.fw.Reset(&sw.comp)
		}
		if _, err := sw.fw.Write(raw); err != nil {
			return err
		}
		if err := sw.fw.Close(); err != nil {
			return err
		}
		if sw.comp.Len() < len(raw) {
			stored = sw.comp.Bytes()
			flags |= v3FlagDeflate
		}
	}
	var hdr [2 + 2*binary.MaxVarintLen64]byte
	hdr[0] = frameShard
	hdr[1] = flags
	n := 2
	n += binary.PutUvarint(hdr[n:], uint64(len(raw)))
	n += binary.PutUvarint(hdr[n:], uint64(len(stored)))
	if _, err := sw.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := sw.bw.Write(stored); err != nil {
		return err
	}
	sw.index = append(sw.index, v3Shard{
		payloadOff: sw.off + uint64(n),
		storedLen:  uint64(len(stored)),
		rawLen:     uint64(len(raw)),
		flags:      flags,
		firstPoly:  sw.polys,
		polys:      uint64(set.Len()),
		mons:       uint64(mons),
		crc:        crc32.ChecksumIEEE(stored),
	})
	sw.off += uint64(n) + uint64(len(stored))
	sw.polys += uint64(set.Len())
	return nil
}

// Close writes the footer index and trailer, then flushes. The writer
// must not be used afterwards. Close does not close the underlying
// io.Writer.
func (sw *SetWriterV3) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	footer := binary.AppendUvarint(nil, uint64(len(sw.index)))
	for _, sh := range sw.index {
		footer = binary.AppendUvarint(footer, sh.payloadOff)
		footer = binary.AppendUvarint(footer, sh.storedLen)
		footer = binary.AppendUvarint(footer, sh.rawLen)
		footer = append(footer, sh.flags)
		footer = binary.AppendUvarint(footer, sh.firstPoly)
		footer = binary.AppendUvarint(footer, sh.polys)
		footer = binary.AppendUvarint(footer, sh.mons)
		footer = binary.LittleEndian.AppendUint32(footer, sh.crc)
	}
	footer = binary.AppendUvarint(footer, uint64(len(sw.names)))
	for _, n := range sw.names {
		footer = binary.AppendUvarint(footer, uint64(len(n)))
		footer = append(footer, n...)
	}
	footerOff := sw.off
	if err := sw.bw.WriteByte(frameFooter); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(footer)))
	if _, err := sw.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := sw.bw.Write(footer); err != nil {
		return err
	}
	var trailer [v3TrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:8], footerOff)
	copy(trailer[8:], v3TailMagic)
	if _, err := sw.bw.Write(trailer[:]); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// Shards returns the number of shard frames written so far.
func (sw *SetWriterV3) Shards() int { return len(sw.index) }

// WriteSetStreamV3 writes any SetSource as a v3 stream, one frame per
// shard, loading spilled shards one at a time. It is the v3 counterpart
// of WriteSetStream and the format Dataset eviction spills to.
func WriteSetStreamV3(w io.Writer, src polynomial.SetSource, opts V3Options) error {
	sw, err := NewSetWriterV3(w, opts)
	if err != nil {
		return err
	}
	err = src.ForEachShard(func(_, _ int, s *polynomial.Set) error {
		return sw.WriteShard(s)
	})
	if err != nil {
		return err
	}
	return sw.Close()
}

// appendV3Payload encodes one shard as a v3 payload appended to dst,
// returning the buffer, the shard's used-variable names in local-index
// order, and the monomial count. Non-canonical monomials (unsorted or
// duplicate variables) and non-positive exponents are rejected: the delta
// encoding requires strictly ascending variables.
func appendV3Payload(dst []byte, set *polynomial.Set) ([]byte, []string, int, error) {
	varNames, local, err := usedVarTable(set)
	if err != nil {
		return nil, nil, 0, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(varNames)))
	for _, n := range varNames {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	nMons, nTerms, keyBytes := 0, 0, 0
	for i := range set.Polys {
		p := &set.Polys[i]
		nMons += len(p.Mons)
		nTerms += p.NumTerms()
		keyBytes += len(set.Keys[i])
	}
	dst = binary.AppendUvarint(dst, uint64(set.Len()))
	dst = binary.AppendUvarint(dst, uint64(nMons))
	dst = binary.AppendUvarint(dst, uint64(nTerms))
	dst = binary.AppendUvarint(dst, uint64(keyBytes))
	for _, key := range set.Keys {
		dst = append(dst, key...)
	}
	for _, key := range set.Keys {
		dst = binary.AppendUvarint(dst, uint64(len(key)))
	}
	for i := range set.Polys {
		dst = binary.AppendUvarint(dst, uint64(len(set.Polys[i].Mons)))
	}
	var rawCoefs []uint64
	for i := range set.Polys {
		for _, m := range set.Polys[i].Mons {
			dst, rawCoefs = appendV3Coef(dst, m.Coef, rawCoefs)
		}
	}
	// Raw coefficients go in one contiguous block after the marker column
	// instead of inline between markers: LZ77 match distances between
	// structurally similar floats stay byte-aligned multiples of 8, which
	// measurably beats interleaving (and beats byte-plane or XOR-delta
	// transposes, which destroy the cross-float matches) on provenance
	// coefficients.
	for _, bits := range rawCoefs {
		dst = binary.LittleEndian.AppendUint64(dst, bits)
	}
	for i := range set.Polys {
		for _, m := range set.Polys[i].Mons {
			dst = binary.AppendUvarint(dst, uint64(len(m.Terms)))
		}
	}
	for i := range set.Polys {
		for _, m := range set.Polys[i].Mons {
			prev := int32(-1)
			for _, t := range m.Terms {
				lv := local[t.Var]
				if lv <= prev {
					return nil, nil, 0, fmt.Errorf("polyio: v3 requires canonical monomials (variables strictly ascending; %q repeats or reorders)", set.Names.Name(t.Var))
				}
				if t.Exp <= 0 {
					return nil, nil, 0, fmt.Errorf("polyio: non-positive exponent %d on variable %q", t.Exp, set.Names.Name(t.Var))
				}
				if prev < 0 {
					dst = binary.AppendUvarint(dst, uint64(lv))
				} else {
					dst = binary.AppendUvarint(dst, uint64(lv-prev-1))
				}
				dst = binary.AppendUvarint(dst, uint64(t.Exp-1))
				prev = lv
			}
		}
	}
	return dst, varNames, nMons, nil
}

// appendV3Coef encodes one coefficient marker: exact integers with
// |i| <= 2^51 become a zigzag uvarint (even marker values); everything
// else — huge, fractional, NaN, negative zero — gets marker 1 and its
// raw float64 bits appended to raw, for the byte-plane block that
// follows the marker column. Every float64 bit pattern round-trips
// exactly.
func appendV3Coef(dst []byte, c float64, raw []uint64) ([]byte, []uint64) {
	if c == math.Trunc(c) && c >= -(1<<51) && c <= 1<<51 {
		i := int64(c)
		if math.Float64bits(float64(i)) == math.Float64bits(c) {
			z := uint64((i << 1) ^ (i >> 63)) // zigzag
			return binary.AppendUvarint(dst, z<<1), raw
		}
	}
	return binary.AppendUvarint(dst, 1), append(raw, math.Float64bits(c))
}

// v3payloadReader decodes one raw (decompressed) shard payload from an
// in-memory byte slice.
type v3payloadReader struct {
	data  []byte
	pos   int
	shard int // for error attribution
}

func (r *v3payloadReader) corrupt(format string, args ...any) error {
	return corruptf("shard payload", r.shard, format, args...)
}

func (r *v3payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, r.corrupt("bad varint at byte %d: %w", r.pos, io.ErrUnexpectedEOF)
	}
	r.pos += n
	return v, nil
}

// count reads a uvarint bounded by max and by the payload size: no field
// can legitimately claim more entries than there are payload bytes, so a
// corrupt count fails here instead of provoking a huge allocation.
func (r *v3payloadReader) count(what string, max uint64) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > max || v > uint64(len(r.data)) {
		return 0, r.corrupt("%s count %d out of range", what, v)
	}
	return int(v), nil
}

// decodeV3Payload decodes one raw shard payload into a PackedSet over
// names. When lookupOnly is set, variable names must already be interned
// (the indexed reader pre-interns the footer table, which makes
// concurrent shard decodes race-free); otherwise names are interned on
// first use, exactly like a v1/v2 read. termScratch is reused between
// calls; pass nil to let the decoder allocate.
func decodeV3Payload(data []byte, names *polynomial.Names, shard int, lookupOnly bool, termScratch []polynomial.Term) (*polynomial.PackedSet, []polynomial.Term, error) {
	r := &v3payloadReader{data: data, shard: shard}
	nVars, err := r.count("variable", 1<<28)
	if err != nil {
		return nil, termScratch, err
	}
	remap := make([]polynomial.Var, nVars)
	monotone := true // remap preserves the writer's variable order
	for i := range remap {
		n, err := r.count("name byte", 1<<24)
		if err != nil {
			return nil, termScratch, err
		}
		if r.pos+n > len(data) {
			return nil, termScratch, r.corrupt("name %d overruns payload: %w", i, io.ErrUnexpectedEOF)
		}
		nameBytes := data[r.pos : r.pos+n]
		r.pos += n
		if lookupOnly {
			v, ok := names.Lookup(string(nameBytes))
			if !ok {
				return nil, termScratch, r.corrupt("variable %q not in the footer name table", nameBytes)
			}
			remap[i] = v
		} else {
			remap[i] = names.VarBytes(nameBytes)
		}
		if i > 0 && remap[i] <= remap[i-1] {
			monotone = false
		}
	}
	nPolys, err := r.count("polynomial", math.MaxInt32)
	if err != nil {
		return nil, termScratch, err
	}
	nMons, err := r.count("monomial", math.MaxInt32)
	if err != nil {
		return nil, termScratch, err
	}
	nTerms, err := r.count("term", math.MaxInt32)
	if err != nil {
		return nil, termScratch, err
	}
	keyBytes, err := r.count("key byte", math.MaxInt32)
	if err != nil {
		return nil, termScratch, err
	}
	if r.pos+keyBytes > len(data) {
		return nil, termScratch, r.corrupt("key block overruns payload: %w", io.ErrUnexpectedEOF)
	}
	keyBlock := string(data[r.pos : r.pos+keyBytes])
	r.pos += keyBytes

	keyLens := make([]int, nPolys)
	sumKeys := 0
	for i := range keyLens {
		n, err := r.count("key length", uint64(keyBytes))
		if err != nil {
			return nil, termScratch, err
		}
		keyLens[i] = n
		sumKeys += n
	}
	if sumKeys != keyBytes {
		return nil, termScratch, r.corrupt("key lengths sum to %d, key block holds %d bytes", sumKeys, keyBytes)
	}
	monCounts := make([]int, nPolys)
	sumMons := 0
	for i := range monCounts {
		n, err := r.count("monomial", uint64(nMons))
		if err != nil {
			return nil, termScratch, err
		}
		monCounts[i] = n
		sumMons += n
	}
	if sumMons != nMons {
		return nil, termScratch, r.corrupt("per-polynomial monomial counts sum to %d, shard declares %d", sumMons, nMons)
	}
	coefs := make([]float64, nMons)
	var rawIdx []int32
	for i := range coefs {
		c, err := r.uvarint()
		if err != nil {
			return nil, termScratch, err
		}
		switch {
		case c&1 == 0:
			z := c >> 1
			coefs[i] = float64(int64(z>>1) ^ -int64(z&1)) // unzigzag
		case c == 1:
			rawIdx = append(rawIdx, int32(i))
		default:
			return nil, termScratch, r.corrupt("bad coefficient marker %d", c)
		}
	}
	// Read the raw coefficients from the contiguous float block.
	nRaw := len(rawIdx)
	if r.pos+8*nRaw > len(data) {
		return nil, termScratch, r.corrupt("raw coefficient block overruns payload: %w", io.ErrUnexpectedEOF)
	}
	for _, mi := range rawIdx {
		coefs[mi] = math.Float64frombits(binary.LittleEndian.Uint64(data[r.pos:]))
		r.pos += 8
	}
	termCounts := make([]int, nMons)
	sumTerms := 0
	for i := range termCounts {
		n, err := r.count("term", uint64(nTerms))
		if err != nil {
			return nil, termScratch, err
		}
		termCounts[i] = n
		sumTerms += n
	}
	if sumTerms != nTerms {
		return nil, termScratch, r.corrupt("per-monomial term counts sum to %d, shard declares %d", sumTerms, nTerms)
	}

	ps := polynomial.NewPackedSet(names)
	ps.Grow(nPolys, nMons, nTerms)
	if c := cap(termScratch); c < 64 {
		termScratch = make([]polynomial.Term, 0, 256)
	}
	// readTerms delta-decodes one monomial's term vector into dst. The
	// stored local indices are strictly ascending by construction of the
	// delta encoding; the remapped Vars are ascending only when the remap
	// is monotone.
	readTerms := func(count int, dst []polynomial.Term) ([]polynomial.Term, error) {
		local := int64(-1)
		for ti := 0; ti < count; ti++ {
			dv, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			if local < 0 {
				local = int64(dv)
			} else {
				local += int64(dv) + 1
			}
			if local >= int64(nVars) {
				return dst, r.corrupt("variable index %d out of range [0,%d)", local, nVars)
			}
			e, err := r.uvarint()
			if err != nil {
				return dst, err
			}
			if e >= math.MaxInt32 {
				return dst, r.corrupt("bad exponent %d", e+1)
			}
			dst = append(dst, polynomial.TExp(remap[local], int32(e+1)))
		}
		return dst, nil
	}
	mon := 0
	keyPos := 0
	var monScratch []polynomial.Monomial
	for pi := 0; pi < nPolys; pi++ {
		ps.BeginPoly(keyBlock[keyPos : keyPos+keyLens[pi]])
		keyPos += keyLens[pi]
		if monotone {
			// Fast path: the remap preserves variable order, so the stored
			// canonical form IS the canonical form over names.
			for mi := 0; mi < monCounts[pi]; mi++ {
				terms, err := readTerms(termCounts[mon], termScratch[:0])
				termScratch = terms[:0]
				if err != nil {
					return nil, termScratch, err
				}
				ps.AppendMonomial(coefs[mon], terms)
				mon++
			}
			continue
		}
		// The remap reorders variables (reading into a namespace whose ids
		// were interned in a different order), so re-canonicalize exactly
		// like the v1/v2 readers do through Builder: sort each monomial's
		// terms, then the polynomial's monomials. Merging is unnecessary —
		// the writer encoded a canonical polynomial and the remap is a
		// bijection on its variables — but a corrupt table can alias two
		// names to one Var, which surfaces here as a duplicate.
		monScratch = monScratch[:0]
		for mi := 0; mi < monCounts[pi]; mi++ {
			terms, err := readTerms(termCounts[mon], make([]polynomial.Term, 0, termCounts[mon]))
			if err != nil {
				return nil, termScratch, err
			}
			sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
			for t := 1; t < len(terms); t++ {
				if terms[t].Var == terms[t-1].Var {
					return nil, termScratch, r.corrupt("shard name table aliases two names to variable %d", terms[t].Var)
				}
			}
			monScratch = append(monScratch, polynomial.Monomial{Coef: coefs[mon], Terms: terms})
			mon++
		}
		sort.Slice(monScratch, func(a, b int) bool {
			return polynomial.CompareTerms(monScratch[a].Terms, monScratch[b].Terms) < 0
		})
		for mi := range monScratch {
			if mi > 0 && polynomial.CompareTerms(monScratch[mi-1].Terms, monScratch[mi].Terms) == 0 {
				return nil, termScratch, r.corrupt("polynomial %d repeats a monomial after remapping", pi)
			}
			ps.AppendMonomial(monScratch[mi].Coef, monScratch[mi].Terms)
		}
	}
	if r.pos != len(data) {
		return nil, termScratch, r.corrupt("%d trailing bytes after the last monomial", len(data)-r.pos)
	}
	return ps, termScratch, nil
}

// inflateV3 decompresses a DEFLATE-framed shard payload, verifying the
// decompressed size matches the frame's rawLen exactly.
func inflateV3(stored []byte, rawLen int, shard int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(stored))
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, corruptf("deflate payload", shard, "inflating: %w", err)
	}
	// The payload must end exactly at rawLen: trailing compressed data
	// means the frame header lies about the size.
	var one [1]byte
	if n, err := fr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, corruptf("deflate payload", shard, "payload inflates past its declared %d bytes", rawLen)
	}
	if err := fr.Close(); err != nil {
		return nil, corruptf("deflate payload", shard, "closing inflater: %w", err)
	}
	return raw, nil
}

// parseV3Footer parses a footer payload into the index entries and the
// global name table.
func parseV3Footer(data []byte) ([]v3Shard, []string, error) {
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, corruptf("footer", -1, "bad varint at byte %d: %w", pos, io.ErrUnexpectedEOF)
		}
		pos += n
		return v, nil
	}
	nShards, err := uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nShards > uint64(len(data)) {
		return nil, nil, corruptf("footer", -1, "shard count %d out of range", nShards)
	}
	shards := make([]v3Shard, nShards)
	for i := range shards {
		sh := &shards[i]
		if sh.payloadOff, err = uvarint(); err != nil {
			return nil, nil, err
		}
		if sh.storedLen, err = uvarint(); err != nil {
			return nil, nil, err
		}
		if sh.rawLen, err = uvarint(); err != nil {
			return nil, nil, err
		}
		if pos >= len(data) {
			return nil, nil, corruptf("footer", -1, "truncated at shard %d flags: %w", i, io.ErrUnexpectedEOF)
		}
		sh.flags = data[pos]
		pos++
		if sh.firstPoly, err = uvarint(); err != nil {
			return nil, nil, err
		}
		if sh.polys, err = uvarint(); err != nil {
			return nil, nil, err
		}
		if sh.mons, err = uvarint(); err != nil {
			return nil, nil, err
		}
		if pos+4 > len(data) {
			return nil, nil, corruptf("footer", -1, "truncated at shard %d checksum: %w", i, io.ErrUnexpectedEOF)
		}
		sh.crc = binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		if sh.storedLen > v3MaxShardBytes || sh.rawLen > v3MaxShardBytes {
			return nil, nil, corruptf("footer", i, "shard claims %d stored / %d raw bytes (max %d)", sh.storedLen, sh.rawLen, v3MaxShardBytes)
		}
		if sh.flags&^byte(v3FlagDeflate) != 0 {
			return nil, nil, corruptf("footer", i, "unknown shard flags %#x", sh.flags)
		}
		if sh.flags&v3FlagDeflate == 0 && sh.storedLen != sh.rawLen {
			return nil, nil, corruptf("footer", i, "uncompressed shard stores %d bytes but declares %d raw", sh.storedLen, sh.rawLen)
		}
	}
	nNames, err := uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nNames > uint64(len(data)) {
		return nil, nil, corruptf("footer", -1, "name count %d out of range", nNames)
	}
	names := make([]string, nNames)
	for i := range names {
		n, err := uvarint()
		if err != nil {
			return nil, nil, err
		}
		if n > 1<<24 || pos+int(n) > len(data) {
			return nil, nil, corruptf("footer", -1, "name %d overruns footer: %w", i, io.ErrUnexpectedEOF)
		}
		names[i] = string(data[pos : pos+int(n)])
		pos += int(n)
	}
	if pos != len(data) {
		return nil, nil, corruptf("footer", -1, "%d trailing bytes", len(data)-pos)
	}
	return shards, names, nil
}
