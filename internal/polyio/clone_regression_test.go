package polyio

import (
	"bytes"
	"testing"

	"github.com/cobra-prov/cobra/internal/polynomial"
)

// TestCloneNamespaceSerializesIdentically pins the serialized bytes of
// a set against namespace cloning: polynomial.Names.Clone rebuilds its
// name→Var index from the ordered names slice (no map iteration), so a
// set serialized under a cloned namespace must be byte-identical to the
// original in every format. A regression that lets map visit order
// reach Clone (or the writers) breaks the exact-bytes pin below.
func TestCloneNamespaceSerializesIdentically(t *testing.T) {
	names := polynomial.NewNames()
	// Intern in deliberately non-alphabetical order: the namespace's
	// Var order (z, a, m) must survive cloning and serialization.
	names.Vars("z", "a", "m")
	set := polynomial.NewSet(names)
	if err := set.Add("g1", polynomial.MustParse("2*z*a + m^3", names)); err != nil {
		t.Fatal(err)
	}
	if err := set.Add("g2", polynomial.MustParse("a + 4", names)); err != nil {
		t.Fatal(err)
	}

	cloned := &polynomial.Set{Names: names.Clone(), Keys: set.Keys, Polys: set.Polys}

	type format struct {
		name  string
		write func(*bytes.Buffer, *polynomial.Set) error
	}
	formats := []format{
		{"text", func(b *bytes.Buffer, s *polynomial.Set) error { return WriteSetText(b, s) }},
		{"json", func(b *bytes.Buffer, s *polynomial.Set) error { return WriteSetJSON(b, s) }},
		{"binary", func(b *bytes.Buffer, s *polynomial.Set) error { return WriteSetBinary(b, s) }},
	}
	for _, f := range formats {
		var orig, clone bytes.Buffer
		if err := f.write(&orig, set); err != nil {
			t.Fatalf("%s: write original: %v", f.name, err)
		}
		if err := f.write(&clone, cloned); err != nil {
			t.Fatalf("%s: write clone: %v", f.name, err)
		}
		if !bytes.Equal(orig.Bytes(), clone.Bytes()) {
			t.Errorf("%s: cloned namespace changed serialized bytes\noriginal: %q\nclone:    %q",
				f.name, orig.Bytes(), clone.Bytes())
		}
	}

	// Exact-bytes pin for the text format: if any map iteration starts
	// influencing writer output (or Clone), this stops being stable.
	var txt bytes.Buffer
	if err := WriteSetText(&txt, cloned); err != nil {
		t.Fatal(err)
	}
	const want = "# cobra provenance set v2\ng1\t2*z*a + m^3\ng2\t4 + a\n"
	if txt.String() != want {
		t.Errorf("pinned text output changed:\ngot:  %q\nwant: %q", txt.String(), want)
	}
}

// TestCloneIndependent pins Clone's semantics: interning into the clone
// must not leak into the original, and vice versa, while shared names
// keep their Vars.
func TestCloneIndependent(t *testing.T) {
	names := polynomial.NewNames()
	vz := names.Var("z")
	c := names.Clone()
	if v, ok := c.Lookup("z"); !ok || v != vz {
		t.Fatalf("clone lost z: %v %v", v, ok)
	}
	cNew := c.Var("only-in-clone")
	if _, ok := names.Lookup("only-in-clone"); ok {
		t.Fatal("interning into clone leaked into original")
	}
	if got := c.Name(cNew); got != "only-in-clone" {
		t.Fatalf("clone Name(%d) = %q", cNew, got)
	}
	if names.Len() != 1 || c.Len() != 2 {
		t.Fatalf("lens: orig %d clone %d", names.Len(), c.Len())
	}
}
