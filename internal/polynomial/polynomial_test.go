package polynomial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNamesIntern(t *testing.T) {
	n := NewNames()
	a := n.Var("a")
	b := n.Var("b")
	if a == b {
		t.Fatalf("distinct names got same Var %d", a)
	}
	if got := n.Var("a"); got != a {
		t.Fatalf("re-interning a: got %d want %d", got, a)
	}
	if n.Name(a) != "a" || n.Name(b) != "b" {
		t.Fatalf("round trip failed: %q %q", n.Name(a), n.Name(b))
	}
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
	if _, ok := n.Lookup("c"); ok {
		t.Fatal("Lookup of absent name reported ok")
	}
	c := n.Clone()
	c.Var("c")
	if n.Len() != 2 || c.Len() != 3 {
		t.Fatalf("clone not independent: %d %d", n.Len(), c.Len())
	}
}

func TestNamesVars(t *testing.T) {
	n := NewNames()
	vs := n.Vars("x", "y", "x")
	if len(vs) != 3 || vs[0] != vs[2] || vs[0] == vs[1] {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestNamePanicsOnForeignVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Var")
		}
	}()
	NewNames().Name(5)
}

func TestMonoNormalization(t *testing.T) {
	n := NewNames()
	x, y := n.Var("x"), n.Var("y")
	m := Mono(2, T(y), T(x), T(y)) // 2*y*x*y = 2*x*y^2
	if len(m.Terms) != 2 || m.Terms[0].Var != x || m.Terms[0].Exp != 1 || m.Terms[1].Var != y || m.Terms[1].Exp != 2 {
		t.Fatalf("normalize: %+v", m)
	}
	if m.Degree() != 3 {
		t.Fatalf("degree = %d, want 3", m.Degree())
	}
	if e, ok := m.ExpOf(y); !ok || e != 2 {
		t.Fatalf("ExpOf(y) = %d,%v", e, ok)
	}
	if _, ok := m.ExpOf(Var(99)); ok {
		t.Fatal("ExpOf of absent var reported ok")
	}
	wo := m.WithoutVar(y)
	if len(wo.Terms) != 1 || wo.Terms[0].Var != x {
		t.Fatalf("WithoutVar: %+v", wo)
	}
}

func TestMonoZeroExponentCancels(t *testing.T) {
	m := Mono(3, TExp(0, 2), TExp(0, -2))
	if !m.IsConstant() {
		t.Fatalf("x^2*x^-2 should normalize to constant, got %+v", m)
	}
}

func TestMulMono(t *testing.T) {
	n := NewNames()
	x, y, z := n.Var("x"), n.Var("y"), n.Var("z")
	a := Mono(2, T(x), T(y))
	b := Mono(3, T(y), T(z))
	c := MulMono(a, b)
	want := Mono(6, T(x), TExp(y, 2), T(z))
	if c.Coef != want.Coef || compareTerms(c.Terms, want.Terms) != 0 {
		t.Fatalf("MulMono = %+v, want %+v", c, want)
	}
}

func TestAddMergesAndCancels(t *testing.T) {
	n := NewNames()
	x := n.Var("x")
	p := New(Mono(2, T(x)), Mono(1))
	q := New(Mono(-2, T(x)), Mono(4))
	r := Add(p, q)
	if c, ok := r.IsConstant(); !ok || c != 5 {
		t.Fatalf("2x+1 + (-2x+4) = %v, want constant 5", r.String(n))
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	n := NewNames()
	x := n.Var("x")
	var b Builder
	b.Add(1.5, T(x))
	b.Add(2.5, T(x))
	b.Add(0, T(x))
	p := b.Polynomial()
	if len(p.Mons) != 1 || p.Mons[0].Coef != 4 {
		t.Fatalf("builder merge: %s", p.String(n))
	}
}

func TestMulDistributes(t *testing.T) {
	n := NewNames()
	x, y := n.Var("x"), n.Var("y")
	// (x+1)(y+2) = xy + 2x + y + 2
	p := New(Mono(1, T(x)), Mono(1))
	q := New(Mono(1, T(y)), Mono(2))
	r := Mul(p, q)
	want := New(Mono(1, T(x), T(y)), Mono(2, T(x)), Mono(1, T(y)), Mono(2))
	if !Equal(r, want) {
		t.Fatalf("got %s want %s", r.String(n), want.String(n))
	}
}

func TestMapVarsMerges(t *testing.T) {
	n := NewNames()
	b1, b2, sb := n.Var("b1"), n.Var("b2"), n.Var("SB")
	// 3*b1 + 4*b2 --[b1,b2 -> SB]--> 7*SB
	p := New(Mono(3, T(b1)), Mono(4, T(b2)))
	q := MapVars(p, func(v Var) Var {
		if v == b1 || v == b2 {
			return sb
		}
		return v
	})
	want := New(Mono(7, T(sb)))
	if !Equal(q, want) {
		t.Fatalf("MapVars: got %s want %s", q.String(n), want.String(n))
	}
}

func TestMapVarsExponentMerge(t *testing.T) {
	n := NewNames()
	x, y, u := n.Var("x"), n.Var("y"), n.Var("u")
	// x*y --[x,y->u]--> u^2
	p := New(Mono(5, T(x), T(y)))
	q := MapVars(p, func(Var) Var { return u })
	want := New(Mono(5, TExp(u, 2)))
	if !Equal(q, want) {
		t.Fatalf("got %s want %s", q.String(n), want.String(n))
	}
}

func TestEval(t *testing.T) {
	n := NewNames()
	x, y := n.Var("x"), n.Var("y")
	p := New(Mono(2, TExp(x, 2)), Mono(3, T(y)), Mono(-1))
	val := func(v Var) float64 {
		if v == x {
			return 3
		}
		return 5
	}
	if got := p.Eval(val); got != 2*9+15-1 {
		t.Fatalf("Eval = %v, want 32", got)
	}
	dense := []float64{3, 5}
	if got := p.EvalDense(dense); got != 32 {
		t.Fatalf("EvalDense = %v, want 32", got)
	}
}

func TestEvalDenseDefaultsToOne(t *testing.T) {
	n := NewNames()
	x := n.Var("x")
	p := New(Mono(7, T(x)))
	if got := p.EvalDense(nil); got != 7 {
		t.Fatalf("EvalDense(nil) = %v, want 7 (identity valuation)", got)
	}
}

func TestPartialEval(t *testing.T) {
	n := NewNames()
	x, y := n.Var("x"), n.Var("y")
	p := New(Mono(2, T(x), T(y)), Mono(3, T(x)))
	q := PartialEval(p, func(v Var) (float64, bool) {
		if v == x {
			return 10, true
		}
		return 0, false
	})
	want := New(Mono(20, T(y)), Mono(30))
	if !Equal(q, want) {
		t.Fatalf("PartialEval: got %s want %s", q.String(n), want.String(n))
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	n := NewNames()
	cases := []string{
		"0",
		"42",
		"-3.5",
		"x",
		"2*x",
		"x^2",
		"208.8*p1*m1 + 240*p1*m3",
		"-x + y - 7",
		"2*x^3*y + 0.5*z",
	}
	for _, in := range cases {
		p := MustParse(in, n)
		out := p.String(n)
		q := MustParse(out, n)
		if !Equal(p, q) {
			t.Errorf("round trip %q -> %q -> not equal", in, out)
		}
	}
}

func TestParsePaperExample(t *testing.T) {
	n := NewNames()
	p := MustParse("208.8*p1*m1 + 240*p1*m3 + 127.4*f1*m1 + 114.45*f1*m3 + 75.9*y1*m1 + 72.5*y1*m3 + 42*v*m1 + 24.2*v*m3", n)
	if p.NumMonomials() != 8 {
		t.Fatalf("P1 has %d monomials, want 8", p.NumMonomials())
	}
	if got := len(p.VarList()); got != 6 {
		t.Fatalf("P1 has %d distinct vars, want 6", got)
	}
	// Under the all-ones valuation P1 sums its coefficients.
	sum := p.Eval(func(Var) float64 { return 1 })
	if math.Abs(sum-(208.8+240+127.4+114.45+75.9+72.5+42+24.2)) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestParseErrors(t *testing.T) {
	n := NewNames()
	bad := []string{"", "+", "x +", "2**x", "x^", "x^0", "x^-1", "3..5", "@", "x y"}
	for _, in := range bad {
		if _, err := Parse(in, n); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseImplicitCoefficientAndMergedInput(t *testing.T) {
	n := NewNames()
	p := MustParse("x*x + x^2", n)
	x, _ := n.Lookup("x")
	want := New(Mono(2, TExp(x, 2)))
	if !Equal(p, want) {
		t.Fatalf("got %s", p.String(n))
	}
}

func TestSetBasics(t *testing.T) {
	n := NewNames()
	s := NewSet(n)
	s.Add("g1", MustParse("2*x + 3*y", n))
	s.Add("g2", MustParse("x*y", n))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3", s.Size())
	}
	if s.NumVars() != 2 {
		t.Fatalf("NumVars = %d, want 2", s.NumVars())
	}
	if s.NumTerms() != 4 {
		t.Fatalf("NumTerms = %d, want 4", s.NumTerms())
	}
	if _, ok := s.Poly("g1"); !ok {
		t.Fatal("Poly(g1) not found")
	}
	if _, ok := s.Poly("nope"); ok {
		t.Fatal("Poly(nope) found")
	}
	vals := s.EvalAll(func(Var) float64 { return 2 })
	if vals[0] != 10 || vals[1] != 4 {
		t.Fatalf("EvalAll = %v", vals)
	}
}

func TestSetMapVars(t *testing.T) {
	n := NewNames()
	s := NewSet(n)
	s.Add("g", MustParse("2*a + 3*b", n))
	u := n.Var("u")
	m := s.MapVars(func(Var) Var { return u })
	if m.Size() != 1 {
		t.Fatalf("mapped size = %d, want 1", m.Size())
	}
	if got := m.Polys[0].String(n); got != "5*u" {
		t.Fatalf("mapped poly = %s", got)
	}
	// Original untouched.
	if s.Size() != 2 {
		t.Fatal("MapVars mutated the source set")
	}
}

func TestSetClone(t *testing.T) {
	n := NewNames()
	s := NewSet(n)
	s.Add("g", MustParse("x + y", n))
	c := s.Clone()
	c.Polys[0].Mons[0].Coef = 99
	if s.Polys[0].Mons[0].Coef == 99 {
		t.Fatal("Clone shares monomial storage")
	}
}

// --- property-based tests -------------------------------------------------

// randPoly generates a random canonical polynomial over nv variables.
func randPoly(r *rand.Rand, nv int) Polynomial {
	var b Builder
	nm := r.Intn(6)
	for i := 0; i < nm; i++ {
		coef := float64(r.Intn(21) - 10)
		var terms []Term
		nt := r.Intn(4)
		for j := 0; j < nt; j++ {
			terms = append(terms, TExp(Var(r.Intn(nv)), int32(1+r.Intn(3))))
		}
		b.Add(coef, terms...)
	}
	return b.Polynomial()
}

func randVal(r *rand.Rand, nv int) []float64 {
	vals := make([]float64, nv)
	for i := range vals {
		vals[i] = float64(r.Intn(7)) - 3 // small integers keep arithmetic exact
	}
	return vals
}

func TestPropertyRingLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const nv = 4
	for i := 0; i < 300; i++ {
		p, q, s := randPoly(r, nv), randPoly(r, nv), randPoly(r, nv)
		if !Equal(Add(p, q), Add(q, p)) {
			t.Fatalf("Add not commutative: %v %v", p, q)
		}
		if !Equal(Add(Add(p, q), s), Add(p, Add(q, s))) {
			t.Fatalf("Add not associative")
		}
		if !Equal(Mul(p, q), Mul(q, p)) {
			t.Fatalf("Mul not commutative")
		}
		if !Equal(Mul(Mul(p, q), s), Mul(p, Mul(q, s))) {
			t.Fatalf("Mul not associative")
		}
		if !Equal(Mul(p, Add(q, s)), Add(Mul(p, q), Mul(p, s))) {
			t.Fatalf("Mul does not distribute over Add")
		}
		if !Equal(Add(p, Zero()), p) {
			t.Fatalf("additive identity broken")
		}
		if !Equal(Mul(p, Const(1)), p) {
			t.Fatalf("multiplicative identity broken")
		}
		if !Mul(p, Zero()).IsZero() {
			t.Fatalf("annihilation broken")
		}
		if !Add(p, Neg(p)).IsZero() {
			t.Fatalf("additive inverse broken")
		}
	}
}

func TestPropertyEvalHomomorphism(t *testing.T) {
	// Evaluation is a ring homomorphism: eval(p+q) = eval(p)+eval(q) and
	// eval(p*q) = eval(p)*eval(q). This is the algebraic heart of the
	// commutativity-with-valuation guarantee the paper relies on.
	r := rand.New(rand.NewSource(2))
	const nv = 4
	for i := 0; i < 300; i++ {
		p, q := randPoly(r, nv), randPoly(r, nv)
		vals := randVal(r, nv)
		val := func(v Var) float64 { return vals[v] }
		if got, want := Add(p, q).Eval(val), p.Eval(val)+q.Eval(val); got != want {
			t.Fatalf("eval(p+q)=%v != %v", got, want)
		}
		if got, want := Mul(p, q).Eval(val), p.Eval(val)*q.Eval(val); got != want {
			t.Fatalf("eval(p*q)=%v != %v", got, want)
		}
	}
}

func TestPropertyMapVarsPreservesValuation(t *testing.T) {
	// For any map f and valuation val on metas, evaluating MapVars(p, f)
	// under val equals evaluating p under val∘f. This is exactly the
	// soundness of abstraction for tree-consistent valuations.
	r := rand.New(rand.NewSource(3))
	const nv = 5
	for i := 0; i < 300; i++ {
		p := randPoly(r, nv)
		mapping := make([]Var, nv)
		for j := range mapping {
			mapping[j] = Var(r.Intn(nv))
		}
		f := func(v Var) Var { return mapping[v] }
		vals := randVal(r, nv)
		val := func(v Var) float64 { return vals[v] }
		got := MapVars(p, f).Eval(val)
		want := p.Eval(func(v Var) float64 { return val(f(v)) })
		if got != want {
			t.Fatalf("MapVars valuation mismatch: %v != %v", got, want)
		}
	}
}

func TestPropertyParsePrintFixpoint(t *testing.T) {
	n := NewNames()
	for i := 0; i < 6; i++ {
		n.Var(string(rune('a' + i)))
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		p := randPoly(r, 6)
		s1 := p.String(n)
		q := MustParse(s1, n)
		if !Equal(p, q) {
			t.Fatalf("parse(print(p)) != p for %s", s1)
		}
		if s2 := q.String(n); s1 != s2 {
			t.Fatalf("printing not a fixpoint: %q vs %q", s1, s2)
		}
	}
}

func TestQuickCanonicalAddIsMerge(t *testing.T) {
	// Adding a polynomial to itself doubles each coefficient and preserves
	// the monomial structure.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 4)
		d := Add(p, p)
		if len(d.Mons) > len(p.Mons) {
			return false
		}
		return Equal(d, Scale(p, 2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubSelfIsZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 4)
		return Sub(p, p).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIpow(t *testing.T) {
	if ipow(2, 10) != 1024 {
		t.Fatalf("2^10 = %v", ipow(2, 10))
	}
	if ipow(3, 0) != 1 {
		t.Fatalf("3^0 = %v", ipow(3, 0))
	}
	if ipow(2, -2) != 0.25 {
		t.Fatalf("2^-2 = %v", ipow(2, -2))
	}
}

func TestAlmostEqual(t *testing.T) {
	n := NewNames()
	x := n.Var("x")
	p := New(Mono(1.0000001, T(x)))
	q := New(Mono(1.0, T(x)))
	if !AlmostEqual(p, q, 1e-5) {
		t.Fatal("AlmostEqual too strict")
	}
	if AlmostEqual(p, q, 1e-9) {
		t.Fatal("AlmostEqual too lax")
	}
	if AlmostEqual(p, Zero(), 1e-3) {
		t.Fatal("AlmostEqual ignores structure")
	}
}

func TestDegreeAndCounts(t *testing.T) {
	n := NewNames()
	p := MustParse("2*x^3*y + z + 5", n)
	if p.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d, want 4", p.MaxDegree())
	}
	if p.NumTerms() != 3 {
		t.Fatalf("NumTerms = %d, want 3", p.NumTerms())
	}
	if p.NumMonomials() != 3 {
		t.Fatalf("NumMonomials = %d", p.NumMonomials())
	}
}
