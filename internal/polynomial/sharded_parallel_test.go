package polynomial

import (
	"errors"
	"fmt"
	"testing"
)

// passRecord is one fn invocation observed during a shard pass.
type passRecord struct {
	i         int
	firstPoly int
	keys      []string
	size      int
}

// recordPass runs one pass with the given runner and returns the sequence
// of fn invocations, copying everything fn may not retain.
func recordPass(t *testing.T, run func(fn func(i, firstPoly int, s *Set) error) error) []passRecord {
	t.Helper()
	var got []passRecord
	err := run(func(i, firstPoly int, s *Set) error {
		got = append(got, passRecord{
			i:         i,
			firstPoly: firstPoly,
			keys:      append([]string(nil), s.Keys...),
			size:      s.Size(),
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// spilledSet builds a sharded set whose shards are mostly on disk: a
// tight budget during the build forces spilling, then the budget is
// widened (white-box) so a parallel pass has headroom for its reorder
// window instead of degrading to the sequential path.
func spilledSet(t *testing.T, polys, buildBudget, runBudget int) *ShardedSet {
	t.Helper()
	set := buildTestSet(polys, 10)
	ss, err := BuildSharded(set, ShardOptions{
		TargetMonomials:      10,
		MaxResidentMonomials: buildBudget,
		SpillDir:             t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	if ss.NumShards() < 4 || ss.SpilledShards() < 4 {
		t.Fatalf("fixture too small: %d shards, %d spilled", ss.NumShards(), ss.SpilledShards())
	}
	ss.opts.MaxResidentMonomials = runBudget
	return ss
}

func TestShardedForEachShardParallelMatchesSequential(t *testing.T) {
	ss := spilledSet(t, 60, 30, 100)
	want := recordPass(t, ss.ForEachShard)
	if len(want) != ss.NumShards() {
		t.Fatalf("sequential pass saw %d shards, want %d", len(want), ss.NumShards())
	}
	for _, workers := range []int{1, 2, 8} {
		got := recordPass(t, func(fn func(i, firstPoly int, s *Set) error) error {
			return ss.ForEachShardParallel(workers, fn)
		})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d shards, want %d", workers, len(got), len(want))
		}
		for k := range got {
			if got[k].i != k || got[k].i != want[k].i || got[k].firstPoly != want[k].firstPoly {
				t.Fatalf("workers=%d: shard %d delivered as (i=%d firstPoly=%d), want (i=%d firstPoly=%d)",
					workers, k, got[k].i, got[k].firstPoly, want[k].i, want[k].firstPoly)
			}
			if got[k].size != want[k].size || fmt.Sprint(got[k].keys) != fmt.Sprint(want[k].keys) {
				t.Fatalf("workers=%d: shard %d content differs from sequential pass", workers, k)
			}
		}
	}
}

func TestShardedForEachShardParallelHonorsBudget(t *testing.T) {
	budget := 100
	ss := spilledSet(t, 60, 30, budget)
	peak := 0
	err := ss.ForEachShardParallel(8, func(_, _ int, _ *Set) error {
		if r := ss.ResidentMonomials(); r > peak {
			peak = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak == 0 {
		t.Fatal("pass loaded nothing?")
	}
	if peak > budget {
		t.Fatalf("peak residency %d exceeds budget %d", peak, budget)
	}
	if r := ss.ResidentMonomials(); r > budget {
		t.Fatalf("post-pass residency %d exceeds budget %d", r, budget)
	}
}

func TestShardedForEachShardParallelStopsOnError(t *testing.T) {
	ss := spilledSet(t, 60, 30, 100)
	resident0 := ss.ResidentMonomials()
	boom := errors.New("stop here")
	seen := 0
	err := ss.ForEachShardParallel(4, func(i, _ int, _ *Set) error {
		seen++
		if i == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if seen != 2 {
		t.Fatalf("fn ran %d times after an error on shard 1, want 2", seen)
	}
	if r := ss.ResidentMonomials(); r != resident0 {
		t.Fatalf("failed pass left residency %d, want the pre-pass %d", r, resident0)
	}
	// The set must remain fully usable after a failed pass.
	got := recordPass(t, func(fn func(i, firstPoly int, s *Set) error) error {
		return ss.ForEachShardParallel(4, fn)
	})
	if len(got) != ss.NumShards() {
		t.Fatalf("retry saw %d shards, want %d", len(got), ss.NumShards())
	}
}

func TestShardedForEachShardParallelClosed(t *testing.T) {
	ss := spilledSet(t, 40, 30, 100)
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	err := ss.ForEachShardParallel(4, func(_, _ int, _ *Set) error { return nil })
	if err == nil {
		t.Fatal("parallel pass over a closed set succeeded")
	}
}
