package polynomial

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestSetAsSource: an in-memory Set must present itself as a single
// resident shard with consistent accounting.
func TestSetAsSource(t *testing.T) {
	set := buildTestSet(12, 5)
	var src SetSource = set
	if src.Namespace() != set.Names {
		t.Fatal("Namespace differs from the Names field")
	}
	if src.Len() != 12 || src.Size() != 60 {
		t.Fatalf("len/size: %d/%d", src.Len(), src.Size())
	}
	if src.ResidentMonomials() != 60 || src.PeakResidentMonomials() != 60 {
		t.Fatalf("residency: %d/%d, want fully resident",
			src.ResidentMonomials(), src.PeakResidentMonomials())
	}
	shards := 0
	err := src.ForEachShard(func(i, firstPoly int, s *Set) error {
		shards++
		if i != 0 || firstPoly != 0 || s != set {
			return fmt.Errorf("shard %d firstPoly %d, want the set itself at 0/0", i, firstPoly)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards != 1 {
		t.Fatalf("%d shards, want 1", shards)
	}
	boom := errors.New("stop")
	if err := src.ForEachShard(func(int, int, *Set) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

// TestCopySourceSink: Copy must stream identically between every
// source/sink pairing: Set→Set, Set→ShardBuilder, ShardedSet→Set.
func TestCopySourceSink(t *testing.T) {
	set := buildTestSet(30, 7)

	assertEq := func(name string, got *Set) {
		t.Helper()
		if got.Len() != set.Len() {
			t.Fatalf("%s: %d polynomials, want %d", name, got.Len(), set.Len())
		}
		for i := range set.Keys {
			if got.Keys[i] != set.Keys[i] || !Equal(got.Polys[i], set.Polys[i]) {
				t.Fatalf("%s: polynomial %d differs", name, i)
			}
		}
	}

	direct := NewSet(set.Names)
	if err := Copy(set, direct); err != nil {
		t.Fatal(err)
	}
	assertEq("set→set", direct)

	b := NewShardBuilder(set.Names, ShardOptions{MaxResidentMonomials: 40, SpillDir: t.TempDir()})
	if err := Copy(set, b); err != nil {
		t.Fatal(err)
	}
	ss, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.SpilledShards() == 0 {
		t.Fatal("copy into a budgeted builder did not spill")
	}
	back := NewSet(set.Names)
	if err := Copy(ss, back); err != nil {
		t.Fatal(err)
	}
	assertEq("sharded→set", back)
}

// TestShardedUsedVarsCache: the merged UsedVars result must be cached,
// invalidated when the set gains shards, and insulated from caller
// mutation.
func TestShardedUsedVarsCache(t *testing.T) {
	names := NewNames()
	b := NewShardBuilder(names, ShardOptions{TargetMonomials: 4})
	for p := 0; p < 4; p++ {
		if err := b.Add(fmt.Sprintf("k%d", p), MustParse(fmt.Sprintf("2*a%d + b", p), names)); err != nil {
			t.Fatal(err)
		}
	}
	// Peek mid-build through the builder's set: the cache must not freeze
	// the merge before the remaining shards seal.
	if got := b.ss.UsedVars(); len(got) == 0 {
		t.Fatal("mid-build UsedVars empty")
	}
	for p := 4; p < 8; p++ {
		if err := b.Add(fmt.Sprintf("k%d", p), MustParse(fmt.Sprintf("2*a%d + b", p), names)); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	want := 9 // a0..a7 and b
	got := ss.UsedVars()
	if len(got) != want {
		t.Fatalf("UsedVars: %d vars, want %d", len(got), want)
	}
	if ss.NumVars() != want {
		t.Fatalf("NumVars: %d, want %d", ss.NumVars(), want)
	}
	// Mutating the returned slice must not corrupt later calls.
	for i := range got {
		got[i] = Var(-1)
	}
	again := ss.UsedVars()
	if len(again) != want || again[0] == Var(-1) {
		t.Fatalf("cache corrupted by caller mutation: %v", again[:2])
	}
	for i := 1; i < len(again); i++ {
		if again[i-1] >= again[i] {
			t.Fatalf("UsedVars not ascending at %d", i)
		}
	}
}

// countFilesUnder returns every regular file below dir.
func countFilesUnder(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return files
}

// failingPoly builds one polynomial with n monomials.
func failingPoly(names *Names, key int, mons int) Polynomial {
	var b Builder
	for m := 0; m < mons; m++ {
		b.Add(float64(key*mons+m+1), T(names.Var(fmt.Sprintf("v%d", m))))
	}
	return b.Polynomial()
}

// TestShardBuilderSpillErrorPathsLeakNothing: every spill-failure path —
// during Add, during Finish's final seal, and an abandoned builder — must
// leave zero files under the spill root once Discard (or the finished
// set's Close) runs.
func TestShardBuilderSpillErrorPathsLeakNothing(t *testing.T) {
	inject := errors.New("injected spill failure")

	// Fail the Nth spill write, for every N the build would perform.
	for failAt := 1; failAt <= 3; failAt++ {
		dir := t.TempDir()
		writes := 0
		testSpillWriteErr = func(string) error {
			writes++
			if writes == failAt {
				return inject
			}
			return nil
		}
		names := NewNames()
		b := NewShardBuilder(names, ShardOptions{TargetMonomials: 4, MaxResidentMonomials: 8, SpillDir: dir})
		var addErr error
		for p := 0; p < 20 && addErr == nil; p++ {
			addErr = b.Add(fmt.Sprintf("k%d", p), failingPoly(names, p, 4))
		}
		var finErr error
		if addErr == nil {
			var ss *ShardedSet
			ss, finErr = b.Finish()
			if finErr == nil {
				ss.Close()
			}
		}
		b.Discard() // no-op after a successful Finish, cleanup otherwise
		testSpillWriteErr = nil
		if addErr == nil && finErr == nil {
			t.Fatalf("failAt=%d: no error surfaced (%d spill writes)", failAt, writes)
		}
		if err := errors.Join(addErr, finErr); !errors.Is(err, inject) {
			t.Fatalf("failAt=%d: got %v, want injected", failAt, err)
		}
		if left := countFilesUnder(t, dir); len(left) != 0 {
			t.Fatalf("failAt=%d: %d files leaked: %v", failAt, len(left), left)
		}
	}
}

// TestShardBuilderDiscardRemovesSpills: abandoning a partially built,
// already-spilled builder must remove its whole spill directory; Discard
// after Finish must NOT touch the finished set's files.
func TestShardBuilderDiscardRemovesSpills(t *testing.T) {
	dir := t.TempDir()
	names := NewNames()
	b := NewShardBuilder(names, ShardOptions{TargetMonomials: 4, MaxResidentMonomials: 8, SpillDir: dir})
	for p := 0; p < 20; p++ {
		if err := b.Add(fmt.Sprintf("k%d", p), failingPoly(names, p, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if len(countFilesUnder(t, dir)) == 0 {
		t.Fatal("fixture did not spill")
	}
	b.Discard()
	if left := countFilesUnder(t, dir); len(left) != 0 {
		t.Fatalf("%d files leaked after Discard: %v", len(left), left)
	}
	if err := b.Add("late", Zero()); err == nil {
		t.Fatal("Add after Discard should error")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish after Discard should error")
	}

	// Finish hands ownership to the set: Discard must not remove its files.
	b2 := NewShardBuilder(names, ShardOptions{TargetMonomials: 4, MaxResidentMonomials: 8, SpillDir: dir})
	for p := 0; p < 20; p++ {
		if err := b2.Add(fmt.Sprintf("k%d", p), failingPoly(names, p, 4)); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	b2.Discard()
	if len(countFilesUnder(t, dir)) == 0 {
		t.Fatal("Discard after Finish removed the finished set's spill files")
	}
	back, err := ss.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 20 {
		t.Fatalf("materialized %d polynomials, want 20", back.Len())
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if left := countFilesUnder(t, dir); len(left) != 0 {
		t.Fatalf("%d files leaked after Close: %v", len(left), left)
	}
}

// TestShardBuilderSpillDirCreateError: an unusable spill root must fail
// the build loudly and leave nothing behind.
func TestShardBuilderSpillDirCreateError(t *testing.T) {
	root := t.TempDir()
	blocked := filepath.Join(root, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	names := NewNames()
	b := NewShardBuilder(names, ShardOptions{TargetMonomials: 4, MaxResidentMonomials: 8, SpillDir: blocked})
	var addErr error
	for p := 0; p < 20 && addErr == nil; p++ {
		addErr = b.Add(fmt.Sprintf("k%d", p), failingPoly(names, p, 4))
	}
	if addErr == nil {
		t.Fatal("build under an unusable spill root should fail")
	}
	b.Discard()
	if got := countFilesUnder(t, root); len(got) != 1 || got[0] != blocked {
		t.Fatalf("unexpected files: %v", got)
	}
}
