package polynomial

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics drives the parser with random byte soup and with
// mutations of valid inputs: it must return a value or an error, never
// panic, and anything it accepts must re-parse to an equal polynomial.
func TestParseNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	alphabet := []byte("xyz123+-*^. eE_\t()")
	names := NewNames()
	for i := 0; i < 5000; i++ {
		n := r.Intn(24)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[r.Intn(len(alphabet))]
		}
		input := string(buf)
		p, err := Parse(input, names)
		if err != nil {
			continue
		}
		// Accepted input must round-trip.
		printed := p.String(names)
		q, err := Parse(printed, names)
		if err != nil {
			t.Fatalf("accepted %q, printed %q, but re-parse failed: %v", input, printed, err)
		}
		if !Equal(p, q) {
			t.Fatalf("round trip changed polynomial: %q -> %q", input, printed)
		}
	}
}

// TestParseMutatedValid mutates a known-good input one byte at a time.
func TestParseMutatedValid(t *testing.T) {
	const base = "208.8*p1*m1 + 240*p1*m3 - 2*x^2*y + 7"
	names := NewNames()
	for i := 0; i < len(base); i++ {
		for _, c := range []byte{'*', '^', '+', ' ', 'q', '9', 0} {
			mutated := base[:i] + string(c) + base[i+1:]
			// Must not panic; errors are fine.
			_, _ = Parse(mutated, names)
		}
	}
}

// TestDeepExpressionNoStackIssues parses long chains.
func TestDeepExpressionNoStackIssues(t *testing.T) {
	names := NewNames()
	long := strings.Repeat("x + ", 20000) + "x"
	p, err := Parse(long, names)
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Mons[0].Coef; c != 20001 {
		t.Fatalf("coef = %v", c)
	}
}
