package polynomial

import (
	"fmt"
	"math/rand"
	"testing"
)

// bigMapInstance builds a polynomial large enough to cross minParallelMons,
// with colliding term vectors so the merge path (including the float
// summation order of merged coefficients) is exercised.
func bigMapInstance(r *rand.Rand, names *Names) Polynomial {
	vars := make([]Var, 40)
	for i := range vars {
		vars[i] = names.Var(fmt.Sprintf("v%d", i))
	}
	var b Builder
	for m := 0; m < 3*minParallelMons; m++ {
		b.Add(r.Float64()*2-1,
			TExp(vars[r.Intn(len(vars))], int32(1+r.Intn(2))),
			T(vars[r.Intn(len(vars))]))
	}
	return b.Polynomial()
}

func TestMapVarsNBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	names := NewNames()
	p := bigMapInstance(r, names)
	// Merge variables pairwise: v2k, v2k+1 -> v2k. This collapses many
	// monomials, forcing coefficient summation during the merge.
	f := func(v Var) Var { return v &^ 1 }
	want := MapVars(p, f)
	for _, workers := range []int{1, 2, 8} {
		got := MapVarsN(p, f, workers)
		if len(got.Mons) != len(want.Mons) {
			t.Fatalf("workers=%d: %d monomials, want %d", workers, len(got.Mons), len(want.Mons))
		}
		if !Equal(got, want) {
			t.Fatalf("workers=%d: result differs from sequential MapVars", workers)
		}
	}
}

func TestSetMapVarsNBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	names := NewNames()
	f := func(v Var) Var { return v &^ 1 }

	// Many small polynomials: exercises the across-polynomials branch.
	many := NewSet(names)
	for g := 0; g < 64; g++ {
		var b Builder
		for m := 0; m < 50; m++ {
			b.Add(r.Float64(), T(names.Var(fmt.Sprintf("v%d", r.Intn(30)))))
		}
		many.Add(fmt.Sprintf("g%d", g), b.Polynomial())
	}
	// One large polynomial: exercises the within-polynomial sharding branch.
	one := NewSet(names)
	one.Add("big", bigMapInstance(r, names))

	for _, s := range []*Set{many, one} {
		want := s.MapVars(f)
		for _, workers := range []int{2, 8} {
			got := s.MapVarsN(f, workers)
			if got.Len() != want.Len() {
				t.Fatalf("workers=%d: %d polys, want %d", workers, got.Len(), want.Len())
			}
			for i := range want.Polys {
				if got.Keys[i] != want.Keys[i] || !Equal(got.Polys[i], want.Polys[i]) {
					t.Fatalf("workers=%d: polynomial %d differs from sequential", workers, i)
				}
			}
		}
	}
}
