package polynomial

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/cobra-prov/cobra/internal/parallel"
)

// DefaultShardMonomials is the shard-size target used when ShardOptions
// leaves TargetMonomials unset.
const DefaultShardMonomials = 1 << 16

// ShardOptions configures how a ShardedSet partitions and spills its
// polynomials.
type ShardOptions struct {
	// TargetMonomials caps the monomials per shard (whole polynomials are
	// never split, so a single polynomial larger than the target forms a
	// shard of its own). <= 0 selects DefaultShardMonomials.
	TargetMonomials int
	// MaxResidentMonomials bounds the monomials the ShardedSet keeps in
	// memory at once: sealed shards beyond the budget are spilled to temp
	// files and re-loaded one at a time during streaming passes. <= 0
	// disables spilling (everything stays resident). When set, the
	// effective shard target is clamped to half the budget so that one
	// in-flight shard plus one loaded shard fit.
	MaxResidentMonomials int
	// SpillDir is where spill files are created ("" = os.TempDir()). The
	// ShardedSet creates a private subdirectory and removes it on Close.
	SpillDir string
}

// withDefaults resolves the effective shard target.
func (o ShardOptions) withDefaults() ShardOptions {
	if o.TargetMonomials <= 0 {
		o.TargetMonomials = DefaultShardMonomials
	}
	if o.MaxResidentMonomials > 0 {
		if half := o.MaxResidentMonomials / 2; o.TargetMonomials > half {
			o.TargetMonomials = half
			if o.TargetMonomials < 1 {
				o.TargetMonomials = 1
			}
		}
	}
	return o
}

// shard is one fixed-size slice of a ShardedSet: resident (set != nil),
// or spilled to path. Metadata (polys, mons, used) survives spilling.
type shard struct {
	set   *Set
	path  string
	polys int
	mons  int
	used  []Var // distinct vars of the shard, ascending
}

// ShardedSet is a polynomial Set split into fixed-size shards sharing one
// Names namespace, with optional spill-to-disk so sets larger than memory
// can flow through compression and valuation shard-at-a-time. Shard order
// is deterministic: concatenating the shards yields exactly the Set the
// polynomials were added as.
//
// A finished ShardedSet is safe for concurrent read-path use: streaming
// passes (ForEachShard and everything built on it) serialize on an
// internal mutex — they run one at a time, each parallelizing within a
// shard, never across passes — and the residency counters and the lazy
// used-variables cache are guarded separately so metadata reads never
// block a pass. Building (ShardBuilder.Add/Finish) is single-goroutine.
type ShardedSet struct {
	names *Names
	opts  ShardOptions

	shards  []*shard
	polyOff []int // polyOff[i] = polynomials before shard i; len = len(shards)+1

	size int // total monomials

	// iterMu serializes streaming passes: a pass may load and evict
	// spilled shards, so two passes interleaving would fight over the
	// residency budget. closed is guarded by iterMu (a pass must not race
	// a Close).
	iterMu sync.Mutex
	closed bool // guarded by iterMu

	// statMu guards the residency counters and the usedVars cache — the
	// metadata concurrent solvers read while a pass is in flight.
	statMu       sync.Mutex
	resident     int    // guarded by statMu; monomials currently in memory
	peakResident int    // guarded by statMu
	spilled      int    // guarded by statMu; shards currently on disk
	spillDir     string // guarded by statMu

	// usedVars caches the merged per-shard used-variable sets; usedValid
	// is cleared whenever a new shard is sealed into the set.
	usedVars  []Var // guarded by statMu
	usedValid bool  // guarded by statMu

	// encBuf is the spill encode scratch, reused across spills. It is
	// only touched by spillShard, whose callers are serialized (building
	// is single-goroutine; streaming passes hold iterMu).
	encBuf []byte
}

// Names returns the shared variable namespace.
func (ss *ShardedSet) Names() *Names { return ss.names }

// Namespace returns the shared variable namespace (SetSource form).
func (ss *ShardedSet) Namespace() *Names { return ss.names }

// Options returns the options the set was built with (with defaults
// resolved).
func (ss *ShardedSet) Options() ShardOptions { return ss.opts }

// NumShards returns the number of shards.
func (ss *ShardedSet) NumShards() int { return len(ss.shards) }

// Len returns the total number of polynomials.
func (ss *ShardedSet) Len() int { return ss.polyOff[len(ss.polyOff)-1] }

// Size returns the total number of monomials — the provenance size measure
// optimized by COBRA.
func (ss *ShardedSet) Size() int { return ss.size }

// PolyOffset returns the number of polynomials before shard i — the global
// index of the shard's first polynomial.
func (ss *ShardedSet) PolyOffset(i int) int { return ss.polyOff[i] }

// ResidentMonomials returns the monomials currently held in memory.
func (ss *ShardedSet) ResidentMonomials() int {
	ss.statMu.Lock()
	defer ss.statMu.Unlock()
	return ss.resident
}

// PeakResidentMonomials returns the high-water mark of resident monomials
// over the set's lifetime (building, loading, and streaming passes).
func (ss *ShardedSet) PeakResidentMonomials() int {
	ss.statMu.Lock()
	defer ss.statMu.Unlock()
	return ss.peakResident
}

// SpilledShards returns the number of shards currently on disk.
func (ss *ShardedSet) SpilledShards() int {
	ss.statMu.Lock()
	defer ss.statMu.Unlock()
	return ss.spilled
}

// UsedVars returns the distinct variables appearing anywhere in the set,
// ascending. It uses per-shard metadata recorded at seal time, so it never
// touches the spill files; the merged result is computed once and cached
// (the cache is invalidated when the set gains a shard), and a fresh copy
// is returned so callers cannot corrupt the cache.
func (ss *ShardedSet) UsedVars() []Var {
	ss.statMu.Lock()
	defer ss.statMu.Unlock()
	return append([]Var(nil), ss.usedVarsLocked()...)
}

// usedVarsLocked computes (or returns) the cached merge. statMu must be held.
func (ss *ShardedSet) usedVarsLocked() []Var {
	if !ss.usedValid {
		seen := make(map[Var]bool)
		var out []Var
		for _, sh := range ss.shards {
			for _, v := range sh.used {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		ss.usedVars = out
		ss.usedValid = true
	}
	return ss.usedVars
}

// NumVars returns the number of distinct variables appearing in the set.
func (ss *ShardedSet) NumVars() int {
	ss.statMu.Lock()
	defer ss.statMu.Unlock()
	return len(ss.usedVarsLocked())
}

// ForEachShard invokes fn once per shard in shard order, passing the
// shard's index, the global index of its first polynomial, and the shard's
// polynomials as a Set sharing the namespace. Spilled shards are loaded
// one at a time and evicted again after fn returns, so the resident
// footprint stays within the budget. fn must not retain or mutate the Set
// beyond the call, and must not start another pass (ForEachShard or
// Materialize) or Close the same set — passes serialize on a mutex held
// for the whole iteration, so a nested pass deadlocks. Metadata accessors
// (Size, Len, UsedVars, ResidentMonomials, ...) remain safe to call from
// fn and from other goroutines. Iteration stops at fn's first error.
func (ss *ShardedSet) ForEachShard(fn func(i, firstPoly int, s *Set) error) error {
	ss.iterMu.Lock()
	defer ss.iterMu.Unlock()
	if ss.closed {
		return fmt.Errorf("polynomial: ShardedSet is closed")
	}
	return ss.forEachShardLocked(fn)
}

// ForEachShardParallel streams the shards into fn in shard order, exactly
// like ForEachShard, but loads spilled shards from disk on up to workers
// goroutines so fn never waits on the disk: while fn consumes shard i,
// shards i+1..i+workers-1 are already being read and decoded. fn itself
// always runs sequentially, in shard order, on the calling goroutine — the
// pass is bit-identical to the sequential one for any worker count.
//
// The concurrency is clamped so the window of concurrently loaded shards
// fits the residency budget on top of whatever is already resident; when
// the budget leaves no headroom for even two in-flight loads the pass
// degrades to plain ForEachShard. The restrictions of ForEachShard apply
// unchanged (no nested passes, fn must not retain the Set).
func (ss *ShardedSet) ForEachShardParallel(workers int, fn func(i, firstPoly int, s *Set) error) error {
	ss.iterMu.Lock()
	defer ss.iterMu.Unlock()
	if ss.closed {
		return fmt.Errorf("polynomial: ShardedSet is closed")
	}
	workers = ss.clampParallelWorkers(workers)
	if workers <= 1 {
		return ss.forEachShardLocked(fn)
	}
	resident0 := ss.ResidentMonomials()
	err := parallel.Ordered(workers, len(ss.shards),
		func(i int) (*Set, error) {
			sh := ss.shards[i]
			if sh.set != nil {
				return sh.set, nil
			}
			set, err := readShardFile(sh.path, ss.names)
			if err != nil {
				return nil, fmt.Errorf("polynomial: loading shard %d: %w", i, err)
			}
			ss.trackResident(sh.mons)
			return set, nil
		},
		func(i int, set *Set) error {
			sh := ss.shards[i]
			err := fn(i, ss.polyOff[i], set)
			if sh.set == nil {
				ss.trackResident(-sh.mons)
			}
			return err
		})
	if err != nil {
		// Loads claimed past the failing shard were tracked by the
		// producer but never released by the (never-run) consumer; the
		// transient sets are unreachable once Ordered drains, so restore
		// the counter to the pre-pass residency.
		ss.statMu.Lock()
		ss.resident = resident0
		ss.statMu.Unlock()
	}
	return err
}

// clampParallelWorkers bounds a parallel pass's worker count so the
// reorder window of concurrently loaded spilled shards (worst case:
// workers × the largest spilled shard) fits the residency budget on top
// of the already-resident shards. iterMu must be held.
func (ss *ShardedSet) clampParallelWorkers(workers int) int {
	workers = parallel.Normalize(workers)
	if workers > len(ss.shards) {
		workers = len(ss.shards)
	}
	budget := ss.opts.MaxResidentMonomials
	if workers <= 1 || budget <= 0 {
		return workers
	}
	maxMons := 0
	for _, sh := range ss.shards {
		if sh.set == nil && sh.mons > maxMons {
			maxMons = sh.mons
		}
	}
	if maxMons == 0 {
		return workers // nothing spilled: no loads, no residency cost
	}
	if avail := budget - ss.ResidentMonomials(); avail/maxMons < workers {
		workers = avail / maxMons
	}
	return workers
}

// forEachShardLocked is the body of ForEachShard; iterMu must be held.
func (ss *ShardedSet) forEachShardLocked(fn func(i, firstPoly int, s *Set) error) error {
	for i, sh := range ss.shards {
		set := sh.set
		loaded := false
		if set == nil {
			// Make room first so the load itself never breaches the budget.
			if err := ss.spillOver(sh.mons); err != nil {
				return err
			}
			var err error
			set, err = readShardFile(sh.path, ss.names)
			if err != nil {
				return fmt.Errorf("polynomial: loading shard %d: %w", i, err)
			}
			loaded = true
			ss.trackResident(sh.mons)
		}
		err := fn(i, ss.polyOff[i], set)
		if loaded {
			ss.trackResident(-sh.mons)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Materialize concatenates all shards into one in-memory Set.
func (ss *ShardedSet) Materialize() (*Set, error) {
	out := NewSet(ss.names)
	if err := Copy(ss, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close removes the spill directory and releases the shards. The set must
// not be used afterwards. Close waits for any in-flight streaming pass to
// finish before tearing down.
func (ss *ShardedSet) Close() error {
	ss.iterMu.Lock()
	defer ss.iterMu.Unlock()
	if ss.closed {
		return nil
	}
	ss.closed = true
	ss.shards = nil
	ss.statMu.Lock()
	dir := ss.spillDir
	ss.statMu.Unlock()
	if dir != "" {
		return os.RemoveAll(dir)
	}
	return nil
}

func (ss *ShardedSet) trackResident(delta int) {
	ss.statMu.Lock()
	ss.resident += delta
	if ss.resident > ss.peakResident {
		ss.peakResident = ss.resident
	}
	ss.statMu.Unlock()
}

// spillOver spills the oldest resident sealed shards until the resident
// count (including extra monomials the caller is about to hold) fits the
// budget. With no budget it is a no-op.
func (ss *ShardedSet) spillOver(extra int) error {
	budget := ss.opts.MaxResidentMonomials
	if budget <= 0 {
		return nil
	}
	for _, sh := range ss.shards {
		ss.statMu.Lock()
		fits := ss.resident+extra <= budget
		ss.statMu.Unlock()
		if fits {
			return nil
		}
		if sh.set == nil {
			continue
		}
		if err := ss.spillShard(sh); err != nil {
			return err
		}
	}
	return nil
}

// spillShard writes one sealed shard into the set's private spill
// directory (one directory per set/builder, created on first spill, so
// Close and ShardBuilder.Discard can remove every spill file wholesale
// with a single RemoveAll — no per-file bookkeeping, no leaks from
// abandoned builders). A failed write removes its partial file
// immediately, so even before Close the directory holds only complete
// shards.
func (ss *ShardedSet) spillShard(sh *shard) error {
	ss.statMu.Lock()
	dir := ss.spillDir
	seq := ss.spilled
	ss.statMu.Unlock()
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp(ss.opts.SpillDir, "cobra-shards-")
		if err != nil {
			return fmt.Errorf("polynomial: creating spill dir: %w", err)
		}
		ss.statMu.Lock()
		ss.spillDir = dir
		ss.statMu.Unlock()
	}
	path := filepath.Join(dir, fmt.Sprintf("shard-%06d.bin", seq))
	// The encode buffer is reused across spills; spillShard callers are
	// serialized (single-goroutine building, passes under iterMu), so the
	// set-level scratch is never shared between concurrent writers.
	buf, err := writeShardFile(path, sh.set, ss.encBuf)
	ss.encBuf = buf
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("polynomial: spilling shard: %w", err)
	}
	sh.path = path
	sh.set = nil
	ss.statMu.Lock()
	ss.spilled++
	ss.resident -= sh.mons
	ss.statMu.Unlock()
	return nil
}

// ShardBuilder accumulates polynomials into a ShardedSet without ever
// holding more than the memory budget: shards seal when they reach the
// target size and spill once the resident budget is exceeded. The zero
// value is not usable; call NewShardBuilder.
type ShardBuilder struct {
	ss        *ShardedSet
	cur       *Set
	lastPolys int // previous shard's polynomial count, to pre-size the next
	done      bool
}

// NewShardBuilder starts building a ShardedSet over names (a fresh
// namespace if nil).
func NewShardBuilder(names *Names, opts ShardOptions) *ShardBuilder {
	if names == nil {
		names = NewNames()
	}
	return &ShardBuilder{
		ss: &ShardedSet{names: names, opts: opts.withDefaults(), polyOff: []int{0}},
	}
}

// Namespace returns the namespace the built set shares.
func (b *ShardBuilder) Namespace() *Names { return b.ss.names }

// Add appends a named polynomial, sealing and possibly spilling shards as
// budgets fill up.
func (b *ShardBuilder) Add(key string, p Polynomial) error {
	if b.done {
		return fmt.Errorf("polynomial: ShardBuilder already finished")
	}
	if b.cur == nil {
		b.cur = NewSet(b.ss.names)
		if b.lastPolys > 0 {
			// Shards of one workload seal at near-identical polynomial
			// counts, so sizing from the previous shard (with slack for
			// drift) removes the append-doubling churn of filling a shard.
			b.cur.Grow(b.lastPolys + b.lastPolys/8)
		}
	}
	// Spill sealed shards first so the new monomials never push the
	// resident count past the budget (the open shard itself cannot spill).
	if err := b.ss.spillOver(len(p.Mons)); err != nil {
		return err
	}
	if err := b.cur.Add(key, p); err != nil {
		return err
	}
	b.ss.size += len(p.Mons)
	b.ss.trackResident(len(p.Mons))
	target := b.ss.opts.TargetMonomials
	if b.cur.Size() >= target || b.cur.Len() >= target {
		return b.seal()
	}
	return nil
}

// AddSet appends every polynomial of s in order.
func (b *ShardBuilder) AddSet(s *Set) error {
	for i, key := range s.Keys {
		if err := b.Add(key, s.Polys[i]); err != nil {
			return err
		}
	}
	return nil
}

// seal freezes the current shard, records its metadata, and spills older
// shards if the resident budget is exceeded. Sealing extends the set, so
// it invalidates the cached UsedVars merge.
func (b *ShardBuilder) seal() error {
	if b.cur == nil || b.cur.Len() == 0 {
		return nil
	}
	sh := &shard{set: b.cur, polys: b.cur.Len(), mons: b.cur.Size(), used: b.cur.UsedVars()}
	b.lastPolys = sh.polys
	b.ss.shards = append(b.ss.shards, sh)
	b.ss.polyOff = append(b.ss.polyOff, b.ss.polyOff[len(b.ss.polyOff)-1]+sh.polys)
	b.ss.statMu.Lock()
	b.ss.usedValid = false
	b.ss.usedVars = nil
	b.ss.statMu.Unlock()
	b.cur = nil
	return b.ss.spillOver(0)
}

// Finish seals the last shard and returns the built set. The builder must
// not be used afterwards. On error the partial set (including any spill
// files) is released.
func (b *ShardBuilder) Finish() (*ShardedSet, error) {
	if b.done {
		return nil, fmt.Errorf("polynomial: ShardBuilder already finished")
	}
	b.done = true
	if err := b.seal(); err != nil {
		b.ss.Close()
		return nil, err
	}
	return b.ss, nil
}

// Discard abandons the build, removing any spill files already written.
// It is a no-op after Finish (the finished set owns the files then), so
// callers can safely `defer b.Discard()` to cover every error path.
func (b *ShardBuilder) Discard() {
	if b.done {
		return
	}
	b.done = true
	b.ss.Close()
}

// BuildSharded splits an in-memory Set into a ShardedSet under opts. The
// input set is not retained; its polynomials are shared (not deep-copied),
// so the caller should drop the original to realize the memory bound.
func BuildSharded(s *Set, opts ShardOptions) (*ShardedSet, error) {
	b := NewShardBuilder(s.Names, opts)
	defer b.Discard() // release partial spill files on any error path
	if err := b.AddSet(s); err != nil {
		return nil, err
	}
	return b.Finish()
}

// --- spill codec ---------------------------------------------------------
//
// Spill files are ephemeral and private to the process that wrote them:
// they share the in-memory Names namespace, so variables are stored as raw
// Var ids with no name table. The on-disk interchange formats (with name
// tables and cross-process guarantees) live in internal/polyio.

// The v2 codec is columnar: one key block, then the per-polynomial and
// per-monomial counts, then all coefficients, then all term vectors — so
// a shard decodes into a PackedSet's flat slabs with O(1) allocations
// instead of one per monomial (the v1 row-wise codec was 24% of E15's
// allocation profile).
var spillMagic = []byte("CSPILL2\n")

// testSpillWriteErr, when non-nil, is consulted before every shard-file
// write — a failpoint for exercising mid-build spill failures in tests.
var testSpillWriteErr func(path string) error

// writeShardFile encodes s into buf (reusing its capacity) and writes it
// to path, returning the grown buffer so callers can reuse it for the
// next spill.
func writeShardFile(path string, s *Set, buf []byte) ([]byte, error) {
	if testSpillWriteErr != nil {
		if err := testSpillWriteErr(path); err != nil {
			return buf, err
		}
	}
	buf = encodeShardPayload(buf[:0], s)
	f, err := os.Create(path)
	if err != nil {
		return buf, err
	}
	_, err = f.Write(buf)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return buf, err
}

// encodeShardPayload appends the columnar spill encoding of s to buf:
// magic, counts, the concatenated key block, per-polynomial key lengths
// and monomial counts, coefficient bits, per-monomial term counts, and
// finally every term as a (var, exp) uvarint pair.
func encodeShardPayload(buf []byte, s *Set) []byte {
	nMons, nTerms, keyBytes := 0, 0, 0
	for _, p := range s.Polys {
		nMons += len(p.Mons)
		for _, m := range p.Mons {
			nTerms += len(m.Terms)
		}
	}
	for _, k := range s.Keys {
		keyBytes += len(k)
	}
	buf = append(buf, spillMagic...)
	buf = binary.AppendUvarint(buf, uint64(s.Len()))
	buf = binary.AppendUvarint(buf, uint64(nMons))
	buf = binary.AppendUvarint(buf, uint64(nTerms))
	buf = binary.AppendUvarint(buf, uint64(keyBytes))
	for _, k := range s.Keys {
		buf = append(buf, k...)
	}
	for _, k := range s.Keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
	}
	for _, p := range s.Polys {
		buf = binary.AppendUvarint(buf, uint64(len(p.Mons)))
	}
	for _, p := range s.Polys {
		for _, m := range p.Mons {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Coef))
		}
	}
	for _, p := range s.Polys {
		for _, m := range p.Mons {
			buf = binary.AppendUvarint(buf, uint64(len(m.Terms)))
		}
	}
	for _, p := range s.Polys {
		for _, m := range p.Mons {
			for _, t := range m.Terms {
				buf = binary.AppendUvarint(buf, uint64(uint32(t.Var)))
				buf = binary.AppendUvarint(buf, uint64(uint32(t.Exp)))
			}
		}
	}
	return buf
}

func readShardFile(path string, names *Names) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ps, err := decodeShardPayload(data, names)
	if err != nil {
		return nil, err
	}
	// Spilled monomials were canonical when written; no re-merge needed.
	return ps.View(), nil
}

// decodeShardPayload parses one spill file into a PackedSet, slicing the
// key block into substrings and bulk-filling the coefficient, offset and
// term slabs — a handful of allocations however many monomials the shard
// holds.
func decodeShardPayload(data []byte, names *Names) (*PackedSet, error) {
	if len(data) < len(spillMagic) || string(data[:len(spillMagic)]) != string(spillMagic) {
		return nil, fmt.Errorf("bad spill magic")
	}
	pos := len(spillMagic)
	uvarint := func() (int, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 || v > math.MaxInt32 {
			return 0, fmt.Errorf("corrupt spill varint at %d", pos)
		}
		pos += n
		return int(v), nil
	}
	nPolys, err := uvarint()
	if err != nil {
		return nil, err
	}
	nMons, err := uvarint()
	if err != nil {
		return nil, err
	}
	nTerms, err := uvarint()
	if err != nil {
		return nil, err
	}
	keyBytes, err := uvarint()
	if err != nil {
		return nil, err
	}
	if pos+keyBytes > len(data) {
		return nil, fmt.Errorf("corrupt spill key block")
	}
	keyBlock := string(data[pos : pos+keyBytes])
	pos += keyBytes
	ps := &PackedSet{
		names:   names,
		keys:    make([]string, nPolys),
		polyOff: make([]int32, nPolys+1),
		coefs:   make([]float64, nMons),
		monOff:  make([]int32, nMons+1),
		terms:   make([]Term, nTerms),
	}
	off := 0
	for i := range ps.keys {
		kn, err := uvarint()
		if err != nil {
			return nil, err
		}
		if off+kn > len(keyBlock) {
			return nil, fmt.Errorf("corrupt spill key lengths")
		}
		ps.keys[i] = keyBlock[off : off+kn]
		off += kn
	}
	total := 0
	for i := 0; i < nPolys; i++ {
		mc, err := uvarint()
		if err != nil {
			return nil, err
		}
		total += mc
		if total > nMons {
			return nil, fmt.Errorf("corrupt spill monomial counts")
		}
		ps.polyOff[i+1] = int32(total)
	}
	if total != nMons {
		return nil, fmt.Errorf("corrupt spill monomial counts")
	}
	if pos+8*nMons > len(data) {
		return nil, fmt.Errorf("corrupt spill coefficients")
	}
	for i := range ps.coefs {
		ps.coefs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
	}
	total = 0
	for i := 0; i < nMons; i++ {
		tc, err := uvarint()
		if err != nil {
			return nil, err
		}
		total += tc
		if total > nTerms {
			return nil, fmt.Errorf("corrupt spill term counts")
		}
		ps.monOff[i+1] = int32(total)
	}
	if total != nTerms {
		return nil, fmt.Errorf("corrupt spill term counts")
	}
	for i := range ps.terms {
		v, err := uvarint()
		if err != nil {
			return nil, err
		}
		e, err := uvarint()
		if err != nil {
			return nil, err
		}
		ps.terms[i] = Term{Var: Var(int32(v)), Exp: int32(e)}
	}
	return ps, nil
}
