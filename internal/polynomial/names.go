// Package polynomial implements provenance polynomials: multivariate
// polynomials over interned symbolic variables with rational (float64)
// coefficients, kept in a canonical form so that syntactically equal
// monomials are always merged.
//
// Provenance polynomials are the symbolic representation of query results
// produced by provenance-aware query evaluation (Green et al., PODS 2007;
// Amsterdamer et al., PODS 2011). COBRA compresses them by remapping
// variables to meta-variables (see internal/abstraction and internal/core);
// the canonical form implemented here is what makes the merge after a remap
// well defined.
package polynomial

import (
	"fmt"
	"sort"
)

// Var identifies an interned variable. Vars are dense small integers,
// suitable for indexing slices. The zero Var is a valid variable; use NoVar
// for "absent".
type Var int32

// NoVar is the sentinel "no variable" value.
const NoVar Var = -1

// Names is an interning table mapping variable names to Vars and back.
// A Names instance defines the variable namespace shared by a family of
// polynomials (typically one Names per provenance Set).
//
// Names is not safe for concurrent mutation; concurrent read-only use is
// fine after all variables are interned.
type Names struct {
	byName map[string]Var
	names  []string
}

// NewNames returns an empty namespace.
func NewNames() *Names {
	return &Names{byName: make(map[string]Var)}
}

// Var interns name and returns its Var, allocating a fresh Var on first use.
func (n *Names) Var(name string) Var {
	if v, ok := n.byName[name]; ok {
		return v
	}
	v := Var(len(n.names))
	n.byName[name] = v
	n.names = append(n.names, name)
	return v
}

// VarBytes interns the variable named by the bytes of b. The map read
// with string(b) is elided by the compiler, so re-interning an existing
// variable is allocation-free; the name string materializes only on
// first use.
func (n *Names) VarBytes(b []byte) Var {
	if v, ok := n.byName[string(b)]; ok {
		return v
	}
	//cobra:hotalloc the namespace retains the name: one string per distinct variable is the data itself
	return n.Var(string(b))
}

// Vars interns each name in order and returns the corresponding Vars.
func (n *Names) Vars(names ...string) []Var {
	vs := make([]Var, len(names))
	for i, s := range names {
		vs[i] = n.Var(s)
	}
	return vs
}

// Lookup reports the Var for name without interning it.
func (n *Names) Lookup(name string) (Var, bool) {
	v, ok := n.byName[name]
	return v, ok
}

// Name returns the name of v. It panics if v was not allocated by this
// namespace.
func (n *Names) Name(v Var) string {
	if v < 0 || int(v) >= len(n.names) {
		panic(fmt.Sprintf("polynomial: Var %d not in namespace (len %d)", v, len(n.names)))
	}
	return n.names[v]
}

// Len returns the number of interned variables.
func (n *Names) Len() int { return len(n.names) }

// All returns the interned names in Var order. The returned slice is a copy.
func (n *Names) All() []string {
	out := make([]string, len(n.names))
	copy(out, n.names)
	return out
}

// Sorted returns the interned names in lexicographic order.
func (n *Names) Sorted() []string {
	out := n.All()
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the namespace. The index is
// rebuilt from the ordered names slice rather than copied by ranging
// n.byName, so cloning performs no map iteration at all (the
// determinism lint invariant: map visit order must never influence
// this package's behavior, and names[i] == name(Var(i)) by
// construction).
func (n *Names) Clone() *Names {
	c := &Names{
		byName: make(map[string]Var, len(n.names)),
		names:  make([]string, len(n.names)),
	}
	copy(c.names, n.names)
	for i, name := range c.names {
		c.byName[name] = Var(i)
	}
	return c
}
