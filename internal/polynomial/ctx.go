package polynomial

import "context"

// ContextSource wraps a SetSource so that streaming passes observe a
// context: ForEachShard checks ctx before every shard and stops with
// ctx.Err() once the context is done. Because every pipeline stage —
// signature indexing, cut application, batch valuation, serialization —
// pulls its input through ForEachShard, wrapping the input source cancels
// an in-flight solve at the next shard boundary, and the per-call worker
// pools (which always drain before returning) unwind with it instead of
// leaking.
//
// Cancellation granularity is one shard: an in-memory Set presents itself
// as a single shard, so only multi-shard (out-of-core) sources cancel
// mid-pass. Stages that dispatch on the concrete source representation
// must dispatch on Unwrap(src) so wrapping never changes which algorithm
// variant runs (see core.reduceSource) — results are therefore identical
// with and without a wrapper; only early termination differs.
type ContextSource struct {
	ctx context.Context
	src SetSource
}

// WithContext returns src observing ctx. A context that can never be
// canceled (ctx.Done() == nil, e.g. context.Background()) returns src
// unchanged, so the hot path pays nothing and representation-specific
// optimizations keyed on the concrete type keep applying directly.
func WithContext(ctx context.Context, src SetSource) SetSource {
	if ctx == nil || ctx.Done() == nil {
		return src
	}
	return &ContextSource{ctx: ctx, src: src}
}

// Unwrap peels any ContextSource layers off src, returning the underlying
// representation (a *Set, *ShardedSet, or other SetSource).
func Unwrap(src SetSource) SetSource {
	for {
		c, ok := src.(*ContextSource)
		if !ok {
			return src
		}
		src = c.src
	}
}

// Namespace returns the shared variable namespace.
func (c *ContextSource) Namespace() *Names { return c.src.Namespace() }

// Len returns the total number of polynomials.
func (c *ContextSource) Len() int { return c.src.Len() }

// Size returns the total number of monomials.
func (c *ContextSource) Size() int { return c.src.Size() }

// UsedVars returns the distinct variables appearing anywhere in the source.
func (c *ContextSource) UsedVars() []Var { return c.src.UsedVars() }

// ResidentMonomials returns the monomials currently held in memory.
func (c *ContextSource) ResidentMonomials() int { return c.src.ResidentMonomials() }

// PeakResidentMonomials returns the resident high-water mark.
func (c *ContextSource) PeakResidentMonomials() int { return c.src.PeakResidentMonomials() }

// ForEachShard iterates the underlying source, checking the context before
// every shard; once the context is done the pass stops with ctx.Err().
func (c *ContextSource) ForEachShard(fn func(i, firstPoly int, s *Set) error) error {
	return c.src.ForEachShard(func(i, firstPoly int, s *Set) error {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		return fn(i, firstPoly, s)
	})
}

// ForEachShardParallel forwards a parallel pass to the underlying source
// with the same per-shard context check as ForEachShard; the check runs in
// the sequential consume step, so cancellation stops delivery at the next
// shard boundary and the decode pool drains before the pass returns. A
// source without parallel support degrades to the sequential pass.
func (c *ContextSource) ForEachShardParallel(workers int, fn func(i, firstPoly int, s *Set) error) error {
	checked := func(i, firstPoly int, s *Set) error {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		return fn(i, firstPoly, s)
	}
	if ps, ok := c.src.(ShardParallelSource); ok && workers > 1 {
		return ps.ForEachShardParallel(workers, checked)
	}
	return c.src.ForEachShard(checked)
}

// ConcurrentPasses forwards the underlying source's answer: wrapping a
// source in a context never changes which passes may run concurrently.
func (c *ContextSource) ConcurrentPasses() bool {
	ix, ok := c.src.(IndexedSource)
	return ok && ix.ConcurrentPasses()
}

var (
	_ SetSource     = (*ContextSource)(nil)
	_ IndexedSource = (*ContextSource)(nil)
)
