package polynomial

import (
	"context"
	"errors"
	"testing"
)

func ctxTestSet(t *testing.T) (*Names, *Set) {
	t.Helper()
	names := NewNames()
	s := NewSet(names)
	for _, k := range []string{"p1", "p2", "p3"} {
		v := names.Var(k + "_x")
		s.Add(k, Polynomial{Mons: []Monomial{{Coef: 2, Terms: []Term{{Var: v, Exp: 1}}}}})
	}
	return names, s
}

func TestWithContextBackgroundIsTransparent(t *testing.T) {
	_, s := ctxTestSet(t)
	if got := WithContext(context.Background(), s); got != SetSource(s) {
		t.Fatalf("WithContext(Background) wrapped the source: %T", got)
	}
	if got := WithContext(nil, s); got != SetSource(s) { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatalf("WithContext(nil) wrapped the source: %T", got)
	}
}

func TestWithContextUnwrap(t *testing.T) {
	_, s := ctxTestSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := WithContext(ctx, s)
	if _, ok := w.(*ContextSource); !ok {
		t.Fatalf("cancellable ctx did not wrap: %T", w)
	}
	// Double wrapping unwraps all the way down.
	w2 := WithContext(ctx, w)
	if got := Unwrap(w2); got != SetSource(s) {
		t.Fatalf("Unwrap returned %T, want the original *Set", got)
	}
}

func TestContextSourceDelegatesMetadata(t *testing.T) {
	names, s := ctxTestSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := WithContext(ctx, s)
	if w.Namespace() != names {
		t.Error("Namespace not delegated")
	}
	if w.Len() != s.Len() || w.Size() != s.Size() {
		t.Errorf("Len/Size not delegated: %d/%d want %d/%d", w.Len(), w.Size(), s.Len(), s.Size())
	}
	if got, want := len(w.UsedVars()), len(s.UsedVars()); got != want {
		t.Errorf("UsedVars not delegated: %d vars, want %d", got, want)
	}
}

func TestContextSourceCancelStopsPass(t *testing.T) {
	names, s := ctxTestSet(t)
	ss, err := BuildSharded(s, ShardOptions{TargetMonomials: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.NumShards() < 3 {
		t.Fatalf("want >= 3 shards, got %d", ss.NumShards())
	}
	_ = names

	ctx, cancel := context.WithCancel(context.Background())
	w := WithContext(ctx, ss)
	calls := 0
	err = w.ForEachShard(func(i, firstPoly int, sh *Set) error {
		calls++
		cancel() // the next shard boundary must observe the cancellation
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times after cancel, want 1", calls)
	}

	// A fresh pass over the same (unwrapped) set still works: cancellation
	// never corrupts the underlying source.
	total := 0
	if err := ss.ForEachShard(func(_, _ int, sh *Set) error { total += sh.Len(); return nil }); err != nil {
		t.Fatal(err)
	}
	if total != s.Len() {
		t.Fatalf("after cancel, full pass saw %d polys, want %d", total, s.Len())
	}
}

func TestShardedSetConcurrentMetadataDuringPass(t *testing.T) {
	_, s := ctxTestSet(t)
	ss, err := BuildSharded(s, ShardOptions{TargetMonomials: 1, MaxResidentMonomials: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = ss.UsedVars()
			_ = ss.NumVars()
			_ = ss.ResidentMonomials()
			_ = ss.PeakResidentMonomials()
			_ = ss.SpilledShards()
		}
	}()
	for i := 0; i < 20; i++ {
		if err := ss.ForEachShard(func(_, _ int, sh *Set) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
