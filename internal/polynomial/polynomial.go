package polynomial

import (
	"math"
	"sort"
)

// Polynomial is a sum of monomials in canonical form: every monomial is
// canonical, monomial term vectors are strictly increasing in the
// compareTerms order (so no two monomials share a term vector), and no
// monomial has an exactly-zero coefficient. The zero polynomial has no
// monomials.
//
// Polynomial values are immutable by convention: operations return new
// polynomials and never mutate their inputs.
type Polynomial struct {
	Mons []Monomial
}

// Zero returns the zero polynomial.
func Zero() Polynomial { return Polynomial{} }

// oneMons backs the shared constant-1 polynomial. Polynomials are
// immutable by convention, and any append to a full slice reallocates,
// so handing every caller the same one-element backing is safe — and it
// makes the annotation every fresh tuple carries allocation-free.
var oneMons = []Monomial{{Coef: 1}}

// One returns the constant polynomial 1 — the multiplicative identity
// and the default tuple annotation — without allocating.
func One() Polynomial { return Polynomial{Mons: oneMons} }

// Const returns the constant polynomial c.
func Const(c float64) Polynomial {
	if c == 0 {
		return Polynomial{}
	}
	if c == 1 {
		return One()
	}
	return Polynomial{Mons: []Monomial{{Coef: c}}}
}

// VarPoly returns the polynomial consisting of the single variable v.
func VarPoly(v Var) Polynomial {
	return Polynomial{Mons: []Monomial{{Coef: 1, Terms: []Term{{Var: v, Exp: 1}}}}}
}

// New builds a canonical polynomial from arbitrary monomials (merging equal
// term vectors, dropping zero coefficients).
func New(mons ...Monomial) Polynomial {
	var b Builder
	for _, m := range mons {
		b.AddMonomial(m)
	}
	return b.Polynomial()
}

// IsZero reports whether p is the zero polynomial.
func (p Polynomial) IsZero() bool { return len(p.Mons) == 0 }

// IsConstant reports whether p has no variables, returning its value.
func (p Polynomial) IsConstant() (float64, bool) {
	switch len(p.Mons) {
	case 0:
		return 0, true
	case 1:
		if p.Mons[0].IsConstant() {
			return p.Mons[0].Coef, true
		}
	}
	return 0, false
}

// NumMonomials returns the number of monomials — the provenance size measure
// used throughout the paper.
func (p Polynomial) NumMonomials() int { return len(p.Mons) }

// NumTerms returns the total number of variable occurrences.
func (p Polynomial) NumTerms() int {
	n := 0
	for _, m := range p.Mons {
		n += len(m.Terms)
	}
	return n
}

// MaxDegree returns the maximal total degree of any monomial.
func (p Polynomial) MaxDegree() int {
	d := 0
	for _, m := range p.Mons {
		if md := m.Degree(); md > d {
			d = md
		}
	}
	return d
}

// Clone returns a deep copy of p.
func (p Polynomial) Clone() Polynomial {
	out := Polynomial{Mons: make([]Monomial, len(p.Mons))}
	for i, m := range p.Mons {
		out.Mons[i] = m.Clone()
	}
	return out
}

// Vars appends the distinct variables of p to dst (deduplicated via seen,
// which maps Var -> already-appended). Pass nil maps/slices to start fresh.
func (p Polynomial) Vars(dst []Var, seen map[Var]bool) ([]Var, map[Var]bool) {
	if seen == nil {
		seen = make(map[Var]bool)
	}
	for _, m := range p.Mons {
		for _, t := range m.Terms {
			if !seen[t.Var] {
				seen[t.Var] = true
				dst = append(dst, t.Var)
			}
		}
	}
	return dst, seen
}

// VarList returns the distinct variables of p in ascending order.
func (p Polynomial) VarList() []Var {
	vs, _ := p.Vars(nil, nil)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Add returns p + q. When one side is zero the other is returned as is
// (sharing its storage — safe, polynomials are immutable by convention).
func Add(p, q Polynomial) Polynomial {
	if len(p.Mons) == 0 {
		return q
	}
	if len(q.Mons) == 0 {
		return p
	}
	out := Polynomial{Mons: make([]Monomial, 0, len(p.Mons)+len(q.Mons))}
	i, j := 0, 0
	for i < len(p.Mons) && j < len(q.Mons) {
		switch compareTerms(p.Mons[i].Terms, q.Mons[j].Terms) {
		case -1:
			out.Mons = append(out.Mons, p.Mons[i])
			i++
		case 1:
			out.Mons = append(out.Mons, q.Mons[j])
			j++
		default:
			c := p.Mons[i].Coef + q.Mons[j].Coef
			if c != 0 {
				out.Mons = append(out.Mons, Monomial{Coef: c, Terms: p.Mons[i].Terms})
			}
			i++
			j++
		}
	}
	out.Mons = append(out.Mons, p.Mons[i:]...)
	out.Mons = append(out.Mons, q.Mons[j:]...)
	return out
}

// Scale returns c·p. Scaling by 1 returns p itself; otherwise the result
// shares p's term vectors (only the coefficient array is new).
func Scale(p Polynomial, c float64) Polynomial {
	if c == 0 {
		return Polynomial{}
	}
	if c == 1 {
		return p
	}
	out := Polynomial{Mons: make([]Monomial, 0, len(p.Mons))}
	for _, m := range p.Mons {
		nc := m.Coef * c
		if nc != 0 {
			out.Mons = append(out.Mons, Monomial{Coef: nc, Terms: m.Terms})
		}
	}
	return out
}

// Neg returns -p.
func Neg(p Polynomial) Polynomial { return Scale(p, -1) }

// Sub returns p - q.
func Sub(p, q Polynomial) Polynomial { return Add(p, Neg(q)) }

// Mul returns p·q. Constant factors reduce to Scale (so multiplying by
// the ubiquitous annotation 1 is free and shares the other side's
// storage), and a product of two single monomials skips the
// sort-and-merge machinery; both fast paths produce the same bits as the
// general path (float64 multiplication is commutative).
func Mul(p, q Polynomial) Polynomial {
	if p.IsZero() || q.IsZero() {
		return Polynomial{}
	}
	if c, ok := p.IsConstant(); ok {
		return Scale(q, c)
	}
	if c, ok := q.IsConstant(); ok {
		return Scale(p, c)
	}
	if len(p.Mons) == 1 && len(q.Mons) == 1 {
		m := MulMono(p.Mons[0], q.Mons[0])
		if m.Coef == 0 {
			return Polynomial{}
		}
		return Polynomial{Mons: []Monomial{m}}
	}
	var b Builder
	b.Grow(len(p.Mons) * len(q.Mons))
	for _, pm := range p.Mons {
		for _, qm := range q.Mons {
			b.AddMonomial(MulMono(pm, qm))
		}
	}
	return b.Polynomial()
}

// MapVars returns p with every variable v replaced by f(v), re-canonicalized
// (monomials that become equal are merged). This is the algebraic operation
// behind abstraction: replacing leaf variables by their meta-variable.
func MapVars(p Polynomial, f func(Var) Var) Polynomial {
	var b Builder
	b.Grow(len(p.Mons))
	for _, m := range p.Mons {
		nm := Monomial{Coef: m.Coef, Terms: make([]Term, len(m.Terms))}
		for i, t := range m.Terms {
			nm.Terms[i] = Term{Var: f(t.Var), Exp: t.Exp}
		}
		nm.normalize()
		b.AddMonomial(nm)
	}
	return b.Polynomial()
}

// Eval evaluates p under the valuation val.
func (p Polynomial) Eval(val func(Var) float64) float64 {
	s := 0.0
	for _, m := range p.Mons {
		s += m.Eval(val)
	}
	return s
}

// EvalDense evaluates p under a dense valuation indexed by Var. Variables
// with Var >= len(vals) evaluate to 1 (the identity valuation), matching the
// convention that un-assigned provenance variables keep their default
// multiplier of 1.
func (p Polynomial) EvalDense(vals []float64) float64 {
	s := 0.0
	for _, m := range p.Mons {
		x := m.Coef
		for _, t := range m.Terms {
			v := 1.0
			if int(t.Var) < len(vals) {
				v = vals[t.Var]
			}
			x *= ipow(v, t.Exp)
		}
		s += x
	}
	return s
}

// PartialEval substitutes concrete values for the variables on which val
// reports ok, returning a polynomial over the remaining variables.
func PartialEval(p Polynomial, val func(Var) (float64, bool)) Polynomial {
	var b Builder
	b.Grow(len(p.Mons))
	for _, m := range p.Mons {
		nm := Monomial{Coef: m.Coef}
		for _, t := range m.Terms {
			if x, ok := val(t.Var); ok {
				nm.Coef *= ipow(x, t.Exp)
			} else {
				nm.Terms = append(nm.Terms, t)
			}
		}
		b.AddMonomial(nm)
	}
	return b.Polynomial()
}

// Equal reports exact structural equality (including coefficients).
func Equal(p, q Polynomial) bool {
	if len(p.Mons) != len(q.Mons) {
		return false
	}
	for i := range p.Mons {
		if p.Mons[i].Coef != q.Mons[i].Coef || compareTerms(p.Mons[i].Terms, q.Mons[i].Terms) != 0 {
			return false
		}
	}
	return true
}

// AlmostEqual reports structural equality with coefficients compared up to
// absolute-or-relative tolerance eps.
func AlmostEqual(p, q Polynomial, eps float64) bool {
	if len(p.Mons) != len(q.Mons) {
		return false
	}
	for i := range p.Mons {
		if compareTerms(p.Mons[i].Terms, q.Mons[i].Terms) != 0 {
			return false
		}
		if !floatNear(p.Mons[i].Coef, q.Mons[i].Coef, eps) {
			return false
		}
	}
	return true
}

func floatNear(a, b, eps float64) bool {
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

// sortAndMerge re-establishes the canonical order of mons, merging equal
// term vectors. It is the slow path used by Builder.Polynomial.
func sortAndMerge(mons []Monomial) []Monomial {
	sort.Slice(mons, func(i, j int) bool {
		return compareTerms(mons[i].Terms, mons[j].Terms) < 0
	})
	out := mons[:0]
	for _, m := range mons {
		if m.Coef == 0 {
			continue
		}
		if len(out) > 0 && compareTerms(out[len(out)-1].Terms, m.Terms) == 0 {
			out[len(out)-1].Coef += m.Coef
			if out[len(out)-1].Coef == 0 {
				out = out[:len(out)-1]
			}
			continue
		}
		out = append(out, m)
	}
	return out
}

// Builder accumulates monomials and produces a canonical Polynomial.
// The zero Builder is ready to use.
type Builder struct {
	mons []Monomial
}

// Grow pre-allocates capacity for n monomials.
func (b *Builder) Grow(n int) {
	if cap(b.mons)-len(b.mons) < n {
		ns := make([]Monomial, len(b.mons), len(b.mons)+n)
		copy(ns, b.mons)
		b.mons = ns
	}
}

// Add appends the monomial coef·terms (terms may be unsorted / repeated).
func (b *Builder) Add(coef float64, terms ...Term) {
	b.AddMonomial(Mono(coef, terms...))
}

// AddMonomial appends a canonical monomial.
func (b *Builder) AddMonomial(m Monomial) {
	b.mons = append(b.mons, m)
}

// AddPolynomial appends all monomials of p.
func (b *Builder) AddPolynomial(p Polynomial) {
	b.mons = append(b.mons, p.Mons...)
}

// Polynomial canonicalizes the accumulated monomials and resets the builder.
func (b *Builder) Polynomial() Polynomial {
	p := Polynomial{Mons: sortAndMerge(b.mons)}
	b.mons = nil
	return p
}
