package polynomial

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildTestSet returns a set with polys polynomials of monsEach monomials.
func buildTestSet(polys, monsEach int) *Set {
	names := NewNames()
	set := NewSet(names)
	for p := 0; p < polys; p++ {
		var b Builder
		for m := 0; m < monsEach; m++ {
			b.Add(float64(p*monsEach+m+1),
				T(names.Var(fmt.Sprintf("x%d", p%7))),
				TExp(names.Var(fmt.Sprintf("c%d", m%5)), int32(1+m%3)))
		}
		set.Add(fmt.Sprintf("g%d", p), b.Polynomial())
	}
	return set
}

func TestShardedRoundTrip(t *testing.T) {
	set := buildTestSet(40, 6)
	ss, err := BuildSharded(set, ShardOptions{TargetMonomials: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.Len() != set.Len() || ss.Size() != set.Size() {
		t.Fatalf("len/size: %d/%d vs %d/%d", ss.Len(), ss.Size(), set.Len(), set.Size())
	}
	if ss.NumShards() < 2 {
		t.Fatalf("expected multiple shards, got %d", ss.NumShards())
	}
	back, err := ss.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() {
		t.Fatalf("materialize len %d vs %d", back.Len(), set.Len())
	}
	for i := range set.Keys {
		if back.Keys[i] != set.Keys[i] || !Equal(back.Polys[i], set.Polys[i]) {
			t.Fatalf("poly %d differs after round trip", i)
		}
	}
	if got, want := len(ss.UsedVars()), len(set.UsedVars()); got != want {
		t.Fatalf("UsedVars %d vs %d", got, want)
	}
}

func TestShardedSpillBoundsResidency(t *testing.T) {
	set := buildTestSet(60, 10) // 600 monomials
	budget := 100
	ss, err := BuildSharded(set, ShardOptions{MaxResidentMonomials: budget, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.SpilledShards() == 0 {
		t.Fatal("expected spilled shards under a budget smaller than the set")
	}
	// Stream every shard twice; the peak must stay within the budget.
	for pass := 0; pass < 2; pass++ {
		total := 0
		err := ss.ForEachShard(func(i, firstPoly int, s *Set) error {
			if firstPoly != ss.PolyOffset(i) {
				return fmt.Errorf("offset mismatch at shard %d", i)
			}
			total += s.Size()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if total != set.Size() {
			t.Fatalf("streamed %d monomials, want %d", total, set.Size())
		}
	}
	if ss.PeakResidentMonomials() > budget {
		t.Fatalf("peak resident %d exceeds budget %d", ss.PeakResidentMonomials(), budget)
	}
	back, err := ss.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range set.Keys {
		if back.Keys[i] != set.Keys[i] || !Equal(back.Polys[i], set.Polys[i]) {
			t.Fatalf("poly %d differs after spill round trip", i)
		}
	}
}

func TestShardedCloseRemovesSpillDir(t *testing.T) {
	dir := t.TempDir()
	set := buildTestSet(30, 10)
	ss, err := BuildSharded(set, ShardOptions{MaxResidentMonomials: 40, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ss.SpilledShards() == 0 {
		t.Fatal("expected spills")
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("spill dir should contain the shard dir: %v %d", err, len(entries))
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*", "*"))
	if len(left) != 0 {
		t.Fatalf("spill files left after Close: %v", left)
	}
	if err := ss.ForEachShard(func(int, int, *Set) error { return nil }); err == nil {
		t.Fatal("ForEachShard after Close should error")
	}
	if err := ss.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestShardBuilderStreaming(t *testing.T) {
	names := NewNames()
	b := NewShardBuilder(names, ShardOptions{MaxResidentMonomials: 50, SpillDir: t.TempDir()})
	want := 0
	for p := 0; p < 50; p++ {
		var pb Builder
		for m := 0; m < 8; m++ {
			pb.Add(float64(m+1), T(names.Var(fmt.Sprintf("v%d", m))))
		}
		poly := pb.Polynomial()
		want += len(poly.Mons)
		if err := b.Add(fmt.Sprintf("k%d", p), poly); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := b.Finish(); err == nil {
		t.Fatal("second Finish should error")
	}
	if err := b.Add("late", Zero()); err == nil {
		t.Fatal("Add after Finish should error")
	}
	if ss.Size() != want || ss.Len() != 50 {
		t.Fatalf("size/len: %d/%d", ss.Size(), ss.Len())
	}
	if ss.PeakResidentMonomials() > 50 {
		t.Fatalf("peak %d exceeds budget", ss.PeakResidentMonomials())
	}
}

func TestShardedEmptyAndZeroPolys(t *testing.T) {
	names := NewNames()
	ss, err := BuildSharded(NewSet(names), ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.Len() != 0 || ss.NumShards() != 0 || ss.Size() != 0 {
		t.Fatalf("empty set: %d/%d/%d", ss.Len(), ss.NumShards(), ss.Size())
	}
	// Zero polynomials (no monomials) must still round-trip by key.
	set := NewSet(names)
	set.Add("a", Zero())
	set.Add("b", MustParse("1+x", names))
	set.Add("c", Zero())
	ss2, err := BuildSharded(set, ShardOptions{TargetMonomials: 1, MaxResidentMonomials: 2, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	back, err := ss2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Keys[0] != "a" || back.Keys[2] != "c" {
		t.Fatalf("zero-poly round trip: %v", back.Keys)
	}
}
