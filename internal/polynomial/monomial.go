package polynomial

import (
	"encoding/binary"
	"sort"
)

// Term is a variable raised to a positive exponent.
type Term struct {
	Var Var
	Exp int32
}

// T is shorthand for Term{v, 1}.
func T(v Var) Term { return Term{Var: v, Exp: 1} }

// TExp is shorthand for Term{v, e}.
func TExp(v Var, e int32) Term { return Term{Var: v, Exp: e} }

// Monomial is a coefficient times a product of terms. In canonical form the
// terms are sorted by Var, exponents are positive, and no Var repeats.
type Monomial struct {
	Coef  float64
	Terms []Term
}

// Mono builds a canonical monomial from a coefficient and terms (which may be
// unsorted and may repeat variables; repeated variables have their exponents
// summed).
func Mono(coef float64, terms ...Term) Monomial {
	m := Monomial{Coef: coef, Terms: append([]Term(nil), terms...)}
	m.normalize()
	return m
}

// MonoIn is Mono reusing terms as the monomial's backing storage (sorted
// and merged in place, so the slice must be owned by the caller) — the
// allocation-free form for producers carving terms from a slab.
func MonoIn(coef float64, terms []Term) Monomial {
	m := Monomial{Coef: coef, Terms: terms}
	m.normalize()
	return m
}

// normalize sorts terms by Var, merges duplicates, and drops zero exponents.
func (m *Monomial) normalize() {
	ts := m.Terms
	if len(ts) > 1 {
		sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
	}
	out := ts[:0]
	for _, t := range ts {
		if t.Exp == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Var == t.Var {
			out[len(out)-1].Exp += t.Exp
			if out[len(out)-1].Exp == 0 {
				out = out[:len(out)-1]
			}
			continue
		}
		out = append(out, t)
	}
	m.Terms = out
}

// Clone returns a deep copy of m.
func (m Monomial) Clone() Monomial {
	return Monomial{Coef: m.Coef, Terms: append([]Term(nil), m.Terms...)}
}

// Degree returns the total degree (sum of exponents).
func (m Monomial) Degree() int {
	d := 0
	for _, t := range m.Terms {
		d += int(t.Exp)
	}
	return d
}

// IsConstant reports whether the monomial has no variables.
func (m Monomial) IsConstant() bool { return len(m.Terms) == 0 }

// HasVar reports whether v appears in m (terms must be canonical).
func (m Monomial) HasVar(v Var) bool {
	_, ok := m.ExpOf(v)
	return ok
}

// ExpOf returns the exponent of v in m and whether v appears.
func (m Monomial) ExpOf(v Var) (int32, bool) {
	i := sort.Search(len(m.Terms), func(i int) bool { return m.Terms[i].Var >= v })
	if i < len(m.Terms) && m.Terms[i].Var == v {
		return m.Terms[i].Exp, true
	}
	return 0, false
}

// WithoutVar returns a copy of m with any term on v removed. The coefficient
// is preserved.
func (m Monomial) WithoutVar(v Var) Monomial {
	out := Monomial{Coef: m.Coef, Terms: make([]Term, 0, len(m.Terms))}
	for _, t := range m.Terms {
		if t.Var != v {
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}

// MulMono returns the product of two canonical monomials.
func MulMono(a, b Monomial) Monomial {
	out := Monomial{Coef: a.Coef * b.Coef, Terms: make([]Term, 0, len(a.Terms)+len(b.Terms))}
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i].Var < b.Terms[j].Var:
			out.Terms = append(out.Terms, a.Terms[i])
			i++
		case a.Terms[i].Var > b.Terms[j].Var:
			out.Terms = append(out.Terms, b.Terms[j])
			j++
		default:
			out.Terms = append(out.Terms, Term{Var: a.Terms[i].Var, Exp: a.Terms[i].Exp + b.Terms[j].Exp})
			i++
			j++
		}
	}
	out.Terms = append(out.Terms, a.Terms[i:]...)
	out.Terms = append(out.Terms, b.Terms[j:]...)
	return out
}

// CompareTerms orders canonical term vectors lexicographically by
// (Var, Exp) pairs, shorter prefixes first — the order canonical
// polynomials keep their monomials in. Exported for decoders that must
// re-canonicalize after a namespace remap reorders variables.
func CompareTerms(a, b []Term) int { return compareTerms(a, b) }

// compareTerms orders canonical term vectors lexicographically by
// (Var, Exp) pairs, shorter prefixes first.
func compareTerms(a, b []Term) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i].Var < b[i].Var:
			return -1
		case a[i].Var > b[i].Var:
			return 1
		case a[i].Exp < b[i].Exp:
			return -1
		case a[i].Exp > b[i].Exp:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// appendTermsKey appends a byte encoding of a canonical term vector to buf.
// Equal vectors produce equal encodings and vice versa, so string(key) is a
// valid map key for monomial structure.
func appendTermsKey(buf []byte, terms []Term) []byte {
	for _, t := range terms {
		buf = binary.AppendUvarint(buf, uint64(uint32(t.Var)))
		buf = binary.AppendUvarint(buf, uint64(uint32(t.Exp)))
	}
	return buf
}

// EvalTerms evaluates the variable part of m (ignoring Coef) under val.
func (m Monomial) EvalTerms(val func(Var) float64) float64 {
	x := 1.0
	for _, t := range m.Terms {
		x *= ipow(val(t.Var), t.Exp)
	}
	return x
}

// Eval evaluates m (including coefficient) under val.
func (m Monomial) Eval(val func(Var) float64) float64 {
	return m.Coef * m.EvalTerms(val)
}

// ipow computes x^e for small positive integer e by repeated squaring.
func ipow(x float64, e int32) float64 {
	if e < 0 {
		return 1 / ipow(x, -e)
	}
	r := 1.0
	for e > 0 {
		if e&1 == 1 {
			r *= x
		}
		x *= x
		e >>= 1
	}
	return r
}
