package polynomial

// SetSource is the streaming view of a polynomial collection that every
// downstream pipeline stage (signature indexing, cut application, batch
// valuation, serialization) consumes: keyed polynomials iterated
// shard-at-a-time in one deterministic order, under one shared namespace,
// with residency accounting. It is implemented by both *Set (one resident
// shard: itself) and *ShardedSet (fixed-size shards that may stream from
// spill files), so each stage is written once and works in-memory and
// out-of-core alike.
type SetSource interface {
	// Namespace returns the shared variable namespace.
	Namespace() *Names
	// Len returns the total number of polynomials.
	Len() int
	// Size returns the total number of monomials — the provenance size
	// measure optimized by COBRA.
	Size() int
	// UsedVars returns the distinct variables appearing anywhere in the
	// source, ascending.
	UsedVars() []Var
	// ForEachShard invokes fn once per shard in shard order, passing the
	// shard's index, the global index of its first polynomial, and the
	// shard's polynomials as a Set sharing the namespace. Concatenating the
	// shards yields the full collection. fn must not retain or mutate the
	// Set beyond the call; iteration stops at fn's first error.
	ForEachShard(fn func(i, firstPoly int, s *Set) error) error
	// ResidentMonomials returns the monomials currently held in memory.
	ResidentMonomials() int
	// PeakResidentMonomials returns the high-water mark of resident
	// monomials over the source's lifetime.
	PeakResidentMonomials() int
}

// ShardParallelSource is implemented by sources whose shards can be
// loaded (or decoded) concurrently: ForEachShardParallel overlaps shard
// production across up to workers goroutines while still delivering the
// shards to fn sequentially, in shard order, on the calling goroutine —
// the same determinism contract as ForEachShard, with the disk/decode
// latency hidden. Implementations bound the number of shards resident at
// once (their MaxResidentMonomials budget, or the worker count when
// unbudgeted). With workers <= 1 it is exactly ForEachShard.
type ShardParallelSource interface {
	ForEachShardParallel(workers int, fn func(i, firstPoly int, s *Set) error) error
}

// IndexedSource is a SetSource backed by a random-access index of
// independently decodable shards: beyond the parallel pass, independent
// streaming passes may run concurrently without serializing on shared
// mutable state (unlike *ShardedSet, whose passes fight over one
// residency budget and therefore serialize). It is the seam that lets
// FrontierForestSource solve the trees of a spilled forest in parallel.
// Implemented by polyio.IndexedSet.
type IndexedSource interface {
	SetSource
	ShardParallelSource
	// ConcurrentPasses reports whether independent streaming passes over
	// this source may run concurrently. IndexedSource implementations
	// return true; the method exists so wrappers (ContextSource) can
	// forward the answer of whatever they wrap.
	ConcurrentPasses() bool
}

// ForEachShardN streams src's shards into fn in shard order — exactly
// like src.ForEachShard — decoding up to workers shards concurrently when
// the source supports it. Every pipeline stage with a Workers knob calls
// this instead of ForEachShard so the disk pipeline parallelizes without
// the stage knowing the source representation. Results are bit-identical
// to the sequential pass for any worker count: fn always runs
// sequentially, in shard order, on the calling goroutine.
func ForEachShardN(src SetSource, workers int, fn func(i, firstPoly int, s *Set) error) error {
	if workers > 1 {
		if ps, ok := src.(ShardParallelSource); ok {
			return ps.ForEachShardParallel(workers, fn)
		}
	}
	return src.ForEachShard(fn)
}

// SetSink receives keyed polynomials one at a time, in the order a
// SetSource (or a streaming producer such as provenance capture) emits
// them. It is implemented by *Set (materializes everything) and
// *ShardBuilder (seals fixed-size shards and spills past the memory
// budget).
type SetSink interface {
	// Add appends one named polynomial.
	Add(key string, p Polynomial) error
}

// Compile-time interface conformance.
var (
	_ SetSource = (*Set)(nil)
	_ SetSource = (*ShardedSet)(nil)
	_ SetSource = (*PackedSet)(nil)
	_ SetSink   = (*Set)(nil)
	_ SetSink   = (*ShardBuilder)(nil)
	_ SetSink   = (*PackedSet)(nil)
)

// Copy streams every polynomial of src into sink in shard order — the
// generic materialize/spill/serialize bridge between any source and any
// sink.
func Copy(src SetSource, sink SetSink) error {
	return src.ForEachShard(func(_, _ int, s *Set) error {
		for i, key := range s.Keys {
			if err := sink.Add(key, s.Polys[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// --- SetSource/SetSink conformance of the in-memory Set -----------------

// Namespace returns the set's variable namespace (the Names field; the
// method form satisfies SetSource, where a field cannot).
func (s *Set) Namespace() *Names { return s.Names }

// ForEachShard presents the in-memory set as a single resident shard:
// one fn call with index 0, first polynomial 0, and the set itself.
func (s *Set) ForEachShard(fn func(i, firstPoly int, shard *Set) error) error {
	return fn(0, 0, s)
}

// ResidentMonomials returns Size(): an in-memory set is fully resident.
func (s *Set) ResidentMonomials() int { return s.Size() }

// PeakResidentMonomials returns Size(): an in-memory set is fully
// resident for its whole lifetime.
func (s *Set) PeakResidentMonomials() int { return s.Size() }
