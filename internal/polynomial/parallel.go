package polynomial

import (
	"github.com/cobra-prov/cobra/internal/parallel"
)

// minParallelMons is the monomial count below which sharding a single
// polynomial costs more in goroutine handoff than it saves.
const minParallelMons = 4096

// MapVarsN is MapVars distributed over up to workers goroutines. Only the
// per-monomial mapping phase is sharded (over contiguous monomial ranges);
// the mapped monomials land in their original positions and the final
// sort-and-merge is the same sequential pass MapVars runs, so the result —
// including the left-to-right floating-point summation order of merged
// coefficients — is bit-identical to MapVars for every worker count.
func MapVarsN(p Polynomial, f func(Var) Var, workers int) Polynomial {
	workers = parallel.Normalize(workers)
	if workers == 1 || len(p.Mons) < minParallelMons {
		return MapVars(p, f)
	}
	mons := make([]Monomial, len(p.Mons))
	parallel.Chunks(workers, len(p.Mons), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m := p.Mons[i]
			nm := Monomial{Coef: m.Coef, Terms: make([]Term, len(m.Terms))}
			for j, t := range m.Terms {
				nm.Terms[j] = Term{Var: f(t.Var), Exp: t.Exp}
			}
			nm.normalize()
			mons[i] = nm
		}
	})
	return Polynomial{Mons: sortAndMerge(mons)}
}

// MapVarsN is Set.MapVars distributed over up to workers goroutines. Sets
// with enough polynomials parallelize across them (each polynomial computed
// by the exact sequential code); sets dominated by a few large polynomials
// shard inside each polynomial instead. Either way the output is
// bit-identical to the sequential MapVars.
func (s *Set) MapVarsN(f func(Var) Var, workers int) *Set {
	workers = parallel.Normalize(workers)
	if workers == 1 {
		return s.MapVars(f)
	}
	out := &Set{Names: s.Names, Keys: append([]string(nil), s.Keys...), Polys: make([]Polynomial, len(s.Polys))}
	if len(s.Polys) >= 2*workers {
		parallel.ForEach(workers, len(s.Polys), func(i int) {
			out.Polys[i] = MapVars(s.Polys[i], f)
		})
	} else {
		for i, p := range s.Polys {
			out.Polys[i] = MapVarsN(p, f, workers)
		}
	}
	return out
}
